// Command tracelint structurally validates Chrome trace-event JSON files
// produced by gpsbench -trace-out or gpsd -trace-dir: each file must parse,
// every B event must close with a matching E in LIFO order on its track,
// and spans must nest cell ⊂ figure ⊂ job and phase ⊂ cell by wall time.
//
// Usage:
//
//	tracelint run.trace.json                  # require job/figure/cell/phase
//	tracelint -require job,cell run.trace.json
//	tracelint -require "" run.trace.json      # structure only
//
// Cluster mode validates a set of per-node trace files together: every
// span carrying a trace_id must link to a parent span_id resolvable in
// some file of the same trace, and every trace must have a root span.
//
//	tracelint -cluster node-a/*.json node-b/*.json
//	tracelint -cluster -cross ...             # require a 2+ node trace
//	tracelint -cluster -merge merged.json ... # emit one Perfetto timeline
//
// Exit status 0 on a valid trace; 1 with a diagnostic otherwise. The smoke
// gates (make obs-smoke, make trace-cluster-smoke) run both modes.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"gps/internal/obs"
)

func main() {
	require := flag.String("require", "job,figure,cell,phase",
		"comma-separated span categories that must be present (empty = structure only; single-file mode)")
	clusterMode := flag.Bool("cluster", false,
		"validate multiple per-node trace files as one distributed trace set")
	cross := flag.Bool("cross", false,
		"with -cluster: require at least one trace spanning 2+ nodes")
	mergeOut := flag.String("merge", "",
		"with -cluster: also write the merged multi-node timeline to this path")
	flag.Parse()

	if *clusterMode {
		runCluster(flag.Args(), *cross, *mergeOut)
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tracelint [-require cats] trace.json\n"+
			"       tracelint -cluster [-cross] [-merge out.json] trace.json...")
		os.Exit(2)
	}
	data, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracelint:", err)
		os.Exit(1)
	}
	var cats []string
	if *require != "" {
		cats = strings.Split(*require, ",")
	}
	sum, err := obs.ValidateTrace(data, cats...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracelint: %s: %v\n", flag.Arg(0), err)
		os.Exit(1)
	}
	fmt.Printf("%s: %d events, %d spans on %d tracks over %.1fms",
		flag.Arg(0), sum.Events, sum.Spans, sum.Tracks, sum.DurUS/1e3)
	for _, cat := range []string{obs.CatJob, obs.CatFigure, obs.CatCell, obs.CatPhase, obs.CatEnginePhase} {
		if n := sum.ByCat[cat]; n > 0 {
			fmt.Printf(" %s:%d", cat, n)
		}
	}
	fmt.Println()
}

// runCluster validates a set of per-node trace files as one distributed
// trace: per-file structure plus cross-file parent/child identity linkage.
func runCluster(paths []string, cross bool, mergeOut string) {
	if len(paths) == 0 {
		fmt.Fprintln(os.Stderr, "tracelint: -cluster needs at least one trace file")
		os.Exit(2)
	}
	files := map[string][]byte{}
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tracelint:", err)
			os.Exit(1)
		}
		// Key by a short name but keep it unique when basenames collide
		// across node directories.
		key := filepath.Base(p)
		if _, dup := files[key]; dup {
			key = p
		}
		files[key] = data
	}
	sum, err := obs.ValidateClusterTraces(files)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracelint: cluster:", err)
		os.Exit(1)
	}
	fmt.Printf("cluster: %d files, %d identity spans, %d traces, %d cross-node\n",
		sum.Files, sum.Spans, len(sum.Traces), sum.CrossNode)
	for _, ct := range sum.Traces {
		marker := " "
		if ct.CrossNode() {
			marker = "*"
		}
		fmt.Printf(" %s trace %s: %d spans, %d roots, nodes %s\n",
			marker, ct.TraceID, ct.Spans, ct.Roots, strings.Join(ct.Nodes, ","))
	}
	if cross && sum.CrossNode == 0 {
		fmt.Fprintln(os.Stderr, "tracelint: cluster: -cross required a trace spanning 2+ nodes; none found")
		os.Exit(1)
	}
	if mergeOut != "" {
		merged, merr := obs.MergeTraces(files)
		if merr != nil {
			fmt.Fprintln(os.Stderr, "tracelint: merge:", merr)
			os.Exit(1)
		}
		if werr := os.WriteFile(mergeOut, merged, 0o644); werr != nil {
			fmt.Fprintln(os.Stderr, "tracelint: merge:", werr)
			os.Exit(1)
		}
		fmt.Printf("merged timeline written to %s\n", mergeOut)
	}
}
