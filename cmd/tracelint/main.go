// Command tracelint structurally validates a Chrome trace-event JSON file
// produced by gpsbench -trace-out or gpsd -trace-dir: the file must parse,
// every B event must close with a matching E in LIFO order on its track,
// and spans must nest cell ⊂ figure ⊂ job and phase ⊂ cell by wall time.
//
// Usage:
//
//	tracelint run.trace.json                  # require job/figure/cell/phase
//	tracelint -require job,cell run.trace.json
//	tracelint -require "" run.trace.json      # structure only
//
// Exit status 0 on a valid trace; 1 with a diagnostic otherwise. The smoke
// gate (make obs-smoke) runs it over a fresh gpsbench trace.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"gps/internal/obs"
)

func main() {
	require := flag.String("require", "job,figure,cell,phase",
		"comma-separated span categories that must be present (empty = structure only)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tracelint [-require cats] trace.json")
		os.Exit(2)
	}
	data, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracelint:", err)
		os.Exit(1)
	}
	var cats []string
	if *require != "" {
		cats = strings.Split(*require, ",")
	}
	sum, err := obs.ValidateTrace(data, cats...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracelint: %s: %v\n", flag.Arg(0), err)
		os.Exit(1)
	}
	fmt.Printf("%s: %d events, %d spans on %d tracks over %.1fms",
		flag.Arg(0), sum.Events, sum.Spans, sum.Tracks, sum.DurUS/1e3)
	for _, cat := range []string{obs.CatJob, obs.CatFigure, obs.CatCell, obs.CatPhase, obs.CatEnginePhase} {
		if n := sum.ByCat[cat]; n > 0 {
			fmt.Printf(" %s:%d", cat, n)
		}
	}
	fmt.Println()
}
