// Command gpsbench regenerates the tables and figures of the GPS paper's
// evaluation (Section 7) from the simulator.
//
// Usage:
//
//	gpsbench -all                 # every figure and table (slow)
//	gpsbench -fig 8               # one figure (1,3,4,8,9,10,11,12,13,14)
//	gpsbench -table 1             # Table 1 or 2
//	gpsbench -sens tlb|pagesize|watermark
//	gpsbench -iters 4 -scale 1    # workload sizing
//	gpsbench -all -parallel 8     # run the experiment matrix on 8 workers
//	gpsbench -fig 12 -shards 8    # shard each structural replay across 8 goroutines
//	gpsbench -sens hier           # 32/64-GPU hierarchical NVSwitch sweep
//	gpsbench -fig 8 -json out.json
//	gpsbench -all -cpuprofile cpu.pb.gz -memprofile mem.pb.gz
//	gpsbench -fig 8 -trace-out run.trace.json   # Perfetto span trace
//
// SIGINT cancels the run: in-flight simulation cells finish, no further
// cells are issued, and gpsbench exits without emitting partial files.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"time"

	"gps/internal/experiments"
	"gps/internal/obs"
	"gps/internal/report"
	"gps/internal/stats"
)

func main() {
	var (
		fig      = flag.Int("fig", 0, "figure number to regenerate (1,2,3,4,8,9,10,11,12,13,14)")
		table    = flag.Int("table", 0, "table number to regenerate (1,2)")
		sens     = flag.String("sens", "", "sensitivity study: tlb, pagesize, watermark, l2, profilingmode, control, pipelined, fabrics, hier, fabricmodel")
		all      = flag.Bool("all", false, "regenerate everything")
		iters    = flag.Int("iters", 4, "execution iterations per application")
		scale    = flag.Int("scale", 1, "problem size multiplier")
		csv      = flag.Bool("csv", false, "emit tables as CSV instead of text")
		rep      = flag.String("report", "", "write a full markdown report to this file")
		chart    = flag.Bool("chart", false, "also render line-chart views of figures 13 and 14")
		parallel = flag.Int("parallel", 0, "experiment worker goroutines (0 = GOMAXPROCS, 1 = serial)")
		shards   = flag.Int("shards", 1, "goroutines per structural replay; output is byte-identical at any count, capped so workers x shards fits GOMAXPROCS")
		budget   = flag.Int64("trace-budget", 0, "trace cache resident byte budget; compressed blocks spill to a temp file beyond it (0 = default 4 GiB)")
		jsonOut  = flag.String("json", "", "write headline metrics, per-figure wall clock, rendered tables and cache stats as JSON to this file")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile of the whole run to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile (taken at exit) to this file")
		traceOut = flag.String("trace-out", "", "write a Perfetto-loadable span trace (figures, matrix cells, simulation phases) to this file")
	)
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gpsbench:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "gpsbench:", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProf != "" {
		// The heap snapshot is written on the way out, after the full matrix
		// ran, so it reflects steady-state retention rather than startup.
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, "gpsbench:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "gpsbench:", err)
			}
		}()
	}

	// SIGINT cancels the shared context: the runner stops issuing cells and
	// every figure function returns context.Canceled instead of the process
	// dying mid-write. A second SIGINT kills immediately (default behavior).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	// With -trace-out every figure, matrix cell and simulation phase below
	// records a span; the root span brackets the whole invocation. The
	// tracer's flusher is bound to the signal context, so an interrupt
	// finalizes the file instead of leaking the writer.
	var tracer *obs.Tracer
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gpsbench:", err)
			os.Exit(1)
		}
		tracer = obs.NewTracer(ctx, f)
		ctx = obs.WithTracer(ctx, tracer)
		var root *obs.Span
		ctx, root = obs.StartSpan(ctx, obs.CatJob, "gpsbench")
		defer func() {
			root.End()
			if err := tracer.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "gpsbench: trace:", err)
			}
			f.Close()
			fmt.Println("wrote", *traceOut)
		}()
	}

	experiments.SetParallelism(*parallel)
	// Compose -shards with -parallel: with several cell workers the matrix
	// already fills the machine, so shards are capped to keep workers x
	// shards within GOMAXPROCS. A serial matrix (-parallel 1) is the
	// shard-first mode and honors the count exactly; either way the rendered
	// output is identical, only the schedule changes.
	shardCount := *shards
	if workers := experiments.Parallelism(); workers > 1 && shardCount > 1 {
		if bound := runtime.GOMAXPROCS(0) / workers; shardCount > bound {
			if bound < 1 {
				bound = 1
			}
			fmt.Fprintf(os.Stderr, "gpsbench: capping -shards %d to %d (%d workers on GOMAXPROCS=%d)\n",
				shardCount, bound, workers, runtime.GOMAXPROCS(0))
			shardCount = bound
		}
	}
	experiments.SetShards(shardCount)
	if *budget > 0 {
		experiments.Default.SetTraceBudget(uint64(*budget))
	}
	opt := experiments.Options{Iterations: *iters, Scale: *scale}
	start := time.Now()
	ran := false
	out := report.Report{ParallelWorkers: experiments.Parallelism(), Shards: experiments.Shards()}

	die := func(err error) {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "gpsbench: interrupted")
			os.Exit(130)
		}
		fmt.Fprintln(os.Stderr, "gpsbench:", err)
		os.Exit(1)
	}

	var sectionName string // the section currently being rendered, for out.Tables
	show := func(tb *stats.Table, err error, extra ...string) {
		if err != nil {
			die(err)
		}
		if *csv {
			fmt.Print(tb.CSV())
		} else {
			fmt.Println(tb)
		}
		text := tb.String()
		for _, e := range extra {
			fmt.Println(e)
			text += e + "\n"
		}
		if sectionName != "" {
			out.AddTable(sectionName, text)
		}
		fmt.Println()
		ran = true
	}

	// section times one figure/table body for the JSON report and brackets
	// it in a figure span when tracing; fn receives the span's context so
	// the cells it fans out nest under the figure.
	section := func(name string, fn func(ctx context.Context)) {
		t0 := time.Now()
		sectionName = name
		sctx, span := obs.StartSpan(ctx, obs.CatFigure, name)
		var tail experiments.TailTracker
		fn(experiments.ChainCellObserver(sctx, tail.Observe))
		span.End()
		sectionName = ""
		sec := report.Section{Name: name, Seconds: time.Since(t0).Seconds()}
		if d, slowest := tail.Max(); d > 0 {
			sec.MaxCellSeconds = d.Seconds()
			sec.SlowestCell = slowest
			p50, p99 := tail.Quantiles()
			sec.CellCount = tail.Count()
			sec.P50CellSeconds = p50.Seconds()
			sec.P99CellSeconds = p99.Seconds()
		}
		out.Sections = append(out.Sections, sec)
	}

	want := func(n int) bool { return *all || *fig == n }

	if *all || *table == 1 {
		fmt.Println(experiments.Table1())
		ran = true
	}
	if *all || *table == 2 {
		fmt.Println(experiments.Table2())
		ran = true
	}
	if want(1) {
		section("figure1", func(ctx context.Context) {
			tb, err := experiments.Figure1(ctx, opt)
			show(tb, err)
		})
	}
	if want(2) {
		section("figure2", func(ctx context.Context) {
			tb, err := experiments.Figure2(ctx, opt)
			show(tb, err)
		})
	}
	if want(3) {
		show(experiments.Figure3(), nil)
	}
	if want(4) {
		section("figure4", func(ctx context.Context) {
			tb, err := experiments.Figure4(ctx, opt)
			show(tb, err)
		})
	}
	if want(8) {
		section("figure8", func(ctx context.Context) {
			tb, err := experiments.Figure8(ctx, opt)
			if err == nil {
				g, f, n := experiments.Claims71(tb)
				out.GPSMeanX, out.OpportunityPct, out.VsNextBestX = g, f*100, n
				show(tb, nil, fmt.Sprintf(
					"Section 7.1 claims: GPS mean %.2fx (paper: 3.0x), %.1f%% of opportunity (paper: 93.7%%), %.2fx over next best (paper: 2.3x)",
					g, f*100, n))
			} else {
				show(tb, err)
			}
		})
	}
	if want(9) {
		section("figure9", func(ctx context.Context) {
			tb, err := experiments.Figure9(ctx, opt)
			show(tb, err)
		})
	}
	if want(10) {
		section("figure10", func(ctx context.Context) {
			tb, err := experiments.Figure10(ctx, opt)
			show(tb, err)
		})
	}
	if want(11) {
		section("figure11", func(ctx context.Context) {
			tb, err := experiments.Figure11(ctx, opt)
			show(tb, err)
		})
	}
	if want(12) {
		section("figure12", func(ctx context.Context) {
			tb, err := experiments.Figure12(ctx, opt)
			if err == nil {
				g, f := experiments.Claims73(tb)
				show(tb, nil, fmt.Sprintf(
					"Section 7.3 claims: GPS mean %.2fx (paper: 7.9x), %.1f%% of opportunity (paper: >80%%)",
					g, f*100))
			} else {
				show(tb, err)
			}
		})
	}
	if want(13) {
		section("figure13", func(ctx context.Context) {
			tb, err := experiments.Figure13(ctx, opt)
			if err == nil && *chart {
				show(tb, nil, tb.LineChart(12))
			} else {
				show(tb, err)
			}
		})
	}
	if want(14) {
		section("figure14", func(ctx context.Context) {
			tb, err := experiments.Figure14(ctx, opt)
			if err == nil && *chart {
				show(tb, nil, tb.LineChart(12))
			} else {
				show(tb, err)
			}
		})
	}
	if *all || *sens == "tlb" {
		section("sens-tlb", func(ctx context.Context) {
			tb, err := experiments.SensitivityGPSTLB(ctx, opt)
			show(tb, err)
		})
	}
	if *all || *sens == "pagesize" {
		section("sens-pagesize", func(ctx context.Context) {
			tb, err := experiments.SensitivityPageSize(ctx, opt)
			show(tb, err)
		})
	}
	if *all || *sens == "watermark" {
		section("sens-watermark", func(ctx context.Context) {
			tb, err := experiments.AblationWatermark(ctx, opt)
			show(tb, err)
		})
	}
	if *all || *sens == "l2" {
		section("sens-l2", func(ctx context.Context) {
			tb, err := experiments.ValidateL2(ctx, opt)
			show(tb, err)
		})
	}
	if *all || *sens == "profilingmode" {
		section("sens-profilingmode", func(ctx context.Context) {
			tb, err := experiments.AblationProfilingMode(ctx, opt)
			show(tb, err)
		})
	}
	if *all || *sens == "control" {
		section("sens-control", func(ctx context.Context) {
			tb, err := experiments.ControlApps(ctx, opt)
			show(tb, err)
		})
	}
	if *all || *sens == "pipelined" {
		section("sens-pipelined", func(ctx context.Context) {
			tb, err := experiments.AblationPipelinedMemcpy(ctx, opt)
			show(tb, err)
		})
	}
	if *all || *sens == "fabrics" {
		section("sens-fabrics", func(ctx context.Context) {
			tb, err := experiments.ExtendedFabrics(ctx, opt)
			show(tb, err)
		})
	}
	if *all || *sens == "hier" {
		section("sens-hier", func(ctx context.Context) {
			tb, err := experiments.FigureHierarchy(ctx, opt)
			if err == nil && *chart {
				show(tb, nil, tb.LineChart(12))
			} else {
				show(tb, err)
			}
		})
	}

	if *rep != "" {
		f, err := os.Create(*rep)
		if err != nil {
			die(err)
		}
		if err := experiments.WriteReport(ctx, f, opt); err != nil {
			f.Close()
			os.Remove(f.Name()) // don't leave a partial report behind
			die(err)
		}
		f.Close()
		fmt.Println("wrote", *rep)
		ran = true
	}
	if *all || *sens == "fabricmodel" {
		section("sens-fabricmodel", func(ctx context.Context) {
			tb, err := experiments.ValidateFabricModel(ctx, 50)
			show(tb, err)
		})
	}

	if !ran {
		flag.Usage()
		os.Exit(2)
	}

	if *jsonOut != "" {
		out.TotalSeconds = time.Since(start).Seconds()
		out.Cache = experiments.Default.CacheStats()
		f, err := os.Create(*jsonOut)
		if err != nil {
			die(err)
		}
		if err := out.Encode(f); err != nil {
			f.Close()
			die(err)
		}
		f.Close()
		fmt.Println("wrote", *jsonOut)
	}
	fmt.Printf("done in %v\n", time.Since(start).Round(time.Millisecond))
}
