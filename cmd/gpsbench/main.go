// Command gpsbench regenerates the tables and figures of the GPS paper's
// evaluation (Section 7) from the simulator.
//
// Usage:
//
//	gpsbench -all                 # every figure and table (slow)
//	gpsbench -fig 8               # one figure (1,3,4,8,9,10,11,12,13,14)
//	gpsbench -table 1             # Table 1 or 2
//	gpsbench -sens tlb|pagesize|watermark
//	gpsbench -iters 4 -scale 1    # workload sizing
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"gps/internal/experiments"
	"gps/internal/stats"
)

func main() {
	var (
		fig    = flag.Int("fig", 0, "figure number to regenerate (1,2,3,4,8,9,10,11,12,13,14)")
		table  = flag.Int("table", 0, "table number to regenerate (1,2)")
		sens   = flag.String("sens", "", "sensitivity study: tlb, pagesize, watermark, l2, profilingmode, control, pipelined, fabrics, fabricmodel")
		all    = flag.Bool("all", false, "regenerate everything")
		iters  = flag.Int("iters", 4, "execution iterations per application")
		scale  = flag.Int("scale", 1, "problem size multiplier")
		csv    = flag.Bool("csv", false, "emit tables as CSV instead of text")
		report = flag.String("report", "", "write a full markdown report to this file")
		chart  = flag.Bool("chart", false, "also render line-chart views of figures 13 and 14")
	)
	flag.Parse()

	opt := experiments.Options{Iterations: *iters, Scale: *scale}
	start := time.Now()
	ran := false

	show := func(tb *stats.Table, err error, extra ...string) {
		if err != nil {
			fmt.Fprintln(os.Stderr, "gpsbench:", err)
			os.Exit(1)
		}
		if *csv {
			fmt.Print(tb.CSV())
		} else {
			fmt.Println(tb)
		}
		for _, e := range extra {
			fmt.Println(e)
		}
		fmt.Println()
		ran = true
	}

	want := func(n int) bool { return *all || *fig == n }

	if *all || *table == 1 {
		fmt.Println(experiments.Table1())
		ran = true
	}
	if *all || *table == 2 {
		fmt.Println(experiments.Table2())
		ran = true
	}
	if want(1) {
		tb, err := experiments.Figure1(opt)
		show(tb, err)
	}
	if want(2) {
		tb, err := experiments.Figure2(opt)
		show(tb, err)
	}
	if want(3) {
		show(experiments.Figure3(), nil)
	}
	if want(4) {
		tb, err := experiments.Figure4(opt)
		show(tb, err)
	}
	if want(8) {
		tb, err := experiments.Figure8(opt)
		if err == nil {
			g, f, n := experiments.Claims71(tb)
			show(tb, nil, fmt.Sprintf(
				"Section 7.1 claims: GPS mean %.2fx (paper: 3.0x), %.1f%% of opportunity (paper: 93.7%%), %.2fx over next best (paper: 2.3x)",
				g, f*100, n))
		} else {
			show(tb, err)
		}
	}
	if want(9) {
		tb, err := experiments.Figure9(opt)
		show(tb, err)
	}
	if want(10) {
		tb, err := experiments.Figure10(opt)
		show(tb, err)
	}
	if want(11) {
		tb, err := experiments.Figure11(opt)
		show(tb, err)
	}
	if want(12) {
		tb, err := experiments.Figure12(opt)
		if err == nil {
			g, f := experiments.Claims73(tb)
			show(tb, nil, fmt.Sprintf(
				"Section 7.3 claims: GPS mean %.2fx (paper: 7.9x), %.1f%% of opportunity (paper: >80%%)",
				g, f*100))
		} else {
			show(tb, err)
		}
	}
	if want(13) {
		tb, err := experiments.Figure13(opt)
		if err == nil && *chart {
			show(tb, nil, tb.LineChart(12))
		} else {
			show(tb, err)
		}
	}
	if want(14) {
		tb, err := experiments.Figure14(opt)
		if err == nil && *chart {
			show(tb, nil, tb.LineChart(12))
		} else {
			show(tb, err)
		}
	}
	if *all || *sens == "tlb" {
		tb, err := experiments.SensitivityGPSTLB(opt)
		show(tb, err)
	}
	if *all || *sens == "pagesize" {
		tb, err := experiments.SensitivityPageSize(opt)
		show(tb, err)
	}
	if *all || *sens == "watermark" {
		tb, err := experiments.AblationWatermark(opt)
		show(tb, err)
	}
	if *all || *sens == "l2" {
		tb, err := experiments.ValidateL2(opt)
		show(tb, err)
	}
	if *all || *sens == "profilingmode" {
		tb, err := experiments.AblationProfilingMode(opt)
		show(tb, err)
	}
	if *all || *sens == "control" {
		tb, err := experiments.ControlApps(opt)
		show(tb, err)
	}
	if *all || *sens == "pipelined" {
		tb, err := experiments.AblationPipelinedMemcpy(opt)
		show(tb, err)
	}
	if *all || *sens == "fabrics" {
		tb, err := experiments.ExtendedFabrics(opt)
		show(tb, err)
	}

	if *report != "" {
		f, err := os.Create(*report)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gpsbench:", err)
			os.Exit(1)
		}
		if err := experiments.WriteReport(f, opt); err != nil {
			fmt.Fprintln(os.Stderr, "gpsbench:", err)
			os.Exit(1)
		}
		f.Close()
		fmt.Println("wrote", *report)
		ran = true
	}
	if *all || *sens == "fabricmodel" {
		tb, err := experiments.ValidateFabricModel(50)
		show(tb, err)
	}

	if !ran {
		flag.Usage()
		os.Exit(2)
	}
	fmt.Printf("done in %v\n", time.Since(start).Round(time.Millisecond))
}
