// Command benchgate is the perf regression gate: it compares a fresh
// gpsbench -json report against the committed baseline and exits non-zero
// when a gated metric regressed beyond its threshold.
//
// Usage:
//
//	benchgate -baseline BENCH_10.json current.json
//	benchgate -baseline BENCH_10.json -wall-ratio 2.0 current.json
//	benchgate -baseline BENCH_10.json -bless current.json   # adopt current
//
// Deterministic metrics (headline claims, memoization work counters) are
// gated tightly; wall-clock metrics loosely (ratio + absolute floor), so
// machine noise cannot fail the gate. See internal/benchgate. `make
// benchgate` runs the suite and this gate; `make bench-record` blesses a
// new baseline.
//
// Exit status: 0 pass, 1 regression (or unreadable input), 2 usage error.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"gps/internal/benchgate"
	"gps/internal/report"
)

func main() {
	var (
		baselinePath = flag.String("baseline", "", "committed baseline report (BENCH_<n>.json)")
		wallRatio    = flag.Float64("wall-ratio", benchgate.Defaults().WallRatio,
			"max allowed current/baseline wall-clock ratio")
		wallFloor = flag.Float64("wall-floor", benchgate.Defaults().WallFloorSeconds,
			"wall-clock readings below this many seconds are never gated (noise)")
		headlineEps = flag.Float64("headline-eps", benchgate.Defaults().HeadlineEps,
			"relative tolerance on deterministic headline metrics")
		bless = flag.Bool("bless", false,
			"copy the current report over the baseline instead of gating (records an intended change)")
		verbose = flag.Bool("v", false, "print every compared metric, not just regressions")
	)
	flag.Parse()
	if *baselinePath == "" || flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: benchgate -baseline BENCH_<n>.json [flags] current.json")
		os.Exit(2)
	}
	currentPath := flag.Arg(0)

	if *bless {
		if err := copyFile(currentPath, *baselinePath); err != nil {
			fmt.Fprintln(os.Stderr, "benchgate: bless:", err)
			os.Exit(1)
		}
		fmt.Printf("benchgate: blessed %s as the new %s\n", currentPath, *baselinePath)
		return
	}

	base, err := report.Load(*baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate: baseline:", err)
		os.Exit(1)
	}
	cur, err := report.Load(currentPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate: current:", err)
		os.Exit(1)
	}

	res := benchgate.Compare(base, cur, benchgate.Thresholds{
		WallRatio: *wallRatio, WallFloorSeconds: *wallFloor, HeadlineEps: *headlineEps,
	})
	if *verbose {
		for _, f := range res.Findings {
			mark := "ok  "
			if f.Regressed {
				mark = "FAIL"
			}
			fmt.Printf("%s %-40s baseline %.6g  current %.6g  %s\n",
				mark, f.Metric, f.Baseline, f.Current, f.Detail)
		}
	}
	regs := res.Regressions()
	if len(regs) == 0 {
		fmt.Printf("benchgate: %s vs %s: %d metrics compared, no regressions\n",
			currentPath, *baselinePath, len(res.Findings))
		return
	}
	fmt.Fprintf(os.Stderr, "benchgate: %d regression(s) against %s:\n", len(regs), *baselinePath)
	for _, f := range regs {
		fmt.Fprintf(os.Stderr, "  %-40s baseline %.6g  current %.6g  %s\n",
			f.Metric, f.Baseline, f.Current, f.Detail)
	}
	fmt.Fprintln(os.Stderr, "benchgate: intended change? re-record with `make bench-record` and commit the new baseline")
	os.Exit(1)
}

// copyFile writes src's bytes over dst.
func copyFile(src, dst string) error {
	in, err := os.Open(src)
	if err != nil {
		return err
	}
	defer in.Close()
	out, err := os.Create(dst)
	if err != nil {
		return err
	}
	if _, err := io.Copy(out, in); err != nil {
		out.Close()
		return err
	}
	return out.Close()
}
