// Command gpsctl is the CLI for a running gpsd: submit job specs, poll
// status, fetch results, cancel jobs, and read node health — against a
// single daemon or any node of a cluster (non-owners forward and proxy
// transparently, so it never matters which node the flag points at).
//
// Usage:
//
//	gpsctl -addr http://localhost:8377 submit spec.json   # or "-" for stdin
//	gpsctl submit -wait spec.json                         # block until terminal
//	gpsctl status n1-j-000001
//	gpsctl result n1-j-000001
//	gpsctl cancel n1-j-000001
//	gpsctl health
//
// Exit status: 0 on success, 1 on API or transport errors, 2 on usage
// errors. submit -wait exits 1 if the job ends failed or canceled.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"gps/internal/client"
	"gps/internal/retry"
	"gps/internal/service"
)

func main() {
	var (
		addr    = flag.String("addr", "http://127.0.0.1:8377", "gpsd base URL")
		timeout = flag.Duration("timeout", 0, "overall deadline for the command (0 = none)")
		retries = flag.Int("retries", 3, "attempts per request on transient failure (429/5xx/transport)")
	)
	flag.Usage = usage
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	c := client.New(*addr, client.WithRetry(retry.Policy{
		MaxAttempts: *retries,
		BaseDelay:   200 * time.Millisecond,
		MaxDelay:    5 * time.Second,
		Jitter:      0.2,
	}))

	cmd, rest := args[0], args[1:]
	var err error
	switch cmd {
	case "submit":
		err = cmdSubmit(ctx, c, rest)
	case "status":
		err = cmdStatus(ctx, c, rest)
	case "result":
		err = cmdResult(ctx, c, rest)
	case "cancel":
		err = cmdCancel(ctx, c, rest)
	case "health":
		err = cmdHealth(ctx, c)
	case "cluster":
		err = cmdCluster(ctx, c, rest)
	case "top":
		err = cmdTop(ctx, c, rest)
	default:
		fmt.Fprintf(os.Stderr, "gpsctl: unknown command %q\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "gpsctl:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: gpsctl [flags] <command> [args]

commands:
  submit [-wait] <spec.json|->   submit a job spec (file or stdin)
  status <job-id>                print one job's status
  result <job-id>                print a done job's report
  cancel <job-id>                cancel a queued or running job
  health                         print the node's health snapshot
  cluster [-json]                print ring ownership, peer liveness and
                                 suspicion, per-node load (queue, in-flight,
                                 cache hit rate), and replication/takeover
                                 counters
  top [-interval d] [-once] [-json]
                                 live per-node operator view: queue depth,
                                 workers, cache hit rate, steal/adoption
                                 counters, e2e latency p50/p99

flags:
`)
	flag.PrintDefaults()
}

func cmdSubmit(ctx context.Context, c *client.Client, args []string) error {
	fs := flag.NewFlagSet("submit", flag.ExitOnError)
	wait := fs.Bool("wait", false, "block until the job is terminal; print the report")
	poll := fs.Duration("poll", 200*time.Millisecond, "status poll interval with -wait")
	fs.Parse(args) //nolint:errcheck // ExitOnError
	if fs.NArg() != 1 {
		return fmt.Errorf("submit wants exactly one spec file (or \"-\" for stdin)")
	}

	var data []byte
	var err error
	if name := fs.Arg(0); name == "-" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(name)
	}
	if err != nil {
		return err
	}
	var spec service.Spec
	if err := json.Unmarshal(data, &spec); err != nil {
		return fmt.Errorf("parse spec: %w", err)
	}

	sub, err := c.Submit(ctx, spec)
	if err != nil {
		return err
	}
	if !*wait {
		return printJSON(sub)
	}
	fmt.Fprintf(os.Stderr, "gpsctl: job %s %s (%s); waiting\n", sub.ID, sub.State, sub.Outcome)
	st, err := c.WaitTerminal(ctx, sub.ID, *poll)
	if err != nil {
		return err
	}
	if st.State != service.StateDone {
		return fmt.Errorf("job %s ended %s: %s", st.ID, st.State, st.Error)
	}
	rep, err := c.Result(ctx, st.ID)
	if err != nil {
		return err
	}
	return rep.Encode(os.Stdout)
}

func cmdStatus(ctx context.Context, c *client.Client, args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("status wants exactly one job ID")
	}
	st, err := c.Status(ctx, args[0])
	if err != nil {
		return err
	}
	return printJSON(st)
}

func cmdResult(ctx context.Context, c *client.Client, args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("result wants exactly one job ID")
	}
	rep, err := c.Result(ctx, args[0])
	if err != nil {
		return err
	}
	if rep == nil {
		return fmt.Errorf("job %s is not done yet", args[0])
	}
	return rep.Encode(os.Stdout)
}

func cmdCancel(ctx context.Context, c *client.Client, args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("cancel wants exactly one job ID")
	}
	st, err := c.Cancel(ctx, args[0])
	if err != nil {
		return err
	}
	return printJSON(st)
}

func cmdHealth(ctx context.Context, c *client.Client) error {
	h, err := c.Healthz(ctx)
	if err != nil {
		// A draining node still returns a health body worth printing.
		if h.Status != "" {
			printJSON(h) //nolint:errcheck // best-effort before the error
		}
		return err
	}
	return printJSON(h)
}

// cmdCluster renders the node's cluster view for operators: who it thinks
// is alive (and how suspicious it is of everyone else), per-node load from
// the federated metrics endpoint, where a sample of ring keys currently
// routes, and the self-healing counters — replication lag toward its
// successor and takeovers it has run for dead peers.
func cmdCluster(ctx context.Context, c *client.Client, args []string) error {
	fs := flag.NewFlagSet("cluster", flag.ExitOnError)
	jsonOut := fs.Bool("json", false, "emit health + federated metrics as JSON")
	fs.Parse(args) //nolint:errcheck // ExitOnError
	h, err := c.Healthz(ctx)
	if err != nil && h.Status == "" {
		return err // unreachable; a draining node still yields a body below
	}
	if h.Role != "cluster" {
		return fmt.Errorf("node %s is not in cluster mode", h.NodeID)
	}
	// The federated view is best-effort decoration: a node predating the
	// endpoint (404) still renders the health-derived table.
	cm, cmErr := c.ClusterMetrics(ctx)
	byNode := map[string]*service.Metrics{}
	if cmErr == nil {
		for i := range cm.Nodes {
			byNode[cm.Nodes[i].Node] = cm.Nodes[i].Metrics
		}
	}
	if *jsonOut {
		out := struct {
			Health  client.Health             `json:"health"`
			Metrics client.ClusterMetricsResp `json:"cluster_metrics"`
		}{Health: h, Metrics: cm}
		if perr := printJSON(out); perr != nil {
			return perr
		}
		return err
	}
	load := func(node string) string {
		m := byNode[node]
		if m == nil {
			return ""
		}
		return fmt.Sprintf("queue %d  in-flight %d  cache-hit %s",
			m.QueueDepth, m.JobsInFlight, hitRate(m))
	}
	fmt.Printf("node %s (%s)  %s\n", h.NodeID, h.Status, load(h.NodeID))
	fmt.Printf("peers: %d/%d alive\n", h.PeersAlive, h.PeersTotal)
	for _, p := range h.Peers {
		state := "down"
		switch {
		case p.Alive && p.Suspect:
			state = fmt.Sprintf("suspect (%d consecutive failures)", p.Fails)
		case p.Alive:
			state = "alive"
		}
		fmt.Printf("  %-12s %-28s %-8s %s\n", p.ID, p.URL, state, load(p.ID))
	}
	if cs := h.Cluster; cs != nil {
		fmt.Println("replication:")
		target := cs.ReplicationTarget
		if target == "" {
			target = "(no live successor)"
		}
		fmt.Printf("  successor %s  replicated %d  lag %d  errors %d\n",
			target, cs.ReplicatedRecords, cs.ReplicationLag, cs.ReplicationErrors)
		fmt.Printf("  ingested %d  replica_jobs_held %d\n", cs.ReplicatedIngested, cs.ReplicaJobsHeld)
		fmt.Printf("takeovers: %d sweeps, %d jobs promoted\n", cs.Takeovers, cs.TakeoverJobs)
		fmt.Printf("routing: forwards %d (errors %d)  proxied_reads %d  peer_fetches %d\n",
			cs.Forwards, cs.ForwardErrors, cs.ProxiedReads, cs.PeerFetches)
		fmt.Printf("steals: thief %d  victim %d  errors %d\n",
			cs.StealsThief, cs.StealsVictim, cs.StealErrors)
	}
	if len(h.Ring) > 0 {
		fmt.Println("ring sample:")
		for _, ro := range h.Ring {
			fmt.Printf("  %-16s -> %s\n", ro.Key, ro.Owner)
		}
	}
	return err // non-nil when draining: body printed, exit code still 1
}

// hitRate renders a node's result-cache hit rate ("-" before any lookup).
func hitRate(m *service.Metrics) string {
	total := m.ResultCacheHits + m.ResultCacheMisses
	if total == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(m.ResultCacheHits)/float64(total))
}

// cmdTop is the polling operator view: one row per cluster node with queue
// depth, worker occupancy, cache hit rate, steal/adoption counters, and
// end-to-end latency percentiles, refreshed until interrupted.
func cmdTop(ctx context.Context, c *client.Client, args []string) error {
	fs := flag.NewFlagSet("top", flag.ExitOnError)
	interval := fs.Duration("interval", 2*time.Second, "refresh interval")
	once := fs.Bool("once", false, "print one snapshot and exit")
	jsonOut := fs.Bool("json", false, "emit the raw federated metrics as JSON")
	fs.Parse(args) //nolint:errcheck // ExitOnError
	for {
		cm, err := c.ClusterMetrics(ctx)
		if err != nil {
			return err
		}
		switch {
		case *jsonOut:
			if perr := printJSON(cm); perr != nil {
				return perr
			}
		default:
			if !*once {
				fmt.Print("\033[H\033[2J") // home + clear, like top(1)
			}
			renderTop(cm)
		}
		if *once {
			return nil
		}
		select {
		case <-ctx.Done():
			return nil
		case <-time.After(*interval):
		}
	}
}

func renderTop(cm client.ClusterMetricsResp) {
	fmt.Printf("%-12s %-6s %6s %10s %8s %5s %6s %7s %8s %10s %10s\n",
		"NODE", "STATE", "QUEUE", "IN-FLIGHT", "WORKERS", "BUSY", "HIT%", "STOLEN", "ADOPTED", "E2E-P50", "E2E-P99")
	for _, n := range cm.Nodes {
		if n.Metrics == nil {
			state := "down"
			if n.Error != "" {
				state = "error"
			}
			fmt.Printf("%-12s %-6s %s\n", n.Node, state, n.Error)
			continue
		}
		m := n.Metrics
		p50, p99 := "-", "-"
		if m.JobE2E != nil {
			p50 = fmt.Sprintf("%.3fs", m.JobE2E.P50)
			p99 = fmt.Sprintf("%.3fs", m.JobE2E.P99)
		}
		fmt.Printf("%-12s %-6s %6d %10d %8d %5d %6s %7d %8d %10s %10s\n",
			n.Node, "up", m.QueueDepth, m.JobsInFlight, m.Workers, m.BusyWorkers,
			hitRate(m), m.JobsStolen, m.JobsAdopted, p50, p99)
	}
}

func printJSON(v any) error {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}
