// Command gpsim runs one application under one memory-management paradigm
// on one interconnect and prints the simulated execution report.
//
// Usage:
//
//	gpsim -app jacobi -paradigm GPS -gpus 4 -interconnect pcie4
//	gpsim -app als -paradigm UM -gpus 16 -interconnect pcie6 -v
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"

	"gps/internal/engine"
	"gps/internal/experiments"
	"gps/internal/interconnect"
	"gps/internal/paradigm"
	"gps/internal/timing"
	"gps/internal/trace"
	"gps/internal/workload"
)

func main() {
	var (
		traceFile = flag.String("trace", "", "run a saved binary trace instead of generating one")
		app       = flag.String("app", "jacobi", "application: "+strings.Join(workload.Names(), ", "))
		par       = flag.String("paradigm", "GPS", "memory management paradigm")
		gpus      = flag.Int("gpus", 4, "GPU count")
		ic        = flag.String("interconnect", "pcie4", "fabric: pcie3..pcie6, nvswitch, infinite")
		iters     = flag.Int("iters", 4, "execution iterations")
		scale     = flag.Int("scale", 1, "problem size multiplier")
		verbose   = flag.Bool("v", false, "per-phase breakdown and bottleneck links")
		packet    = flag.Bool("packet", false, "use the packet-level fabric engine instead of the fluid model")
		parallel  = flag.Int("parallel", 0, "experiment worker goroutines (0 = GOMAXPROCS, 1 = serial)")
	)
	flag.Parse()
	experiments.SetParallelism(*parallel)

	// SIGINT cancels the run cleanly instead of killing the process
	// mid-report: pending cells stop issuing and gpsim exits 130.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	die := func(err error) {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "gpsim: interrupted")
			os.Exit(130)
		}
		fmt.Fprintln(os.Stderr, "gpsim:", err)
		os.Exit(1)
	}

	var prog trace.Program
	var pattern string
	if *traceFile != "" {
		f, err := os.Open(*traceFile)
		if err != nil {
			die(err)
		}
		rec, err := trace.Decode(f)
		f.Close()
		if err != nil {
			die(err)
		}
		prog = rec
		*gpus = rec.M.NumGPUs
		*app = rec.M.Name
		pattern = "(from trace file)"
	}
	fab, err := interconnect.ByName(*ic, *gpus)
	if err != nil {
		die(err)
	}
	k, err := paradigm.KindByName(*par)
	if err != nil {
		die(err)
	}
	opt := experiments.Options{Iterations: *iters, Scale: *scale}
	var rep *timing.Report
	var res *engine.Result
	if prog == nil {
		// Generated traces go through the experiments runner so the trace and
		// the single-GPU baseline come from (and land in) the shared cache.
		spec, err := workload.ByName(*app)
		if err != nil {
			die(err)
		}
		pattern = spec.Pattern
		rep, res, err = experiments.Default.RunCellCtx(ctx, experiments.Cell{
			App: *app, Kind: k, GPUs: *gpus, Fab: fab,
			Opt: opt, Cfg: paradigm.DefaultConfig(), Packet: *packet,
		})
		if err != nil {
			die(err)
		}
	} else {
		model, err := paradigm.New(k, prog, paradigm.DefaultConfig())
		if err != nil {
			die(err)
		}
		res = engine.Run(prog, model)
		tcfg := timing.DefaultConfig(fab)
		tcfg.UsePacketSim = *packet
		rep = timing.Simulate(res, tcfg)
	}

	if err := ctx.Err(); err != nil {
		die(err) // interrupted while simulating: skip the report entirely
	}

	engineName := "fluid max-min"
	if *packet {
		engineName = "packet-level"
	}
	fmt.Printf("%s under %s on %s (%s fabric engine)\n", *app, k, fab.Name(), engineName)
	fmt.Printf("  pattern:            %s\n", pattern)
	fmt.Printf("  total time:         %.3f ms\n", rep.Total*1e3)
	fmt.Printf("  steady-state time:  %.3f ms\n", rep.SteadyTotal()*1e3)
	if *traceFile == "" {
		// Single-GPU reference for the speedup (only meaningful when the
		// trace can be regenerated at 1 GPU); memoized in the runner.
		base, err := experiments.Default.Baseline(*app, opt, paradigm.DefaultConfig())
		if err != nil {
			die(err)
		}
		fmt.Printf("  1-GPU steady time:  %.3f ms\n", base*1e3)
		fmt.Printf("  speedup over 1 GPU: %.2fx\n", base/rep.SteadyTotal())
	}
	fmt.Printf("  interconnect bytes: %.2f MB (steady state)\n",
		float64(res.InterconnectBytes(res.Meta.ProfilePhases))/1e6)
	fmt.Printf("  page faults:        %d\n", res.TotalFaults())
	if res.SubscriberHist != nil {
		fmt.Printf("  subscriber histogram: %v\n", res.SubscriberHist)
		var wq, tlb float64
		for g := 0; g < *gpus; g++ {
			wq += res.WriteQueueHitRate[g]
			tlb += res.GPSTLBHitRate[g]
		}
		fmt.Printf("  write queue hit rate: %.1f%%\n", wq/float64(*gpus)*100)
		fmt.Printf("  GPS-TLB hit rate:     %.1f%%\n", tlb/float64(*gpus)*100)
	}
	fmt.Printf("  time attribution: kernel %.3f ms, stalls %.3f ms, push wait %.3f ms, bulk %.3f ms, overhead %.3f ms\n",
		rep.ComputeBound*1e3, rep.StallTime*1e3, rep.PushWait*1e3, rep.BulkTime*1e3, rep.Overhead*1e3)

	if *verbose {
		fmt.Println("  phases:")
		for _, pt := range rep.Phases {
			fmt.Printf("    %3d: %.3f ms (kernel %.3f, push-wait %.3f, bulk %.3f)\n",
				pt.Index, pt.Duration*1e3, pt.KernelSpan*1e3, pt.PushDrainSpan*1e3, pt.BulkSpan*1e3)
		}
		if len(rep.LinkTraffic) > 0 {
			fmt.Println("  busiest links:")
			for i, l := range rep.LinkTraffic {
				if i == 6 {
					break
				}
				fmt.Printf("    %-12s %10.2f MB\n", l.Name, l.Bytes/1e6)
			}
		}
	}
}
