// Command gpsd serves the GPS experiment suite as a long-running service:
// simulation jobs are submitted over a JSON REST API, scheduled on a
// bounded worker pool in front of the shared memoizing experiments runner,
// and identical specs are answered from a content-addressed result cache.
//
// Usage:
//
//	gpsd                                # listen on :8377, 2 job workers
//	gpsd -addr 127.0.0.1:0              # ephemeral port (printed on stdout)
//	gpsd -workers 4 -queue 32           # more concurrency, deeper queue
//	gpsd -job-timeout 5m -drain 30s     # per-job cap, shutdown drain budget
//	gpsd -parallel 8                    # simulation cells per job
//	gpsd -shards 4                      # goroutines per structural replay
//	gpsd -journal gpsd.journal          # durable job log; crash recovery
//	gpsd -job-retries 3                 # attempts per job on transient failure
//	gpsd -pprof 127.0.0.1:6060          # net/http/pprof on a separate listener
//	gpsd -log-level debug -log-json     # structured logs on stderr
//	gpsd -trace-dir traces/             # one Perfetto span trace per job
//
// Observability: structured logs (slog) go to stderr, correlated by job_id;
// GET /metrics serves Prometheus text exposition next to the JSON
// /v1/metrics; -trace-dir writes <job-id>.trace.json span traces loadable
// in Perfetto (ui.perfetto.dev).
//
// Submit and poll with curl:
//
//	curl -d '{"type":"figure","figure":8,"quick":true}' localhost:8377/v1/jobs
//	curl localhost:8377/v1/jobs/j-000001
//	curl localhost:8377/v1/jobs/j-000001/result
//
// SIGINT/SIGTERM drain gracefully: running jobs get -drain to finish,
// queued jobs are canceled, then the process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"gps/internal/cluster"
	"gps/internal/experiments"
	"gps/internal/httpapi"
	"gps/internal/obs"
	"gps/internal/report"
	"gps/internal/retry"
	"gps/internal/service"
)

// remoteResult adapts the cluster's peer result fetch into the service's
// RemoteResult hook; a nil cluster (single-node mode) yields a nil hook.
func remoteResult(clu *cluster.Cluster) func(ctx context.Context, hash string) *report.Report {
	if clu == nil {
		return nil
	}
	return clu.FetchPeerResult
}

// reconcile adapts the cluster's resurrection handshake into the service's
// Reconcile hook: journal-replayed jobs that our takeover successor already
// adopted are delegated to it instead of re-run locally.
func reconcile(clu *cluster.Cluster) func(p service.PendingJob) string {
	if clu == nil {
		return nil
	}
	return clu.Reconcile
}

func main() {
	var (
		addr       = flag.String("addr", ":8377", "listen address (host:port; port 0 picks one)")
		workers    = flag.Int("workers", 2, "concurrent jobs")
		queue      = flag.Int("queue", 16, "admission queue depth (beyond running jobs)")
		jobTimeout = flag.Duration("job-timeout", 10*time.Minute, "per-job execution cap (0 = unlimited)")
		drain      = flag.Duration("drain", 30*time.Second, "shutdown drain budget for running jobs")
		parallel   = flag.Int("parallel", 0, "simulation worker goroutines per job (0 = GOMAXPROCS)")
		shards     = flag.Int("shards", 1, "goroutines per structural replay; results are byte-identical at any count, capped so jobs x cells x shards fits GOMAXPROCS")
		cacheN     = flag.Int("cache", 256, "content-addressed result cache entries")
		journalP   = flag.String("journal", "", "job journal path; enables crash recovery (empty = no journal)")
		jobRetries = flag.Int("job-retries", 3, "attempts per job on transient failure")
		pprofAddr  = flag.String("pprof", "", "expose net/http/pprof on this separate listen address (e.g. 127.0.0.1:6060); empty = disabled")
		logLevel   = flag.String("log-level", "info", "log verbosity: debug, info, warn, error (debug adds per-cell progress)")
		logJSON    = flag.Bool("log-json", false, "emit logs as JSON lines instead of logfmt-style text")
		traceDir   = flag.String("trace-dir", "", "write one Perfetto span trace per job to this directory (created if missing); empty = disabled")
		nodeID     = flag.String("node-id", "", "cluster node ID; enables cluster mode (job IDs become <node>-j-NNNNNN)")
		peersFlag  = flag.String("peers", "", "comma-separated peer list, id=http://host:port each (requires -node-id)")
		probeIvl   = flag.Duration("probe-interval", 2*time.Second, "peer healthz liveness probe interval (cluster mode)")
		stealIvl   = flag.Duration("steal-interval", time.Second, "work-steal attempt interval when idle; negative disables stealing (cluster mode)")
		suspicion  = flag.Int("suspicion", 3, "consecutive failed probes before a peer is declared dead (cluster mode)")
		budget     = flag.Int64("trace-budget", 0, "trace cache resident byte budget; compressed blocks spill to a temp file beyond it (0 = default 4 GiB)")
	)
	flag.Parse()

	if *peersFlag != "" && *nodeID == "" {
		fmt.Fprintln(os.Stderr, "gpsd: -peers requires -node-id")
		os.Exit(1)
	}

	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gpsd:", err)
		os.Exit(1)
	}
	logger := obs.NewLogger(os.Stderr, level, *logJSON)
	registry := obs.NewRegistry()

	if *traceDir != "" {
		if err := os.MkdirAll(*traceDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "gpsd:", err)
			os.Exit(1)
		}
	}

	if *pprofAddr != "" {
		// Profiling lives on its own listener so it is never reachable through
		// the public job API's address, and an operator can bind it to
		// loopback only.
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		pln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gpsd:", err)
			os.Exit(1)
		}
		fmt.Printf("gpsd: pprof on %s\n", pln.Addr())
		go func() {
			if err := (&http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}).Serve(pln); err != nil {
				fmt.Fprintln(os.Stderr, "gpsd: pprof:", err)
			}
		}()
	}

	var journal *service.Journal
	if *journalP != "" {
		var err error
		journal, err = service.OpenJournal(*journalP)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gpsd:", err)
			os.Exit(1)
		}
		defer journal.Close()
	}

	experiments.SetParallelism(*parallel)
	// Shards compose with two outer levels of concurrency here: concurrent
	// jobs and cell workers per job. When those already cover the machine the
	// shard count is capped to keep the product within GOMAXPROCS; a serial
	// service (-workers 1 -parallel 1) honors -shards exactly. Results are
	// byte-identical either way — only the schedule changes.
	shardCount := *shards
	if outer := *workers * experiments.Parallelism(); outer > 1 && shardCount > 1 {
		if bound := runtime.GOMAXPROCS(0) / outer; shardCount > bound {
			if bound < 1 {
				bound = 1
			}
			fmt.Fprintf(os.Stderr, "gpsd: capping -shards %d to %d (%d jobs x %d cell workers on GOMAXPROCS=%d)\n",
				shardCount, bound, *workers, experiments.Parallelism(), runtime.GOMAXPROCS(0))
			shardCount = bound
		}
	}
	experiments.SetShards(shardCount)
	if *budget > 0 {
		experiments.Default.SetTraceBudget(uint64(*budget))
	}

	// Cluster mode: the cluster is built before the service so the service
	// can resolve peer-cached results, and bound to it after so the steal
	// loop can execute stolen specs locally.
	var clu *cluster.Cluster
	if *nodeID != "" {
		clu = cluster.New(cluster.Config{
			Self:               *nodeID,
			ProbeInterval:      *probeIvl,
			StealInterval:      *stealIvl,
			SuspicionThreshold: *suspicion,
			Logger:             logger,
			Registry:           registry,
		})
		for _, p := range strings.Split(*peersFlag, ",") {
			p = strings.TrimSpace(p)
			if p == "" {
				continue
			}
			id, url, ok := strings.Cut(p, "=")
			if !ok || id == "" || url == "" {
				fmt.Fprintf(os.Stderr, "gpsd: bad -peers entry %q (want id=http://host:port)\n", p)
				os.Exit(1)
			}
			if id == *nodeID {
				continue // self-entry in a shared config file is fine; skip it
			}
			clu.AddPeer(id, url)
		}
		// One synchronous probe sweep before the service replays its journal:
		// the resurrection handshake (Reconcile) needs a liveness view to ask
		// the ring successor which replayed jobs it already adopted.
		clu.ProbeOnce(context.Background())
	}

	svc := service.New(service.Config{
		Workers:      *workers,
		QueueDepth:   *queue,
		JobTimeout:   *jobTimeout,
		CacheEntries: *cacheN,
		JobRetry:     retry.Policy{MaxAttempts: *jobRetries, BaseDelay: 250 * time.Millisecond, MaxDelay: 10 * time.Second, Jitter: 0.2},
		Journal:      journal,
		Logger:       logger,
		Registry:     registry,
		TraceDir:     *traceDir,
		NodeID:       *nodeID,
		RemoteResult: remoteResult(clu),
		Reconcile:    reconcile(clu),
	})
	if clu != nil {
		clu.Bind(svc)
		if journal != nil {
			// Attach the replication stream: every journal record committed
			// from here on is mirrored to the ring successor. Records replayed
			// above are covered by the initial full-snapshot flush.
			journal.SetSink(clu)
			clu.EnableReplication()
		}
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gpsd:", err)
		os.Exit(1)
	}
	// The resolved address line is load-bearing: serve-smoke and scripts
	// parse it to discover an ephemeral port.
	fmt.Printf("gpsd: listening on %s (%d workers, queue %d, job timeout %v)\n",
		ln.Addr(), *workers, *queue, *jobTimeout)
	if journal != nil {
		fmt.Printf("gpsd: journal %s (%d jobs recovered)\n",
			journal.Path(), svc.Metrics().JobsReplayed)
	}

	// Slow-client protection: a stalled or malicious peer must not pin a
	// connection (and its goroutine) forever. WriteTimeout is generous
	// because result bodies for big matrices take real time to render.
	apiOpts := []httpapi.Option{httpapi.WithLogger(logger), httpapi.WithRegistry(registry)}
	if clu != nil {
		apiOpts = append(apiOpts, httpapi.WithCluster(clu))
	}
	httpSrv := &http.Server{
		Handler:           httpapi.New(svc, apiOpts...),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      2 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if clu != nil {
		peers := clu.Peers()
		fmt.Printf("gpsd: cluster node %s (%d peers)\n", clu.Self(), len(peers))
		clu.Start(ctx)
	}

	select {
	case <-ctx.Done():
	case err := <-serveErr:
		fmt.Fprintln(os.Stderr, "gpsd:", err)
		os.Exit(1)
	}
	stop() // restore default signal handling: a second signal kills hard

	fmt.Printf("gpsd: draining (up to %v)\n", *drain)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	drained := svc.Shutdown(drainCtx)
	httpSrv.Shutdown(drainCtx) //nolint:errcheck // listener teardown best-effort
	if drained != nil && !errors.Is(drained, context.Canceled) {
		fmt.Fprintln(os.Stderr, "gpsd: drain deadline exceeded; running jobs aborted")
		os.Exit(1)
	}
	fmt.Println("gpsd: drained cleanly")
}
