// Command reportlint validates a machine-readable experiment report produced
// by gpsbench -json or the gpsd result endpoint: the file must parse into the
// report schema, record a positive wall clock, and carry the runner's cache
// counters. With -spill it additionally requires proof that the trace spill
// tier ran: traces spilled, blocks read back from the spill file, and the
// compressed resident accounting strictly below the logical 24 B/record
// stream size.
//
// Usage:
//
//	reportlint run.json
//	reportlint -spill run.json
//
// Exit status 0 on a valid report; 1 with a diagnostic otherwise. The smoke
// gate (make spill-smoke) runs it over a budget-constrained gpsbench run.
package main

import (
	"flag"
	"fmt"
	"os"

	"gps/internal/report"
)

func main() {
	spill := flag.Bool("spill", false, "require evidence the trace spill tier ran")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: reportlint [-spill] report.json")
		os.Exit(2)
	}
	rep, err := report.Load(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "reportlint: %s: %v\n", flag.Arg(0), err)
		os.Exit(1)
	}
	die := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "reportlint: %s: %s\n", flag.Arg(0), fmt.Sprintf(format, args...))
		os.Exit(1)
	}
	if rep.TotalSeconds <= 0 {
		die("total_seconds %v not positive", rep.TotalSeconds)
	}
	c := rep.Cache
	if c.TraceBuilds == 0 {
		die("no traces were built: %+v", c)
	}
	if c.TraceLogicalBytes > 0 && c.TraceBytes > c.TraceLogicalBytes {
		die("compressed resident bytes %d exceed logical bytes %d", c.TraceBytes, c.TraceLogicalBytes)
	}
	if *spill {
		if c.TraceSpills == 0 || c.TraceSpillBytes == 0 {
			die("budget never forced a spill: %+v", c)
		}
		if c.SpillBlockReads == 0 || c.SpillReadBytes == 0 {
			die("no blocks were read back from the spill file: %+v", c)
		}
	}
	fmt.Printf("%s: %.1fs, %d sections, traces %d built / %d hits, %d spilled (%d block reads)\n",
		flag.Arg(0), rep.TotalSeconds, len(rep.Sections),
		c.TraceBuilds, c.TraceHits, c.TraceSpills, c.SpillBlockReads)
}
