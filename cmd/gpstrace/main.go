// Command gpstrace generates, converts and inspects application traces —
// the stand-ins for the NVBit SASS traces that drive the simulator.
//
// Usage:
//
//	gpstrace -app jacobi -gpus 4 -o jacobi.trace        # generate binary
//	gpstrace -app jacobi -gpus 4 -json -o jacobi.json   # generate JSON
//	gpstrace -inspect jacobi.trace                      # summarize a trace
package main

import (
	"flag"
	"fmt"
	"os"

	"gps/internal/trace"
	"gps/internal/workload"
)

func main() {
	var (
		app     = flag.String("app", "", "application to generate")
		custom  = flag.String("custom", "", "JSON custom workload spec to generate (see workload.CustomSpec)")
		gpus    = flag.Int("gpus", 4, "GPU count")
		iters   = flag.Int("iters", 4, "execution iterations")
		scale   = flag.Int("scale", 1, "problem size multiplier")
		out     = flag.String("o", "", "output file (default stdout summary only)")
		asJSON  = flag.Bool("json", false, "write JSON instead of the binary format")
		inspect = flag.String("inspect", "", "trace file to summarize")
	)
	flag.Parse()

	die := func(err error) {
		fmt.Fprintln(os.Stderr, "gpstrace:", err)
		os.Exit(1)
	}

	switch {
	case *custom != "":
		f, err := os.Open(*custom)
		if err != nil {
			die(err)
		}
		spec, err := workload.ParseCustomSpec(f)
		f.Close()
		if err != nil {
			die(err)
		}
		prog, err := spec.Build(workload.Config{NumGPUs: *gpus, Iterations: *iters, Scale: *scale, Seed: 1})
		if err != nil {
			die(err)
		}
		summarize(prog)
		if *out != "" {
			writeTrace(prog, *out, *asJSON, die)
		}
	case *inspect != "":
		f, err := os.Open(*inspect)
		if err != nil {
			die(err)
		}
		defer f.Close()
		prog, err := trace.Decode(f)
		if err != nil {
			die(err)
		}
		summarize(prog)
	case *app != "":
		spec, err := workload.ByName(*app)
		if err != nil {
			die(err)
		}
		prog := spec.Build(workload.Config{NumGPUs: *gpus, Iterations: *iters, Scale: *scale, Seed: 1})
		summarize(prog)
		if *out != "" {
			writeTrace(prog, *out, *asJSON, die)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func writeTrace(prog trace.Program, path string, asJSON bool, die func(error)) {
	f, err := os.Create(path)
	if err != nil {
		die(err)
	}
	defer f.Close()
	if asJSON {
		err = trace.EncodeJSON(f, prog)
	} else {
		err = trace.Encode(f, prog)
	}
	if err != nil {
		die(err)
	}
	info, _ := f.Stat()
	fmt.Printf("wrote %s (%d bytes)\n", path, info.Size())
}

func summarize(prog trace.Program) {
	meta := prog.Meta()
	s := trace.Summarize(prog)
	fmt.Printf("trace %q: %d GPUs, %d regions, %d profiling phases\n",
		meta.Name, meta.NumGPUs, len(meta.Regions), meta.ProfilePhases)
	for _, r := range meta.Regions {
		kind := "shared"
		if r.Kind == trace.RegionPrivate {
			kind = "private"
		}
		fmt.Printf("  region %-16s %8.2f MB  %s\n", r.Name, float64(r.Size)/1e6, kind)
	}
	fmt.Printf("  phases %d, kernels %d, accesses %d (%d loads, %d stores, %d atomics, %d fences)\n",
		s.Phases, s.Kernels, s.Accesses, s.Loads, s.Stores, s.Atomics, s.Fences)
	fmt.Printf("  instruction bytes: %.2f MB, sys-scoped ops: %d\n", float64(s.Bytes)/1e6, s.SysScoped)
}
