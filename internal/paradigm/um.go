package paradigm

import (
	"gps/internal/engine"
	"gps/internal/memsys"
	"gps/internal/trace"
)

// umModel is baseline Unified Memory without hints: a single address space
// with fault-based page migration. Every access to a page resident on
// another GPU faults, stalls the accessor for the fault round trip, and
// migrates the whole page. Pages shared read-write by several GPUs thrash
// back and forth, which is exactly the pathology Section 7.1 reports.
//
// Like the production UM driver, the model detects thrashing: after a page
// has migrated thrashLimit times within one phase, it is pinned where it is
// and remote GPUs access it at line granularity over the interconnect
// instead of faulting (CUDA's documented thrash mitigation). Without this,
// interleaved atomics would serialize faults without bound, far beyond the
// slowdowns real UM exhibits.
type umModel struct {
	base
	pages *memsys.PageMap[umPage]
	epoch uint32
}

// umPage is one page's residency and thrash state, slab-packed. The thrash
// fields are per phase: instead of sweeping them at every barrier, they are
// reset lazily when the stamp doesn't match the current epoch.
type umPage struct {
	owner  uint8 // resident GPU + 1; 0 = not yet populated
	thrash uint8 // migrations this phase
	pinned bool  // thrash-mitigated: accessed remotely, no more migration
	stamp  uint32
}

// thrashLimit is the per-phase migration budget before a page is pinned.
const thrashLimit = 2

func newUM(meta trace.Meta, cfg Config) *umModel {
	m := &umModel{base: newBase("UM", meta, cfg)}
	m.pages = memsys.NewPageMap[umPage](m.pageBytes)
	return m
}

func (m *umModel) Access(gpu int, a trace.Access, lines []uint64) {
	m.AccessBatch(gpu, m.singleBatch(a, lines))
}

func (m *umModel) AccessBatch(gpu int, b *engine.Batch) {
	prof := &m.profiles[gpu]
	lastSlot, lastVPN := ^uint64(0), ^uint64(0)
	var region *trace.Region
	var p *umPage
	for i := range b.Accs {
		a := &b.Accs[i]
		if a.Op == trace.OpFence {
			continue
		}
		isWrite := a.IsWrite()
		for _, line := range b.LinesOf(i) {
			if slot := line >> memsys.RegionSlotShift; slot != lastSlot {
				lastSlot = slot
				region = m.regions.SlotRegion(slot)
			}
			if region == nil || region.Kind != trace.RegionShared ||
				line < region.Base || line-region.Base >= region.Size {
				prof.LocalBytes += lineBytes
				continue
			}
			if vpn := line >> m.vpnShift; vpn != lastVPN {
				lastVPN = vpn
				p = m.pages.At(vpn)
				if p.stamp != m.epoch {
					p.thrash, p.pinned, p.stamp = 0, false, m.epoch
				}
			}
			switch {
			case p.owner == 0:
				// First touch: populate on the accessor (a minor fault with no
				// data movement).
				p.owner = uint8(gpu + 1)
				prof.Faults++
				prof.LocalBytes += lineBytes
			case int(p.owner) == gpu+1:
				prof.LocalBytes += lineBytes
			case p.pinned:
				// Thrash-mitigated: access the line remotely without migrating.
				owner := int(p.owner) - 1
				if isWrite {
					prof.Push[owner] += lineBytes
				} else {
					prof.RemoteRead[owner] += lineBytes
					prof.RemoteReadLines++
				}
			default:
				// Fault + migrate the page to the accessor.
				prof.Faults++
				prof.RemoteRead[int(p.owner)-1] += m.pageBytes
				p.owner = uint8(gpu + 1)
				prof.LocalBytes += lineBytes
				p.thrash++
				if p.thrash >= thrashLimit {
					p.pinned = true
				}
			}
		}
	}
}

func (m *umModel) EndPhase(int) {
	// Thrash detection state is periodic in the driver; bumping the epoch
	// invalidates every page's per-phase state without a sweep.
	m.epoch++
}

func (m *umModel) Finish(*engine.Result) {}
