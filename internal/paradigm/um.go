package paradigm

import (
	"gps/internal/engine"
	"gps/internal/trace"
)

// umModel is baseline Unified Memory without hints: a single address space
// with fault-based page migration. Every access to a page resident on
// another GPU faults, stalls the accessor for the fault round trip, and
// migrates the whole page. Pages shared read-write by several GPUs thrash
// back and forth, which is exactly the pathology Section 7.1 reports.
//
// Like the production UM driver, the model detects thrashing: after a page
// has migrated thrashLimit times within one phase, it is pinned where it is
// and remote GPUs access it at line granularity over the interconnect
// instead of faulting (CUDA's documented thrash mitigation). Without this,
// interleaved atomics would serialize faults without bound, far beyond the
// slowdowns real UM exhibits.
type umModel struct {
	base
	loc    map[uint64]int // vpn -> resident GPU
	thrash map[uint64]int // vpn -> migrations this phase
	pinned map[uint64]bool
}

// thrashLimit is the per-phase migration budget before a page is pinned.
const thrashLimit = 2

func newUM(meta trace.Meta, cfg Config) *umModel {
	return &umModel{
		base:   newBase("UM", meta, cfg),
		loc:    map[uint64]int{},
		thrash: map[uint64]int{},
		pinned: map[uint64]bool{},
	}
}

func (m *umModel) Access(gpu int, a trace.Access, lines []uint64) {
	if a.Op == trace.OpFence {
		return
	}
	prof := &m.profiles[gpu]
	for _, line := range lines {
		r := m.regions.Lookup(line)
		if r == nil || r.Kind != trace.RegionShared {
			prof.LocalBytes += lineBytes
			continue
		}
		vpn := m.vpn(line)
		owner, populated := m.loc[vpn]
		switch {
		case !populated:
			// First touch: populate on the accessor (a minor fault with no
			// data movement).
			m.loc[vpn] = gpu
			prof.Faults++
			prof.LocalBytes += lineBytes
		case owner == gpu:
			prof.LocalBytes += lineBytes
		case m.pinned[vpn]:
			// Thrash-mitigated: access the line remotely without migrating.
			if a.IsWrite() {
				prof.Push[owner] += lineBytes
			} else {
				prof.RemoteRead[owner] += lineBytes
				prof.RemoteReadLines++
			}
		default:
			// Fault + migrate the page to the accessor.
			prof.Faults++
			prof.RemoteRead[owner] += m.pageBytes
			m.loc[vpn] = gpu
			prof.LocalBytes += lineBytes
			m.thrash[vpn]++
			if m.thrash[vpn] >= thrashLimit {
				m.pinned[vpn] = true
			}
		}
	}
}

func (m *umModel) EndPhase(int) {
	// Thrash detection state is periodic in the driver; reset per phase.
	clear(m.thrash)
	clear(m.pinned)
}

func (m *umModel) Finish(*engine.Result) {}
