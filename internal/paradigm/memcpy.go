package paradigm

import (
	"gps/internal/engine"
	"gps/internal/trace"
)

// memcpyModel duplicates every shared data structure on every GPU and
// broadcasts it with cudaMemcpy at each synchronization barrier (Section
// 6). All kernel accesses are local; the cost is bulk-synchronous transfer
// time with zero compute overlap, and bandwidth wasted copying data to GPUs
// that never touch it (the Figure 10 normalization baseline: all shared
// data crosses to each GPU once per barrier).
//
// With elideTransfers set, the same model becomes the infinite-bandwidth
// upper bound: the paper obtains it "by eliding the data transfer time from
// the memcpy variant".
type memcpyModel struct {
	base
	elideTransfers bool
	pipelined      bool           // overlap broadcasts with compute (expert double buffering)
	dirty          map[uint64]int // vpn -> last writer this phase
}

func newMemcpy(meta trace.Meta, cfg Config, elideTransfers bool) *memcpyModel {
	name := "memcpy"
	if elideTransfers {
		name = "infiniteBW"
	}
	return &memcpyModel{
		base:           newBase(name, meta, cfg),
		elideTransfers: elideTransfers,
		dirty:          map[uint64]int{},
	}
}

// newMemcpyAsync is the expert double-buffered variant of Section 2.1:
// cudaMemcpy transfers pipelined against compute ("implementing pipeline
// parallelism requires significant programmer effort"). The broadcast
// volume is identical to plain memcpy; only its overlap differs.
func newMemcpyAsync(meta trace.Meta, cfg Config) *memcpyModel {
	m := newMemcpy(meta, cfg, false)
	m.name = "memcpy-async"
	m.pipelined = true
	return m
}

func (m *memcpyModel) Access(gpu int, a trace.Access, lines []uint64) {
	if a.Op == trace.OpFence {
		return
	}
	prof := &m.profiles[gpu]
	for _, line := range lines {
		prof.LocalBytes += lineBytes // every structure is mirrored locally
		if a.IsWrite() {
			if r := m.sharedRegion(line); r != nil {
				m.dirty[m.vpn(line)] = gpu
			}
		}
	}
}

func (m *memcpyModel) EndPhase(int) {
	if m.n > 1 && !m.elideTransfers {
		// Barrier: broadcast every page written this phase from its writer
		// to every other GPU, keeping all mirrors coherent before the next
		// kernels launch.
		for _, src := range m.dirty {
			for dst := 0; dst < m.n; dst++ {
				if dst == src {
					continue
				}
				if m.pipelined {
					// Double buffering: the copy overlaps compute and only
					// has to finish by the next barrier.
					m.profiles[src].Push[dst] += m.pageBytes
				} else {
					m.profiles[src].Bulk[dst] += m.pageBytes
				}
			}
		}
	}
	clear(m.dirty)
}

func (m *memcpyModel) Finish(*engine.Result) {}
