package paradigm

import (
	"gps/internal/engine"
	"gps/internal/memsys"
	"gps/internal/trace"
)

// memcpyModel duplicates every shared data structure on every GPU and
// broadcasts it with cudaMemcpy at each synchronization barrier (Section
// 6). All kernel accesses are local; the cost is bulk-synchronous transfer
// time with zero compute overlap, and bandwidth wasted copying data to GPUs
// that never touch it (the Figure 10 normalization baseline: all shared
// data crosses to each GPU once per barrier).
//
// With elideTransfers set, the same model becomes the infinite-bandwidth
// upper bound: the paper obtains it "by eliding the data transfer time from
// the memcpy variant".
type memcpyModel struct {
	base
	elideTransfers bool
	pipelined      bool // overlap broadcasts with compute (expert double buffering)
	pages          *memsys.PageMap[memcpyPage]
	dirty          []uint64 // pages written this phase, in first-write order
	epoch          uint32
}

// memcpyPage records the page's last writer this phase; the stamp marks
// membership in the current phase's dirty list.
type memcpyPage struct {
	writer uint8 // last writer this phase + 1
	stamp  uint32
}

func newMemcpy(meta trace.Meta, cfg Config, elideTransfers bool) *memcpyModel {
	name := "memcpy"
	if elideTransfers {
		name = "infiniteBW"
	}
	m := &memcpyModel{
		base:           newBase(name, meta, cfg),
		elideTransfers: elideTransfers,
	}
	m.pages = memsys.NewPageMap[memcpyPage](m.pageBytes)
	m.epoch = 1 // distinct from the zero value of fresh pages
	return m
}

// newMemcpyAsync is the expert double-buffered variant of Section 2.1:
// cudaMemcpy transfers pipelined against compute ("implementing pipeline
// parallelism requires significant programmer effort"). The broadcast
// volume is identical to plain memcpy; only its overlap differs.
func newMemcpyAsync(meta trace.Meta, cfg Config) *memcpyModel {
	m := newMemcpy(meta, cfg, false)
	m.name = "memcpy-async"
	m.pipelined = true
	return m
}

func (m *memcpyModel) Access(gpu int, a trace.Access, lines []uint64) {
	m.AccessBatch(gpu, m.singleBatch(a, lines))
}

func (m *memcpyModel) AccessBatch(gpu int, b *engine.Batch) {
	prof := &m.profiles[gpu]
	lastSlot, lastVPN := ^uint64(0), ^uint64(0)
	var region *trace.Region
	var p *memcpyPage
	for i := range b.Accs {
		a := &b.Accs[i]
		if a.Op == trace.OpFence {
			continue
		}
		lines := b.LinesOf(i)
		prof.LocalBytes += uint64(len(lines)) * lineBytes // every structure is mirrored locally
		if !a.IsWrite() {
			continue
		}
		for _, line := range lines {
			if slot := line >> memsys.RegionSlotShift; slot != lastSlot {
				lastSlot = slot
				region = m.regions.SlotRegion(slot)
			}
			if region == nil || region.Kind != trace.RegionShared ||
				line < region.Base || line-region.Base >= region.Size {
				continue
			}
			if vpn := line >> m.vpnShift; vpn != lastVPN {
				lastVPN = vpn
				p = m.pages.At(vpn)
				if p.stamp != m.epoch {
					p.stamp = m.epoch
					m.dirty = append(m.dirty, vpn)
				}
			}
			p.writer = uint8(gpu + 1)
		}
	}
}

func (m *memcpyModel) EndPhase(int) {
	if m.n > 1 && !m.elideTransfers {
		// Barrier: broadcast every page written this phase from its writer
		// to every other GPU, keeping all mirrors coherent before the next
		// kernels launch.
		for _, vpn := range m.dirty {
			src := int(m.pages.Peek(vpn).writer) - 1
			for dst := 0; dst < m.n; dst++ {
				if dst == src {
					continue
				}
				if m.pipelined {
					// Double buffering: the copy overlaps compute and only
					// has to finish by the next barrier.
					m.profiles[src].Push[dst] += m.pageBytes
				} else {
					m.profiles[src].Bulk[dst] += m.pageBytes
				}
			}
		}
	}
	m.dirty = m.dirty[:0]
	m.epoch++
}

func (m *memcpyModel) Finish(*engine.Result) {}
