package paradigm

import (
	"gps/internal/engine"
	"gps/internal/memsys"
)

// Shard plans for the page-partitioned paradigms. UM, RDL, UM+hints and
// memcpy keep all mutable replay state per page (residency, last writer,
// duplicate masks, dirty sets), so the access stream partitions cleanly by
// page: each shard forks a fresh model and replays the full stream with the
// lines of other shards' pages filtered out. Within a partition every page
// still sees its accesses in the sequential global order, so each fork's
// per-page evolution — and therefore every counter — is bit-exact.
//
// GPS shards by GPU instead; see gps_shard.go.

func (m *umModel) ShardPlan() engine.ShardPlan {
	return engine.ShardPlan{Axis: engine.ShardByPage, LineShift: m.vpnShift}
}

func (m *umModel) Fork(shard, shards int) engine.Model {
	return newUM(m.meta, m.cfg)
}

func (m *rdlModel) ShardPlan() engine.ShardPlan {
	return engine.ShardPlan{Axis: engine.ShardByPage, LineShift: m.vpnShift}
}

func (m *rdlModel) Fork(shard, shards int) engine.Model {
	return newRDL(m.meta, m.cfg)
}

// hintsModel couples pages within one 512 KB prefetch block: a load that
// misses duplicates the whole surrounding block. Partitioning at prefetch
// granularity keeps each block on a single shard (pages never span blocks:
// either the page is smaller than a block and nested in it, or the page is
// larger and block transfers stay within one page's partition key).
func (m *hintsModel) ShardPlan() engine.ShardPlan {
	shift := m.vpnShift
	if blockShift := uint(19); shift < blockShift { // log2(prefetchBlockBytes)
		shift = blockShift
	}
	return engine.ShardPlan{Axis: engine.ShardByPage, LineShift: shift}
}

func (m *hintsModel) Fork(shard, shards int) engine.Model {
	c := &hintsModel{base: newBase(m.name, m.meta, m.cfg)}
	c.pages = memsys.NewPageMap[hintsPage](c.pageBytes)
	// Copy the preferred locations derived from the sharing scan at
	// construction; the scan itself cannot be replayed here (the program was
	// consumed), and the preset homes are exactly the state forks must agree
	// on. First-touch defaults for unset homes replay identically per shard
	// because each page's stream order is preserved.
	m.pages.ForEach(func(vpn uint64, p *hintsPage) {
		if p.home != 0 {
			c.pages.At(vpn).home = p.home
		}
	})
	return c
}

func (m *memcpyModel) ShardPlan() engine.ShardPlan {
	return engine.ShardPlan{Axis: engine.ShardByPage, LineShift: m.vpnShift}
}

func (m *memcpyModel) Fork(shard, shards int) engine.Model {
	c := newMemcpy(m.meta, m.cfg, m.elideTransfers)
	c.name = m.name
	c.pipelined = m.pipelined
	return c
}
