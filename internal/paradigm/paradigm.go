// Package paradigm implements the six multi-GPU memory management
// paradigms the paper evaluates (Section 6): fault-based Unified Memory,
// Unified Memory with expert hints, Remote Demand Loads, bulk-synchronous
// memcpy mirroring, GPS (with and without subscription tracking), and the
// infinite-bandwidth upper bound. Each paradigm is an engine.Model: it
// routes every cache-line access through its machinery and charges traffic
// to the per-phase profiles that the timing simulator later prices.
package paradigm

import (
	"fmt"
	"strings"

	"gps/internal/engine"
	"gps/internal/gpuconf"
	"gps/internal/memsys"
	"gps/internal/trace"
)

// Kind selects a paradigm.
type Kind int

// The paradigms of Section 6.
const (
	// KindUM is baseline Unified Memory: fault-based page migration to the
	// accessing GPU.
	KindUM Kind = iota
	// KindUMHints is Unified Memory with hand-tuned preferred-location,
	// accessed-by and prefetch hints.
	KindUMHints
	// KindRDL is Remote Demand Loads: stores local, loads issued to the GPU
	// that last wrote the page.
	KindRDL
	// KindMemcpy duplicates shared data on all GPUs and broadcasts it with
	// bulk copies at every synchronization barrier.
	KindMemcpy
	// KindGPS is the paper's proposal with automatic subscription tracking.
	KindGPS
	// KindGPSNoSub is GPS with subscription management disabled (all-to-all
	// replication), the Figure 11 ablation.
	KindGPSNoSub
	// KindInfinite elides all transfer costs: the strong-scaling upper
	// bound.
	KindInfinite
	// KindGPSUnsubDefault is GPS with unsubscribed-by-default profiling
	// (the Section 3.2 alternative): GPUs subscribe on first read, paying
	// population stalls during the profiling iteration.
	KindGPSUnsubDefault
	// KindMemcpyAsync is the expert pipelined cudaMemcpy variant (Section
	// 2.1): the same broadcasts as memcpy, double-buffered to overlap with
	// compute.
	KindMemcpyAsync
)

func (k Kind) String() string {
	switch k {
	case KindUM:
		return "UM"
	case KindUMHints:
		return "UM+hints"
	case KindRDL:
		return "RDL"
	case KindMemcpy:
		return "memcpy"
	case KindGPS:
		return "GPS"
	case KindGPSNoSub:
		return "GPS-nosub"
	case KindInfinite:
		return "infiniteBW"
	case KindGPSUnsubDefault:
		return "GPS-unsub-default"
	case KindMemcpyAsync:
		return "memcpy-async"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Figure8Kinds returns the paradigms compared in the headline figures, in
// the paper's bar order.
func Figure8Kinds() []Kind {
	return []Kind{KindUM, KindUMHints, KindRDL, KindMemcpy, KindGPS, KindInfinite}
}

// Kinds enumerates every paradigm, in declaration order.
func Kinds() []Kind {
	return []Kind{
		KindUM, KindUMHints, KindRDL, KindMemcpy, KindGPS,
		KindGPSNoSub, KindInfinite, KindGPSUnsubDefault, KindMemcpyAsync,
	}
}

// KindByName resolves a paradigm by its String() name, case-insensitively.
// The CLIs and the gpsd job specs share this parser.
func KindByName(name string) (Kind, error) {
	for _, k := range Kinds() {
		if strings.EqualFold(k.String(), name) {
			return k, nil
		}
	}
	return 0, fmt.Errorf("paradigm: unknown paradigm %q (UM, UM+hints, RDL, memcpy, GPS, GPS-nosub, infiniteBW, GPS-unsub-default, memcpy-async)", name)
}

// Config carries the machine description plus the GPS structure overrides
// used by the sensitivity studies.
type Config struct {
	Machine gpuconf.Config
	// PageBytes overrides the translation granularity (Section 7.4 page
	// size study); 0 means the machine default.
	PageBytes uint64
	// WriteQueueEntries overrides the GPS remote write queue capacity
	// (Figure 14); 0 means the machine default. The watermark follows as
	// capacity-1 unless WriteQueueWatermark is set.
	WriteQueueEntries   int
	WriteQueueWatermark int
	// GPSTLBEntries/Ways override the GPS-TLB geometry (Section 7.4).
	GPSTLBEntries int
	GPSTLBWays    int
}

// DefaultConfig returns the Table 1 machine with no overrides.
func DefaultConfig() Config {
	return Config{Machine: gpuconf.Default()}
}

func (c Config) withDefaults() Config {
	if c.PageBytes == 0 {
		c.PageBytes = c.Machine.GPU.PageBytes
	}
	if c.WriteQueueEntries == 0 {
		c.WriteQueueEntries = c.Machine.GPS.WriteQueueEntries
	}
	if c.WriteQueueWatermark == 0 {
		c.WriteQueueWatermark = c.WriteQueueEntries - 1
		if c.WriteQueueWatermark < 1 {
			c.WriteQueueWatermark = 1
		}
	}
	if c.GPSTLBEntries == 0 {
		c.GPSTLBEntries = c.Machine.GPS.TLBEntries
	}
	if c.GPSTLBWays == 0 {
		c.GPSTLBWays = c.Machine.GPS.TLBWays
		if c.GPSTLBEntries < c.GPSTLBWays {
			c.GPSTLBWays = c.GPSTLBEntries
		}
	}
	return c
}

func (c Config) geometry() memsys.Geometry {
	return memsys.MustGeometry(c.PageBytes, uint64(c.Machine.GPU.CacheBlockBytes),
		c.Machine.GPU.VirtualAddrBits, c.Machine.GPU.PhysicalAddrBits)
}

// New builds the model for kind over prog's metadata. UM-with-hints scans
// the program's first iteration to derive the hints an expert programmer
// would write.
func New(kind Kind, prog trace.Program, cfg Config) (engine.Model, error) {
	cfg = cfg.withDefaults()
	meta := prog.Meta()
	if err := meta.Validate(); err != nil {
		return nil, err
	}
	switch kind {
	case KindUM:
		return newUM(meta, cfg), nil
	case KindUMHints:
		return newUMHints(meta, cfg, engine.ScanSharing(prog, meta.ProfilePhases, cfg.PageBytes)), nil
	case KindRDL:
		return newRDL(meta, cfg), nil
	case KindMemcpy:
		return newMemcpy(meta, cfg, false), nil
	case KindInfinite:
		return newMemcpy(meta, cfg, true), nil
	case KindGPS:
		return newGPS(meta, cfg, gpsSubscribedByDefault)
	case KindGPSNoSub:
		return newGPS(meta, cfg, gpsNoSubscription)
	case KindGPSUnsubDefault:
		return newGPS(meta, cfg, gpsUnsubscribedByDefault)
	case KindMemcpyAsync:
		return newMemcpyAsync(meta, cfg), nil
	}
	return nil, fmt.Errorf("paradigm: unknown kind %d", int(kind))
}

// base carries the state every model shares.
type base struct {
	name      string
	meta      trace.Meta
	cfg       Config
	geom      memsys.Geometry
	n         int
	regions   *engine.RegionTable
	pageBytes uint64
	vpnShift  uint

	phase    int
	profiles []engine.Profile
	scratch  engine.Batch // single-instruction batch backing Access
}

func newBase(name string, meta trace.Meta, cfg Config) base {
	geom := cfg.geometry()
	return base{
		name:      name,
		meta:      meta,
		cfg:       cfg,
		geom:      geom,
		n:         meta.NumGPUs,
		regions:   engine.NewRegionTable(meta.Regions),
		pageBytes: cfg.PageBytes,
		vpnShift:  uint(geom.PageShift()),
	}
}

func (b *base) Name() string { return b.name }

func (b *base) BeginPhase(index int, profiles []engine.Profile) {
	b.phase = index
	b.profiles = profiles
}

func (b *base) vpn(line uint64) uint64 { return line >> b.vpnShift }

// singleBatch wraps one instruction as a Batch, so a model's Access can
// delegate to its AccessBatch and the per-line logic lives in one place.
func (b *base) singleBatch(a trace.Access, lines []uint64) *engine.Batch {
	b.scratch.Accs = append(b.scratch.Accs[:0], a)
	b.scratch.Offs = append(b.scratch.Offs[:0], 0, int32(len(lines)))
	b.scratch.Lines = lines
	return &b.scratch
}

// sharedRegion returns the shared region containing line, or nil for
// private or unknown addresses.
func (b *base) sharedRegion(line uint64) *trace.Region {
	r := b.regions.Lookup(line)
	if r == nil || r.Kind != trace.RegionShared {
		return nil
	}
	return r
}

// privateOwner returns the owning GPU for a private region access.
func privateOwner(r *trace.Region, fallback int) int {
	if r != nil && len(r.Writers) > 0 {
		return r.Writers[0]
	}
	return fallback
}

const lineBytes = engine.LineBytes
