package paradigm

import (
	"testing"

	"gps/internal/engine"
	"gps/internal/trace"
	"gps/internal/workload"
)

// handTrace builds a two-GPU trace with one shared region manually
// subscribed to GPU 1 only, where GPU 0 stores a line and then loads it
// back while the block is still resident in its remote write queue.
func handTrace() *trace.Recorded {
	base := uint64(1) << 33
	acc := func(op trace.Op, addr uint64) trace.Access {
		return trace.Access{Op: op, Pattern: trace.PatContiguous, Threads: 32, ElemBytes: 4, Addr: addr}
	}
	return &trace.Recorded{
		M: trace.Meta{
			Name:    "forwarding",
			NumGPUs: 2,
			Regions: []trace.Region{{
				Name: "shared", Kind: trace.RegionShared, Base: base, Size: 1 << 20,
				Writers: []int{0}, Readers: []int{1}, ManualSubscribers: []int{1},
			}},
		},
		Ph: []trace.Phase{{
			Index: 0,
			Kernels: []trace.Kernel{{
				GPU: 0, Name: "producer", ComputeOps: 1000,
				Accesses: []trace.Access{
					acc(trace.OpStore, base),     // queued toward subscriber GPU 1
					acc(trace.OpLoad, base),      // non-subscriber load: forwards from the queue
					acc(trace.OpLoad, base+4096), // different line, not queued: remote
				},
			}},
		}},
	}
}

func TestWriteQueueLoadForwarding(t *testing.T) {
	prog := handTrace()
	m, err := New(KindGPS, prog, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res := engine.Run(prog, m)
	if res.ForwardedLoads != 1 {
		t.Fatalf("forwarded loads = %d, want 1", res.ForwardedLoads)
	}
	p := res.Phases[0].Profiles[0]
	// Exactly one remote read remains: the unqueued line.
	if p.RemoteRead[1] != engine.LineBytes {
		t.Fatalf("remote read bytes = %d, want one line", p.RemoteRead[1])
	}
}

func TestManualSubscribersRespectedInTrace(t *testing.T) {
	prog := handTrace()
	m, err := New(KindGPS, prog, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res := engine.Run(prog, m)
	// GPU 0 never holds a replica; all of its queued stores push to GPU 1.
	var pushed uint64
	for _, ph := range res.Phases {
		pushed += ph.Profiles[0].Push[1]
	}
	if pushed == 0 {
		t.Fatal("stores did not replicate to the manual subscriber")
	}
	// The single-subscriber manual page must never downgrade away.
	if res.SubscriberHist[1] == 0 {
		t.Fatalf("histogram = %v, want the manual page intact", res.SubscriberHist)
	}
}

func TestUnsubscribedByDefaultConvergesToSameSteadyState(t *testing.T) {
	spec, _ := workload.ByName("jacobi")
	prog := spec.Build(workload.Config{NumGPUs: 4, Iterations: 2, Scale: 1, Seed: 1})

	run := func(kind Kind) *engine.Result {
		m, err := New(kind, prog, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		return engine.Run(prog, m)
	}
	subDef := run(KindGPS)
	unsubDef := run(KindGPSUnsubDefault)

	// Steady-state interconnect traffic converges: both discover the same
	// subscriptions.
	post := subDef.Meta.ProfilePhases
	a, b := subDef.InterconnectBytes(post), unsubDef.InterconnectBytes(post)
	ratio := float64(a) / float64(b)
	if ratio < 0.8 || ratio > 1.25 {
		t.Fatalf("steady traffic diverges: %d vs %d", a, b)
	}

	// The profiling iteration differs in kind: unsubscribed-by-default pays
	// first-touch population stalls (counted as faults), subscribed-by-
	// default pays none.
	var unsubFaults int
	for _, ph := range unsubDef.Phases {
		if ph.Index < post {
			for _, p := range ph.Profiles {
				unsubFaults += p.Faults
			}
		}
	}
	if unsubFaults == 0 {
		t.Fatal("unsubscribed-by-default profiling should stall on first touches")
	}
	if subDef.TotalFaults() != 0 {
		t.Fatal("subscribed-by-default should not stall")
	}
}

func TestUnsubDefaultSubscriberDistributionMatches(t *testing.T) {
	spec, _ := workload.ByName("jacobi")
	prog := spec.Build(workload.Config{NumGPUs: 4, Iterations: 2, Scale: 1, Seed: 1})
	m, err := New(KindGPSUnsubDefault, prog, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res := engine.Run(prog, m)
	h := res.SubscriberHist
	if h[2] == 0 || h[1] == 0 {
		t.Fatalf("histogram = %v, want interior 1-sub and halo 2-sub pages", h)
	}
	if h[3] != 0 || h[4] != 0 {
		t.Fatalf("histogram = %v: first-read subscription over-subscribed", h)
	}
}
