package paradigm

import (
	"gps/internal/engine"
	"gps/internal/memsys"
	"gps/internal/trace"
)

// hintsModel is Unified Memory with the hand-tuned hints of Section 6:
// each shared page's preferred location is its dominant writer (derived
// from the first iteration, standing in for the expert programmer's
// knowledge); remote GPUs are marked accessed-by, so their reads and writes
// proceed remotely at line granularity without faults; and before use, a
// reader prefetches remote pages it consumes, duplicating them locally.
// Because UM cannot keep write-shared pages replicated, the next write to a
// duplicated page collapses it back to the preferred location with a TLB
// shootdown — the cost Section 7.1 highlights.
type hintsModel struct {
	base
	pages *memsys.PageMap[hintsPage]
}

// hintsPage is one page's hint state, slab-packed.
type hintsPage struct {
	home uint8  // preferred location + 1; 0 = not yet decided
	dup  uint64 // bitmask of GPUs holding read duplicates
}

// prefetchBlockBytes is the granularity of the modeled cudaMemPrefetchAsync
// calls: prefetching page-by-page would require per-page tuning the paper
// deems impractical ("more fine-grained prefetching hints are required to
// avoid over-fetching pages needlessly" — the diffusion observation), so
// the hints variant prefetches 512 KB blocks around each consumed page.
const prefetchBlockBytes = 512 << 10

func newUMHints(meta trace.Meta, cfg Config, sharing map[uint64]*engine.Sharing) *hintsModel {
	m := &hintsModel{base: newBase("UM+hints", meta, cfg)}
	m.pages = memsys.NewPageMap[hintsPage](m.pageBytes)
	// ScanSharing works at cfg.PageBytes granularity already.
	for vpn, s := range sharing {
		if w := s.DominantWriter(); w >= 0 {
			m.pages.At(vpn).home = uint8(w + 1)
		}
	}
	return m
}

// homeOf resolves the page's preferred location, defaulting pages never
// written in the scanned iteration to their first toucher.
func (m *hintsModel) homeOf(p *hintsPage, toucher int) int {
	if p.home == 0 {
		p.home = uint8(toucher + 1)
	}
	return int(p.home) - 1
}

func (m *hintsModel) Access(gpu int, a trace.Access, lines []uint64) {
	m.AccessBatch(gpu, m.singleBatch(a, lines))
}

func (m *hintsModel) AccessBatch(gpu int, b *engine.Batch) {
	prof := &m.profiles[gpu]
	lastSlot, lastVPN := ^uint64(0), ^uint64(0)
	var region *trace.Region
	var p *hintsPage
	for i := range b.Accs {
		a := &b.Accs[i]
		if a.Op == trace.OpFence {
			continue
		}
		for _, line := range b.LinesOf(i) {
			if slot := line >> memsys.RegionSlotShift; slot != lastSlot {
				lastSlot = slot
				region = m.regions.SlotRegion(slot)
			}
			if region == nil || region.Kind != trace.RegionShared ||
				line < region.Base || line-region.Base >= region.Size {
				prof.LocalBytes += lineBytes
				continue
			}
			if vpn := line >> m.vpnShift; vpn != lastVPN {
				lastVPN = vpn
				p = m.pages.At(vpn)
			}
			h := m.homeOf(p, gpu)
			switch a.Op {
			case trace.OpLoad:
				switch {
				case h == gpu:
					prof.LocalBytes += lineBytes
				case p.dup&(1<<gpu) != 0:
					// Already prefetched this page.
					prof.LocalBytes += lineBytes
				default:
					// Prefetch hint: duplicate the surrounding block before use.
					// The coarse copy over-fetches when only part of the block
					// is consumed. Prefetching may grow the page slab, so the
					// cached entry pointer must be re-fetched afterwards.
					m.prefetchBlock(gpu, line, region)
					lastVPN = ^uint64(0)
					prof.LocalBytes += lineBytes
				}
			case trace.OpStore, trace.OpAtomic:
				if p.dup != 0 {
					// Writing a read-duplicated page collapses it back to the
					// preferred location: TLB shootdown on the writer's critical
					// path (Section 2.1).
					p.dup = 0
					prof.Shootdowns++
				}
				if h == gpu {
					prof.LocalBytes += lineBytes
				} else {
					// accessed-by: remote store to the preferred location; does
					// not stall the writer.
					prof.Push[h] += lineBytes
				}
			}
		}
	}
}

// prefetchBlock duplicates the 512 KB block containing line onto gpu,
// clipped to the enclosing region r, charging the bulk transfer to the
// sending preferred locations.
func (m *hintsModel) prefetchBlock(gpu int, line uint64, r *trace.Region) {
	blockLo := line &^ (prefetchBlockBytes - 1)
	blockHi := blockLo + prefetchBlockBytes
	if blockLo < r.Base {
		blockLo = r.Base
	}
	if blockHi > r.Base+r.Size {
		blockHi = r.Base + r.Size
	}
	for va := blockLo; va < blockHi; va += m.pageBytes {
		p := m.pages.At(va >> m.vpnShift)
		if p.dup&(1<<gpu) != 0 {
			continue
		}
		h := m.homeOf(p, gpu)
		p.dup |= 1 << gpu
		if h != gpu {
			m.profiles[h].Bulk[gpu] += m.pageBytes
		}
	}
}

func (m *hintsModel) EndPhase(int) {}

func (m *hintsModel) Finish(*engine.Result) {}
