package paradigm

import (
	"gps/internal/engine"
	"gps/internal/trace"
)

// hintsModel is Unified Memory with the hand-tuned hints of Section 6:
// each shared page's preferred location is its dominant writer (derived
// from the first iteration, standing in for the expert programmer's
// knowledge); remote GPUs are marked accessed-by, so their reads and writes
// proceed remotely at line granularity without faults; and before use, a
// reader prefetches remote pages it consumes, duplicating them locally.
// Because UM cannot keep write-shared pages replicated, the next write to a
// duplicated page collapses it back to the preferred location with a TLB
// shootdown — the cost Section 7.1 highlights.
type hintsModel struct {
	base
	home map[uint64]int    // vpn -> preferred location
	dup  map[uint64]uint64 // vpn -> bitmask of GPUs holding read duplicates
}

// prefetchBlockBytes is the granularity of the modeled cudaMemPrefetchAsync
// calls: prefetching page-by-page would require per-page tuning the paper
// deems impractical ("more fine-grained prefetching hints are required to
// avoid over-fetching pages needlessly" — the diffusion observation), so
// the hints variant prefetches 512 KB blocks around each consumed page.
const prefetchBlockBytes = 512 << 10

func newUMHints(meta trace.Meta, cfg Config, sharing map[uint64]*engine.Sharing) *hintsModel {
	m := &hintsModel{
		base: newBase("UM+hints", meta, cfg),
		home: map[uint64]int{},
		dup:  map[uint64]uint64{},
	}
	// ScanSharing works at cfg.PageBytes granularity already.
	for vpn, s := range sharing {
		if w := s.DominantWriter(); w >= 0 {
			m.home[vpn] = w
		}
	}
	return m
}

func (m *hintsModel) homeOf(vpn uint64, toucher int) int {
	if h, ok := m.home[vpn]; ok {
		return h
	}
	// Pages never written in the scanned iteration: preferred location is
	// their first toucher.
	m.home[vpn] = toucher
	return toucher
}

func (m *hintsModel) Access(gpu int, a trace.Access, lines []uint64) {
	if a.Op == trace.OpFence {
		return
	}
	prof := &m.profiles[gpu]
	for _, line := range lines {
		r := m.regions.Lookup(line)
		if r == nil || r.Kind != trace.RegionShared {
			prof.LocalBytes += lineBytes
			continue
		}
		vpn := m.vpn(line)
		h := m.homeOf(vpn, gpu)
		switch a.Op {
		case trace.OpLoad:
			switch {
			case h == gpu:
				prof.LocalBytes += lineBytes
			case m.dup[vpn]&(1<<gpu) != 0:
				// Already prefetched this page.
				prof.LocalBytes += lineBytes
			default:
				// Prefetch hint: duplicate the surrounding block before use.
				// The coarse copy over-fetches when only part of the block
				// is consumed.
				m.prefetchBlock(gpu, line)
				prof.LocalBytes += lineBytes
			}
		case trace.OpStore, trace.OpAtomic:
			if m.dup[vpn] != 0 {
				// Writing a read-duplicated page collapses it back to the
				// preferred location: TLB shootdown on the writer's critical
				// path (Section 2.1).
				m.dup[vpn] = 0
				prof.Shootdowns++
			}
			if h == gpu {
				prof.LocalBytes += lineBytes
			} else {
				// accessed-by: remote store to the preferred location; does
				// not stall the writer.
				prof.Push[h] += lineBytes
			}
		}
	}
}

// prefetchBlock duplicates the 1 MB block containing line onto gpu,
// clipped to the enclosing region, charging the bulk transfer to the
// sending preferred locations.
func (m *hintsModel) prefetchBlock(gpu int, line uint64) {
	r := m.regions.Lookup(line)
	blockLo := line &^ (prefetchBlockBytes - 1)
	blockHi := blockLo + prefetchBlockBytes
	if blockLo < r.Base {
		blockLo = r.Base
	}
	if blockHi > r.Base+r.Size {
		blockHi = r.Base + r.Size
	}
	for va := blockLo; va < blockHi; va += m.pageBytes {
		vpn := va / m.pageBytes
		if m.dup[vpn]&(1<<gpu) != 0 {
			continue
		}
		h := m.homeOf(vpn, gpu)
		m.dup[vpn] |= 1 << gpu
		if h != gpu {
			m.profiles[h].Bulk[gpu] += m.pageBytes
		}
	}
}

func (m *hintsModel) EndPhase(int) {}

func (m *hintsModel) Finish(*engine.Result) {}
