package paradigm

import (
	"gps/internal/engine"
	"gps/internal/memsys"
	"gps/internal/trace"
)

// rdlModel is Remote Demand Loads (Section 6): the converse of GPS. Every
// GPU keeps a local copy of shared data, stores are performed locally, and
// loads are issued to the GPU that most recently wrote the page. The model
// represents an expert programmer who tracks writers per page exactly (the
// paper grants the same oracle by tracking the latest writer inside the
// simulator). Remote loads sit on the critical path, which is RDL's
// weakness; repeated reads of the same remote line re-cross the
// interconnect every time (the ALS pathology of Section 7.2).
type rdlModel struct {
	base
	lastWriter *memsys.PageMap[uint8] // vpn -> most recent writer + 1; 0 = never written
}

func newRDL(meta trace.Meta, cfg Config) *rdlModel {
	m := &rdlModel{base: newBase("RDL", meta, cfg)}
	m.lastWriter = memsys.NewPageMap[uint8](m.pageBytes)
	return m
}

func (m *rdlModel) Access(gpu int, a trace.Access, lines []uint64) {
	m.AccessBatch(gpu, m.singleBatch(a, lines))
}

func (m *rdlModel) AccessBatch(gpu int, b *engine.Batch) {
	prof := &m.profiles[gpu]
	lastSlot, lastVPN := ^uint64(0), ^uint64(0)
	var region *trace.Region
	var p *uint8
	for i := range b.Accs {
		a := &b.Accs[i]
		if a.Op == trace.OpFence {
			continue
		}
		for _, line := range b.LinesOf(i) {
			if slot := line >> memsys.RegionSlotShift; slot != lastSlot {
				lastSlot = slot
				region = m.regions.SlotRegion(slot)
			}
			if region == nil || region.Kind != trace.RegionShared ||
				line < region.Base || line-region.Base >= region.Size {
				prof.LocalBytes += lineBytes
				continue
			}
			if vpn := line >> m.vpnShift; vpn != lastVPN {
				lastVPN = vpn
				p = m.lastWriter.At(vpn)
			}
			switch a.Op {
			case trace.OpLoad:
				if lw := *p; lw == 0 || int(lw) == gpu+1 {
					prof.LocalBytes += lineBytes
				} else {
					prof.RemoteRead[int(lw)-1] += lineBytes
					prof.RemoteReadLines++
				}
			case trace.OpStore, trace.OpAtomic:
				prof.LocalBytes += lineBytes
				*p = uint8(gpu + 1)
			}
		}
	}
}

func (m *rdlModel) EndPhase(int) {}

func (m *rdlModel) Finish(*engine.Result) {}
