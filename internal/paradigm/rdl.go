package paradigm

import (
	"gps/internal/engine"
	"gps/internal/trace"
)

// rdlModel is Remote Demand Loads (Section 6): the converse of GPS. Every
// GPU keeps a local copy of shared data, stores are performed locally, and
// loads are issued to the GPU that most recently wrote the page. The model
// represents an expert programmer who tracks writers per page exactly (the
// paper grants the same oracle by tracking the latest writer inside the
// simulator). Remote loads sit on the critical path, which is RDL's
// weakness; repeated reads of the same remote line re-cross the
// interconnect every time (the ALS pathology of Section 7.2).
type rdlModel struct {
	base
	lastWriter map[uint64]int // vpn -> most recent writer
}

func newRDL(meta trace.Meta, cfg Config) *rdlModel {
	return &rdlModel{base: newBase("RDL", meta, cfg), lastWriter: map[uint64]int{}}
}

func (m *rdlModel) Access(gpu int, a trace.Access, lines []uint64) {
	if a.Op == trace.OpFence {
		return
	}
	prof := &m.profiles[gpu]
	for _, line := range lines {
		r := m.regions.Lookup(line)
		if r == nil || r.Kind != trace.RegionShared {
			prof.LocalBytes += lineBytes
			continue
		}
		vpn := m.vpn(line)
		switch a.Op {
		case trace.OpLoad:
			lw, written := m.lastWriter[vpn]
			if !written || lw == gpu {
				prof.LocalBytes += lineBytes
			} else {
				prof.RemoteRead[lw] += lineBytes
				prof.RemoteReadLines++
			}
		case trace.OpStore, trace.OpAtomic:
			prof.LocalBytes += lineBytes
			m.lastWriter[vpn] = gpu
		}
	}
}

func (m *rdlModel) EndPhase(int) {}

func (m *rdlModel) Finish(*engine.Result) {}
