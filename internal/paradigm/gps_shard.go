package paradigm

import (
	"gps/internal/core"
	"gps/internal/engine"
	"gps/internal/memsys"
	"gps/internal/trace"
)

// GPS shards by destination GPU: all of the model's per-access mutable
// state — conventional TLBs, GPS-TLBs inside the translation units, and the
// remote write queues — is strictly per-GPU, and the manager's page tables
// are only read during a phase (subscription changes happen at the
// profiling barrier, on the coordinator). Each shard therefore forks a
// replica owning the structures of GPUs g with g % shards == shard and
// replays exactly those GPUs' kernel streams; per-GPU streams never
// interact mid-phase, so every hit rate and counter is bit-exact.
//
// The profiling barrier is the one cross-shard moment: the coordinator
// merges the shards' access-tracker bitmaps, widens the remap hook to shoot
// down replica TLBs as well, and runs ApplyProfile once (deterministic: the
// GPS page table iterates in ascending order regardless of shard count).
func (m *gpsModel) ShardPlan() engine.ShardPlan {
	if m.mode == gpsUnsubscribedByDefault {
		// Unsubscribed-by-default profiling subscribes pages mid-phase,
		// mutating the shared page tables on the access path; that cannot be
		// sharded, so this mode replays sequentially.
		return engine.ShardPlan{Axis: engine.ShardNone}
	}
	return engine.ShardPlan{Axis: engine.ShardByGPU}
}

func (m *gpsModel) Fork(shard, shards int) engine.Model {
	r := &gpsShard{
		parent:  m,
		shard:   shard,
		shards:  shards,
		convTLB: make([]*memsys.TLB[memsys.PTE], m.n),
		wq:      make([]*core.WriteQueue, m.n),
		xu:      make([]*core.TranslationUnit, m.n),
		flags:   memsys.NewPageMap[gpsPageFlags](m.pageBytes),
	}
	gpu := m.cfg.Machine.GPU
	for g := shard; g < m.n; g += shards {
		r.convTLB[g] = memsys.NewTLB[memsys.PTE](gpu.TLBEntries, gpu.TLBWays)
		xu := core.NewTranslationUnit(g, m.geom, m.cfg.GPSTLBEntries, m.cfg.GPSTLBWays,
			m.mgr.GPSPageTable(), func(p core.Packet) {
				r.profiles[p.SrcGPU].Push[p.DstGPU] += lineBytes
			})
		r.xu[g] = xu
		r.wq[g] = core.NewWriteQueue(g, m.geom, m.cfg.WriteQueueEntries,
			m.cfg.WriteQueueWatermark, xu.Process)
	}
	if m.tracker != nil {
		lo, hi := sharedSpan(m.meta.Regions)
		r.tracker = core.NewAccessTracker(m.geom, memsys.VAddr(lo), hi-lo, m.n)
		r.tracker.Start()
	}
	return r
}

// EndPhaseSharded is the coordinator's phase barrier: flush every replica's
// write queues (the implicit sys-scoped release), then run the profiling
// handoff exactly as the sequential EndPhase would.
func (m *gpsModel) EndPhaseSharded(index int, replicas []engine.Model) {
	for _, rep := range replicas {
		rep.EndPhase(index)
	}
	if m.profiling && index == m.meta.ProfilePhases-1 {
		m.tracker.Stop() // cuGPSTrackingStop()
		for _, rep := range replicas {
			if sh := rep.(*gpsShard); sh.tracker != nil {
				sh.tracker.Stop()
				m.tracker.Merge(sh.tracker)
			}
		}
		if m.mode != gpsNoSubscription {
			// Unsubscription shoots down stale translations wherever they are
			// cached — including the replica TLBs that did the profiling
			// iteration's fills.
			m.mgr.SetRemapHook(func(vpn memsys.VPN) {
				for g := 0; g < m.n; g++ {
					m.convTLB[g].Invalidate(vpn)
					m.xu[g].InvalidateTLB(vpn)
				}
				for _, rep := range replicas {
					sh := rep.(*gpsShard)
					for g := sh.shard; g < len(sh.convTLB); g += sh.shards {
						sh.convTLB[g].Invalidate(vpn)
						sh.xu[g].InvalidateTLB(vpn)
					}
				}
			})
			m.mgr.ApplyProfile(m.tracker, func(vpn memsys.VPN) bool { return m.isManual(uint64(vpn)) })
		}
		m.profiling = false
	}
	if !m.profiling && m.subHist == nil {
		m.subHist = m.mgr.SubscriberHistogram()
	}
}

// FinishSharded assembles the end-of-run statistics from the replicas that
// own each GPU's structures.
func (m *gpsModel) FinishSharded(res *engine.Result, replicas []engine.Model) {
	res.SubscriberHist = m.subHist
	for _, rep := range replicas {
		res.ForwardedLoads += rep.(*gpsShard).forwarded
	}
	for g := 0; g < m.n; g++ {
		sh := replicas[g%len(replicas)].(*gpsShard)
		res.WriteQueueHitRate = append(res.WriteQueueHitRate, sh.wq[g].Stats().HitRate())
		res.GPSTLBHitRate = append(res.GPSTLBHitRate, sh.xu[g].Stats().HitRate())
		res.ConvTLBHitRate = append(res.ConvTLBHitRate, sh.convTLB[g].HitRate())
	}
}

// gpsShard is one shard's replica of the GPS machinery: private TLBs, write
// queues and translation units for the GPUs it owns (nil elsewhere), plus a
// private access tracker and collapse overlay. It reads — never writes —
// the parent's manager and manual-subscription flags during a phase.
type gpsShard struct {
	parent  *gpsModel
	shard   int
	shards  int
	convTLB []*memsys.TLB[memsys.PTE]
	wq      []*core.WriteQueue
	xu      []*core.TranslationUnit
	tracker *core.AccessTracker
	flags   *memsys.PageMap[gpsPageFlags] // collapse overlay, shard-local

	forwarded uint64
	profiles  []engine.Profile
	scratch   engine.Batch
}

func (r *gpsShard) Name() string { return r.parent.name }

func (r *gpsShard) BeginPhase(index int, profiles []engine.Profile) {
	r.profiles = profiles
}

func (r *gpsShard) translate(gpu int, vpn uint64) memsys.PTE {
	v := memsys.VPN(vpn)
	if pte, ok := r.convTLB[gpu].Lookup(v); ok {
		return pte
	}
	ptep := r.parent.mgr.PageTable(gpu).Lookup(v)
	if ptep == nil {
		return memsys.PTE{Valid: true, Owner: gpu}
	}
	pte := *ptep
	r.convTLB[gpu].Fill(v, pte)
	if pte.GPS && r.tracker != nil {
		r.tracker.RecordTLBMiss(gpu, v)
	}
	return pte
}

func (r *gpsShard) Access(gpu int, a trace.Access, lines []uint64) {
	r.scratch.Accs = append(r.scratch.Accs[:0], a)
	r.scratch.Offs = append(r.scratch.Offs[:0], 0, int32(len(lines)))
	r.scratch.Lines = lines
	r.AccessBatch(gpu, &r.scratch)
}

// AccessBatch mirrors gpsModel.AccessBatch for the subscribed-by-default
// and no-subscription modes (the unsubscribed-by-default branch cannot be
// reached: that mode declines to shard). One documented divergence: a
// sys-scoped store to a GPS page charges the collapse locally instead of
// collapsing the shared mapping (which would race with other shards'
// translations); no current workload emits sys-scoped stores.
func (r *gpsShard) AccessBatch(gpu int, b *engine.Batch) {
	m := r.parent
	prof := &r.profiles[gpu]
	wq := r.wq[gpu]
	for i := range b.Accs {
		a := &b.Accs[i]
		if a.Op == trace.OpFence {
			if a.Scope == trace.ScopeSys {
				wq.Flush()
			}
			continue
		}
		for _, line := range b.LinesOf(i) {
			vpn := m.vpn(line)
			pte := r.translate(gpu, vpn)
			switch a.Op {
			case trace.OpLoad:
				if pte.Owner == gpu {
					prof.LocalBytes += lineBytes
					continue
				}
				if pte.GPS && wq.Contains(memsys.VAddr(line)) {
					r.forwarded++
					prof.LocalBytes += lineBytes
					continue
				}
				prof.RemoteRead[pte.Owner] += lineBytes
				prof.RemoteReadLines++
			case trace.OpStore, trace.OpAtomic:
				if !pte.GPS {
					if pte.Owner == gpu {
						prof.LocalBytes += lineBytes
					} else {
						prof.Push[pte.Owner] += lineBytes
					}
					continue
				}
				if a.Scope == trace.ScopeSys {
					if f := r.flags.At(vpn); !f.collapsing {
						f.collapsing = true
						prof.Shootdowns++
					}
					prof.LocalBytes += lineBytes
					continue
				}
				if pte.Owner == gpu {
					prof.LocalBytes += lineBytes
				}
				if a.Op == trace.OpAtomic {
					wq.PushAtomic(memsys.VAddr(line))
				} else {
					wq.PushStore(memsys.VAddr(line))
				}
			}
		}
	}
}

// EndPhase flushes the owned write queues; the profiling handoff runs on
// the coordinator in EndPhaseSharded.
func (r *gpsShard) EndPhase(int) {
	for g := r.shard; g < len(r.wq); g += r.shards {
		r.wq[g].Flush()
	}
}

func (r *gpsShard) Finish(*engine.Result) {}
