package paradigm

import (
	"fmt"

	"gps/internal/core"
	"gps/internal/engine"
	"gps/internal/memsys"
	"gps/internal/trace"
)

// gpsModel is the paper's proposal wired together end to end: shared
// regions are allocated in the GPS address space with every GPU initially
// subscribed (subscribed-by-default profiling, Section 5.2); conventional
// TLB misses during the profiling iteration feed the access tracking unit;
// cuGPSTrackingStop unsubscribes untouched pages and downgrades
// single-subscriber pages; thereafter weak stores coalesce in the remote
// write queue and fan out through the GPS address translation unit to every
// remote subscriber's replica.
// gpsMode selects the subscription management strategy (Section 3.2).
type gpsMode int

const (
	// gpsSubscribedByDefault: all GPUs tentatively subscribe at allocation;
	// profiling unsubscribes non-consumers (the paper's implementation).
	gpsSubscribedByDefault gpsMode = iota
	// gpsNoSubscription: all-to-all replication forever (Figure 11 ablation).
	gpsNoSubscription
	// gpsUnsubscribedByDefault: pages start with a single subscriber; a GPU
	// subscribes on its first read during profiling, paying a page
	// population stall (the Section 3.2 alternative the paper rejects as
	// "more expensive").
	gpsUnsubscribedByDefault
)

type gpsModel struct {
	base
	mgr     *core.Manager
	convTLB []*memsys.TLB[memsys.PTE]
	wq      []*core.WriteQueue
	xu      []*core.TranslationUnit
	tracker *core.AccessTracker

	mode      gpsMode
	profiling bool
	subHist   map[int]int
	flags     *memsys.PageMap[gpsPageFlags]
	forwarded uint64 // loads served from the write queue
}

// gpsPageFlags is the model's slab-packed per-page bookkeeping outside the
// page tables proper.
type gpsPageFlags struct {
	manual     bool // pinned manual subscriptions: profiling never prunes it
	collapsing bool // sys-scope collapse already performed
}

func newGPS(meta trace.Meta, cfg Config, mode gpsMode) (*gpsModel, error) {
	name := "GPS"
	switch mode {
	case gpsNoSubscription:
		name = "GPS-nosub"
	case gpsUnsubscribedByDefault:
		name = "GPS-unsub-default"
	}
	m := &gpsModel{
		base: newBase(name, meta, cfg),
		mode: mode,
	}
	m.flags = memsys.NewPageMap[gpsPageFlags](m.pageBytes)
	mgr, err := core.NewManager(m.geom, m.n, cfg.Machine.GPU.GlobalMemory)
	if err != nil {
		return nil, err
	}
	m.mgr = mgr

	// Allocate every region: shared regions join the GPS address space with
	// all GPUs subscribed; private regions are pinned on their owner.
	for _, r := range meta.Regions {
		switch r.Kind {
		case trace.RegionShared:
			subs := memsys.AllGPUs(m.n)
			if mode == gpsUnsubscribedByDefault {
				subs = memsys.SetOf(privateOwner(&r, 0))
			}
			if r.ManualSubscribers != nil {
				subs = memsys.SetOf(r.ManualSubscribers...)
			}
			if err := mgr.AllocGPS(memsys.VAddr(r.Base), r.Size, subs); err != nil {
				return nil, fmt.Errorf("paradigm: GPS alloc %q: %w", r.Name, err)
			}
			if r.ManualSubscribers != nil {
				for _, vpn := range m.geom.PagesIn(memsys.VAddr(r.Base), r.Size) {
					m.flags.At(uint64(vpn)).manual = true
				}
			}
		case trace.RegionPrivate:
			owner := privateOwner(&r, 0)
			if err := mgr.AllocPinned(memsys.VAddr(r.Base), r.Size, owner); err != nil {
				return nil, fmt.Errorf("paradigm: pinned alloc %q: %w", r.Name, err)
			}
		}
	}

	// Access tracking unit over the span of all shared regions. A trace
	// without a profiling window (ProfilePhases == 0) never unsubscribes:
	// the program did not call cuGPSTrackingStart.
	lo, hi := sharedSpan(meta.Regions)
	if hi > lo && meta.ProfilePhases > 0 {
		m.tracker = core.NewAccessTracker(m.geom, memsys.VAddr(lo), hi-lo, m.n)
		m.tracker.Start() // cuGPSTrackingStart() before the first kernel
		m.profiling = true
	}

	gpu := cfg.Machine.GPU
	for g := 0; g < m.n; g++ {
		g := g
		m.convTLB = append(m.convTLB, memsys.NewTLB[memsys.PTE](gpu.TLBEntries, gpu.TLBWays))
		xu := core.NewTranslationUnit(g, m.geom, cfg.GPSTLBEntries, cfg.GPSTLBWays,
			mgr.GPSPageTable(), func(p core.Packet) {
				m.profiles[p.SrcGPU].Push[p.DstGPU] += lineBytes
			})
		m.xu = append(m.xu, xu)
		m.wq = append(m.wq, core.NewWriteQueue(g, m.geom, cfg.WriteQueueEntries,
			cfg.WriteQueueWatermark, xu.Process))
	}

	// Translation changes (unsubscription, downgrade, collapse) shoot down
	// every TLB's stale entries.
	mgr.SetRemapHook(func(vpn memsys.VPN) {
		for g := 0; g < m.n; g++ {
			m.convTLB[g].Invalidate(vpn)
			m.xu[g].InvalidateTLB(vpn)
		}
	})
	return m, nil
}

func sharedSpan(regions []trace.Region) (lo, hi uint64) {
	lo, hi = ^uint64(0), 0
	for _, r := range regions {
		if r.Kind != trace.RegionShared {
			continue
		}
		if r.Base < lo {
			lo = r.Base
		}
		if end := r.Base + r.Size; end > hi {
			hi = end
		}
	}
	if hi <= lo {
		return 0, 0
	}
	return lo, hi
}

// translate consults gpu's conventional TLB, walking the page table on a
// miss and feeding the access tracking unit for GPS pages while profiling.
func (m *gpsModel) translate(gpu int, vpn uint64) memsys.PTE {
	v := memsys.VPN(vpn)
	if pte, ok := m.convTLB[gpu].Lookup(v); ok {
		return pte
	}
	ptep := m.mgr.PageTable(gpu).Lookup(v)
	if ptep == nil {
		// Access outside any allocation: treat as local scratch.
		return memsys.PTE{Valid: true, Owner: gpu}
	}
	pte := *ptep
	m.convTLB[gpu].Fill(v, pte)
	if pte.GPS && m.tracker != nil {
		m.tracker.RecordTLBMiss(gpu, v)
	}
	return pte
}

func (m *gpsModel) Access(gpu int, a trace.Access, lines []uint64) {
	m.AccessBatch(gpu, m.singleBatch(a, lines))
}

// isManual reports whether vpn carries pinned manual subscriptions. Peek
// suffices: manual flags are all set at allocation time.
func (m *gpsModel) isManual(vpn uint64) bool {
	p := m.flags.Peek(vpn)
	return p != nil && p.manual
}

func (m *gpsModel) AccessBatch(gpu int, b *engine.Batch) {
	prof := &m.profiles[gpu]
	wq := m.wq[gpu]
	for i := range b.Accs {
		a := &b.Accs[i]
		if a.Op == trace.OpFence {
			if a.Scope == trace.ScopeSys {
				wq.Flush()
			}
			continue
		}
		for _, line := range b.LinesOf(i) {
			vpn := m.vpn(line)
			pte := m.translate(gpu, vpn)
			switch a.Op {
			case trace.OpLoad:
				if pte.Owner == gpu {
					prof.LocalBytes += lineBytes
					continue
				}
				if pte.GPS && wq.Contains(memsys.VAddr(line)) {
					// The pending block in the local write queue forwards its
					// value (Section 5.1): no interconnect crossing.
					m.forwarded++
					prof.LocalBytes += lineBytes
					continue
				}
				if m.mode == gpsUnsubscribedByDefault && m.profiling && pte.GPS && !m.isManual(vpn) {
					// Unsubscribed-by-default profiling: the first read
					// subscribes this GPU, populating a local replica from an
					// existing subscriber — a whole-page stall, the cost the
					// paper cites for rejecting this mode.
					if err := m.mgr.Subscribe(gpu, m.geom.PageBase(memsys.VAddr(line)), m.geom.PageBytes); err == nil {
						prof.RemoteRead[pte.Owner] += m.geom.PageBytes
						prof.Faults++
						prof.LocalBytes += lineBytes
						continue
					}
				}
				// Not a subscriber: the load issues remotely to one of the
				// subscribers (Section 3.2) — a penalty, never a fault.
				prof.RemoteRead[pte.Owner] += lineBytes
				prof.RemoteReadLines++
			case trace.OpStore, trace.OpAtomic:
				if !pte.GPS {
					// Conventional page: local or plain remote store.
					if pte.Owner == gpu {
						prof.LocalBytes += lineBytes
					} else {
						prof.Push[pte.Owner] += lineBytes
					}
					continue
				}
				if a.Scope == trace.ScopeSys {
					// Sys-scoped store to a GPS page: collapse to a single copy
					// (Section 5.3).
					if f := m.flags.At(vpn); !f.collapsing {
						if err := m.mgr.CollapseSysScoped(gpu, memsys.VPN(vpn)); err == nil {
							prof.Shootdowns++
							f.collapsing = true
						}
					}
					prof.LocalBytes += lineBytes
					continue
				}
				if pte.Owner == gpu {
					// Local replica updated on the store path (W3 in Figure 7).
					prof.LocalBytes += lineBytes
				}
				if a.Op == trace.OpAtomic {
					wq.PushAtomic(memsys.VAddr(line))
				} else {
					wq.PushStore(memsys.VAddr(line))
				}
			}
		}
	}
}

func (m *gpsModel) EndPhase(index int) {
	// The implicit sys-scoped release at the end of every grid flushes the
	// remote write queues (Section 3.3).
	for _, q := range m.wq {
		q.Flush()
	}
	if m.profiling && index == m.meta.ProfilePhases-1 {
		m.tracker.Stop() // cuGPSTrackingStop()
		if m.mode != gpsNoSubscription {
			// Either profiling mode feeds the captured sharer information
			// into the subscription tracking mechanism (Section 3.2): GPUs
			// that never touched a page are unsubscribed, including the
			// initial host of unsubscribed-by-default pages.
			m.mgr.ApplyProfile(m.tracker, func(vpn memsys.VPN) bool { return m.isManual(uint64(vpn)) })
		}
		m.profiling = false
	}
	if !m.profiling && m.subHist == nil {
		m.subHist = m.mgr.SubscriberHistogram()
	}
}

func (m *gpsModel) Finish(res *engine.Result) {
	res.SubscriberHist = m.subHist
	res.ForwardedLoads = m.forwarded
	for g := 0; g < m.n; g++ {
		res.WriteQueueHitRate = append(res.WriteQueueHitRate, m.wq[g].Stats().HitRate())
		res.GPSTLBHitRate = append(res.GPSTLBHitRate, m.xu[g].Stats().HitRate())
		res.ConvTLBHitRate = append(res.ConvTLBHitRate, m.convTLB[g].HitRate())
	}
}
