package paradigm

import (
	"testing"

	"gps/internal/engine"
	"gps/internal/trace"
	"gps/internal/workload"
)

func runApp(t *testing.T, name string, kind Kind, gpus int) *engine.Result {
	t.Helper()
	spec, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	prog := spec.Build(workload.Config{NumGPUs: gpus, Iterations: 2, Scale: 1, Seed: 1})
	m, err := New(kind, prog, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return engine.Run(prog, m)
}

func TestKindStrings(t *testing.T) {
	want := map[Kind]string{
		KindUM: "UM", KindUMHints: "UM+hints", KindRDL: "RDL",
		KindMemcpy: "memcpy", KindGPS: "GPS", KindGPSNoSub: "GPS-nosub",
		KindInfinite: "infiniteBW",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), s)
		}
	}
	if len(Figure8Kinds()) != 6 {
		t.Fatal("Figure 8 compares six paradigms")
	}
}

func TestGPSJacobiSubscriberDistribution(t *testing.T) {
	res := runApp(t, "jacobi", KindGPS, 4)
	if res.SubscriberHist == nil {
		t.Fatal("GPS run produced no subscriber histogram")
	}
	h := res.SubscriberHist
	// Jacobi: interior pages downgrade to one subscriber; halo pages keep
	// exactly two (each boundary is shared with one neighbor). Figure 9:
	// "applications like Jacobi require only one remote subscriber for most
	// pages because of how the algorithm performs boundary exchange".
	if h[2] == 0 {
		t.Fatalf("no 2-subscriber halo pages: %v", h)
	}
	if h[1] <= h[2] {
		t.Fatalf("interior (1-sub) pages should dominate: %v", h)
	}
	if h[3] != 0 || h[4] != 0 {
		t.Fatalf("jacobi should have no 3- or 4-subscriber pages: %v", h)
	}
}

func TestGPSAllToAllAppsKeepFullSubscription(t *testing.T) {
	// ALS and CT: the majority of shared pages are subscribed by all GPUs
	// (the Figure 11 exceptions).
	for _, name := range []string{"als", "ct"} {
		res := runApp(t, name, KindGPS, 4)
		h := res.SubscriberHist
		total, all4 := 0, 0
		for k, c := range h {
			total += c
			if k == 4 {
				all4 += c
			}
		}
		if total == 0 || float64(all4)/float64(total) < 0.5 {
			t.Errorf("%s: all-subscriber fraction too low: %v", name, h)
		}
	}
}

func TestGPSPushesOnlyToSubscribers(t *testing.T) {
	resSub := runApp(t, "jacobi", KindGPS, 4)
	resAll := runApp(t, "jacobi", KindGPSNoSub, 4)
	post := resSub.Meta.ProfilePhases
	sub := resSub.InterconnectBytes(post)
	all := resAll.InterconnectBytes(post)
	if sub == 0 || all == 0 {
		t.Fatal("no traffic measured")
	}
	// Subscription tracking must slash Jacobi's broadcast traffic: only
	// halo pages have remote subscribers.
	if float64(sub) > 0.25*float64(all) {
		t.Fatalf("subscription saved too little: %d vs %d bytes", sub, all)
	}
}

func TestGPSSubscriptionSavesLittleForAllToAll(t *testing.T) {
	resSub := runApp(t, "als", KindGPS, 4)
	resAll := runApp(t, "als", KindGPSNoSub, 4)
	post := resSub.Meta.ProfilePhases
	sub := resSub.InterconnectBytes(post)
	all := resAll.InterconnectBytes(post)
	if float64(sub) < 0.7*float64(all) {
		t.Fatalf("ALS is all-to-all; subscription should barely help: %d vs %d", sub, all)
	}
}

func TestWriteQueueHitRatesMatchSection74(t *testing.T) {
	zeroApps := []string{"jacobi", "pagerank", "sssp", "als"}
	for _, name := range zeroApps {
		res := runApp(t, name, KindGPS, 4)
		for g, hr := range res.WriteQueueHitRate {
			if hr > 0.01 {
				t.Errorf("%s GPU%d write queue hit rate = %.3f, want ~0", name, g, hr)
			}
		}
	}
	positiveApps := []string{"ct", "eqwp", "diffusion", "hit"}
	for _, name := range positiveApps {
		res := runApp(t, name, KindGPS, 4)
		for g, hr := range res.WriteQueueHitRate {
			if hr < 0.2 {
				t.Errorf("%s GPU%d write queue hit rate = %.3f, want substantial", name, g, hr)
			}
		}
	}
}

func TestGPSTLBHitRateNearPerfectAt32Entries(t *testing.T) {
	// Section 7.4: "the GPS-TLB hit rate approaches 100% at just 32 entries".
	for _, name := range []string{"jacobi", "eqwp", "ct"} {
		res := runApp(t, name, KindGPS, 4)
		for g, hr := range res.GPSTLBHitRate {
			if hr < 0.95 {
				t.Errorf("%s GPU%d GPS-TLB hit rate = %.3f, want ~1", name, g, hr)
			}
		}
	}
}

func TestUMFaultsAndThrashing(t *testing.T) {
	res := runApp(t, "pagerank", KindUM, 4)
	if res.TotalFaults() == 0 {
		t.Fatal("UM run took no faults")
	}
	// Interleaved atomics from all GPUs must thrash pages: migrations far
	// exceed the page count.
	if res.InterconnectBytes(0) == 0 {
		t.Fatal("UM moved no pages")
	}
	// Single GPU: everything is local after first touch.
	res1 := runApp(t, "pagerank", KindUM, 1)
	if res1.InterconnectBytes(0) != 0 {
		t.Fatal("single-GPU UM should move nothing")
	}
}

func TestRDLLoadsFromLastWriter(t *testing.T) {
	res := runApp(t, "jacobi", KindRDL, 4)
	var remoteReads, pushes uint64
	for _, ph := range res.Phases {
		for _, p := range ph.Profiles {
			for _, b := range p.RemoteRead {
				remoteReads += b
			}
			for _, b := range p.Push {
				pushes += b
			}
		}
	}
	if remoteReads == 0 {
		t.Fatal("RDL produced no remote reads (halo loads must cross)")
	}
	if pushes != 0 {
		t.Fatal("RDL must not push stores remotely")
	}
}

func TestMemcpyBroadcastsDirtyPagesAtBarriers(t *testing.T) {
	res := runApp(t, "jacobi", KindMemcpy, 4)
	meta := res.Meta
	var sharedBytes uint64
	for _, r := range meta.Regions {
		if r.Kind == trace.RegionShared {
			sharedBytes += r.Size
		}
	}
	// Jacobi dirties exactly one of its two ping-pong arrays per phase;
	// every dirty page crosses to each of the 3 peers once.
	wantPerPhase := sharedBytes / 2 * 3
	for _, ph := range res.Phases {
		var bulk uint64
		for _, p := range ph.Profiles {
			for _, b := range p.Bulk {
				bulk += b
			}
		}
		if bulk != wantPerPhase {
			t.Fatalf("phase %d bulk = %d, want %d", ph.Index, bulk, wantPerPhase)
		}
		// And no demand traffic during kernels.
		for _, p := range ph.Profiles {
			for _, b := range p.RemoteRead {
				if b != 0 {
					t.Fatal("memcpy kernels must be fully local")
				}
			}
		}
	}
}

func TestInfiniteBWMovesNothing(t *testing.T) {
	res := runApp(t, "eqwp", KindInfinite, 4)
	if res.InterconnectBytes(0) != 0 {
		t.Fatal("infinite-BW paradigm should elide all transfers")
	}
}

func TestTrafficComparisonFigure10Shape(t *testing.T) {
	// GPS with subscription must move less data than UM for the
	// thrash-prone graph apps, and less than memcpy for Jacobi.
	post := func(r *engine.Result) uint64 { return r.InterconnectBytes(r.Meta.ProfilePhases) }
	umPR := post(runApp(t, "pagerank", KindUM, 4))
	gpsPR := post(runApp(t, "pagerank", KindGPS, 4))
	if gpsPR >= umPR {
		t.Errorf("pagerank: GPS traffic %d should undercut UM %d", gpsPR, umPR)
	}
	memJac := post(runApp(t, "jacobi", KindMemcpy, 4))
	gpsJac := post(runApp(t, "jacobi", KindGPS, 4))
	if float64(gpsJac) > 0.5*float64(memJac) {
		t.Errorf("jacobi: GPS traffic %d should be far below memcpy %d", gpsJac, memJac)
	}
	umJac := post(runApp(t, "jacobi", KindUM, 4))
	if umJac >= memJac {
		t.Errorf("jacobi: UM traffic %d should undercut memcpy %d (Section 7.2)", umJac, memJac)
	}
}

func TestUMHintsAvoidsFaults(t *testing.T) {
	res := runApp(t, "jacobi", KindUMHints, 4)
	if res.TotalFaults() != 0 {
		t.Fatal("hints paradigm should not fault")
	}
	// But collapses of read-duplicated pages must occur across iterations.
	var shootdowns int
	for _, ph := range res.Phases {
		for _, p := range ph.Profiles {
			shootdowns += p.Shootdowns
		}
	}
	if shootdowns == 0 {
		t.Fatal("writing read-duplicated halo pages must trigger shootdowns")
	}
}

func TestComputeOpsAccountedOncePerPhase(t *testing.T) {
	spec, _ := workload.ByName("jacobi")
	prog := spec.Build(workload.Config{NumGPUs: 2, Iterations: 1, Scale: 1, Seed: 1})
	m, err := New(KindGPS, prog, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res := engine.Run(prog, m)
	var kernelOps uint64
	prog.Phases(func(ph *trace.Phase) bool {
		for _, k := range ph.Kernels {
			kernelOps += k.ComputeOps
		}
		return true
	})
	var profOps uint64
	for _, ph := range res.Phases {
		for _, p := range ph.Profiles {
			profOps += p.ComputeOps
		}
	}
	if kernelOps != profOps {
		t.Fatalf("compute ops %d != kernel total %d", profOps, kernelOps)
	}
}

func TestNewRejectsUnknownKind(t *testing.T) {
	spec, _ := workload.ByName("jacobi")
	prog := spec.Build(workload.Config{NumGPUs: 2, Iterations: 1})
	if _, err := New(Kind(99), prog, DefaultConfig()); err == nil {
		t.Fatal("unknown kind accepted")
	}
}
