package obs

import (
	"encoding/json"
	"fmt"
	"sort"
)

// TraceSummary is what ValidateTrace learned about a trace file.
type TraceSummary struct {
	Events int
	Spans  int
	ByCat  map[string]int
	Tracks int
	DurUS  float64 // wall span of the trace in microseconds
}

// ValidateTrace checks a Chrome trace-event JSON file for structural
// sanity: it must parse, every B event must close with a matching E on the
// same track in LIFO order, and spans must nest by wall time along the
// category hierarchy cell ⊂ figure ⊂ job and phase ⊂ cell. requireCats, if
// non-empty, lists categories at least one span of which must be present
// (the smoke checker demands job, figure, cell and phase).
func ValidateTrace(data []byte, requireCats ...string) (*TraceSummary, error) {
	var events []event
	if err := json.Unmarshal(data, &events); err != nil {
		return nil, fmt.Errorf("trace is not a JSON event array: %w", err)
	}

	type span struct {
		name, cat  string
		tid        uint64
		start, end float64
	}

	// Events are appended B-then-E per span but not globally ordered; sort
	// by timestamp. The tracer's clock is strictly monotone so ties only
	// appear in foreign traces; break them B-first, which at worst trades
	// one validation error message for another.
	idx := make([]int, len(events))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		ea, eb := &events[idx[a]], &events[idx[b]]
		if ea.Ts != eb.Ts {
			return ea.Ts < eb.Ts
		}
		return ea.Ph == "B" && eb.Ph == "E"
	})

	sum := &TraceSummary{Events: len(events), ByCat: map[string]int{}}
	stacks := map[uint64][]*span{} // per-track open spans
	tracks := map[uint64]bool{}
	var spans []*span
	var minTs, maxTs float64
	for n, i := range idx {
		e := &events[i]
		if n == 0 || e.Ts < minTs {
			minTs = e.Ts
		}
		if e.Ts > maxTs {
			maxTs = e.Ts
		}
		tracks[e.Tid] = true
		switch e.Ph {
		case "B":
			s := &span{name: e.Name, cat: e.Cat, tid: e.Tid, start: e.Ts}
			stacks[e.Tid] = append(stacks[e.Tid], s)
			spans = append(spans, s)
		case "E":
			st := stacks[e.Tid]
			if len(st) == 0 {
				return nil, fmt.Errorf("track %d: E %q at %.3fus closes nothing", e.Tid, e.Name, e.Ts)
			}
			top := st[len(st)-1]
			if top.name != e.Name {
				return nil, fmt.Errorf("track %d: E %q at %.3fus closes open span %q (not LIFO)",
					e.Tid, e.Name, e.Ts, top.name)
			}
			top.end = e.Ts
			stacks[e.Tid] = st[:len(st)-1]
		case "M", "X", "i", "I":
			// Metadata/instant/complete events are legal trace content; the
			// balance check only concerns B/E pairs.
		default:
			return nil, fmt.Errorf("unknown event phase %q", e.Ph)
		}
	}
	for tid, st := range stacks {
		if len(st) > 0 {
			return nil, fmt.Errorf("track %d: span %q never closed", tid, st[len(st)-1].name)
		}
	}

	// Category nesting: each span of a child category must sit inside some
	// span of its parent category by wall time.
	parentCat := map[string]string{
		CatFigure:      CatJob,
		CatCell:        CatFigure,
		CatPhase:       CatCell,
		CatEnginePhase: CatPhase,
	}
	byCat := map[string][]*span{}
	for _, s := range spans {
		byCat[s.cat] = append(byCat[s.cat], s)
		sum.ByCat[s.cat]++
	}
	for cat, parent := range parentCat {
		for _, s := range byCat[cat] {
			if len(byCat[parent]) == 0 {
				continue // a trace may legitimately lack the outer layer (unit tests)
			}
			contained := false
			for _, p := range byCat[parent] {
				if p.start <= s.start && s.end <= p.end {
					contained = true
					break
				}
			}
			if !contained {
				return nil, fmt.Errorf("%s span %q [%.3f,%.3f]us not contained in any %s span",
					cat, s.name, s.start, s.end, parent)
			}
		}
	}
	for _, cat := range requireCats {
		if sum.ByCat[cat] == 0 {
			return nil, fmt.Errorf("trace has no %q spans", cat)
		}
	}
	sum.Spans = len(spans)
	sum.Tracks = len(tracks)
	sum.DurUS = maxTs - minTs
	return sum, nil
}
