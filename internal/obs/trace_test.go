package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"sync"
	"testing"
)

// TestTracerRoundTrip drives the full span hierarchy — job ⊃ figure ⊃
// concurrent cells ⊃ phases — and checks the emitted file against the
// structural validator: valid JSON, balanced B/E pairs, LIFO nesting per
// track, wall-time containment along the category chain.
func TestTracerRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(context.Background(), &buf)
	ctx := WithTracer(context.Background(), tr)

	jctx, job := StartSpan(ctx, CatJob, "test-job", "hash", "abc")
	fctx, figure := StartSpan(jctx, CatFigure, "figure8")
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cctx, cell := StartSpanTrack(fctx, CatCell, "jacobi/GPS/2gpu")
			_, phase := StartSpan(cctx, CatPhase, "engine-replay")
			phase.End()
			_, render := StartSpan(cctx, CatPhase, "render")
			render.End()
			cell.End()
		}()
	}
	wg.Wait()
	figure.End()
	job.End()
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	sum, err := ValidateTrace(buf.Bytes(), CatJob, CatFigure, CatCell, CatPhase)
	if err != nil {
		t.Fatalf("ValidateTrace: %v\ntrace:\n%s", err, buf.String())
	}
	if sum.ByCat[CatJob] != 1 || sum.ByCat[CatFigure] != 1 ||
		sum.ByCat[CatCell] != 4 || sum.ByCat[CatPhase] != 8 {
		t.Errorf("span counts by category = %v, want job:1 figure:1 cell:4 phase:8", sum.ByCat)
	}
	if sum.Spans != 14 || sum.Events != 28 {
		t.Errorf("spans=%d events=%d, want 14 spans / 28 events", sum.Spans, sum.Events)
	}
}

// TestTracerBalancedJSON: the raw file parses as a flat array of events and
// every B has a matching E (independent of the validator's own parsing).
func TestTracerBalancedJSON(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(context.Background(), &buf)
	ctx := WithTracer(context.Background(), tr)
	_, s := StartSpan(ctx, CatJob, "solo")
	s.End()
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	var raw []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &raw); err != nil {
		t.Fatalf("trace is not a JSON array: %v\n%s", err, buf.String())
	}
	balance := 0
	for _, e := range raw {
		switch e["ph"] {
		case "B":
			balance++
		case "E":
			balance--
		}
	}
	if balance != 0 {
		t.Errorf("B/E balance = %d, want 0", balance)
	}
}

// TestTracerContextCancel: canceling the context given to NewTracer
// finalizes the file from the flusher on its way out — no goroutine leak,
// valid JSON on disk — and a later Close is a harmless no-op.
func TestTracerContextCancel(t *testing.T) {
	var buf bytes.Buffer
	ctx, cancel := context.WithCancel(context.Background())
	tr := NewTracer(ctx, &buf)
	sctx := WithTracer(context.Background(), tr)
	_, s := StartSpan(sctx, CatJob, "interrupted")
	s.End()
	cancel()
	<-tr.done // flusher exited because its context died
	var raw []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &raw); err != nil {
		t.Fatalf("canceled trace is not valid JSON: %v\n%s", err, buf.String())
	}
	if err := tr.Close(); err != nil {
		t.Errorf("Close after cancel = %v, want nil", err)
	}
}

// TestTracerEmptyClose: a tracer that recorded nothing still finalizes to a
// valid (empty) JSON array.
func TestTracerEmptyClose(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(context.Background(), &buf)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	var raw []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &raw); err != nil || len(raw) != 0 {
		t.Fatalf("empty trace = %q (%v), want empty JSON array", buf.String(), err)
	}
	if err := tr.Close(); err != nil {
		t.Errorf("second Close = %v, want nil", err)
	}
}

// TestStartSpanWithoutTracer: with no tracer installed, StartSpan returns
// the context unchanged and a nil span whose End is a no-op — the
// production fast path.
func TestStartSpanWithoutTracer(t *testing.T) {
	ctx := context.Background()
	got, s := StartSpan(ctx, CatCell, "free")
	if got != ctx {
		t.Error("StartSpan without tracer re-wrapped the context")
	}
	if s != nil {
		t.Errorf("StartSpan without tracer returned span %v, want nil", s)
	}
	s.End() // must not panic
}

// TestMonotoneClock: the tracer's event clock never repeats, even under
// concurrent readers — the property that makes B/E validation tie-free.
func TestMonotoneClock(t *testing.T) {
	tr := NewTracer(context.Background(), &bytes.Buffer{})
	defer tr.Close() //nolint:errcheck
	const perG, goroutines = 500, 8
	out := make([][]int64, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ts := make([]int64, perG)
			for i := range ts {
				ts[i] = tr.now()
			}
			out[g] = ts
		}(g)
	}
	wg.Wait()
	seen := make(map[int64]bool, perG*goroutines)
	for g, ts := range out {
		for i := 1; i < len(ts); i++ {
			if ts[i] <= ts[i-1] {
				t.Fatalf("goroutine %d: clock went %d -> %d", g, ts[i-1], ts[i])
			}
		}
		for _, v := range ts {
			if seen[v] {
				t.Fatalf("timestamp %d issued twice", v)
			}
			seen[v] = true
		}
	}
}

// TestValidateTraceRejects: the validator actually catches broken traces.
func TestValidateTraceRejects(t *testing.T) {
	cases := map[string]string{
		"not json":      `{"name":"x"}`,
		"unclosed span": `[{"name":"a","ph":"B","ts":1,"pid":1,"tid":1}]`,
		"stray end":     `[{"name":"a","ph":"E","ts":1,"pid":1,"tid":1}]`,
		"non-lifo": `[{"name":"a","ph":"B","ts":1,"pid":1,"tid":1},
			{"name":"b","ph":"B","ts":2,"pid":1,"tid":1},
			{"name":"a","ph":"E","ts":3,"pid":1,"tid":1},
			{"name":"b","ph":"E","ts":4,"pid":1,"tid":1}]`,
		"cell outside figure": `[{"name":"f","cat":"figure","ph":"B","ts":1,"pid":1,"tid":1},
			{"name":"f","cat":"figure","ph":"E","ts":2,"pid":1,"tid":1},
			{"name":"c","cat":"cell","ph":"B","ts":3,"pid":1,"tid":2},
			{"name":"c","cat":"cell","ph":"E","ts":4,"pid":1,"tid":2}]`,
	}
	for name, data := range cases {
		if _, err := ValidateTrace([]byte(data)); err == nil {
			t.Errorf("%s: ValidateTrace accepted a broken trace", name)
		}
	}
	if _, err := ValidateTrace([]byte("[]"), CatJob); err == nil {
		t.Error("requireCats accepted a trace with no job spans")
	}
}
