package obs

import (
	"bytes"
	"log/slog"
	"strings"
	"testing"
)

func TestParseLevel(t *testing.T) {
	cases := map[string]slog.Level{
		"debug": slog.LevelDebug,
		"info":  slog.LevelInfo,
		"":      slog.LevelInfo,
		"WARN":  slog.LevelWarn,
		"error": slog.LevelError,
	}
	for in, want := range cases {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v; want %v, nil", in, got, err, want)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("ParseLevel accepted an unknown level")
	}
}

func TestNewLoggerLevels(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, slog.LevelWarn, false)
	l.Info("hidden")
	l.Warn("visible")
	out := buf.String()
	if strings.Contains(out, "hidden") || !strings.Contains(out, "visible") {
		t.Errorf("level filtering broken:\n%s", out)
	}
}

func TestNopLogger(t *testing.T) {
	l := Nop()
	if l.Enabled(nil, slog.LevelError) { //nolint:staticcheck // nil ctx is fine for slog
		t.Error("Nop logger reports levels enabled")
	}
	l.Error("dropped", "k", "v") // must not panic or write anywhere
	l.With("a", 1).WithGroup("g").Info("still dropped")
}
