package obs

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestAccessLog: one request produces one structured log record with the
// method, path, status, byte count and latency, and bumps the labeled
// request counter plus the latency histogram.
func TestAccessLog(t *testing.T) {
	var logBuf bytes.Buffer
	logger := NewLogger(&logBuf, slog.LevelInfo, true)
	reg := NewRegistry()
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusTeapot)
		w.Write([]byte("short and stout")) //nolint:errcheck
	})
	h := AccessLog(logger, reg, inner)

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/jobs/j-000001", nil))
	if rec.Code != http.StatusTeapot {
		t.Fatalf("middleware altered status: %d", rec.Code)
	}

	var entry map[string]any
	if err := json.Unmarshal(logBuf.Bytes(), &entry); err != nil {
		t.Fatalf("access log is not one JSON record: %v\n%s", err, logBuf.String())
	}
	if entry["msg"] != "http request" || entry["method"] != "GET" ||
		entry["path"] != "/v1/jobs/j-000001" || entry["status"] != float64(http.StatusTeapot) {
		t.Errorf("log record = %v", entry)
	}
	if entry["bytes"] != float64(len("short and stout")) {
		t.Errorf("bytes = %v, want %d", entry["bytes"], len("short and stout"))
	}
	if _, ok := entry["duration_ms"].(float64); !ok {
		t.Errorf("duration_ms missing or not a number: %v", entry["duration_ms"])
	}

	var expo strings.Builder
	if err := reg.WritePrometheus(&expo); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(expo.String(), `http_requests_total{code="418",method="GET"} 1`) {
		t.Errorf("request counter missing from exposition:\n%s", expo.String())
	}
	if !strings.Contains(expo.String(), "http_request_duration_seconds_count 1") {
		t.Errorf("latency histogram missing from exposition:\n%s", expo.String())
	}
}

// TestAccessLogDefaultStatus: handlers that never call WriteHeader log 200.
func TestAccessLogDefaultStatus(t *testing.T) {
	var logBuf bytes.Buffer
	h := AccessLog(NewLogger(&logBuf, slog.LevelInfo, true), nil,
		http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.Write([]byte("ok")) //nolint:errcheck
		}))
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest(http.MethodGet, "/", nil))
	var entry map[string]any
	if err := json.Unmarshal(logBuf.Bytes(), &entry); err != nil {
		t.Fatal(err)
	}
	if entry["status"] != float64(http.StatusOK) {
		t.Errorf("status = %v, want 200", entry["status"])
	}
}

// TestReadBuildInfo: the cached build info carries at least the Go version
// (VCS stamps are absent in test binaries).
func TestReadBuildInfo(t *testing.T) {
	bi := ReadBuildInfo()
	if bi.GoVersion == "" {
		t.Error("BuildInfo.GoVersion is empty")
	}
	if again := ReadBuildInfo(); again != bi {
		t.Error("ReadBuildInfo is not stable across calls")
	}
}
