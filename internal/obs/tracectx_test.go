package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestTraceparentRoundTrip(t *testing.T) {
	tc := TraceContext{TraceID: NewTraceID(), SpanID: NewSpanID()}
	if len(tc.TraceID) != 32 || len(tc.SpanID) != 16 {
		t.Fatalf("id lengths: trace=%d span=%d", len(tc.TraceID), len(tc.SpanID))
	}
	got, ok := ParseTraceparent(tc.Traceparent())
	if !ok || got != tc {
		t.Fatalf("roundtrip: %q -> %+v ok=%v, want %+v", tc.Traceparent(), got, ok, tc)
	}

	// Rootless context: zero span id parses back to "".
	root := TraceContext{TraceID: tc.TraceID}
	got, ok = ParseTraceparent(root.Traceparent())
	if !ok || got.SpanID != "" || got.TraceID != tc.TraceID {
		t.Fatalf("rootless roundtrip: got %+v ok=%v", got, ok)
	}

	if (TraceContext{}).Traceparent() != "" {
		t.Error("zero context should render empty traceparent")
	}
	for _, bad := range []string{
		"", "garbage", "00-short-span-01",
		"00-" + strings.Repeat("0", 32) + "-" + tc.SpanID + "-01", // zero trace id
		"00-" + strings.ToUpper(tc.TraceID) + "-" + tc.SpanID + "-01",
	} {
		if _, ok := ParseTraceparent(bad); ok {
			t.Errorf("ParseTraceparent(%q) accepted", bad)
		}
	}
}

func TestNewJobTrace(t *testing.T) {
	// Fresh trace when no parent.
	ti := NewJobTrace(TraceContext{})
	if ti.TraceID == "" || ti.SpanID == "" || ti.ParentSpanID != "" {
		t.Fatalf("root job trace = %+v", ti)
	}
	// Continues the parent's trace and records the parent span.
	child := NewJobTrace(ti.Context())
	if child.TraceID != ti.TraceID || child.ParentSpanID != ti.SpanID || child.SpanID == ti.SpanID {
		t.Fatalf("child job trace = %+v under parent %+v", child, ti)
	}
}

// TestSpanTraceChaining: spans under WithTraceContext stamp
// trace_id/span_id/parent_span_id and each nested span chains off the one
// above, with StartSpanWithID pinning the root's identity.
func TestSpanTraceChaining(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(context.Background(), &buf)
	tr.SetProcess("n1")
	ti := NewJobTrace(TraceContext{SpanID: "feedfacefeedface", TraceID: NewTraceID()})

	ctx := WithTracer(context.Background(), tr)
	ctx = WithTraceContext(ctx, TraceContext{TraceID: ti.TraceID, SpanID: ti.ParentSpanID})
	jctx, job := StartSpanWithID(ctx, CatJob, "job-1", ti.SpanID, "hash", "abc")
	fctx, fig := StartSpan(jctx, CatFigure, "fig8")
	_, cell := StartSpanTrack(fctx, CatCell, "cell-0")
	cell.End()
	fig.End()
	job.End()
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	var events []event
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatal(err)
	}
	spanIDByName, parentByName := map[string]string{}, map[string]string{}
	pids := map[int]bool{}
	for _, e := range events {
		if e.Ph != "B" {
			continue
		}
		pids[e.Pid] = true
		if e.Args["trace_id"] != ti.TraceID {
			t.Errorf("span %q trace_id = %q, want %q", e.Name, e.Args["trace_id"], ti.TraceID)
		}
		spanIDByName[e.Name] = e.Args["span_id"]
		parentByName[e.Name] = e.Args["parent_span_id"]
	}
	if spanIDByName["job-1"] != ti.SpanID || parentByName["job-1"] != "feedfacefeedface" {
		t.Errorf("job span identity = %q parent %q, want %q parent feedfacefeedface",
			spanIDByName["job-1"], parentByName["job-1"], ti.SpanID)
	}
	if parentByName["fig8"] != ti.SpanID {
		t.Errorf("figure parent = %q, want job span %q", parentByName["fig8"], ti.SpanID)
	}
	if parentByName["cell-0"] != spanIDByName["fig8"] || spanIDByName["cell-0"] == "" {
		t.Errorf("cell parent = %q, want figure span %q", parentByName["cell-0"], spanIDByName["fig8"])
	}
	if want := nodePid("n1"); !pids[want] || pids[1] {
		t.Errorf("pids seen = %v, want node pid %d only", pids, want)
	}
	// SetProcess metadata must be present for cluster merge alignment.
	var meta []string
	for _, e := range events {
		if e.Ph == "M" {
			meta = append(meta, e.Name)
		}
	}
	if len(meta) != 2 || meta[0] != "process_name" || meta[1] != "trace_start" {
		t.Errorf("metadata events = %v", meta)
	}
	if _, err := ValidateTrace(buf.Bytes(), CatJob, CatFigure, CatCell); err != nil {
		t.Fatalf("ValidateTrace: %v", err)
	}
}

// TestSpanNoTraceContext: without WithTraceContext, spans carry no identity
// args (the single-node fast path is unchanged).
func TestSpanNoTraceContext(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(context.Background(), &buf)
	ctx := WithTracer(context.Background(), tr)
	_, s := StartSpan(ctx, CatJob, "plain")
	s.End()
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	var events []event
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatal(err)
	}
	for _, e := range events {
		if e.Args["trace_id"] != "" || e.Args["span_id"] != "" {
			t.Errorf("unexpected trace identity on %q: %v", e.Name, e.Args)
		}
	}
}

func TestWriteStaticTrace(t *testing.T) {
	base := time.Now()
	ti := NewJobTrace(TraceContext{})
	var buf bytes.Buffer
	err := WriteStaticTrace(&buf, "n2", ti.TraceID, []StaticSpan{
		{Cat: CatJob, Name: "job-x", Start: base, End: base.Add(2 * time.Second),
			SpanID: ti.SpanID, Args: map[string]string{"hash": "h"}},
		{Cat: CatPhase, Name: "remote-exec", Start: base.Add(10 * time.Millisecond),
			End:    base.Add(10 * time.Millisecond), // zero-length: clamped
			SpanID: NewSpanID(), ParentSpanID: ti.SpanID},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ValidateTrace(buf.Bytes(), CatJob); err != nil {
		t.Fatalf("ValidateTrace: %v\n%s", err, buf.String())
	}
	sum, err := ValidateClusterTraces(map[string][]byte{"n2.json": buf.Bytes()})
	if err != nil {
		t.Fatalf("ValidateClusterTraces: %v", err)
	}
	if len(sum.Traces) != 1 || sum.Traces[0].Spans != 2 || sum.Traces[0].Roots != 1 {
		t.Fatalf("summary = %+v", sum.Traces)
	}
	if sum.Traces[0].Nodes[0] != "gpsd-n2" {
		t.Errorf("node = %q, want gpsd-n2 from process_name", sum.Traces[0].Nodes[0])
	}
}

// twoNodeFixture builds two per-node files sharing one trace: the job span
// on node a, a child job span (a steal) on node b.
func twoNodeFixture(t *testing.T, breakParent bool) (TraceInfo, map[string][]byte) {
	t.Helper()
	base := time.Now()
	ti := NewJobTrace(TraceContext{})
	thief := NewJobTrace(ti.Context())
	if breakParent {
		thief.ParentSpanID = "dead00000000beef" // resolves nowhere
	}
	var a, b bytes.Buffer
	if err := WriteStaticTrace(&a, "a", ti.TraceID, []StaticSpan{
		{Cat: CatJob, Name: "job", Start: base, End: base.Add(time.Second), SpanID: ti.SpanID},
	}); err != nil {
		t.Fatal(err)
	}
	if err := WriteStaticTrace(&b, "b", ti.TraceID, []StaticSpan{
		{Cat: CatJob, Name: "job", Start: base.Add(100 * time.Millisecond),
			End: base.Add(900 * time.Millisecond), SpanID: thief.SpanID, ParentSpanID: thief.ParentSpanID},
	}); err != nil {
		t.Fatal(err)
	}
	return ti, map[string][]byte{"a.trace.json": a.Bytes(), "b.trace.json": b.Bytes()}
}

func TestValidateClusterTracesConnected(t *testing.T) {
	ti, files := twoNodeFixture(t, false)
	sum, err := ValidateClusterTraces(files)
	if err != nil {
		t.Fatal(err)
	}
	if sum.CrossNode != 1 || len(sum.Traces) != 1 {
		t.Fatalf("summary = %+v", sum)
	}
	ct := sum.Traces[0]
	if ct.TraceID != ti.TraceID || !ct.CrossNode() || ct.Spans != 2 || ct.Roots != 1 {
		t.Fatalf("trace = %+v", ct)
	}
	if len(ct.Nodes) != 2 || ct.Nodes[0] != "gpsd-a" || ct.Nodes[1] != "gpsd-b" {
		t.Fatalf("nodes = %v", ct.Nodes)
	}
}

func TestValidateClusterTracesBrokenLink(t *testing.T) {
	_, files := twoNodeFixture(t, true)
	if _, err := ValidateClusterTraces(files); err == nil ||
		!strings.Contains(err.Error(), "parent_span_id") {
		t.Fatalf("want broken-parent error, got %v", err)
	}
}

// TestValidateClusterTracesDuplicateSpan: adoption re-emits the job span
// under the same span_id on a second node — legal.
func TestValidateClusterTracesDuplicateSpan(t *testing.T) {
	base := time.Now()
	ti := NewJobTrace(TraceContext{})
	var a, b bytes.Buffer
	for i, w := range []*bytes.Buffer{&a, &b} {
		node := string(rune('a' + i))
		if err := WriteStaticTrace(w, node, ti.TraceID, []StaticSpan{
			{Cat: CatJob, Name: "job", Start: base, End: base.Add(time.Second), SpanID: ti.SpanID},
		}); err != nil {
			t.Fatal(err)
		}
	}
	sum, err := ValidateClusterTraces(map[string][]byte{"a.json": a.Bytes(), "b.json": b.Bytes()})
	if err != nil {
		t.Fatal(err)
	}
	if sum.CrossNode != 1 || sum.Traces[0].Spans != 2 {
		t.Fatalf("summary = %+v", sum)
	}
}

func TestMergeTraces(t *testing.T) {
	_, files := twoNodeFixture(t, false)
	out, err := MergeTraces(files)
	if err != nil {
		t.Fatal(err)
	}
	var events []event
	if err := json.Unmarshal(out, &events); err != nil {
		t.Fatalf("merged output not JSON: %v", err)
	}
	pids := map[int]bool{}
	for _, e := range events {
		pids[e.Pid] = true
	}
	if len(pids) != 2 {
		t.Fatalf("merged pids = %v, want 2 distinct node pids", pids)
	}
	// Merged output is still a structurally valid single trace file as far
	// as B/E balance goes (containment across processes isn't checked).
	if _, err := ValidateClusterTraces(map[string][]byte{"merged.json": out}); err != nil {
		t.Fatalf("merged file fails validation: %v", err)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := newHistogram([]float64{0.1, 0.5, 1, 5})
	for i := 0; i < 90; i++ {
		h.Observe(0.05) // first bucket
	}
	for i := 0; i < 10; i++ {
		h.Observe(2.0) // (1,5] bucket
	}
	if p50 := h.Quantile(0.50); p50 <= 0 || p50 > 0.1 {
		t.Errorf("p50 = %v, want within first bucket (0,0.1]", p50)
	}
	if p99 := h.Quantile(0.99); p99 <= 1 || p99 > 5 {
		t.Errorf("p99 = %v, want within (1,5]", p99)
	}
	if got := h.Quantile(1.0); got != 5.0 && (got <= 1 || got > 5) {
		t.Errorf("p100 = %v", got)
	}

	empty := newHistogram([]float64{1})
	if empty.Quantile(0.5) != 0 {
		t.Errorf("empty histogram quantile = %v, want 0", empty.Quantile(0.5))
	}

	sum := h.Summary()
	if sum.Count != 100 || sum.P50 <= 0 || sum.P99 <= sum.P50 {
		t.Errorf("summary = %+v", sum)
	}
}
