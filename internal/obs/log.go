package obs

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// NewLogger builds the process logger: text (logfmt-style) or JSON records
// on w at the given level. Both daemons log to stderr so stdout stays
// machine-parseable (the gpsd listen line, gpsbench tables).
func NewLogger(w io.Writer, level slog.Level, json bool) *slog.Logger {
	opts := &slog.HandlerOptions{Level: level}
	if json {
		return slog.New(slog.NewJSONHandler(w, opts))
	}
	return slog.New(slog.NewTextHandler(w, opts))
}

// ParseLevel maps a -log-level flag value onto a slog.Level.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return slog.LevelDebug, nil
	case "info", "":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("obs: unknown log level %q (want debug, info, warn or error)", s)
}

// Nop returns a logger that discards everything. It is the default for
// library components whose caller did not configure logging, so call sites
// never nil-check.
func Nop() *slog.Logger { return slog.New(nopHandler{}) }

// nopHandler reports every level disabled, so argument evaluation beyond
// the call itself is skipped too.
type nopHandler struct{}

func (nopHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (nopHandler) Handle(context.Context, slog.Record) error { return nil }
func (h nopHandler) WithAttrs([]slog.Attr) slog.Handler      { return h }
func (h nopHandler) WithGroup(string) slog.Handler           { return h }
