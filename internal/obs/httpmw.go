package obs

import (
	"log/slog"
	"net/http"
	"runtime/debug"
	"strconv"
	"sync"
	"time"
)

// statusRecorder captures what the wrapped handler wrote.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(p []byte) (int, error) {
	n, err := r.ResponseWriter.Write(p)
	r.bytes += n
	return n, err
}

// AccessLog wraps next with a request access log on l and, when reg is
// non-nil, request counters and a latency histogram. Either l or reg may be
// nil to get just the other half.
func AccessLog(l *slog.Logger, reg *Registry, next http.Handler) http.Handler {
	if l == nil {
		l = Nop()
	}
	var durations *Histogram
	if reg != nil {
		durations = reg.Histogram("http_request_duration_seconds",
			"HTTP request latency by method.", nil)
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(rec, r)
		elapsed := time.Since(start)
		l.Info("http request",
			"method", r.Method,
			"path", r.URL.Path,
			"status", rec.status,
			"bytes", rec.bytes,
			"duration_ms", float64(elapsed.Microseconds())/1e3,
			"remote", r.RemoteAddr,
		)
		if reg != nil {
			durations.Observe(elapsed.Seconds())
			// Method and status keep cardinality bounded regardless of what
			// paths clients probe.
			reg.Counter("http_requests_total", "HTTP requests by method and status.",
				"method", r.Method, "code", strconv.Itoa(rec.status)).Inc()
		}
	})
}

// BuildInfo is the VCS identity of the running binary, for /v1/healthz.
type BuildInfo struct {
	GoVersion string `json:"go_version"`
	Revision  string `json:"vcs_revision,omitempty"`
	Time      string `json:"vcs_time,omitempty"`
	Modified  bool   `json:"vcs_modified,omitempty"`
}

var (
	buildInfoOnce sync.Once
	buildInfo     BuildInfo
)

// ReadBuildInfo extracts the Go version and VCS stamp from the binary's
// embedded build information, cached after the first call.
func ReadBuildInfo() BuildInfo {
	buildInfoOnce.Do(func() {
		bi, ok := debug.ReadBuildInfo()
		if !ok {
			return
		}
		buildInfo.GoVersion = bi.GoVersion
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				buildInfo.Revision = s.Value
			case "vcs.time":
				buildInfo.Time = s.Value
			case "vcs.modified":
				buildInfo.Modified = s.Value == "true"
			}
		}
	})
	return buildInfo
}
