package obs

import (
	"bufio"
	"io"
	"sort"
	"strconv"
)

// WritePrometheus renders every family in the text exposition format:
// families sorted by name, series sorted by label block, histograms with
// cumulative le buckets plus _sum and _count. The output is deterministic
// for a deterministic set of values, which the golden test pins.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	fams := make([]*family, len(names))
	for i, name := range names {
		fams[i] = r.families[name]
	}
	r.mu.Unlock()

	bw := bufio.NewWriter(w)
	for _, f := range fams {
		if f.help != "" {
			bw.WriteString("# HELP " + f.name + " " + f.help + "\n")
		}
		bw.WriteString("# TYPE " + f.name + " " + f.typ + "\n")
		labels := make([]string, 0, len(f.series))
		// Families and series only grow, and a series' instruments are
		// immutable once created, so sampling outside the registry lock is
		// safe: the worst case is missing a series added mid-scrape.
		r.mu.Lock()
		for l := range f.series {
			labels = append(labels, l)
		}
		r.mu.Unlock()
		sort.Strings(labels)
		for _, l := range labels {
			r.mu.Lock()
			s := f.series[l]
			r.mu.Unlock()
			writeSeries(bw, f.name, s)
		}
	}
	return bw.Flush()
}

func writeSeries(bw *bufio.Writer, name string, s *series) {
	switch {
	case s.counter != nil:
		bw.WriteString(name + s.labels + " " + strconv.FormatUint(s.counter.Value(), 10) + "\n")
	case s.gauge != nil:
		bw.WriteString(name + s.labels + " " + formatFloat(s.gauge.Value()) + "\n")
	case s.fn != nil:
		bw.WriteString(name + s.labels + " " + formatFloat(s.fn()) + "\n")
	case s.hist != nil:
		writeHistogram(bw, name, s)
	}
}

func writeHistogram(bw *bufio.Writer, name string, s *series) {
	h := s.hist
	// le joins any existing labels inside one block.
	open := "{"
	if s.labels != "" {
		open = s.labels[:len(s.labels)-1] + ","
	}
	var cum uint64
	for i, upper := range h.uppers {
		cum += h.counts[i].Load()
		bw.WriteString(name + "_bucket" + open + `le="` + formatFloat(upper) + `"} ` +
			strconv.FormatUint(cum, 10) + "\n")
	}
	cum += h.counts[len(h.uppers)].Load()
	bw.WriteString(name + "_bucket" + open + `le="+Inf"} ` + strconv.FormatUint(cum, 10) + "\n")
	bw.WriteString(name + "_sum" + s.labels + " " + formatFloat(h.Sum()) + "\n")
	bw.WriteString(name + "_count" + s.labels + " " + strconv.FormatUint(h.Count(), 10) + "\n")
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
