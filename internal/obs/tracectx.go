package obs

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"strconv"
	"strings"
	"time"
)

// Distributed trace identity. A job minted anywhere in the cluster carries
// one trace_id for its whole life — across submit forwarding, work steals,
// journal replication, and successor takeover — and every span it produces
// on any node records its span_id plus the span_id of its parent, W3C
// trace-context style. Merging the per-node trace files therefore yields one
// connected parent/child tree per job, which ValidateClusterTraces checks
// and Perfetto renders as a single cross-node timeline.

// TraceparentHeader carries the trace context between nodes (and from
// clients), valued with TraceContext.Traceparent's W3C-style rendering.
const TraceparentHeader = "X-GPS-Traceparent"

// TraceContext is a propagated trace position: the trace being continued
// and the span that is the parent of whatever starts next. The zero value
// means "no trace".
type TraceContext struct {
	TraceID string `json:"trace_id,omitempty"` // 32 hex chars
	SpanID  string `json:"span_id,omitempty"`  // 16 hex chars; parent of the next span
}

// TraceInfo is one job's full trace identity: the trace it belongs to, the
// span_id of its own job span, and the parent span that submitted it ("" at
// the trace root). It is persisted in the journal and replicated to the
// ring successor so adopted and replayed jobs keep their identity.
type TraceInfo struct {
	TraceID      string `json:"trace_id,omitempty"`
	SpanID       string `json:"span_id,omitempty"`
	ParentSpanID string `json:"parent_span_id,omitempty"`
}

// Context returns the propagation context for children of this job's span.
func (ti TraceInfo) Context() TraceContext {
	return TraceContext{TraceID: ti.TraceID, SpanID: ti.SpanID}
}

// NewTraceID mints a random 128-bit trace ID (32 hex chars).
func NewTraceID() string { return randomHex(16) }

// NewSpanID mints a random 64-bit span ID (16 hex chars).
func NewSpanID() string { return randomHex(8) }

func randomHex(n int) string {
	buf := make([]byte, n)
	if _, err := rand.Read(buf); err != nil {
		// crypto/rand failing means the platform is broken; a zero ID keeps
		// tracing degraded-but-functional rather than panicking a job.
		return strings.Repeat("0", 2*n)
	}
	return hex.EncodeToString(buf)
}

// NewJobTrace mints a job's trace identity under a parent context: the
// trace continues (or starts, when parent is zero) and the job gets a fresh
// span ID with the parent recorded.
func NewJobTrace(parent TraceContext) TraceInfo {
	if parent.TraceID == "" {
		parent.TraceID = NewTraceID()
	}
	return TraceInfo{TraceID: parent.TraceID, SpanID: NewSpanID(), ParentSpanID: parent.SpanID}
}

// Traceparent renders the context as a W3C traceparent value
// ("00-<trace_id>-<span_id>-01"). A zero context renders "".
func (tc TraceContext) Traceparent() string {
	if tc.TraceID == "" {
		return ""
	}
	span := tc.SpanID
	if span == "" {
		span = strings.Repeat("0", 16)
	}
	return "00-" + tc.TraceID + "-" + span + "-01"
}

// ParseTraceparent parses a W3C traceparent value. Unparseable or empty
// input yields the zero context and ok=false; an all-zero span ID (a trace
// with no parent span yet) parses with SpanID "".
func ParseTraceparent(s string) (TraceContext, bool) {
	parts := strings.Split(strings.TrimSpace(s), "-")
	if len(parts) != 4 || len(parts[1]) != 32 || len(parts[2]) != 16 {
		return TraceContext{}, false
	}
	if !isHex(parts[1]) || !isHex(parts[2]) {
		return TraceContext{}, false
	}
	tc := TraceContext{TraceID: parts[1], SpanID: parts[2]}
	if tc.SpanID == strings.Repeat("0", 16) {
		tc.SpanID = ""
	}
	if tc.TraceID == strings.Repeat("0", 32) {
		return TraceContext{}, false
	}
	return tc, true
}

func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// traceCtxKey carries a TraceContext in a context.Context (see trace.go for
// the companion tracer/span keys).
type traceCtxKey struct{}

// nodePid maps a node name onto a stable trace-event pid, so each node's
// spans render as their own process group (track-per-node) when per-node
// files are merged into one Perfetto timeline. "" keeps the classic pid 1.
func nodePid(node string) int {
	if node == "" {
		return 1
	}
	h := fnv.New32a()
	h.Write([]byte(node)) //nolint:errcheck // fnv never errors
	return int(h.Sum32()%1_000_000) + 2
}

// StaticSpan is one pre-timed span for WriteStaticTrace: the service uses
// it to flush a trace for jobs that reached a terminal state without a
// local execution (stolen by a peer, adopted from a dead node's replica),
// where no live Tracer ever existed.
type StaticSpan struct {
	Cat, Name    string
	Start, End   time.Time
	SpanID       string
	ParentSpanID string
	Args         map[string]string
}

// WriteStaticTrace writes a complete, valid Chrome trace-event JSON array
// holding the given spans, node-tagged and stamped with the trace identity,
// without running a Tracer. Spans get one track each; timestamps are
// relative to the earliest span start, and the wall-clock epoch is recorded
// in a trace_start metadata event so MergeTraces can align files.
func WriteStaticTrace(w io.Writer, node, traceID string, spans []StaticSpan) error {
	if len(spans) == 0 {
		_, err := w.Write([]byte("[\n]\n"))
		return err
	}
	epoch := spans[0].Start
	for _, s := range spans {
		if s.Start.Before(epoch) {
			epoch = s.Start
		}
	}
	pid := nodePid(node)
	events := []event{
		{Name: "process_name", Ph: "M", Pid: pid, Args: map[string]string{"name": processName(node)}},
		{Name: "trace_start", Ph: "M", Pid: pid,
			Args: map[string]string{"unix_us": strconv.FormatInt(epoch.UnixMicro(), 10)}},
	}
	for i, s := range spans {
		ts := float64(s.Start.Sub(epoch).Nanoseconds()) / 1e3
		end := float64(s.End.Sub(epoch).Nanoseconds()) / 1e3
		if end <= ts {
			end = ts + 0.001 // clamp: B must precede E for validation
		}
		args := map[string]string{}
		for k, v := range s.Args {
			args[k] = v
		}
		if traceID != "" {
			args["trace_id"] = traceID
			if s.SpanID != "" {
				args["span_id"] = s.SpanID
			}
			if s.ParentSpanID != "" {
				args["parent_span_id"] = s.ParentSpanID
			}
		}
		tid := uint64(i + 1)
		events = append(events,
			event{Name: s.Name, Cat: s.Cat, Ph: "B", Ts: ts, Pid: pid, Tid: tid, Args: args},
			event{Name: s.Name, Cat: s.Cat, Ph: "E", Ts: end, Pid: pid, Tid: tid},
		)
	}
	data, err := json.MarshalIndent(events, "", " ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// WriteStaticTraceFile is WriteStaticTrace to a freshly created file.
func WriteStaticTraceFile(path, node, traceID string, spans []StaticSpan) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := WriteStaticTrace(f, node, traceID, spans)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return fmt.Errorf("obs: static trace %s: %w", path, werr)
	}
	return nil
}

// processName renders the node's display name for process_name metadata.
func processName(node string) string {
	if node == "" {
		return "gps"
	}
	return "gpsd-" + node
}
