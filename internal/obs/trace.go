package obs

import (
	"context"
	"encoding/json"
	"io"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// The span tracer records wall-clock spans into the Chrome trace-event JSON
// format (a flat array of B/E duration events), which Perfetto and
// chrome://tracing load directly. Spans carry a category — "job", "figure",
// "cell", "phase", "engine-phase" — and nest cell ⊂ figure ⊂ job by wall
// time; concurrent spans (matrix cells) get their own track (tid) from a
// small free-list so same-track events always nest strictly.
//
// Spans reach the tracer through a context: WithTracer installs it,
// StartSpan consults it. With no tracer installed StartSpan is one context
// lookup and returns a nil *Span whose End is a no-op — the production
// price of the instrumentation.

// Span categories used across the repo. Validation and the trace checker
// key on these.
const (
	CatJob         = "job"
	CatFigure      = "figure"
	CatCell        = "cell"
	CatPhase       = "phase"
	CatEnginePhase = "engine-phase"
)

// event is one trace-event JSON object. Ts is fractional microseconds
// since tracer start: the underlying clock ticks in strictly monotone
// nanoseconds (see Tracer.now), so no two events share a timestamp and B/E
// ordering is unambiguous for validation.
type event struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"` // microseconds since tracer start
	Pid  int               `json:"pid"`
	Tid  uint64            `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// Tracer buffers completed spans and flushes them to w as a growing JSON
// array from a background goroutine. The flusher is bound to the context
// given to NewTracer: when that context is canceled (a gpsd drain deadline,
// a gpsbench SIGINT) it finalizes the file and exits, so an abandoned
// tracer never leaks its goroutine, and the file on disk is valid JSON
// after every flush boundary.
type Tracer struct {
	mu      sync.Mutex
	w       io.Writer
	pid     int // trace-event pid; node-derived via SetProcess, default 1
	start   time.Time
	lastNs  atomic.Int64 // strictly monotone event clock, nanoseconds
	pending []event
	wrote   bool // at least one event emitted (comma state)
	closed  bool
	err     error

	free []uint64 // returned track ids, reused lowest-last
	next uint64   // next brand-new track id

	wake chan struct{}
	quit chan struct{}
	done chan struct{}
}

// flushEvery bounds how stale the on-disk trace can be while a run is in
// flight.
const flushEvery = 250 * time.Millisecond

// NewTracer starts a tracer writing to w. Callers must Close it to emit
// the closing bracket; if ctx is canceled first the flusher finalizes on
// its way out and Close becomes a no-op.
func NewTracer(ctx context.Context, w io.Writer) *Tracer {
	t := &Tracer{
		w:     w,
		pid:   1,
		start: time.Now(),
		next:  1,
		wake:  make(chan struct{}, 1),
		quit:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	go t.flushLoop(ctx)
	return t
}

// SetProcess tags all later events with a node-derived pid and queues
// Chrome process_name plus trace_start (wall-clock epoch) metadata, so that
// per-node trace files merge into one track-per-node cluster timeline.
// Call it right after NewTracer: events already queued keep their old pid.
func (t *Tracer) SetProcess(node string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return
	}
	t.pid = nodePid(node)
	t.pending = append(t.pending,
		event{Name: "process_name", Ph: "M", Pid: t.pid,
			Args: map[string]string{"name": processName(node)}},
		event{Name: "trace_start", Ph: "M", Pid: t.pid,
			Args: map[string]string{"unix_us": strconv.FormatInt(t.start.UnixMicro(), 10)}},
	)
}

func (t *Tracer) flushLoop(ctx context.Context) {
	defer close(t.done)
	tick := time.NewTicker(flushEvery)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			t.finalize()
			return
		case <-t.quit:
			return
		case <-tick.C:
			t.flushPending()
		case <-t.wake:
			t.flushPending()
		}
	}
}

// Close flushes everything, writes the closing bracket and stops the
// flusher. Idempotent, and safe after the flusher's context was canceled.
func (t *Tracer) Close() error {
	t.finalize()
	t.mu.Lock()
	select {
	case <-t.quit:
	default:
		close(t.quit)
	}
	t.mu.Unlock()
	<-t.done
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// finalize flushes pending events and terminates the JSON array.
func (t *Tracer) finalize() {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return
	}
	t.flushLocked()
	if !t.wrote {
		t.write([]byte("[\n"))
	}
	t.write([]byte("\n]\n"))
	t.closed = true
}

// flushPending writes buffered events under the lock.
func (t *Tracer) flushPending() {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.closed {
		t.flushLocked()
	}
}

func (t *Tracer) flushLocked() {
	for i := range t.pending {
		data, err := json.Marshal(&t.pending[i])
		if err != nil { // cannot happen for this struct; keep the trace sane
			continue
		}
		switch {
		case !t.wrote:
			t.write([]byte("[\n"))
			t.wrote = true
		default:
			t.write([]byte(",\n"))
		}
		t.write(data)
	}
	t.pending = t.pending[:0]
}

// write appends to the underlying writer, keeping the first error.
func (t *Tracer) write(p []byte) {
	if t.err != nil {
		return
	}
	_, t.err = t.w.Write(p)
}

// now returns a strictly increasing nanosecond timestamp: concurrent calls
// never observe the same value, so every event in a trace has a distinct
// position and span validation never faces a tie.
func (t *Tracer) now() int64 {
	ns := time.Since(t.start).Nanoseconds()
	for {
		last := t.lastNs.Load()
		if ns <= last {
			ns = last + 1
		}
		if t.lastNs.CompareAndSwap(last, ns) {
			return ns
		}
	}
}

// micros renders a nanosecond clock reading as trace-event microseconds.
func micros(ns int64) float64 { return float64(ns) / 1e3 }

// allocTrack hands out a track id: the most recently freed one, or a fresh
// one. Reuse keeps the Perfetto track list as narrow as the real
// concurrency.
func (t *Tracer) allocTrack() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	if n := len(t.free); n > 0 {
		id := t.free[n-1]
		t.free = t.free[:n-1]
		return id
	}
	id := t.next
	t.next++
	return id
}

func (t *Tracer) freeTrack(id uint64) {
	t.mu.Lock()
	t.free = append(t.free, id)
	t.mu.Unlock()
}

// Span is one in-flight duration. A nil *Span is valid and all methods are
// no-ops, so call sites never branch on whether tracing is enabled.
type Span struct {
	t         *Tracer
	name, cat string
	tid       uint64
	ownsTrack bool
	startTs   int64
	args      map[string]string
}

// span begins a span. newTrack forces a dedicated track (for spans that
// run concurrently with their siblings); otherwise the parent's track is
// inherited so serial children nest on one Perfetto row.
func (t *Tracer) span(parent *Span, cat, name string, newTrack bool, kv []string) *Span {
	s := &Span{t: t, name: name, cat: cat, startTs: t.now()}
	switch {
	case newTrack || parent == nil:
		s.tid = t.allocTrack()
		s.ownsTrack = true
	default:
		s.tid = parent.tid
	}
	if len(kv) > 0 {
		s.args = make(map[string]string, len(kv)/2)
		for i := 0; i+1 < len(kv); i += 2 {
			s.args[kv[i]] = kv[i+1]
		}
	}
	return s
}

// End closes the span, queueing its B/E event pair for the flusher. Safe on
// a nil span and after the tracer finalized (events are then dropped).
func (s *Span) End() {
	if s == nil {
		return
	}
	t := s.t
	end := t.now()
	t.mu.Lock()
	if !t.closed {
		t.pending = append(t.pending,
			event{Name: s.name, Cat: s.cat, Ph: "B", Ts: micros(s.startTs), Pid: t.pid, Tid: s.tid, Args: s.args},
			event{Name: s.name, Cat: s.cat, Ph: "E", Ts: micros(end), Pid: t.pid, Tid: s.tid},
		)
	}
	t.mu.Unlock()
	if s.ownsTrack {
		t.freeTrack(s.tid)
	}
	select {
	case t.wake <- struct{}{}:
	default:
	}
}

// tracerKey and spanKey carry the tracer and the current span in a context.
type tracerKey struct{}
type spanKey struct{}

// WithTracer returns a context whose spans record into t.
func WithTracer(ctx context.Context, t *Tracer) context.Context {
	return context.WithValue(ctx, tracerKey{}, t)
}

// TracerFrom extracts the tracer installed by WithTracer, or nil.
func TracerFrom(ctx context.Context) *Tracer {
	t, _ := ctx.Value(tracerKey{}).(*Tracer)
	return t
}

// WithTraceContext installs a distributed trace position: spans started
// under the returned context stamp trace_id/span_id/parent_span_id args and
// advance the position, so nested spans chain into one parent/child tree
// that survives file merges (see ValidateClusterTraces).
func WithTraceContext(ctx context.Context, tc TraceContext) context.Context {
	return context.WithValue(ctx, traceCtxKey{}, tc)
}

// TraceContextFrom extracts the current trace position, or the zero context.
func TraceContextFrom(ctx context.Context) TraceContext {
	tc, _ := ctx.Value(traceCtxKey{}).(TraceContext)
	return tc
}

// StartSpan begins a span on the current span's track (serial nesting) and
// returns a context carrying it as the parent of further spans. With no
// tracer installed it returns ctx unchanged and a nil span.
func StartSpan(ctx context.Context, cat, name string, kv ...string) (context.Context, *Span) {
	return startSpan(ctx, cat, name, "", false, kv)
}

// StartSpanTrack is StartSpan on a dedicated track, for spans that run
// concurrently with their siblings (matrix cells).
func StartSpanTrack(ctx context.Context, cat, name string, kv ...string) (context.Context, *Span) {
	return startSpan(ctx, cat, name, "", true, kv)
}

// StartSpanWithID is StartSpanTrack with a caller-chosen span ID — for job
// root spans whose span_id was minted at submit and persisted in the
// journal, so the span emitted at execution time (possibly on another node,
// after crash replay or adoption) matches the identity peers already
// linked against.
func StartSpanWithID(ctx context.Context, cat, name, spanID string, kv ...string) (context.Context, *Span) {
	return startSpan(ctx, cat, name, spanID, true, kv)
}

func startSpan(ctx context.Context, cat, name, spanID string, newTrack bool, kv []string) (context.Context, *Span) {
	t := TracerFrom(ctx)
	if t == nil {
		return ctx, nil
	}
	parent, _ := ctx.Value(spanKey{}).(*Span)
	s := t.span(parent, cat, name, newTrack, kv)
	ctx = context.WithValue(ctx, spanKey{}, s)
	if tc := TraceContextFrom(ctx); tc.TraceID != "" {
		if spanID == "" {
			spanID = NewSpanID()
		}
		if s.args == nil {
			s.args = make(map[string]string, 3)
		}
		s.args["trace_id"] = tc.TraceID
		s.args["span_id"] = spanID
		if tc.SpanID != "" {
			s.args["parent_span_id"] = tc.SpanID
		}
		ctx = WithTraceContext(ctx, TraceContext{TraceID: tc.TraceID, SpanID: spanID})
	}
	return ctx, s
}
