package obs

import (
	"strings"
	"sync"
	"testing"
)

// TestHistogramBucketBoundaries pins the le-inclusive bucket semantics: a
// value equal to an upper bound lands in that bucket, one past it lands in
// the next, and anything beyond the last bound lands in +Inf.
func TestHistogramBucketBoundaries(t *testing.T) {
	h := newHistogram([]float64{0.5, 2, 8})
	for _, v := range []float64{0.25, 0.5, 0.500001, 2, 7.9, 8, 8.1, 100} {
		h.Observe(v)
	}
	// 0.25, 0.5 -> le 0.5 | 0.500001, 2 -> le 2 | 7.9, 8 -> le 8 | 8.1, 100 -> +Inf
	want := []uint64{2, 2, 2, 2}
	got := h.BucketCounts()
	if len(got) != len(want) {
		t.Fatalf("BucketCounts len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("bucket %d count = %d, want %d (counts %v)", i, got[i], want[i], got)
		}
	}
	if h.Count() != 8 {
		t.Errorf("Count = %d, want 8", h.Count())
	}
	if h.Sum() != 0.25+0.5+0.500001+2+7.9+8+8.1+100 {
		t.Errorf("Sum = %v", h.Sum())
	}
}

// TestHistogramDefaultBuckets: nil bucket list means DefLatencyBuckets.
func TestHistogramDefaultBuckets(t *testing.T) {
	h := newHistogram(nil)
	if got, want := len(h.BucketCounts()), len(DefLatencyBuckets)+1; got != want {
		t.Fatalf("default histogram has %d buckets, want %d", got, want)
	}
}

// TestWritePrometheusGolden pins the exposition format byte for byte:
// families sorted by name, canonical sorted label blocks, cumulative
// histogram buckets with merged le labels, _sum and _count.
func TestWritePrometheusGolden(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("test_requests_total", "Requests.", "method", "GET", "code", "200").Add(3)
	reg.Gauge("test_temp", "Temp.").Set(1.5)
	h := reg.Histogram("test_lat", "Lat.", []float64{0.5, 2})
	for _, v := range []float64{0.25, 0.5, 1, 4} {
		h.Observe(v)
	}
	reg.CounterFunc("test_fn", "Fn.", func() float64 { return 7 })
	hl := reg.Histogram("test_labeled_lat", "Labeled lat.", []float64{1}, "op", "put")
	hl.Observe(0.5)

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# HELP test_fn Fn.
# TYPE test_fn counter
test_fn 7
# HELP test_labeled_lat Labeled lat.
# TYPE test_labeled_lat histogram
test_labeled_lat_bucket{op="put",le="1"} 1
test_labeled_lat_bucket{op="put",le="+Inf"} 1
test_labeled_lat_sum{op="put"} 0.5
test_labeled_lat_count{op="put"} 1
# HELP test_lat Lat.
# TYPE test_lat histogram
test_lat_bucket{le="0.5"} 2
test_lat_bucket{le="2"} 3
test_lat_bucket{le="+Inf"} 4
test_lat_sum 5.75
test_lat_count 4
# HELP test_requests_total Requests.
# TYPE test_requests_total counter
test_requests_total{code="200",method="GET"} 3
# HELP test_temp Temp.
# TYPE test_temp gauge
test_temp 1.5
`
	if got := sb.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestLabelEscaping: backslash, quote and newline in label values are
// escaped per the exposition format.
func TestLabelEscaping(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("test_esc_total", "", "path", "a\\b\"c\nd").Inc()
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `test_esc_total{path="a\\b\"c\nd"} 1`
	if !strings.Contains(sb.String(), want) {
		t.Errorf("exposition %q does not contain %q", sb.String(), want)
	}
}

// TestGetOrCreateIdempotent: the same (name, labels) always answers the
// same instrument, and distinct label sets are distinct series.
func TestGetOrCreateIdempotent(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("test_idem_total", "h", "k", "v")
	b := reg.Counter("test_idem_total", "h", "k", "v")
	if a != b {
		t.Error("same name+labels returned different counters")
	}
	c := reg.Counter("test_idem_total", "h", "k", "other")
	if c == a {
		t.Error("different labels returned the same counter")
	}
	a.Inc()
	if b.Value() != 1 || c.Value() != 0 {
		t.Errorf("values = %d, %d; want 1, 0", b.Value(), c.Value())
	}
}

// TestTypeMismatchPanics: re-registering a name under a different metric
// type is a programmer error and must fail loudly.
func TestTypeMismatchPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("test_mismatch", "")
	defer func() {
		if recover() == nil {
			t.Error("gauge over an existing counter name did not panic")
		}
	}()
	reg.Gauge("test_mismatch", "")
}

// TestNilRegistry: a nil *Registry hands out working instruments and writes
// nothing, so instrumented code needs no branches.
func TestNilRegistry(t *testing.T) {
	var reg *Registry
	c := reg.Counter("x", "")
	c.Inc()
	if c.Value() != 1 {
		t.Errorf("nil-registry counter = %d, want 1", c.Value())
	}
	g := reg.Gauge("x", "")
	g.Set(2)
	if g.Value() != 2 {
		t.Errorf("nil-registry gauge = %v, want 2", g.Value())
	}
	h := reg.Histogram("x", "", nil)
	h.Observe(1)
	if h.Count() != 1 {
		t.Errorf("nil-registry histogram count = %d, want 1", h.Count())
	}
	reg.CounterFunc("x", "", func() float64 { return 0 })
	reg.GaugeFunc("x", "", func() float64 { return 0 })
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil || sb.Len() != 0 {
		t.Errorf("nil-registry exposition = %q, %v; want empty, nil", sb.String(), err)
	}
}

// TestConcurrentInstruments exercises the lock-free update paths under the
// race detector.
func TestConcurrentInstruments(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("test_conc_total", "")
	g := reg.Gauge("test_conc_gauge", "")
	h := reg.Histogram("test_conc_lat", "", []float64{1})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(0.5)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 || g.Value() != 8000 || h.Count() != 8000 {
		t.Errorf("counter=%d gauge=%v hist=%d, want 8000 each", c.Value(), g.Value(), h.Count())
	}
	if h.Sum() != 4000 {
		t.Errorf("hist sum = %v, want 4000", h.Sum())
	}
}
