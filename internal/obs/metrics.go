// Package obs is the zero-dependency observability core shared by the
// experiment CLI (gpsbench) and the daemon (gpsd): a lock-cheap metrics
// registry with Prometheus text exposition, structured-logging helpers over
// log/slog, and a span tracer that writes Chrome trace-event JSON loadable
// in Perfetto.
//
// Everything is designed to be free when off: metric updates are single
// atomic operations, spans cost one context lookup and a nil check when no
// tracer is installed, and a nil *Registry hands out fully functional (but
// unexported) instruments so call sites never branch.
package obs

import (
	"fmt"
	"math"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing integer metric. All methods are
// safe for concurrent use and lock-free.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a float64 metric that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add shifts the gauge by delta.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed buckets. Buckets are upper
// bounds (inclusive, Prometheus "le" semantics); an implicit +Inf bucket
// catches the rest. Observe is a bucket scan plus three atomic operations.
type Histogram struct {
	uppers  []float64       // sorted upper bounds, exclusive of +Inf
	counts  []atomic.Uint64 // len(uppers)+1; last is the +Inf bucket
	sumBits atomic.Uint64
	count   atomic.Uint64
}

// DefLatencyBuckets is the default latency histogram layout (seconds),
// spanning sub-millisecond HTTP handling to multi-minute simulation jobs.
var DefLatencyBuckets = []float64{
	0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120, 300,
}

func newHistogram(buckets []float64) *Histogram {
	if len(buckets) == 0 {
		buckets = DefLatencyBuckets
	}
	uppers := append([]float64(nil), buckets...)
	sort.Float64s(uppers)
	for i := 1; i < len(uppers); i++ {
		if uppers[i] == uppers[i-1] {
			panic(fmt.Sprintf("obs: duplicate histogram bucket %v", uppers[i]))
		}
	}
	return &Histogram{uppers: uppers, counts: make([]atomic.Uint64, len(uppers)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.uppers, v) // first upper >= v: le is inclusive
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// BucketCounts returns the non-cumulative per-bucket counts; the last entry
// is the +Inf bucket. The snapshot is not atomic across buckets.
func (h *Histogram) BucketCounts() []uint64 {
	out := make([]uint64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) from the bucket counts by
// linear interpolation within the landing bucket, Prometheus
// histogram_quantile-style. With no observations it returns 0; ranks
// landing in the +Inf bucket return the highest finite bound.
func (h *Histogram) Quantile(q float64) float64 {
	counts := h.BucketCounts()
	var total uint64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum float64
	for i, c := range counts {
		cum += float64(c)
		if cum < rank || c == 0 {
			continue
		}
		if i >= len(h.uppers) { // +Inf bucket
			if len(h.uppers) == 0 {
				return 0
			}
			return h.uppers[len(h.uppers)-1]
		}
		lower := 0.0
		if i > 0 {
			lower = h.uppers[i-1]
		}
		frac := (rank - (cum - float64(c))) / float64(c)
		return lower + (h.uppers[i]-lower)*frac
	}
	if len(h.uppers) == 0 {
		return 0
	}
	return h.uppers[len(h.uppers)-1]
}

// HistSummary is a JSON-friendly snapshot of a histogram for the federation
// endpoint and `gpsctl top`: count, sum and interpolated percentiles.
type HistSummary struct {
	Count uint64  `json:"count"`
	Sum   float64 `json:"sum"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
}

// Summary snapshots the histogram. The snapshot is not atomic across
// buckets; it is for operator dashboards, not invariants.
func (h *Histogram) Summary() HistSummary {
	return HistSummary{
		Count: h.Count(),
		Sum:   h.Sum(),
		P50:   h.Quantile(0.50),
		P90:   h.Quantile(0.90),
		P99:   h.Quantile(0.99),
	}
}

// metric type names used in TYPE lines and for mismatch checks.
const (
	typeCounter   = "counter"
	typeGauge     = "gauge"
	typeHistogram = "histogram"
)

// series is one labeled instance of a family: exactly one of the value
// fields is set. fn-backed series are sampled at exposition time, which is
// how the registry absorbs counters that already live elsewhere (the
// service's atomics, the runner's cache stats) without double bookkeeping.
type series struct {
	labels  string // rendered {k="v",...} block, "" when unlabeled
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	fn      func() float64
}

// family is one metric name: its help/type header plus every label series.
type family struct {
	name, help, typ string
	series          map[string]*series
}

// Registry is a set of named metric families. Get-or-create lookups take
// the registry mutex; the returned instruments are lock-free, so steady
// state code paths hold instrument pointers and never touch the lock.
// A nil *Registry is valid: it hands out working, unregistered instruments
// and exposes nothing, so instrumentation is free to leave in place.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// labelBlock renders alternating key/value pairs as a canonical label
// block, sorted by key so the same set always produces the same series.
func labelBlock(kv []string) string {
	if len(kv) == 0 {
		return ""
	}
	if len(kv)%2 != 0 {
		panic("obs: odd label key/value list")
	}
	type pair struct{ k, v string }
	pairs := make([]pair, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		pairs = append(pairs, pair{kv[i], kv[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	out := "{"
	for i, p := range pairs {
		if i > 0 {
			out += ","
		}
		out += p.k + `="` + escapeLabel(p.v) + `"`
	}
	return out + "}"
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	out := make([]byte, 0, len(v))
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\':
			out = append(out, '\\', '\\')
		case '"':
			out = append(out, '\\', '"')
		case '\n':
			out = append(out, '\\', 'n')
		default:
			out = append(out, v[i])
		}
	}
	return string(out)
}

// get returns the series for (name, labels), creating family and series via
// make on first use. Type mismatches on an existing family panic: they are
// programmer errors, not runtime conditions.
func (r *Registry) get(name, help, typ string, kv []string, make func() *series) *series {
	labels := labelBlock(kv)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ, series: map[string]*series{}}
		r.families[name] = f
	} else if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %q registered as %s, requested as %s", name, f.typ, typ))
	}
	s := f.series[labels]
	if s == nil {
		s = make()
		s.labels = labels
		f.series[labels] = s
	}
	return s
}

// Counter returns the counter named name with the given label key/value
// pairs, creating it on first use. On a nil registry it returns a working
// unregistered counter.
func (r *Registry) Counter(name, help string, kv ...string) *Counter {
	if r == nil {
		return &Counter{}
	}
	s := r.get(name, help, typeCounter, kv, func() *series { return &series{counter: &Counter{}} })
	if s.counter == nil {
		panic(fmt.Sprintf("obs: metric %q series is not a plain counter", name))
	}
	return s.counter
}

// Gauge returns the gauge named name, creating it on first use.
func (r *Registry) Gauge(name, help string, kv ...string) *Gauge {
	if r == nil {
		return &Gauge{}
	}
	s := r.get(name, help, typeGauge, kv, func() *series { return &series{gauge: &Gauge{}} })
	if s.gauge == nil {
		panic(fmt.Sprintf("obs: metric %q series is not a plain gauge", name))
	}
	return s.gauge
}

// Histogram returns the histogram named name with the given bucket upper
// bounds (nil means DefLatencyBuckets), creating it on first use.
func (r *Registry) Histogram(name, help string, buckets []float64, kv ...string) *Histogram {
	if r == nil {
		return newHistogram(buckets)
	}
	s := r.get(name, help, typeHistogram, kv, func() *series { return &series{hist: newHistogram(buckets)} })
	return s.hist
}

// CounterFunc registers a counter whose value is sampled from fn at
// exposition time — the bridge for counters that already live elsewhere.
func (r *Registry) CounterFunc(name, help string, fn func() float64, kv ...string) {
	if r == nil {
		return
	}
	r.get(name, help, typeCounter, kv, func() *series { return &series{fn: fn} })
}

// GaugeFunc registers a gauge sampled from fn at exposition time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, kv ...string) {
	if r == nil {
		return
	}
	r.get(name, help, typeGauge, kv, func() *series { return &series{fn: fn} })
}

// Handler serves the registry in Prometheus text exposition format.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w) //nolint:errcheck // client gone; nothing to do
	})
}
