package obs

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
)

// Cluster trace validation. One job that hops nodes (submit forwarding,
// work stealing, successor adoption) leaves a span fragment in every
// involved node's trace file, all sharing a trace_id and linked by
// span_id/parent_span_id args. ValidateClusterTraces checks that the
// fragments knit back into connected trees; MergeTraces renders them as a
// single Perfetto-loadable timeline with one process track per node.
//
// Cross-file checks are identity-based, not time-based: each tracer's
// clock is relative to its own start, so wall-time containment is only
// enforced within a file (by ValidateTrace). Duplicate span_ids across
// files are legal — an adopted or replayed job re-emits its job span under
// the original identity on the surviving node.

// ClusterTrace summarizes one trace_id group across files.
type ClusterTrace struct {
	TraceID string
	Spans   int
	Roots   int      // spans with no parent_span_id
	Nodes   []string // distinct node names, sorted
	Files   []string // distinct source files, sorted
}

// CrossNode reports whether the trace has spans from 2+ distinct nodes.
func (ct *ClusterTrace) CrossNode() bool { return len(ct.Nodes) >= 2 }

// ClusterSummary is what ValidateClusterTraces learned.
type ClusterSummary struct {
	Files     int
	Spans     int // spans carrying trace identity
	Traces    []ClusterTrace
	CrossNode int // traces spanning 2+ nodes
}

type clusterSpan struct {
	traceID, spanID, parentID string
	node, file, cat, name     string
}

// ValidateClusterTraces validates each per-node trace file structurally
// (ValidateTrace), then groups identity-carrying spans by trace_id and
// verifies every parent_span_id resolves to a span_id within its trace —
// across files — and that every trace has at least one root span.
func ValidateClusterTraces(files map[string][]byte) (*ClusterSummary, error) {
	names := make([]string, 0, len(files))
	for name := range files {
		names = append(names, name)
	}
	sort.Strings(names)

	var spans []clusterSpan
	for _, name := range names {
		if _, err := ValidateTrace(files[name]); err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		fs, err := fileSpans(name, files[name])
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		spans = append(spans, fs...)
	}

	byTrace := map[string][]clusterSpan{}
	for _, s := range spans {
		byTrace[s.traceID] = append(byTrace[s.traceID], s)
	}
	ids := make([]string, 0, len(byTrace))
	for id := range byTrace {
		ids = append(ids, id)
	}
	sort.Strings(ids)

	sum := &ClusterSummary{Files: len(files), Spans: len(spans)}
	for _, id := range ids {
		group := byTrace[id]
		known := map[string]bool{}
		for _, s := range group {
			if s.spanID != "" {
				known[s.spanID] = true
			}
		}
		ct := ClusterTrace{TraceID: id, Spans: len(group)}
		nodes, filesSeen := map[string]bool{}, map[string]bool{}
		for _, s := range group {
			nodes[s.node] = true
			filesSeen[s.file] = true
			switch {
			case s.parentID == "":
				ct.Roots++
			case !known[s.parentID]:
				return nil, fmt.Errorf("trace %s: span %q (%s, %s) has parent_span_id %s not found in any file",
					id, s.name, s.spanID, s.file, s.parentID)
			}
		}
		if ct.Roots == 0 {
			return nil, fmt.Errorf("trace %s: no root span (every span claims a parent)", id)
		}
		for n := range nodes {
			ct.Nodes = append(ct.Nodes, n)
		}
		for f := range filesSeen {
			ct.Files = append(ct.Files, f)
		}
		sort.Strings(ct.Nodes)
		sort.Strings(ct.Files)
		if ct.CrossNode() {
			sum.CrossNode++
		}
		sum.Traces = append(sum.Traces, ct)
	}
	return sum, nil
}

// fileSpans extracts the identity-carrying spans (B events with a trace_id
// arg) of one file, tagged with the file's node name from process_name
// metadata (falling back to the file key).
func fileSpans(file string, data []byte) ([]clusterSpan, error) {
	var events []event
	if err := json.Unmarshal(data, &events); err != nil {
		return nil, err
	}
	node := file
	for i := range events {
		if events[i].Ph == "M" && events[i].Name == "process_name" {
			if n := events[i].Args["name"]; n != "" {
				node = n
			}
			break
		}
	}
	var spans []clusterSpan
	for i := range events {
		e := &events[i]
		if e.Ph != "B" || e.Args["trace_id"] == "" {
			continue
		}
		spans = append(spans, clusterSpan{
			traceID:  e.Args["trace_id"],
			spanID:   e.Args["span_id"],
			parentID: e.Args["parent_span_id"],
			node:     node, file: file, cat: e.Cat, name: e.Name,
		})
	}
	return spans, nil
}

// MergeTraces concatenates per-node trace files into one Chrome trace-event
// array. Each file keeps (or is assigned) a distinct pid so nodes render as
// separate process tracks, and files carrying trace_start metadata are
// shifted onto a common wall-clock axis so cross-node spans line up.
func MergeTraces(files map[string][]byte) ([]byte, error) {
	names := make([]string, 0, len(files))
	for name := range files {
		names = append(names, name)
	}
	sort.Strings(names)

	type parsed struct {
		name   string
		events []event
		epoch  int64 // unix microseconds from trace_start meta, 0 if absent
	}
	var (
		ps       []parsed
		minEpoch int64
	)
	for _, name := range names {
		var events []event
		if err := json.Unmarshal(files[name], &events); err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		p := parsed{name: name, events: events}
		for i := range events {
			if events[i].Ph == "M" && events[i].Name == "trace_start" {
				p.epoch, _ = strconv.ParseInt(events[i].Args["unix_us"], 10, 64)
				break
			}
		}
		if p.epoch > 0 && (minEpoch == 0 || p.epoch < minEpoch) {
			minEpoch = p.epoch
		}
		ps = append(ps, p)
	}

	// Detect pid collisions (files written without SetProcess all use pid
	// 1); colliding files get a synthetic per-file pid instead.
	used := map[int]int{} // pid -> file count
	for _, p := range ps {
		seen := map[int]bool{}
		for i := range p.events {
			if pid := p.events[i].Pid; !seen[pid] {
				seen[pid] = true
				used[pid]++
			}
		}
	}
	var merged []event
	for fi, p := range ps {
		shift := 0.0
		if p.epoch > 0 && minEpoch > 0 {
			shift = float64(p.epoch - minEpoch) // µs
		}
		remap := map[int]int{}
		for i := range p.events {
			e := p.events[i]
			if used[e.Pid] > 1 {
				if _, ok := remap[e.Pid]; !ok {
					remap[e.Pid] = 1_000_000 + fi + 1
				}
				e.Pid = remap[e.Pid]
				if e.Ph == "M" && e.Name == "process_name" {
					e.Args = map[string]string{"name": p.name}
				}
			}
			if e.Ph != "M" {
				e.Ts += shift
			}
			merged = append(merged, e)
		}
	}
	out, err := json.MarshalIndent(merged, "", " ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}
