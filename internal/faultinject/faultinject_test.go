package faultinject

import (
	"errors"
	"testing"
	"time"

	"gps/internal/retry"
)

func TestOrdinalRuleFiresOnce(t *testing.T) {
	in := New(1, Rule{Site: "runner.cell", Kind: KindError, Ordinal: 3})
	var errs []error
	for i := 0; i < 6; i++ {
		errs = append(errs, in.Hit("runner.cell"))
	}
	for i, err := range errs {
		if (i == 2) != (err != nil) {
			t.Fatalf("hit %d: err=%v, want fault only on hit 3", i+1, err)
		}
	}
	var fe *Error
	if !errors.As(errs[2], &fe) || fe.Site != "runner.cell" || fe.Hit != 3 {
		t.Fatalf("injected error = %#v", errs[2])
	}
	if !retry.Retryable(errs[2]) {
		t.Error("injected faults must classify as retryable")
	}
	if in.Hits("runner.cell") != 6 || in.Fired("runner.cell") != 1 {
		t.Errorf("hits/fired = %d/%d, want 6/1", in.Hits("runner.cell"), in.Fired("runner.cell"))
	}
}

func TestSitesAreIndependent(t *testing.T) {
	in := New(1, Rule{Site: "a", Kind: KindError, Ordinal: 1})
	if err := in.Hit("b"); err != nil {
		t.Fatalf("unmatched site injected: %v", err)
	}
	if err := in.Hit("a"); err == nil {
		t.Fatal("matched site did not inject")
	}
}

func TestPanicRule(t *testing.T) {
	in := New(1, Rule{Site: "s", Kind: KindPanic, Ordinal: 1})
	defer func() {
		p := recover()
		if p == nil {
			t.Fatal("no panic injected")
		}
		err, ok := p.(error)
		if !ok || !retry.Retryable(err) {
			t.Fatalf("panic value %#v, want a retryable error", p)
		}
	}()
	in.Hit("s") //nolint:errcheck // panics
}

func TestProbabilisticRuleIsSeedDeterministic(t *testing.T) {
	schedule := func(seed int64) []bool {
		in := New(seed, Rule{Site: "s", Kind: KindError, Probability: 0.3})
		out := make([]bool, 50)
		for i := range out {
			out[i] = in.Hit("s") != nil
		}
		return out
	}
	a, b := schedule(42), schedule(42)
	fires := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at hit %d", i)
		}
		if a[i] {
			fires++
		}
	}
	if fires == 0 || fires == len(a) {
		t.Fatalf("p=0.3 fired %d/%d times", fires, len(a))
	}
}

func TestCountBoundsProbabilisticRule(t *testing.T) {
	in := New(3, Rule{Site: "s", Kind: KindError, Probability: 1, Count: 2})
	fires := 0
	for i := 0; i < 10; i++ {
		if in.Hit("s") != nil {
			fires++
		}
	}
	if fires != 2 {
		t.Fatalf("fired %d times, want Count=2", fires)
	}
}

func TestDelayRule(t *testing.T) {
	in := New(1, Rule{Site: "s", Kind: KindDelay, Ordinal: 2, Delay: 5 * time.Second})
	var slept []time.Duration
	in.SetSleep(func(d time.Duration) { slept = append(slept, d) })
	for i := 0; i < 3; i++ {
		if err := in.Hit("s"); err != nil {
			t.Fatalf("delay rule returned error: %v", err)
		}
	}
	if len(slept) != 1 || slept[0] != 5*time.Second {
		t.Fatalf("sleeps = %v, want one 5s delay on hit 2", slept)
	}
}
