// Package faultinject is a deterministic, seeded fault injector for chaos
// tests. Production code threads an optional Hook through its hot paths and
// pays exactly one nil-check per guarded site; tests install an Injector
// scripted to fail, panic, or delay specific hits of specific sites — "fail
// the 3rd cell issued", "panic service dispatch with probability 0.1" — and
// the same seed reproduces the same fault schedule every run.
//
// Sites currently wired in the tree:
//
//	runner.cell        internal/experiments: one matrix-cell execution
//	service.dispatch   internal/service: worker picks up a job attempt
//	service.cache.put  internal/service: result-cache commit of a done job
package faultinject

import (
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// Hook is the seam production code calls at a named site. A nil Hook means
// no injection; implementations may return an error (injected failure),
// panic (injected crash), or sleep (injected delay) before returning nil.
type Hook interface {
	Hit(site string) error
}

// Kind selects what a matching rule does to the hit.
type Kind int

const (
	// KindError makes Hit return an *Error.
	KindError Kind = iota
	// KindPanic makes Hit panic with an *Error value, exercising the
	// caller's recover fences. The injected panic value is an error that
	// reports Retryable() == true, so fenced-and-classified paths treat it
	// like a transient fault.
	KindPanic
	// KindDelay makes Hit sleep for Rule.Delay, then continue matching.
	KindDelay
)

func (k Kind) String() string {
	switch k {
	case KindError:
		return "error"
	case KindPanic:
		return "panic"
	case KindDelay:
		return "delay"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Rule scripts one fault. Targeting is by exact site name plus either an
// ordinal ("the Nth hit of this site") or a probability per hit; Count
// bounds how many times the rule fires (0 = once for ordinal rules,
// unlimited for probabilistic ones).
type Rule struct {
	Site        string        // exact site name; "" matches every site
	Kind        Kind          // what to do on a match
	Ordinal     uint64        // fire on the Nth hit of Site (1-based); 0 = use Probability
	Probability float64       // chance per hit in [0,1]; used when Ordinal == 0
	Count       int           // max fires; 0 = 1 for ordinal rules, unlimited otherwise
	Delay       time.Duration // sleep length for KindDelay
}

type ruleState struct {
	Rule
	fired int
}

// Injector is a seeded Hook. The zero value is not usable; call New. All
// methods are safe for concurrent use, and the sequence of injected faults
// is a deterministic function of (seed, rules, site hit order).
type Injector struct {
	mu    sync.Mutex
	rng   *rand.Rand
	rules []*ruleState
	hits  map[string]uint64
	fired map[string]uint64
	sleep func(time.Duration) // injectable for tests; defaults to time.Sleep
}

// New builds an injector with the given seed and fault schedule.
func New(seed int64, rules ...Rule) *Injector {
	in := &Injector{
		rng:   rand.New(rand.NewSource(seed)),
		hits:  map[string]uint64{},
		fired: map[string]uint64{},
		sleep: time.Sleep,
	}
	for _, r := range rules {
		rc := r
		in.rules = append(in.rules, &ruleState{Rule: rc})
	}
	return in
}

// SetSleep overrides the delay function (tests use it to avoid real sleeps).
func (in *Injector) SetSleep(fn func(time.Duration)) {
	in.mu.Lock()
	in.sleep = fn
	in.mu.Unlock()
}

// Error is the injected failure value. It flows through the production
// error paths like any other error and classifies itself as retryable, so
// retry layers treat injected faults as transient.
type Error struct {
	Site string
	Hit  uint64 // which hit of the site fired the rule (1-based)
	Kind Kind
}

func (e *Error) Error() string {
	return fmt.Sprintf("faultinject: injected %s at %s (hit %d)", e.Kind, e.Site, e.Hit)
}

// Retryable marks injected faults as transient for retry classification.
func (e *Error) Retryable() bool { return true }

// Hit implements Hook: it counts the hit, applies every matching delay
// rule, and fires the first matching error/panic rule.
func (in *Injector) Hit(site string) error {
	in.mu.Lock()
	in.hits[site]++
	n := in.hits[site]

	var sleeps []time.Duration
	var fire *ruleState
	for _, r := range in.rules {
		if r.Site != "" && r.Site != site {
			continue
		}
		if !r.matchLocked(n, in.rng) {
			continue
		}
		if r.Kind == KindDelay {
			r.fired++
			sleeps = append(sleeps, r.Delay)
			continue
		}
		if fire == nil {
			r.fired++
			fire = r
		}
	}
	sleep := in.sleep
	if fire != nil {
		in.fired[site]++
	}
	in.mu.Unlock()

	for _, d := range sleeps {
		sleep(d)
	}
	if fire == nil {
		return nil
	}
	err := &Error{Site: site, Hit: n, Kind: fire.Kind}
	if fire.Kind == KindPanic {
		panic(err)
	}
	return err
}

// matchLocked reports whether the rule fires on the n-th hit. Callers hold
// in.mu.
func (r *ruleState) matchLocked(n uint64, rng *rand.Rand) bool {
	max := r.Count
	if max == 0 && r.Ordinal > 0 {
		max = 1
	}
	if max > 0 && r.fired >= max {
		return false
	}
	if r.Ordinal > 0 {
		return n == r.Ordinal
	}
	return r.Probability > 0 && rng.Float64() < r.Probability
}

// Hits returns how many times the site was reached (fired or not).
func (in *Injector) Hits(site string) uint64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.hits[site]
}

// Fired returns how many error/panic faults the site has injected.
func (in *Injector) Fired(site string) uint64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.fired[site]
}
