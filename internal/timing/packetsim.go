package timing

import (
	"math"

	"gps/internal/interconnect"
	"gps/internal/sim"
)

// PacketSim is the high-fidelity alternative to the fluid max-min model:
// transfers are chopped into packets that traverse their path's links
// store-and-forward, one packet occupying one link at a time, scheduled on
// the discrete-event core. It exists to cross-validate solveWindow — for
// bandwidth-bound transfer sets the two models must agree closely, while
// for tiny transfers the packet model exposes per-hop latency the fluid
// model rounds away. (Building trust in a fast model against a slower,
// more literal one is the methodology of the simulator papers this work
// builds on.)
type PacketSim struct {
	eng         *sim.Engine
	fab         *interconnect.Fabric
	packetBytes float64
	linkFreeAt  map[interconnect.LinkID]sim.Time
}

// Transfer is one src->dst flow to simulate.
type Transfer struct {
	Src, Dst int
	Bytes    float64
	Start    sim.Time
	// Finish is the simulated completion time (output).
	Finish sim.Time
}

// NewPacketSim builds a packet simulator over fab with the given packet
// size (0 means 4 KB, a typical interconnect max payload).
func NewPacketSim(fab *interconnect.Fabric, packetBytes float64) *PacketSim {
	if packetBytes <= 0 {
		packetBytes = 4 << 10
	}
	return &PacketSim{
		eng:         sim.NewEngine(),
		fab:         fab,
		packetBytes: packetBytes,
		linkFreeAt:  map[interconnect.LinkID]sim.Time{},
	}
}

// Run simulates all transfers and fills in their Finish times, returning
// the time the last one completed.
func (ps *PacketSim) Run(transfers []*Transfer) sim.Time {
	ps.eng.Reset()
	for k := range ps.linkFreeAt {
		delete(ps.linkFreeAt, k)
	}
	for _, tr := range transfers {
		tr := tr
		if tr.Bytes <= 0 || tr.Src == tr.Dst || ps.fab.Ideal() {
			tr.Finish = tr.Start
			continue
		}
		ps.eng.Schedule(tr.Start, func() { ps.inject(tr) })
	}
	end := ps.eng.Run()
	return end
}

// inject launches a transfer's packets at its source. Injection is
// self-paced: packet p+1 is offered to the first link only once packet p
// has finished serializing there, so concurrent transfers interleave at
// packet granularity (approximating the fair sharing real link arbiters
// provide) instead of convoying whole transfers.
func (ps *PacketSim) inject(tr *Transfer) {
	path := ps.fab.Path(tr.Src, tr.Dst)
	packets := int(math.Ceil(tr.Bytes / ps.packetBytes))
	remaining := packets
	done := func() {
		remaining--
		if remaining == 0 {
			tr.Finish = ps.eng.Now()
		}
	}
	var send func(p int)
	send = func(p int) {
		bytes := ps.packetBytes
		if p == packets-1 {
			bytes = tr.Bytes - float64(packets-1)*ps.packetBytes
		}
		freeAgain := ps.book(tr, path, 0, bytes, ps.eng.Now(), done)
		if p+1 < packets {
			ps.eng.Schedule(freeAgain, func() { send(p + 1) })
		}
	}
	send(0)
}

// book reserves path[idx] for one packet as soon as the link frees,
// schedules the downstream hops, and returns the time the first link frees
// again (the moment the next packet of the same transfer may be offered).
func (ps *PacketSim) book(tr *Transfer, path []interconnect.LinkID, idx int,
	bytes float64, ready sim.Time, done func()) sim.Time {
	if idx == len(path) {
		if ps.eng.Now() >= ready {
			done()
		} else {
			ps.eng.Schedule(ready, done)
		}
		return ready
	}
	id := path[idx]
	link := ps.fab.Link(id)
	depart := ready
	if free := ps.linkFreeAt[id]; free > depart {
		depart = free
	}
	ser := sim.Duration(bytes / link.Bandwidth)
	ps.linkFreeAt[id] = depart + ser
	arrive := depart + ser + sim.Duration(link.Latency)
	ps.eng.Schedule(arrive, func() {
		ps.book(tr, path, idx+1, bytes, arrive, done)
	})
	return depart + ser
}

// solveWindowPacket is the packet-level counterpart of solveWindow: it
// fills each flow's finish time via the store-and-forward simulator, then
// applies the per-flow rate caps (MLP budgets) the packet model does not
// carry natively.
func solveWindowPacket(flows []*flow, fab *interconnect.Fabric, packetBytes float64) float64 {
	transfers := make([]*Transfer, len(flows))
	for i, f := range flows {
		transfers[i] = &Transfer{Src: f.src, Dst: f.dst, Bytes: f.bytes}
	}
	NewPacketSim(fab, packetBytes).Run(transfers)
	end := 0.0
	for i, f := range flows {
		finish := float64(transfers[i].Finish)
		if !math.IsInf(f.cap, 1) && f.cap > 0 {
			if capped := f.bytes / f.cap; capped > finish {
				finish = capped
			}
		}
		f.finish = finish
		if finish > end {
			end = finish
		}
	}
	return end
}

// FluidMakespan prices the same transfer set with the fluid max-min model,
// for cross-validation against the packet simulator.
func FluidMakespan(transfers []*Transfer, fab *interconnect.Fabric) float64 {
	flows := make([]*flow, 0, len(transfers))
	for _, tr := range transfers {
		flows = append(flows, &flow{
			src: tr.Src, dst: tr.Dst, bytes: tr.Bytes, cap: math.Inf(1),
		})
	}
	return solveWindow(flows, fab)
}
