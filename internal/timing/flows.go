// Package timing is the performance half of the simulator: it prices the
// per-phase traffic profiles produced by internal/engine on a machine
// description (internal/gpuconf) and an interconnect fabric
// (internal/interconnect), producing end-to-end execution times.
//
// Within each phase, concurrent transfers contend for links under max-min
// fair sharing solved by progressive filling; kernel compute, local DRAM
// traffic, demand-read stalls, page-fault serialization and barrier-window
// bulk copies compose exactly as the paradigms dictate (overlap for
// proactive GPS pushes, strict serialization for memcpy and faults).
package timing

import (
	"math"

	"gps/internal/interconnect"
)

// flowKind tags what a transfer gates.
type flowKind uint8

const (
	flowDemand flowKind = iota // gates its destination GPU's kernel end
	flowPush                   // gates the phase barrier
	flowBulk                   // barrier-window transfer
)

// flow is one (src GPU -> dst GPU) transfer within a window.
type flow struct {
	kind   flowKind
	src    int
	dst    int
	bytes  float64
	cap    float64 // per-flow rate cap in bytes/s; +Inf if none
	finish float64 // completion time relative to window start (output)
}

// flowState is one active flow during progressive filling.
type flowState struct {
	f         *flow
	remaining float64
	path      []interconnect.LinkID
	rate      float64
	frozen    bool
}

// solveWindow assigns each flow its completion time under progressive
// max-min fair sharing of the fabric's links, respecting per-flow caps.
// All flows start at t=0. Returns the time the last flow finishes.
func solveWindow(flows []*flow, fab *interconnect.Fabric) float64 {
	active := make([]*flowState, 0, len(flows))
	for _, f := range flows {
		if f.bytes <= 0 || f.src == f.dst {
			f.finish = 0
			continue
		}
		st := &flowState{f: f, remaining: f.bytes}
		if !fab.Ideal() {
			st.path = fab.Path(f.src, f.dst)
		}
		active = append(active, st)
	}

	now := 0.0
	for len(active) > 0 {
		assignRates(active, fab)
		dt := math.Inf(1)
		for _, st := range active {
			if st.rate > 0 {
				if t := st.remaining / st.rate; t < dt {
					dt = t
				}
			}
		}
		if math.IsInf(dt, 1) {
			panic("timing: stalled flow set")
		}
		now += dt
		next := active[:0]
		for _, st := range active {
			st.remaining -= st.rate * dt
			if st.remaining <= 1e-3 { // sub-byte residue
				st.f.finish = now
			} else {
				next = append(next, st)
			}
		}
		active = next
	}
	return now
}

// assignRates computes max-min fair rates for the active flows by water
// filling: repeatedly find the most constrained resource (a link's equal
// share or a flow's own cap), freeze the flows it limits, and recurse on
// the remaining capacity.
func assignRates(active []*flowState, fab *interconnect.Fabric) {
	linkRem := map[interconnect.LinkID]float64{}
	linkFlows := map[interconnect.LinkID]int{}
	unfrozen := 0
	for _, st := range active {
		st.frozen = false
		st.rate = 0
		unfrozen++
		for _, l := range st.path {
			if _, ok := linkRem[l]; !ok {
				linkRem[l] = fab.Link(l).Bandwidth
			}
			linkFlows[l]++
		}
	}

	for unfrozen > 0 {
		// Most constrained link share.
		bottleneck := interconnect.LinkID(-1)
		minShare := math.Inf(1)
		for l, n := range linkFlows {
			if n == 0 {
				continue
			}
			if share := linkRem[l] / float64(n); share < minShare {
				minShare, bottleneck = share, l
			}
		}
		// Most constrained flow cap.
		var capFlow *flowState
		minCap := math.Inf(1)
		for _, st := range active {
			if !st.frozen && st.f.cap < minCap {
				minCap, capFlow = st.f.cap, st
			}
		}

		freeze := func(st *flowState, rate float64) {
			st.frozen = true
			st.rate = rate
			unfrozen--
			for _, l := range st.path {
				linkRem[l] -= rate
				if linkRem[l] < 0 {
					linkRem[l] = 0
				}
				linkFlows[l]--
			}
		}

		switch {
		case capFlow != nil && minCap <= minShare:
			freeze(capFlow, minCap)
		case bottleneck >= 0 && !math.IsInf(minShare, 1):
			for _, st := range active {
				if st.frozen {
					continue
				}
				for _, l := range st.path {
					if l == bottleneck {
						freeze(st, minShare)
						break
					}
				}
			}
		default:
			// Remaining flows cross no finite resource (ideal fabric, no
			// cap): they complete instantaneously — model with a huge rate.
			for _, st := range active {
				if !st.frozen {
					freeze(st, 1e30)
				}
			}
		}
	}
}
