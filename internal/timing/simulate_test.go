package timing

import (
	"testing"

	"gps/internal/engine"
	"gps/internal/interconnect"
	"gps/internal/paradigm"
	"gps/internal/trace"
	"gps/internal/workload"
)

func timeApp(t *testing.T, name string, kind paradigm.Kind, gpus int, fab *interconnect.Fabric) float64 {
	t.Helper()
	spec, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	prog := spec.Build(workload.Config{NumGPUs: gpus, Iterations: 2, Scale: 1, Seed: 1})
	m, err := paradigm.New(kind, prog, paradigm.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res := engine.Run(prog, m)
	rep := Simulate(res, DefaultConfig(fab))
	if rep.Total <= 0 || rep.SteadyTotal() <= 0 {
		t.Fatalf("%s/%v: non-positive total time", name, kind)
	}
	return rep.SteadyTotal()
}

func TestSyntheticPhasePricing(t *testing.T) {
	// Hand-built result: one phase, two GPUs, known quantities.
	res := &engine.Result{Meta: trace.Meta{NumGPUs: 2}}
	p0 := engine.NewProfile(0, 2)
	p0.ComputeOps = 4.9e9 // 1 ms at 4.9 TFLOPs effective
	p1 := engine.NewProfile(1, 2)
	p1.ComputeOps = 4.9e9
	p1.Push[0] = 16e6 // 1 ms on PCIe 3.0
	res.Phases = []engine.PhaseRecord{{Index: 0, Profiles: []engine.Profile{p0, p1}}}

	cfg := DefaultConfig(interconnect.PCIeTree(2, interconnect.PCIe3))
	cfg.PhaseOverhead = 0
	rep := Simulate(res, cfg)
	// Push (1 ms) fully overlaps the 1 ms kernels: total ~1 ms.
	if rep.Total < 0.9e-3 || rep.Total > 1.2e-3 {
		t.Fatalf("total = %v, want ~1ms (push hidden under compute)", rep.Total)
	}
	if rep.PushWait > 0.1e-3 {
		t.Fatalf("push wait %v should be ~0", rep.PushWait)
	}

	// Triple the push: now it cannot hide.
	res.Phases[0].Profiles[1].Push[0] = 48e6
	rep = Simulate(res, cfg)
	if rep.Total < 2.8e-3 || rep.Total > 3.3e-3 {
		t.Fatalf("total = %v, want ~3ms (push bound)", rep.Total)
	}
	if rep.PushWait < 1.5e-3 {
		t.Fatalf("push wait %v should dominate", rep.PushWait)
	}
}

func TestBulkSerializesAfterKernels(t *testing.T) {
	res := &engine.Result{Meta: trace.Meta{NumGPUs: 2}}
	p0 := engine.NewProfile(0, 2)
	p0.ComputeOps = 4.9e9
	p0.Bulk[1] = 16e6 // 1 ms bulk after the kernel
	p1 := engine.NewProfile(1, 2)
	res.Phases = []engine.PhaseRecord{{Index: 0, Profiles: []engine.Profile{p0, p1}}}
	cfg := DefaultConfig(interconnect.PCIeTree(2, interconnect.PCIe3))
	cfg.PhaseOverhead = 0
	rep := Simulate(res, cfg)
	if rep.Total < 1.9e-3 || rep.Total > 2.2e-3 {
		t.Fatalf("total = %v, want ~2ms (no overlap for bulk)", rep.Total)
	}
	if rep.BulkTime < 0.9e-3 {
		t.Fatalf("bulk time %v, want ~1ms", rep.BulkTime)
	}
}

func TestFaultsSerialize(t *testing.T) {
	res := &engine.Result{Meta: trace.Meta{NumGPUs: 2}}
	p0 := engine.NewProfile(0, 2)
	p0.Faults = 100
	p1 := engine.NewProfile(1, 2)
	p1.Faults = 50 // faults serialize system-wide through the host driver
	res.Phases = []engine.PhaseRecord{{Index: 0, Profiles: []engine.Profile{p0, p1}}}
	cfg := DefaultConfig(interconnect.PCIeTree(2, interconnect.PCIe3))
	cfg.PhaseOverhead = 0
	want := 150 * cfg.Machine.GPU.PageFaultLatency
	rep := Simulate(res, cfg)
	if rep.Total < want*0.99 || rep.Total > want*1.01 {
		t.Fatalf("total = %v, want ~%v of fault serialization", rep.Total, want)
	}
}

func TestInfiniteFabricElidesTransfers(t *testing.T) {
	res := &engine.Result{Meta: trace.Meta{NumGPUs: 2}}
	p0 := engine.NewProfile(0, 2)
	p0.ComputeOps = 4.9e9
	p0.Push[1] = 1e12
	p0.Bulk[1] = 1e12
	p1 := engine.NewProfile(1, 2)
	res.Phases = []engine.PhaseRecord{{Index: 0, Profiles: []engine.Profile{p0, p1}}}
	cfg := DefaultConfig(interconnect.Infinite(2))
	cfg.PhaseOverhead = 0
	rep := Simulate(res, cfg)
	if rep.Total > 1.1e-3 {
		t.Fatalf("total = %v, transfers should be free on the ideal fabric", rep.Total)
	}
}

func TestGPSBeatsSingleGPUOnJacobi(t *testing.T) {
	fab1 := interconnect.Infinite(1)
	t1 := timeApp(t, "jacobi", paradigm.KindGPS, 1, fab1)
	fab4 := interconnect.PCIeTree(4, interconnect.PCIe4)
	t4 := timeApp(t, "jacobi", paradigm.KindGPS, 4, fab4)
	speedup := t1 / t4
	if speedup < 2.0 {
		t.Fatalf("GPS jacobi 4-GPU speedup = %.2f, want > 2", speedup)
	}
}

func TestParadigmOrderingOnJacobi(t *testing.T) {
	fab := interconnect.PCIeTree(4, interconnect.PCIe4)
	gps := timeApp(t, "jacobi", paradigm.KindGPS, 4, fab)
	um := timeApp(t, "jacobi", paradigm.KindUM, 4, fab)
	mc := timeApp(t, "jacobi", paradigm.KindMemcpy, 4, fab)
	inf := timeApp(t, "jacobi", paradigm.KindInfinite, 4, interconnect.Infinite(4))
	if gps >= um {
		t.Fatalf("GPS (%v) should beat UM (%v)", gps, um)
	}
	if gps >= mc {
		t.Fatalf("GPS (%v) should beat memcpy (%v)", gps, mc)
	}
	if inf > gps {
		t.Fatalf("infinite BW (%v) must lower-bound GPS (%v)", inf, gps)
	}
}

func TestHigherBandwidthNeverHurts(t *testing.T) {
	t3 := timeApp(t, "ct", paradigm.KindGPS, 4, interconnect.PCIeTree(4, interconnect.PCIe3))
	t6 := timeApp(t, "ct", paradigm.KindGPS, 4, interconnect.PCIeTree(4, interconnect.PCIe6))
	if t6 > t3*1.001 {
		t.Fatalf("PCIe6 (%v) slower than PCIe3 (%v)", t6, t3)
	}
}
