package timing

import (
	"math"
	"math/rand"
	"testing"

	"gps/internal/interconnect"
	"gps/internal/sim"
)

func TestPacketSimSingleTransfer(t *testing.T) {
	fab := interconnect.PCIeTree(2, interconnect.PCIe3) // 16 GB/s per link
	ps := NewPacketSim(fab, 64<<10)
	tr := &Transfer{Src: 0, Dst: 1, Bytes: 1.6e9}
	end := ps.Run([]*Transfer{tr})
	// 1.6 GB over a 16 GB/s path: ~0.1 s plus per-packet pipeline latency.
	if float64(end) < 0.1 || float64(end) > 0.11 {
		t.Fatalf("end = %v, want ~0.1s", end)
	}
	if tr.Finish != end {
		t.Fatal("finish not recorded")
	}
}

func TestPacketSimLatencyDominatesSmallTransfers(t *testing.T) {
	fab := interconnect.PCIeTree(2, interconnect.PCIe6)
	ps := NewPacketSim(fab, 4<<10)
	tr := &Transfer{Src: 0, Dst: 1, Bytes: 128} // one cache line
	end := ps.Run([]*Transfer{tr})
	lat := fab.Latency(0, 1)
	if float64(end) < lat {
		t.Fatalf("end %v below the propagation latency %v", end, lat)
	}
	// The fluid model would price this at bytes/bandwidth = ~1 ns: the
	// packet model must be dominated by latency instead.
	if float64(end) < 100*128/128e9 {
		t.Fatal("latency effect missing")
	}
}

func TestPacketSimContentionSerializes(t *testing.T) {
	fab := interconnect.PCIeTree(3, interconnect.PCIe3)
	ps := NewPacketSim(fab, 64<<10)
	// Two transfers share GPU0's egress link: combined bytes serialize there.
	a := &Transfer{Src: 0, Dst: 1, Bytes: 0.8e9}
	b := &Transfer{Src: 0, Dst: 2, Bytes: 0.8e9}
	end := ps.Run([]*Transfer{a, b})
	if float64(end) < 0.099 {
		t.Fatalf("end = %v, want >= ~0.1s (1.6 GB through one 16 GB/s link)", end)
	}
	// Disjoint transfers do not contend.
	ps2 := NewPacketSim(fab, 64<<10)
	c := &Transfer{Src: 1, Dst: 0, Bytes: 0.8e9}
	end2 := ps2.Run([]*Transfer{c})
	if float64(end2) > 0.06 {
		t.Fatalf("single 0.8 GB transfer took %v", end2)
	}
}

func TestPacketSimIdealFabricFree(t *testing.T) {
	ps := NewPacketSim(interconnect.Infinite(4), 4<<10)
	tr := &Transfer{Src: 0, Dst: 1, Bytes: 1e12}
	if end := ps.Run([]*Transfer{tr}); end != 0 {
		t.Fatalf("ideal fabric transfer took %v", end)
	}
}

func TestPacketSimStaggeredStarts(t *testing.T) {
	fab := interconnect.PCIeTree(2, interconnect.PCIe3)
	ps := NewPacketSim(fab, 4<<10)
	tr := &Transfer{Src: 0, Dst: 1, Bytes: 160e6, Start: sim.Time(1.0)}
	end := ps.Run([]*Transfer{tr})
	if float64(end) < 1.01 {
		t.Fatalf("staggered transfer finished at %v, want >= 1.01s", end)
	}
}

// Cross-validation: for bandwidth-bound random transfer sets, the packet
// model and the fluid max-min model agree on the makespan within ~15%.
// (They cannot agree exactly: the fluid model shares links instantaneously,
// the packet model round-robins at packet granularity.)
func TestPacketSimAgreesWithFluidModel(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(4)
		fab := interconnect.PCIeTree(n, interconnect.PCIe4)

		var flows []*flow
		var transfers []*Transfer
		pairs := 1 + rng.Intn(2*n)
		for i := 0; i < pairs; i++ {
			src, dst := rng.Intn(n), rng.Intn(n)
			if src == dst {
				continue
			}
			bytes := float64(16+rng.Intn(128)) * 1e6 // 16-144 MB: bandwidth-bound
			flows = append(flows, &flow{src: src, dst: dst, bytes: bytes, cap: math.Inf(1)})
			transfers = append(transfers, &Transfer{Src: src, Dst: dst, Bytes: bytes})
		}
		if len(flows) == 0 {
			continue
		}
		fluid := solveWindow(flows, fab)
		packet := float64(NewPacketSim(fab, 64<<10).Run(transfers))
		if fluid <= 0 || packet <= 0 {
			t.Fatalf("trial %d: degenerate times %v %v", trial, fluid, packet)
		}
		ratio := packet / fluid
		if ratio < 0.85 || ratio > 1.3 {
			t.Fatalf("trial %d: packet %.4fs vs fluid %.4fs (ratio %.2f)",
				trial, packet, fluid, ratio)
		}
	}
}

func BenchmarkPacketSim(b *testing.B) {
	fab := interconnect.PCIeTree(4, interconnect.PCIe4)
	for i := 0; i < b.N; i++ {
		ps := NewPacketSim(fab, 64<<10)
		var transfers []*Transfer
		for s := 0; s < 4; s++ {
			for d := 0; d < 4; d++ {
				if s != d {
					transfers = append(transfers, &Transfer{Src: s, Dst: d, Bytes: 32e6})
				}
			}
		}
		ps.Run(transfers)
	}
}
