package timing

import (
	"math"
	"sort"

	"gps/internal/engine"
	"gps/internal/gpuconf"
	"gps/internal/interconnect"
	"gps/internal/sim"
)

// Config parameterizes the timing model.
type Config struct {
	Machine gpuconf.Config
	Fabric  *interconnect.Fabric

	// ComputeEfficiency is the fraction of peak arithmetic throughput
	// sustained by kernels (captures issue stalls, divergence, occupancy).
	ComputeEfficiency float64
	// DemandOverlap is the fraction of demand-read stall time the GPU hides
	// under compute via multithreading; the remainder stalls the kernel.
	// The paper: remote loads "often stall thread execution beyond the
	// GPU's ability to mitigate those stalls via multi-threading".
	DemandOverlap float64
	// PhaseOverhead is the fixed serial cost per phase (kernel launches +
	// multi-GPU barrier). It bounds strong scaling even with infinite
	// bandwidth, which is why the paper's upper bound is ~3.2x, not 4x.
	PhaseOverhead float64
	// PageBytes is the translation granularity of the run, used to price
	// TLB pressure: the paper reports GPUs take ~1.4 last-level TLB misses
	// per thousand cycles at 64 KB pages (Section 5.2); smaller pages
	// multiply the miss rate by the page-count ratio. 0 means the machine
	// default.
	PageBytes uint64
	// WalkConcurrency is the number of page walks the MMU services in
	// parallel; it converts the miss rate into stall time.
	WalkConcurrency int
	// UsePacketSim prices transfer windows with the packet-level
	// store-and-forward simulator instead of the fluid max-min model —
	// slower but more literal, for cross-validation.
	UsePacketSim bool
	// PacketBytes is the packet size for UsePacketSim (default 4 KB).
	PacketBytes float64
}

// DefaultConfig returns the calibrated model for the given fabric.
func DefaultConfig(fab *interconnect.Fabric) Config {
	return Config{
		Machine:           gpuconf.Default(),
		Fabric:            fab,
		ComputeEfficiency: 0.35,
		DemandOverlap:     0.4,
		PhaseOverhead:     30e-6,
	}
}

// LinkLoad is the traffic one fabric link carried across the run.
type LinkLoad struct {
	Name  string
	Bytes float64
}

// PhaseTime is the timing outcome of one phase.
type PhaseTime struct {
	Index    int
	Duration float64
	// KernelSpan is the time until the slowest GPU's kernel (plus its
	// demand stalls and fault serialization) completed.
	KernelSpan float64
	// PushDrainSpan is the additional time (beyond KernelSpan) the barrier
	// waited for proactive pushes to drain.
	PushDrainSpan float64
	// BulkSpan is the barrier-window bulk transfer time (memcpy, prefetch).
	BulkSpan float64
}

// Report is the full timing result of one run.
type Report struct {
	// ProfilePhases echoes the trace's profiling-phase count so callers can
	// slice off the warmup (see TotalFrom).
	ProfilePhases int

	Total  float64
	Phases []PhaseTime

	// Aggregate attribution across phases (seconds).
	ComputeBound float64 // phases' kernel spans limited by arithmetic/DRAM
	StallTime    float64 // demand-read stalls beyond overlap + faults
	PushWait     float64 // barrier waits for push drains
	BulkTime     float64 // bulk transfer windows
	Overhead     float64 // fixed per-phase costs

	// LinkTraffic is the total bytes each fabric link carried, descending —
	// the bottleneck analysis of the run.
	LinkTraffic []LinkLoad
}

// Simulate prices the structural result on the configured machine.
func Simulate(res *engine.Result, cfg Config) *Report {
	if cfg.ComputeEfficiency <= 0 {
		cfg.ComputeEfficiency = 0.35
	}
	if cfg.Fabric == nil {
		cfg.Fabric = interconnect.Infinite(res.Meta.NumGPUs)
	}
	if cfg.PageBytes == 0 {
		cfg.PageBytes = cfg.Machine.GPU.PageBytes
	}
	if cfg.WalkConcurrency == 0 {
		cfg.WalkConcurrency = 32
	}
	machine := cfg.Machine.GPU
	flops := machine.PeakFLOPs() * cfg.ComputeEfficiency
	l2Hit := res.Meta.L2.HitRate(res.Meta.NumGPUs)

	rep := &Report{}
	eng := sim.NewEngine()
	linkBytes := map[interconnect.LinkID]float64{}
	account := func(fs []*flow) {
		if cfg.Fabric.Ideal() {
			return
		}
		for _, f := range fs {
			if f.src == f.dst {
				continue
			}
			for _, id := range cfg.Fabric.Path(f.src, f.dst) {
				linkBytes[id] += f.bytes
			}
		}
	}
	solve := func(fs []*flow) float64 {
		account(fs)
		if cfg.UsePacketSim {
			return solveWindowPacket(fs, cfg.Fabric, cfg.PacketBytes)
		}
		return solveWindow(fs, cfg.Fabric)
	}

	for _, ph := range res.Phases {
		var flows []*flow
		demandFinish := make([]float64, len(ph.Profiles))
		kernelWork := make([]float64, len(ph.Profiles))
		serial := make([]float64, len(ph.Profiles))

		for g := range ph.Profiles {
			p := &ph.Profiles[g]
			compute := float64(p.ComputeOps) / flops
			local := float64(p.LocalBytes) * (1 - l2Hit) / machine.DRAMBandwidth
			kernelWork[g] = math.Max(compute, local)
			kernelWork[g] += tlbPressure(kernelWork[g], cfg)
			serial[g] = float64(p.Shootdowns) * machine.TLBShootdown

			demandSrcs := 0
			for _, b := range p.RemoteRead {
				if b > 0 {
					demandSrcs++
				}
			}
			for peer, b := range p.RemoteRead {
				if b == 0 {
					continue
				}
				// Demand reads: data flows peer -> g; the rate is bounded by
				// the GPU's outstanding-request budget over the link latency
				// (latency-bound small reads). The budget is per destination
				// GPU, shared across its source peers.
				lat := cfg.Fabric.Latency(peer, g)
				capRate := math.Inf(1)
				if lat > 0 {
					capRate = float64(machine.RemoteMLP) * float64(machine.CacheBlockBytes) /
						lat / float64(demandSrcs)
				}
				flows = append(flows, &flow{
					kind: flowDemand, src: peer, dst: g,
					bytes: float64(b), cap: capRate,
				})
			}
			for peer, b := range p.Push {
				if b == 0 {
					continue
				}
				flows = append(flows, &flow{
					kind: flowPush, src: g, dst: peer,
					bytes: float64(b), cap: math.Inf(1),
				})
			}
		}

		// Kernel-window flows: demand reads and proactive pushes contend.
		kernelFlows := flows
		solve(kernelFlows)
		for _, f := range kernelFlows {
			if f.kind == flowDemand && f.finish > demandFinish[f.dst] {
				demandFinish[f.dst] = f.finish
			}
		}

		// Per-GPU kernel completion: compute/DRAM work overlaps demand
		// stalls only partially, then faults serialize.
		var pt PhaseTime
		pt.Index = ph.Index
		var pushEnd float64
		for _, f := range kernelFlows {
			if f.kind == flowPush && f.finish > pushEnd {
				pushEnd = f.finish
			}
		}
		for g := range ph.Profiles {
			d := demandFinish[g]
			w := kernelWork[g]
			kernelEnd := math.Max(w, d) + (1-cfg.DemandOverlap)*math.Min(w, d) + serial[g]
			if kernelEnd > pt.KernelSpan {
				pt.KernelSpan = kernelEnd
			}
			rep.StallTime += (1-cfg.DemandOverlap)*math.Min(w, d) + serial[g] + math.Max(0, d-w)
		}
		// Page faults funnel through the host driver's fault handler; their
		// service is serialized system-wide (the first-order UM cost).
		totalFaults := 0
		for g := range ph.Profiles {
			totalFaults += ph.Profiles[g].Faults
		}
		faultSerial := float64(totalFaults) * machine.PageFaultLatency
		pt.KernelSpan += faultSerial
		rep.StallTime += faultSerial
		barrier := math.Max(pt.KernelSpan, pushEnd)
		pt.PushDrainSpan = barrier - pt.KernelSpan

		// Barrier-window bulk transfers (memcpy broadcasts, UM prefetch).
		var bulkFlows []*flow
		for g := range ph.Profiles {
			for peer, b := range ph.Profiles[g].Bulk {
				if b == 0 {
					continue
				}
				bulkFlows = append(bulkFlows, &flow{
					kind: flowBulk, src: g, dst: peer,
					bytes: float64(b), cap: math.Inf(1),
				})
			}
		}
		pt.BulkSpan = solve(bulkFlows)

		pt.Duration = barrier + pt.BulkSpan + cfg.PhaseOverhead

		// Advance the simulated timeline through this phase's milestones.
		eng.After(sim.Duration(pt.Duration), func() {})
		eng.Run()

		rep.Phases = append(rep.Phases, pt)
		rep.ComputeBound += pt.KernelSpan
		rep.PushWait += pt.PushDrainSpan
		rep.BulkTime += pt.BulkSpan
		rep.Overhead += cfg.PhaseOverhead
	}
	rep.Total = float64(eng.Now())
	rep.ProfilePhases = res.Meta.ProfilePhases
	for id, b := range linkBytes {
		rep.LinkTraffic = append(rep.LinkTraffic, LinkLoad{Name: cfg.Fabric.Link(id).Name, Bytes: b})
	}
	sort.Slice(rep.LinkTraffic, func(i, j int) bool {
		if rep.LinkTraffic[i].Bytes != rep.LinkTraffic[j].Bytes {
			return rep.LinkTraffic[i].Bytes > rep.LinkTraffic[j].Bytes
		}
		return rep.LinkTraffic[i].Name < rep.LinkTraffic[j].Name
	})
	return rep
}

// tlbPressure prices last-level TLB misses: at 64 KB pages GPUs sustain
// ~1.4 misses per thousand cycles (the paper's figure); halving the page
// size doubles the pages covering a footprint and hence the miss rate. The
// MMU overlaps WalkConcurrency walks, so only the residue stalls. This term
// is what makes the 4 KB variant of the Section 7.4 page-size study ~40%
// slower while 64 KB and 2 MB walk costs stay negligible.
func tlbPressure(work float64, cfg Config) float64 {
	const missesPerKilocycleAt64K = 1.4
	cycles := work * cfg.Machine.GPU.ClockHz
	scale := float64(64<<10) / float64(cfg.PageBytes)
	walks := missesPerKilocycleAt64K / 1000 * cycles * scale
	return walks * cfg.Machine.GPU.PageWalkLatency / float64(cfg.WalkConcurrency)
}

// TotalFrom returns the summed duration of phases with index >= from: the
// steady-state execution time once warmup (first-touch population, GPS
// profiling) has completed. Long-running iterative applications amortize
// the warmup, so speedup comparisons use the steady state.
func (r *Report) TotalFrom(from int) float64 {
	t := 0.0
	for _, pt := range r.Phases {
		if pt.Index >= from {
			t += pt.Duration
		}
	}
	return t
}

// SteadyTotal is TotalFrom at the trace's own profiling boundary.
func (r *Report) SteadyTotal() float64 { return r.TotalFrom(r.ProfilePhases) }
