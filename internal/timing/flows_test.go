package timing

import (
	"math"
	"testing"

	"gps/internal/interconnect"
)

func TestSolveWindowSingleFlow(t *testing.T) {
	fab := interconnect.PCIeTree(2, interconnect.PCIe3) // 16 GB/s
	f := &flow{kind: flowPush, src: 0, dst: 1, bytes: 16e9, cap: math.Inf(1)}
	end := solveWindow([]*flow{f}, fab)
	if math.Abs(end-1.0) > 1e-6 {
		t.Fatalf("single flow over 16GB/s link took %v, want 1s", end)
	}
	if f.finish != end {
		t.Fatal("finish not recorded")
	}
}

func TestSolveWindowEgressSharing(t *testing.T) {
	// Two flows from GPU0 share its egress link: each gets half.
	fab := interconnect.PCIeTree(3, interconnect.PCIe3)
	f1 := &flow{src: 0, dst: 1, bytes: 16e9, cap: math.Inf(1)}
	f2 := &flow{src: 0, dst: 2, bytes: 16e9, cap: math.Inf(1)}
	end := solveWindow([]*flow{f1, f2}, fab)
	if math.Abs(end-2.0) > 1e-6 {
		t.Fatalf("two flows sharing egress finished at %v, want 2s", end)
	}
}

func TestSolveWindowDisjointFlowsDoNotContend(t *testing.T) {
	fab := interconnect.PCIeTree(4, interconnect.PCIe3)
	f1 := &flow{src: 0, dst: 1, bytes: 16e9, cap: math.Inf(1)}
	f2 := &flow{src: 2, dst: 3, bytes: 16e9, cap: math.Inf(1)}
	end := solveWindow([]*flow{f1, f2}, fab)
	if math.Abs(end-1.0) > 1e-6 {
		t.Fatalf("disjoint flows finished at %v, want 1s", end)
	}
}

func TestSolveWindowUnevenFinishFreesBandwidth(t *testing.T) {
	// Small flow finishes first; big flow then gets the full link.
	fab := interconnect.PCIeTree(3, interconnect.PCIe3)
	small := &flow{src: 0, dst: 1, bytes: 8e9, cap: math.Inf(1)}
	big := &flow{src: 0, dst: 2, bytes: 24e9, cap: math.Inf(1)}
	end := solveWindow([]*flow{small, big}, fab)
	// Phase 1: both at 8 GB/s until small's 8 GB done (t=1). Phase 2: big
	// alone, 16 GB left at 16 GB/s: 1s. Total 2s.
	if math.Abs(small.finish-1.0) > 1e-6 || math.Abs(end-2.0) > 1e-6 {
		t.Fatalf("small %v end %v, want 1s and 2s", small.finish, end)
	}
}

func TestSolveWindowFlowCap(t *testing.T) {
	fab := interconnect.PCIeTree(2, interconnect.PCIe3)
	f := &flow{kind: flowDemand, src: 0, dst: 1, bytes: 8e9, cap: 8e9}
	end := solveWindow([]*flow{f}, fab)
	if math.Abs(end-1.0) > 1e-6 {
		t.Fatalf("capped flow finished at %v, want 1s", end)
	}
	// The cap frees link bandwidth for an uncapped flow sharing the path.
	f1 := &flow{src: 0, dst: 1, bytes: 4e9, cap: 4e9}
	f2 := &flow{src: 0, dst: 1, bytes: 12e9, cap: math.Inf(1)}
	end = solveWindow([]*flow{f1, f2}, fab)
	// f1 runs at 4 GB/s for 1s; f2 gets 12 GB/s then 16 GB/s: 12 GB needs
	// 1s at 12 GB/s: both end at 1s.
	if math.Abs(end-1.0) > 1e-5 {
		t.Fatalf("capped+uncapped finished at %v, want 1s", end)
	}
}

func TestSolveWindowIdealFabric(t *testing.T) {
	fab := interconnect.Infinite(4)
	f := &flow{src: 0, dst: 1, bytes: 1e12, cap: math.Inf(1)}
	end := solveWindow([]*flow{f}, fab)
	if end > 1e-6 {
		t.Fatalf("ideal fabric transfer took %v, want ~0", end)
	}
}

func TestSolveWindowEmptyAndLocal(t *testing.T) {
	fab := interconnect.PCIeTree(2, interconnect.PCIe3)
	if end := solveWindow(nil, fab); end != 0 {
		t.Fatal("empty window should take 0")
	}
	local := &flow{src: 1, dst: 1, bytes: 1e9, cap: math.Inf(1)}
	if end := solveWindow([]*flow{local}, fab); end != 0 {
		t.Fatal("local flow should be free")
	}
}

func TestSolveWindowConservation(t *testing.T) {
	// Total bytes delivered per unit time never exceed total link capacity:
	// with all flows squeezing through one ingress link, finish time >=
	// total/bandwidth.
	fab := interconnect.PCIeTree(4, interconnect.PCIe3)
	var flows []*flow
	total := 0.0
	for src := 1; src < 4; src++ {
		b := float64(src) * 4e9
		total += b
		flows = append(flows, &flow{src: src, dst: 0, bytes: b, cap: math.Inf(1)})
	}
	end := solveWindow(flows, fab)
	lower := total / 16e9
	if end < lower-1e-9 {
		t.Fatalf("finished at %v, below physical bound %v", end, lower)
	}
}
