package timing

import (
	"math"
	"testing"

	"gps/internal/engine"
	"gps/internal/gpuconf"
	"gps/internal/interconnect"
	"gps/internal/paradigm"
	"gps/internal/trace"
	"gps/internal/workload"
)

func onePhaseResult(n int, edit func([]engine.Profile)) *engine.Result {
	profiles := make([]engine.Profile, n)
	for g := 0; g < n; g++ {
		profiles[g] = engine.NewProfile(g, n)
	}
	edit(profiles)
	return &engine.Result{
		Meta:   trace.Meta{NumGPUs: n},
		Phases: []engine.PhaseRecord{{Index: 0, Profiles: profiles}},
	}
}

func TestTLBPressureScalesWithPageSize(t *testing.T) {
	cfg := DefaultConfig(interconnect.Infinite(1))
	cfg.PhaseOverhead = 0
	res := onePhaseResult(1, func(p []engine.Profile) { p[0].ComputeOps = 4.9e9 })

	times := map[uint64]float64{}
	for _, page := range []uint64{4 << 10, 64 << 10, 2 << 20} {
		c := cfg
		c.PageBytes = page
		times[page] = Simulate(res, c).Total
	}
	// Smaller pages mean more TLB misses: strict ordering.
	if !(times[4<<10] > times[64<<10] && times[64<<10] > times[2<<20]) {
		t.Fatalf("page-size ordering violated: %v", times)
	}
	// The paper's ~1.4 misses/kcycle at 64 KB keeps the 64 KB overhead small.
	overhead64 := times[64<<10]/times[2<<20] - 1
	if overhead64 > 0.05 {
		t.Fatalf("64 KB TLB overhead = %.1f%%, should be marginal", overhead64*100)
	}
	// And the 4 KB penalty is on the order the paper reports (~40%).
	slowdown4K := times[4<<10]/times[64<<10] - 1
	if slowdown4K < 0.25 || slowdown4K > 0.6 {
		t.Fatalf("4 KB slowdown = %.1f%%, want ~40%%", slowdown4K*100)
	}
}

func TestTotalFromSlicing(t *testing.T) {
	res := &engine.Result{Meta: trace.Meta{NumGPUs: 1, ProfilePhases: 2}}
	for i := 0; i < 4; i++ {
		p := engine.NewProfile(0, 1)
		p.ComputeOps = 4.9e9 // 1 ms each
		res.Phases = append(res.Phases, engine.PhaseRecord{Index: i, Profiles: []engine.Profile{p}})
	}
	cfg := DefaultConfig(interconnect.Infinite(1))
	cfg.PhaseOverhead = 0
	rep := Simulate(res, cfg)
	if math.Abs(rep.Total-rep.TotalFrom(0)) > 1e-12 {
		t.Fatal("TotalFrom(0) should equal Total")
	}
	if r := rep.SteadyTotal() / rep.Total; math.Abs(r-0.5) > 0.01 {
		t.Fatalf("steady/total = %v, want 0.5 (2 of 4 phases)", r)
	}
	if rep.TotalFrom(4) != 0 {
		t.Fatal("TotalFrom past the end should be 0")
	}
}

func TestDemandOverlapPartialHiding(t *testing.T) {
	// Demand reads equal to compute: with overlap f, the kernel stretches to
	// (2-f) x compute.
	mk := func() *engine.Result {
		return onePhaseResult(2, func(p []engine.Profile) {
			p[0].ComputeOps = 4.9e9   // 1 ms
			p[0].RemoteRead[1] = 32e6 // 1 ms on PCIe4
		})
	}
	cfg := DefaultConfig(interconnect.PCIeTree(2, interconnect.PCIe4))
	cfg.PhaseOverhead = 0
	cfg.Machine.GPU.RemoteMLP = 1 << 20 // disable the latency cap for this test

	cfg.DemandOverlap = 1.0
	full := Simulate(mk(), cfg).Total
	cfg.DemandOverlap = 0.0
	none := Simulate(mk(), cfg).Total
	if full >= none {
		t.Fatalf("full overlap (%v) should beat none (%v)", full, none)
	}
	if math.Abs(none/full-2) > 0.1 {
		t.Fatalf("no-overlap should double the phase: %v vs %v", none, full)
	}
}

func TestMLPCapBindsSmallTransfers(t *testing.T) {
	// A demand flow below the link bandwidth but above the MLP budget is
	// latency-bound.
	res := onePhaseResult(2, func(p []engine.Profile) {
		p[0].RemoteRead[1] = 8e6
	})
	cfg := DefaultConfig(interconnect.PCIeTree(2, interconnect.PCIe6)) // 128 GB/s link
	cfg.PhaseOverhead = 0
	machine := gpuconf.GV100()
	capRate := float64(machine.RemoteMLP) * float64(machine.CacheBlockBytes) / 1.3e-6
	wantMin := 8e6 / capRate
	rep := Simulate(res, cfg)
	if rep.Total < wantMin*0.9 {
		t.Fatalf("total %v beats the MLP-capped bound %v", rep.Total, wantMin)
	}
	if rep.Total < 8e6/128e9*2 {
		t.Fatal("transfer priced at link speed despite the MLP cap")
	}
}

func TestShootdownsCharge(t *testing.T) {
	res := onePhaseResult(1, func(p []engine.Profile) { p[0].Shootdowns = 100 })
	cfg := DefaultConfig(interconnect.Infinite(1))
	cfg.PhaseOverhead = 0
	want := 100 * cfg.Machine.GPU.TLBShootdown
	got := Simulate(res, cfg).Total
	if math.Abs(got-want)/want > 0.05 {
		t.Fatalf("shootdown time = %v, want ~%v", got, want)
	}
}

func TestPushSharesFabricWithDemand(t *testing.T) {
	// A demand flow and a push flow into the same ingress link contend: the
	// demand completion must be later than it would be alone.
	alone := onePhaseResult(3, func(p []engine.Profile) {
		p[0].RemoteRead[1] = 16e6
	})
	contended := onePhaseResult(3, func(p []engine.Profile) {
		p[0].RemoteRead[1] = 16e6
		p[2].Push[0] = 64e6 // GPU2 pushes into GPU0's ingress
	})
	cfg := DefaultConfig(interconnect.PCIeTree(3, interconnect.PCIe3))
	cfg.PhaseOverhead = 0
	a := Simulate(alone, cfg).Total
	c := Simulate(contended, cfg).Total
	if c <= a {
		t.Fatalf("contention did not slow the phase: %v vs %v", c, a)
	}
}

func TestLinkTrafficAccounting(t *testing.T) {
	res := onePhaseResult(2, func(p []engine.Profile) {
		p[0].Push[1] = 1000
		p[1].Bulk[0] = 500
	})
	cfg := DefaultConfig(interconnect.PCIeTree(2, interconnect.PCIe3))
	rep := Simulate(res, cfg)
	if len(rep.LinkTraffic) == 0 {
		t.Fatal("no link traffic recorded")
	}
	var total float64
	for _, l := range rep.LinkTraffic {
		total += l.Bytes
	}
	// Each transfer crosses two links (egress + ingress): 2*(1000+500).
	if total != 3000 {
		t.Fatalf("total link bytes = %v, want 3000", total)
	}
	// Sorted descending.
	for i := 1; i < len(rep.LinkTraffic); i++ {
		if rep.LinkTraffic[i].Bytes > rep.LinkTraffic[i-1].Bytes {
			t.Fatal("link traffic not sorted")
		}
	}
}

// The packet-backed timing engine agrees with the fluid engine on a real
// application run.
func TestPacketBackedTimingAgreesOnRealApp(t *testing.T) {
	spec, err := workload.ByName("eqwp")
	if err != nil {
		t.Fatal(err)
	}
	prog := spec.Build(workload.Config{NumGPUs: 4, Iterations: 2, Scale: 1, Seed: 1})
	m, err := paradigm.New(paradigm.KindGPS, prog, paradigm.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res := engine.Run(prog, m)

	fluidCfg := DefaultConfig(interconnect.PCIeTree(4, interconnect.PCIe4))
	fluid := Simulate(res, fluidCfg)
	packetCfg := fluidCfg
	packetCfg.UsePacketSim = true
	packetCfg.PacketBytes = 64 << 10
	packet := Simulate(res, packetCfg)

	ratio := packet.Total / fluid.Total
	if ratio < 0.9 || ratio > 1.3 {
		t.Fatalf("packet-backed total %v vs fluid %v (ratio %.2f)", packet.Total, fluid.Total, ratio)
	}
}
