package service

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"gps/internal/experiments"
	"gps/internal/faultinject"
	"gps/internal/report"
	"gps/internal/retry"
)

// instantSleep makes retry schedules take no wall clock in tests.
func instantSleep(ctx context.Context, _ time.Duration) error { return ctx.Err() }

// fastJobRetry is the job-level policy the resilience tests run under.
var fastJobRetry = retry.Policy{MaxAttempts: 3, BaseDelay: time.Millisecond}

// TestJobRetriesTransientDispatchFault: an injected fault at the worker
// dispatch site fails the first attempt; the retry loop re-runs the job and
// it completes, with the attempt visible in the status and metrics.
func TestJobRetriesTransientDispatchFault(t *testing.T) {
	exec := newBlockingExec()
	close(exec.release)
	s := New(Config{
		Workers: 1, QueueDepth: 4, Execute: exec.exec,
		JobRetry: fastJobRetry, Sleeper: instantSleep,
		FaultHook: faultinject.New(1, faultinject.Rule{
			Site: "service.dispatch", Kind: faultinject.KindError, Ordinal: 1,
		}),
	})
	defer s.Shutdown(context.Background())

	st, _, err := s.Submit(sensSpec("tlb"))
	if err != nil {
		t.Fatal(err)
	}
	got := waitTerminal(t, s, st.ID)
	if got.State != StateDone {
		t.Fatalf("job state = %s (%s), want done after retry", got.State, got.Error)
	}
	if got.Attempts != 2 {
		t.Errorf("Attempts = %d, want 2 (one injected failure, one success)", got.Attempts)
	}
	m := s.Metrics()
	if m.JobRetries != 1 {
		t.Errorf("JobRetries = %d, want 1", m.JobRetries)
	}
}

// TestJobPanicFailsJobNotWorker: a deterministic executor panic fails that
// one job with a typed, stack-carrying error; it is not retried (a real
// panic is not transient) and the worker keeps serving other jobs.
func TestJobPanicFailsJobNotWorker(t *testing.T) {
	exec := newBlockingExec()
	close(exec.release)
	calls := 0
	s := New(Config{
		Workers: 1, QueueDepth: 4,
		JobRetry: fastJobRetry, Sleeper: instantSleep,
		Execute: func(ctx context.Context, spec Spec) (*report.Report, error) {
			if spec.Sensitivity == "tlb" {
				calls++
				panic("poisoned executor")
			}
			return exec.exec(ctx, spec)
		},
	})
	defer s.Shutdown(context.Background())

	st, _, err := s.Submit(sensSpec("tlb"))
	if err != nil {
		t.Fatal(err)
	}
	got := waitTerminal(t, s, st.ID)
	if got.State != StateFailed || !strings.Contains(got.Error, "panicked") {
		t.Fatalf("job state = %s (%q), want failed with a panic error", got.State, got.Error)
	}
	if calls != 1 {
		t.Errorf("executor ran %d times, want 1 (deterministic panic must not retry)", calls)
	}
	if m := s.Metrics(); m.JobPanics != 1 {
		t.Errorf("JobPanics = %d, want 1", m.JobPanics)
	}

	// The pool survived: an unrelated job still completes.
	st2, _, err := s.Submit(sensSpec("pagesize"))
	if err != nil {
		t.Fatal(err)
	}
	<-exec.started
	if got := waitTerminal(t, s, st2.ID); got.State != StateDone {
		t.Errorf("follow-up job state = %s, want done (worker died?)", got.State)
	}
}

// TestInjectedDispatchPanicRetries: an injected panic is a scripted
// transient — the fence converts it to a retryable JobError and the retry
// loop completes the job anyway.
func TestInjectedDispatchPanicRetries(t *testing.T) {
	exec := newBlockingExec()
	close(exec.release)
	s := New(Config{
		Workers: 1, QueueDepth: 4, Execute: exec.exec,
		JobRetry: fastJobRetry, Sleeper: instantSleep,
		FaultHook: faultinject.New(1, faultinject.Rule{
			Site: "service.dispatch", Kind: faultinject.KindPanic, Ordinal: 1,
		}),
	})
	defer s.Shutdown(context.Background())

	st, _, err := s.Submit(sensSpec("watermark"))
	if err != nil {
		t.Fatal(err)
	}
	got := waitTerminal(t, s, st.ID)
	if got.State != StateDone {
		t.Fatalf("job state = %s (%s), want done through the fence", got.State, got.Error)
	}
	m := s.Metrics()
	if m.JobPanics != 1 || m.JobRetries != 1 {
		t.Errorf("panics/retries = %d/%d, want 1/1", m.JobPanics, m.JobRetries)
	}
}

// TestCacheWriteFaultDegrades: a fault on the result-cache commit must not
// fail the job — the result is still served, only caching is lost.
func TestCacheWriteFaultDegrades(t *testing.T) {
	exec := newBlockingExec()
	close(exec.release)
	s := New(Config{
		Workers: 1, QueueDepth: 4, Execute: exec.exec,
		FaultHook: faultinject.New(1, faultinject.Rule{
			Site: "service.cache.put", Kind: faultinject.KindError, Ordinal: 1,
		}),
	})
	defer s.Shutdown(context.Background())

	st, _, err := s.Submit(sensSpec("l2"))
	if err != nil {
		t.Fatal(err)
	}
	<-exec.started
	if got := waitTerminal(t, s, st.ID); got.State != StateDone {
		t.Fatalf("job state = %s (%s), want done despite cache fault", got.State, got.Error)
	}
	if _, res, err := s.Result(st.ID); err != nil || res == nil {
		t.Fatalf("result lost with the cache write: res=%v err=%v", res, err)
	}
	if m := s.Metrics(); m.ResultCacheWriteErrors != 1 {
		t.Errorf("ResultCacheWriteErrors = %d, want 1", m.ResultCacheWriteErrors)
	}

	// The result never made the cache, so a resubmission executes again.
	st2, out, err := s.Submit(sensSpec("l2"))
	if err != nil {
		t.Fatal(err)
	}
	if out == OutcomeCached {
		t.Fatal("resubmit served from cache despite failed commit")
	}
	<-exec.started
	waitTerminal(t, s, st2.ID)
	if got := exec.runs.Load(); got != 2 {
		t.Errorf("executions = %d, want 2 (cache commit was injected away)", got)
	}
}

// TestChaosMatrixByteIdentical is the end-to-end chaos check from the issue:
// with faults injected into the cell execution path — one cell panics, one
// fails transiently — the job still completes, and its deterministic report
// content is byte-identical to a fault-free run of the same spec.
func TestChaosMatrixByteIdentical(t *testing.T) {
	spec := Spec{Type: "matrix", Iterations: 1, Cells: []CellSpec{
		{App: "jacobi", Paradigm: "gps", GPUs: 2, Fabric: "pcie4"},
		{App: "matmul", Paradigm: "gps", GPUs: 2, Fabric: "pcie4"},
	}}

	run := func(t *testing.T, hook faultinject.Hook) *report.Report {
		t.Helper()
		if hook != nil {
			experiments.Default.SetFaultHook(hook)
			experiments.Default.SetCellRetry(retry.Policy{MaxAttempts: 4, BaseDelay: time.Millisecond})
			t.Cleanup(func() {
				experiments.Default.SetFaultHook(nil)
				experiments.Default.SetCellRetry(experiments.DefaultCellRetry)
			})
		}
		s := New(Config{Workers: 1, QueueDepth: 4})
		defer s.Shutdown(context.Background())
		st, _, err := s.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		if got := waitTerminal(t, s, st.ID); got.State != StateDone {
			t.Fatalf("chaos job state = %s (%s), want done", got.State, got.Error)
		}
		_, res, err := s.Result(st.ID)
		if err != nil || res == nil {
			t.Fatalf("no result: %v", err)
		}
		return res
	}

	want := run(t, nil)
	got := run(t, faultinject.New(7,
		faultinject.Rule{Site: "runner.cell", Kind: faultinject.KindPanic, Ordinal: 1},
		faultinject.Rule{Site: "runner.cell", Kind: faultinject.KindError, Ordinal: 2},
	))

	// Tables hold the rendered simulation results — fully deterministic,
	// unlike the wall-clock fields alongside them.
	wantJSON, _ := json.Marshal(want.Tables)
	gotJSON, _ := json.Marshal(got.Tables)
	if !bytes.Equal(wantJSON, gotJSON) {
		t.Errorf("faulted run's tables differ from clean run:\nclean: %s\nfaulted: %s", wantJSON, gotJSON)
	}

	st := experiments.Default.ResilienceStats()
	if st.CellPanics < 1 || st.CellRetries < 1 {
		t.Errorf("runner resilience stats = %+v, want >=1 panic and >=1 retry absorbed", st)
	}
}
