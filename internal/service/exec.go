package service

import (
	"context"
	"fmt"
	"time"

	"gps/internal/experiments"
	"gps/internal/obs"
	"gps/internal/report"
	"gps/internal/stats"
)

// ExecuteFunc is the executor contract: run one canonical spec to a report.
type ExecuteFunc func(ctx context.Context, spec Spec) (*report.Report, error)

// Execute runs one canonicalized spec on the shared experiments runner and
// assembles the same report.Report that gpsbench -json writes, so the CLI
// and the service emit byte-compatible JSON for identical work. It is the
// default executor of a Server; tests may substitute their own.
func Execute(ctx context.Context, spec Spec) (*report.Report, error) {
	start := time.Now()
	out := &report.Report{ParallelWorkers: experiments.Parallelism(), Shards: experiments.Shards()}
	opt := spec.options()

	// section brackets one figure/table body in a figure-category span (a
	// no-op unless the job context carries a tracer — see Config.TraceDir)
	// and times it for the report. fn gets the span's context so matrix
	// cells nest under the figure in the trace.
	section := func(name string, fn func(context.Context) (*stats.Table, string, error)) error {
		t0 := time.Now()
		sctx, span := obs.StartSpan(ctx, obs.CatFigure, name)
		var tail experiments.TailTracker
		tb, extra, err := fn(experiments.ChainCellObserver(sctx, tail.Observe))
		span.End()
		if err != nil {
			return err
		}
		text := tb.String()
		if extra != "" {
			text += extra + "\n"
		}
		out.AddTable(name, text)
		sec := report.Section{Name: name, Seconds: time.Since(t0).Seconds()}
		if d, slowest := tail.Max(); d > 0 {
			sec.MaxCellSeconds = d.Seconds()
			sec.SlowestCell = slowest
			p50, p99 := tail.Quantiles()
			sec.CellCount = tail.Count()
			sec.P50CellSeconds = p50.Seconds()
			sec.P99CellSeconds = p99.Seconds()
		}
		out.Sections = append(out.Sections, sec)
		return nil
	}

	plain := func(name string, fn func(context.Context, experiments.Options) (*stats.Table, error)) error {
		return section(name, func(sctx context.Context) (*stats.Table, string, error) {
			tb, err := fn(sctx, opt)
			return tb, "", err
		})
	}

	var err error
	switch spec.Type {
	case "table":
		name := fmt.Sprintf("table%d", spec.Table)
		text := experiments.Table1()
		if spec.Table == 2 {
			text = experiments.Table2()
		}
		out.AddTable(name, text)
		out.Sections = append(out.Sections, report.Section{Name: name})

	case "figure":
		name := fmt.Sprintf("figure%d", spec.Figure)
		switch spec.Figure {
		case 1:
			err = plain(name, experiments.Figure1)
		case 2:
			err = plain(name, experiments.Figure2)
		case 3:
			err = section(name, func(context.Context) (*stats.Table, string, error) {
				return experiments.Figure3(), "", nil
			})
		case 4:
			err = plain(name, experiments.Figure4)
		case 8:
			err = section(name, func(sctx context.Context) (*stats.Table, string, error) {
				tb, err := experiments.Figure8(sctx, opt)
				if err != nil {
					return nil, "", err
				}
				g, f, n := experiments.Claims71(tb)
				out.GPSMeanX, out.OpportunityPct, out.VsNextBestX = g, f*100, n
				return tb, fmt.Sprintf(
					"Section 7.1 claims: GPS mean %.2fx (paper: 3.0x), %.1f%% of opportunity (paper: 93.7%%), %.2fx over next best (paper: 2.3x)",
					g, f*100, n), nil
			})
		case 9:
			err = plain(name, experiments.Figure9)
		case 10:
			err = plain(name, experiments.Figure10)
		case 11:
			err = plain(name, experiments.Figure11)
		case 12:
			err = plain(name, experiments.Figure12)
		case 13:
			err = plain(name, experiments.Figure13)
		case 14:
			err = plain(name, experiments.Figure14)
		default:
			err = fmt.Errorf("service: unknown figure %d", spec.Figure)
		}

	case "sensitivity":
		name := "sens-" + spec.Sensitivity
		switch spec.Sensitivity {
		case "tlb":
			err = plain(name, experiments.SensitivityGPSTLB)
		case "pagesize":
			err = plain(name, experiments.SensitivityPageSize)
		case "watermark":
			err = plain(name, experiments.AblationWatermark)
		case "l2":
			err = plain(name, experiments.ValidateL2)
		case "profilingmode":
			err = plain(name, experiments.AblationProfilingMode)
		case "control":
			err = plain(name, experiments.ControlApps)
		case "pipelined":
			err = plain(name, experiments.AblationPipelinedMemcpy)
		case "fabrics":
			err = plain(name, experiments.ExtendedFabrics)
		case "hier":
			err = plain(name, experiments.FigureHierarchy)
		case "fabricmodel":
			err = section(name, func(sctx context.Context) (*stats.Table, string, error) {
				tb, err := experiments.ValidateFabricModel(sctx, 50)
				return tb, "", err
			})
		default:
			err = fmt.Errorf("service: unknown sensitivity %q", spec.Sensitivity)
		}

	case "matrix":
		err = section("matrix", func(sctx context.Context) (*stats.Table, string, error) {
			return runMatrixSpec(sctx, spec, opt)
		})

	default:
		err = fmt.Errorf("service: unknown job type %q", spec.Type)
	}
	if err != nil {
		return nil, err
	}

	out.TotalSeconds = time.Since(start).Seconds()
	out.Cache = experiments.Default.CacheStats()
	return out, nil
}

// runMatrixSpec executes a custom cell matrix and renders one row per cell:
// wall-clock simulated times, the 1-GPU speedup, and the steady-state bytes
// the fabric moved.
func runMatrixSpec(ctx context.Context, spec Spec, opt experiments.Options) (*stats.Table, string, error) {
	cells := make([]experiments.Cell, len(spec.Cells))
	for i, cs := range spec.Cells {
		c, err := cs.cell(opt)
		if err != nil {
			return nil, "", err
		}
		cells[i] = c
	}
	results, err := experiments.Default.RunMatrix(ctx, cells)
	if err != nil {
		return nil, "", err
	}
	tb := stats.NewTable("Custom matrix",
		"cell", "total ms", "steady ms", "speedup", "fabric MB")
	tb.Fmt = "%10.3f"
	for i, r := range results {
		cs := spec.Cells[i]
		base, err := experiments.Default.Baseline(cs.App, opt, r.Cell.Cfg)
		if err != nil {
			return nil, "", err
		}
		label := fmt.Sprintf("%s/%s/%dgpu/%s", cs.App, cs.Paradigm, cs.GPUs, cs.Fabric)
		tb.AddRow(label,
			r.Report.Total*1e3,
			r.Report.SteadyTotal()*1e3,
			stats.Speedup(base, r.Report.SteadyTotal()),
			float64(r.Result.InterconnectBytes(r.Result.Meta.ProfilePhases))/1e6)
	}
	return tb, "", nil
}
