package service

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"gps/internal/report"
)

// blockingExec is a scriptable executor: it signals when a job starts and
// holds the job until released (or the context dies), so tests can pin the
// queue in known states.
type blockingExec struct {
	started chan string   // receives the spec's sensitivity tag on entry
	release chan struct{} // one receive per held job
	runs    atomic.Uint64
}

func newBlockingExec() *blockingExec {
	return &blockingExec{started: make(chan string, 64), release: make(chan struct{})}
}

func (b *blockingExec) exec(ctx context.Context, spec Spec) (*report.Report, error) {
	b.runs.Add(1)
	b.started <- spec.Sensitivity
	select {
	case <-b.release:
		return &report.Report{TotalSeconds: 0.001}, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// sensSpec builds distinct valid specs from the sensitivity names.
func sensSpec(name string) Spec { return Spec{Type: "sensitivity", Sensitivity: name} }

func waitTerminal(t *testing.T, s *Server, id string) Status {
	t.Helper()
	job, err := s.jobHandle(id)
	if err != nil {
		t.Fatalf("jobHandle(%s): %v", id, err)
	}
	select {
	case <-job.Done():
	case <-time.After(10 * time.Second):
		t.Fatalf("job %s did not reach a terminal state", id)
	}
	st, err := s.Job(id)
	if err != nil {
		t.Fatalf("Job(%s): %v", id, err)
	}
	return st
}

func TestSpecCanonicalHashing(t *testing.T) {
	a, err := Spec{Type: "Matrix", Cells: []CellSpec{{App: "jacobi", Paradigm: "gps", GPUs: 4, Fabric: "PCIE4"}}}.Canonicalize()
	if err != nil {
		t.Fatal(err)
	}
	b, err := Spec{Type: "matrix", Iterations: 4, Scale: 1, Seed: 1,
		Cells: []CellSpec{{App: "jacobi", Paradigm: "GPS", GPUs: 4, Fabric: "pcie4"}}}.Canonicalize()
	if err != nil {
		t.Fatal(err)
	}
	if a.Hash() != b.Hash() {
		t.Errorf("equivalent specs hash differently:\n%+v\n%+v", a, b)
	}
	c, err := Spec{Type: "matrix", Iterations: 2,
		Cells: []CellSpec{{App: "jacobi", Paradigm: "GPS", GPUs: 4, Fabric: "pcie4"}}}.Canonicalize()
	if err != nil {
		t.Fatal(err)
	}
	if a.Hash() == c.Hash() {
		t.Error("different iteration counts must hash differently")
	}

	for _, bad := range []Spec{
		{Type: "figure", Figure: 7},
		{Type: "table", Table: 3},
		{Type: "sensitivity", Sensitivity: "nope"},
		{Type: "matrix"},
		{Type: "matrix", Cells: []CellSpec{{App: "nosuch", Paradigm: "GPS", GPUs: 4, Fabric: "pcie4"}}},
		{Type: "matrix", Cells: []CellSpec{{App: "jacobi", Paradigm: "GPS", GPUs: 4, Fabric: "warp"}}},
		{Type: "report"},
	} {
		if _, err := bad.Canonicalize(); err == nil {
			t.Errorf("spec %+v: want validation error", bad)
		}
	}
}

func TestSingleFlightCoalescing(t *testing.T) {
	exec := newBlockingExec()
	s := New(Config{Workers: 1, QueueDepth: 4, Execute: exec.exec})
	defer s.Shutdown(context.Background())

	st1, out1, err := s.Submit(sensSpec("tlb"))
	if err != nil || out1 != OutcomeAccepted {
		t.Fatalf("first submit: %v outcome=%v", err, out1)
	}
	<-exec.started // job is running and holding the worker

	st2, out2, err := s.Submit(sensSpec("tlb"))
	if err != nil {
		t.Fatalf("duplicate submit: %v", err)
	}
	if out2 != OutcomeCoalesced || st2.ID != st1.ID {
		t.Fatalf("duplicate submit: outcome=%v id=%s, want coalesced onto %s", out2, st2.ID, st1.ID)
	}

	close(exec.release)
	st := waitTerminal(t, s, st1.ID)
	if st.State != StateDone {
		t.Fatalf("job state = %s, want done (%s)", st.State, st.Error)
	}
	if got := exec.runs.Load(); got != 1 {
		t.Errorf("executions = %d, want 1 (single-flight)", got)
	}
	if m := s.Metrics(); m.JobsCoalesced != 1 {
		t.Errorf("JobsCoalesced = %d, want 1", m.JobsCoalesced)
	}
}

func TestContentAddressedCache(t *testing.T) {
	exec := newBlockingExec()
	close(exec.release) // run instantly
	s := New(Config{Workers: 1, QueueDepth: 4, Execute: exec.exec})
	defer s.Shutdown(context.Background())

	st, out, err := s.Submit(sensSpec("pagesize"))
	if err != nil || out != OutcomeAccepted {
		t.Fatalf("submit: %v outcome=%v", err, out)
	}
	<-exec.started
	waitTerminal(t, s, st.ID)

	st2, out2, err := s.Submit(sensSpec("pagesize"))
	if err != nil {
		t.Fatal(err)
	}
	if out2 != OutcomeCached || st2.State != StateDone || !st2.CacheHit {
		t.Fatalf("repeat submit: outcome=%v state=%s cacheHit=%v, want cached/done/true",
			out2, st2.State, st2.CacheHit)
	}
	if st2.ID == st.ID {
		t.Error("cached submission must get its own job id")
	}
	if got := exec.runs.Load(); got != 1 {
		t.Errorf("executions = %d, want 1 (second served from cache)", got)
	}
	m := s.Metrics()
	if m.ResultCacheHits != 1 || m.ResultCacheMisses != 1 {
		t.Errorf("cache hits/misses = %d/%d, want 1/1", m.ResultCacheHits, m.ResultCacheMisses)
	}
	if _, res, err := s.Result(st2.ID); err != nil || res == nil {
		t.Errorf("cached job has no result: res=%v err=%v", res, err)
	}
}

func TestQueueSaturationRejects(t *testing.T) {
	exec := newBlockingExec()
	s := New(Config{Workers: 1, QueueDepth: 2, Execute: exec.exec})
	defer func() {
		close(exec.release)
		s.Shutdown(context.Background())
	}()

	// One running (occupies the worker), two queued: at capacity.
	if _, _, err := s.Submit(sensSpec("tlb")); err != nil {
		t.Fatal(err)
	}
	<-exec.started
	for _, name := range []string{"pagesize", "watermark"} {
		if _, _, err := s.Submit(sensSpec(name)); err != nil {
			t.Fatalf("submit %s: %v", name, err)
		}
	}

	_, _, err := s.Submit(sensSpec("l2"))
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("saturated submit: err = %v, want ErrQueueFull", err)
	}
	if m := s.Metrics(); m.JobsRejected != 1 {
		t.Errorf("JobsRejected = %d, want 1", m.JobsRejected)
	}
	if ra := s.RetryAfterSeconds(); ra < 1 {
		t.Errorf("RetryAfterSeconds = %d, want >= 1", ra)
	}
}

func TestCancelQueuedAndRunning(t *testing.T) {
	exec := newBlockingExec()
	s := New(Config{Workers: 1, QueueDepth: 4, Execute: exec.exec})
	defer func() {
		select {
		case <-exec.release:
		default:
			close(exec.release)
		}
		s.Shutdown(context.Background())
	}()

	running, _, err := s.Submit(sensSpec("tlb"))
	if err != nil {
		t.Fatal(err)
	}
	<-exec.started
	queued, _, err := s.Submit(sensSpec("pagesize"))
	if err != nil {
		t.Fatal(err)
	}

	// Canceling the queued job retires it without execution.
	if _, err := s.Cancel(queued.ID); err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, s, queued.ID); st.State != StateCanceled {
		t.Errorf("queued job state = %s, want canceled", st.State)
	}

	// Canceling the running job interrupts its context mid-run.
	if _, err := s.Cancel(running.ID); err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, s, running.ID); st.State != StateCanceled {
		t.Errorf("running job state = %s, want canceled", st.State)
	}
	if got := exec.runs.Load(); got != 1 {
		t.Errorf("executions = %d, want 1 (queued job never ran)", got)
	}
	if _, err := s.Cancel("j-999999"); !errors.Is(err, ErrNotFound) {
		t.Errorf("cancel unknown: %v, want ErrNotFound", err)
	}

	// A canceled spec is not cached: resubmitting executes again.
	if _, out, err := s.Submit(sensSpec("tlb")); err != nil || out != OutcomeAccepted {
		t.Errorf("resubmit after cancel: outcome=%v err=%v, want accepted", out, err)
	}
	<-exec.started
}

func TestShutdownDrainsRunning(t *testing.T) {
	exec := newBlockingExec()
	s := New(Config{Workers: 1, QueueDepth: 4, Execute: exec.exec})

	running, _, err := s.Submit(sensSpec("tlb"))
	if err != nil {
		t.Fatal(err)
	}
	<-exec.started
	queued, _, err := s.Submit(sensSpec("pagesize"))
	if err != nil {
		t.Fatal(err)
	}

	// Release the running job shortly after drain begins.
	go func() {
		time.Sleep(50 * time.Millisecond)
		close(exec.release)
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v (want clean drain)", err)
	}

	if st, _ := s.Job(running.ID); st.State != StateDone {
		t.Errorf("running job drained to %s, want done", st.State)
	}
	if st, _ := s.Job(queued.ID); st.State != StateCanceled {
		t.Errorf("queued job drained to %s, want canceled", st.State)
	}
	if _, _, err := s.Submit(sensSpec("l2")); !errors.Is(err, ErrShuttingDown) {
		t.Errorf("submit after shutdown: %v, want ErrShuttingDown", err)
	}
}

func TestShutdownDeadlineAborts(t *testing.T) {
	exec := newBlockingExec() // never released: job only ends via context
	s := New(Config{Workers: 1, QueueDepth: 4, Execute: exec.exec})

	st, _, err := s.Submit(sensSpec("tlb"))
	if err != nil {
		t.Fatal(err)
	}
	<-exec.started

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := s.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown: %v, want deadline exceeded", err)
	}
	if got, _ := s.Job(st.ID); got.State != StateCanceled {
		t.Errorf("aborted job state = %s, want canceled", got.State)
	}
}

func TestJobTimeout(t *testing.T) {
	exec := newBlockingExec() // held until the timeout fires
	s := New(Config{Workers: 1, QueueDepth: 4, JobTimeout: 30 * time.Millisecond, Execute: exec.exec})
	defer s.Shutdown(context.Background())

	st, _, err := s.Submit(sensSpec("tlb"))
	if err != nil {
		t.Fatal(err)
	}
	got := waitTerminal(t, s, st.ID)
	if got.State != StateFailed {
		t.Fatalf("timed out job state = %s (%s), want failed", got.State, got.Error)
	}
}

func TestTerminalJobPruning(t *testing.T) {
	exec := newBlockingExec()
	close(exec.release)
	s := New(Config{Workers: 1, QueueDepth: 8, RetainJobs: 2, Execute: exec.exec})
	defer s.Shutdown(context.Background())

	ids := make([]string, 3)
	for i, name := range []string{"tlb", "pagesize", "watermark"} {
		st, _, err := s.Submit(sensSpec(name))
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = st.ID
		waitTerminal(t, s, st.ID)
	}
	if _, err := s.Job(ids[0]); !errors.Is(err, ErrNotFound) {
		t.Errorf("oldest terminal job still queryable, want pruned (err=%v)", err)
	}
	if _, err := s.Job(ids[2]); err != nil {
		t.Errorf("newest job pruned: %v", err)
	}
}
