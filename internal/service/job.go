package service

import (
	"context"
	"fmt"
	"runtime/debug"
	"sync/atomic"
	"time"

	"gps/internal/obs"
	"gps/internal/report"
)

// State is a job's lifecycle state.
type State string

// The job lifecycle: queued -> running -> done|failed, with canceled
// reachable from queued and running. Cache hits are born done.
const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// Terminal reports whether no further transitions can happen.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Job is one submitted simulation. Fields are guarded by the owning
// Server's mutex except cellsDone, which workers bump lock-free as matrix
// cells complete.
type Job struct {
	ID    string
	Hash  string
	Node  string // owning node ID; empty on a single-node daemon
	Spec  Spec
	Trace obs.TraceInfo // distributed trace identity, minted at submit

	State       State
	Err         string
	Result      *report.Report
	CacheHit    bool   // served from the content-addressed cache at submit
	Coalesced   uint64 // extra submissions that rode on this execution
	Replayed    bool   // re-enqueued from the journal after a crash
	StolenBy    string // peer node executing this job after a work steal
	AdoptedFrom string // dead peer whose replicated journal this job came from
	PeerFetched bool   // result fetched from a peer's cache, no local execution
	SubmittedAt time.Time
	StartedAt   time.Time
	FinishedAt  time.Time

	cellsDone  atomic.Uint64
	attempts   atomic.Uint64           // execution attempts, bumped by the retry loop
	cancel     context.CancelCauseFunc // non-nil once running locally (nil while stolen)
	stealTimer *time.Timer             // reclaim watchdog while stolen; guarded by the server mutex
	done       chan struct{}           // closed on reaching a terminal state
}

// Status is the JSON snapshot the API returns when polling a job.
type Status struct {
	ID          string         `json:"id"`
	Hash        string         `json:"hash"`
	NodeID      string         `json:"node_id,omitempty"` // node that owns the execution
	State       State          `json:"state"`
	Spec        Spec           `json:"spec"`
	CellsDone   uint64         `json:"cells_done"`
	Attempts    uint64         `json:"attempts,omitempty"` // executions incl. retries
	CacheHit    bool           `json:"cache_hit,omitempty"`
	Coalesced   uint64         `json:"coalesced,omitempty"`
	Replayed    bool           `json:"replayed,omitempty"`     // recovered from the journal
	StolenBy    string         `json:"stolen_by,omitempty"`    // peer executing this job after a steal
	AdoptedFrom string         `json:"adopted_from,omitempty"` // dead peer this job was taken over from
	PeerFetched bool           `json:"peer_fetched,omitempty"` // result served from a peer's cache
	Trace       *obs.TraceInfo `json:"trace,omitempty"`        // distributed trace identity
	Error       string         `json:"error,omitempty"`
	SubmittedAt string         `json:"submitted_at"`
	WaitSeconds float64        `json:"wait_seconds"`           // queued -> started (or now)
	WallSeconds float64        `json:"wall_seconds,omitempty"` // started -> finished (or now)
}

// snapshot renders the job under the server lock.
func (j *Job) snapshot(now time.Time) Status {
	st := Status{
		ID:          j.ID,
		Hash:        j.Hash,
		NodeID:      j.Node,
		State:       j.State,
		Spec:        j.Spec,
		CellsDone:   j.cellsDone.Load(),
		Attempts:    j.attempts.Load(),
		CacheHit:    j.CacheHit,
		Coalesced:   j.Coalesced,
		Replayed:    j.Replayed,
		StolenBy:    j.StolenBy,
		AdoptedFrom: j.AdoptedFrom,
		PeerFetched: j.PeerFetched,
		Error:       j.Err,
		SubmittedAt: j.SubmittedAt.UTC().Format(time.RFC3339Nano),
	}
	if j.Trace.TraceID != "" {
		tr := j.Trace
		st.Trace = &tr
	}
	switch {
	case j.StartedAt.IsZero():
		st.WaitSeconds = now.Sub(j.SubmittedAt).Seconds()
	default:
		st.WaitSeconds = j.StartedAt.Sub(j.SubmittedAt).Seconds()
		if j.FinishedAt.IsZero() {
			st.WallSeconds = now.Sub(j.StartedAt).Seconds()
		} else {
			st.WallSeconds = j.FinishedAt.Sub(j.StartedAt).Seconds()
		}
	}
	if st.WaitSeconds < 0 {
		st.WaitSeconds = 0
	}
	return st
}

// Done exposes the completion channel; it is closed once the job reaches a
// terminal state. Callers must not close it.
func (j *Job) Done() <-chan struct{} { return j.done }

// JobError is the typed failure of one job attempt that panicked: the
// worker's recover fence converts the panic into this error so one poisoned
// job fails diagnosably while other jobs and workers keep running.
type JobError struct {
	ID    string
	Stack string // truncated stack captured at the panic site
	Err   error
}

func (e *JobError) Error() string {
	return fmt.Sprintf("service: job %s panicked: %v\n%s", e.ID, e.Err, e.Stack)
}

func (e *JobError) Unwrap() error { return e.Err }

// jobMaxStackBytes caps captured panic stacks so errors stay loggable.
const jobMaxStackBytes = 2048

// truncatedStack captures the current goroutine's stack, capped.
func truncatedStack() string {
	s := debug.Stack()
	if len(s) > jobMaxStackBytes {
		s = append(s[:jobMaxStackBytes], []byte("... (truncated)")...)
	}
	return string(s)
}

// panicToError normalizes a recovered panic value, preserving error values
// (and with them the retry classification of injected panics).
func panicToError(p any) error {
	if err, ok := p.(error); ok {
		return err
	}
	return fmt.Errorf("panic: %v", p)
}
