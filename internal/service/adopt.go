package service

import (
	"sort"
	"time"

	"gps/internal/obs"
)

// Takeover, successor side. When a cluster peer dies permanently, the ring
// successor holds replicated journal records for every job the dead node
// had accepted but not finished. Adopt promotes one such record: the job is
// re-enqueued here under its original (foreign-prefixed) ID, so clients
// polling the handle they already hold keep working once reads for the dead
// prefix fall back to this node. Adoption is idempotent and single-flight
// aware: an ID already known is left alone, a spec already cached completes
// instantly, and a spec already in flight locally rides on that execution
// instead of running a second time.

// AdoptOutcome classifies what Adopt did with a replicated record.
type AdoptOutcome string

const (
	// AdoptQueued: a fresh execution was queued under the original ID.
	AdoptQueued AdoptOutcome = "queued"
	// AdoptCached: the result cache already held the spec; the job is born
	// done under the original ID with no execution.
	AdoptCached AdoptOutcome = "cached"
	// AdoptCoalesced: an identical spec is already queued or running here
	// (e.g. a client re-submitted after the owner died and re-routing landed
	// it on this node); the adopted ID rides on that execution.
	AdoptCoalesced AdoptOutcome = "coalesced"
	// AdoptExists: the ID is already registered (an earlier takeover sweep
	// adopted it); nothing to do.
	AdoptExists AdoptOutcome = "exists"
)

// Adopt promotes one replicated journal record from the dead node origin.
// The job keeps its original ID and its original trace identity (trace
// rides on the replicated submit record), so the adopted execution still
// renders in the same cross-node trace the dead node started. Fresh
// adoptions are journaled locally, so if this successor also dies its own
// journal (and replication stream) carry the job onward.
func (s *Server) Adopt(origin, id string, spec Spec, trace obs.TraceInfo) (AdoptOutcome, error) {
	canon, err := spec.Canonicalize()
	if err != nil {
		return "", err
	}
	hash := canon.Hash()
	now := time.Now()

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return "", ErrShuttingDown
	}
	if _, ok := s.jobs[id]; ok {
		return AdoptExists, nil
	}

	if trace.TraceID == "" {
		// Replicas from before trace identity existed: mint one.
		trace = obs.NewJobTrace(obs.TraceContext{})
	}
	job := &Job{
		ID:          id,
		Hash:        hash,
		Node:        s.cfg.NodeID,
		Spec:        canon,
		Trace:       trace,
		State:       StateQueued,
		AdoptedFrom: origin,
		SubmittedAt: now,
		done:        make(chan struct{}),
	}

	if res, ok := s.cache.get(hash); ok {
		s.cacheHits.Add(1)
		job.State = StateDone
		job.CacheHit = true
		job.StartedAt, job.FinishedAt = now, now
		job.Result = res
		s.jobs[id] = job
		close(job.done)
		s.retireLocked(job)
		s.jobsAdopted.Add(1)
		s.jobsDone.Add(1)
		// No execution anywhere on this node: flush the adopted identity as a
		// static span so the trace keeps its root.
		s.writeHandoffTrace(handoffTrace{
			id: id, hash: hash, kind: "adopted-cached", peer: origin,
			trace: job.Trace, state: job.State,
			submitted: now, started: now, finished: now,
		})
		s.logger.Info("adopted job served from cache", "job_id", id, "origin", origin, "hash", hash)
		return AdoptCached, nil
	}

	if leader, ok := s.inflight[hash]; ok {
		// Cross-node single-flight on the successor: the spec is already
		// executing here (a re-routed re-submit beat the takeover sweep).
		// The adopted ID becomes a rider that mirrors the leader's outcome.
		s.jobs[id] = job
		s.coalesced.Add(1)
		s.jobsAdopted.Add(1)
		leader.Coalesced++
		go s.finishAdoptedRider(job, leader)
		s.logger.Info("adopted job coalesced onto in-flight spec",
			"job_id", id, "origin", origin, "leader", leader.ID, "hash", hash)
		return AdoptCoalesced, nil
	}

	s.jobs[id] = job
	s.inflight[hash] = job
	// Durability first, like Submit — but an adoption that cannot be
	// journaled still proceeds: the origin is dead, so refusing would strand
	// the job entirely. The replicated copy on our own successor is the
	// remaining safety net.
	if jerr := s.cfg.Journal.record(OpSubmit, id, &job.Spec, &job.Trace, ""); jerr != nil {
		s.logger.Warn("adopted job not journaled", "job_id", id, "err", jerr)
	}
	select {
	case s.queue <- job:
	default:
		// The admission queue is full. Takeover work must not be rejected —
		// the clients of the dead node are owed these jobs — so run it on a
		// dedicated goroutine outside the worker pool.
		go s.runJobIsolated(job)
	}
	s.jobsAdopted.Add(1)
	s.cacheMisses.Add(1)
	s.logger.Info("job adopted from dead peer", "job_id", id, "origin", origin, "hash", hash)
	return AdoptQueued, nil
}

// finishAdoptedRider mirrors the leader's terminal state onto an adopted
// rider job once the leader finishes.
func (s *Server) finishAdoptedRider(job, leader *Job) {
	<-leader.done
	s.mu.Lock()
	defer s.mu.Unlock()
	if job.State.Terminal() { // canceled while riding
		return
	}
	now := time.Now()
	job.StartedAt, job.FinishedAt = leader.StartedAt, now
	job.State = leader.State
	job.Err = leader.Err
	job.Result = leader.Result
	switch leader.State {
	case StateDone:
		s.jobsDone.Add(1)
		s.cfg.Journal.record(OpDone, job.ID, nil, nil, "") //nolint:errcheck // terminal close-out
	case StateCanceled:
		s.jobsCancd.Add(1)
		s.cfg.Journal.record(OpCancel, job.ID, nil, nil, job.Err) //nolint:errcheck // terminal close-out
	default:
		job.State = StateFailed
		s.jobsFailed.Add(1)
		s.cfg.Journal.record(OpFail, job.ID, nil, nil, job.Err) //nolint:errcheck // terminal close-out
	}
	close(job.done)
	s.retireLocked(job)
	// The rider never executes; its identity is flushed as a static span
	// pointing at the leader that actually ran.
	s.writeHandoffTrace(handoffTrace{
		id: job.ID, hash: job.Hash, kind: "adopted-rider", peer: leader.ID,
		trace: job.Trace, state: job.State, errMsg: job.Err,
		submitted: job.SubmittedAt, started: job.StartedAt, finished: job.FinishedAt,
	})
	s.logger.Info("adopted rider finished", "job_id", job.ID, "leader", leader.ID, "state", string(job.State))
}

// PendingJobs snapshots every non-terminal job (queued, running, stolen, or
// delegated), in ID order. The cluster's replicator uses it as the full-state
// resync payload when the replication successor changes or recovers.
func (s *Server) PendingJobs() []PendingJob {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []PendingJob
	for _, job := range s.jobs {
		if job.State.Terminal() {
			continue
		}
		out = append(out, PendingJob{ID: job.ID, Spec: job.Spec, Trace: job.Trace, Started: job.State == StateRunning})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
