package service

import (
	"path/filepath"
	"time"

	"gps/internal/obs"
)

// handoffTrace describes a job that reached a terminal state on this node
// without a local execution: stolen and completed by a peer, adopted
// straight from the result cache, or an adopted rider mirroring a local
// leader. runJob never saw these jobs, so without an explicit flush their
// trace identity would have no span on the node that owns them and the
// cross-node trace would lose its root.
type handoffTrace struct {
	id, hash, kind, peer         string
	trace                        obs.TraceInfo
	state                        State
	errMsg                       string
	submitted, started, finished time.Time
}

// writeHandoffTrace flushes a static span trace for a handed-off job:
// the job span under its original identity plus a phase span naming the
// handoff kind and peer. File IO runs on its own goroutine, so callers may
// hold s.mu.
func (s *Server) writeHandoffTrace(h handoffTrace) {
	if s.cfg.TraceDir == "" || h.trace.TraceID == "" {
		return
	}
	dir, node, logger := s.cfg.TraceDir, s.cfg.NodeID, s.logger
	go func() {
		if h.started.IsZero() {
			h.started = h.submitted
		}
		if h.finished.IsZero() {
			h.finished = h.started
		}
		args := map[string]string{"hash": h.hash, "state": string(h.state), "handoff": h.kind}
		if node != "" {
			args["node_id"] = node
		}
		if h.peer != "" {
			args["peer"] = h.peer
		}
		if h.errMsg != "" {
			args["error"] = h.errMsg
		}
		spans := []obs.StaticSpan{
			{
				Cat: obs.CatJob, Name: h.id,
				Start: h.submitted, End: h.finished,
				SpanID: h.trace.SpanID, ParentSpanID: h.trace.ParentSpanID,
				Args: args,
			},
			{
				Cat: obs.CatPhase, Name: h.kind,
				Start: h.started, End: h.finished,
				SpanID: obs.NewSpanID(), ParentSpanID: h.trace.SpanID,
			},
		}
		path := filepath.Join(dir, h.id+".trace.json")
		if err := obs.WriteStaticTraceFile(path, node, h.trace.TraceID, spans); err != nil {
			logger.Warn("handoff trace write failed", "job_id", h.id, "err", err)
		}
	}()
}
