package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"gps/internal/experiments"
	"gps/internal/report"
)

// Sentinel errors the HTTP layer maps onto status codes.
var (
	// ErrQueueFull is returned when admission control rejects a submission
	// because the bounded queue is saturated (HTTP 429).
	ErrQueueFull = errors.New("service: job queue full")
	// ErrShuttingDown is returned for submissions after drain began (503).
	ErrShuttingDown = errors.New("service: shutting down")
	// ErrNotFound is returned for unknown (or pruned) job IDs (404).
	ErrNotFound = errors.New("service: no such job")
)

// errJobCanceled is the cancellation cause installed by Cancel, so the
// worker can tell a user cancel from a timeout or a server drain.
var errJobCanceled = errors.New("service: job canceled by request")

// Outcome classifies what Submit did with a spec.
type Outcome int

const (
	// OutcomeAccepted: a new job was queued for execution.
	OutcomeAccepted Outcome = iota
	// OutcomeCoalesced: an identical spec is already queued or running; the
	// submission rides on that execution (single-flight).
	OutcomeCoalesced
	// OutcomeCached: the result was served from the content-addressed cache
	// without any execution; the returned job is born done.
	OutcomeCached
)

// Config sizes a Server. Zero values take the documented defaults.
type Config struct {
	// Workers is the number of jobs executed concurrently (default 2).
	// Each job additionally fans its cells out on the experiments runner's
	// own pool, so total CPU use is Workers x runner parallelism.
	Workers int
	// QueueDepth bounds the admission queue (default 16). Submissions
	// beyond running+queued capacity get ErrQueueFull.
	QueueDepth int
	// JobTimeout caps one job's execution (default 0: unlimited). A timed
	// out job fails; its in-flight simulation cells finish and are kept in
	// the runner caches, so a resubmission resumes cheaply.
	JobTimeout time.Duration
	// CacheEntries bounds the content-addressed result cache (default 256,
	// FIFO eviction).
	CacheEntries int
	// RetainJobs bounds how many terminal jobs stay queryable (default
	// 1024, oldest pruned first) so a long-lived daemon's job store cannot
	// grow without bound.
	RetainJobs int
	// Execute runs one canonical spec. Defaults to Execute (the shared
	// experiments runner); tests substitute stubs to script timing.
	Execute func(context.Context, Spec) (*report.Report, error)
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 256
	}
	if c.RetainJobs <= 0 {
		c.RetainJobs = 1024
	}
	if c.Execute == nil {
		c.Execute = Execute
	}
	return c
}

// Metrics is the operational snapshot of /v1/metrics.
type Metrics struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	Workers       int     `json:"workers"`
	BusyWorkers   int     `json:"busy_workers"`
	QueueDepth    int     `json:"queue_depth"`
	QueueCapacity int     `json:"queue_capacity"`

	JobsSubmitted uint64 `json:"jobs_submitted"`
	JobsDone      uint64 `json:"jobs_done"`
	JobsFailed    uint64 `json:"jobs_failed"`
	JobsCanceled  uint64 `json:"jobs_canceled"`
	JobsRejected  uint64 `json:"jobs_rejected"`
	JobsCoalesced uint64 `json:"jobs_coalesced"`

	ResultCacheHits    uint64 `json:"result_cache_hits"`
	ResultCacheMisses  uint64 `json:"result_cache_misses"`
	ResultCacheEntries int    `json:"result_cache_entries"`

	ExecSecondsTotal float64 `json:"exec_seconds_total"`

	// RunnerCache exposes the memoization counters of the underlying
	// experiments runner (traces, structural replays, baselines).
	RunnerCache experiments.CacheStats `json:"runner_cache"`
}

// Server is the simulation-as-a-service core: admission control in front of
// a bounded FIFO queue, a worker pool draining it, single-flight coalescing
// of duplicate in-flight specs, and a content-addressed result cache.
type Server struct {
	cfg   Config
	start time.Time

	baseCtx    context.Context // canceled only when a drain deadline forces abort
	baseCancel context.CancelCauseFunc
	queue      chan *Job
	wg         sync.WaitGroup
	busy       atomic.Int64

	mu       sync.Mutex
	closed   bool
	seq      uint64
	jobs     map[string]*Job
	inflight map[string]*Job // canonical hash -> queued/running job
	cache    *resultCache
	terminal []string // terminal job IDs in completion order, for pruning

	submitted, rejected, coalesced  atomic.Uint64
	jobsDone, jobsFailed, jobsCancd atomic.Uint64
	cacheHits, cacheMisses          atomic.Uint64
	execSeconds                     float64 // guarded by mu
}

// New builds a Server and starts its worker pool.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancelCause(context.Background())
	s := &Server{
		cfg:        cfg,
		start:      time.Now(),
		baseCtx:    ctx,
		baseCancel: cancel,
		queue:      make(chan *Job, cfg.QueueDepth),
		jobs:       map[string]*Job{},
		inflight:   map[string]*Job{},
		cache:      newResultCache(cfg.CacheEntries),
	}
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Submit admits one spec. It returns the job snapshot to poll plus what
// happened: accepted (new execution queued), coalesced (identical spec
// already in flight — the same job serves both), or cached (the canonical
// hash hit the result cache and the job is born done, no execution).
func (s *Server) Submit(spec Spec) (Status, Outcome, error) {
	canon, err := spec.Canonicalize()
	if err != nil {
		return Status{}, OutcomeAccepted, err
	}
	hash := canon.Hash()
	now := time.Now()

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return Status{}, OutcomeAccepted, ErrShuttingDown
	}

	if res, ok := s.cache.get(hash); ok {
		s.cacheHits.Add(1)
		s.submitted.Add(1)
		job := s.newJobLocked(canon, hash, now)
		job.State = StateDone
		job.CacheHit = true
		job.StartedAt, job.FinishedAt = now, now
		job.Result = res
		close(job.done)
		s.retireLocked(job)
		s.jobsDone.Add(1)
		return job.snapshot(now), OutcomeCached, nil
	}

	if leader, ok := s.inflight[hash]; ok {
		leader.Coalesced++
		s.coalesced.Add(1)
		return leader.snapshot(now), OutcomeCoalesced, nil
	}

	job := s.newJobLocked(canon, hash, now)
	select {
	case s.queue <- job:
	default:
		delete(s.jobs, job.ID)
		s.rejected.Add(1)
		return Status{}, OutcomeAccepted, ErrQueueFull
	}
	s.inflight[hash] = job
	s.submitted.Add(1)
	s.cacheMisses.Add(1)
	return job.snapshot(now), OutcomeAccepted, nil
}

// newJobLocked allocates and registers a queued job. Callers hold s.mu.
func (s *Server) newJobLocked(spec Spec, hash string, now time.Time) *Job {
	s.seq++
	job := &Job{
		ID:          fmt.Sprintf("j-%06d", s.seq),
		Hash:        hash,
		Spec:        spec,
		State:       StateQueued,
		SubmittedAt: now,
		done:        make(chan struct{}),
	}
	s.jobs[job.ID] = job
	return job
}

// Job returns the snapshot of one job.
func (s *Server) Job(id string) (Status, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	job, ok := s.jobs[id]
	if !ok {
		return Status{}, ErrNotFound
	}
	return job.snapshot(time.Now()), nil
}

// Result returns the report of a done job. The error distinguishes unknown
// jobs (ErrNotFound) from jobs that exist but have no result yet (nil
// report, nil error — the caller inspects the returned status).
func (s *Server) Result(id string) (Status, *report.Report, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	job, ok := s.jobs[id]
	if !ok {
		return Status{}, nil, ErrNotFound
	}
	return job.snapshot(time.Now()), job.Result, nil
}

// jobHandle returns the live job pointer; tests use it to wait on Done.
func (s *Server) jobHandle(id string) (*Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	job, ok := s.jobs[id]
	if !ok {
		return nil, ErrNotFound
	}
	return job, nil
}

// Cancel requests cancellation. A queued job is retired immediately; a
// running job's context is canceled and the job reaches the canceled state
// once its current simulation cell finishes (the engine is not preempted
// mid-cell so cached partial work stays valid). Canceling a terminal job is
// a no-op. A canceled execution cancels every coalesced submission riding
// on it — they share one job.
func (s *Server) Cancel(id string) (Status, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	job, ok := s.jobs[id]
	if !ok {
		return Status{}, ErrNotFound
	}
	now := time.Now()
	switch job.State {
	case StateQueued:
		job.State = StateCanceled
		job.Err = errJobCanceled.Error()
		job.FinishedAt = now
		if s.inflight[job.Hash] == job {
			delete(s.inflight, job.Hash)
		}
		s.jobsCancd.Add(1)
		close(job.done)
		s.retireLocked(job)
	case StateRunning:
		job.cancel(errJobCanceled)
	}
	return job.snapshot(now), nil
}

// worker drains the queue until Shutdown closes it.
func (s *Server) worker() {
	defer s.wg.Done()
	for job := range s.queue {
		s.runJob(job)
	}
}

// runJob executes one queued job through the configured executor.
func (s *Server) runJob(job *Job) {
	s.mu.Lock()
	if job.State != StateQueued { // canceled while waiting
		s.mu.Unlock()
		return
	}
	job.State = StateRunning
	job.StartedAt = time.Now()
	ctx, cancel := context.WithCancelCause(s.baseCtx)
	job.cancel = cancel
	s.mu.Unlock()
	defer cancel(nil)

	s.busy.Add(1)
	defer s.busy.Add(-1)

	runCtx := ctx
	if s.cfg.JobTimeout > 0 {
		var tcancel context.CancelFunc
		runCtx, tcancel = context.WithTimeout(ctx, s.cfg.JobTimeout)
		defer tcancel()
	}
	runCtx = experiments.WithCellObserver(runCtx, func() { job.cellsDone.Add(1) })

	res, err := s.cfg.Execute(runCtx, job.Spec)
	s.finishJob(job, runCtx, res, err)
}

// finishJob moves a running job to its terminal state and accounts for it.
func (s *Server) finishJob(job *Job, runCtx context.Context, res *report.Report, err error) {
	now := time.Now()
	cause := context.Cause(runCtx)

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.inflight[job.Hash] == job {
		delete(s.inflight, job.Hash)
	}
	job.FinishedAt = now
	s.execSeconds += now.Sub(job.StartedAt).Seconds()

	switch {
	case errors.Is(cause, errJobCanceled):
		// User cancel wins even over a result that squeaked through.
		job.State = StateCanceled
		job.Err = errJobCanceled.Error()
		s.jobsCancd.Add(1)
	case err == nil:
		job.State = StateDone
		job.Result = res
		s.cache.put(job.Hash, res)
		s.jobsDone.Add(1)
	case errors.Is(err, context.DeadlineExceeded):
		job.State = StateFailed
		job.Err = fmt.Sprintf("job exceeded timeout %v", s.cfg.JobTimeout)
		s.jobsFailed.Add(1)
	case errors.Is(err, context.Canceled):
		// Server drain deadline forced the abort.
		job.State = StateCanceled
		job.Err = "canceled: " + cause.Error()
		s.jobsCancd.Add(1)
	default:
		job.State = StateFailed
		job.Err = err.Error()
		s.jobsFailed.Add(1)
	}
	close(job.done)
	s.retireLocked(job)
}

// retireLocked records a terminal job and prunes the oldest ones beyond the
// retention bound. Callers hold s.mu.
func (s *Server) retireLocked(job *Job) {
	s.terminal = append(s.terminal, job.ID)
	for len(s.terminal) > s.cfg.RetainJobs {
		delete(s.jobs, s.terminal[0])
		s.terminal = s.terminal[1:]
	}
}

// Metrics snapshots the operational counters.
func (s *Server) Metrics() Metrics {
	s.mu.Lock()
	execSeconds := s.execSeconds
	cacheEntries := s.cache.len()
	s.mu.Unlock()
	return Metrics{
		UptimeSeconds: time.Since(s.start).Seconds(),
		Workers:       s.cfg.Workers,
		BusyWorkers:   int(s.busy.Load()),
		QueueDepth:    len(s.queue),
		QueueCapacity: s.cfg.QueueDepth,

		JobsSubmitted: s.submitted.Load(),
		JobsDone:      s.jobsDone.Load(),
		JobsFailed:    s.jobsFailed.Load(),
		JobsCanceled:  s.jobsCancd.Load(),
		JobsRejected:  s.rejected.Load(),
		JobsCoalesced: s.coalesced.Load(),

		ResultCacheHits:    s.cacheHits.Load(),
		ResultCacheMisses:  s.cacheMisses.Load(),
		ResultCacheEntries: cacheEntries,

		ExecSecondsTotal: execSeconds,
		RunnerCache:      experiments.Default.CacheStats(),
	}
}

// RetryAfterSeconds estimates when a rejected submission is worth retrying:
// the queue's expected drain time given the mean execution so far, clamped
// to [1s, 300s]. With no history it answers 1.
func (s *Server) RetryAfterSeconds() int {
	executed := s.jobsDone.Load() + s.jobsFailed.Load()
	if executed == 0 {
		return 1
	}
	s.mu.Lock()
	mean := s.execSeconds / float64(executed)
	s.mu.Unlock()
	est := mean * float64(len(s.queue)) / float64(s.cfg.Workers)
	switch {
	case est < 1:
		return 1
	case est > 300:
		return 300
	}
	return int(est + 0.5)
}

// Shutdown drains the service: new submissions are refused, queued jobs are
// canceled, and running jobs get until ctx's deadline to finish. If the
// deadline expires the jobs' contexts are canceled (they abort at the next
// cell boundary) and Shutdown reports ctx's error; a clean drain returns
// nil. Shutdown is idempotent.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		// Cancel everything still waiting; workers skip canceled jobs.
	drain:
		for {
			select {
			case job := <-s.queue:
				if job.State == StateQueued {
					job.State = StateCanceled
					job.Err = ErrShuttingDown.Error()
					job.FinishedAt = time.Now()
					if s.inflight[job.Hash] == job {
						delete(s.inflight, job.Hash)
					}
					s.jobsCancd.Add(1)
					close(job.done)
					s.retireLocked(job)
				}
			default:
				break drain
			}
		}
		close(s.queue)
	}
	s.mu.Unlock()

	finished := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(finished)
	}()
	select {
	case <-finished:
		return nil
	case <-ctx.Done():
		s.baseCancel(fmt.Errorf("drain deadline: %w", ctx.Err()))
		<-finished
		return ctx.Err()
	}
}

// resultCache is the content-addressed result store: canonical spec hash ->
// report, bounded FIFO. Methods are not self-locking; the Server's mutex
// guards them.
type resultCache struct {
	max     int
	entries map[string]*report.Report
	order   []string
}

func newResultCache(max int) *resultCache {
	return &resultCache{max: max, entries: map[string]*report.Report{}}
}

func (c *resultCache) get(hash string) (*report.Report, bool) {
	res, ok := c.entries[hash]
	return res, ok
}

func (c *resultCache) put(hash string, res *report.Report) {
	if _, ok := c.entries[hash]; ok {
		c.entries[hash] = res
		return
	}
	c.entries[hash] = res
	c.order = append(c.order, hash)
	for len(c.order) > c.max {
		delete(c.entries, c.order[0])
		c.order = c.order[1:]
	}
}

func (c *resultCache) len() int { return len(c.entries) }
