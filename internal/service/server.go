package service

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"gps/internal/experiments"
	"gps/internal/faultinject"
	"gps/internal/obs"
	"gps/internal/report"
	"gps/internal/retry"
)

// Sentinel errors the HTTP layer maps onto status codes.
var (
	// ErrQueueFull is returned when admission control rejects a submission
	// because the bounded queue is saturated (HTTP 429).
	ErrQueueFull = errors.New("service: job queue full")
	// ErrShuttingDown is returned for submissions after drain began (503).
	ErrShuttingDown = errors.New("service: shutting down")
	// ErrNotFound is returned for unknown (or pruned) job IDs (404).
	ErrNotFound = errors.New("service: no such job")
)

// errJobCanceled is the cancellation cause installed by Cancel, so the
// worker can tell a user cancel from a timeout or a server drain.
var errJobCanceled = errors.New("service: job canceled by request")

// Outcome classifies what Submit did with a spec.
type Outcome int

const (
	// OutcomeAccepted: a new job was queued for execution.
	OutcomeAccepted Outcome = iota
	// OutcomeCoalesced: an identical spec is already queued or running; the
	// submission rides on that execution (single-flight).
	OutcomeCoalesced
	// OutcomeCached: the result was served from the content-addressed cache
	// without any execution; the returned job is born done.
	OutcomeCached
)

// Config sizes a Server. Zero values take the documented defaults.
type Config struct {
	// Workers is the number of jobs executed concurrently (default 2).
	// Each job additionally fans its cells out on the experiments runner's
	// own pool, so total CPU use is Workers x runner parallelism.
	Workers int
	// QueueDepth bounds the admission queue (default 16). Submissions
	// beyond running+queued capacity get ErrQueueFull.
	QueueDepth int
	// JobTimeout caps one job's execution (default 0: unlimited). A timed
	// out job fails; its in-flight simulation cells finish and are kept in
	// the runner caches, so a resubmission resumes cheaply.
	JobTimeout time.Duration
	// CacheEntries bounds the content-addressed result cache (default 256,
	// FIFO eviction).
	CacheEntries int
	// RetainJobs bounds how many terminal jobs stay queryable (default
	// 1024, oldest pruned first) so a long-lived daemon's job store cannot
	// grow without bound.
	RetainJobs int
	// Execute runs one canonical spec. Defaults to Execute (the shared
	// experiments runner); tests substitute stubs to script timing.
	Execute ExecuteFunc

	// NodeID, when non-empty, names this node in a gpsd cluster: job IDs
	// become "<node>-j-NNNNNN" so any peer can route a read to the owning
	// node from the ID alone, and the node appears on job snapshots, logs,
	// and spans. Empty — the default — is single-node operation with the
	// classic "j-NNNNNN" IDs.
	NodeID string
	// RemoteResult, when non-nil, is consulted once per job right before
	// the first execution attempt: if any peer's content-addressed cache
	// already holds the canonical hash, the job completes with that report
	// and the engine never runs. The cluster layer wires this to
	// GET /v1/peer/results/{hash} across live peers; nil skips the lookup.
	RemoteResult func(ctx context.Context, hash string) *report.Report
	// StealTimeout bounds how long a stolen job may stay checked out to a
	// thief node before the victim reclaims and re-enqueues it (default
	// 2m). Completions arriving after the reclaim are dropped.
	StealTimeout time.Duration
	// Reconcile, when non-nil, is the resurrection handshake: it is asked
	// about every journal-recovered pending job before it is re-enqueued.
	// Returning "" replays the job locally as usual; returning a node ID
	// delegates it — the job registers as running on that peer (the cluster
	// layer drives its completion) instead of executing a second time here.
	// A node returning from the dead uses this to reconcile against the
	// successor that took its jobs over while it was gone.
	Reconcile func(p PendingJob) string

	// JobRetry schedules job-level re-execution: a job whose attempt fails
	// with a retryable error (injected faults, explicitly transient errors)
	// re-runs up to MaxAttempts times with backoff. The zero value never
	// retries. Deterministic failures are not retried regardless.
	JobRetry retry.Policy
	// Sleeper overrides the backoff sleep between job attempts (tests make
	// schedules instant). nil uses retry.Sleep.
	Sleeper retry.Sleeper
	// FaultHook threads deterministic fault injection through the worker
	// dispatch ("service.dispatch") and result-cache commit
	// ("service.cache.put") sites. nil — the production default — costs
	// one nil-check per site.
	FaultHook faultinject.Hook
	// Journal, when non-nil, makes jobs durable: submit/start/terminal
	// transitions are fsynced to it, and New re-enqueues whatever the
	// journal says was queued or running when the last process died.
	Journal *Journal

	// Logger receives structured job lifecycle records (submit, start,
	// terminal transitions, per-cell progress at debug level), all
	// correlated by job_id. nil discards them.
	Logger *slog.Logger
	// Registry, when non-nil, exposes the server's operational counters as
	// Prometheus metrics and records job wait/execution latency
	// histograms. nil — the default — costs nothing.
	Registry *obs.Registry
	// TraceDir, when non-empty, writes one Perfetto-loadable span trace per
	// executed job to TraceDir/<job-id>.trace.json: the job span, one span
	// per figure/section, one per matrix cell, and the trace-build /
	// engine-replay / render phases inside each cell.
	TraceDir string
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 256
	}
	if c.RetainJobs <= 0 {
		c.RetainJobs = 1024
	}
	if c.Execute == nil {
		c.Execute = Execute
	}
	if c.JobRetry.MaxAttempts < 1 {
		c.JobRetry.MaxAttempts = 1
	}
	if c.Sleeper == nil {
		c.Sleeper = retry.Sleep
	}
	if c.StealTimeout <= 0 {
		c.StealTimeout = 2 * time.Minute
	}
	if c.Logger == nil {
		c.Logger = obs.Nop()
	}
	return c
}

// Metrics is the operational snapshot of /v1/metrics.
type Metrics struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	Workers       int     `json:"workers"`
	BusyWorkers   int     `json:"busy_workers"`
	QueueDepth    int     `json:"queue_depth"`
	QueueCapacity int     `json:"queue_capacity"`

	JobsSubmitted uint64 `json:"jobs_submitted"`
	JobsDone      uint64 `json:"jobs_done"`
	JobsFailed    uint64 `json:"jobs_failed"`
	JobsCanceled  uint64 `json:"jobs_canceled"`
	JobsRejected  uint64 `json:"jobs_rejected"`
	JobsCoalesced uint64 `json:"jobs_coalesced"`

	// Resilience counters: how much the retry/fence/journal machinery
	// absorbed. JobRetries counts extra job attempts beyond the first,
	// JobPanics counts panics recovered at job scope, JobsReplayed counts
	// journal-recovered jobs re-enqueued at startup.
	JobRetries             uint64 `json:"job_retries"`
	JobPanics              uint64 `json:"job_panics"`
	JobsReplayed           uint64 `json:"jobs_replayed"`
	ResultCacheWriteErrors uint64 `json:"result_cache_write_errors"`
	JournalRecords         uint64 `json:"journal_records,omitempty"`

	// Cluster counters (zero on a single-node daemon): jobs handed to a
	// thief peer, stolen jobs completed by the thief, stolen jobs reclaimed
	// after the steal timeout, and jobs answered from a peer's cache
	// instead of executing.
	JobsStolen      uint64 `json:"jobs_stolen,omitempty"`
	StealsCompleted uint64 `json:"steals_completed,omitempty"`
	StealReclaims   uint64 `json:"steal_reclaims,omitempty"`
	JobsPeerFetched uint64 `json:"jobs_peer_fetched,omitempty"`
	JobsAdopted     uint64 `json:"jobs_adopted,omitempty"`

	ResultCacheHits    uint64 `json:"result_cache_hits"`
	ResultCacheMisses  uint64 `json:"result_cache_misses"`
	ResultCacheEntries int    `json:"result_cache_entries"`

	// JobsInFlight counts queued+running (non-terminal) jobs.
	JobsInFlight int `json:"jobs_in_flight"`

	ExecSecondsTotal float64 `json:"exec_seconds_total"`

	// Latency summaries from the RED histograms: end-to-end submit→terminal,
	// queue wait, and execution wall time. Nil until the first observation.
	JobE2E  *obs.HistSummary `json:"job_e2e,omitempty"`
	JobWait *obs.HistSummary `json:"job_wait,omitempty"`
	JobExec *obs.HistSummary `json:"job_exec,omitempty"`

	// RunnerCache exposes the memoization counters of the underlying
	// experiments runner (traces, structural replays, baselines).
	RunnerCache experiments.CacheStats `json:"runner_cache"`
	// RunnerResilience exposes the runner's cell-level fence/retry
	// counters (panics converted to CellError, cell attempts retried).
	RunnerResilience experiments.ResilienceStats `json:"runner_resilience"`
}

// Server is the simulation-as-a-service core: admission control in front of
// a bounded FIFO queue, a worker pool draining it, single-flight coalescing
// of duplicate in-flight specs, and a content-addressed result cache.
type Server struct {
	cfg   Config
	start time.Time

	baseCtx    context.Context // canceled only when a drain deadline forces abort
	baseCancel context.CancelCauseFunc
	queue      chan *Job
	wg         sync.WaitGroup
	busy       atomic.Int64

	logger   *slog.Logger
	draining atomic.Bool
	// jobWait and jobExec are latency histograms bound to cfg.Registry;
	// with no registry they are plain unregistered histograms (see
	// obs.Registry nil semantics), so the observe path never branches.
	jobWait *obs.Histogram
	jobExec *obs.Histogram
	// jobE2E measures submit→terminal for every job retiring on this node,
	// whichever path got it there (executed, cached, stolen, adopted,
	// canceled) — the cluster-wide RED latency signal.
	jobE2E *obs.Histogram

	mu       sync.Mutex
	closed   bool
	seq      uint64
	jobs     map[string]*Job
	inflight map[string]*Job // canonical hash -> queued/running job
	cache    *resultCache
	terminal []string // terminal job IDs in completion order, for pruning

	submitted, rejected, coalesced  atomic.Uint64
	jobsDone, jobsFailed, jobsCancd atomic.Uint64
	cacheHits, cacheMisses          atomic.Uint64
	jobRetries, jobPanics           atomic.Uint64
	replayed, cacheWriteErrs        atomic.Uint64
	jobsStolen, stealsCompleted     atomic.Uint64
	stealReclaims, peerFetched      atomic.Uint64
	jobsAdopted                     atomic.Uint64
	execSeconds                     float64 // guarded by mu
}

// New builds a Server and starts its worker pool. With a journal
// configured, jobs the journal says were queued or running when the last
// process died are re-enqueued first, under their original IDs, so clients
// can keep polling the handles they already hold.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	var pending []PendingJob
	if cfg.Journal != nil {
		pending = cfg.Journal.TakePending()
	}
	ctx, cancel := context.WithCancelCause(context.Background())
	s := &Server{
		cfg:        cfg,
		start:      time.Now(),
		baseCtx:    ctx,
		baseCancel: cancel,
		logger:     cfg.Logger,
		jobWait:    cfg.Registry.Histogram("gpsd_job_wait_seconds", "Time jobs spend queued before a worker picks them up.", nil),
		jobExec:    cfg.Registry.Histogram("gpsd_job_exec_seconds", "Wall-clock execution time of finished jobs.", nil),
		jobE2E:     cfg.Registry.Histogram("gpsd_job_e2e_seconds", "End-to-end submit to terminal-state latency of jobs retiring on this node.", nil),
		// Replayed jobs ride on extra capacity so recovery can never be
		// rejected by admission control.
		queue:    make(chan *Job, cfg.QueueDepth+len(pending)),
		jobs:     map[string]*Job{},
		inflight: map[string]*Job{},
		cache:    newResultCache(cfg.CacheEntries),
	}
	s.replayPending(pending)
	s.registerMetrics(cfg.Registry)
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// registerMetrics binds the server's existing atomic counters into the
// registry as sampled-at-scrape series, so the Prometheus endpoint and the
// JSON /v1/metrics read the same state with no double bookkeeping. A nil
// registry is a no-op.
func (s *Server) registerMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	u64 := func(f func() uint64) func() float64 {
		return func() float64 { return float64(f()) }
	}
	reg.GaugeFunc("gpsd_uptime_seconds", "Seconds since the server started.",
		func() float64 { return time.Since(s.start).Seconds() })
	reg.GaugeFunc("gpsd_workers", "Configured worker pool size.",
		func() float64 { return float64(s.cfg.Workers) })
	reg.GaugeFunc("gpsd_busy_workers", "Workers currently executing a job.",
		func() float64 { return float64(s.busy.Load()) })
	reg.GaugeFunc("gpsd_queue_depth", "Jobs waiting in the admission queue.",
		func() float64 { return float64(len(s.queue)) })
	reg.GaugeFunc("gpsd_queue_capacity", "Admission queue bound.",
		func() float64 { return float64(s.cfg.QueueDepth) })
	reg.GaugeFunc("gpsd_draining", "1 while a graceful drain is in progress.",
		func() float64 {
			if s.Draining() {
				return 1
			}
			return 0
		})

	jobs := func(event string, f func() uint64) {
		reg.CounterFunc("gpsd_jobs_total", "Job lifecycle events by kind.", u64(f), "event", event)
	}
	jobs("submitted", s.submitted.Load)
	jobs("done", s.jobsDone.Load)
	jobs("failed", s.jobsFailed.Load)
	jobs("canceled", s.jobsCancd.Load)
	jobs("rejected", s.rejected.Load)
	jobs("coalesced", s.coalesced.Load)
	jobs("retried", s.jobRetries.Load)
	jobs("panicked", s.jobPanics.Load)
	jobs("replayed", s.replayed.Load)
	jobs("stolen", s.jobsStolen.Load)
	jobs("steal_completed", s.stealsCompleted.Load)
	jobs("steal_reclaimed", s.stealReclaims.Load)
	jobs("peer_fetched", s.peerFetched.Load)
	jobs("adopted", s.jobsAdopted.Load)

	reg.CounterFunc("gpsd_result_cache_hits_total", "Submissions answered from the result cache.", u64(s.cacheHits.Load))
	reg.CounterFunc("gpsd_result_cache_misses_total", "Submissions that required execution.", u64(s.cacheMisses.Load))
	reg.CounterFunc("gpsd_result_cache_write_errors_total", "Result cache commits that failed.", u64(s.cacheWriteErrs.Load))
	reg.GaugeFunc("gpsd_result_cache_entries", "Resident result cache entries.",
		func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(s.cache.len())
		})
	reg.CounterFunc("gpsd_exec_seconds_total", "Total wall-clock seconds spent executing jobs.",
		func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return s.execSeconds
		})
	reg.CounterFunc("gpsd_journal_records_total", "Journal records appended by this process.",
		u64(func() uint64 { return s.cfg.Journal.Records() }))

	// The shared experiments runner: memoization and resilience counters.
	cache := func(name, help string, f func(experiments.CacheStats) uint64) {
		reg.CounterFunc(name, help, func() float64 {
			return float64(f(experiments.Default.CacheStats()))
		})
	}
	cache("gps_runner_trace_builds_total", "Traces generated and materialized.",
		func(c experiments.CacheStats) uint64 { return c.TraceBuilds })
	cache("gps_runner_trace_hits_total", "Trace requests served from cache.",
		func(c experiments.CacheStats) uint64 { return c.TraceHits })
	cache("gps_runner_trace_evictions_total", "Traces evicted to respect the budget.",
		func(c experiments.CacheStats) uint64 { return c.TraceEvictions })
	cache("gps_runner_engine_runs_total", "Structural replays executed.",
		func(c experiments.CacheStats) uint64 { return c.EngineRuns })
	cache("gps_runner_engine_hits_total", "Structural results served from cache.",
		func(c experiments.CacheStats) uint64 { return c.EngineHits })
	cache("gps_runner_baseline_runs_total", "Baseline simulations executed.",
		func(c experiments.CacheStats) uint64 { return c.BaselineRuns })
	cache("gps_runner_baseline_hits_total", "Baseline requests served from cache.",
		func(c experiments.CacheStats) uint64 { return c.BaselineHits })
	cache("gps_runner_sharded_replays_total", "Structural replays executed with more than one shard.",
		func(c experiments.CacheStats) uint64 { return c.ShardedRuns })
	cache("gps_runner_trace_spills_total", "Traces whose columnar blocks moved to the spill file.",
		func(c experiments.CacheStats) uint64 { return c.TraceSpills })
	cache("gps_runner_spill_block_reads_total", "Trace block reads served from the spill file.",
		func(c experiments.CacheStats) uint64 { return c.SpillBlockReads })
	cache("gps_runner_spill_read_bytes_total", "Bytes read back from the spill file.",
		func(c experiments.CacheStats) uint64 { return c.SpillReadBytes })
	reg.GaugeFunc("gps_runner_shards", "Goroutines per structural replay.",
		func() float64 { return float64(experiments.Shards()) })
	reg.GaugeFunc("gps_runner_trace_cache_bytes", "Approximate resident bytes of cached traces (compressed columnar blocks).",
		func() float64 { return float64(experiments.Default.CacheStats().TraceBytes) })
	reg.GaugeFunc("gps_runner_trace_logical_bytes", "Flat-layout bytes the resident traces would occupy uncompressed.",
		func() float64 { return float64(experiments.Default.CacheStats().TraceLogicalBytes) })
	reg.GaugeFunc("gps_runner_trace_spill_bytes", "Compressed bytes written to the trace spill file.",
		func() float64 { return float64(experiments.Default.CacheStats().TraceSpillBytes) })
	reg.CounterFunc("gps_runner_cell_panics_total", "Matrix cells that panicked and were fenced.",
		func() float64 { return float64(experiments.Default.ResilienceStats().CellPanics) })
	reg.CounterFunc("gps_runner_cell_retries_total", "Matrix cell attempts retried after transient failures.",
		func() float64 { return float64(experiments.Default.ResilienceStats().CellRetries) })
}

// Draining reports whether a graceful shutdown is in progress (or done):
// new submissions are refused and /v1/healthz flips to "draining".
func (s *Server) Draining() bool { return s.draining.Load() }

// NodeID reports the configured cluster node identity ("" single-node).
func (s *Server) NodeID() string { return s.cfg.NodeID }

// replayPending re-enqueues journal-recovered jobs. Runs before the worker
// pool starts, so no locking is needed yet.
func (s *Server) replayPending(pending []PendingJob) {
	now := time.Now()
	for _, p := range pending {
		canon, err := p.Spec.Canonicalize()
		if err != nil {
			// The journaled spec no longer validates (e.g. a workload was
			// removed). Close it out so compaction drops it next boot.
			s.cfg.Journal.record(OpFail, p.ID, nil, nil, "replay: "+err.Error()) //nolint:errcheck // best-effort close-out
			continue
		}
		hash := canon.Hash()
		if _, ok := s.inflight[hash]; ok {
			s.cfg.Journal.record(OpCancel, p.ID, nil, nil, "replay: duplicate of recovered spec") //nolint:errcheck // best-effort close-out
			continue
		}
		if n := jobSeq(p.ID); n > s.seq {
			s.seq = n
		}
		job := &Job{
			ID:          p.ID,
			Hash:        hash,
			Node:        s.cfg.NodeID,
			Spec:        canon,
			Trace:       p.Trace,
			State:       StateQueued,
			Replayed:    true,
			SubmittedAt: now,
			done:        make(chan struct{}),
		}
		if job.Trace.TraceID == "" {
			// Journals written before trace identity existed: mint one so the
			// replayed execution still traces end to end.
			job.Trace = obs.NewJobTrace(obs.TraceContext{})
		}
		if s.cfg.Reconcile != nil {
			if delegate := s.cfg.Reconcile(p); delegate != "" {
				// The successor adopted this job while we were dead. Register
				// it as running there — exactly the shape of a stolen job, so
				// cancel, the reclaim watchdog, and CompleteStolen all work
				// unchanged — and let the cluster's delegation watcher land
				// the successor's outcome (or reclaim on successor death).
				job.State = StateRunning
				job.StolenBy = delegate
				job.StartedAt = now
				job.stealTimer = time.AfterFunc(s.cfg.StealTimeout, func() { s.reclaimStolen(job) })
				s.jobs[job.ID] = job
				s.inflight[hash] = job
				s.replayed.Add(1)
				s.logger.Info("job delegated to takeover successor",
					"job_id", job.ID, "hash", hash, "successor", delegate)
				continue
			}
		}
		s.jobs[job.ID] = job
		s.inflight[hash] = job
		s.queue <- job
		s.replayed.Add(1)
		s.logger.Info("job replayed from journal", "job_id", job.ID, "hash", hash)
	}
}

// jobSeq parses the numeric suffix of a job ID ("j-000042" -> 42,
// "node1-j-000042" -> 42) so the sequence counter resumes past replayed
// IDs; malformed IDs answer 0.
func jobSeq(id string) uint64 {
	if i := strings.LastIndex(id, "j-"); i >= 0 {
		id = id[i+len("j-"):]
	}
	n, err := strconv.ParseUint(id, 10, 64)
	if err != nil {
		return 0
	}
	return n
}

// JobNode extracts the node prefix of a cluster job ID ("node1-j-000042" ->
// "node1"); single-node IDs ("j-000042") answer "". The cluster layer uses
// it to route status and result reads to the owning node.
func JobNode(id string) string {
	i := strings.LastIndex(id, "-j-")
	if i < 0 {
		return ""
	}
	return id[:i]
}

// Submit admits one spec. It returns the job snapshot to poll plus what
// happened: accepted (new execution queued), coalesced (identical spec
// already in flight — the same job serves both), or cached (the canonical
// hash hit the result cache and the job is born done, no execution).
func (s *Server) Submit(spec Spec) (Status, Outcome, error) {
	return s.SubmitTraced(spec, obs.TraceContext{})
}

// SubmitTraced is Submit under a distributed trace parent: the job's trace
// identity continues parent's trace (minting a fresh one when parent is
// zero). Coalesced and cached submissions keep the identity of the job that
// serves them — the caller can link via the snapshot's trace field.
func (s *Server) SubmitTraced(spec Spec, parent obs.TraceContext) (Status, Outcome, error) {
	canon, err := spec.Canonicalize()
	if err != nil {
		return Status{}, OutcomeAccepted, err
	}
	hash := canon.Hash()
	now := time.Now()

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return Status{}, OutcomeAccepted, ErrShuttingDown
	}

	if res, ok := s.cache.get(hash); ok {
		s.cacheHits.Add(1)
		s.submitted.Add(1)
		job := s.newJobLocked(canon, hash, now, parent)
		job.State = StateDone
		job.CacheHit = true
		job.StartedAt, job.FinishedAt = now, now
		job.Result = res
		close(job.done)
		s.retireLocked(job)
		s.jobsDone.Add(1)
		s.logger.Info("job cached", "job_id", job.ID, "hash", hash)
		return job.snapshot(now), OutcomeCached, nil
	}

	if leader, ok := s.inflight[hash]; ok {
		leader.Coalesced++
		s.coalesced.Add(1)
		s.logger.Info("job coalesced", "job_id", leader.ID, "hash", hash, "riders", leader.Coalesced)
		return leader.snapshot(now), OutcomeCoalesced, nil
	}

	job := s.newJobLocked(canon, hash, now, parent)
	select {
	case s.queue <- job:
	default:
		delete(s.jobs, job.ID)
		s.rejected.Add(1)
		s.logger.Warn("job rejected: queue full", "hash", hash)
		return Status{}, OutcomeAccepted, ErrQueueFull
	}
	s.inflight[hash] = job
	if jerr := s.cfg.Journal.record(OpSubmit, job.ID, &job.Spec, &job.Trace, ""); jerr != nil {
		// Durability is the contract: a submission we cannot journal is
		// refused. The job is voided under the lock before any worker can
		// run it (workers skip non-queued jobs).
		job.State = StateCanceled
		delete(s.jobs, job.ID)
		delete(s.inflight, hash)
		s.rejected.Add(1)
		return Status{}, OutcomeAccepted, jerr
	}
	s.submitted.Add(1)
	s.cacheMisses.Add(1)
	s.logger.Info("job accepted", "job_id", job.ID, "hash", hash, "queue_depth", len(s.queue))
	return job.snapshot(now), OutcomeAccepted, nil
}

// newJobLocked allocates and registers a queued job with a trace identity
// minted under parent. Callers hold s.mu.
func (s *Server) newJobLocked(spec Spec, hash string, now time.Time, parent obs.TraceContext) *Job {
	s.seq++
	id := fmt.Sprintf("j-%06d", s.seq)
	if s.cfg.NodeID != "" {
		id = s.cfg.NodeID + "-" + id
	}
	job := &Job{
		ID:          id,
		Hash:        hash,
		Node:        s.cfg.NodeID,
		Spec:        spec,
		Trace:       obs.NewJobTrace(parent),
		State:       StateQueued,
		SubmittedAt: now,
		done:        make(chan struct{}),
	}
	s.jobs[job.ID] = job
	return job
}

// Job returns the snapshot of one job.
func (s *Server) Job(id string) (Status, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	job, ok := s.jobs[id]
	if !ok {
		return Status{}, ErrNotFound
	}
	return job.snapshot(time.Now()), nil
}

// Result returns the report of a done job. The error distinguishes unknown
// jobs (ErrNotFound) from jobs that exist but have no result yet (nil
// report, nil error — the caller inspects the returned status).
func (s *Server) Result(id string) (Status, *report.Report, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	job, ok := s.jobs[id]
	if !ok {
		return Status{}, nil, ErrNotFound
	}
	return job.snapshot(time.Now()), job.Result, nil
}

// jobHandle returns the live job pointer; tests use it to wait on Done.
func (s *Server) jobHandle(id string) (*Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	job, ok := s.jobs[id]
	if !ok {
		return nil, ErrNotFound
	}
	return job, nil
}

// Cancel requests cancellation. A queued job is retired immediately; a
// running job's context is canceled and the job reaches the canceled state
// once its current simulation cell finishes (the engine is not preempted
// mid-cell so cached partial work stays valid). Canceling a terminal job is
// a no-op. A canceled execution cancels every coalesced submission riding
// on it — they share one job.
func (s *Server) Cancel(id string) (Status, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	job, ok := s.jobs[id]
	if !ok {
		return Status{}, ErrNotFound
	}
	now := time.Now()
	switch job.State {
	case StateQueued:
		job.State = StateCanceled
		job.Err = errJobCanceled.Error()
		job.FinishedAt = now
		if s.inflight[job.Hash] == job {
			delete(s.inflight, job.Hash)
		}
		s.jobsCancd.Add(1)
		s.cfg.Journal.record(OpCancel, job.ID, nil, nil, job.Err) //nolint:errcheck // terminal close-out; replay would just re-cancel
		close(job.done)
		s.retireLocked(job)
		s.logger.Info("job canceled while queued", "job_id", job.ID)
	case StateRunning:
		if job.cancel == nil {
			// Stolen by a peer: there is no local execution to preempt.
			// Cancel the job here; the thief's late completion is dropped.
			s.stopStealTimerLocked(job)
			job.State = StateCanceled
			job.Err = errJobCanceled.Error()
			job.FinishedAt = now
			if s.inflight[job.Hash] == job {
				delete(s.inflight, job.Hash)
			}
			s.jobsCancd.Add(1)
			s.cfg.Journal.record(OpCancel, job.ID, nil, nil, job.Err) //nolint:errcheck // terminal close-out
			close(job.done)
			s.retireLocked(job)
			s.logger.Info("stolen job canceled", "job_id", job.ID, "thief", job.StolenBy)
			break
		}
		s.logger.Info("cancel requested", "job_id", job.ID)
		job.cancel(errJobCanceled)
	}
	return job.snapshot(now), nil
}

// worker drains the queue until Shutdown closes it. Each job runs under a
// worker-scope recover so even a panic in the scheduling machinery fails
// one job, not the pool.
func (s *Server) worker() {
	defer s.wg.Done()
	for job := range s.queue {
		s.runJobIsolated(job)
	}
}

// runJobIsolated is the worker's outer panic fence. The inner fence in
// executeOnce converts executor panics into per-attempt errors; this one is
// the backstop that keeps the worker goroutine alive and the job terminal
// if anything outside the executor blows up.
func (s *Server) runJobIsolated(job *Job) {
	defer func() {
		if p := recover(); p != nil {
			s.jobPanics.Add(1)
			s.failPanickedJob(job, panicToError(p))
		}
	}()
	s.runJob(job)
}

// failPanickedJob forces a job whose worker panicked outside the executor
// fence into the failed state, so waiters never hang on a job the pool
// abandoned.
func (s *Server) failPanickedJob(job *Job, cause error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.inflight[job.Hash] == job {
		delete(s.inflight, job.Hash)
	}
	if !job.State.Terminal() {
		job.State = StateFailed
		job.Err = cause.Error()
		job.FinishedAt = time.Now()
		s.jobsFailed.Add(1)
		s.cfg.Journal.record(OpFail, job.ID, nil, nil, job.Err) //nolint:errcheck // terminal close-out
		s.retireLocked(job)
	}
	select {
	case <-job.done:
	default:
		close(job.done)
	}
}

// runJob executes one queued job through the configured executor, retrying
// attempts that fail with a retryable (injected or transient) error under
// the job retry policy.
func (s *Server) runJob(job *Job) {
	s.mu.Lock()
	if job.State != StateQueued { // canceled while waiting
		s.mu.Unlock()
		return
	}
	job.State = StateRunning
	job.StartedAt = time.Now()
	ctx, cancel := context.WithCancelCause(s.baseCtx)
	job.cancel = cancel
	wait := job.StartedAt.Sub(job.SubmittedAt)
	s.mu.Unlock()
	defer cancel(nil)

	s.busy.Add(1)
	defer s.busy.Add(-1)
	if wait < 0 {
		wait = 0
	}
	s.jobWait.Observe(wait.Seconds())
	s.logger.Info("job started", "job_id", job.ID, "wait_seconds", wait.Seconds())

	// Recovery treats queued and started jobs alike, so the start record
	// is informational; its loss is harmless.
	s.cfg.Journal.record(OpStart, job.ID, nil, nil, "") //nolint:errcheck

	runCtx := ctx
	if s.cfg.JobTimeout > 0 {
		var tcancel context.CancelFunc
		runCtx, tcancel = context.WithTimeout(ctx, s.cfg.JobTimeout)
		defer tcancel()
	}
	logger := s.logger
	runCtx = experiments.WithCellObserver(runCtx, func(ev experiments.CellEvent) {
		if ev.Start {
			logger.Debug("cell start", "job_id", job.ID, "cell", ev.Desc)
			return
		}
		if ev.Err == nil {
			job.cellsDone.Add(1)
		}
		logger.Debug("cell done", "job_id", job.ID, "cell", ev.Desc,
			"seconds", ev.Dur.Seconds(), "err", ev.Err)
	})

	// With a trace directory configured every executed job writes its own
	// Perfetto trace. The flusher goroutine is bound to the job's context:
	// a drain-deadline abort cancels it, so the writer can never outlive
	// the job (and Close after that is a no-op).
	if s.cfg.TraceDir != "" {
		if f, err := os.Create(filepath.Join(s.cfg.TraceDir, job.ID+".trace.json")); err != nil {
			s.logger.Warn("job trace disabled", "job_id", job.ID, "err", err)
		} else {
			tracer := obs.NewTracer(runCtx, f)
			tracer.SetProcess(s.cfg.NodeID)
			runCtx = obs.WithTracer(runCtx, tracer)
			kv := []string{"hash", job.Hash}
			if s.cfg.NodeID != "" {
				kv = append(kv, "node_id", s.cfg.NodeID)
			}
			// The job span is emitted under the identity minted at submit —
			// possibly on another node, before a steal or adoption — so the
			// per-node files link into one cross-node trace.
			runCtx = obs.WithTraceContext(runCtx, obs.TraceContext{
				TraceID: job.Trace.TraceID, SpanID: job.Trace.ParentSpanID,
			})
			var jobSpan *obs.Span
			runCtx, jobSpan = obs.StartSpanWithID(runCtx, obs.CatJob, job.ID, job.Trace.SpanID, kv...)
			defer func() {
				jobSpan.End()
				if err := tracer.Close(); err != nil {
					s.logger.Warn("job trace write failed", "job_id", job.ID, "err", err)
				}
				f.Close()
			}()
		}
	}

	// In a cluster, a peer may already hold this spec's result (ownership
	// moved after a node join/leave, or a thief executed it elsewhere): one
	// lookup across live peers before the first execution attempt turns the
	// job into a fetch instead of a replay.
	if s.cfg.RemoteResult != nil {
		if res := s.cfg.RemoteResult(runCtx, job.Hash); res != nil {
			s.peerFetched.Add(1)
			job.PeerFetched = true
			s.logger.Info("job result fetched from peer", "job_id", job.ID, "hash", job.Hash)
			s.finishJob(job, runCtx, res, nil)
			return
		}
	}

	var res *report.Report
	_, err := retry.Do(runCtx, s.cfg.JobRetry, s.cfg.Sleeper, nil, func(attempt int) error {
		job.attempts.Store(uint64(attempt))
		if attempt > 1 {
			s.jobRetries.Add(1)
		}
		r, aerr := s.executeOnce(runCtx, job)
		if aerr != nil {
			return aerr
		}
		res = r
		return nil
	})
	s.finishJob(job, runCtx, res, err)
}

// executeOnce runs one job attempt under the inner panic fence: a
// panicking executor — or a fault-hook panic at the dispatch site — fails
// this attempt with a typed JobError instead of killing the worker. If the
// error classifies as retryable, the attempt loop in runJob re-runs it.
func (s *Server) executeOnce(ctx context.Context, job *Job) (res *report.Report, err error) {
	defer func() {
		if p := recover(); p != nil {
			s.jobPanics.Add(1)
			err = &JobError{ID: job.ID, Stack: truncatedStack(), Err: panicToError(p)}
		}
	}()
	if h := s.cfg.FaultHook; h != nil {
		if herr := h.Hit("service.dispatch"); herr != nil {
			return nil, herr
		}
	}
	return s.cfg.Execute(ctx, job.Spec)
}

// finishJob moves a running job to its terminal state and accounts for it.
func (s *Server) finishJob(job *Job, runCtx context.Context, res *report.Report, err error) {
	now := time.Now()
	cause := context.Cause(runCtx)

	exec := now.Sub(job.StartedAt)
	s.jobExec.Observe(exec.Seconds())

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.inflight[job.Hash] == job {
		delete(s.inflight, job.Hash)
	}
	job.FinishedAt = now
	s.execSeconds += exec.Seconds()

	switch {
	case errors.Is(cause, errJobCanceled):
		// User cancel wins even over a result that squeaked through.
		job.State = StateCanceled
		job.Err = errJobCanceled.Error()
		s.jobsCancd.Add(1)
		s.cfg.Journal.record(OpCancel, job.ID, nil, nil, job.Err) //nolint:errcheck // terminal close-out
	case err == nil:
		job.State = StateDone
		job.Result = res
		if werr := s.cachePutFenced(job.Hash, res); werr != nil {
			// A failed cache commit degrades the result to uncached; the
			// job itself is still done and its result still served.
			s.cacheWriteErrs.Add(1)
		}
		s.jobsDone.Add(1)
		s.cfg.Journal.record(OpDone, job.ID, nil, nil, "") //nolint:errcheck // terminal close-out
	case errors.Is(err, context.DeadlineExceeded):
		job.State = StateFailed
		job.Err = fmt.Sprintf("job exceeded timeout %v", s.cfg.JobTimeout)
		s.jobsFailed.Add(1)
		s.cfg.Journal.record(OpFail, job.ID, nil, nil, job.Err) //nolint:errcheck // terminal close-out
	case errors.Is(err, context.Canceled):
		// Server drain deadline forced the abort.
		job.State = StateCanceled
		job.Err = "canceled: " + cause.Error()
		s.jobsCancd.Add(1)
		s.cfg.Journal.record(OpCancel, job.ID, nil, nil, job.Err) //nolint:errcheck // terminal close-out
	default:
		job.State = StateFailed
		job.Err = err.Error()
		s.jobsFailed.Add(1)
		s.cfg.Journal.record(OpFail, job.ID, nil, nil, job.Err) //nolint:errcheck // terminal close-out
	}
	switch job.State {
	case StateDone:
		s.logger.Info("job done", "job_id", job.ID,
			"exec_seconds", exec.Seconds(), "cells", job.cellsDone.Load(),
			"attempts", job.attempts.Load())
	case StateFailed:
		s.logger.Error("job failed", "job_id", job.ID,
			"exec_seconds", exec.Seconds(), "attempts", job.attempts.Load(), "err", job.Err)
	case StateCanceled:
		s.logger.Info("job canceled", "job_id", job.ID,
			"exec_seconds", exec.Seconds(), "err", job.Err)
	}
	close(job.done)
	s.retireLocked(job)
}

// cachePutFenced commits a result to the content-addressed cache through
// the fault hook ("service.cache.put" site). Both returned errors and
// panics from the commit path degrade to an uncached result rather than a
// failed job. Callers hold s.mu.
func (s *Server) cachePutFenced(hash string, res *report.Report) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = panicToError(p)
		}
	}()
	if h := s.cfg.FaultHook; h != nil {
		if herr := h.Hit("service.cache.put"); herr != nil {
			return herr
		}
	}
	s.cache.put(hash, res)
	return nil
}

// retireLocked records a terminal job and prunes the oldest ones beyond the
// retention bound. Every terminal transition funnels through here exactly
// once, which makes it the single observation point for the end-to-end
// latency histogram. Callers hold s.mu.
func (s *Server) retireLocked(job *Job) {
	if e2e := job.FinishedAt.Sub(job.SubmittedAt); e2e >= 0 {
		s.jobE2E.Observe(e2e.Seconds())
	}
	s.terminal = append(s.terminal, job.ID)
	for len(s.terminal) > s.cfg.RetainJobs {
		delete(s.jobs, s.terminal[0])
		s.terminal = s.terminal[1:]
	}
}

// Metrics snapshots the operational counters.
func (s *Server) Metrics() Metrics {
	s.mu.Lock()
	execSeconds := s.execSeconds
	cacheEntries := s.cache.len()
	inflight := len(s.inflight)
	s.mu.Unlock()
	m := Metrics{
		UptimeSeconds: time.Since(s.start).Seconds(),
		Workers:       s.cfg.Workers,
		BusyWorkers:   int(s.busy.Load()),
		QueueDepth:    len(s.queue),
		QueueCapacity: s.cfg.QueueDepth,

		JobsSubmitted: s.submitted.Load(),
		JobsDone:      s.jobsDone.Load(),
		JobsFailed:    s.jobsFailed.Load(),
		JobsCanceled:  s.jobsCancd.Load(),
		JobsRejected:  s.rejected.Load(),
		JobsCoalesced: s.coalesced.Load(),

		JobRetries:             s.jobRetries.Load(),
		JobPanics:              s.jobPanics.Load(),
		JobsReplayed:           s.replayed.Load(),
		ResultCacheWriteErrors: s.cacheWriteErrs.Load(),
		JournalRecords:         s.cfg.Journal.Records(),

		JobsStolen:      s.jobsStolen.Load(),
		StealsCompleted: s.stealsCompleted.Load(),
		StealReclaims:   s.stealReclaims.Load(),
		JobsPeerFetched: s.peerFetched.Load(),
		JobsAdopted:     s.jobsAdopted.Load(),

		ResultCacheHits:    s.cacheHits.Load(),
		ResultCacheMisses:  s.cacheMisses.Load(),
		ResultCacheEntries: cacheEntries,

		JobsInFlight: inflight,

		ExecSecondsTotal: execSeconds,
		RunnerCache:      experiments.Default.CacheStats(),
		RunnerResilience: experiments.Default.ResilienceStats(),
	}
	if sum := s.jobE2E.Summary(); sum.Count > 0 {
		m.JobE2E = &sum
	}
	if sum := s.jobWait.Summary(); sum.Count > 0 {
		m.JobWait = &sum
	}
	if sum := s.jobExec.Summary(); sum.Count > 0 {
		m.JobExec = &sum
	}
	return m
}

// RetryAfterSeconds estimates when a rejected submission is worth retrying:
// the queue's expected drain time given the mean execution so far, clamped
// to [1s, 300s]. With no history it answers 1.
func (s *Server) RetryAfterSeconds() int {
	executed := s.jobsDone.Load() + s.jobsFailed.Load()
	if executed == 0 {
		return 1
	}
	s.mu.Lock()
	mean := s.execSeconds / float64(executed)
	s.mu.Unlock()
	est := mean * float64(len(s.queue)) / float64(s.cfg.Workers)
	switch {
	case est < 1:
		return 1
	case est > 300:
		return 300
	}
	return int(est + 0.5)
}

// Shutdown drains the service: new submissions are refused, queued jobs are
// canceled, and running jobs get until ctx's deadline to finish. If the
// deadline expires the jobs' contexts are canceled (they abort at the next
// cell boundary) and Shutdown reports ctx's error; a clean drain returns
// nil. Shutdown is idempotent.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		s.logger.Info("draining", "queued", len(s.queue), "busy", s.busy.Load())
		// Cancel everything still waiting; workers skip canceled jobs.
	drain:
		for {
			select {
			case job := <-s.queue:
				if job.State == StateQueued {
					job.State = StateCanceled
					job.Err = ErrShuttingDown.Error()
					job.FinishedAt = time.Now()
					if s.inflight[job.Hash] == job {
						delete(s.inflight, job.Hash)
					}
					s.jobsCancd.Add(1)
					s.cfg.Journal.record(OpCancel, job.ID, nil, nil, job.Err) //nolint:errcheck // drain close-out
					close(job.done)
					s.retireLocked(job)
				}
			default:
				break drain
			}
		}
		close(s.queue)
	}
	s.mu.Unlock()

	finished := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(finished)
	}()
	select {
	case <-finished:
		s.logger.Info("drained")
		return nil
	case <-ctx.Done():
		s.baseCancel(fmt.Errorf("drain deadline: %w", ctx.Err()))
		<-finished
		s.logger.Warn("drain deadline expired; running jobs aborted", "err", ctx.Err())
		return ctx.Err()
	}
}

// resultCache is the content-addressed result store: canonical spec hash ->
// report, bounded FIFO. Methods are not self-locking; the Server's mutex
// guards them.
type resultCache struct {
	max     int
	entries map[string]*report.Report
	order   []string
}

func newResultCache(max int) *resultCache {
	return &resultCache{max: max, entries: map[string]*report.Report{}}
}

func (c *resultCache) get(hash string) (*report.Report, bool) {
	res, ok := c.entries[hash]
	return res, ok
}

func (c *resultCache) put(hash string, res *report.Report) {
	if _, ok := c.entries[hash]; ok {
		c.entries[hash] = res
		return
	}
	c.entries[hash] = res
	c.order = append(c.order, hash)
	for len(c.order) > c.max {
		delete(c.entries, c.order[0])
		c.order = c.order[1:]
	}
}

func (c *resultCache) len() int { return len(c.entries) }
