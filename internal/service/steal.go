package service

import (
	"context"
	"fmt"
	"time"

	"gps/internal/obs"
	"gps/internal/report"
)

// Work stealing, victim side. An overloaded node hands one queued job to an
// idle peer (the thief): Steal checks the job out of the queue, the thief
// executes the spec on its own pool, and CompleteStolen lands the result
// back on this node — the job's waiters, journal entry, and cache commit
// all stay here, so clients polling the original handle never notice where
// the engine actually ran. A watchdog reclaims and re-enqueues the job if
// the thief dies before completing it.

// StolenJob is the work handed to a thief: enough to execute the spec
// elsewhere and address the completion back. Trace carries the victim
// job's trace position (trace_id + the victim job span as parent), so the
// thief's local execution chains under it and the two nodes' trace files
// merge into one timeline.
type StolenJob struct {
	ID    string           `json:"id"`
	Hash  string           `json:"hash"`
	Spec  Spec             `json:"spec"`
	Trace obs.TraceContext `json:"trace,omitempty"`
}

// Steal checks one queued job out to the named thief node. It reports false
// when the queue is empty (or every queued entry was already canceled).
// The job transitions to running with StolenBy set and no local executor;
// if no completion arrives within StealTimeout it is reclaimed and
// re-enqueued.
func (s *Server) Steal(thief string) (StolenJob, bool) {
	for {
		var job *Job
		select {
		case job = <-s.queue:
		default:
			return StolenJob{}, false
		}
		if job == nil { // queue closed by a drain
			return StolenJob{}, false
		}
		s.mu.Lock()
		if job.State != StateQueued { // canceled while waiting; try the next one
			s.mu.Unlock()
			continue
		}
		job.State = StateRunning
		job.StolenBy = thief
		job.StartedAt = time.Now()
		job.stealTimer = time.AfterFunc(s.cfg.StealTimeout, func() { s.reclaimStolen(job) })
		s.jobsStolen.Add(1)
		s.cfg.Journal.record(OpStart, job.ID, nil, nil, "") //nolint:errcheck // informational; replay re-runs either way
		s.logger.Info("job stolen", "job_id", job.ID, "thief", thief)
		out := StolenJob{ID: job.ID, Hash: job.Hash, Spec: job.Spec, Trace: job.Trace.Context()}
		s.mu.Unlock()
		return out, true
	}
}

// CompleteStolen lands a thief's result (or failure) on the victim's job.
// Completions for unknown IDs error; completions for jobs that were
// reclaimed or canceled in the meantime are dropped silently — the job
// already has an owner for its outcome.
func (s *Server) CompleteStolen(id string, res *report.Report, errMsg string) error {
	now := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	job, ok := s.jobs[id]
	if !ok {
		return ErrNotFound
	}
	if job.State != StateRunning || job.StolenBy == "" {
		return nil // reclaimed, canceled, or re-run locally; drop the late completion
	}
	s.stopStealTimerLocked(job)
	if s.inflight[job.Hash] == job {
		delete(s.inflight, job.Hash)
	}
	job.FinishedAt = now
	exec := now.Sub(job.StartedAt)
	s.execSeconds += exec.Seconds()
	s.jobExec.Observe(exec.Seconds())
	switch {
	case res != nil:
		job.State = StateDone
		job.Result = res
		if werr := s.cachePutFenced(job.Hash, res); werr != nil {
			s.cacheWriteErrs.Add(1)
		}
		s.jobsDone.Add(1)
		s.stealsCompleted.Add(1)
		s.cfg.Journal.record(OpDone, job.ID, nil, nil, "") //nolint:errcheck // terminal close-out
		s.logger.Info("stolen job done", "job_id", job.ID, "thief", job.StolenBy,
			"exec_seconds", exec.Seconds())
	default:
		if errMsg == "" {
			errMsg = "stolen job failed on thief " + job.StolenBy
		}
		job.State = StateFailed
		job.Err = errMsg
		s.jobsFailed.Add(1)
		s.cfg.Journal.record(OpFail, job.ID, nil, nil, job.Err) //nolint:errcheck // terminal close-out
		s.logger.Error("stolen job failed", "job_id", job.ID, "thief", job.StolenBy, "err", errMsg)
	}
	close(job.done)
	s.retireLocked(job)
	// The engine ran on the thief; flush the victim-side span of the trace
	// so this node's file still roots the job's identity.
	s.writeHandoffTrace(handoffTrace{
		id: job.ID, hash: job.Hash, kind: "stolen-remote-exec", peer: job.StolenBy,
		trace: job.Trace, state: job.State, errMsg: job.Err,
		submitted: job.SubmittedAt, started: job.StartedAt, finished: job.FinishedAt,
	})
	return nil
}

// DeclineStolen hands a stolen job straight back: the thief could not take
// it after all (its own admission refused the spec, or it started
// draining). The job returns to the queue immediately instead of waiting
// out the steal watchdog.
func (s *Server) DeclineStolen(id string) error {
	s.mu.Lock()
	job, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return ErrNotFound
	}
	s.reclaimStolen(job)
	return nil
}

// reclaimStolen is the steal watchdog: a job whose thief went silent past
// StealTimeout goes back on the local queue. If the server is already
// draining (the queue may be closed), the job fails instead of re-queuing.
func (s *Server) reclaimStolen(job *Job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if job.State != StateRunning || job.StolenBy == "" {
		return // completed, canceled, or already reclaimed
	}
	thief := job.StolenBy
	s.stopStealTimerLocked(job)
	job.StolenBy = ""
	s.stealReclaims.Add(1)
	if s.closed {
		job.State = StateFailed
		job.Err = fmt.Sprintf("stolen by %s, never completed, server draining", thief)
		job.FinishedAt = time.Now()
		s.jobsFailed.Add(1)
		if s.inflight[job.Hash] == job {
			delete(s.inflight, job.Hash)
		}
		s.cfg.Journal.record(OpFail, job.ID, nil, nil, job.Err) //nolint:errcheck // terminal close-out
		close(job.done)
		s.retireLocked(job)
		return
	}
	job.State = StateQueued
	job.StartedAt = time.Time{}
	select {
	case s.queue <- job:
		s.logger.Warn("stolen job reclaimed", "job_id", job.ID, "thief", thief)
	default:
		// The queue refilled while the job was checked out; failing beats
		// blocking the watchdog goroutine on a saturated queue.
		job.State = StateFailed
		job.Err = fmt.Sprintf("stolen by %s, never completed, queue full on reclaim", thief)
		job.FinishedAt = time.Now()
		s.jobsFailed.Add(1)
		if s.inflight[job.Hash] == job {
			delete(s.inflight, job.Hash)
		}
		s.cfg.Journal.record(OpFail, job.ID, nil, nil, job.Err) //nolint:errcheck // terminal close-out
		close(job.done)
		s.retireLocked(job)
	}
}

// stopStealTimerLocked cancels the reclaim watchdog. Callers hold s.mu.
func (s *Server) stopStealTimerLocked(job *Job) {
	if job.stealTimer != nil {
		job.stealTimer.Stop()
		job.stealTimer = nil
	}
}

// ResultByHash serves the content-addressed cache directly: the peer
// result-fetch endpoint uses it so any node can hand out any completed
// spec's report without knowing which job produced it.
func (s *Server) ResultByHash(hash string) (*report.Report, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cache.get(hash)
}

// WaitResult blocks until the job reaches a terminal state (or ctx ends)
// and returns its final snapshot and report. The cluster's thief loop uses
// it to ride a locally-submitted stolen job to completion.
func (s *Server) WaitResult(ctx context.Context, id string) (Status, *report.Report, error) {
	job, err := s.jobHandle(id)
	if err != nil {
		return Status{}, nil, err
	}
	select {
	case <-job.done:
	case <-ctx.Done():
		return Status{}, nil, ctx.Err()
	}
	return s.Result(id)
}
