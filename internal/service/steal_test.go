package service

import (
	"context"
	"testing"
	"time"

	"gps/internal/report"
)

// blockedStealServer builds a 1-worker server whose executor parks jobs
// until release closes, so the queue can be loaded deterministically.
func blockedStealServer(t *testing.T, timeout time.Duration) (*Server, chan struct{}, chan struct{}) {
	t.Helper()
	release := make(chan struct{})
	started := make(chan struct{}, 16)
	s := New(Config{
		NodeID:       "victim",
		Workers:      1,
		QueueDepth:   8,
		StealTimeout: timeout,
		Execute: func(ctx context.Context, spec Spec) (*report.Report, error) {
			started <- struct{}{}
			select {
			case <-release:
				return &report.Report{ParallelWorkers: 1}, nil
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		},
	})
	return s, release, started
}

// loadTwo submits one job that occupies the worker and one that stays
// queued, returning the queued job's status.
func loadTwo(t *testing.T, s *Server, started chan struct{}) Status {
	t.Helper()
	if _, _, err := s.Submit(Spec{Type: "table", Table: 1}); err != nil {
		t.Fatal(err)
	}
	<-started // worker occupied
	queued, _, err := s.Submit(Spec{Type: "table", Table: 2})
	if err != nil {
		t.Fatal(err)
	}
	return queued
}

func TestStealAndComplete(t *testing.T) {
	s, release, started := blockedStealServer(t, time.Minute)
	defer func() {
		close(release)
		s.Shutdown(context.Background())
	}()
	queued := loadTwo(t, s, started)

	stolen, ok := s.Steal("thief")
	if !ok || stolen.ID != queued.ID || stolen.Hash != queued.Hash {
		t.Fatalf("Steal = %+v, %v; want job %s", stolen, ok, queued.ID)
	}
	if st, _ := s.Job(stolen.ID); st.State != StateRunning || st.StolenBy != "thief" {
		t.Fatalf("stolen job state %s stolen_by %q, want running/thief", st.State, st.StolenBy)
	}

	rep := &report.Report{ParallelWorkers: 7}
	if err := s.CompleteStolen(stolen.ID, rep, ""); err != nil {
		t.Fatal(err)
	}
	st, got, err := s.Result(stolen.ID)
	if err != nil || st.State != StateDone || got == nil || got.ParallelWorkers != 7 {
		t.Fatalf("after complete: state %s report %+v err %v", st.State, got, err)
	}

	// The completion landed in the content-addressed cache too: an identical
	// resubmit is a cache hit, and ResultByHash serves peers directly.
	if cached, ok := s.ResultByHash(stolen.Hash); !ok || cached.ParallelWorkers != 7 {
		t.Fatalf("ResultByHash after steal completion = %+v, %v", cached, ok)
	}
	dup, outcome, err := s.Submit(stolen.Spec)
	if err != nil || outcome != OutcomeCached {
		t.Fatalf("resubmit after steal: outcome %v err %v, want cached", outcome, err)
	}
	if dup.State != StateDone {
		t.Fatalf("cached resubmit state %s, want done", dup.State)
	}

	m := s.Metrics()
	if m.JobsStolen != 1 || m.StealsCompleted != 1 {
		t.Fatalf("steal counters = %d/%d, want 1/1", m.JobsStolen, m.StealsCompleted)
	}
}

func TestStealFailureLandsOnVictim(t *testing.T) {
	s, release, started := blockedStealServer(t, time.Minute)
	defer func() {
		close(release)
		s.Shutdown(context.Background())
	}()
	queued := loadTwo(t, s, started)

	stolen, ok := s.Steal("thief")
	if !ok {
		t.Fatal("nothing stolen")
	}
	if err := s.CompleteStolen(stolen.ID, nil, "thief blew up"); err != nil {
		t.Fatal(err)
	}
	if st, _ := s.Job(queued.ID); st.State != StateFailed || st.Error != "thief blew up" {
		t.Fatalf("failed completion: state %s err %q", st.State, st.Error)
	}
}

func TestDeclineStolenRequeues(t *testing.T) {
	s, release, started := blockedStealServer(t, time.Minute)
	defer s.Shutdown(context.Background())
	queued := loadTwo(t, s, started)

	stolen, ok := s.Steal("thief")
	if !ok {
		t.Fatal("nothing stolen")
	}
	if err := s.DeclineStolen(stolen.ID); err != nil {
		t.Fatal(err)
	}
	if st, _ := s.Job(queued.ID); st.State != StateQueued || st.StolenBy != "" {
		t.Fatalf("declined job state %s stolen_by %q, want queued again", st.State, st.StolenBy)
	}
	if got := s.Metrics().StealReclaims; got != 1 {
		t.Fatalf("steal reclaims = %d, want 1", got)
	}

	// The re-queued job still executes locally once the worker frees up.
	close(release)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	st, _, err := s.WaitResult(ctx, queued.ID)
	if err != nil || st.State != StateDone {
		t.Fatalf("declined job finished %s err %v, want done", st.State, err)
	}
}

func TestStealWatchdogReclaims(t *testing.T) {
	s, release, started := blockedStealServer(t, 30*time.Millisecond)
	defer s.Shutdown(context.Background())
	queued := loadTwo(t, s, started)

	if _, ok := s.Steal("ghost"); !ok {
		t.Fatal("nothing stolen")
	}
	// The thief never answers; the watchdog must re-queue the job, and the
	// local worker then completes it.
	close(release)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	st, _, err := s.WaitResult(ctx, queued.ID)
	if err != nil || st.State != StateDone {
		t.Fatalf("reclaimed job finished %s err %v, want done", st.State, err)
	}
	if got := s.Metrics().StealReclaims; got != 1 {
		t.Fatalf("steal reclaims = %d, want 1", got)
	}
	// A completion arriving after the reclaim is dropped, not an error.
	if err := s.CompleteStolen(queued.ID, &report.Report{}, ""); err != nil {
		t.Fatalf("late completion errored: %v", err)
	}
}

func TestCancelStolenJob(t *testing.T) {
	s, release, started := blockedStealServer(t, time.Minute)
	defer func() {
		close(release)
		s.Shutdown(context.Background())
	}()
	queued := loadTwo(t, s, started)

	if _, ok := s.Steal("thief"); !ok {
		t.Fatal("nothing stolen")
	}
	st, err := s.Cancel(queued.ID)
	if err != nil || st.State != StateCanceled {
		t.Fatalf("cancel stolen: state %s err %v, want canceled", st.State, err)
	}
	// The thief's late completion is dropped silently; the cancel stands.
	if err := s.CompleteStolen(queued.ID, &report.Report{}, ""); err != nil {
		t.Fatalf("late completion errored: %v", err)
	}
	if got, _ := s.Job(queued.ID); got.State != StateCanceled {
		t.Fatalf("state after late completion = %s, want canceled", got.State)
	}
}

func TestStealEdgeCases(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 4, Execute: func(ctx context.Context, spec Spec) (*report.Report, error) {
		return &report.Report{}, nil
	}})
	defer s.Shutdown(context.Background())

	if _, ok := s.Steal("thief"); ok {
		t.Fatal("stole from an empty queue")
	}
	if err := s.CompleteStolen("nope", nil, "x"); err != ErrNotFound {
		t.Fatalf("unknown completion err = %v, want ErrNotFound", err)
	}
	if err := s.DeclineStolen("nope"); err != ErrNotFound {
		t.Fatalf("unknown decline err = %v, want ErrNotFound", err)
	}
}

// TestJobNode checks the ID-prefix routing helper for both cluster and
// single-node ID shapes.
func TestJobNode(t *testing.T) {
	cases := map[string]string{
		"n1-j-000042":     "n1",
		"node-7-j-000001": "node-7",
		"j-000001":        "",
		"weird":           "",
		"nX-j-1-j-000009": "nX-j-1", // last "-j-" wins
	}
	for id, want := range cases {
		if got := JobNode(id); got != want {
			t.Errorf("JobNode(%q) = %q, want %q", id, got, want)
		}
	}
}
