package service

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gps/internal/obs"
	"gps/internal/report"
)

// TestJobTraceFile: with TraceDir configured, every executed job leaves a
// structurally valid Perfetto trace named after the job ID, with the job
// span enclosing whatever the executor recorded.
func TestJobTraceFile(t *testing.T) {
	dir := t.TempDir()
	exec := func(ctx context.Context, spec Spec) (*report.Report, error) {
		// Exercise the span seam the real executor uses: figure ⊃ cell.
		sctx, figure := obs.StartSpan(ctx, obs.CatFigure, "stub-figure")
		_, cell := obs.StartSpanTrack(sctx, obs.CatCell, "stub-cell")
		cell.End()
		figure.End()
		return &report.Report{TotalSeconds: 0.001}, nil
	}
	s := New(Config{Workers: 1, QueueDepth: 4, Execute: exec, TraceDir: dir})
	st, _, err := s.Submit(sensSpec("tlb"))
	if err != nil {
		t.Fatal(err)
	}
	if got := waitTerminal(t, s, st.ID); got.State != StateDone {
		t.Fatalf("job state = %s (%s), want done", got.State, got.Error)
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	data, err := os.ReadFile(filepath.Join(dir, st.ID+".trace.json"))
	if err != nil {
		t.Fatalf("trace file missing: %v", err)
	}
	sum, err := obs.ValidateTrace(data, obs.CatJob, obs.CatFigure, obs.CatCell)
	if err != nil {
		t.Fatalf("ValidateTrace: %v\n%s", err, data)
	}
	if sum.ByCat[obs.CatJob] != 1 {
		t.Errorf("trace has %d job spans, want 1 (%v)", sum.ByCat[obs.CatJob], sum.ByCat)
	}
}

// TestJobLifecycleLogs: the structured log stream carries the accepted /
// started / done transitions of a job, all correlated by job_id.
func TestJobLifecycleLogs(t *testing.T) {
	var buf bytes.Buffer
	logger := obs.NewLogger(&buf, slog.LevelDebug, true)
	exec := func(ctx context.Context, spec Spec) (*report.Report, error) {
		return &report.Report{TotalSeconds: 0.001}, nil
	}
	s := New(Config{Workers: 1, QueueDepth: 4, Execute: exec, Logger: logger})
	st, _, err := s.Submit(sensSpec("tlb"))
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, s, st.ID)
	if s.Draining() {
		t.Error("Draining() true before Shutdown")
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if !s.Draining() {
		t.Error("Draining() false after Shutdown")
	}

	want := map[string]bool{"job accepted": false, "job started": false, "job done": false, "draining": false, "drained": false}
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("log line is not JSON: %q", line)
		}
		msg, _ := rec["msg"].(string)
		if _, ok := want[msg]; !ok {
			continue
		}
		if strings.HasPrefix(msg, "job ") && rec["job_id"] != st.ID {
			t.Errorf("%q record has job_id %v, want %s", msg, rec["job_id"], st.ID)
		}
		want[msg] = true
	}
	for msg, seen := range want {
		if !seen {
			t.Errorf("log stream missing a %q record:\n%s", msg, buf.String())
		}
	}
}

// TestServerRegistry: a configured registry exposes the server's counters
// and latency histograms in the Prometheus exposition.
func TestServerRegistry(t *testing.T) {
	reg := obs.NewRegistry()
	exec := func(ctx context.Context, spec Spec) (*report.Report, error) {
		return &report.Report{TotalSeconds: 0.001}, nil
	}
	s := New(Config{Workers: 1, QueueDepth: 4, Execute: exec, Registry: reg})
	st, _, err := s.Submit(sensSpec("tlb"))
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, s, st.ID)
	defer s.Shutdown(context.Background()) //nolint:errcheck

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	expo := sb.String()
	for _, want := range []string{
		`gpsd_jobs_total{event="submitted"} 1`,
		`gpsd_jobs_total{event="done"} 1`,
		`gpsd_job_wait_seconds_count 1`,
		`gpsd_job_exec_seconds_count 1`,
		`# TYPE gpsd_uptime_seconds gauge`,
		`gpsd_workers 1`,
		`gps_runner_trace_builds_total`,
	} {
		if !strings.Contains(expo, want) {
			t.Errorf("exposition missing %q:\n%s", want, expo)
		}
	}
}
