package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"gps/internal/obs"
)

// The job journal is gpsd's write-ahead log: an append-only file of JSON
// lines recording every job transition (submit, start, done, fail, cancel),
// fsynced on commit. On startup the journal is replayed: jobs that were
// queued or running when the process died are re-enqueued under their
// original IDs, and terminal entries are pruned by rewriting the file
// (compaction). A torn final line — the signature of a crash mid-append —
// is tolerated and dropped.
//
// The journal assumes a single daemon per file; there is no inter-process
// locking.

// Journal transition ops. Exported because the cluster's replication layer
// speaks the same vocabulary: a JournalSink receives these op strings, and
// the successor's replica store interprets them (submit adds, the terminal
// ops prune).
const (
	OpSubmit = "submit"
	OpStart  = "start"
	OpDone   = "done"
	OpFail   = "fail"
	OpCancel = "cancel"
)

// journalRecord is one JSON line of the journal.
type journalRecord struct {
	Op    string         `json:"op"`
	ID    string         `json:"id"`
	Spec  *Spec          `json:"spec,omitempty"`  // on submit
	Trace *obs.TraceInfo `json:"trace,omitempty"` // on submit: distributed trace identity
	Err   string         `json:"error,omitempty"`
	Time  string         `json:"time,omitempty"` // RFC3339Nano, informational
}

// PendingJob is one journaled job that had not reached a terminal state
// when the journal was last written: work a restarted daemon owes its
// clients.
type PendingJob struct {
	ID      string
	Spec    Spec
	Trace   obs.TraceInfo // original trace identity, kept across replay/adoption
	Started bool          // it was mid-execution, not just queued
}

// JournalSink receives every record committed to the journal, after its
// local fsync. The cluster layer implements it to replicate submit and
// terminal records to the ring successor, so a permanently dead node's
// accepted jobs can be promoted and re-run elsewhere. The sink is invoked
// outside the journal lock; per-job ordering (submit before its terminal
// record) still holds because a job only becomes visible to workers after
// its submit record — sink call included — returns.
type JournalSink interface {
	JournalRecord(op, id string, spec *Spec, trace *obs.TraceInfo, errStr string)
}

// Journal is the durable job log. All methods are safe for concurrent use.
type Journal struct {
	mu      sync.Mutex
	path    string
	f       *os.File
	pending []PendingJob
	records uint64
	sink    JournalSink
}

// OpenJournal opens (or creates) the journal at path, replays it, compacts
// terminal entries away, and returns it ready for appends. The pending jobs
// recovered from the replay are consumed by service.New via TakePending.
func OpenJournal(path string) (*Journal, error) {
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, fmt.Errorf("service: journal: %w", err)
	}
	pending := replayJournal(data)

	// Compact: the rewritten journal holds one submit record per pending
	// job (plus a start marker where applicable) and nothing else. Write
	// to a temp file, fsync, and rename over the old journal so a crash
	// during compaction loses nothing.
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("service: journal: %w", err)
	}
	w := bufio.NewWriter(f)
	now := time.Now().UTC().Format(time.RFC3339Nano)
	for i := range pending {
		p := &pending[i]
		var tr *obs.TraceInfo
		if p.Trace.TraceID != "" {
			tr = &p.Trace
		}
		if err := writeRecord(w, journalRecord{Op: OpSubmit, ID: p.ID, Spec: &p.Spec, Trace: tr, Time: now}); err != nil {
			f.Close()
			return nil, err
		}
		if p.Started {
			if err := writeRecord(w, journalRecord{Op: OpStart, ID: p.ID, Time: now}); err != nil {
				f.Close()
				return nil, err
			}
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return nil, fmt.Errorf("service: journal: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, fmt.Errorf("service: journal: %w", err)
	}
	if err := f.Close(); err != nil {
		return nil, fmt.Errorf("service: journal: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return nil, fmt.Errorf("service: journal: %w", err)
	}
	syncDir(path)

	af, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("service: journal: %w", err)
	}
	return &Journal{path: path, f: af, pending: pending}, nil
}

// replayJournal folds the journal bytes into the set of still-pending jobs,
// in submit order. Unparseable lines (torn tail writes) and records for
// unknown IDs are skipped.
func replayJournal(data []byte) []PendingJob {
	type state struct {
		spec     Spec
		trace    obs.TraceInfo
		started  bool
		terminal bool
	}
	states := map[string]*state{}
	var order []string
	for _, line := range bytes.Split(data, []byte("\n")) {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var rec journalRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			continue // torn write or corruption: drop the line
		}
		switch rec.Op {
		case OpSubmit:
			if rec.Spec == nil || rec.ID == "" {
				continue
			}
			if _, ok := states[rec.ID]; ok {
				continue // duplicate submit for one ID: keep the first
			}
			st := &state{spec: *rec.Spec}
			if rec.Trace != nil {
				st.trace = *rec.Trace
			}
			states[rec.ID] = st
			order = append(order, rec.ID)
		case OpStart:
			if st, ok := states[rec.ID]; ok {
				st.started = true
			}
		case OpDone, OpFail, OpCancel:
			if st, ok := states[rec.ID]; ok {
				st.terminal = true
			}
		}
	}
	var pending []PendingJob
	for _, id := range order {
		st := states[id]
		if st.terminal {
			continue
		}
		pending = append(pending, PendingJob{ID: id, Spec: st.spec, Trace: st.trace, Started: st.started})
	}
	return pending
}

func writeRecord(w *bufio.Writer, rec journalRecord) error {
	data, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("service: journal: %w", err)
	}
	data = append(data, '\n')
	if _, err := w.Write(data); err != nil {
		return fmt.Errorf("service: journal: %w", err)
	}
	return nil
}

// syncDir fsyncs the journal's directory so a rename survives power loss;
// best-effort (some filesystems refuse directory syncs).
func syncDir(path string) {
	d, err := os.Open(filepath.Dir(path))
	if err != nil {
		return
	}
	d.Sync() //nolint:errcheck // best-effort
	d.Close()
}

// SetSink attaches (or replaces) the replication sink. A nil journal or nil
// sink is fine; replication simply stays off. Records appended before the
// sink was attached are not re-emitted — the cluster layer covers that gap
// by pushing a full snapshot of the service's live jobs on its first
// successful replication flush.
func (j *Journal) SetSink(s JournalSink) {
	if j == nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	j.sink = s
}

// TakePending hands the replayed pending jobs to the consumer exactly once.
func (j *Journal) TakePending() []PendingJob {
	j.mu.Lock()
	defer j.mu.Unlock()
	p := j.pending
	j.pending = nil
	return p
}

// record appends one transition and fsyncs it — the commit point. Every
// record that matters for recovery (submit and the terminal ops) goes
// through here before the caller acts on it. trace rides on submit records
// so replayed and adopted jobs keep their distributed trace identity.
func (j *Journal) record(op, id string, spec *Spec, trace *obs.TraceInfo, errStr string) error {
	if j == nil {
		return nil
	}
	rec := journalRecord{
		Op: op, ID: id, Spec: spec, Trace: trace, Err: errStr,
		Time: time.Now().UTC().Format(time.RFC3339Nano),
	}
	data, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("service: journal: %w", err)
	}
	data = append(data, '\n')
	j.mu.Lock()
	if j.f == nil {
		j.mu.Unlock()
		return fmt.Errorf("service: journal closed")
	}
	if _, err := j.f.Write(data); err != nil {
		j.mu.Unlock()
		return fmt.Errorf("service: journal: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		j.mu.Unlock()
		return fmt.Errorf("service: journal: %w", err)
	}
	j.records++
	sink := j.sink
	j.mu.Unlock()
	// Replication runs after the local commit and outside the journal lock:
	// a slow successor throttles the job that caused the record, not every
	// concurrent journal append. Sink failures never undo a local commit.
	if sink != nil {
		sink.JournalRecord(op, id, spec, trace, errStr)
	}
	return nil
}

// Records reports how many transitions this process has appended.
func (j *Journal) Records() uint64 {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.records
}

// Path returns the journal file path.
func (j *Journal) Path() string { return j.path }

// Close flushes and closes the journal file. Further records error.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Sync()
	if cerr := j.f.Close(); err == nil {
		err = cerr
	}
	j.f = nil
	return err
}
