package service

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func openTestJournal(t *testing.T, path string) *Journal {
	t.Helper()
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("OpenJournal(%s): %v", path, err)
	}
	t.Cleanup(func() { j.Close() })
	return j
}

// TestJournalCrashRecovery is the kill-and-restart scenario: a daemon with
// in-flight work dies without any shutdown handshake; a new daemon opened on
// the same journal re-runs the interrupted jobs under their original IDs.
func TestJournalCrashRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "gpsd.journal")

	// First life: one job running, one queued, then the process "dies"
	// (the server is simply abandoned — no drain, no journal close).
	exec1 := newBlockingExec()
	s1 := New(Config{Workers: 1, QueueDepth: 4, Execute: exec1.exec, Journal: openTestJournal(t, path)})
	t.Cleanup(func() {
		close(exec1.release)
		s1.Shutdown(context.Background())
	})
	running, _, err := s1.Submit(sensSpec("tlb"))
	if err != nil {
		t.Fatal(err)
	}
	<-exec1.started
	queued, _, err := s1.Submit(sensSpec("pagesize"))
	if err != nil {
		t.Fatal(err)
	}

	// Second life: reopen the journal, build a fresh server around an
	// executor that completes instantly.
	exec2 := newBlockingExec()
	close(exec2.release)
	s2 := New(Config{Workers: 1, QueueDepth: 4, Execute: exec2.exec, Journal: openTestJournal(t, path)})
	defer s2.Shutdown(context.Background())

	for _, id := range []string{running.ID, queued.ID} {
		st := waitTerminal(t, s2, id)
		if st.State != StateDone {
			t.Errorf("replayed job %s state = %s (%s), want done", id, st.State, st.Error)
		}
		if !st.Replayed {
			t.Errorf("job %s not marked replayed", id)
		}
	}
	if m := s2.Metrics(); m.JobsReplayed != 2 {
		t.Errorf("JobsReplayed = %d, want 2", m.JobsReplayed)
	}

	// The ID sequence resumes past the recovered jobs: no handle collisions
	// with jobs clients are still polling.
	st, _, err := s2.Submit(sensSpec("watermark"))
	if err != nil {
		t.Fatal(err)
	}
	if st.ID == running.ID || st.ID == queued.ID || st.ID <= queued.ID {
		t.Errorf("post-recovery job ID %s collides with or precedes replayed IDs (%s, %s)",
			st.ID, running.ID, queued.ID)
	}
}

// TestJournalTerminalJobsNotReplayed: done and canceled jobs are closed out
// in the journal; a restart owes nothing for them.
func TestJournalTerminalJobsNotReplayed(t *testing.T) {
	path := filepath.Join(t.TempDir(), "gpsd.journal")
	exec := newBlockingExec()
	close(exec.release)
	s := New(Config{Workers: 1, QueueDepth: 4, Execute: exec.exec, Journal: openTestJournal(t, path)})

	done, _, err := s.Submit(sensSpec("tlb"))
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, s, done.ID)
	s.Shutdown(context.Background())

	j2 := openTestJournal(t, path)
	if pending := j2.TakePending(); len(pending) != 0 {
		t.Errorf("pending after clean completion = %+v, want none", pending)
	}
}

// TestJournalTornTailTolerated: a crash mid-append leaves a half-written
// final line; replay keeps every complete record and drops the torn one.
func TestJournalTornTailTolerated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "gpsd.journal")
	spec, err := sensSpec("tlb").Canonicalize()
	if err != nil {
		t.Fatal(err)
	}
	lines := `{"op":"submit","id":"j-000001","spec":{"type":"sensitivity","sensitivity":"tlb","iterations":4,"scale":1,"seed":1}}
{"op":"submit","id":"j-000002","spec":{"type":"sensitivity","sensitivity":"pagesize","iterations":4,"scale":1,"seed":1}}
{"op":"done","id":"j-000002"}
{"op":"fail","id":"j-00`
	if err := os.WriteFile(path, []byte(lines), 0o644); err != nil {
		t.Fatal(err)
	}
	j := openTestJournal(t, path)
	pending := j.TakePending()
	if len(pending) != 1 || pending[0].ID != "j-000001" {
		t.Fatalf("pending = %+v, want exactly j-000001", pending)
	}
	if pending[0].Spec.Hash() != spec.Hash() {
		t.Errorf("recovered spec differs from submitted spec")
	}

	// Compaction rewrote the file: only the pending submit survives, so the
	// torn bytes and terminal records are gone.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	content := strings.TrimSpace(string(data))
	if strings.Count(content, "\n")+1 != 1 || !strings.Contains(content, "j-000001") {
		t.Errorf("compacted journal = %q, want a single j-000001 submit record", content)
	}
}

// TestJournalSubmitFailureRejectsJob: durability is the admission contract —
// if the submit record cannot be committed, the job is refused rather than
// accepted into a journal that would forget it.
func TestJournalSubmitFailureRejectsJob(t *testing.T) {
	path := filepath.Join(t.TempDir(), "gpsd.journal")
	j := openTestJournal(t, path)
	exec := newBlockingExec()
	close(exec.release)
	s := New(Config{Workers: 1, QueueDepth: 4, Execute: exec.exec, Journal: j})
	defer s.Shutdown(context.Background())

	j.Close() // journal now refuses appends
	_, _, err := s.Submit(sensSpec("tlb"))
	if err == nil || !strings.Contains(err.Error(), "journal") {
		t.Fatalf("submit with dead journal: err = %v, want journal error", err)
	}
	m := s.Metrics()
	if m.JobsSubmitted != 0 || m.JobsRejected != 1 {
		t.Errorf("submitted/rejected = %d/%d, want 0/1", m.JobsSubmitted, m.JobsRejected)
	}
	if exec.runs.Load() != 0 {
		t.Errorf("refused job executed anyway")
	}
}
