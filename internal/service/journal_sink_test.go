package service

import (
	"context"
	"path/filepath"
	"sync"
	"testing"

	"gps/internal/obs"
)

// captureSink records every journal record it receives, in order.
type captureSink struct {
	mu   sync.Mutex
	recs []struct {
		op, id  string
		hasSpec bool
	}
}

func (c *captureSink) JournalRecord(op, id string, spec *Spec, trace *obs.TraceInfo, errStr string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.recs = append(c.recs, struct {
		op, id  string
		hasSpec bool
	}{op, id, spec != nil})
}

func (c *captureSink) snapshot() []struct {
	op, id  string
	hasSpec bool
} {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append(c.recs[:0:0], c.recs...)
}

// TestJournalSinkReplicationStream: every record the journal commits reaches
// the sink, in per-job order (submit, then start, then terminal), with the
// spec attached exactly where the replica store needs it — on submits.
// After a crash and compacting reopen, nothing is re-emitted for the
// survivors (the cluster covers that gap with a snapshot flush), the
// pending set equals exactly the sink's submits-without-terminals (no
// record loss across compaction), and post-restart records flow to the
// fresh sink.
func TestJournalSinkReplicationStream(t *testing.T) {
	path := filepath.Join(t.TempDir(), "gpsd.journal")
	sink := &captureSink{}
	j1 := openTestJournal(t, path)
	j1.SetSink(sink)

	// First life: one running job, one queued, then the process "dies".
	exec1 := newBlockingExec()
	s1 := New(Config{Workers: 1, QueueDepth: 4, Execute: exec1.exec, Journal: j1})
	t.Cleanup(func() {
		close(exec1.release)
		s1.Shutdown(context.Background())
	})
	running, _, err := s1.Submit(sensSpec("tlb"))
	if err != nil {
		t.Fatal(err)
	}
	<-exec1.started
	queued, _, err := s1.Submit(sensSpec("pagesize"))
	if err != nil {
		t.Fatal(err)
	}

	recs := sink.snapshot()
	seen := map[string][]string{}
	for _, r := range recs {
		seen[r.id] = append(seen[r.id], r.op)
		if (r.op == OpSubmit) != r.hasSpec {
			t.Fatalf("record %s/%s: spec presence wrong", r.op, r.id)
		}
	}
	if got := seen[running.ID]; len(got) != 2 || got[0] != OpSubmit || got[1] != OpStart {
		t.Fatalf("running job stream = %v, want [submit start]", got)
	}
	if got := seen[queued.ID]; len(got) != 1 || got[0] != OpSubmit {
		t.Fatalf("queued job stream = %v, want [submit]", got)
	}

	// Second life: the compacting reopen must not replay anything into the
	// new sink — and must owe exactly the jobs whose sink stream has a
	// submit but no terminal record.
	sink2 := &captureSink{}
	j2 := openTestJournal(t, path)
	j2.SetSink(sink2)
	if got := sink2.snapshot(); len(got) != 0 {
		t.Fatalf("compaction re-emitted %d records into the sink", len(got))
	}

	exec2 := newBlockingExec()
	close(exec2.release)
	s2 := New(Config{Workers: 1, QueueDepth: 4, Execute: exec2.exec, Journal: j2})
	defer s2.Shutdown(context.Background())

	for _, want := range []struct {
		id      string
		started bool
	}{{running.ID, true}, {queued.ID, false}} {
		st := waitTerminal(t, s2, want.id)
		if st.State != StateDone || !st.Replayed {
			t.Fatalf("replayed %s: state=%s replayed=%v", want.id, st.State, st.Replayed)
		}
	}

	// The restart's stream re-starts and finishes both jobs; it never
	// re-emits their submits (the successor's replica state for this node is
	// refreshed by snapshot, not by the append stream).
	ops := map[string]int{}
	for _, r := range sink2.snapshot() {
		ops[r.op]++
		if r.id != running.ID && r.id != queued.ID {
			t.Fatalf("unexpected record for %s in restart stream", r.id)
		}
	}
	if ops[OpSubmit] != 0 || ops[OpStart] != 2 || ops[OpDone] != 2 {
		t.Fatalf("restart stream ops = %v, want 0 submits, 2 starts, 2 dones", ops)
	}
}
