// Package service turns the experiments runner into a long-running
// simulation service: a bounded job queue with admission control, a worker
// pool, a single-flight table that coalesces duplicate in-flight
// submissions, and a content-addressed result cache keyed by a canonical
// hash of the job spec. internal/httpapi exposes it over JSON REST; cmd/gpsd
// is the binary.
package service

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"strings"

	"gps/internal/experiments"
	"gps/internal/interconnect"
	"gps/internal/paradigm"
	"gps/internal/workload"
)

// Spec describes one simulation job. Exactly one of the four types is
// selected by Type:
//
//   - "figure":      regenerate one paper figure (1,2,3,4,8,9,10,11,12,13,14)
//   - "table":       render Table 1 or 2 (static, instant)
//   - "sensitivity": run a named study (tlb, pagesize, watermark, l2,
//     profilingmode, control, pipelined, fabrics, fabricmodel)
//   - "matrix":      run an explicit list of (app, paradigm, gpus, fabric)
//     cells
//
// Iterations/Scale/Seed size the workloads exactly like the gpsbench flags;
// zero values take the experiment defaults (4 iterations, scale 1, seed 1).
type Spec struct {
	Type        string     `json:"type"`
	Figure      int        `json:"figure,omitempty"`
	Table       int        `json:"table,omitempty"`
	Sensitivity string     `json:"sensitivity,omitempty"`
	Cells       []CellSpec `json:"cells,omitempty"`

	Iterations int   `json:"iterations,omitempty"`
	Scale      int   `json:"scale,omitempty"`
	Seed       int64 `json:"seed,omitempty"`
	Quick      bool  `json:"quick,omitempty"`
}

// CellSpec names one custom-matrix cell using the CLI vocabulary: app and
// paradigm as printed by gpsim, fabric as accepted by -interconnect.
type CellSpec struct {
	App      string `json:"app"`
	Paradigm string `json:"paradigm"`
	GPUs     int    `json:"gpus"`
	Fabric   string `json:"fabric"`
	Packet   bool   `json:"packet,omitempty"`
}

// Figures lists the figure numbers a "figure" spec accepts.
var Figures = []int{1, 2, 3, 4, 8, 9, 10, 11, 12, 13, 14}

// Sensitivities lists the named studies a "sensitivity" spec accepts.
var Sensitivities = []string{
	"tlb", "pagesize", "watermark", "l2", "profilingmode",
	"control", "pipelined", "fabrics", "hier", "fabricmodel",
}

// ErrInvalidSpec marks every admission-time validation failure. API layers
// match it with errors.Is to map bad requests to 400 instead of 500; a spec
// that would make the runner panic (e.g. a zero-cell matrix reaching
// stats.GeoMean) is rejected here instead.
var ErrInvalidSpec = errors.New("invalid spec")

// invalidSpec builds a validation error wrapping ErrInvalidSpec.
func invalidSpec(format string, args ...any) error {
	return fmt.Errorf("service: %w: %s", ErrInvalidSpec, fmt.Sprintf(format, args...))
}

// Canonicalize validates the spec and returns its normal form: type and
// names lowercased and resolved to their canonical spellings, workload
// defaults applied. Two specs that describe the same computation normalize
// to identical values, which is what makes the content-addressed cache and
// the single-flight table work.
func (s Spec) Canonicalize() (Spec, error) {
	out := s
	out.Type = strings.ToLower(strings.TrimSpace(s.Type))
	if out.Iterations <= 0 {
		out.Iterations = 4
	}
	if out.Quick && out.Iterations > 2 {
		out.Iterations = 2
	}
	out.Quick = false // folded into Iterations above
	if out.Scale <= 0 {
		out.Scale = 1
	}
	if out.Seed == 0 {
		out.Seed = 1
	}

	clear := func() { out.Figure, out.Table, out.Sensitivity, out.Cells = 0, 0, "", nil }
	switch out.Type {
	case "figure":
		fig := out.Figure
		clear()
		out.Figure = fig
		if !contains(Figures, fig) {
			return Spec{}, invalidSpec("unknown figure %d (have %v)", fig, Figures)
		}
	case "table":
		tab := out.Table
		clear()
		out.Table = tab
		if tab != 1 && tab != 2 {
			return Spec{}, invalidSpec("unknown table %d (have 1, 2)", tab)
		}
	case "sensitivity":
		sens := strings.ToLower(strings.TrimSpace(out.Sensitivity))
		clear()
		out.Sensitivity = sens
		ok := false
		for _, name := range Sensitivities {
			if name == sens {
				ok = true
				break
			}
		}
		if !ok {
			return Spec{}, invalidSpec("unknown sensitivity %q (have %s)",
				sens, strings.Join(Sensitivities, ", "))
		}
	case "matrix":
		cells := out.Cells
		clear()
		if len(cells) == 0 {
			return Spec{}, invalidSpec("matrix spec needs at least one cell")
		}
		out.Cells = make([]CellSpec, len(cells))
		for i, c := range cells {
			norm, err := c.canonicalize()
			if err != nil {
				return Spec{}, fmt.Errorf("service: %w: cell %d: %v", ErrInvalidSpec, i, err)
			}
			out.Cells[i] = norm
		}
	default:
		return Spec{}, invalidSpec("unknown job type %q (figure, table, sensitivity, matrix)", s.Type)
	}
	return out, nil
}

func contains(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// canonicalize resolves the cell's names through the shared CLI parsers so
// e.g. "gps"/"GPS" and "PCIE4"/"pcie4" hash identically.
func (c CellSpec) canonicalize() (CellSpec, error) {
	if c.GPUs <= 0 {
		c.GPUs = 4
	}
	if _, err := workload.ByName(c.App); err != nil {
		return CellSpec{}, err
	}
	kind, err := paradigm.KindByName(c.Paradigm)
	if err != nil {
		return CellSpec{}, err
	}
	if c.Fabric == "" {
		c.Fabric = "pcie4"
	}
	c.Fabric = strings.ToLower(c.Fabric)
	if _, err := interconnect.ByName(c.Fabric, c.GPUs); err != nil {
		return CellSpec{}, err
	}
	c.Paradigm = kind.String()
	return c, nil
}

// cell materializes the experiments.Cell this spec describes.
func (c CellSpec) cell(opt experiments.Options) (experiments.Cell, error) {
	kind, err := paradigm.KindByName(c.Paradigm)
	if err != nil {
		return experiments.Cell{}, err
	}
	fab, err := interconnect.ByName(c.Fabric, c.GPUs)
	if err != nil {
		return experiments.Cell{}, err
	}
	return experiments.Cell{
		App: c.App, Kind: kind, GPUs: c.GPUs, Fab: fab,
		Opt: opt, Cfg: paradigm.DefaultConfig(), Packet: c.Packet,
	}, nil
}

// options maps the spec's sizing fields onto experiment options.
func (s Spec) options() experiments.Options {
	return experiments.Options{Iterations: s.Iterations, Scale: s.Scale, Seed: s.Seed}
}

// Hash returns the content address of the canonical spec: the hex SHA-256
// of its canonical JSON encoding. Specs must be canonicalized first; Hash
// panics on a spec that fails to marshal (impossible for valid specs).
func (s Spec) Hash() string {
	data, err := json.Marshal(s)
	if err != nil {
		panic("service: spec not marshalable: " + err.Error())
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}
