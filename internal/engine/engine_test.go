package engine

import (
	"reflect"
	"testing"
	"time"

	"gps/internal/trace"
)

// recordingModel captures what the engine feeds a paradigm model.
type recordingModel struct {
	phases    []int
	accesses  []recordedAccess
	endPhases []int
	finished  bool
	profiles  []Profile
}

type recordedAccess struct {
	gpu   int
	op    trace.Op
	lines []uint64
}

func (m *recordingModel) Name() string { return "recorder" }
func (m *recordingModel) BeginPhase(i int, profiles []Profile) {
	m.phases = append(m.phases, i)
	m.profiles = profiles
}
func (m *recordingModel) Access(gpu int, a trace.Access, lines []uint64) {
	cp := append([]uint64{}, lines...)
	m.accesses = append(m.accesses, recordedAccess{gpu: gpu, op: a.Op, lines: cp})
}
func (m *recordingModel) EndPhase(i int) { m.endPhases = append(m.endPhases, i) }
func (m *recordingModel) Finish(*Result) { m.finished = true }

func twoGPUProgram() *trace.Recorded {
	mk := func(gpu int, n int, base uint64) trace.Kernel {
		k := trace.Kernel{GPU: gpu, Name: "k", ComputeOps: 100, LocalStreamBytes: 4096}
		for i := 0; i < n; i++ {
			k.Accesses = append(k.Accesses, trace.Access{
				Op: trace.OpStore, Pattern: trace.PatContiguous,
				Threads: 32, ElemBytes: 4, Addr: base + uint64(i)*128,
			})
		}
		return k
	}
	return &trace.Recorded{
		M: trace.Meta{Name: "t", NumGPUs: 2, Regions: []trace.Region{
			{Name: "r", Kind: trace.RegionShared, Base: 1 << 33, Size: 1 << 20},
		}},
		Ph: []trace.Phase{
			{Index: 0, Kernels: []trace.Kernel{mk(0, 200, 1<<33), mk(1, 100, 1<<33+1<<19)}},
			{Index: 1, Kernels: []trace.Kernel{mk(0, 10, 1<<33)}},
		},
	}
}

func TestRunDrivesModelThroughAllPhases(t *testing.T) {
	m := &recordingModel{}
	res := Run(twoGPUProgram(), m)
	if !reflect.DeepEqual(m.phases, []int{0, 1}) || !reflect.DeepEqual(m.endPhases, []int{0, 1}) {
		t.Fatalf("phases %v / ends %v", m.phases, m.endPhases)
	}
	if !m.finished {
		t.Fatal("Finish not called")
	}
	if len(m.accesses) != 310 {
		t.Fatalf("accesses = %d, want 310", len(m.accesses))
	}
	if len(res.Phases) != 2 {
		t.Fatalf("result phases = %d", len(res.Phases))
	}
	if res.Paradigm != "recorder" {
		t.Fatalf("paradigm = %q", res.Paradigm)
	}
}

func TestRunInterleavesKernelsInChunks(t *testing.T) {
	m := &recordingModel{}
	Run(twoGPUProgram(), m)
	// Phase 0 has 200 accesses on GPU0 and 100 on GPU1; chunked round-robin
	// means GPU1 must appear before GPU0 finishes.
	firstG1 := -1
	lastG0 := -1
	for i, a := range m.accesses[:300] {
		if a.gpu == 1 && firstG1 < 0 {
			firstG1 = i
		}
		if a.gpu == 0 {
			lastG0 = i
		}
	}
	if firstG1 < 0 || firstG1 > 128 {
		t.Fatalf("GPU1 first ran at position %d; expected early interleaving", firstG1)
	}
	if lastG0 < firstG1 {
		t.Fatal("GPU0 finished entirely before GPU1 started: no interleaving")
	}
}

func TestRunAccountsComputeAndLocalStream(t *testing.T) {
	m := &recordingModel{}
	res := Run(twoGPUProgram(), m)
	p0 := res.Phases[0].Profiles[0]
	if p0.ComputeOps != 100 {
		t.Fatalf("ComputeOps = %d", p0.ComputeOps)
	}
	if p0.LocalBytes != 4096 {
		t.Fatalf("LocalBytes = %d, want LocalStreamBytes", p0.LocalBytes)
	}
	p1 := res.Phases[1].Profiles[1]
	if p1.ComputeOps != 0 {
		t.Fatal("idle GPU charged compute")
	}
}

func TestProfileRemoteBytes(t *testing.T) {
	p := NewProfile(0, 3)
	p.RemoteRead[1] = 100
	p.Push[2] = 200
	p.Bulk[1] = 300
	if p.RemoteBytes() != 600 {
		t.Fatalf("RemoteBytes = %d", p.RemoteBytes())
	}
}

func TestResultInterconnectBytesSlicing(t *testing.T) {
	res := &Result{Meta: trace.Meta{NumGPUs: 2, ProfilePhases: 1}}
	for i := 0; i < 3; i++ {
		p := NewProfile(0, 2)
		p.Push[1] = 100
		res.Phases = append(res.Phases, PhaseRecord{Index: i, Profiles: []Profile{p, NewProfile(1, 2)}})
	}
	if res.InterconnectBytes(0) != 300 {
		t.Fatal("full sum wrong")
	}
	if res.InterconnectBytes(1) != 200 {
		t.Fatal("steady-state slice wrong")
	}
}

func TestScanSharing(t *testing.T) {
	prog := &trace.Recorded{
		M: trace.Meta{Name: "s", NumGPUs: 2, Regions: []trace.Region{
			{Name: "sh", Kind: trace.RegionShared, Base: 1 << 33, Size: 1 << 20},
			{Name: "pv", Kind: trace.RegionPrivate, Base: 2 << 33, Size: 1 << 20},
		}},
		Ph: []trace.Phase{
			{Index: 0, Kernels: []trace.Kernel{
				{GPU: 0, Name: "w", Accesses: []trace.Access{
					{Op: trace.OpStore, Pattern: trace.PatContiguous, Threads: 32, ElemBytes: 4, Addr: 1 << 33},
					{Op: trace.OpStore, Pattern: trace.PatContiguous, Threads: 32, ElemBytes: 4, Addr: 1 << 33},
					{Op: trace.OpStore, Pattern: trace.PatContiguous, Threads: 32, ElemBytes: 4, Addr: 2 << 33}, // private: ignored
				}},
				{GPU: 1, Name: "rw", Accesses: []trace.Access{
					{Op: trace.OpLoad, Pattern: trace.PatContiguous, Threads: 32, ElemBytes: 4, Addr: 1 << 33},
					{Op: trace.OpStore, Pattern: trace.PatContiguous, Threads: 32, ElemBytes: 4, Addr: 1 << 33},
				}},
			}},
			// Phase beyond the scan limit: must be ignored.
			{Index: 1, Kernels: []trace.Kernel{
				{GPU: 1, Name: "late", Accesses: []trace.Access{
					{Op: trace.OpStore, Pattern: trace.PatContiguous, Threads: 32, ElemBytes: 4, Addr: 1<<33 + 1<<19},
				}},
			}},
		},
	}
	sharing := ScanSharing(prog, 1, 64<<10)
	vpn := uint64(1<<33) / (64 << 10)
	s := sharing[vpn]
	if s == nil {
		t.Fatal("page not scanned")
	}
	if s.Writers != 0b11 || s.Readers != 0b10 {
		t.Fatalf("writers %b readers %b", s.Writers, s.Readers)
	}
	// GPU0 wrote twice, GPU1 once: GPU0 dominates.
	if s.DominantWriter() != 0 {
		t.Fatalf("dominant = %d", s.DominantWriter())
	}
	lateVPN := uint64(1<<33+1<<19) / (64 << 10)
	if sharing[lateVPN] != nil {
		t.Fatal("phase beyond scan limit leaked into sharing")
	}
	// Private pages never appear.
	if sharing[uint64(2<<33)/(64<<10)] != nil {
		t.Fatal("private page scanned")
	}
}

func TestDominantWriterEmpty(t *testing.T) {
	s := &Sharing{}
	if s.DominantWriter() != -1 {
		t.Fatal("empty sharing should have no dominant writer")
	}
}

// Regression: a phase containing a kernel with zero accesses used to spin
// Run's round-robin loop forever, because `remaining` counted every kernel
// but only kernels that reach their end of stream ever decremented it.
func TestRunEmptyKernelTerminates(t *testing.T) {
	work := trace.Kernel{GPU: 0, Name: "work", Accesses: []trace.Access{
		{Op: trace.OpStore, Pattern: trace.PatContiguous, Threads: 32, ElemBytes: 4, Addr: 1 << 33},
	}}
	prog := &trace.Recorded{
		M: trace.Meta{Name: "empty", NumGPUs: 2, Regions: []trace.Region{
			{Name: "r", Kind: trace.RegionShared, Base: 1 << 33, Size: 1 << 20},
		}},
		Ph: []trace.Phase{
			// A barrier-only kernel (zero accesses) alongside a working one...
			{Index: 0, Kernels: []trace.Kernel{work, {GPU: 1, Name: "barrier"}}},
			// ...and a phase where every kernel is empty.
			{Index: 1, Kernels: []trace.Kernel{{GPU: 0, Name: "idle"}}},
		},
	}
	m := &recordingModel{}
	done := make(chan *Result, 1)
	go func() { done <- Run(prog, m) }()
	select {
	case res := <-done:
		if len(res.Phases) != 2 {
			t.Fatalf("result phases = %d, want 2", len(res.Phases))
		}
		if len(m.accesses) != 1 {
			t.Fatalf("accesses = %d, want 1", len(m.accesses))
		}
	case <-time.After(10 * time.Second):
		t.Fatal("engine.Run hung on a phase containing a zero-access kernel")
	}
}

func TestRunIsDeterministic(t *testing.T) {
	run := func() []recordedAccess {
		m := &recordingModel{}
		Run(twoGPUProgram(), m)
		return m.accesses
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("engine replay is not deterministic")
	}
}

// phaseRecorder is a PhaseObserver that records the hook sequence.
type phaseRecorder struct {
	starts  []int
	kernels []int
	ends    []int
}

func (p *phaseRecorder) PhaseStart(index, kernels int) {
	p.starts = append(p.starts, index)
	p.kernels = append(p.kernels, kernels)
}
func (p *phaseRecorder) PhaseEnd(index int) { p.ends = append(p.ends, index) }

// TestRunObservedPhaseHooks: the observer sees every phase start before its
// model callbacks and every end after, with the kernel count, and a nil
// observer behaves exactly like Run.
func TestRunObservedPhaseHooks(t *testing.T) {
	m := &recordingModel{}
	po := &phaseRecorder{}
	res := RunObserved(twoGPUProgram(), m, po)
	if !reflect.DeepEqual(po.starts, []int{0, 1}) || !reflect.DeepEqual(po.ends, []int{0, 1}) {
		t.Fatalf("observer starts %v / ends %v, want [0 1] each", po.starts, po.ends)
	}
	if !reflect.DeepEqual(po.kernels, []int{2, 1}) {
		t.Fatalf("observer kernel counts %v, want [2 1]", po.kernels)
	}
	plain := Run(twoGPUProgram(), &recordingModel{})
	if !reflect.DeepEqual(res.Phases, plain.Phases) {
		t.Fatal("RunObserved result differs from Run")
	}
}
