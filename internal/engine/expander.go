package engine

import "gps/internal/trace"

// Expander models the SM-level memory coalescer: it turns one warp
// instruction into the set of distinct cache lines the memory system sees.
// Lanes of one instruction that fall in the same cache block merge — this is
// why well-behaved stencil codes like Jacobi present each line exactly once
// to the GPS write queue and see a 0% queue hit rate (Section 7.4: "all
// spatial locality is fully captured in the coalescer internal to the SM").
type Expander struct {
	lineBytes uint64
	buf       []uint64
}

// NewExpander builds an expander for the given cache block size.
func NewExpander(lineBytes uint64) *Expander {
	return &Expander{lineBytes: lineBytes, buf: make([]uint64, 0, 32)}
}

// Expand returns the line-aligned addresses the instruction touches, after
// intra-warp coalescing. The returned slice is reused by the next call.
func (e *Expander) Expand(a trace.Access) []uint64 {
	e.buf = e.AppendLines(e.buf[:0], a)
	return e.buf
}

// AppendLines appends the instruction's coalesced lines to dst and returns
// the extended slice. The batched replay uses it to pack a whole chunk of
// instructions into one flat buffer.
func (e *Expander) AppendLines(dst []uint64, a trace.Access) []uint64 {
	if a.Op == trace.OpFence {
		return dst
	}
	start := len(dst)
	switch a.Pattern {
	case trace.PatContiguous:
		span := uint64(a.Threads) * uint64(a.ElemBytes)
		first := a.Addr &^ (e.lineBytes - 1)
		last := (a.Addr + span - 1) &^ (e.lineBytes - 1)
		for line := first; line <= last; line += e.lineBytes {
			dst = append(dst, line)
		}
	case trace.PatStrided:
		for lane := 0; lane < int(a.Threads); lane++ {
			va := a.Addr + uint64(lane)*uint64(a.Stride)
			dst = push(dst, start, va&^(e.lineBytes-1))
		}
	case trace.PatScattered:
		// trace.Validate rejects Stride == 0, but Expand must also hold up
		// against hand-built or decoded traces that skipped validation: an
		// empty window degenerates to a single line rather than a % 0 panic.
		window := uint64(a.Stride)
		if window == 0 {
			window = 1
		}
		for lane := 0; lane < int(a.Threads); lane++ {
			h := splitmix32(a.Seed + uint32(lane)*0x9e3779b9)
			lineIdx := uint64(h) % window
			dst = push(dst, start, a.Addr&^(e.lineBytes-1)+lineIdx*e.lineBytes)
		}
	}
	return dst
}

// push appends a line if the coalescer has not already emitted it for this
// instruction, i.e. within dst[start:] (linear scan: at most 32 entries).
func push(dst []uint64, start int, line uint64) []uint64 {
	for _, l := range dst[start:] {
		if l == line {
			return dst
		}
	}
	return append(dst, line)
}

// splitmix32 is a tiny deterministic mixer for scattered lane addresses.
func splitmix32(x uint32) uint32 {
	x += 0x9e3779b9
	x ^= x >> 16
	x *= 0x21f0aaad
	x ^= x >> 15
	x *= 0x735a2d97
	x ^= x >> 15
	return x
}
