package engine

import (
	"sync"

	"gps/internal/trace"
)

// Sharded replay parallelizes one structural run across goroutines while
// keeping the Result byte-identical to the sequential replay at any shard
// count. The trick is that every paradigm's per-access state decomposes
// along one of two axes:
//
//   - ShardByGPU: all mutable state is per-GPU (GPS write queues, TLBs,
//     translation units). Each shard replays the kernels of the GPUs it
//     owns with the exact sequential round-robin interleaving; per-GPU
//     streams never interact during a phase, so per-shard replay is
//     bit-exact.
//   - ShardByPage: all mutable state is per-page (UM residency, RDL last
//     writer, memcpy dirty sets). Each shard replays the full instruction
//     stream in the sequential global order but only applies the cache
//     lines whose partition key hashes to it, so every page sees its
//     accesses in exactly the sequential order.
//
// Either way, each shard accumulates into its own Profile vector (backed by
// a private slab, so shards never share a cache line) and the coordinator
// merges them with a deterministic sum in shard order at the phase barrier.
// Cross-shard state (the GPS manager's page tables) is only read during a
// phase and only mutated at barriers, on the coordinator.

// ShardAxis says how a model's state partitions for parallel replay.
type ShardAxis int

const (
	// ShardNone: the model has cross-cutting per-access state and must
	// replay sequentially (RunSharded falls back to RunObserved).
	ShardNone ShardAxis = iota
	// ShardByPage: state is keyed by page; shards own disjoint page sets.
	ShardByPage
	// ShardByGPU: state is keyed by GPU; shards own disjoint GPU sets
	// (GPU g belongs to shard g % shards).
	ShardByGPU
)

// ShardPlan describes how to partition a model's replay.
type ShardPlan struct {
	Axis ShardAxis
	// LineShift is the page-axis partition key granularity: line addresses
	// with equal (line >> LineShift) % shards belong to the same shard. It
	// must be at least the model's page shift (coarser is fine as long as
	// the model never couples pages across a 1<<LineShift boundary).
	LineShift uint
}

// ShardableModel is a Model that can fork per-shard replicas for parallel
// replay. Fork(shard, shards) returns a replica that will observe exactly
// the slice of the access stream its plan assigns to shard; replicas run
// concurrently on separate goroutines and must not share mutable state with
// each other (read-only structures of the parent are fine).
type ShardableModel interface {
	Model
	ShardPlan() ShardPlan
	Fork(shard, shards int) Model
}

// ShardBarrierModel lets the parent model take over the phase barrier: it
// is called on the coordinator goroutine after all shards joined, instead
// of calling EndPhase on each replica. Models that must merge cross-shard
// state at barriers (the GPS profiling sweep) implement it.
type ShardBarrierModel interface {
	ShardableModel
	EndPhaseSharded(index int, replicas []Model)
}

// ShardFinishModel lets the parent model assemble the end-of-run statistics
// from its replicas; without it, the parent's own Finish runs (correct for
// models whose Finish is a no-op).
type ShardFinishModel interface {
	ShardableModel
	FinishSharded(res *Result, replicas []Model)
}

// ShardObserver extends PhaseObserver with per-shard events. ShardStart and
// ShardEnd are called from the shard's goroutine and must be safe for
// concurrent use across shards.
type ShardObserver interface {
	PhaseObserver
	ShardStart(phase, shard int)
	ShardEnd(phase, shard int)
}

// RunSharded replays prog through m on `shards` goroutines. The result is
// byte-identical to Run at any shard count; shards <= 1, a model without a
// shard plan, or a ShardNone plan fall back to the sequential replay.
func RunSharded(prog trace.Program, m Model, shards int) *Result {
	return RunShardedObserved(prog, m, shards, nil)
}

// RunShardedObserved is RunSharded with an optional phase observer. If the
// observer also implements ShardObserver it additionally receives per-shard
// start/end events from the shard goroutines.
func RunShardedObserved(prog trace.Program, m Model, shards int, po PhaseObserver) *Result {
	sm, shardable := m.(ShardableModel)
	var plan ShardPlan
	if shardable {
		plan = sm.ShardPlan()
	}
	meta := prog.Meta()
	n := meta.NumGPUs
	if plan.Axis == ShardByGPU && shards > n {
		shards = n // extra GPU shards would own no kernels
	}
	if !shardable || plan.Axis == ShardNone || shards <= 1 {
		return RunObserved(prog, m, po)
	}
	so, _ := po.(ShardObserver)

	res := &Result{Meta: meta, Paradigm: m.Name()}
	reps := make([]Model, shards)
	workers := make([]*shardWorker, shards)
	for s := range reps {
		reps[s] = sm.Fork(s, shards)
		workers[s] = &shardWorker{exp: NewExpander(LineBytes)}
	}
	barrier, hasBarrier := sm.(ShardBarrierModel)
	panics := make([]any, shards)

	// The coordinator iterates phases on the calling goroutine (a *Phase is
	// only valid inside the yield) and fans each phase out to the shard
	// goroutines, which join before the next phase starts.
	prog.Phases(func(ph *trace.Phase) bool {
		if po != nil {
			po.PhaseStart(ph.Index, len(ph.Kernels))
		}
		perShard := make([][]Profile, shards)
		for s := range perShard {
			perShard[s] = newProfiles(n)
			reps[s].BeginPhase(ph.Index, perShard[s])
			panics[s] = nil
		}
		var wg sync.WaitGroup
		for s := 0; s < shards; s++ {
			wg.Add(1)
			go func(s int) {
				defer wg.Done()
				defer func() {
					if r := recover(); r != nil {
						panics[s] = r
					}
				}()
				if so != nil {
					so.ShardStart(ph.Index, s)
					defer so.ShardEnd(ph.Index, s)
				}
				workers[s].replay(reps[s], ph, plan, s, shards)
			}(s)
		}
		wg.Wait()
		for _, p := range panics {
			if p != nil {
				// Re-panic the lowest shard's original value on the
				// coordinator, mirroring the sequential replay's behavior
				// (lowest shard == earliest point in the sequential order).
				panic(p)
			}
		}

		if hasBarrier {
			barrier.EndPhaseSharded(ph.Index, reps)
		} else {
			for _, rep := range reps {
				rep.EndPhase(ph.Index)
			}
		}

		// Deterministic reduction: the canonical vector alone carries the
		// kernel preloads (replicas start from zero), then every replica's
		// counters are summed in shard order. Each counter is written by
		// exactly one shard, so the sum equals the sequential value.
		profiles := newProfiles(n)
		for _, k := range ph.Kernels {
			profiles[k.GPU].ComputeOps += k.ComputeOps
			profiles[k.GPU].LocalBytes += k.LocalStreamBytes
		}
		for s := range perShard {
			addProfiles(profiles, perShard[s])
		}
		res.Phases = append(res.Phases, PhaseRecord{Index: ph.Index, Profiles: profiles})
		if po != nil {
			po.PhaseEnd(ph.Index)
		}
		return true
	})
	if fin, ok := sm.(ShardFinishModel); ok {
		fin.FinishSharded(res, reps)
	} else {
		m.Finish(res)
	}
	return res
}

// addProfiles accumulates src into dst element-wise.
func addProfiles(dst, src []Profile) {
	for g := range dst {
		d, s := &dst[g], &src[g]
		d.ComputeOps += s.ComputeOps
		d.LocalBytes += s.LocalBytes
		d.RemoteReadLines += s.RemoteReadLines
		d.Faults += s.Faults
		d.Shootdowns += s.Shootdowns
		for p := range d.RemoteRead {
			d.RemoteRead[p] += s.RemoteRead[p]
			d.Push[p] += s.Push[p]
			d.Bulk[p] += s.Bulk[p]
		}
	}
}

// shardWorker is one shard's replay scratch: its own expander, batch,
// cursor, and block-decode state, so shards share nothing on the hot path.
// (Columnar blocks are decoded independently per shard: the page axis needs
// every shard to see the full stream anyway, and the GPU axis never decodes
// kernels the shard does not own.)
type shardWorker struct {
	exp     *Expander
	batch   Batch
	tmp     []uint64 // page-axis: unfiltered lines of one instruction
	cursors []int
	readers []blockCursor
}

// replay runs the shard's slice of one phase. The loop is the sequential
// round-robin of RunObserved with one of two filters applied:
//
//   - GPU axis: kernels of GPUs the shard does not own are skipped whole.
//     Owned kernels advance through the identical chunk schedule, so each
//     GPU's stream order matches the sequential replay exactly.
//   - Page axis: every kernel is replayed in full order, but each
//     instruction's coalesced lines are filtered to the shard's partition
//     (empty instructions are kept so fences and batch offsets line up).
func (w *shardWorker) replay(m Model, ph *trace.Phase, plan ShardPlan, shard, shards int) {
	byGPU := plan.Axis == ShardByGPU
	bm, _ := m.(BatchModel)
	ks := ph.Kernels
	if cap(w.cursors) < len(ks) {
		w.cursors = make([]int, len(ks))
	} else {
		w.cursors = w.cursors[:len(ks)]
		for i := range w.cursors {
			w.cursors[i] = 0
		}
	}
	for len(w.readers) < len(ks) {
		w.readers = append(w.readers, blockCursor{})
	}
	rs := w.readers[:len(ks)]
	for ki := range ks {
		rs[ki].reset(&ks[ki])
	}
	remaining := 0
	for ki := range ks {
		if byGPU && ks[ki].GPU%shards != shard {
			w.cursors[ki] = rs[ki].n // not ours: mark done, never decoded
			continue
		}
		if rs[ki].n > 0 {
			remaining++
		}
	}
	for remaining > 0 {
		for ki := range ks {
			k := &ks[ki]
			r := &rs[ki]
			if w.cursors[ki] >= r.n {
				continue
			}
			end := w.cursors[ki] + chunk
			if end >= r.n {
				end = r.n
				remaining--
			}
			accs := r.window(w.cursors[ki], end)
			if bm != nil {
				w.batch.Accs = accs
				w.batch.Offs = append(w.batch.Offs[:0], 0)
				w.batch.Lines = w.batch.Lines[:0]
				for _, a := range accs {
					if byGPU {
						w.batch.Lines = w.exp.AppendLines(w.batch.Lines, a)
					} else {
						w.tmp = w.exp.AppendLines(w.tmp[:0], a)
						for _, line := range w.tmp {
							if (line>>plan.LineShift)%uint64(shards) == uint64(shard) {
								w.batch.Lines = append(w.batch.Lines, line)
							}
						}
					}
					w.batch.Offs = append(w.batch.Offs, int32(len(w.batch.Lines)))
				}
				bm.AccessBatch(k.GPU, &w.batch)
			} else {
				for _, a := range accs {
					lines := w.exp.Expand(a)
					if !byGPU {
						filtered := w.tmp[:0]
						for _, line := range lines {
							if (line>>plan.LineShift)%uint64(shards) == uint64(shard) {
								filtered = append(filtered, line)
							}
						}
						w.tmp = filtered
						lines = filtered
					}
					m.Access(k.GPU, a, lines)
				}
			}
			w.cursors[ki] = end
		}
	}
}
