package engine

import (
	"testing"
	"testing/quick"

	"gps/internal/trace"
)

func TestExpandContiguousSingleLine(t *testing.T) {
	e := NewExpander(128)
	// 32 lanes x 4 B starting line-aligned: exactly one line.
	lines := e.Expand(trace.Access{Op: trace.OpLoad, Pattern: trace.PatContiguous,
		Threads: 32, ElemBytes: 4, Addr: 256})
	if len(lines) != 1 || lines[0] != 256 {
		t.Fatalf("lines = %v, want [256]", lines)
	}
}

func TestExpandContiguousStraddle(t *testing.T) {
	e := NewExpander(128)
	// Misaligned base straddles two lines.
	lines := e.Expand(trace.Access{Op: trace.OpLoad, Pattern: trace.PatContiguous,
		Threads: 32, ElemBytes: 4, Addr: 64})
	if len(lines) != 2 || lines[0] != 0 || lines[1] != 128 {
		t.Fatalf("lines = %v, want [0 128]", lines)
	}
	// 32 lanes x 8 B = 256 B aligned: two lines.
	lines = e.Expand(trace.Access{Op: trace.OpLoad, Pattern: trace.PatContiguous,
		Threads: 32, ElemBytes: 8, Addr: 0})
	if len(lines) != 2 {
		t.Fatalf("wide access lines = %v", lines)
	}
}

func TestExpandStrided(t *testing.T) {
	e := NewExpander(128)
	// Stride 256: every lane on its own line.
	lines := e.Expand(trace.Access{Op: trace.OpLoad, Pattern: trace.PatStrided,
		Threads: 8, ElemBytes: 4, Stride: 256, Addr: 0})
	if len(lines) != 8 {
		t.Fatalf("got %d lines, want 8", len(lines))
	}
	// Stride 32: four lanes share each line.
	lines = e.Expand(trace.Access{Op: trace.OpLoad, Pattern: trace.PatStrided,
		Threads: 8, ElemBytes: 4, Stride: 32, Addr: 0})
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2 (coalesced)", len(lines))
	}
}

func TestExpandScatteredDeterministicAndBounded(t *testing.T) {
	e := NewExpander(128)
	a := trace.Access{Op: trace.OpAtomic, Pattern: trace.PatScattered,
		Threads: 32, ElemBytes: 4, Stride: 1000, Seed: 42, Addr: 128 * 4096}
	first := append([]uint64{}, e.Expand(a)...)
	second := e.Expand(a)
	if len(first) != len(second) {
		t.Fatal("scatter not deterministic")
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatal("scatter not deterministic")
		}
	}
	if len(first) == 0 || len(first) > 32 {
		t.Fatalf("scatter produced %d lines", len(first))
	}
	for _, l := range first {
		if l%128 != 0 {
			t.Fatalf("line %d not aligned", l)
		}
		idx := (l - 128*4096) / 128
		if idx >= 1000 {
			t.Fatalf("line index %d outside window", idx)
		}
	}
}

func TestExpandScatteredNoDuplicates(t *testing.T) {
	e := NewExpander(128)
	lines := e.Expand(trace.Access{Op: trace.OpStore, Pattern: trace.PatScattered,
		Threads: 32, ElemBytes: 4, Stride: 4, Seed: 9, Addr: 0})
	// Window of 4 lines with 32 lanes: after coalescing at most 4 lines.
	if len(lines) > 4 {
		t.Fatalf("duplicates survived coalescing: %v", lines)
	}
	seen := map[uint64]bool{}
	for _, l := range lines {
		if seen[l] {
			t.Fatalf("duplicate line %d", l)
		}
		seen[l] = true
	}
}

func TestExpandScatteredZeroStride(t *testing.T) {
	e := NewExpander(128)
	// A zero window would be a divide-by-zero; trace.Validate rejects it but
	// Expand must survive hand-built traces: degenerate to a single line.
	lines := e.Expand(trace.Access{Op: trace.OpStore, Pattern: trace.PatScattered,
		Threads: 32, ElemBytes: 4, Stride: 0, Seed: 7, Addr: 128 * 10})
	if len(lines) != 1 || lines[0] != 128*10 {
		t.Fatalf("lines = %v, want [%d]", lines, 128*10)
	}
}

func TestExpandFence(t *testing.T) {
	e := NewExpander(128)
	if lines := e.Expand(trace.Access{Op: trace.OpFence, Scope: trace.ScopeSys}); len(lines) != 0 {
		t.Fatal("fence should touch no lines")
	}
}

// Property: every expanded line is line-aligned, unique, and within the
// instruction's reachable footprint.
func TestExpandProperty(t *testing.T) {
	e := NewExpander(128)
	f := func(op uint8, pat uint8, threads uint8, stride uint32, seed uint32, addr uint64) bool {
		a := trace.Access{
			Op:      trace.Op(op % 3),
			Pattern: trace.Pattern(pat % 3),
			Threads: threads%32 + 1, ElemBytes: 4,
			Stride: stride%8192 + 1, Seed: seed,
			Addr: addr % (1 << 40),
		}
		lines := e.Expand(a)
		if len(lines) == 0 || len(lines) > 64 {
			return false
		}
		seen := map[uint64]bool{}
		for _, l := range lines {
			if l%128 != 0 || seen[l] {
				return false
			}
			seen[l] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestRegionTableLookup(t *testing.T) {
	regions := []trace.Region{
		{Name: "a", Base: 1 << 33, Size: 1 << 20},
		{Name: "b", Base: 2 << 33, Size: 1 << 22},
	}
	rt := NewRegionTable(regions)
	if r := rt.Lookup(1<<33 + 100); r == nil || r.Name != "a" {
		t.Fatalf("Lookup a = %v", r)
	}
	if r := rt.Lookup(2<<33 + (1<<22 - 1)); r == nil || r.Name != "b" {
		t.Fatalf("Lookup b end = %v", r)
	}
	if r := rt.Lookup(2<<33 + 1<<22); r != nil {
		t.Fatal("Lookup past region end should be nil")
	}
	if r := rt.Lookup(5 << 33); r != nil {
		t.Fatal("Lookup empty slot should be nil")
	}
}

func TestRegionTableRejectsMisaligned(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("misaligned region accepted")
		}
	}()
	NewRegionTable([]trace.Region{{Name: "x", Base: 100, Size: 10}})
}

func BenchmarkExpandContiguous(b *testing.B) {
	e := NewExpander(128)
	a := trace.Access{Op: trace.OpLoad, Pattern: trace.PatContiguous, Threads: 32, ElemBytes: 4, Addr: 0}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a.Addr = uint64(i%4096) * 128
		e.Expand(a)
	}
}

func BenchmarkExpandScattered(b *testing.B) {
	e := NewExpander(128)
	a := trace.Access{Op: trace.OpAtomic, Pattern: trace.PatScattered, Threads: 32, ElemBytes: 4, Stride: 4096, Addr: 0}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a.Seed = uint32(i)
		e.Expand(a)
	}
}
