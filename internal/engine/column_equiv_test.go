package engine

import (
	"reflect"
	"testing"

	"gps/internal/trace"
)

// TestRunColumnarMatchesFlat replays the same program from flat slices,
// columnar blocks, and spilled columnar blocks, and requires the model to see
// an identical access stream and the engine to produce an identical result.
// This is the storage-equivalence oracle for the block-cursor replay path.
func TestRunColumnarMatchesFlat(t *testing.T) {
	flat := twoGPUProgram()
	col := trace.Columnize(flat)
	spilled := trace.Columnize(flat)
	sf, err := trace.NewSpillFile(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if freed, err := spilled.Spill(sf); err != nil || freed == 0 {
		t.Fatalf("spill: freed %d, err %v", freed, err)
	}

	run := func(p trace.Program) (*recordingModel, *Result) {
		m := &recordingModel{}
		return m, Run(p, m)
	}
	mFlat, rFlat := run(flat)
	for name, p := range map[string]trace.Program{"columnar": col, "spilled": spilled} {
		m, r := run(p)
		if !reflect.DeepEqual(m.accesses, mFlat.accesses) {
			t.Fatalf("%s replay fed the model a different access stream", name)
		}
		if !reflect.DeepEqual(r, rFlat) {
			t.Fatalf("%s replay produced a different result", name)
		}
	}
}

// TestRunShardedColumnarMatchesFlat checks the sharded replay path decodes
// blocks identically on both shard axes and at several widths.
func TestRunShardedColumnarMatchesFlat(t *testing.T) {
	flat := twoGPUProgram()
	col := trace.Columnize(flat)
	spilled := trace.Columnize(flat)
	sf, err := trace.NewSpillFile(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := spilled.Spill(sf); err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{1, 2, 8} {
		m := &recordingModel{}
		want := RunSharded(flat, m, shards)
		for name, p := range map[string]trace.Program{"columnar": col, "spilled": spilled} {
			m2 := &recordingModel{}
			got := RunSharded(p, m2, shards)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("shards=%d: %s result diverged from flat", shards, name)
			}
		}
	}
}

// TestRunPanicsOnUnreadableBlock documents the failure mode: a block that can
// no longer be fetched panics out of the replay loop (the experiment runner's
// fences turn this into a typed cell error).
func TestRunPanicsOnUnreadableBlock(t *testing.T) {
	col := trace.Columnize(twoGPUProgram())
	sf, err := trace.NewSpillFile(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := col.Spill(sf); err != nil {
		t.Fatal(err)
	}
	if err := sf.Close(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("replay of an unreadable block did not panic")
		}
	}()
	Run(col, &recordingModel{})
}
