package engine_test

import (
	"fmt"
	"testing"

	"gps/internal/engine"
	"gps/internal/paradigm"
	"gps/internal/workload"
)

// benchConfig keeps the traces small enough that one engine.Run iteration
// is a few milliseconds: these benchmarks exist to profile the per-access
// hot path, not the experiment matrix.
var benchConfig = workload.Config{NumGPUs: 4, Iterations: 2, Scale: 1, Seed: 1}

// BenchmarkEngineRun replays a quick Jacobi (peer-to-peer halos) and
// Pagerank (many-to-many atomics) trace through every headline paradigm.
func BenchmarkEngineRun(b *testing.B) {
	for _, app := range []string{"jacobi", "pagerank"} {
		spec, err := workload.ByName(app)
		if err != nil {
			b.Fatal(err)
		}
		prog := spec.Build(benchConfig)
		for _, kind := range paradigm.Figure8Kinds() {
			b.Run(fmt.Sprintf("%s/%s", app, kind), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					m, err := paradigm.New(kind, prog, paradigm.DefaultConfig())
					if err != nil {
						b.Fatal(err)
					}
					engine.Run(prog, m)
				}
			})
		}
	}
}

func BenchmarkScanSharing(b *testing.B) {
	spec, err := workload.ByName("jacobi")
	if err != nil {
		b.Fatal(err)
	}
	prog := spec.Build(benchConfig)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		engine.ScanSharing(prog, prog.Meta().ProfilePhases, 64<<10)
	}
}
