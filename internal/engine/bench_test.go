package engine_test

import (
	"fmt"
	"testing"

	"gps/internal/engine"
	"gps/internal/paradigm"
	"gps/internal/trace"
	"gps/internal/workload"
)

// benchConfig keeps the traces small enough that one engine.Run iteration
// is a few milliseconds: these benchmarks exist to profile the per-access
// hot path, not the experiment matrix.
var benchConfig = workload.Config{NumGPUs: 4, Iterations: 2, Scale: 1, Seed: 1}

// BenchmarkEngineRun replays a quick Jacobi (peer-to-peer halos) and
// Pagerank (many-to-many atomics) trace through every headline paradigm.
func BenchmarkEngineRun(b *testing.B) {
	for _, app := range []string{"jacobi", "pagerank"} {
		spec, err := workload.ByName(app)
		if err != nil {
			b.Fatal(err)
		}
		prog := spec.Build(benchConfig)
		for _, kind := range paradigm.Figure8Kinds() {
			b.Run(fmt.Sprintf("%s/%s", app, kind), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					m, err := paradigm.New(kind, prog, paradigm.DefaultConfig())
					if err != nil {
						b.Fatal(err)
					}
					engine.Run(prog, m)
				}
			})
		}
	}
}

// BenchmarkEngineRunSharded replays a 16-GPU HIT trace through GPS at
// several shard counts. The shards=1 case goes through the sharded entry
// point but falls back to the sequential path, so the spread between
// shards=1 and shards=8 is the parallel speedup (plus fork/merge overhead);
// on a single-core box expect the overhead only.
func BenchmarkEngineRunSharded(b *testing.B) {
	cfg := workload.Config{NumGPUs: 16, Iterations: 2, Scale: 1, Seed: 1}
	spec, err := workload.ByName("hit")
	if err != nil {
		b.Fatal(err)
	}
	prog := spec.Build(cfg)
	for _, shards := range []int{1, 2, 8} {
		b.Run(fmt.Sprintf("hit/gps/shards=%d", shards), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				m, err := paradigm.New(paradigm.KindGPS, prog, paradigm.DefaultConfig())
				if err != nil {
					b.Fatal(err)
				}
				engine.RunSharded(prog, m, shards)
			}
		})
	}
}

// BenchmarkEngineRunStorage pits the two trace storage forms against each
// other on the same materialized program (mirroring the runner's trace
// cache): flat []Access replay versus columnar block decode. The columnar
// variant is what production replay now runs; the flat variant is the old
// layout kept for comparison.
func BenchmarkEngineRunStorage(b *testing.B) {
	spec, err := workload.ByName("jacobi")
	if err != nil {
		b.Fatal(err)
	}
	columnar := trace.Collect(spec.Build(benchConfig))
	flat := trace.Flatten(columnar)
	for _, v := range []struct {
		name string
		prog trace.Program
	}{{"columnar", columnar}, {"flat", flat}} {
		b.Run("jacobi/gps/"+v.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				m, err := paradigm.New(paradigm.KindGPS, v.prog, paradigm.DefaultConfig())
				if err != nil {
					b.Fatal(err)
				}
				engine.Run(v.prog, m)
			}
		})
	}
}

func BenchmarkScanSharing(b *testing.B) {
	spec, err := workload.ByName("jacobi")
	if err != nil {
		b.Fatal(err)
	}
	prog := spec.Build(benchConfig)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		engine.ScanSharing(prog, prog.Meta().ProfilePhases, 64<<10)
	}
}
