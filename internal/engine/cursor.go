package engine

import (
	"fmt"

	"gps/internal/trace"
)

// chunk must divide trace.BlockAccesses so the round-robin replay windows
// never straddle a block boundary (the compile fails here otherwise).
const _ = uint(-(trace.BlockAccesses % chunk))

// blockCursor serves sequential windows of one kernel's instruction stream
// regardless of storage form: flat kernels are sliced directly; columnar
// kernels decode one block at a time into the cursor's private decoder
// buffer, so a full []Access is never materialized during replay. Each
// kernel slot in a replay (and each shard) owns its own cursor, because the
// round-robin revisits kernels while their neighbors' windows are live.
type blockCursor struct {
	flat       []trace.Access
	col        *trace.ColumnAccesses
	dec        trace.BlockDecoder
	cur        []trace.Access // decoded records of block blockIdx
	blockIdx   int
	blockStart int
	n          int
}

// reset points the cursor at k's stream, keeping the decode buffers.
func (c *blockCursor) reset(k *trace.Kernel) {
	c.flat = k.Accesses
	c.col = k.Col
	c.cur = nil
	c.blockIdx = -1
	c.blockStart = 0
	c.n = k.NumAccesses()
}

// window returns records [start, end). Both bounds must fall inside one
// block (guaranteed by chunk | BlockAccesses); the slice is valid until the
// next window call on this cursor. Decode and spill-read failures panic —
// the engine has no error path per access, traces are validated at
// construction, and the experiment runner's panic fences turn the panic
// into a typed cell error.
func (c *blockCursor) window(start, end int) []trace.Access {
	if c.col == nil {
		return c.flat[start:end]
	}
	if bi := start / trace.BlockAccesses; bi != c.blockIdx {
		accs, err := c.dec.Decode(c.col, bi)
		if err != nil {
			panic(fmt.Sprintf("engine: decoding trace block %d: %v", bi, err))
		}
		c.blockIdx = bi
		c.blockStart = bi * trace.BlockAccesses
		c.cur = accs
	}
	return c.cur[start-c.blockStart : end-c.blockStart]
}
