// Package engine is the structural (functional, per-access) half of the
// simulator: it replays every warp instruction of a trace through a memory
// management paradigm's machinery and produces, for each (phase, GPU), a
// traffic profile the timing simulator (internal/timing) prices.
//
// The engine deliberately separates *what moves* from *how long it takes*,
// the same split trace-driven simulators like NVAS use between functional
// replay and timing models.
package engine

import (
	"fmt"

	"gps/internal/memsys"
	"gps/internal/trace"
)

// Profile is the traffic and event profile of one GPU during one phase.
// All byte counts are cache-line granular (transfers happen at cache-block
// granularity on real GPUs, Section 7.5).
type Profile struct {
	GPU        int
	ComputeOps uint64

	// LocalBytes is traffic served by the GPU's own DRAM (through its L2).
	LocalBytes uint64

	// RemoteRead[p] is demand-read traffic pulled from peer p during the
	// kernel: it stalls execution (subject to latency hiding).
	RemoteRead []uint64
	// RemoteReadLines counts individual demand-read transactions, for the
	// latency-bound regime of the timing model.
	RemoteReadLines uint64

	// Push[p] is proactive store traffic sent to peer p during the kernel:
	// it overlaps with compute and must only complete by the barrier.
	Push []uint64

	// Bulk[p] is barrier-window traffic sent to peer p (cudaMemcpy
	// broadcasts, UM prefetches): serialized with compute.
	Bulk []uint64

	// Faults counts page faults taken by this GPU this phase; each
	// serializes for the fault cost.
	Faults int
	// Shootdowns counts TLB shootdowns (page collapses) this GPU triggered.
	Shootdowns int
}

// NewProfile returns an empty profile for gpu in an n-GPU system.
func NewProfile(gpu, n int) Profile {
	return Profile{
		GPU:        gpu,
		RemoteRead: make([]uint64, n),
		Push:       make([]uint64, n),
		Bulk:       make([]uint64, n),
	}
}

// newProfiles returns one empty profile per GPU, carving all per-peer
// counter slices out of a single allocation. Run creates a profile vector
// per phase, so this collapses 3n+1 allocations into 2 on the hot path. The
// three-index subslices keep an accidental append from bleeding into a
// neighbor's counters.
func newProfiles(n int) []Profile {
	ps := make([]Profile, n)
	backing := make([]uint64, 3*n*n)
	for g := range ps {
		off := 3 * n * g
		ps[g] = Profile{
			GPU:        g,
			RemoteRead: backing[off : off+n : off+n],
			Push:       backing[off+n : off+2*n : off+2*n],
			Bulk:       backing[off+2*n : off+3*n : off+3*n],
		}
	}
	return ps
}

// RemoteBytes returns all interconnect bytes this profile moves.
func (p *Profile) RemoteBytes() uint64 {
	var t uint64
	for i := range p.RemoteRead {
		t += p.RemoteRead[i] + p.Push[i] + p.Bulk[i]
	}
	return t
}

// PhaseRecord is the per-GPU profile vector for one phase.
type PhaseRecord struct {
	Index    int
	Profiles []Profile // indexed by GPU
}

// Result is everything the structural pass learned about one run.
type Result struct {
	Meta     trace.Meta
	Paradigm string
	Phases   []PhaseRecord

	// SubscriberHist is the GPS page subscriber-count distribution captured
	// right after the profiling phase (Figure 9); nil for non-GPS paradigms.
	SubscriberHist map[int]int

	// WriteQueueHitRate is the per-GPU GPS write queue hit rate (Figure 14);
	// nil for non-GPS paradigms.
	WriteQueueHitRate []float64
	// GPSTLBHitRate is the per-GPU GPS-TLB hit rate (Section 7.4).
	GPSTLBHitRate []float64
	// ConvTLBHitRate is the conventional last-level TLB hit rate.
	ConvTLBHitRate []float64
	// ForwardedLoads counts non-subscriber loads served by value forwarding
	// from the local remote write queue (Section 5.1).
	ForwardedLoads uint64
}

// InterconnectBytes sums all traffic over the fabric in phases
// [from, len): use from = Meta.ProfilePhases to measure the steady state.
func (r *Result) InterconnectBytes(from int) uint64 {
	var t uint64
	for _, ph := range r.Phases {
		if ph.Index < from {
			continue
		}
		for i := range ph.Profiles {
			t += ph.Profiles[i].RemoteBytes()
		}
	}
	return t
}

// TotalFaults sums page faults across the whole run.
func (r *Result) TotalFaults() int {
	n := 0
	for _, ph := range r.Phases {
		for i := range ph.Profiles {
			n += ph.Profiles[i].Faults
		}
	}
	return n
}

// Model is one memory-management paradigm's per-access machinery.
type Model interface {
	// Name identifies the paradigm ("GPS", "UM", ...).
	Name() string
	// BeginPhase announces the next phase; profiles is the output vector
	// (one per GPU) the model accumulates traffic into.
	BeginPhase(index int, profiles []Profile)
	// Access processes one warp instruction by gpu whose SM coalescer
	// produced the given line-aligned addresses.
	Access(gpu int, a trace.Access, lines []uint64)
	// EndPhase is the global synchronization barrier ending the phase
	// (implicit sys-scoped release of every grid).
	EndPhase(index int)
	// Finish lets the model deposit its end-of-run statistics.
	Finish(res *Result)
}

// Batch is one chunk of a kernel's instruction stream after coalescing:
// instruction i touched Lines[Offs[i]:Offs[i+1]]. All three slices are
// reused by the replay loop between chunks.
type Batch struct {
	Accs  []trace.Access
	Offs  []int32  // len(Accs)+1 offsets into Lines
	Lines []uint64 // line-aligned addresses, coalesced per instruction
}

// LinesOf returns the coalesced lines of instruction i.
func (b *Batch) LinesOf(i int) []uint64 { return b.Lines[b.Offs[i]:b.Offs[i+1]] }

// BatchModel is an optional fast path: models that implement it receive a
// whole chunk of instructions per call, so interface dispatch and per-call
// setup (profile pointer, region/page caches) amortize across the chunk.
// AccessBatch must be equivalent to calling Access per instruction in order.
type BatchModel interface {
	Model
	AccessBatch(gpu int, b *Batch)
}

// chunk is the number of consecutive warp instructions one GPU executes
// before the replay rotates to the next GPU's kernel, approximating the
// concurrent interleaving of kernels that ran simultaneously on real
// hardware. UM page thrashing in particular depends on this interleaving.
const chunk = 64

// PhaseObserver receives replay lifecycle events from RunObserved: a
// start/end pair brackets every phase, in phase order. The observability
// layer uses it to record per-phase spans with real durations; observers
// must be cheap, they run on the replay hot path (once per phase, not per
// access).
type PhaseObserver interface {
	PhaseStart(index, kernels int)
	PhaseEnd(index int)
}

// Run replays prog through m and collects the result.
func Run(prog trace.Program, m Model) *Result { return RunObserved(prog, m, nil) }

// RunObserved is Run with an optional phase observer. A nil observer costs
// one nil check per phase, so the uninstrumented path stays free.
func RunObserved(prog trace.Program, m Model, po PhaseObserver) *Result {
	meta := prog.Meta()
	n := meta.NumGPUs
	res := &Result{Meta: meta, Paradigm: m.Name()}
	exp := NewExpander(LineBytes)
	bm, _ := m.(BatchModel)
	var batch Batch

	var cursors []int
	var readers []blockCursor
	prog.Phases(func(ph *trace.Phase) bool {
		if po != nil {
			po.PhaseStart(ph.Index, len(ph.Kernels))
		}
		profiles := newProfiles(n)
		for _, k := range ph.Kernels {
			profiles[k.GPU].ComputeOps += k.ComputeOps
			profiles[k.GPU].LocalBytes += k.LocalStreamBytes
		}
		m.BeginPhase(ph.Index, profiles)

		// Round-robin the kernels' instruction streams in chunks. The cursor
		// and block-reader scratch is reused across phases — each kernel slot
		// keeps its own reader so decode buffers survive the interleaving —
		// (profiles cannot be: they live on in the Result).
		if cap(cursors) < len(ph.Kernels) {
			cursors = make([]int, len(ph.Kernels))
		} else {
			cursors = cursors[:len(ph.Kernels)]
			for i := range cursors {
				cursors[i] = 0
			}
		}
		for len(readers) < len(ph.Kernels) {
			readers = append(readers, blockCursor{})
		}
		rs := readers[:len(ph.Kernels)]
		for ki := range ph.Kernels {
			rs[ki].reset(&ph.Kernels[ki])
		}
		// Only kernels with instructions await completion: an empty kernel
		// never reaches the end-of-stream decrement below, and counting it
		// would spin the round-robin loop forever.
		remaining := 0
		for ki := range rs {
			if rs[ki].n > 0 {
				remaining++
			}
		}
		for remaining > 0 {
			for ki := range ph.Kernels {
				k := &ph.Kernels[ki]
				r := &rs[ki]
				if cursors[ki] >= r.n {
					continue
				}
				end := cursors[ki] + chunk
				if end >= r.n {
					end = r.n
					remaining--
				}
				accs := r.window(cursors[ki], end)
				if bm != nil {
					batch.Accs = accs
					batch.Offs = append(batch.Offs[:0], 0)
					batch.Lines = batch.Lines[:0]
					for _, a := range accs {
						batch.Lines = exp.AppendLines(batch.Lines, a)
						batch.Offs = append(batch.Offs, int32(len(batch.Lines)))
					}
					bm.AccessBatch(k.GPU, &batch)
				} else {
					for _, a := range accs {
						m.Access(k.GPU, a, exp.Expand(a))
					}
				}
				cursors[ki] = end
			}
		}

		m.EndPhase(ph.Index)
		res.Phases = append(res.Phases, PhaseRecord{Index: ph.Index, Profiles: profiles})
		if po != nil {
			po.PhaseEnd(ph.Index)
		}
		return true
	})
	m.Finish(res)
	return res
}

// LineBytes is the cache block size of the modeled GPU (Table 1).
const LineBytes = 128

// MaxGPUs bounds the modeled system size (the engine's sharing bitmasks are
// single words, like memsys.SubscriberSet).
const MaxGPUs = memsys.MaxGPUs

// Sharing summarizes which GPUs touch one page, gathered by ScanSharing.
type Sharing struct {
	Readers uint64 // bitmask of reading GPUs
	Writers uint64 // bitmask of writing GPUs
	// WriteCount[g] counts line-writes by GPU g, to pick the dominant
	// writer for placement decisions.
	WriteCount [MaxGPUs]uint64
}

// DominantWriter returns the GPU writing the page most, or -1. Ties go to
// the lowest GPU ID.
func (s *Sharing) DominantWriter() int {
	best, bestCount := -1, uint64(0)
	for g, c := range s.WriteCount {
		if c > bestCount {
			best, bestCount = g, c
		}
	}
	return best
}

// ScanSharing replays the first `phases` phases and reports per-page
// sharing for pages of shared regions. The UM-with-hints paradigm uses it
// as the stand-in for the expert programmer's knowledge of the access
// pattern (the paper hand-tuned each application's hints).
func ScanSharing(prog trace.Program, phases int, pageBytes uint64) map[uint64]*Sharing {
	meta := prog.Meta()
	shared := NewRegionTable(meta.Regions)
	acc := memsys.NewPageMap[Sharing](pageBytes)
	exp := NewExpander(LineBytes)
	pageShift := shiftFor(pageBytes)
	// Consecutive lines almost always fall in the same 8 GB region slot and
	// the same page, so cache the last slot -> region and page -> Sharing
	// resolutions instead of re-resolving per line. ^0 sentinels can never
	// collide with a real slot or VPN (addresses are 49-bit).
	lastSlot := ^uint64(0)
	var lastRegion *trace.Region
	lastVPN := ^uint64(0)
	var lastSharing *Sharing
	var dec trace.BlockDecoder
	prog.Phases(func(ph *trace.Phase) bool {
		if ph.Index >= phases {
			return false
		}
		for ki := range ph.Kernels {
			k := &ph.Kernels[ki]
			err := k.EachBlock(&dec, func(accs []trace.Access) bool {
				for _, a := range accs {
					if a.Op == trace.OpFence {
						continue
					}
					for _, line := range exp.Expand(a) {
						if slot := line >> regionSlotShift; slot != lastSlot {
							lastSlot = slot
							lastRegion = shared.SlotRegion(slot)
						}
						r := lastRegion
						if r == nil || r.Kind != trace.RegionShared ||
							line < r.Base || line-r.Base >= r.Size {
							continue
						}
						vpn := line >> pageShift
						if vpn != lastVPN {
							lastVPN = vpn
							lastSharing = acc.At(vpn)
						}
						if a.IsWrite() {
							lastSharing.Writers |= 1 << k.GPU
							lastSharing.WriteCount[k.GPU]++
						} else {
							lastSharing.Readers |= 1 << k.GPU
						}
					}
				}
				return true
			})
			if err != nil {
				panic(fmt.Sprintf("engine: scanning kernel %q: %v", k.Name, err))
			}
		}
		return true
	})
	out := map[uint64]*Sharing{}
	acc.ForEach(func(vpn uint64, s *Sharing) {
		if s.Readers|s.Writers != 0 {
			c := *s
			out[vpn] = &c
		}
	})
	return out
}

// shiftFor returns log2(v) for the power-of-two sizes the engine deals in.
func shiftFor(v uint64) uint {
	var s uint
	for 1<<s < v {
		s++
	}
	if 1<<s != v {
		panic(fmt.Sprintf("engine: %d is not a power of two", v))
	}
	return s
}

// regionSlotShift is log2 of the 8 GB slot granularity regions align to.
const regionSlotShift = memsys.RegionSlotShift

// RegionTable resolves addresses to regions in O(1) by exploiting the
// workload generators' 8 GB region alignment: a dense slice indexed by the
// address's 8 GB slot.
type RegionTable struct {
	bySlot []*trace.Region
}

// NewRegionTable indexes the given regions. Regions must start at distinct
// multiples of 8 GB (the workload layout invariant) and must not span an
// 8 GB boundary... larger regions are rejected loudly.
func NewRegionTable(regions []trace.Region) *RegionTable {
	t := &RegionTable{}
	for i := range regions {
		r := &regions[i]
		slot := r.Base >> regionSlotShift
		if r.Base&((1<<regionSlotShift)-1) != 0 {
			panic(fmt.Sprintf("engine: region %q not 8GB aligned", r.Name))
		}
		if r.Size > 1<<regionSlotShift {
			panic(fmt.Sprintf("engine: region %q spans slots", r.Name))
		}
		if slot >= uint64(len(t.bySlot)) {
			grown := make([]*trace.Region, slot+1)
			copy(grown, t.bySlot)
			t.bySlot = grown
		}
		if t.bySlot[slot] != nil {
			panic(fmt.Sprintf("engine: region %q collides in slot %d", r.Name, slot))
		}
		t.bySlot[slot] = r
	}
	return t
}

// Lookup returns the region containing va, or nil.
func (t *RegionTable) Lookup(va uint64) *trace.Region {
	r := t.SlotRegion(va >> regionSlotShift)
	if r == nil || va < r.Base || va-r.Base >= r.Size {
		return nil
	}
	return r
}

// SlotRegion returns the region registered in an 8 GB slot (or nil) without
// the bounds check, for callers that cache the resolution per slot and do
// their own per-address bounds test.
func (t *RegionTable) SlotRegion(slot uint64) *trace.Region {
	if slot >= uint64(len(t.bySlot)) {
		return nil
	}
	return t.bySlot[slot]
}
