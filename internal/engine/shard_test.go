package engine_test

import (
	"fmt"
	"reflect"
	"testing"

	"gps/internal/engine"
	"gps/internal/paradigm"
	"gps/internal/trace"
	"gps/internal/workload"
)

// TestRunShardedMatchesRun proves the sharded replay's core guarantee: for
// every paradigm and several applications, the Result at any shard count is
// identical (reflect.DeepEqual, which covers every profile counter, hit
// rate, and histogram) to the sequential replay's.
func TestRunShardedMatchesRun(t *testing.T) {
	cfg := workload.Config{NumGPUs: 4, Iterations: 1, Scale: 1, Seed: 1}
	for _, app := range []string{"jacobi", "pagerank"} {
		spec, err := workload.ByName(app)
		if err != nil {
			t.Fatal(err)
		}
		prog := spec.Build(cfg)
		for _, kind := range paradigm.Kinds() {
			want := runWithShards(t, prog, kind, 1)
			for _, shards := range []int{2, 3, 8} {
				t.Run(fmt.Sprintf("%s/%s/shards=%d", app, kind, shards), func(t *testing.T) {
					got := runWithShards(t, prog, kind, shards)
					if !reflect.DeepEqual(want, got) {
						t.Errorf("sharded result diverges from sequential\nseq: %+v\nshr: %+v", want, got)
					}
				})
			}
		}
	}
}

// TestRunShardedOversharded checks the degenerate extremes: more shards
// than GPUs (GPU axis clamps) and more shards than hot pages (page-axis
// shards that own nothing still merge cleanly).
func TestRunShardedOversharded(t *testing.T) {
	cfg := workload.Config{NumGPUs: 2, Iterations: 1, Scale: 1, Seed: 1}
	spec, err := workload.ByName("jacobi")
	if err != nil {
		t.Fatal(err)
	}
	prog := spec.Build(cfg)
	for _, kind := range []paradigm.Kind{paradigm.KindUM, paradigm.KindGPS} {
		want := runWithShards(t, prog, kind, 1)
		got := runWithShards(t, prog, kind, 64)
		if !reflect.DeepEqual(want, got) {
			t.Errorf("%v: 64-shard result diverges from sequential", kind)
		}
	}
}

func runWithShards(t *testing.T, prog trace.Program, kind paradigm.Kind, shards int) *engine.Result {
	t.Helper()
	model, err := paradigm.New(kind, prog, paradigm.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return engine.RunSharded(prog, model, shards)
}
