package core

import (
	"testing"

	"gps/internal/memsys"
)

func newTransUnit(t *testing.T, gpu int, table *memsys.GPSPageTable, sink *[]Packet) *TranslationUnit {
	t.Helper()
	return NewTranslationUnit(gpu, testGeom(), 32, 8, table, func(p Packet) {
		*sink = append(*sink, p)
	})
}

func TestTranslationFansOutToRemoteSubscribersOnly(t *testing.T) {
	geom := testGeom()
	table := memsys.NewGPSPageTable(geom, 4)
	table.Subscribe(0, 0, 10)
	table.Subscribe(0, 1, 11)
	table.Subscribe(0, 3, 13)

	var pkts []Packet
	u := newTransUnit(t, 0, table, &pkts)
	u.Process(Drained{LineVA: 128, Writes: 2, SrcGPU: 0})

	if len(pkts) != 2 {
		t.Fatalf("packets = %d, want 2 (GPUs 1 and 3)", len(pkts))
	}
	want := map[int]memsys.PPN{1: 11, 3: 13}
	for _, p := range pkts {
		if p.SrcGPU != 0 || p.LineVA != 128 {
			t.Fatalf("packet = %+v", p)
		}
		ppn, ok := want[p.DstGPU]
		if !ok || p.DstPPN != ppn {
			t.Fatalf("unexpected destination %+v", p)
		}
		delete(want, p.DstGPU)
	}
}

func TestTranslationTLBCaching(t *testing.T) {
	geom := testGeom()
	table := memsys.NewGPSPageTable(geom, 2)
	table.Subscribe(0, 0, 1)
	table.Subscribe(0, 1, 2)

	var pkts []Packet
	u := newTransUnit(t, 0, table, &pkts)
	u.Process(Drained{LineVA: 0})
	u.Process(Drained{LineVA: 128}) // same page
	u.Process(Drained{LineVA: 256})

	s := u.Stats()
	if s.TLBMisses != 1 || s.TLBHits != 2 {
		t.Fatalf("hits/misses = %d/%d, want 2/1", s.TLBHits, s.TLBMisses)
	}
	if s.WalkVisits == 0 {
		t.Fatal("miss should charge walk visits")
	}
	if got := s.HitRate(); got < 0.66 || got > 0.67 {
		t.Fatalf("HitRate = %v", got)
	}
}

func TestTranslationUnmappedPageDropsBlock(t *testing.T) {
	table := memsys.NewGPSPageTable(testGeom(), 2)
	var pkts []Packet
	u := newTransUnit(t, 0, table, &pkts)
	u.Process(Drained{LineVA: 0})
	if len(pkts) != 0 {
		t.Fatal("unmapped page should emit nothing")
	}
	if u.Stats().Unmapped != 1 {
		t.Fatalf("Unmapped = %d, want 1", u.Stats().Unmapped)
	}
}

func TestTranslationInvalidate(t *testing.T) {
	geom := testGeom()
	table := memsys.NewGPSPageTable(geom, 2)
	table.Subscribe(0, 0, 1)
	table.Subscribe(0, 1, 2)
	var pkts []Packet
	u := newTransUnit(t, 0, table, &pkts)
	u.Process(Drained{LineVA: 0})

	// Rewrite the table: GPU1 unsubscribes, page collapses away.
	table.Drop(0)
	u.InvalidateTLB(0)
	u.Process(Drained{LineVA: 0})
	if u.Stats().Unmapped != 1 {
		t.Fatal("stale TLB served after invalidate")
	}
}

func TestTranslationAtomicPacketTagged(t *testing.T) {
	geom := testGeom()
	table := memsys.NewGPSPageTable(geom, 2)
	table.Subscribe(0, 0, 1)
	table.Subscribe(0, 1, 2)
	var pkts []Packet
	u := newTransUnit(t, 0, table, &pkts)
	u.Process(Drained{LineVA: 0, Atomic: true, Reason: DrainPassThrough})
	if len(pkts) != 1 || !pkts[0].Atomic {
		t.Fatalf("packets = %+v, want one atomic", pkts)
	}
}

func TestTranslationGPSTLBSmallButSufficient(t *testing.T) {
	// Section 7.4: the GPS-TLB hit rate approaches 100% at just 32 entries
	// because it only services GPS-heap stores. Emulate a working set of 16
	// hot pages revisited in streaming order.
	geom := testGeom()
	table := memsys.NewGPSPageTable(geom, 2)
	for vpn := memsys.VPN(0); vpn < 16; vpn++ {
		table.Subscribe(vpn, 0, memsys.PPN(vpn))
		table.Subscribe(vpn, 1, memsys.PPN(vpn+100))
	}
	var pkts []Packet
	u := newTransUnit(t, 0, table, &pkts)
	pageBytes := geom.PageBytes
	for rep := 0; rep < 100; rep++ {
		for vpn := uint64(0); vpn < 16; vpn++ {
			u.Process(Drained{LineVA: memsys.VAddr(vpn*pageBytes + uint64(rep%512)*128)})
		}
	}
	if hr := u.Stats().HitRate(); hr < 0.98 {
		t.Fatalf("32-entry GPS-TLB hit rate = %v, want ~1.0", hr)
	}
}
