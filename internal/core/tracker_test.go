package core

import (
	"testing"

	"gps/internal/memsys"
)

func TestTrackerRecordsOnlyWhileActive(t *testing.T) {
	tr := NewAccessTracker(testGeom(), 0, 1<<24, 4)
	tr.RecordTLBMiss(0, 1)
	if tr.Touched(0, 1) {
		t.Fatal("recorded while inactive")
	}
	tr.Start()
	tr.RecordTLBMiss(0, 1)
	tr.Stop()
	tr.RecordTLBMiss(0, 2)
	if !tr.Touched(0, 1) {
		t.Fatal("active record lost")
	}
	if tr.Touched(0, 2) {
		t.Fatal("recorded after Stop")
	}
}

func TestTrackerPerGPUIsolation(t *testing.T) {
	tr := NewAccessTracker(testGeom(), 0, 1<<24, 4)
	tr.Start()
	tr.RecordTLBMiss(1, 5)
	tr.RecordTLBMiss(3, 5)
	tr.RecordTLBMiss(1, 6)
	if got := tr.TouchedBy(5); got != memsys.SetOf(1, 3) {
		t.Fatalf("TouchedBy(5) = %v", got)
	}
	if got := tr.TouchedBy(6); got != memsys.SetOf(1) {
		t.Fatalf("TouchedBy(6) = %v", got)
	}
	if got := tr.TouchedBy(7); !got.Empty() {
		t.Fatalf("TouchedBy(7) = %v, want empty", got)
	}
}

func TestTrackerIgnoresOutOfRange(t *testing.T) {
	geom := testGeom()
	base := memsys.VAddr(10 * geom.PageBytes)
	tr := NewAccessTracker(geom, base, 4*geom.PageBytes, 2)
	tr.Start()
	tr.RecordTLBMiss(0, 9)  // below range
	tr.RecordTLBMiss(0, 14) // above range
	tr.RecordTLBMiss(0, 12) // inside
	if tr.Touched(0, 9) || tr.Touched(0, 14) {
		t.Fatal("out-of-range miss recorded")
	}
	if !tr.Touched(0, 12) {
		t.Fatal("in-range miss not recorded")
	}
}

func TestTrackerStartClears(t *testing.T) {
	tr := NewAccessTracker(testGeom(), 0, 1<<24, 2)
	tr.Start()
	tr.RecordTLBMiss(0, 3)
	tr.Start()
	if tr.Touched(0, 3) {
		t.Fatal("Start did not clear the bitmap")
	}
}

func TestTrackerBitmapFootprintMatchesPaper(t *testing.T) {
	// "Tracking a 32GB virtual address range, the bitmap requires only 64KB
	// of DRAM" at 64 KB pages.
	tr := NewAccessTracker(testGeom(), 0, 32<<30, 4)
	if got := tr.BitmapBytes(); got != 64<<10 {
		t.Fatalf("bitmap = %d bytes, want 64 KB", got)
	}
}

func TestTrackerRecordedDeduplicates(t *testing.T) {
	tr := NewAccessTracker(testGeom(), 0, 1<<24, 2)
	tr.Start()
	for i := 0; i < 10; i++ {
		tr.RecordTLBMiss(0, 4)
	}
	if tr.Recorded() != 1 {
		t.Fatalf("Recorded = %d, want 1 (bitmap writes are idempotent)", tr.Recorded())
	}
}
