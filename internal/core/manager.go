package core

import (
	"errors"
	"fmt"

	"gps/internal/memsys"
)

// ManagerStats counts driver-level subscription activity.
type ManagerStats struct {
	GPSPages      int    // pages currently replicated (GPS bit set, >1 subscriber)
	PinnedPages   int    // conventional pages
	Unsubscribes  uint64 // page unsubscriptions performed
	Downgrades    uint64 // GPS pages demoted to conventional (single subscriber)
	Collapses     uint64 // sys-scope collapses (Section 5.3)
	ReplicaFrames uint64 // physical frames currently backing replicas
}

// pageState is the driver's canonical view of one allocated page.
type pageState struct {
	gpsRegion  bool // allocated through AllocGPS
	downgraded bool // GPS page demoted to a single-copy conventional page
	owner      int  // for conventional/downgraded pages: the hosting GPU
}

// Manager is the GPS driver's memory manager: it owns every GPU's
// conventional page table, the shared GPS page table, and the physical frame
// allocators, and implements allocation, manual and automatic subscription,
// profiling-driven unsubscription, downgrade of single-subscriber pages, and
// sys-scope collapse.
type Manager struct {
	geom    memsys.Geometry
	numGPUs int
	conv    []*memsys.PageTable
	phys    []*memsys.PhysMem
	gpsPT   *memsys.GPSPageTable
	pages   map[memsys.VPN]*pageState
	stats   ManagerStats

	// onRemap, when set, is invoked for every page whose translation
	// changed, so the engine can shoot down conventional and GPS TLBs.
	onRemap func(vpn memsys.VPN)
}

// NewManager builds a manager for numGPUs GPUs each with memPerGPU bytes of
// physical memory.
func NewManager(geom memsys.Geometry, numGPUs int, memPerGPU uint64) (*Manager, error) {
	if numGPUs < 1 || numGPUs > memsys.MaxGPUs {
		return nil, fmt.Errorf("core: GPU count %d out of range", numGPUs)
	}
	m := &Manager{
		geom:    geom,
		numGPUs: numGPUs,
		gpsPT:   memsys.NewGPSPageTable(geom, numGPUs),
		pages:   map[memsys.VPN]*pageState{},
	}
	for g := 0; g < numGPUs; g++ {
		pm, err := memsys.NewPhysMem(g, memPerGPU, geom.PageBytes)
		if err != nil {
			return nil, err
		}
		m.phys = append(m.phys, pm)
		m.conv = append(m.conv, memsys.NewPageTable(geom))
	}
	return m, nil
}

// SetRemapHook installs a callback fired for every page whose translation
// changes (for TLB shootdown modeling).
func (m *Manager) SetRemapHook(fn func(vpn memsys.VPN)) { m.onRemap = fn }

// NumGPUs returns the system's GPU count.
func (m *Manager) NumGPUs() int { return m.numGPUs }

// Geometry returns the translation geometry.
func (m *Manager) Geometry() memsys.Geometry { return m.geom }

// GPSPageTable exposes the shared wide page table for the translation units.
func (m *Manager) GPSPageTable() *memsys.GPSPageTable { return m.gpsPT }

// PageTable returns gpu's conventional page table.
func (m *Manager) PageTable(gpu int) *memsys.PageTable { return m.conv[gpu] }

// PhysMem returns gpu's physical allocator.
func (m *Manager) PhysMem(gpu int) *memsys.PhysMem { return m.phys[gpu] }

func (m *Manager) remapped(vpn memsys.VPN) {
	if m.onRemap != nil {
		m.onRemap(vpn)
	}
}

// AllocPinned allocates [base, base+size) as conventional pages resident on
// gpu (cudaMalloc semantics with peer mappings in every GPU's page table).
func (m *Manager) AllocPinned(base memsys.VAddr, size uint64, gpu int) error {
	if gpu < 0 || gpu >= m.numGPUs {
		return fmt.Errorf("core: GPU %d out of range", gpu)
	}
	for g := 0; g < m.numGPUs; g++ {
		m.conv[g].Reserve(base, size)
	}
	for _, vpn := range m.geom.PagesIn(base, size) {
		if _, exists := m.pages[vpn]; exists {
			return fmt.Errorf("core: page %#x already allocated", uint64(vpn))
		}
		ppn, err := m.phys[gpu].Alloc()
		if err != nil {
			return err
		}
		for g := 0; g < m.numGPUs; g++ {
			m.conv[g].Map(vpn, memsys.PTE{Valid: true, PPN: ppn, Owner: gpu})
		}
		m.pages[vpn] = &pageState{owner: gpu}
		m.stats.PinnedPages++
		m.stats.ReplicaFrames++
	}
	return nil
}

// AllocGPS allocates [base, base+size) in the GPS address space with the
// given initial subscribers (cudaMallocGPS; automatic mode starts with all
// GPUs subscribed). Every subscriber receives a local replica; GPUs outside
// the set receive a remote mapping to the first subscriber.
func (m *Manager) AllocGPS(base memsys.VAddr, size uint64, subs memsys.SubscriberSet) error {
	if subs.Empty() {
		return errors.New("core: GPS allocation needs at least one subscriber")
	}
	if subs.First() >= m.numGPUs || subs != subs.Intersect(memsys.AllGPUs(m.numGPUs)) {
		return fmt.Errorf("core: subscriber set %v exceeds %d GPUs", subs, m.numGPUs)
	}
	// Reserve the dense page-table slabs up front: the translation units
	// cache *GPSPTE pointers, which must not be invalidated by slab growth
	// once handed out.
	m.gpsPT.Reserve(base, size)
	for g := 0; g < m.numGPUs; g++ {
		m.conv[g].Reserve(base, size)
	}
	for _, vpn := range m.geom.PagesIn(base, size) {
		if _, exists := m.pages[vpn]; exists {
			return fmt.Errorf("core: page %#x already allocated", uint64(vpn))
		}
		var allocErr error
		subs.ForEach(func(g int) {
			if allocErr != nil {
				return
			}
			ppn, err := m.phys[g].Alloc()
			if err != nil {
				allocErr = err
				return
			}
			m.gpsPT.Subscribe(vpn, g, ppn)
			m.conv[g].Map(vpn, memsys.PTE{Valid: true, GPS: true, PPN: ppn, Owner: g})
			m.stats.ReplicaFrames++
		})
		if allocErr != nil {
			return allocErr
		}
		host := subs.First()
		hostPPN := m.gpsPT.Lookup(vpn).ReplicaOn(host)
		for g := 0; g < m.numGPUs; g++ {
			if !subs.Has(g) {
				m.conv[g].Map(vpn, memsys.PTE{Valid: true, GPS: true, PPN: hostPPN, Owner: host})
			}
		}
		m.pages[vpn] = &pageState{gpsRegion: true}
		m.stats.GPSPages++
	}
	return nil
}

// Subscribers returns the current subscriber set of a page: the GPS page
// table's set while replicated, or the single owner after downgrade.
func (m *Manager) Subscribers(vpn memsys.VPN) memsys.SubscriberSet {
	if e := m.gpsPT.Lookup(vpn); e != nil {
		return e.Subscribers
	}
	if st, ok := m.pages[vpn]; ok {
		return memsys.SetOf(st.owner)
	}
	return 0
}

// IsGPSPage reports whether stores to vpn fork to the GPS unit (the GPS bit
// as seen by gpu's conventional TLB).
func (m *Manager) IsGPSPage(gpu int, vpn memsys.VPN) bool {
	pte := m.conv[gpu].Lookup(vpn)
	return pte != nil && pte.GPS
}

// Subscribe adds gpu as a subscriber to every page of [base, base+size),
// allocating local replicas (CU_MEM_ADVISE_GPS_SUBSCRIBE). Subscribing to a
// downgraded page re-promotes it to a replicated GPS page.
func (m *Manager) Subscribe(gpu int, base memsys.VAddr, size uint64) error {
	if gpu < 0 || gpu >= m.numGPUs {
		return fmt.Errorf("core: GPU %d out of range", gpu)
	}
	for _, vpn := range m.geom.PagesIn(base, size) {
		st, ok := m.pages[vpn]
		if !ok || !st.gpsRegion {
			return fmt.Errorf("core: page %#x is not a GPS page", uint64(vpn))
		}
		if st.downgraded {
			// Re-promote: the current owner becomes a subscriber again.
			ownerPTE := m.conv[st.owner].Lookup(vpn)
			m.gpsPT.Subscribe(vpn, st.owner, ownerPTE.PPN)
			ownerPTE.GPS = true
			st.downgraded = false
			m.stats.Downgrades-- // promotion cancels a downgrade in the census
			m.stats.GPSPages++
			m.stats.PinnedPages--
		}
		e := m.gpsPT.Lookup(vpn)
		if e.Subscribers.Has(gpu) {
			continue
		}
		ppn, err := m.phys[gpu].Alloc()
		if err != nil {
			return err
		}
		m.gpsPT.Subscribe(vpn, gpu, ppn)
		m.conv[gpu].Map(vpn, memsys.PTE{Valid: true, GPS: true, PPN: ppn, Owner: gpu})
		m.stats.ReplicaFrames++
		m.remapped(vpn)
	}
	return nil
}

// Unsubscribe removes gpu from every page of [base, base+size), freeing its
// replicas (CU_MEM_ADVISE_GPS_UNSUBSCRIBE). Removing the last subscriber
// fails with memsys.ErrLastSubscriber and leaves the allocation in place.
// Pages that end up with a single subscriber are downgraded to conventional
// pages (Section 5.2: duplication of writes is wasted effort with one
// subscriber).
func (m *Manager) Unsubscribe(gpu int, base memsys.VAddr, size uint64) error {
	for _, vpn := range m.geom.PagesIn(base, size) {
		if err := m.unsubscribePage(gpu, vpn); err != nil {
			return err
		}
	}
	return nil
}

func (m *Manager) unsubscribePage(gpu int, vpn memsys.VPN) error {
	st, ok := m.pages[vpn]
	if !ok || !st.gpsRegion || st.downgraded {
		return fmt.Errorf("core: page %#x is not a replicated GPS page", uint64(vpn))
	}
	ppn, err := m.gpsPT.Unsubscribe(vpn, gpu)
	if err != nil {
		return err
	}
	m.phys[gpu].Free(ppn)
	m.stats.ReplicaFrames--
	m.stats.Unsubscribes++
	e := m.gpsPT.Lookup(vpn)
	host := e.Subscribers.First()
	hostPPN := e.ReplicaOn(host)
	// The leaver now maps the page remotely; the GPS bit stays set so its
	// (unexpected) stores still replicate to real subscribers.
	m.conv[gpu].Map(vpn, memsys.PTE{Valid: true, GPS: true, PPN: hostPPN, Owner: host})
	m.remapped(vpn)
	if e.Subscribers.Count() == 1 {
		m.downgrade(vpn, host)
	}
	return nil
}

// downgrade demotes a single-subscriber GPS page to a conventional page
// hosted by owner.
func (m *Manager) downgrade(vpn memsys.VPN, owner int) {
	e := m.gpsPT.Lookup(vpn)
	ppn := e.ReplicaOn(owner)
	m.gpsPT.Drop(vpn)
	for g := 0; g < m.numGPUs; g++ {
		m.conv[g].Map(vpn, memsys.PTE{Valid: true, PPN: ppn, Owner: owner})
	}
	st := m.pages[vpn]
	st.downgraded = true
	st.owner = owner
	m.stats.Downgrades++
	m.stats.GPSPages--
	m.stats.PinnedPages++
	m.remapped(vpn)
}

// ApplyProfile performs the cuGPSTrackingStop() unsubscription sweep: every
// GPS page loses the subscribers that did not touch it during profiling. A
// page nobody touched keeps its first subscriber (at least one replica must
// remain). Pages for which skip returns true (manually managed
// subscriptions) are left untouched; a nil skip considers every page. It
// returns the number of unsubscriptions performed.
func (m *Manager) ApplyProfile(t *AccessTracker, skip func(memsys.VPN) bool) int {
	type cut struct {
		vpn memsys.VPN
		gpu int
	}
	var cuts []cut
	m.gpsPT.ForEach(func(vpn memsys.VPN, e *memsys.GPSPTE) {
		if skip != nil && skip(vpn) {
			return
		}
		touched := t.TouchedBy(vpn).Intersect(e.Subscribers)
		keepOne := touched.Empty()
		e.Subscribers.ForEach(func(g int) {
			if touched.Has(g) {
				return
			}
			if keepOne && g == e.Subscribers.First() {
				return
			}
			cuts = append(cuts, cut{vpn, g})
		})
	})
	for _, c := range cuts {
		// Unsubscribe can still fail on the last subscriber when every
		// subscriber was untouched; the guard above keeps the first.
		if err := m.unsubscribePage(c.gpu, c.vpn); err != nil {
			panic(fmt.Sprintf("core: profile unsubscribe: %v", err))
		}
	}
	return len(cuts)
}

// CollapseSysScoped handles a sys-scoped store to a GPS page (Section 5.3):
// the page collapses to a single copy on the writing GPU, is demoted to a
// conventional page, and all other replicas are freed.
func (m *Manager) CollapseSysScoped(writer int, vpn memsys.VPN) error {
	st, ok := m.pages[vpn]
	if !ok || !st.gpsRegion {
		return fmt.Errorf("core: page %#x is not a GPS page", uint64(vpn))
	}
	if st.downgraded {
		return nil // already a single copy
	}
	e := m.gpsPT.Lookup(vpn)
	host := writer
	if !e.Subscribers.Has(writer) {
		// The writer holds no replica: collapse to the first subscriber.
		host = e.Subscribers.First()
	}
	hostPPN := e.ReplicaOn(host)
	e.Subscribers.ForEach(func(g int) {
		if g == host {
			return
		}
		m.phys[g].Free(e.ReplicaOn(g))
		m.stats.ReplicaFrames--
	})
	m.gpsPT.Drop(vpn)
	for g := 0; g < m.numGPUs; g++ {
		m.conv[g].Map(vpn, memsys.PTE{Valid: true, PPN: hostPPN, Owner: host})
	}
	st.downgraded = true
	st.owner = host
	m.stats.Collapses++
	m.stats.GPSPages--
	m.stats.PinnedPages++
	m.remapped(vpn)
	return nil
}

// EvictSubscriber handles memory oversubscription (Section 5.3): the
// driver swaps gpu's replica of vpn out, unsubscribing it, so gpu accesses
// the page remotely from now on. It is Unsubscribe with oversubscription
// semantics: evicting down to the final copy is refused (the last replica
// is never swapped).
func (m *Manager) EvictSubscriber(gpu int, vpn memsys.VPN) error {
	return m.unsubscribePage(gpu, vpn)
}

// Free releases every page of [base, base+size), GPS or conventional.
func (m *Manager) Free(base memsys.VAddr, size uint64) error {
	for _, vpn := range m.geom.PagesIn(base, size) {
		st, ok := m.pages[vpn]
		if !ok {
			return fmt.Errorf("core: freeing unallocated page %#x", uint64(vpn))
		}
		if e := m.gpsPT.Lookup(vpn); e != nil {
			e.Subscribers.ForEach(func(g int) {
				m.phys[g].Free(e.ReplicaOn(g))
				m.stats.ReplicaFrames--
			})
			m.gpsPT.Drop(vpn)
			m.stats.GPSPages--
		} else {
			m.phys[st.owner].Free(m.conv[st.owner].Lookup(vpn).PPN)
			m.stats.ReplicaFrames--
			m.stats.PinnedPages--
		}
		for g := 0; g < m.numGPUs; g++ {
			m.conv[g].Unmap(vpn)
		}
		delete(m.pages, vpn)
		m.remapped(vpn)
	}
	return nil
}

// Stats returns a snapshot of manager activity.
func (m *Manager) Stats() ManagerStats { return m.stats }

// SubscriberHistogram returns, for GPS-region pages currently replicated,
// how many pages have each subscriber count — the data behind Figure 9.
func (m *Manager) SubscriberHistogram() map[int]int {
	h := map[int]int{}
	m.gpsPT.ForEach(func(vpn memsys.VPN, e *memsys.GPSPTE) {
		h[e.Subscribers.Count()]++
	})
	// Downgraded GPS pages count as single-subscriber pages.
	for _, st := range m.pages {
		if st.gpsRegion && st.downgraded {
			h[1]++
		}
	}
	return h
}
