package core

import (
	"fmt"
	"math/bits"

	"gps/internal/memsys"
)

// AccessTracker is the GPS access tracking unit (Section 5.2): during the
// profiling phase it maintains, per GPU, a DRAM-resident bitmap with one bit
// per page of the GPS address space. Last-level TLB misses to GPS pages set
// the bit for the missing page. The driver reads the bitmaps at
// cuGPSTrackingStop() to decide unsubscriptions.
type AccessTracker struct {
	geom     memsys.Geometry
	baseVPN  memsys.VPN
	pages    uint64
	bitmaps  [][]uint64 // [gpu][word]
	active   bool
	recorded uint64
}

// NewAccessTracker covers the GPS address range [base, base+size) for
// numGPUs GPUs. Tracking starts disabled.
func NewAccessTracker(geom memsys.Geometry, base memsys.VAddr, size uint64, numGPUs int) *AccessTracker {
	if size == 0 {
		panic("core: tracker over empty range")
	}
	first := geom.VPNOf(base)
	last := geom.VPNOf(base + memsys.VAddr(size-1))
	pages := uint64(last-first) + 1
	words := (pages + 63) / 64
	bitmaps := make([][]uint64, numGPUs)
	for g := range bitmaps {
		bitmaps[g] = make([]uint64, words)
	}
	return &AccessTracker{geom: geom, baseVPN: first, pages: pages, bitmaps: bitmaps}
}

// BitmapBytes returns the DRAM footprint of one GPU's bitmap. (The paper:
// tracking a 32 GB range at 64 KB pages costs 64 KB of DRAM.)
func (t *AccessTracker) BitmapBytes() uint64 { return (t.pages + 7) / 8 }

// Start enables recording, clearing previous contents
// (cuGPSTrackingStart()).
func (t *AccessTracker) Start() {
	for _, bm := range t.bitmaps {
		for i := range bm {
			bm[i] = 0
		}
	}
	t.recorded = 0
	t.active = true
}

// Stop disables recording (cuGPSTrackingStop()).
func (t *AccessTracker) Stop() { t.active = false }

// Active reports whether a profiling phase is underway.
func (t *AccessTracker) Active() bool { return t.active }

// Recorded returns the number of bitmap set operations performed, a proxy
// for the (low) DRAM bandwidth the unit consumes.
func (t *AccessTracker) Recorded() uint64 { return t.recorded }

// RecordTLBMiss notes that gpu missed its last-level TLB on vpn. Misses
// outside the tracked range or while tracking is disabled are ignored, which
// mirrors the hardware: the unit only snoops misses tagged as GPS-range.
func (t *AccessTracker) RecordTLBMiss(gpu int, vpn memsys.VPN) {
	if !t.active || vpn < t.baseVPN || uint64(vpn-t.baseVPN) >= t.pages {
		return
	}
	if gpu < 0 || gpu >= len(t.bitmaps) {
		panic(fmt.Sprintf("core: tracker GPU %d out of range", gpu))
	}
	idx := uint64(vpn - t.baseVPN)
	word, bit := idx/64, idx%64
	if t.bitmaps[gpu][word]&(1<<bit) == 0 {
		t.bitmaps[gpu][word] |= 1 << bit
		t.recorded++
	}
}

// Merge folds another tracker's bitmaps into t. Both trackers must cover
// the same range for the same GPU count. Sharded replay gives each shard a
// private tracker and merges them at the profiling barrier; because the
// merge ORs bitmaps and recomputes the distinct-bit count, the result is
// identical to recording every miss on one tracker.
func (t *AccessTracker) Merge(o *AccessTracker) {
	if t.baseVPN != o.baseVPN || t.pages != o.pages || len(t.bitmaps) != len(o.bitmaps) {
		panic("core: merging trackers over different ranges")
	}
	var recorded uint64
	for g := range t.bitmaps {
		for w := range t.bitmaps[g] {
			t.bitmaps[g][w] |= o.bitmaps[g][w]
			recorded += uint64(bits.OnesCount64(t.bitmaps[g][w]))
		}
	}
	t.recorded = recorded
}

// Touched reports whether gpu accessed vpn during the last profiling phase.
func (t *AccessTracker) Touched(gpu int, vpn memsys.VPN) bool {
	if vpn < t.baseVPN || uint64(vpn-t.baseVPN) >= t.pages {
		return false
	}
	idx := uint64(vpn - t.baseVPN)
	return t.bitmaps[gpu][idx/64]&(1<<(idx%64)) != 0
}

// TouchedBy returns the set of GPUs that accessed vpn during profiling.
func (t *AccessTracker) TouchedBy(vpn memsys.VPN) memsys.SubscriberSet {
	var s memsys.SubscriberSet
	for g := range t.bitmaps {
		if t.Touched(g, vpn) {
			s = s.Add(g)
		}
	}
	return s
}
