package core

import (
	"gps/internal/memsys"
)

// Packet is one cache block worth of replicated store traffic headed to a
// remote subscriber over the interconnect.
type Packet struct {
	SrcGPU int
	DstGPU int
	LineVA memsys.VAddr
	DstPPN memsys.PPN
	Atomic bool
}

// TranslationStats counts GPS address translation unit activity.
type TranslationStats struct {
	Lookups    uint64
	TLBHits    uint64
	TLBMisses  uint64
	WalkVisits uint64 // page-table node visits performed by misses
	Packets    uint64 // replicated packets emitted
	Unmapped   uint64 // drained blocks whose page is no longer GPS (raced collapse)
}

// HitRate returns the GPS-TLB hit rate (the §7.4 GPS-TLB metric).
func (s TranslationStats) HitRate() float64 {
	if s.Lookups == 0 {
		return 0
	}
	return float64(s.TLBHits) / float64(s.Lookups)
}

// TranslationUnit is the per-GPU GPS address translation unit (Section 5.2):
// drained write-queue blocks look up the wide GPS-PTE in a small GPS-TLB,
// falling back to a hardware walk of the shared GPS page table, then fan out
// one packet per remote subscriber.
type TranslationUnit struct {
	gpu   int
	geom  memsys.Geometry
	tlb   *memsys.TLB[*memsys.GPSPTE]
	table *memsys.GPSPageTable
	emit  func(Packet)
	stats TranslationStats
}

// NewTranslationUnit builds the unit. emit receives one packet per remote
// subscriber per drained block.
func NewTranslationUnit(gpu int, geom memsys.Geometry, tlbEntries, tlbWays int,
	table *memsys.GPSPageTable, emit func(Packet)) *TranslationUnit {
	if emit == nil {
		panic("core: translation unit needs an emit sink")
	}
	return &TranslationUnit{
		gpu:   gpu,
		geom:  geom,
		tlb:   memsys.NewTLB[*memsys.GPSPTE](tlbEntries, tlbWays),
		table: table,
		emit:  emit,
	}
}

// Stats returns a snapshot of the unit's counters.
func (u *TranslationUnit) Stats() TranslationStats { return u.stats }

// ResetStats zeroes the counters.
func (u *TranslationUnit) ResetStats() { u.stats = TranslationStats{} }

// InvalidateTLB removes a page's cached wide PTE, e.g. after unsubscription
// or collapse rewrites the GPS page table.
func (u *TranslationUnit) InvalidateTLB(vpn memsys.VPN) { u.tlb.Invalidate(vpn) }

// FlushTLB empties the GPS-TLB.
func (u *TranslationUnit) FlushTLB() { u.tlb.Flush() }

// Process translates one drained block and emits packets to every remote
// subscriber. The source GPU's own replica was already updated on the store
// path (W3 in Figure 7), so it is excluded here.
func (u *TranslationUnit) Process(d Drained) {
	u.stats.Lookups++
	vpn := u.geom.VPNOf(d.LineVA)
	pte, hit := u.tlb.Lookup(vpn)
	if hit {
		u.stats.TLBHits++
	} else {
		u.stats.TLBMisses++
		var visits int
		pte, visits = u.table.Walk(vpn)
		u.stats.WalkVisits += uint64(visits)
		if pte != nil {
			u.tlb.Fill(vpn, pte)
		}
	}
	if pte == nil {
		// The page was collapsed or unsubscribed while the block sat in the
		// queue; there is nothing to replicate.
		u.stats.Unmapped++
		return
	}
	pte.Subscribers.ForEach(func(dst int) {
		if dst == u.gpu {
			return
		}
		u.stats.Packets++
		u.emit(Packet{
			SrcGPU: u.gpu,
			DstGPU: dst,
			LineVA: d.LineVA,
			DstPPN: pte.ReplicaOn(dst),
			Atomic: d.Atomic,
		})
	})
}
