// Package core implements the GPS hardware proposal of Sections 3 and 5 of
// the paper: the remote write queue that coalesces weak stores at cache-block
// granularity, the GPS address translation unit with its small GPS-TLB
// backed by the wide GPS page table, the access tracking unit that profiles
// page touches via last-level TLB misses, and the subscription manager that
// ties them to the conventional and GPS page tables.
package core

import (
	"fmt"

	"gps/internal/memsys"
)

// DrainReason records why an entry left the write queue, for statistics and
// the timing model (watermark drains overlap compute; flush drains gate
// synchronization).
type DrainReason uint8

// Drain reasons.
const (
	// DrainWatermark: occupancy reached the high watermark and the least
	// recently added entry was pushed out to make room.
	DrainWatermark DrainReason = iota
	// DrainFlush: a sys-scoped synchronization (fence or implicit grid-end
	// release) forced the whole queue out.
	DrainFlush
	// DrainPassThrough: the operation is not coalescable (an atomic) and
	// moved straight through the queue.
	DrainPassThrough
)

// Drained is one cache block leaving the write queue toward the GPS address
// translation unit.
type Drained struct {
	LineVA memsys.VAddr // line-aligned virtual address
	Writes int          // stores merged into this block while queued
	Reason DrainReason
	SrcGPU int
	Atomic bool
}

// WriteQueueStats counts queue activity.
type WriteQueueStats struct {
	Stores     uint64 // total coalescable stores offered
	Hits       uint64 // stores merged into a resident block
	Misses     uint64 // stores that allocated a new block
	Atomics    uint64 // pass-through operations
	Drains     uint64 // blocks drained at the watermark
	Flushes    uint64 // blocks drained by synchronization
	FlushCalls uint64 // number of Flush invocations
}

// HitRate returns the fraction of coalescable stores that merged into a
// resident block (Figure 14's metric). Atomics count as offered stores that
// can never hit, matching the paper's observation that atomic-dominated
// workloads exhibit 0% hit rate.
func (s WriteQueueStats) HitRate() float64 {
	total := s.Stores + s.Atomics
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// WriteQueue is the GPS remote write queue (Section 5.2): a fully
// associative, virtually addressed buffer of cache blocks awaiting
// replication to remote subscribers. Weak stores to the same block coalesce;
// when occupancy reaches the high watermark, the least recently added block
// drains; sys-scoped synchronization flushes everything.
//
// Resident blocks live in a circular ring in insertion order (the live
// window is [head, tail)), reached through an open-addressed index from
// line address to ring slot. The queue drains strictly FIFO, so a ring slot
// is only reused after its entry has left the index — PushStore, Contains
// and drainOldest all run without map machinery or per-block allocation,
// which matters because every weak store in a GPS replay passes through
// here.
type WriteQueue struct {
	gpu       int
	geom      memsys.Geometry
	capacity  int
	watermark int

	ring     []wqEntry
	ringMask uint32
	head     uint32 // free-running; slot = pos & ringMask
	tail     uint32

	idxKeys  []memsys.VAddr
	idxSlots []uint32
	idxState []uint8 // idxEmpty / idxTombstone / idxFull
	idxMask  uint32
	idxLive  int
	idxDead  int

	drain func(Drained)
	stats WriteQueueStats
}

type wqEntry struct {
	lineVA memsys.VAddr
	writes int
}

const (
	idxEmpty uint8 = iota
	idxTombstone
	idxFull
)

func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// NewWriteQueue builds a write queue for one GPU. drain receives every block
// leaving the queue, in order; it must not re-enter the queue.
func NewWriteQueue(gpu int, geom memsys.Geometry, capacity, watermark int, drain func(Drained)) *WriteQueue {
	if capacity <= 0 {
		panic("core: write queue capacity must be positive")
	}
	if watermark <= 0 || watermark > capacity {
		panic(fmt.Sprintf("core: watermark %d out of range (1..%d)", watermark, capacity))
	}
	if drain == nil {
		panic("core: write queue needs a drain sink")
	}
	ringSize := nextPow2(capacity)
	idxSize := nextPow2(4 * capacity) // load factor stays under 25% live
	return &WriteQueue{
		gpu:       gpu,
		geom:      geom,
		capacity:  capacity,
		watermark: watermark,
		ring:      make([]wqEntry, ringSize),
		ringMask:  uint32(ringSize - 1),
		idxKeys:   make([]memsys.VAddr, idxSize),
		idxSlots:  make([]uint32, idxSize),
		idxState:  make([]uint8, idxSize),
		idxMask:   uint32(idxSize - 1),
		drain:     drain,
	}
}

// Len returns the current occupancy in blocks.
func (q *WriteQueue) Len() int { return int(q.tail - q.head) }

// idxHash spreads a line-aligned address (low bits all zero) across the
// index via a Fibonacci multiply.
func (q *WriteQueue) idxHash(line memsys.VAddr) uint32 {
	return uint32(uint64(line)*0x9E3779B97F4A7C15>>32) & q.idxMask
}

// idxFind returns the ring slot holding line, if resident.
func (q *WriteQueue) idxFind(line memsys.VAddr) (uint32, bool) {
	for i := q.idxHash(line); ; i = (i + 1) & q.idxMask {
		switch q.idxState[i] {
		case idxEmpty:
			return 0, false
		case idxFull:
			if q.idxKeys[i] == line {
				return q.idxSlots[i], true
			}
		}
	}
}

// idxInsert records line -> slot. The caller guarantees line is absent.
func (q *WriteQueue) idxInsert(line memsys.VAddr, slot uint32) {
	if 2*(q.idxLive+q.idxDead) >= len(q.idxState) {
		q.idxRehash()
	}
	for i := q.idxHash(line); ; i = (i + 1) & q.idxMask {
		if q.idxState[i] != idxFull {
			if q.idxState[i] == idxTombstone {
				q.idxDead--
			}
			q.idxState[i] = idxFull
			q.idxKeys[i] = line
			q.idxSlots[i] = slot
			q.idxLive++
			return
		}
	}
}

// idxDelete removes line from the index. The caller guarantees presence.
func (q *WriteQueue) idxDelete(line memsys.VAddr) {
	for i := q.idxHash(line); ; i = (i + 1) & q.idxMask {
		if q.idxState[i] == idxFull && q.idxKeys[i] == line {
			q.idxState[i] = idxTombstone
			q.idxLive--
			q.idxDead++
			return
		}
	}
}

// idxRehash clears accumulated tombstones by reinserting the live window.
func (q *WriteQueue) idxRehash() {
	clear(q.idxState)
	q.idxLive, q.idxDead = 0, 0
	for pos := q.head; pos != q.tail; pos++ {
		slot := pos & q.ringMask
		line := q.ring[slot].lineVA
		for i := q.idxHash(line); ; i = (i + 1) & q.idxMask {
			if q.idxState[i] != idxFull {
				q.idxState[i] = idxFull
				q.idxKeys[i] = line
				q.idxSlots[i] = slot
				q.idxLive++
				break
			}
		}
	}
}

// Contains reports whether the block holding va is resident in the queue.
// GPS uses this on the load path of non-subscribers: a load may forward its
// value from the remote write queue instead of issuing remotely
// (Section 5.1).
func (q *WriteQueue) Contains(va memsys.VAddr) bool {
	_, ok := q.idxFind(q.geom.LineBase(va))
	return ok
}

// Stats returns a snapshot of the queue's counters.
func (q *WriteQueue) Stats() WriteQueueStats { return q.stats }

// ResetStats zeroes the counters without disturbing queue contents.
func (q *WriteQueue) ResetStats() { q.stats = WriteQueueStats{} }

// PushStore offers a weak (non-sys-scoped, non-atomic) store to the queue
// and reports whether it coalesced into a resident block. Reaching the high
// watermark drains the least recently added block.
func (q *WriteQueue) PushStore(va memsys.VAddr) (coalesced bool) {
	line := q.geom.LineBase(va)
	q.stats.Stores++
	if slot, ok := q.idxFind(line); ok {
		q.ring[slot].writes++
		q.stats.Hits++
		return true
	}
	q.stats.Misses++
	slot := q.tail & q.ringMask
	q.ring[slot] = wqEntry{lineVA: line, writes: 1}
	// Index before advancing tail: a rehash inside idxInsert re-indexes the
	// live window [head, tail), and the new entry must not be in it yet or
	// it would be indexed twice.
	q.idxInsert(line, slot)
	q.tail++
	if q.Len() >= q.watermark {
		q.drainOldest(DrainWatermark)
	}
	return false
}

// PushAtomic offers an atomic RMW. The GPS write queue does not support
// coalescing atomics (Section 7.4), so the operation passes straight through
// to the drain sink.
func (q *WriteQueue) PushAtomic(va memsys.VAddr) {
	q.stats.Atomics++
	q.drain(Drained{
		LineVA: q.geom.LineBase(va),
		Writes: 1,
		Reason: DrainPassThrough,
		SrcGPU: q.gpu,
		Atomic: true,
	})
}

// Flush drains every resident block in insertion order. It models the
// mandatory full drain at sys-scoped synchronization points, including the
// implicit release at the end of every grid (Section 3.3).
func (q *WriteQueue) Flush() {
	q.stats.FlushCalls++
	for q.tail != q.head {
		q.drainOldest(DrainFlush)
	}
}

func (q *WriteQueue) drainOldest(reason DrainReason) {
	if q.tail == q.head {
		panic("core: drainOldest on empty queue")
	}
	e := q.ring[q.head&q.ringMask]
	q.head++
	q.idxDelete(e.lineVA)
	switch reason {
	case DrainWatermark:
		q.stats.Drains++
	case DrainFlush:
		q.stats.Flushes++
	}
	q.drain(Drained{LineVA: e.lineVA, Writes: e.writes, Reason: reason, SrcGPU: q.gpu})
}
