// Package core implements the GPS hardware proposal of Sections 3 and 5 of
// the paper: the remote write queue that coalesces weak stores at cache-block
// granularity, the GPS address translation unit with its small GPS-TLB
// backed by the wide GPS page table, the access tracking unit that profiles
// page touches via last-level TLB misses, and the subscription manager that
// ties them to the conventional and GPS page tables.
package core

import (
	"fmt"

	"gps/internal/memsys"
)

// DrainReason records why an entry left the write queue, for statistics and
// the timing model (watermark drains overlap compute; flush drains gate
// synchronization).
type DrainReason uint8

// Drain reasons.
const (
	// DrainWatermark: occupancy reached the high watermark and the least
	// recently added entry was pushed out to make room.
	DrainWatermark DrainReason = iota
	// DrainFlush: a sys-scoped synchronization (fence or implicit grid-end
	// release) forced the whole queue out.
	DrainFlush
	// DrainPassThrough: the operation is not coalescable (an atomic) and
	// moved straight through the queue.
	DrainPassThrough
)

// Drained is one cache block leaving the write queue toward the GPS address
// translation unit.
type Drained struct {
	LineVA memsys.VAddr // line-aligned virtual address
	Writes int          // stores merged into this block while queued
	Reason DrainReason
	SrcGPU int
	Atomic bool
}

// WriteQueueStats counts queue activity.
type WriteQueueStats struct {
	Stores     uint64 // total coalescable stores offered
	Hits       uint64 // stores merged into a resident block
	Misses     uint64 // stores that allocated a new block
	Atomics    uint64 // pass-through operations
	Drains     uint64 // blocks drained at the watermark
	Flushes    uint64 // blocks drained by synchronization
	FlushCalls uint64 // number of Flush invocations
}

// HitRate returns the fraction of coalescable stores that merged into a
// resident block (Figure 14's metric). Atomics count as offered stores that
// can never hit, matching the paper's observation that atomic-dominated
// workloads exhibit 0% hit rate.
func (s WriteQueueStats) HitRate() float64 {
	total := s.Stores + s.Atomics
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// WriteQueue is the GPS remote write queue (Section 5.2): a fully
// associative, virtually addressed buffer of cache blocks awaiting
// replication to remote subscribers. Weak stores to the same block coalesce;
// when occupancy reaches the high watermark, the least recently added block
// drains; sys-scoped synchronization flushes everything.
type WriteQueue struct {
	gpu       int
	geom      memsys.Geometry
	capacity  int
	watermark int

	resident map[memsys.VAddr]*wqEntry
	fifo     []*wqEntry // insertion order; head = least recently added
	head     int        // index of queue front within fifo

	drain func(Drained)
	stats WriteQueueStats
}

type wqEntry struct {
	lineVA memsys.VAddr
	writes int
}

// NewWriteQueue builds a write queue for one GPU. drain receives every block
// leaving the queue, in order; it must not re-enter the queue.
func NewWriteQueue(gpu int, geom memsys.Geometry, capacity, watermark int, drain func(Drained)) *WriteQueue {
	if capacity <= 0 {
		panic("core: write queue capacity must be positive")
	}
	if watermark <= 0 || watermark > capacity {
		panic(fmt.Sprintf("core: watermark %d out of range (1..%d)", watermark, capacity))
	}
	if drain == nil {
		panic("core: write queue needs a drain sink")
	}
	return &WriteQueue{
		gpu:       gpu,
		geom:      geom,
		capacity:  capacity,
		watermark: watermark,
		resident:  make(map[memsys.VAddr]*wqEntry, capacity),
		drain:     drain,
	}
}

// Len returns the current occupancy in blocks.
func (q *WriteQueue) Len() int { return len(q.resident) }

// Contains reports whether the block holding va is resident in the queue.
// GPS uses this on the load path of non-subscribers: a load may forward its
// value from the remote write queue instead of issuing remotely
// (Section 5.1).
func (q *WriteQueue) Contains(va memsys.VAddr) bool {
	_, ok := q.resident[q.geom.LineBase(va)]
	return ok
}

// Stats returns a snapshot of the queue's counters.
func (q *WriteQueue) Stats() WriteQueueStats { return q.stats }

// ResetStats zeroes the counters without disturbing queue contents.
func (q *WriteQueue) ResetStats() { q.stats = WriteQueueStats{} }

// PushStore offers a weak (non-sys-scoped, non-atomic) store to the queue
// and reports whether it coalesced into a resident block. Reaching the high
// watermark drains the least recently added block.
func (q *WriteQueue) PushStore(va memsys.VAddr) (coalesced bool) {
	line := q.geom.LineBase(va)
	q.stats.Stores++
	if e, ok := q.resident[line]; ok {
		e.writes++
		q.stats.Hits++
		return true
	}
	q.stats.Misses++
	e := &wqEntry{lineVA: line, writes: 1}
	q.resident[line] = e
	q.fifo = append(q.fifo, e)
	if len(q.resident) >= q.watermark {
		q.drainOldest(DrainWatermark)
	}
	return false
}

// PushAtomic offers an atomic RMW. The GPS write queue does not support
// coalescing atomics (Section 7.4), so the operation passes straight through
// to the drain sink.
func (q *WriteQueue) PushAtomic(va memsys.VAddr) {
	q.stats.Atomics++
	q.drain(Drained{
		LineVA: q.geom.LineBase(va),
		Writes: 1,
		Reason: DrainPassThrough,
		SrcGPU: q.gpu,
		Atomic: true,
	})
}

// Flush drains every resident block in insertion order. It models the
// mandatory full drain at sys-scoped synchronization points, including the
// implicit release at the end of every grid (Section 3.3).
func (q *WriteQueue) Flush() {
	q.stats.FlushCalls++
	for len(q.resident) > 0 {
		q.drainOldest(DrainFlush)
	}
	q.fifo = q.fifo[:0]
	q.head = 0
}

func (q *WriteQueue) drainOldest(reason DrainReason) {
	// Skip any holes left by compaction (none today, but keeps the walk
	// safe if eviction policies are extended).
	for q.head < len(q.fifo) {
		e := q.fifo[q.head]
		q.head++
		if _, ok := q.resident[e.lineVA]; !ok || q.resident[e.lineVA] != e {
			continue
		}
		delete(q.resident, e.lineVA)
		switch reason {
		case DrainWatermark:
			q.stats.Drains++
		case DrainFlush:
			q.stats.Flushes++
		}
		q.drain(Drained{LineVA: e.lineVA, Writes: e.writes, Reason: reason, SrcGPU: q.gpu})
		q.compact()
		return
	}
	panic("core: drainOldest on empty queue")
}

// compact reclaims fifo storage once the consumed prefix dominates.
func (q *WriteQueue) compact() {
	if q.head > q.capacity && q.head*2 >= len(q.fifo) {
		n := copy(q.fifo, q.fifo[q.head:])
		q.fifo = q.fifo[:n]
		q.head = 0
	}
}
