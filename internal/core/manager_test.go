package core

import (
	"errors"
	"testing"

	"gps/internal/memsys"
)

func newTestManager(t *testing.T, gpus int) *Manager {
	t.Helper()
	m, err := NewManager(testGeom(), gpus, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

const page = 64 << 10

func TestAllocGPSCreatesReplicasEverywhere(t *testing.T) {
	m := newTestManager(t, 4)
	if err := m.AllocGPS(0, 2*page, memsys.AllGPUs(4)); err != nil {
		t.Fatal(err)
	}
	for vpn := memsys.VPN(0); vpn < 2; vpn++ {
		if got := m.Subscribers(vpn); got != memsys.AllGPUs(4) {
			t.Fatalf("page %d subscribers = %v", vpn, got)
		}
		for g := 0; g < 4; g++ {
			pte := m.PageTable(g).Lookup(vpn)
			if pte == nil || !pte.GPS || pte.Owner != g {
				t.Fatalf("GPU %d PTE for page %d = %+v", g, vpn, pte)
			}
		}
	}
	if m.Stats().ReplicaFrames != 8 {
		t.Fatalf("replica frames = %d, want 8", m.Stats().ReplicaFrames)
	}
	if used := m.PhysMem(0).UsedBytes(); used != 2*page {
		t.Fatalf("GPU0 used = %d, want two pages", used)
	}
}

func TestAllocGPSPartialSubscribers(t *testing.T) {
	m := newTestManager(t, 4)
	if err := m.AllocGPS(0, page, memsys.SetOf(1, 2)); err != nil {
		t.Fatal(err)
	}
	// Non-subscribers map remotely to the first subscriber.
	pte := m.PageTable(0).Lookup(0)
	if pte == nil || !pte.GPS || pte.Owner != 1 {
		t.Fatalf("non-subscriber PTE = %+v, want remote to GPU1", pte)
	}
	if m.PhysMem(0).UsedBytes() != 0 || m.PhysMem(3).UsedBytes() != 0 {
		t.Fatal("non-subscribers must not hold replicas")
	}
}

func TestAllocPinned(t *testing.T) {
	m := newTestManager(t, 2)
	if err := m.AllocPinned(0, page, 1); err != nil {
		t.Fatal(err)
	}
	for g := 0; g < 2; g++ {
		pte := m.PageTable(g).Lookup(0)
		if pte == nil || pte.GPS || pte.Owner != 1 {
			t.Fatalf("GPU %d pinned PTE = %+v", g, pte)
		}
	}
	if m.IsGPSPage(0, 0) {
		t.Fatal("pinned page must not be GPS")
	}
}

func TestDoubleAllocFails(t *testing.T) {
	m := newTestManager(t, 2)
	if err := m.AllocGPS(0, page, memsys.AllGPUs(2)); err != nil {
		t.Fatal(err)
	}
	if err := m.AllocGPS(0, page, memsys.AllGPUs(2)); err == nil {
		t.Fatal("double alloc accepted")
	}
	if err := m.AllocPinned(0, page, 0); err == nil {
		t.Fatal("pinned over GPS accepted")
	}
}

func TestUnsubscribeFreesAndRemapsRemote(t *testing.T) {
	m := newTestManager(t, 4)
	if err := m.AllocGPS(0, page, memsys.AllGPUs(4)); err != nil {
		t.Fatal(err)
	}
	if err := m.Unsubscribe(3, 0, page); err != nil {
		t.Fatal(err)
	}
	if got := m.Subscribers(0); got != memsys.SetOf(0, 1, 2) {
		t.Fatalf("subscribers = %v", got)
	}
	if m.PhysMem(3).UsedBytes() != 0 {
		t.Fatal("unsubscribed replica not freed")
	}
	pte := m.PageTable(3).Lookup(0)
	if pte == nil || !pte.GPS || pte.Owner != 0 {
		t.Fatalf("leaver PTE = %+v, want remote with GPS bit", pte)
	}
	if m.Stats().Unsubscribes != 1 {
		t.Fatalf("unsubscribes = %d", m.Stats().Unsubscribes)
	}
}

func TestUnsubscribeLastFails(t *testing.T) {
	m := newTestManager(t, 2)
	if err := m.AllocGPS(0, page, memsys.SetOf(0, 1)); err != nil {
		t.Fatal(err)
	}
	if err := m.Unsubscribe(0, 0, page); err != nil {
		t.Fatal(err)
	}
	// Page downgraded to conventional on GPU1; unsubscribing it now fails.
	if err := m.Unsubscribe(1, 0, page); err == nil {
		t.Fatal("unsubscribing the last copy should fail")
	}
}

func TestDowngradeOnSingleSubscriber(t *testing.T) {
	m := newTestManager(t, 4)
	if err := m.AllocGPS(0, page, memsys.SetOf(0, 1)); err != nil {
		t.Fatal(err)
	}
	if err := m.Unsubscribe(0, 0, page); err != nil {
		t.Fatal(err)
	}
	// One subscriber left: the page must be downgraded to conventional.
	if m.GPSPageTable().Lookup(0) != nil {
		t.Fatal("downgraded page still in GPS page table")
	}
	for g := 0; g < 4; g++ {
		pte := m.PageTable(g).Lookup(0)
		if pte == nil || pte.GPS || pte.Owner != 1 {
			t.Fatalf("GPU %d PTE after downgrade = %+v", g, pte)
		}
	}
	if m.Stats().Downgrades != 1 {
		t.Fatalf("downgrades = %d", m.Stats().Downgrades)
	}
	if got := m.Subscribers(0); got != memsys.SetOf(1) {
		t.Fatalf("post-downgrade subscribers = %v", got)
	}
}

func TestSubscribeRepromotesDowngradedPage(t *testing.T) {
	m := newTestManager(t, 4)
	if err := m.AllocGPS(0, page, memsys.SetOf(0, 1)); err != nil {
		t.Fatal(err)
	}
	if err := m.Unsubscribe(0, 0, page); err != nil {
		t.Fatal(err)
	}
	if err := m.Subscribe(2, 0, page); err != nil {
		t.Fatal(err)
	}
	if got := m.Subscribers(0); got != memsys.SetOf(1, 2) {
		t.Fatalf("subscribers = %v", got)
	}
	if !m.IsGPSPage(1, 0) || !m.IsGPSPage(2, 0) {
		t.Fatal("re-promoted page should carry the GPS bit")
	}
}

func TestSubscribeIsIdempotent(t *testing.T) {
	m := newTestManager(t, 2)
	if err := m.AllocGPS(0, page, memsys.AllGPUs(2)); err != nil {
		t.Fatal(err)
	}
	before := m.PhysMem(0).UsedBytes()
	if err := m.Subscribe(0, 0, page); err != nil {
		t.Fatal(err)
	}
	if m.PhysMem(0).UsedBytes() != before {
		t.Fatal("re-subscribing allocated a second replica")
	}
}

func TestApplyProfileUnsubscribesUntouched(t *testing.T) {
	m := newTestManager(t, 4)
	geom := m.Geometry()
	if err := m.AllocGPS(0, 3*page, memsys.AllGPUs(4)); err != nil {
		t.Fatal(err)
	}
	tr := NewAccessTracker(geom, 0, 3*page, 4)
	tr.Start()
	// Page 0: touched by 0,1. Page 1: touched by all. Page 2: untouched.
	tr.RecordTLBMiss(0, 0)
	tr.RecordTLBMiss(1, 0)
	for g := 0; g < 4; g++ {
		tr.RecordTLBMiss(g, 1)
	}
	tr.Stop()

	cuts := m.ApplyProfile(tr, nil)
	if cuts == 0 {
		t.Fatal("no unsubscriptions performed")
	}
	if got := m.Subscribers(0); got != memsys.SetOf(0, 1) {
		t.Fatalf("page 0 subscribers = %v, want {0,1}", got)
	}
	if got := m.Subscribers(1); got != memsys.AllGPUs(4) {
		t.Fatalf("page 1 subscribers = %v, want all", got)
	}
	// Untouched page keeps exactly one subscriber (downgraded).
	if got := m.Subscribers(2); got.Count() != 1 {
		t.Fatalf("page 2 subscribers = %v, want one", got)
	}
}

func TestCollapseSysScoped(t *testing.T) {
	m := newTestManager(t, 4)
	if err := m.AllocGPS(0, page, memsys.AllGPUs(4)); err != nil {
		t.Fatal(err)
	}
	if err := m.CollapseSysScoped(2, 0); err != nil {
		t.Fatal(err)
	}
	if m.GPSPageTable().Lookup(0) != nil {
		t.Fatal("collapsed page still replicated")
	}
	for g := 0; g < 4; g++ {
		pte := m.PageTable(g).Lookup(0)
		if pte == nil || pte.GPS || pte.Owner != 2 {
			t.Fatalf("GPU %d PTE after collapse = %+v, want conventional on 2", g, pte)
		}
	}
	// Only the writer's frame remains.
	for g := 0; g < 4; g++ {
		want := uint64(0)
		if g == 2 {
			want = page
		}
		if m.PhysMem(g).UsedBytes() != want {
			t.Fatalf("GPU %d used = %d, want %d", g, m.PhysMem(g).UsedBytes(), want)
		}
	}
	if m.Stats().Collapses != 1 {
		t.Fatal("collapse not counted")
	}
	// Idempotent on an already-collapsed page.
	if err := m.CollapseSysScoped(1, 0); err != nil {
		t.Fatal(err)
	}
}

func TestFreeReleasesEverything(t *testing.T) {
	m := newTestManager(t, 2)
	if err := m.AllocGPS(0, 2*page, memsys.AllGPUs(2)); err != nil {
		t.Fatal(err)
	}
	if err := m.AllocPinned(1<<30, page, 0); err != nil {
		t.Fatal(err)
	}
	if err := m.Free(0, 2*page); err != nil {
		t.Fatal(err)
	}
	if err := m.Free(1<<30, page); err != nil {
		t.Fatal(err)
	}
	for g := 0; g < 2; g++ {
		if m.PhysMem(g).UsedBytes() != 0 {
			t.Fatalf("GPU %d leaked memory", g)
		}
		if m.PageTable(g).Entries() != 0 {
			t.Fatalf("GPU %d page table not empty", g)
		}
	}
	if err := m.Free(0, page); err == nil {
		t.Fatal("double free accepted")
	}
	if m.Stats().ReplicaFrames != 0 {
		t.Fatalf("replica frames = %d after free", m.Stats().ReplicaFrames)
	}
}

func TestSubscriberHistogram(t *testing.T) {
	m := newTestManager(t, 4)
	if err := m.AllocGPS(0, page, memsys.AllGPUs(4)); err != nil {
		t.Fatal(err)
	}
	if err := m.AllocGPS(page, page, memsys.SetOf(0, 1)); err != nil {
		t.Fatal(err)
	}
	if err := m.AllocGPS(2*page, page, memsys.SetOf(0, 1, 2)); err != nil {
		t.Fatal(err)
	}
	h := m.SubscriberHistogram()
	if h[4] != 1 || h[2] != 1 || h[3] != 1 {
		t.Fatalf("histogram = %v", h)
	}
}

func TestManagerErrors(t *testing.T) {
	m := newTestManager(t, 2)
	if err := m.AllocGPS(0, page, 0); err == nil {
		t.Error("empty subscriber set accepted")
	}
	if err := m.AllocGPS(0, page, memsys.SetOf(5)); err == nil {
		t.Error("out-of-range subscriber accepted")
	}
	if err := m.AllocPinned(0, page, 9); err == nil {
		t.Error("out-of-range GPU accepted")
	}
	if err := m.Subscribe(0, 1<<40, page); err == nil {
		t.Error("subscribing unallocated page accepted")
	}
	if err := m.Unsubscribe(0, 1<<40, page); err == nil {
		t.Error("unsubscribing unallocated page accepted")
	}
	if err := m.CollapseSysScoped(0, 1<<30); err == nil {
		t.Error("collapsing unallocated page accepted")
	}
	if _, err := NewManager(testGeom(), 0, 1<<30); err == nil {
		t.Error("zero GPUs accepted")
	}
}

func TestAllocGPSOutOfMemory(t *testing.T) {
	geom := testGeom()
	m, err := NewManager(geom, 2, 2*page)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.AllocGPS(0, 2*page, memsys.AllGPUs(2)); err != nil {
		t.Fatal(err)
	}
	err = m.AllocGPS(1<<30, page, memsys.AllGPUs(2))
	if !errors.Is(err, memsys.ErrOutOfMemory) {
		t.Fatalf("expected ErrOutOfMemory, got %v", err)
	}
}

func TestRemapHookFires(t *testing.T) {
	m := newTestManager(t, 2)
	var remaps []memsys.VPN
	m.SetRemapHook(func(vpn memsys.VPN) { remaps = append(remaps, vpn) })
	if err := m.AllocGPS(0, page, memsys.AllGPUs(2)); err != nil {
		t.Fatal(err)
	}
	if err := m.Unsubscribe(0, 0, page); err != nil {
		t.Fatal(err)
	}
	if len(remaps) == 0 {
		t.Fatal("remap hook never fired for unsubscribe/downgrade")
	}
}

func TestEvictSubscriberOnOversubscription(t *testing.T) {
	// Section 5.3: "If the GPU driver swaps out a page from a subscriber due
	// to oversubscription, that GPU will be unsubscribed and will access
	// that page remotely."
	m := newTestManager(t, 4)
	if err := m.AllocGPS(0, page, memsys.AllGPUs(4)); err != nil {
		t.Fatal(err)
	}
	if err := m.EvictSubscriber(2, 0); err != nil {
		t.Fatal(err)
	}
	if got := m.Subscribers(0); got != memsys.SetOf(0, 1, 3) {
		t.Fatalf("subscribers after eviction = %v", got)
	}
	if m.PhysMem(2).UsedBytes() != 0 {
		t.Fatal("evicted replica not freed")
	}
	// The evicted GPU now maps the page remotely with the GPS bit intact.
	pte := m.PageTable(2).Lookup(0)
	if pte == nil || !pte.GPS || pte.Owner == 2 {
		t.Fatalf("evicted PTE = %+v", pte)
	}
	// Evicting down to the last copy is refused.
	if err := m.EvictSubscriber(0, 0); err != nil {
		t.Fatal(err)
	}
	if err := m.EvictSubscriber(1, 0); err != nil {
		t.Fatal(err)
	}
	// One subscriber remains (page downgraded); eviction must refuse.
	if err := m.EvictSubscriber(3, 0); err == nil {
		t.Fatal("evicted the final copy")
	}
}
