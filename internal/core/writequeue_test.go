package core

import (
	"math/rand"
	"testing"

	"gps/internal/memsys"
)

func testGeom() memsys.Geometry {
	return memsys.MustGeometry(64<<10, 128, 49, 47)
}

func collectDrains(drained *[]Drained) func(Drained) {
	return func(d Drained) { *drained = append(*drained, d) }
}

func TestWriteQueueCoalescesSameLine(t *testing.T) {
	var drained []Drained
	q := NewWriteQueue(0, testGeom(), 8, 7, collectDrains(&drained))
	if q.PushStore(0) {
		t.Fatal("first store should miss")
	}
	if !q.PushStore(4) {
		t.Fatal("same-line store should coalesce")
	}
	if !q.PushStore(127) {
		t.Fatal("same-line store should coalesce")
	}
	if q.PushStore(128) {
		t.Fatal("next-line store should miss")
	}
	if q.Len() != 2 {
		t.Fatalf("Len = %d, want 2", q.Len())
	}
	if len(drained) != 0 {
		t.Fatalf("nothing should drain below the watermark, got %d", len(drained))
	}
	s := q.Stats()
	if s.Hits != 2 || s.Misses != 2 {
		t.Fatalf("hits/misses = %d/%d, want 2/2", s.Hits, s.Misses)
	}
	if s.HitRate() != 0.5 {
		t.Fatalf("HitRate = %v, want 0.5", s.HitRate())
	}
}

func TestWriteQueueNonConsecutiveCoalescing(t *testing.T) {
	// Section 3.3: "Stores need not be consecutive to be coalesced".
	var drained []Drained
	q := NewWriteQueue(0, testGeom(), 8, 7, collectDrains(&drained))
	q.PushStore(0)        // line 0
	q.PushStore(512)      // line 4
	if !q.PushStore(64) { // back to line 0
		t.Fatal("non-consecutive same-line store should still coalesce")
	}
}

func TestWriteQueueWatermarkDrainsOldest(t *testing.T) {
	var drained []Drained
	// Capacity 512, watermark 511 in the paper; scaled here: cap 4, mark 3.
	q := NewWriteQueue(2, testGeom(), 4, 3, collectDrains(&drained))
	q.PushStore(0 * 128)
	q.PushStore(1 * 128)
	q.PushStore(2 * 128) // occupancy hits 3 == watermark: drain LRA (line 0)
	if len(drained) != 1 {
		t.Fatalf("drains = %d, want 1", len(drained))
	}
	d := drained[0]
	if d.LineVA != 0 || d.Reason != DrainWatermark || d.SrcGPU != 2 {
		t.Fatalf("drained %+v", d)
	}
	if q.Len() != 2 {
		t.Fatalf("Len after drain = %d, want 2", q.Len())
	}
}

func TestWriteQueueDrainCarriesMergedWrites(t *testing.T) {
	var drained []Drained
	q := NewWriteQueue(0, testGeom(), 4, 3, collectDrains(&drained))
	q.PushStore(0)
	q.PushStore(8)
	q.PushStore(16)
	q.PushStore(128)
	q.PushStore(256) // drains line 0 with 3 merged writes
	if len(drained) != 1 || drained[0].Writes != 3 {
		t.Fatalf("drained = %+v, want 3 writes in line 0", drained)
	}
}

func TestWriteQueueFlushDrainsAllInOrder(t *testing.T) {
	var drained []Drained
	q := NewWriteQueue(0, testGeom(), 16, 15, collectDrains(&drained))
	for i := 0; i < 5; i++ {
		q.PushStore(memsys.VAddr(i * 128))
	}
	q.Flush()
	if q.Len() != 0 {
		t.Fatalf("Len after flush = %d", q.Len())
	}
	if len(drained) != 5 {
		t.Fatalf("flush drained %d, want 5", len(drained))
	}
	for i, d := range drained {
		if d.LineVA != memsys.VAddr(i*128) {
			t.Fatalf("flush order wrong at %d: %+v", i, d)
		}
		if d.Reason != DrainFlush {
			t.Fatalf("reason = %v, want flush", d.Reason)
		}
	}
	// Queue stays usable after flush.
	q.PushStore(0)
	if q.Len() != 1 {
		t.Fatal("queue unusable after flush")
	}
}

func TestWriteQueueAtomicsPassThrough(t *testing.T) {
	var drained []Drained
	q := NewWriteQueue(1, testGeom(), 8, 7, collectDrains(&drained))
	q.PushAtomic(64)
	q.PushAtomic(64) // same line: still no coalescing for atomics
	if q.Len() != 0 {
		t.Fatal("atomics must not occupy the queue")
	}
	if len(drained) != 2 {
		t.Fatalf("atomic drains = %d, want 2", len(drained))
	}
	for _, d := range drained {
		if !d.Atomic || d.Reason != DrainPassThrough {
			t.Fatalf("atomic drain = %+v", d)
		}
	}
	if q.Stats().HitRate() != 0 {
		t.Fatal("atomic-only stream must have 0%% hit rate (Section 7.4)")
	}
}

func TestWriteQueueHitRateIncludesAtomicsInDenominator(t *testing.T) {
	var drained []Drained
	q := NewWriteQueue(0, testGeom(), 8, 7, collectDrains(&drained))
	q.PushStore(0)
	q.PushStore(4) // hit
	q.PushAtomic(128)
	q.PushAtomic(128)
	s := q.Stats()
	if got, want := s.HitRate(), 0.25; got != want {
		t.Fatalf("HitRate = %v, want %v", got, want)
	}
}

func TestWriteQueueStreamingHasZeroHitRate(t *testing.T) {
	// A pure streaming writer (each line touched once, like Jacobi after SM
	// coalescing) must see 0% queue hit rate.
	var drained []Drained
	q := NewWriteQueue(0, testGeom(), 512, 511, collectDrains(&drained))
	for i := 0; i < 10000; i++ {
		q.PushStore(memsys.VAddr(i * 128))
	}
	if q.Stats().HitRate() != 0 {
		t.Fatalf("streaming hit rate = %v, want 0", q.Stats().HitRate())
	}
}

func TestWriteQueueTemporalLocalityCapturedByLargerQueue(t *testing.T) {
	// Revisit each line after touching `gap` other lines. A queue larger
	// than the gap captures the revisit; a smaller one does not. This is the
	// mechanism behind Figure 14.
	hitRate := func(capacity, gap int) float64 {
		q := NewWriteQueue(0, testGeom(), capacity, capacity-1, func(Drained) {})
		for rep := 0; rep < 20; rep++ {
			for i := 0; i < gap; i++ {
				q.PushStore(memsys.VAddr(i * 128))
			}
		}
		return q.Stats().HitRate()
	}
	small := hitRate(64, 256)
	large := hitRate(512, 256)
	if small != 0 {
		t.Fatalf("small queue hit rate = %v, want 0", small)
	}
	if large < 0.9 {
		t.Fatalf("large queue hit rate = %v, want >= 0.9", large)
	}
}

func TestWriteQueueOccupancyNeverExceedsWatermark(t *testing.T) {
	q := NewWriteQueue(0, testGeom(), 512, 511, func(Drained) {})
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 100000; i++ {
		q.PushStore(memsys.VAddr(rng.Intn(100000) * 128))
		if q.Len() >= 512 {
			t.Fatalf("occupancy %d reached capacity", q.Len())
		}
	}
}

// Property: conservation — every store is eventually accounted as exactly
// one of {hit, miss}, and every missed line either drains or is resident.
func TestWriteQueueConservationProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 30; trial++ {
		var drainedWrites int
		q := NewWriteQueue(0, testGeom(), 32, 31, func(d Drained) { drainedWrites += d.Writes })
		n := 1 + rng.Intn(5000)
		for i := 0; i < n; i++ {
			q.PushStore(memsys.VAddr(rng.Intn(200) * 128))
		}
		s := q.Stats()
		if s.Hits+s.Misses != uint64(n) {
			t.Fatalf("hits+misses = %d, want %d", s.Hits+s.Misses, n)
		}
		q.Flush()
		if drainedWrites != n {
			t.Fatalf("drained writes = %d, want %d (no store lost or duplicated)", drainedWrites, n)
		}
		if q.Len() != 0 {
			t.Fatal("residue after flush")
		}
	}
}

func TestWriteQueueConstructorPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewWriteQueue(0, testGeom(), 0, 1, func(Drained) {}) },
		func() { NewWriteQueue(0, testGeom(), 4, 0, func(Drained) {}) },
		func() { NewWriteQueue(0, testGeom(), 4, 5, func(Drained) {}) },
		func() { NewWriteQueue(0, testGeom(), 4, 3, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected constructor panic")
				}
			}()
			f()
		}()
	}
}

func BenchmarkWriteQueuePushStore(b *testing.B) {
	q := NewWriteQueue(0, testGeom(), 512, 511, func(Drained) {})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q.PushStore(memsys.VAddr((i % 4096) * 128))
	}
}
