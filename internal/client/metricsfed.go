package client

import (
	"context"
	"net/http"

	"gps/internal/service"
)

// NodeMetrics is one node's slice of the federated metrics view served by
// GET /v1/cluster/metrics: the node's identity, whether it was reachable
// when the view was assembled, and its full /v1/metrics snapshot (nil when
// the fetch failed — Error says why).
type NodeMetrics struct {
	Node    string           `json:"node"`
	URL     string           `json:"url,omitempty"`
	Alive   bool             `json:"alive"`
	Error   string           `json:"error,omitempty"`
	Metrics *service.Metrics `json:"metrics,omitempty"`
}

// ClusterMetricsResp is the body of GET /v1/cluster/metrics: every ring
// member's metrics snapshot, the answering node first. A single-node daemon
// serves a one-entry list, so gpsctl top works against any deployment.
type ClusterMetricsResp struct {
	Nodes []NodeMetrics `json:"nodes"`
}

// Metrics reads one node's /v1/metrics snapshot.
func (c *Client) Metrics(ctx context.Context) (service.Metrics, error) {
	var out service.Metrics
	err := c.call(ctx, http.MethodGet, "/v1/metrics", nil, &out)
	return out, err
}

// ClusterMetrics reads the federated metrics view: the target node fans the
// request out to its live peers and merges the answers.
func (c *Client) ClusterMetrics(ctx context.Context) (ClusterMetricsResp, error) {
	var out ClusterMetricsResp
	err := c.call(ctx, http.MethodGet, "/v1/cluster/metrics", nil, &out)
	return out, err
}
