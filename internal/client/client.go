// Package client is the typed Go client for the gpsd JSON REST API. It is
// the one HTTP surface everything speaks through: the gpsctl CLI, the
// cluster layer's node-to-node forwarding and peer fetches, and the API
// test suites. Errors are typed (*APIError carries the status code and the
// server's error body) and classified for internal/retry, so callers can
// wrap any call in a retry policy and have 429/5xx/transport failures
// re-run while 4xx client bugs fail fast.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"gps/internal/obs"
	"gps/internal/report"
	"gps/internal/retry"
	"gps/internal/service"
)

// APIError is a non-2xx response from the daemon: the HTTP status code plus
// the message from the server's JSON error envelope (or the raw body when
// the envelope didn't parse).
type APIError struct {
	StatusCode int
	Message    string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("gpsd: %d %s: %s", e.StatusCode, http.StatusText(e.StatusCode), e.Message)
}

// Retryable classifies the failure for internal/retry: queue saturation
// (429) and server-side errors (5xx) are worth re-running; 4xx client
// errors are deterministic and are not. 501 is excluded — an unimplemented
// endpoint stays unimplemented.
func (e *APIError) Retryable() bool {
	return e.StatusCode == http.StatusTooManyRequests ||
		(e.StatusCode >= 500 && e.StatusCode != http.StatusNotImplemented)
}

// Option customizes a Client.
type Option func(*Client)

// WithHTTPClient substitutes the transport (httptest servers, timeouts).
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) { c.http = hc }
}

// WithRetry sets the retry policy applied to every call. The zero policy
// (the default) never retries.
func WithRetry(p retry.Policy) Option {
	return func(c *Client) { c.policy = p }
}

// WithSleeper overrides the backoff sleep between retry attempts; tests
// make schedules instant.
func WithSleeper(s retry.Sleeper) Option {
	return func(c *Client) { c.sleep = s }
}

// WithHeader adds a header to every request the client sends; the cluster
// layer uses it for the forwarding-loop guard.
func WithHeader(key, value string) Option {
	return func(c *Client) { c.headers.Set(key, value) }
}

// Client talks to one gpsd node.
type Client struct {
	base    string
	http    *http.Client
	policy  retry.Policy
	sleep   retry.Sleeper
	headers http.Header
}

// New builds a client for the daemon at base (e.g. "http://127.0.0.1:8377";
// a trailing slash is tolerated).
func New(base string, opts ...Option) *Client {
	c := &Client{
		base:    strings.TrimRight(base, "/"),
		http:    &http.Client{Timeout: 2 * time.Minute},
		headers: http.Header{},
	}
	for _, opt := range opts {
		opt(c)
	}
	return c
}

// Base returns the node URL this client targets.
func (c *Client) Base() string { return c.base }

// SubmitResult is what a submit returned: the job snapshot plus what the
// server did with the spec (accepted | coalesced | cached).
type SubmitResult struct {
	service.Status
	Outcome string `json:"outcome"`
}

// Submit posts one job spec. Submission is idempotent on the server
// (content-addressed cache + single-flight coalescing), so retries are safe.
// Unless the client was configured with an explicit traceparent header, each
// submit mints a fresh trace ID and sends it as X-GPS-Traceparent, making
// the submitting client the root of the job's distributed trace.
func (c *Client) Submit(ctx context.Context, spec service.Spec) (SubmitResult, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return SubmitResult{}, fmt.Errorf("client: encode spec: %w", err)
	}
	var hdr http.Header
	if c.headers.Get(obs.TraceparentHeader) == "" {
		hdr = http.Header{obs.TraceparentHeader: {obs.TraceContext{TraceID: obs.NewTraceID()}.Traceparent()}}
	}
	code, resp, err := c.roundTrip(ctx, http.MethodPost, "/v1/jobs", body, hdr)
	if err != nil {
		return SubmitResult{}, err
	}
	if code < 200 || code >= 300 {
		return SubmitResult{}, apiError(code, resp)
	}
	var out SubmitResult
	if err := json.Unmarshal(resp, &out); err != nil {
		return SubmitResult{}, fmt.Errorf("client: POST /v1/jobs: decode response: %w", err)
	}
	return out, nil
}

// Status polls one job.
func (c *Client) Status(ctx context.Context, id string) (service.Status, error) {
	var out service.Status
	err := c.call(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &out)
	return out, err
}

// Result fetches the report of a done job. While the job is still queued or
// running it returns (nil, nil) — poll Status (or WaitTerminal) first.
func (c *Client) Result(ctx context.Context, id string) (*report.Report, error) {
	code, body, err := c.roundTrip(ctx, http.MethodGet, "/v1/jobs/"+id+"/result", nil, nil)
	if err != nil {
		return nil, err
	}
	switch code {
	case http.StatusOK:
		var rep report.Report
		if err := json.Unmarshal(body, &rep); err != nil {
			return nil, fmt.Errorf("client: decode result: %w", err)
		}
		return &rep, nil
	case http.StatusAccepted:
		return nil, nil // not terminal yet
	default:
		return nil, apiError(code, body)
	}
}

// Cancel requests cancellation of a queued or running job.
func (c *Client) Cancel(ctx context.Context, id string) (service.Status, error) {
	var out service.Status
	err := c.call(ctx, http.MethodDelete, "/v1/jobs/"+id, nil, &out)
	return out, err
}

// PeerHealth is one peer's liveness as reported by /v1/healthz.
type PeerHealth struct {
	ID    string `json:"id"`
	URL   string `json:"url"`
	Alive bool   `json:"alive"`
	// Fails counts consecutive failed probes (or transport errors); a peer
	// is declared dead only once it reaches the suspicion threshold.
	Fails int `json:"fails,omitempty"`
	// Suspect marks a peer still routed to but accumulating failures.
	Suspect bool `json:"suspect,omitempty"`
}

// Health is the /v1/healthz body. Cluster fields are empty on a
// single-node daemon.
type Health struct {
	Status        string        `json:"status"` // ok | draining
	NodeID        string        `json:"node_id"`
	Role          string        `json:"role"` // single | cluster
	UptimeSeconds float64       `json:"uptime_seconds"`
	Build         obsBuild      `json:"build"`
	Workers       int           `json:"workers"`
	BusyWorkers   int           `json:"busy_workers"`
	QueueDepth    int           `json:"queue_depth"`
	QueueCapacity int           `json:"queue_capacity"`
	Peers         []PeerHealth  `json:"peers,omitempty"`
	PeersAlive    int           `json:"peers_alive,omitempty"`
	PeersTotal    int           `json:"peers_total,omitempty"`
	Cluster       *ClusterStats `json:"cluster,omitempty"`
	Ring          []RingOwner   `json:"ring_sample,omitempty"`
}

// RingOwner is one sample point of the consistent-hash ring: which node a
// representative key routes to after liveness fallback. gpsctl cluster uses
// a handful of these to visualize ownership spread.
type RingOwner struct {
	Key   string `json:"key"`
	Owner string `json:"owner"`
}

type obsBuild struct {
	GoVersion string `json:"go_version"`
	Revision  string `json:"revision,omitempty"`
	VCSTime   string `json:"vcs_time,omitempty"`
	Modified  bool   `json:"modified,omitempty"`
}

// ClusterStats are the per-node cluster counters surfaced in healthz.
type ClusterStats struct {
	Forwards      uint64 `json:"forwards"`
	ForwardErrors uint64 `json:"forward_errors"`
	ProxiedReads  uint64 `json:"proxied_reads"`
	PeerFetches   uint64 `json:"peer_fetches"`
	StealsThief   uint64 `json:"steals_thief"`
	StealsVictim  uint64 `json:"steals_victim"`
	StealErrors   uint64 `json:"steal_errors"`

	// Self-healing counters (PRs with journal replication enabled).
	ReplicationTarget  string `json:"replication_target,omitempty"` // current ring successor
	ReplicatedRecords  uint64 `json:"replicated_records"`           // records acknowledged by a successor
	ReplicationErrors  uint64 `json:"replication_errors"`           // flushes that failed in transit
	ReplicationLag     uint64 `json:"replication_lag"`              // committed records not yet acknowledged
	ReplicaJobsHeld    uint64 `json:"replica_jobs_held"`            // peers' live jobs replicated onto this node
	ReplicatedIngested uint64 `json:"replicated_ingested"`          // records accepted from peers' streams
	Takeovers          uint64 `json:"takeovers"`                    // dead-peer takeover sweeps that promoted jobs
	TakeoverJobs       uint64 `json:"takeover_jobs"`                // jobs promoted across all takeovers
}

// Healthz reads the node's health. A draining node answers 503 with the
// same JSON body; that is returned as (health, *APIError) so callers can
// distinguish "down" from "draining" by inspecting both.
func (c *Client) Healthz(ctx context.Context) (Health, error) {
	code, body, err := c.roundTrip(ctx, http.MethodGet, "/v1/healthz", nil, nil)
	if err != nil {
		return Health{}, err
	}
	var h Health
	if jerr := json.Unmarshal(body, &h); jerr != nil {
		if code != http.StatusOK {
			return Health{}, apiError(code, body)
		}
		return Health{}, fmt.Errorf("client: decode healthz: %w", jerr)
	}
	if code != http.StatusOK {
		return h, apiError(code, body)
	}
	return h, nil
}

// WaitTerminal polls a job until it reaches a terminal state (done, failed,
// canceled), sleeping poll between probes (default 50ms). It returns the
// final snapshot; ctx bounds the wait.
func (c *Client) WaitTerminal(ctx context.Context, id string, poll time.Duration) (service.Status, error) {
	if poll <= 0 {
		poll = 50 * time.Millisecond
	}
	t := time.NewTicker(poll)
	defer t.Stop()
	for {
		st, err := c.Status(ctx, id)
		if err != nil {
			return st, err
		}
		if st.State.Terminal() {
			return st, nil
		}
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case <-t.C:
		}
	}
}

// call is the JSON round trip with retry and error typing: 2xx decodes into
// out, anything else becomes *APIError.
func (c *Client) call(ctx context.Context, method, path string, body []byte, out any) error {
	code, resp, err := c.roundTrip(ctx, method, path, body, nil)
	if err != nil {
		return err
	}
	if code < 200 || code >= 300 {
		return apiError(code, resp)
	}
	if out != nil {
		if err := json.Unmarshal(resp, out); err != nil {
			return fmt.Errorf("client: %s %s: decode response: %w", method, path, err)
		}
	}
	return nil
}

// roundTrip performs one request under the retry policy and returns the raw
// status code and body. Transport failures are wrapped retry.Transient;
// retryable HTTP codes (429/5xx) re-run under the policy, but the final
// response is always handed back to the caller for typing.
func (c *Client) roundTrip(ctx context.Context, method, path string, body []byte, hdr http.Header) (int, []byte, error) {
	var (
		code int
		resp []byte
	)
	_, err := retry.Do(ctx, c.policy, c.sleep, nil, func(int) error {
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
		if err != nil {
			return fmt.Errorf("client: %w", err)
		}
		for k, vs := range c.headers {
			for _, v := range vs {
				req.Header.Add(k, v)
			}
		}
		for k, vs := range hdr {
			for _, v := range vs {
				req.Header.Add(k, v)
			}
		}
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		r, err := c.http.Do(req)
		if err != nil {
			return retry.Transient(fmt.Errorf("client: %s %s: %w", method, path, err))
		}
		defer r.Body.Close()
		data, err := io.ReadAll(r.Body)
		if err != nil {
			return retry.Transient(fmt.Errorf("client: %s %s: read body: %w", method, path, err))
		}
		code, resp = r.StatusCode, data
		if e := apiError(code, data); e != nil && retry.Retryable(e) {
			return e // re-run under the policy; last response kept above
		}
		return nil
	})
	if err != nil {
		// A retryable *APIError that exhausted its attempts still carries a
		// usable response; surface it as (code, body) so callers type it.
		if ae, ok := err.(*APIError); ok {
			return ae.StatusCode, resp, nil
		}
		return 0, nil, err
	}
	return code, resp, nil
}

// Do performs a raw request against the node and returns the status code
// and body verbatim. The cluster layer uses it to proxy requests between
// nodes without re-encoding (responses stay byte-identical).
func (c *Client) Do(ctx context.Context, method, path string, body []byte, hdr http.Header) (int, []byte, error) {
	return c.roundTrip(ctx, method, path, body, hdr)
}

// apiError builds the typed error for a non-2xx response; nil otherwise.
func apiError(code int, body []byte) *APIError {
	if code >= 200 && code < 300 {
		return nil
	}
	var envelope struct {
		Error string `json:"error"`
	}
	msg := strings.TrimSpace(string(body))
	if err := json.Unmarshal(body, &envelope); err == nil && envelope.Error != "" {
		msg = envelope.Error
	}
	return &APIError{StatusCode: code, Message: msg}
}
