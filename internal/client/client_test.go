package client

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"gps/internal/retry"
	"gps/internal/service"
)

// instant is a Sleeper that never actually sleeps, keeping retry schedules
// out of test wall-clock.
func instant(ctx context.Context, d time.Duration) error { return ctx.Err() }

func TestAPIErrorRetryable(t *testing.T) {
	cases := map[int]bool{
		http.StatusBadRequest:          false,
		http.StatusNotFound:            false,
		http.StatusConflict:            false,
		http.StatusTooManyRequests:     true,
		http.StatusInternalServerError: true,
		http.StatusBadGateway:          true,
		http.StatusServiceUnavailable:  true,
		http.StatusNotImplemented:      false, // unimplemented stays unimplemented
	}
	for code, want := range cases {
		e := &APIError{StatusCode: code}
		if e.Retryable() != want {
			t.Errorf("Retryable(%d) = %v, want %v", code, e.Retryable(), want)
		}
		if !retry.Retryable(e) == want {
			t.Errorf("retry.Retryable(%d) = %v, want %v", code, retry.Retryable(e), want)
		}
	}
}

// TestRetryOn5xxThenSuccess checks the full loop: two 503s, then a 200,
// under a 3-attempt policy — the caller sees only the success.
func TestRetryOn5xxThenSuccess(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) <= 2 {
			w.WriteHeader(http.StatusServiceUnavailable)
			w.Write([]byte(`{"error":"draining"}`)) //nolint:errcheck
			return
		}
		w.Write([]byte(`{"id":"j-000001","state":"done"}`)) //nolint:errcheck
	}))
	defer ts.Close()

	c := New(ts.URL, WithRetry(retry.Policy{MaxAttempts: 3}), WithSleeper(instant))
	st, err := c.Status(context.Background(), "j-000001")
	if err != nil {
		t.Fatalf("Status after retries: %v", err)
	}
	if st.State != service.StateDone || hits.Load() != 3 {
		t.Fatalf("state %s after %d hits, want done after 3", st.State, hits.Load())
	}
}

// TestRetryExhaustedSurfacesTypedError checks that a persistent 503 comes
// back as *APIError with the server's message after the policy gives up.
func TestRetryExhaustedSurfacesTypedError(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write([]byte(`{"error":"still draining"}`)) //nolint:errcheck
	}))
	defer ts.Close()

	c := New(ts.URL, WithRetry(retry.Policy{MaxAttempts: 3}), WithSleeper(instant))
	_, err := c.Status(context.Background(), "j-000001")
	var ae *APIError
	if !errors.As(err, &ae) || ae.StatusCode != http.StatusServiceUnavailable || ae.Message != "still draining" {
		t.Fatalf("err = %v, want typed 503 'still draining'", err)
	}
	if hits.Load() != 3 {
		t.Fatalf("server hit %d times, want 3", hits.Load())
	}
}

// TestNoRetryOnClientError checks that deterministic 4xx failures do not
// re-run and carry the server's error message.
func TestNoRetryOnClientError(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.WriteHeader(http.StatusBadRequest)
		w.Write([]byte(`{"error":"bad spec"}`)) //nolint:errcheck
	}))
	defer ts.Close()

	c := New(ts.URL, WithRetry(retry.Policy{MaxAttempts: 5}), WithSleeper(instant))
	_, err := c.Submit(context.Background(), service.Spec{Type: "figure"})
	var ae *APIError
	if !errors.As(err, &ae) || ae.StatusCode != http.StatusBadRequest || ae.Message != "bad spec" {
		t.Fatalf("err = %v, want typed 400 'bad spec'", err)
	}
	if hits.Load() != 1 {
		t.Fatalf("400 re-ran %d times, want exactly 1", hits.Load())
	}
}

// TestTransportErrorIsTransient checks that a connection failure is wrapped
// for retry and does not masquerade as an API error.
func TestTransportErrorIsTransient(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	ts.Close() // nothing listening anymore

	c := New(ts.URL, WithSleeper(instant))
	_, err := c.Status(context.Background(), "j-000001")
	if err == nil {
		t.Fatal("no error from a closed server")
	}
	var ae *APIError
	if errors.As(err, &ae) {
		t.Fatalf("transport failure typed as APIError: %v", err)
	}
	if !retry.Retryable(err) {
		t.Fatalf("transport failure not retryable: %v", err)
	}
}

// TestResultNotReady checks the 202 contract: (nil, nil) while the job is
// still in flight.
func TestResultNotReady(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusAccepted)
		w.Write([]byte(`{"id":"j-000001","state":"running"}`)) //nolint:errcheck
	}))
	defer ts.Close()

	rep, err := New(ts.URL).Result(context.Background(), "j-000001")
	if err != nil || rep != nil {
		t.Fatalf("Result on 202 = %v, %v; want nil, nil", rep, err)
	}
}

// TestHealthzDraining checks the dual return: a 503 healthz still decodes
// the body so callers can tell draining from down.
func TestHealthzDraining(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write([]byte(`{"status":"draining","node_id":"n1","role":"cluster"}`)) //nolint:errcheck
	}))
	defer ts.Close()

	h, err := New(ts.URL).Healthz(context.Background())
	var ae *APIError
	if !errors.As(err, &ae) || ae.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("err = %v, want typed 503", err)
	}
	if h.Status != "draining" || h.NodeID != "n1" {
		t.Fatalf("health body = %+v, want draining/n1", h)
	}
}

// TestWithHeaderOnEveryRequest checks the forwarding-loop guard mechanism:
// a configured header rides on every call.
func TestWithHeaderOnEveryRequest(t *testing.T) {
	var got atomic.Value
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		got.Store(r.Header.Get("X-GPS-Forwarded-From"))
		w.Write([]byte(`{}`)) //nolint:errcheck
	}))
	defer ts.Close()

	c := New(ts.URL, WithHeader("X-GPS-Forwarded-From", "n1"))
	if _, err := c.Status(context.Background(), "x"); err != nil {
		t.Fatal(err)
	}
	if got.Load() != "n1" {
		t.Fatalf("header = %q, want n1", got.Load())
	}
}
