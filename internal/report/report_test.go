package report

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"gps/internal/experiments"
)

// The cache block is the only place a run's storage behavior surfaces in the
// JSON report: pin the columnar/spill counters into the schema so a rename
// shows up as a test failure, not a silently vanished field.
func TestReportCarriesSpillCounters(t *testing.T) {
	r := Report{
		ParallelWorkers: 1,
		Cache: experiments.CacheStats{
			TraceBuilds:       3,
			TraceBytes:        1 << 20,
			TraceLogicalBytes: 8 << 20,
			TraceSpills:       2,
			TraceSpillBytes:   1 << 19,
			SpillBlockReads:   40,
			SpillReadBytes:    1 << 18,
		},
	}
	var buf bytes.Buffer
	if err := r.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{
		"TraceBytes", "TraceLogicalBytes", "TraceSpills",
		"TraceSpillBytes", "SpillBlockReads", "SpillReadBytes",
	} {
		if !strings.Contains(buf.String(), `"`+field+`"`) {
			t.Fatalf("report JSON lost the %s counter:\n%s", field, buf.String())
		}
	}
	var back Report
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Cache != r.Cache {
		t.Fatalf("cache stats did not round-trip: %+v", back.Cache)
	}
}
