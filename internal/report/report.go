// Package report defines the machine-readable experiment report schema
// shared by the gpsbench CLI (-json) and the gpsd service result endpoint,
// so both emit byte-compatible JSON for the same run.
package report

import (
	"encoding/json"
	"io"
	"os"

	"gps/internal/experiments"
)

// Section records the wall clock one figure/table/study consumed, plus the
// single slowest cell inside it — the tail that bounds the section's latency
// at any worker count and the target the replay sharding attacks.
type Section struct {
	Name           string  `json:"name"`
	Seconds        float64 `json:"seconds"`
	MaxCellSeconds float64 `json:"max_cell_seconds,omitempty"`
	SlowestCell    string  `json:"slowest_cell,omitempty"`
	// Cell-duration distribution (exact order statistics over every
	// completed cell): how heavy the section's tail is relative to its
	// typical cell. The perf regression gate reads these.
	CellCount      int     `json:"cell_count,omitempty"`
	P50CellSeconds float64 `json:"p50_cell_seconds,omitempty"`
	P99CellSeconds float64 `json:"p99_cell_seconds,omitempty"`
}

// Table is one rendered table or figure, plus any derived claim lines.
type Table struct {
	Name string `json:"name"`
	Text string `json:"text"`
}

// Report is the machine-readable summary of an experiment run: the Section
// 7.1 headline claims when Figure 8 ran, per-section wall clock, rendered
// tables, and the memoization counters of the runner that executed it.
type Report struct {
	// Section 7.1 headline claims, populated when Figure 8 runs.
	GPSMeanX       float64 `json:"gps_mean_x,omitempty"`
	OpportunityPct float64 `json:"opportunity_pct,omitempty"`
	VsNextBestX    float64 `json:"vs_next_best_x,omitempty"`

	ParallelWorkers int                    `json:"parallel_workers"`
	Shards          int                    `json:"shards,omitempty"`
	TotalSeconds    float64                `json:"total_seconds"`
	Sections        []Section              `json:"sections"`
	Tables          []Table                `json:"tables,omitempty"`
	Cache           experiments.CacheStats `json:"cache"`
}

// AddTable appends a rendered table under the given section name.
func (r *Report) AddTable(name, text string) {
	r.Tables = append(r.Tables, Table{Name: name, Text: text})
}

// Load reads and parses a report file written by Encode.
func Load(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, err
	}
	return &r, nil
}

// Encode writes the report as indented JSON followed by a newline — the
// exact byte format of gpsbench -json and the gpsd result endpoint.
func (r *Report) Encode(w io.Writer) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}
