package retry

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"
)

// TestBackoffSchedule pins the deterministic (jitter-free) schedule: growth
// by the multiplier from the base, capped at the max, zero outside the
// valid range. No wall clock is involved — Delay is pure.
func TestBackoffSchedule(t *testing.T) {
	exp := Policy{MaxAttempts: 6, BaseDelay: 100 * time.Millisecond, MaxDelay: 1 * time.Second, Multiplier: 2}
	tripled := Policy{MaxAttempts: 4, BaseDelay: 10 * time.Millisecond, MaxDelay: 0, Multiplier: 3}
	defaulted := Policy{MaxAttempts: 3, BaseDelay: 50 * time.Millisecond} // Multiplier defaults to 2
	for _, tc := range []struct {
		name    string
		p       Policy
		attempt int
		want    time.Duration
	}{
		{"first failure", exp, 1, 100 * time.Millisecond},
		{"second doubles", exp, 2, 200 * time.Millisecond},
		{"third doubles again", exp, 3, 400 * time.Millisecond},
		{"growth hits cap", exp, 5, 1 * time.Second},
		{"stays at cap", exp, 6, 1 * time.Second},
		{"uncapped growth", tripled, 4, 270 * time.Millisecond},
		{"default multiplier", defaulted, 2, 100 * time.Millisecond},
		{"attempt zero", exp, 0, 0},
		{"no base no delay", Policy{MaxAttempts: 3}, 1, 0},
	} {
		if got := tc.p.Delay(tc.attempt, nil); got != tc.want {
			t.Errorf("%s: Delay(%d) = %v, want %v", tc.name, tc.attempt, got, tc.want)
		}
	}
}

// TestBackoffJitterRange samples a seeded source: every jittered delay must
// land in [d*(1-j), d*(1+j)] and not all samples may collapse to one value.
func TestBackoffJitterRange(t *testing.T) {
	p := Policy{MaxAttempts: 2, BaseDelay: 100 * time.Millisecond, Jitter: 0.25}
	rnd := rand.New(rand.NewSource(7))
	lo, hi := 75*time.Millisecond, 125*time.Millisecond
	seen := map[time.Duration]bool{}
	for i := 0; i < 200; i++ {
		d := p.Delay(1, rnd)
		if d < lo || d > hi {
			t.Fatalf("sample %d: jittered delay %v outside [%v, %v]", i, d, lo, hi)
		}
		seen[d] = true
	}
	if len(seen) < 10 {
		t.Errorf("jitter produced only %d distinct delays in 200 draws", len(seen))
	}
	// Same seed, same schedule: the jitter stream is reproducible.
	a := p.Delay(1, rand.New(rand.NewSource(42)))
	b := p.Delay(1, rand.New(rand.NewSource(42)))
	if a != b {
		t.Errorf("same seed gave different delays: %v vs %v", a, b)
	}
}

// TestSleepCancellation: a canceled context cuts a long sleep short with
// the context's error, well before the nominal duration.
func TestSleepCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	err := Sleep(ctx, 30*time.Second)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Sleep under cancel: %v, want context.Canceled", err)
	}
	if since := time.Since(start); since > 5*time.Second {
		t.Fatalf("Sleep took %v after cancel", since)
	}
}

// TestDoRetriesOnlyTransient drives Do with an injected sleeper (no clock
// dependence): transient errors retry through the schedule, deterministic
// errors stop at the first attempt, success stops immediately.
func TestDoRetriesOnlyTransient(t *testing.T) {
	p := Policy{MaxAttempts: 4, BaseDelay: 10 * time.Millisecond, Multiplier: 2}
	var slept []time.Duration
	sleeper := func(ctx context.Context, d time.Duration) error {
		slept = append(slept, d)
		return ctx.Err()
	}

	// Transient failures exhaust the attempt budget.
	slept = nil
	calls := 0
	attempts, err := Do(context.Background(), p, sleeper, nil, func(int) error {
		calls++
		return Transient(fmt.Errorf("flaky"))
	})
	if attempts != 4 || calls != 4 || err == nil {
		t.Fatalf("transient: attempts=%d calls=%d err=%v, want 4/4/non-nil", attempts, calls, err)
	}
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 40 * time.Millisecond}
	if len(slept) != len(want) {
		t.Fatalf("sleeps = %v, want %v", slept, want)
	}
	for i := range want {
		if slept[i] != want[i] {
			t.Fatalf("sleep %d = %v, want %v", i, slept[i], want[i])
		}
	}

	// Deterministic failures never retry.
	calls = 0
	attempts, err = Do(context.Background(), p, sleeper, nil, func(int) error {
		calls++
		return fmt.Errorf("deterministic")
	})
	if attempts != 1 || calls != 1 || err == nil {
		t.Fatalf("deterministic: attempts=%d calls=%d err=%v, want 1/1/non-nil", attempts, calls, err)
	}

	// Success on a later attempt returns nil.
	calls = 0
	attempts, err = Do(context.Background(), p, sleeper, nil, func(int) error {
		calls++
		if calls < 3 {
			return Transient(fmt.Errorf("flaky"))
		}
		return nil
	})
	if attempts != 3 || err != nil {
		t.Fatalf("recovers: attempts=%d err=%v, want 3/nil", attempts, err)
	}
}

// TestDoStopsOnCanceledContext: when the backoff sleep is cut short, Do
// returns the work's own error instead of looping on a dead context.
func TestDoStopsOnCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	calls := 0
	attempts, err := Do(ctx, Policy{MaxAttempts: 5, BaseDelay: time.Millisecond}, nil, nil, func(int) error {
		calls++
		return Transient(fmt.Errorf("flaky"))
	})
	if attempts != 1 || calls != 1 {
		t.Fatalf("canceled ctx: attempts=%d calls=%d, want 1/1", attempts, calls)
	}
	if err == nil || !Retryable(err) {
		t.Fatalf("canceled ctx: err=%v, want the transient work error", err)
	}
}

func TestRetryableClassification(t *testing.T) {
	if Retryable(nil) {
		t.Error("nil is not retryable")
	}
	if Retryable(errors.New("plain")) {
		t.Error("plain errors are not retryable")
	}
	if Retryable(context.Canceled) {
		t.Error("cancellation is not retryable")
	}
	if !Retryable(Transient(errors.New("io"))) {
		t.Error("Transient must be retryable")
	}
	// The marker survives wrapping.
	if !Retryable(fmt.Errorf("cell 3: %w", Transient(errors.New("io")))) {
		t.Error("wrapped transient must stay retryable")
	}
}
