// Package retry implements the service's retry policy: capped exponential
// backoff with proportional jitter, a context-aware sleeper so cancellation
// cuts a backoff short, and the Retryable classification that separates
// transient faults (worth re-running) from deterministic failures (a
// simulation that failed once fails identically forever).
package retry

import (
	"context"
	"errors"
	"math/rand"
	"time"
)

// Policy schedules attempts. The zero value never retries.
type Policy struct {
	// MaxAttempts is the total number of tries including the first;
	// values <= 1 disable retrying.
	MaxAttempts int
	// BaseDelay is the backoff before the second attempt; each further
	// attempt multiplies it by Multiplier, capped at MaxDelay.
	BaseDelay time.Duration
	// MaxDelay caps the backoff; 0 means no cap.
	MaxDelay time.Duration
	// Multiplier grows the delay between attempts; values < 1 default to 2.
	Multiplier float64
	// Jitter widens each delay to [d*(1-Jitter), d*(1+Jitter)], de-phasing
	// retry storms. Must be in [0, 1]; 0 is fully deterministic.
	Jitter float64
}

// Delay returns the backoff after the attempt-th failure (1-based). rnd
// draws the jitter; nil uses the shared math/rand source. Attempts at or
// beyond MaxAttempts return 0, as does a non-positive BaseDelay.
func (p Policy) Delay(attempt int, rnd *rand.Rand) time.Duration {
	if attempt < 1 || p.BaseDelay <= 0 {
		return 0
	}
	mult := p.Multiplier
	if mult < 1 {
		mult = 2
	}
	d := float64(p.BaseDelay)
	for i := 1; i < attempt; i++ {
		d *= mult
		if p.MaxDelay > 0 && d >= float64(p.MaxDelay) {
			d = float64(p.MaxDelay)
			break
		}
	}
	if p.MaxDelay > 0 && d > float64(p.MaxDelay) {
		d = float64(p.MaxDelay)
	}
	if p.Jitter > 0 {
		f := rand.Float64
		if rnd != nil {
			f = rnd.Float64
		}
		d *= 1 + p.Jitter*(2*f()-1)
	}
	return time.Duration(d)
}

// Sleeper pauses for d or until ctx is done, whichever comes first,
// returning ctx's error when cut short. Tests inject fakes to make backoff
// schedules instant and clock-independent.
type Sleeper func(ctx context.Context, d time.Duration) error

// Sleep is the production Sleeper.
func Sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Retryable reports whether err is worth re-running: some error in its
// Unwrap chain implements `Retryable() bool` and answers true. Injected
// faults (internal/faultinject) and explicitly transient errors qualify;
// context cancellation, validation failures and deterministic simulation
// errors do not.
func Retryable(err error) bool {
	for err != nil {
		if r, ok := err.(interface{ Retryable() bool }); ok {
			return r.Retryable()
		}
		err = errors.Unwrap(err)
	}
	return false
}

// Transient wraps err so Retryable answers true, for error sources that
// know their failures are worth retrying but don't implement the marker.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return transientError{err}
}

type transientError struct{ error }

func (t transientError) Retryable() bool { return true }
func (t transientError) Unwrap() error   { return t.error }

// Do runs fn under the policy: up to MaxAttempts tries, backing off between
// failures that classify as Retryable. It returns the number of attempts
// made and the last error (nil on success). A nil sleep uses Sleep; a nil
// rnd leaves jitter on the shared source. Context cancellation stops the
// loop immediately — the context's error is returned if fn's own error was
// already consumed by a backoff cut short.
func Do(ctx context.Context, p Policy, sleep Sleeper, rnd *rand.Rand, fn func(attempt int) error) (int, error) {
	if sleep == nil {
		sleep = Sleep
	}
	max := p.MaxAttempts
	if max < 1 {
		max = 1
	}
	var err error
	for attempt := 1; ; attempt++ {
		err = fn(attempt)
		if err == nil || attempt >= max || !Retryable(err) {
			return attempt, err
		}
		if serr := sleep(ctx, p.Delay(attempt, rnd)); serr != nil {
			return attempt, err // keep fn's error; ctx's cause is in it or moot
		}
	}
}
