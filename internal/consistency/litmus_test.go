package consistency

import "testing"

var (
	data = Addr{Line: 0, Off: 0}
	flag = Addr{Line: 1, Off: 0}
	x    = Addr{Line: 0, Off: 0}
	y    = Addr{Line: 2, Off: 0}
)

// Message passing: the foundational pattern for GPS correctness. GPU0 writes
// data weakly, fences at sys scope, then raises a sys-scoped flag. If GPU1
// observes the flag, it must observe the data. The fence forces the write
// queue to flush and deliver, so the forbidden outcome (flag=1, data=0) must
// be unobservable.
func TestLitmusMessagePassing(t *testing.T) {
	ex := NewExplorer(2, []Thread{
		{GPU: 0, Ops: []Op{
			{Kind: OpStoreWeak, Addr: data, Val: 1},
			{Kind: OpFenceSys},
			{Kind: OpStoreSys, Addr: flag, Val: 1},
		}},
		{GPU: 1, Ops: []Op{
			{Kind: OpLoad, Addr: flag},
			{Kind: OpLoad, Addr: data},
		}},
	})
	outcomes := ex.Explore()
	if len(outcomes) == 0 {
		t.Fatal("no outcomes explored")
	}
	if Contains(outcomes, func(l map[string]int) bool {
		return l["t1:r0"] == 1 && l["t1:r1"] == 0
	}) {
		t.Fatal("memory model violation: flag observed without data (MP)")
	}
	// The success path must be reachable.
	if !Contains(outcomes, func(l map[string]int) bool {
		return l["t1:r0"] == 1 && l["t1:r1"] == 1
	}) {
		t.Fatal("MP success outcome unreachable")
	}
	// Without synchronization having occurred yet, stale reads are allowed.
	if !Contains(outcomes, func(l map[string]int) bool {
		return l["t1:r0"] == 0
	}) {
		t.Fatal("early read of unset flag should be possible")
	}
}

// Coalescing reorders stores across cache lines: a later store that merges
// into an older resident queue entry drains before an intervening store to
// a different line. Section 3.3: "Stores need not be consecutive to be
// coalesced, as the GPU memory model allows store-store reordering as long
// as there is no synchronization or same-address relationship between the
// stores." GPU0 touches the flag line, writes data, then writes the flag;
// the flag write coalesces into the old entry and can overtake the data
// write, so a consumer may legally see flag=1 with data=0.
func TestLitmusWeakStoresMayReorder(t *testing.T) {
	flagSibling := Addr{Line: flag.Line, Off: 1}
	ex := NewExplorer(2, []Thread{
		{GPU: 0, Ops: []Op{
			{Kind: OpStoreWeak, Addr: flagSibling, Val: 9}, // flag line becomes resident
			{Kind: OpStoreWeak, Addr: data, Val: 1},
			{Kind: OpStoreWeak, Addr: flag, Val: 1}, // coalesces ahead of data
		}},
		{GPU: 1, Ops: []Op{
			{Kind: OpLoad, Addr: flag},
			{Kind: OpLoad, Addr: data},
		}},
	})
	outcomes := ex.Explore()
	// flag=1, data=0 is allowed for unsynchronized weak stores: the paper
	// relies on this to coalesce and delay stores freely.
	if !Contains(outcomes, func(l map[string]int) bool {
		return l["t1:r0"] == 1 && l["t1:r1"] == 0
	}) {
		t.Fatal("relaxed outcome should be observable without a fence")
	}
	// And the in-order observation remains reachable too.
	if !Contains(outcomes, func(l map[string]int) bool {
		return l["t1:r0"] == 1 && l["t1:r1"] == 1
	}) {
		t.Fatal("in-order outcome should also be reachable")
	}
}

// Read-your-own-writes: a GPU's loads must observe its own prior stores
// immediately (the W3 local-replica update path in Figure 7), even though
// remote propagation is delayed.
func TestLitmusReadYourOwnWrites(t *testing.T) {
	ex := NewExplorer(2, []Thread{
		{GPU: 0, Ops: []Op{
			{Kind: OpStoreWeak, Addr: x, Val: 7},
			{Kind: OpLoad, Addr: x},
		}},
	})
	outcomes := ex.Explore()
	if Contains(outcomes, func(l map[string]int) bool {
		return l["t0:r0"] != 7
	}) {
		t.Fatal("a GPU failed to observe its own store")
	}
}

// Coalescing must preserve same-address ordering per writer: GPU1 may see
// x=1 then x=2 or skip straight to 2 (coalesced), but never 2 then 1.
func TestLitmusCoalescingPreservesSameAddressOrder(t *testing.T) {
	ex := NewExplorer(2, []Thread{
		{GPU: 0, Ops: []Op{
			{Kind: OpStoreWeak, Addr: x, Val: 1},
			{Kind: OpStoreWeak, Addr: x, Val: 2},
		}},
		{GPU: 1, Ops: []Op{
			{Kind: OpLoad, Addr: x},
			{Kind: OpLoad, Addr: x},
		}},
	})
	outcomes := ex.Explore()
	if Contains(outcomes, func(l map[string]int) bool {
		return l["t1:r0"] == 2 && l["t1:r1"] == 1
	}) {
		t.Fatal("same-address stores from one GPU observed out of order")
	}
	// Coalescing may legally hide the intermediate value.
	if !Contains(outcomes, func(l map[string]int) bool {
		return l["t1:r0"] == 0 && l["t1:r1"] == 2
	}) {
		t.Fatal("fully coalesced outcome should be reachable")
	}
}

// Same-line different-offset stores coalesce into one block; the consumer
// must never observe the second store without the first once both are
// coalesced into the same drained block... but partial observation is fine
// when they drain separately. Verify no "torn" impossible states: seeing
// off1's value requires it was actually written.
func TestLitmusCoalescedBlockDeliversBothWords(t *testing.T) {
	a0 := Addr{Line: 5, Off: 0}
	a1 := Addr{Line: 5, Off: 1}
	ex := NewExplorer(2, []Thread{
		{GPU: 0, Ops: []Op{
			{Kind: OpStoreWeak, Addr: a0, Val: 3},
			{Kind: OpStoreWeak, Addr: a1, Val: 4},
			{Kind: OpFenceSys},
			{Kind: OpStoreSys, Addr: flag, Val: 1},
		}},
		{GPU: 1, Ops: []Op{
			{Kind: OpLoad, Addr: flag},
			{Kind: OpLoad, Addr: a0},
			{Kind: OpLoad, Addr: a1},
		}},
	})
	outcomes := ex.Explore()
	if Contains(outcomes, func(l map[string]int) bool {
		return l["t1:r0"] == 1 && (l["t1:r1"] != 3 || l["t1:r2"] != 4)
	}) {
		t.Fatal("fence+flag published before coalesced block delivered")
	}
}

// Racy weak stores from different GPUs to the same address, without
// synchronization, may be observed in different orders by different
// consumers (no inter-GPU store atomicity). The paper argues this is
// permitted: such programs are racy under the model.
func TestLitmusRacyStoresNeedNoGlobalOrder(t *testing.T) {
	ex := NewExplorer(4, []Thread{
		{GPU: 0, Ops: []Op{{Kind: OpStoreWeak, Addr: x, Val: 1}}},
		{GPU: 1, Ops: []Op{{Kind: OpStoreWeak, Addr: x, Val: 2}}},
		{GPU: 2, Ops: []Op{{Kind: OpLoad, Addr: x}, {Kind: OpLoad, Addr: x}}},
		{GPU: 3, Ops: []Op{{Kind: OpLoad, Addr: x}, {Kind: OpLoad, Addr: x}}},
	})
	outcomes := ex.Explore()
	// GPU2 sees 1 then 2 while GPU3 sees 2 then 1: allowed divergence.
	if !Contains(outcomes, func(l map[string]int) bool {
		return l["t2:r0"] == 1 && l["t2:r1"] == 2 && l["t3:r0"] == 2 && l["t3:r1"] == 1
	}) {
		t.Fatal("divergent observation of racy stores should be reachable (relaxed model)")
	}
}

// Store buffering (Dekker): both GPUs store then load the other's variable.
// Under the relaxed model without fences, both may read 0.
func TestLitmusStoreBuffering(t *testing.T) {
	ex := NewExplorer(2, []Thread{
		{GPU: 0, Ops: []Op{{Kind: OpStoreWeak, Addr: x, Val: 1}, {Kind: OpLoad, Addr: y}}},
		{GPU: 1, Ops: []Op{{Kind: OpStoreWeak, Addr: y, Val: 1}, {Kind: OpLoad, Addr: x}}},
	})
	outcomes := ex.Explore()
	if !Contains(outcomes, func(l map[string]int) bool {
		return l["t0:r0"] == 0 && l["t1:r0"] == 0
	}) {
		t.Fatal("SB relaxed outcome (0,0) should be reachable")
	}
}

// Sys-scoped stores are globally coherent: two sys stores to the same
// address must be observed in a single total order by all readers. With
// one writer, a reader can never see the newer value then the older one.
func TestLitmusSysStoresCoherent(t *testing.T) {
	ex := NewExplorer(2, []Thread{
		{GPU: 0, Ops: []Op{
			{Kind: OpStoreSys, Addr: x, Val: 1},
			{Kind: OpStoreSys, Addr: x, Val: 2},
		}},
		{GPU: 1, Ops: []Op{{Kind: OpLoad, Addr: x}, {Kind: OpLoad, Addr: x}}},
	})
	outcomes := ex.Explore()
	if Contains(outcomes, func(l map[string]int) bool {
		return l["t1:r0"] == 2 && l["t1:r1"] == 1
	}) {
		t.Fatal("sys-scoped stores observed out of order")
	}
}

func TestExplorerPanicsOnBadGPU(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewExplorer(2, []Thread{{GPU: 5}})
}

// IRIW (independent reads of independent writes): without multi-copy
// atomicity, two readers may observe two independent writers' stores in
// opposite orders. The GPS replication fabric provides no multi-copy
// atomicity for weak stores, and the NVIDIA model does not require it
// without sys-scoped synchronization — so the relaxed outcome must be
// reachable.
func TestLitmusIRIW(t *testing.T) {
	ex := NewExplorer(4, []Thread{
		{GPU: 0, Ops: []Op{{Kind: OpStoreWeak, Addr: x, Val: 1}}},
		{GPU: 1, Ops: []Op{{Kind: OpStoreWeak, Addr: y, Val: 1}}},
		{GPU: 2, Ops: []Op{{Kind: OpLoad, Addr: x}, {Kind: OpLoad, Addr: y}}},
		{GPU: 3, Ops: []Op{{Kind: OpLoad, Addr: y}, {Kind: OpLoad, Addr: x}}},
	})
	outcomes := ex.Explore()
	// Reader 2 sees x then not-yet y; reader 3 sees y then not-yet x.
	if !Contains(outcomes, func(l map[string]int) bool {
		return l["t2:r0"] == 1 && l["t2:r1"] == 0 && l["t3:r0"] == 1 && l["t3:r1"] == 0
	}) {
		t.Fatal("IRIW relaxed outcome should be reachable (no multi-copy atomicity)")
	}
}

// WRC (write-to-read causality) with sys-scoped synchronization restores
// causality: if T1 observes T0's data and then publishes a sys flag, T2
// observing that flag must also observe T0's data... in GPS, T1's sys
// store acts only on its own prior writes. Causality for T0's write is
// NOT implied — data must be republished or synchronized transitively.
// The test documents this relaxed (but model-legal) behavior.
func TestLitmusWRCWithoutTransitivity(t *testing.T) {
	ex := NewExplorer(3, []Thread{
		{GPU: 0, Ops: []Op{{Kind: OpStoreWeak, Addr: data, Val: 1}}},
		{GPU: 1, Ops: []Op{
			{Kind: OpLoad, Addr: data},
			{Kind: OpFenceSys},
			{Kind: OpStoreSys, Addr: flag, Val: 1},
		}},
		{GPU: 2, Ops: []Op{
			{Kind: OpLoad, Addr: flag},
			{Kind: OpLoad, Addr: data},
		}},
	})
	outcomes := ex.Explore()
	// The causal chain t1 saw data=1, t2 saw flag=1, yet t2 reads data=0 is
	// observable: GPU1's fence drains GPU1's queue, not GPU0's.
	if !Contains(outcomes, func(l map[string]int) bool {
		return l["t1:r0"] == 1 && l["t2:r0"] == 1 && l["t2:r1"] == 0
	}) {
		t.Fatal("non-transitive WRC outcome should be reachable under per-GPU fences")
	}
}

// Weak atomics never coalesce: two atomics to the same line occupy distinct
// queue entries, so a consumer can observe the intermediate RMW value even
// after later atomics were issued — unlike coalesced weak stores.
func TestLitmusAtomicsDoNotCoalesce(t *testing.T) {
	ex := NewExplorer(2, []Thread{
		{GPU: 0, Ops: []Op{
			{Kind: OpAtomicAdd, Addr: x, Val: 1},
			{Kind: OpAtomicAdd, Addr: x, Val: 1},
		}},
		{GPU: 1, Ops: []Op{{Kind: OpLoad, Addr: x}, {Kind: OpLoad, Addr: x}}},
	})
	outcomes := ex.Explore()
	// Intermediate value observable.
	if !Contains(outcomes, func(l map[string]int) bool {
		return l["t1:r0"] == 1 && l["t1:r1"] == 2
	}) {
		t.Fatal("intermediate atomic value should be deliverable")
	}
	// Same-address order preserved: never 2 then 1.
	if Contains(outcomes, func(l map[string]int) bool {
		return l["t1:r0"] == 2 && l["t1:r1"] == 1
	}) {
		t.Fatal("atomic deliveries observed out of order")
	}
	// Single-GPU accumulation is exact.
	if Contains(outcomes, func(l map[string]int) bool {
		return l["t1:r0"] > 2 || l["t1:r1"] > 2
	}) {
		t.Fatal("impossible value observed")
	}
}

// The racy cross-GPU atomic hazard: two GPUs each AtomicAdd(+1) the same
// address without sys-scoped synchronization. Each RMW acts on its local
// replica, so when the updates race, one overwrites the other in flight —
// a lost update. Each writer publishes a sys-scoped completion flag, so an
// observer that saw both flags knows both atomics finished and delivered;
// it may still read 1. This is why the model classifies concurrent weak
// writes to one address from different GPUs as racy (Section 3.3), and why
// cross-GPU accumulations need sys scope or per-GPU partials.
func TestLitmusCrossGPUAtomicsLoseUpdates(t *testing.T) {
	fA := Addr{Line: 3, Off: 0}
	fB := Addr{Line: 4, Off: 0}
	ex := NewExplorer(3, []Thread{
		{GPU: 0, Ops: []Op{
			{Kind: OpAtomicAdd, Addr: x, Val: 1},
			{Kind: OpFenceSys},
			{Kind: OpStoreSys, Addr: fA, Val: 1},
		}},
		{GPU: 1, Ops: []Op{
			{Kind: OpAtomicAdd, Addr: x, Val: 1},
			{Kind: OpFenceSys},
			{Kind: OpStoreSys, Addr: fB, Val: 1},
		}},
		{GPU: 2, Ops: []Op{
			{Kind: OpLoad, Addr: fA},
			{Kind: OpLoad, Addr: fB},
			{Kind: OpLoad, Addr: x},
		}},
	})
	outcomes := ex.Explore()
	bothDone := func(l map[string]int) bool { return l["t2:r0"] == 1 && l["t2:r1"] == 1 }
	// Lost update: both atomics completed and delivered, yet x == 1.
	if !Contains(outcomes, func(l map[string]int) bool {
		return bothDone(l) && l["t2:r2"] == 1
	}) {
		t.Fatal("lost-update outcome should be reachable for racing weak atomics")
	}
	// The lucky serialization (one RMW observed the other's delivery) is
	// also reachable: racy programs get no guarantee either way.
	if !Contains(outcomes, func(l map[string]int) bool {
		return bothDone(l) && l["t2:r2"] == 2
	}) {
		t.Fatal("serialized outcome should also be reachable")
	}
	// But never more than 2.
	if Contains(outcomes, func(l map[string]int) bool { return l["t2:r2"] > 2 }) {
		t.Fatal("impossible accumulation observed")
	}
}

// Load buffering (LB): T0 loads y then stores x; T1 loads x then stores y.
// Both loads returning 1 would require value speculation; the operational
// GPS model never speculates, so the outcome is unreachable (the hardware
// is allowed to be stronger than the formal model requires).
func TestLitmusLoadBuffering(t *testing.T) {
	ex := NewExplorer(2, []Thread{
		{GPU: 0, Ops: []Op{{Kind: OpLoad, Addr: y}, {Kind: OpStoreWeak, Addr: x, Val: 1}}},
		{GPU: 1, Ops: []Op{{Kind: OpLoad, Addr: x}, {Kind: OpStoreWeak, Addr: y, Val: 1}}},
	})
	outcomes := ex.Explore()
	if Contains(outcomes, func(l map[string]int) bool {
		return l["t0:r0"] == 1 && l["t1:r0"] == 1
	}) {
		t.Fatal("LB (1,1) requires speculation the GPS pipeline does not perform")
	}
	// The sequential outcomes are reachable.
	if !Contains(outcomes, func(l map[string]int) bool {
		return l["t0:r0"] == 0 && l["t1:r0"] == 0
	}) {
		t.Fatal("LB (0,0) should be reachable")
	}
}
