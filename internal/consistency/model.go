// Package consistency provides an executable operational model of the
// scoped NVIDIA-style GPU memory model that GPS relies on (Section 2.3 and
// 3.3 of the paper), together with an exhaustive-interleaving explorer for
// litmus tests.
//
// The model captures exactly the mechanisms GPS exploits:
//
//   - Weak stores update the issuing GPU's local replica immediately (read
//     your own writes through the local L2 ordering point) and enter a
//     per-GPU write queue where stores to the same cache line coalesce.
//   - Queue entries drain at nondeterministic times; each drained line
//     fans out as one message per remote replica over per-(src,dst) FIFO
//     channels (point-to-point ordering).
//   - A sys-scoped fence flushes the queue and completes only after all of
//     the GPU's in-flight messages deliver, making prior writes globally
//     visible.
//   - Sys-scoped stores are performed at a single point of coherence: they
//     first act as a fence, then update every replica atomically.
//
// The explorer enumerates all interleavings of thread steps, queue drains
// and message deliveries for small programs, producing the complete set of
// observable load-value vectors. Litmus tests assert that outcomes the
// memory model forbids never appear and that relaxed outcomes the model
// allows do appear.
package consistency

import (
	"fmt"
	"sort"
	"strings"
)

// Addr is a memory address in the litmus program's toy address space. Two
// addresses share a cache line iff they have the same Line value.
type Addr struct {
	Line int // cache line
	Off  int // word within the line
}

// OpKind enumerates litmus operation kinds.
type OpKind uint8

// Litmus operation kinds.
const (
	OpStoreWeak OpKind = iota // weak store: local update + queue
	OpStoreSys                // sys-scoped store: fence + global update
	OpLoad                    // load from the local replica, records result
	OpFenceSys                // sys-scoped fence: flush + await delivery
	// OpAtomicAdd is a weak-scoped atomic RMW: it reads and updates the
	// local replica atomically, then replicates like a store — but the GPS
	// write queue never coalesces it (each atomic is its own queue entry).
	// Concurrent weak atomics from different GPUs to one address are racy.
	OpAtomicAdd
)

// Op is one operation of a litmus thread.
type Op struct {
	Kind OpKind
	Addr Addr
	Val  int // for stores
}

// Thread is a straight-line sequence of operations on one GPU.
type Thread struct {
	GPU int
	Ops []Op
}

// Outcome is the vector of values returned by loads, in (thread, program
// order) position. Key formats as "t0:r0=1 t1:r0=0".
type Outcome string

// msg is one cache line's worth of replicated data in flight.
type msg struct {
	line   int
	vals   map[int]int // off -> value
	seq    int         // issue sequence from the source, for ordering checks
	atomic bool        // pass-through entry: never coalesced into
}

// state is one configuration of the exploration.
type state struct {
	pcs      []int            // per-thread program counter
	replicas []map[Addr]int   // per-GPU memory
	queues   [][]msg          // per-GPU write queue (coalescing buffer)
	chans    map[[2]int][]msg // (src,dst) -> FIFO in flight
	loads    [][]int          // per-thread load results so far
	blocked  []bool           // thread waiting on fence completion
}

// Explorer enumerates all behaviors of a litmus program.
type Explorer struct {
	numGPUs int
	threads []Thread
	seen    map[string]bool
	results map[Outcome]bool
	seq     int
}

// NewExplorer builds an explorer over the given threads for a system of
// numGPUs replicas (every GPU subscribes to every line: the worst case for
// ordering).
func NewExplorer(numGPUs int, threads []Thread) *Explorer {
	for _, th := range threads {
		if th.GPU < 0 || th.GPU >= numGPUs {
			panic(fmt.Sprintf("consistency: thread on GPU %d outside system of %d", th.GPU, numGPUs))
		}
	}
	return &Explorer{numGPUs: numGPUs, threads: threads}
}

// Explore runs the exhaustive search and returns every observable outcome.
func (e *Explorer) Explore() map[Outcome]bool {
	e.seen = map[string]bool{}
	e.results = map[Outcome]bool{}
	init := state{
		pcs:      make([]int, len(e.threads)),
		replicas: make([]map[Addr]int, e.numGPUs),
		queues:   make([][]msg, e.numGPUs),
		chans:    map[[2]int][]msg{},
		loads:    make([][]int, len(e.threads)),
	}
	for g := 0; g < e.numGPUs; g++ {
		init.replicas[g] = map[Addr]int{}
	}
	e.walk(init)
	return e.results
}

func (e *Explorer) walk(s state) {
	key := s.key()
	if e.seen[key] {
		return
	}
	e.seen[key] = true

	// Thread steps (threads blocked on a fence make progress via the drain
	// and delivery branches below).
	for ti := range e.threads {
		if s.pcs[ti] < len(e.threads[ti].Ops) {
			if ns, ok := e.stepThread(s, ti); ok {
				e.walk(ns)
			}
		}
	}
	// Queue drains (nondeterministic watermark/idle drain of the oldest entry).
	for g := 0; g < e.numGPUs; g++ {
		if len(s.queues[g]) > 0 {
			e.walk(e.drainOne(s, g))
		}
	}
	// Message deliveries (FIFO per channel).
	for ch, fifo := range s.chans {
		if len(fifo) > 0 {
			e.walk(e.deliverOne(s, ch))
		}
	}

	if !e.anyRunnable(s) && e.systemQuiescent(s) {
		e.results[s.outcome(e.threads)] = true
	}
}

func (e *Explorer) anyRunnable(s state) bool {
	for ti := range e.threads {
		if s.pcs[ti] < len(e.threads[ti].Ops) {
			return true
		}
	}
	return false
}

func (e *Explorer) systemQuiescent(s state) bool {
	for g := 0; g < e.numGPUs; g++ {
		if len(s.queues[g]) > 0 {
			return false
		}
	}
	for _, fifo := range s.chans {
		if len(fifo) > 0 {
			return false
		}
	}
	return true
}

// stepThread attempts to execute the next op of thread ti; ok=false when the
// thread is blocked on a fence that cannot yet complete.
func (e *Explorer) stepThread(s state, ti int) (state, bool) {
	th := e.threads[ti]
	op := th.Ops[s.pcs[ti]]
	g := th.GPU
	switch op.Kind {
	case OpStoreWeak:
		ns := s.clone()
		ns.replicas[g][op.Addr] = op.Val // local replica updated on the store path
		ns.enqueue(g, op, e.nextSeq())
		ns.pcs[ti]++
		return ns, true
	case OpLoad:
		ns := s.clone()
		v := ns.replicas[g][op.Addr]
		ns.loads[ti] = append(ns.loads[ti], v)
		ns.pcs[ti]++
		return ns, true
	case OpFenceSys:
		if !s.fenceComplete(g) {
			// Cannot complete yet: queue or channels still hold our writes.
			// Drains/deliveries will unblock us in sibling branches.
			return s, false
		}
		ns := s.clone()
		ns.pcs[ti]++
		return ns, true
	case OpStoreSys:
		if !s.fenceComplete(g) {
			return s, false
		}
		ns := s.clone()
		for dst := 0; dst < e.numGPUs; dst++ {
			ns.replicas[dst][op.Addr] = op.Val // single point of coherence
		}
		ns.pcs[ti]++
		return ns, true
	case OpAtomicAdd:
		ns := s.clone()
		nv := ns.replicas[g][op.Addr] + op.Val
		ns.replicas[g][op.Addr] = nv
		ns.enqueueAtomic(g, op.Addr, nv, e.nextSeq())
		ns.pcs[ti]++
		return ns, true
	}
	panic("consistency: unknown op")
}

func (e *Explorer) nextSeq() int {
	e.seq++
	return e.seq
}

// fenceComplete reports whether GPU g has no pending writes in its queue or
// any outgoing channel.
func (s *state) fenceComplete(g int) bool {
	if len(s.queues[g]) > 0 {
		return false
	}
	for ch, fifo := range s.chans {
		if ch[0] == g && len(fifo) > 0 {
			return false
		}
	}
	return true
}

// enqueue coalesces a weak store into GPU g's write queue. A store may only
// merge into the *latest* entry for its line, and never into an atomic
// pass-through entry — both rules preserve same-address ordering.
func (s *state) enqueue(g int, op Op, seq int) {
	for i := len(s.queues[g]) - 1; i >= 0; i-- {
		e := s.queues[g][i]
		if e.line != op.Addr.Line {
			continue
		}
		if e.atomic {
			break // an atomic to this line is newer: do not reorder around it
		}
		nv := map[int]int{}
		for k, v := range e.vals {
			nv[k] = v
		}
		nv[op.Addr.Off] = op.Val
		s.queues[g][i] = msg{line: op.Addr.Line, vals: nv, seq: seq}
		return
	}
	s.queues[g] = append(s.queues[g], msg{line: op.Addr.Line, vals: map[int]int{op.Addr.Off: op.Val}, seq: seq})
}

// enqueueAtomic appends a non-coalescable entry carrying the RMW result.
func (s *state) enqueueAtomic(g int, addr Addr, val, seq int) {
	s.queues[g] = append(s.queues[g], msg{
		line: addr.Line, vals: map[int]int{addr.Off: val}, seq: seq, atomic: true,
	})
}

// drainOne pops the least recently added queue entry of GPU g and fans it
// out to every remote replica's channel.
func (e *Explorer) drainOne(s state, g int) state {
	ns := s.clone()
	m := ns.queues[g][0]
	ns.queues[g] = append([]msg{}, ns.queues[g][1:]...)
	for dst := 0; dst < e.numGPUs; dst++ {
		if dst == g {
			continue
		}
		ch := [2]int{g, dst}
		ns.chans[ch] = append(append([]msg{}, ns.chans[ch]...), m)
	}
	return ns
}

// deliverOne applies the head message of a channel to the destination
// replica.
func (e *Explorer) deliverOne(s state, ch [2]int) state {
	ns := s.clone()
	fifo := ns.chans[ch]
	m := fifo[0]
	ns.chans[ch] = append([]msg{}, fifo[1:]...)
	for off, v := range m.vals {
		ns.replicas[ch[1]][Addr{Line: m.line, Off: off}] = v
	}
	return ns
}

func (s *state) clone() state {
	ns := state{
		pcs:      append([]int{}, s.pcs...),
		replicas: make([]map[Addr]int, len(s.replicas)),
		queues:   make([][]msg, len(s.queues)),
		chans:    map[[2]int][]msg{},
		loads:    make([][]int, len(s.loads)),
	}
	for g, r := range s.replicas {
		nr := make(map[Addr]int, len(r))
		for k, v := range r {
			nr[k] = v
		}
		ns.replicas[g] = nr
	}
	for g, q := range s.queues {
		ns.queues[g] = append([]msg{}, q...)
	}
	for ch, fifo := range s.chans {
		ns.chans[ch] = append([]msg{}, fifo...)
	}
	for ti, l := range s.loads {
		ns.loads[ti] = append([]int{}, l...)
	}
	return ns
}

func (s *state) key() string {
	var b strings.Builder
	fmt.Fprintf(&b, "pc%v|", s.pcs)
	for g, r := range s.replicas {
		keys := make([]Addr, 0, len(r))
		for k := range r {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			if keys[i].Line != keys[j].Line {
				return keys[i].Line < keys[j].Line
			}
			return keys[i].Off < keys[j].Off
		})
		fmt.Fprintf(&b, "r%d{", g)
		for _, k := range keys {
			fmt.Fprintf(&b, "%d.%d=%d,", k.Line, k.Off, r[k])
		}
		b.WriteString("}")
	}
	for g, q := range s.queues {
		fmt.Fprintf(&b, "q%d[", g)
		for _, m := range q {
			b.WriteString(fmtMsg(m))
		}
		b.WriteString("]")
	}
	chKeys := make([][2]int, 0, len(s.chans))
	for ch := range s.chans {
		chKeys = append(chKeys, ch)
	}
	sort.Slice(chKeys, func(i, j int) bool {
		if chKeys[i][0] != chKeys[j][0] {
			return chKeys[i][0] < chKeys[j][0]
		}
		return chKeys[i][1] < chKeys[j][1]
	})
	for _, ch := range chKeys {
		if len(s.chans[ch]) == 0 {
			continue
		}
		fmt.Fprintf(&b, "c%d-%d[", ch[0], ch[1])
		for _, m := range s.chans[ch] {
			b.WriteString(fmtMsg(m))
		}
		b.WriteString("]")
	}
	fmt.Fprintf(&b, "|ld%v", s.loads)
	return b.String()
}

func fmtMsg(m msg) string {
	offs := make([]int, 0, len(m.vals))
	for o := range m.vals {
		offs = append(offs, o)
	}
	sort.Ints(offs)
	var b strings.Builder
	if m.atomic {
		fmt.Fprintf(&b, "(a%d:", m.line)
	} else {
		fmt.Fprintf(&b, "(%d:", m.line)
	}
	for _, o := range offs {
		fmt.Fprintf(&b, "%d=%d,", o, m.vals[o])
	}
	b.WriteString(")")
	return b.String()
}

func (s *state) outcome(threads []Thread) Outcome {
	var parts []string
	for ti := range threads {
		for ri, v := range s.loads[ti] {
			parts = append(parts, fmt.Sprintf("t%d:r%d=%d", ti, ri, v))
		}
	}
	return Outcome(strings.Join(parts, " "))
}

// Contains reports whether outcomes includes an outcome satisfying pred over
// the parsed load map ("t0:r1" -> value).
func Contains(outcomes map[Outcome]bool, pred func(loads map[string]int) bool) bool {
	for o := range outcomes {
		if pred(parseOutcome(o)) {
			return true
		}
	}
	return false
}

func parseOutcome(o Outcome) map[string]int {
	m := map[string]int{}
	if o == "" {
		return m
	}
	for _, part := range strings.Split(string(o), " ") {
		var t, r, v int
		if _, err := fmt.Sscanf(part, "t%d:r%d=%d", &t, &r, &v); err != nil {
			panic(fmt.Sprintf("consistency: bad outcome part %q", part))
		}
		m[fmt.Sprintf("t%d:r%d", t, r)] = v
	}
	return m
}
