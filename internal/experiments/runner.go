package experiments

import (
	"context"
	"fmt"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"gps/internal/engine"
	"gps/internal/interconnect"
	"gps/internal/obs"
	"gps/internal/paradigm"
	"gps/internal/timing"
	"gps/internal/trace"
	"gps/internal/workload"
)

// The experiment suite is an embarrassingly parallel matrix of independent
// (app x paradigm x fabric x GPU-count) simulations, and most cells agree on
// the trace they replay and on the single-GPU baseline they normalize
// against. Runner exploits both facts: a worker pool executes cells across
// goroutines with results assembled in deterministic cell order (parallel
// output is byte-identical to serial), while three memoizing caches make
// sure every trace is built once, every structural replay runs once (the
// engine never sees the fabric, so fabric sweeps share it), and every
// baseline is simulated once per configuration. Cells share only immutable
// state — the Recorded trace, the structural Result and the Fabric
// description — and each gets its own paradigm Model, so runs are race-free
// by construction.

// Cell is one independent experiment: app's trace replayed under Kind on
// GPUs devices, priced on Fab.
type Cell struct {
	App  string
	Kind paradigm.Kind
	GPUs int
	Fab  *interconnect.Fabric
	Opt  Options
	Cfg  paradigm.Config
	// Packet prices transfer windows with the packet-level fabric engine
	// instead of the fluid model (gpsim -packet).
	Packet bool
}

// CellResult pairs a cell with its timing report and structural result.
type CellResult struct {
	Cell   Cell
	Report *timing.Report
	Result *engine.Result
}

// CacheStats reports the memoization counters of a Runner. The experiment
// regression tests assert on these: within one Runner every trace must be
// built exactly once per (app, workload.Config) and every baseline simulated
// exactly once per (app, Options, paradigm.Config).
type CacheStats struct {
	TraceBuilds    uint64 // traces generated and materialized
	TraceHits      uint64 // trace requests served from cache
	TraceEvictions uint64 // traces dropped to respect the memory budget
	TraceBytes     uint64 // approximate bytes of resident cached traces (compressed)
	// TraceLogicalBytes is what the resident traces would occupy in the flat
	// 24 B/record layout: TraceLogicalBytes / TraceBytes is the columnar
	// compression ratio of the cache.
	TraceLogicalBytes uint64
	TraceSpills       uint64 // traces whose blocks moved to the spill file under budget pressure
	TraceSpillBytes   uint64 // compressed bytes written to the spill file
	SpillBlockReads   uint64 // block reads served from the spill file during replay
	SpillReadBytes    uint64 // bytes read back from the spill file
	EngineRuns        uint64 // structural replays executed
	EngineHits        uint64 // structural results served from cache
	ShardedRuns       uint64 // structural replays executed with >1 shard
	BaselineRuns      uint64 // single-GPU baseline simulations executed
	BaselineHits      uint64 // baseline requests served from cache
}

type traceKey struct {
	app string
	cfg workload.Config
}

type traceEntry struct {
	once    sync.Once
	rec     *trace.Recorded
	err     error
	cost    uint64 // approximate resident bytes once built
	logical uint64 // flat 24 B/record equivalent bytes
	spilled bool   // blocks moved to the runner's spill file
	lastUse uint64 // monotone tick for LRU eviction
}

type baselineKey struct {
	app  string
	wcfg workload.Config // normalized single-GPU workload config
	pcfg paradigm.Config
}

type baselineEntry struct {
	once sync.Once
	val  float64
	err  error
}

// resultKey identifies one structural replay. The structural engine knows
// nothing about the interconnect — fabrics only enter at timing — so cells
// that differ solely in fabric or packet engine (the Figure 12/13 sweeps,
// ExtendedFabrics) share one engine.Run.
type resultKey struct {
	app  string
	wcfg workload.Config
	kind paradigm.Kind
	pcfg paradigm.Config
}

type resultEntry struct {
	once sync.Once
	res  *engine.Result
	err  error
}

// Runner executes experiment matrices on a worker pool over a shared
// trace/baseline cache. The zero value is not usable; call NewRunner.
type Runner struct {
	workers int64 // 0 means GOMAXPROCS, resolved at use
	shards  int64 // shards per structural replay; <= 1 means sequential

	resilienceState // panic fences, cell retry policy, fault hook

	mu        sync.Mutex
	tick      uint64
	traces    map[traceKey]*traceEntry
	results   map[resultKey]*resultEntry
	baselines map[baselineKey]*baselineEntry
	resident  uint64 // sum of built trace costs
	logical   uint64 // sum of built traces' flat-equivalent bytes
	budget    uint64 // spill/eviction threshold for resident

	// spill is the shared anonymous temp file trace blocks move to under
	// budget pressure, created lazily on the first spill. It is never closed
	// explicitly: evicted traces may still be replaying from it, the file is
	// already unlinked, and the fd is reclaimed with the Runner.
	spill       *trace.SpillFile
	spillBroken bool // spill file creation failed; fall back to eviction

	traceBuilds    atomic.Uint64
	traceHits      atomic.Uint64
	traceEvictions atomic.Uint64
	traceSpills    atomic.Uint64
	engineRuns     atomic.Uint64
	engineHits     atomic.Uint64
	shardedRuns    atomic.Uint64
	baselineRuns   atomic.Uint64
	baselineHits   atomic.Uint64
}

// DefaultTraceBudget bounds the resident size of a Runner's trace cache
// (approximate bytes). The hot 4-GPU default-config traces are reused by
// nearly every figure and stay resident; one-figure traces (16-GPU scaling,
// doubled-scale page study) are evicted least-recently-used once the budget
// is exceeded.
const DefaultTraceBudget = 4 << 30

// NewRunner builds a runner with the given worker count; workers <= 0 means
// GOMAXPROCS.
func NewRunner(workers int) *Runner {
	r := &Runner{
		traces:    map[traceKey]*traceEntry{},
		results:   map[resultKey]*resultEntry{},
		baselines: map[baselineKey]*baselineEntry{},
		budget:    DefaultTraceBudget,
	}
	r.cellRetry = DefaultCellRetry
	r.SetWorkers(workers)
	return r
}

// Default is the package-wide runner the FigureN/sensitivity functions use.
// gpsbench -parallel adjusts its worker count via SetParallelism.
var Default = NewRunner(0)

// SetParallelism sets the worker count of the package default runner;
// n <= 0 restores the GOMAXPROCS default.
func SetParallelism(n int) { Default.SetWorkers(n) }

// Parallelism returns the resolved worker count of the default runner.
func Parallelism() int { return Default.Workers() }

// SetShards sets the structural replay shard count of the package default
// runner; see Runner.SetShards.
func SetShards(n int) { Default.SetShards(n) }

// Shards returns the shard count of the default runner.
func Shards() int { return Default.Shards() }

// SetWorkers sets the pool size; n <= 0 means GOMAXPROCS.
func (r *Runner) SetWorkers(n int) {
	if n < 0 {
		n = 0
	}
	atomic.StoreInt64(&r.workers, int64(n))
}

// Workers returns the resolved pool size.
func (r *Runner) Workers() int {
	n := int(atomic.LoadInt64(&r.workers))
	if n == 0 {
		n = runtime.GOMAXPROCS(0)
	}
	return n
}

// SetShards sets how many goroutines each structural replay shards across
// (engine.RunSharded); n <= 1 means sequential replay. Rendered output is
// byte-identical at any shard count, so this is purely a latency knob: the
// count is honored exactly, and bounding shards x workers by GOMAXPROCS is
// the caller's policy (the CLIs clamp, tests pin exact counts).
func (r *Runner) SetShards(n int) {
	if n < 1 {
		n = 1
	}
	atomic.StoreInt64(&r.shards, int64(n))
}

// Shards returns the configured shard count (at least 1).
func (r *Runner) Shards() int {
	n := int(atomic.LoadInt64(&r.shards))
	if n < 1 {
		n = 1
	}
	return n
}

// SetTraceBudget adjusts the approximate byte budget of the trace cache.
func (r *Runner) SetTraceBudget(bytes uint64) {
	r.mu.Lock()
	r.budget = bytes
	r.evictLocked(traceKey{})
	r.mu.Unlock()
}

// CacheStats snapshots the memoization counters.
func (r *Runner) CacheStats() CacheStats {
	r.mu.Lock()
	resident := r.resident
	logical := r.logical
	sf := r.spill
	r.mu.Unlock()
	cs := CacheStats{
		TraceBuilds:       r.traceBuilds.Load(),
		TraceHits:         r.traceHits.Load(),
		TraceEvictions:    r.traceEvictions.Load(),
		TraceBytes:        resident,
		TraceLogicalBytes: logical,
		TraceSpills:       r.traceSpills.Load(),
		EngineRuns:        r.engineRuns.Load(),
		EngineHits:        r.engineHits.Load(),
		ShardedRuns:       r.shardedRuns.Load(),
		BaselineRuns:      r.baselineRuns.Load(),
		BaselineHits:      r.baselineHits.Load(),
	}
	if sf != nil {
		cs.TraceSpillBytes = uint64(sf.Size())
		cs.SpillBlockReads = sf.Reads()
		cs.SpillReadBytes = sf.ReadBytes()
	}
	return cs
}

// ResetCaches drops all cached traces, structural results and baselines and
// zeroes the counters.
func (r *Runner) ResetCaches() {
	r.mu.Lock()
	r.traces = map[traceKey]*traceEntry{}
	r.results = map[resultKey]*resultEntry{}
	r.baselines = map[baselineKey]*baselineEntry{}
	r.resident = 0
	r.logical = 0
	// Drop the spill file reference: dropped traces may still be replaying
	// from it, so the fd is left to the garbage collector rather than closed.
	r.spill = nil
	r.spillBroken = false
	r.mu.Unlock()
	r.traceBuilds.Store(0)
	r.traceHits.Store(0)
	r.traceEvictions.Store(0)
	r.traceSpills.Store(0)
	r.engineRuns.Store(0)
	r.engineHits.Store(0)
	r.shardedRuns.Store(0)
	r.baselineRuns.Store(0)
	r.baselineHits.Store(0)
}

// accessBytes is unsafe.Sizeof(trace.Access{}): the per-record cost of the
// flat array-of-structs layout, used as the logical-size baseline.
const accessBytes = 24

// traceCost approximates the resident heap bytes of a materialized trace.
// Columnar kernels count their compressed block bytes — or just their block
// index once spilled — so the cache budget admits far more traces than the
// flat layout would.
func traceCost(rec *trace.Recorded) uint64 {
	var cost uint64 = 4 << 10
	for i := range rec.Ph {
		cost += 1 << 10
		for k := range rec.Ph[i].Kernels {
			kn := &rec.Ph[i].Kernels[k]
			cost += 256
			if kn.Col != nil {
				cost += kn.Col.ResidentBytes()
			} else {
				cost += uint64(len(kn.Accesses)) * accessBytes
			}
		}
	}
	return cost
}

// traceLogical is the flat-layout size of a trace's access streams: the
// bytes the cache would hold without columnar compression.
func traceLogical(rec *trace.Recorded) uint64 {
	var b uint64
	for i := range rec.Ph {
		for k := range rec.Ph[i].Kernels {
			b += uint64(rec.Ph[i].Kernels[k].NumAccesses()) * accessBytes
		}
	}
	return b
}

// Trace returns the materialized trace for (app, cfg), building it at most
// once per configuration and sharing the immutable result across goroutines.
func (r *Runner) Trace(app string, cfg workload.Config) (*trace.Recorded, error) {
	return r.traceCtx(context.Background(), app, cfg)
}

// traceCtx is Trace with the caller's context, so a build that happens
// under a traced cell records a trace-build phase span.
func (r *Runner) traceCtx(ctx context.Context, app string, cfg workload.Config) (*trace.Recorded, error) {
	key := traceKey{app: app, cfg: cfg}
	r.mu.Lock()
	r.tick++
	e := r.traces[key]
	if e == nil {
		e = &traceEntry{lastUse: r.tick}
		r.traces[key] = e
	} else {
		e.lastUse = r.tick
		r.traceHits.Add(1)
	}
	r.mu.Unlock()

	e.once.Do(func() {
		_, span := obs.StartSpan(ctx, obs.CatPhase, "trace-build", "app", app)
		defer span.End()
		spec, err := workload.ByName(app)
		if err != nil {
			e.err = err
			return
		}
		e.rec = trace.Collect(spec.Build(cfg))
		e.cost = traceCost(e.rec)
		e.logical = traceLogical(e.rec)
		r.traceBuilds.Add(1)
		r.mu.Lock()
		r.resident += e.cost
		r.logical += e.logical
		r.evictLocked(key)
		r.mu.Unlock()
	})
	return e.rec, e.err
}

// evictLocked brings the cache back under budget in two passes. Pass 1
// spills: the least-recently-used entries with resident columnar blocks
// (including the entry just inserted — under a tiny budget even the newest
// trace belongs on disk) move their blocks to the shared spill file, keeping
// the trace cached and replayable at a fraction of the cost. Pass 2 evicts:
// if spilling every candidate still leaves the cache over budget (flat
// traces, the per-trace index overhead, or a broken spill file), the LRU
// entries other than keep are dropped entirely and must be rebuilt on the
// next request. Callers hold r.mu.
func (r *Runner) evictLocked(keep traceKey) {
	for r.resident > r.budget {
		var victim *traceEntry
		for _, e := range r.traces {
			if e.cost == 0 || e.spilled || e.rec == nil { // cost 0: still building
				continue
			}
			if victim == nil || e.lastUse < victim.lastUse {
				victim = e
			}
		}
		if victim == nil {
			break
		}
		victim.spilled = true
		sf := r.spillFileLocked()
		if sf == nil {
			break // no spill tier available: eviction only
		}
		freed, err := victim.rec.Spill(sf)
		if freed > 0 {
			r.traceSpills.Add(1)
		}
		// Recompute rather than trust freed: a partial spill (write error)
		// leaves some kernels resident, and the recompute prices exactly
		// what stayed on the heap.
		newCost := traceCost(victim.rec)
		r.resident += newCost
		r.resident -= victim.cost
		victim.cost = newCost
		_ = err // unreadable spilled blocks surface as cell errors at replay
	}
	for r.resident > r.budget && len(r.traces) > 1 {
		var victimKey traceKey
		var victim *traceEntry
		for k, e := range r.traces {
			if k == keep || e.cost == 0 { // cost 0: still building
				continue
			}
			if victim == nil || e.lastUse < victim.lastUse {
				victimKey, victim = k, e
			}
		}
		if victim == nil {
			return
		}
		delete(r.traces, victimKey)
		r.resident -= victim.cost
		r.logical -= victim.logical
		r.traceEvictions.Add(1)
	}
}

// spillFileLocked lazily creates the runner's shared spill file; nil means
// the spill tier is unavailable (creation failed once; do not retry per
// victim). Callers hold r.mu.
func (r *Runner) spillFileLocked() *trace.SpillFile {
	if r.spill == nil && !r.spillBroken {
		sf, err := trace.NewSpillFile("")
		if err != nil {
			r.spillBroken = true
		} else {
			r.spill = sf
		}
	}
	return r.spill
}

// structural returns the engine.Result of replaying (app, wcfg) under
// (kind, pcfg), running the replay at most once per key. The result is
// immutable downstream: timing.Simulate and the figure assemblies only read
// it, so one result safely prices any number of fabrics.
func (r *Runner) structural(ctx context.Context, app string, wcfg workload.Config, kind paradigm.Kind,
	pcfg paradigm.Config) (*engine.Result, error) {
	key := resultKey{app: app, wcfg: wcfg, kind: kind, pcfg: pcfg}
	r.mu.Lock()
	e := r.results[key]
	if e == nil {
		e = &resultEntry{}
		r.results[key] = e
	} else {
		r.engineHits.Add(1)
	}
	r.mu.Unlock()

	e.once.Do(func() {
		prog, err := r.traceCtx(ctx, app, wcfg)
		if err != nil {
			e.err = err
			return
		}
		model, err := paradigm.New(kind, prog, pcfg)
		if err != nil {
			e.err = err
			return
		}
		shards := r.Shards()
		sctx, span := obs.StartSpan(ctx, obs.CatPhase, "engine-replay",
			"app", app, "paradigm", kind.String())
		e.res = engine.RunShardedObserved(prog, model, shards, enginePhaseSpans(sctx, shards))
		span.End()
		r.engineRuns.Add(1)
		if shards > 1 {
			r.shardedRuns.Add(1)
		}
	})
	return e.res, e.err
}

// enginePhaseSpans returns a PhaseObserver that records one engine-phase
// span per replay phase on the enclosing span's track, or nil when ctx
// carries no tracer — the nil keeps the replay loop's per-phase cost at a
// single nil check. With shards > 1 the observer also implements
// engine.ShardObserver, bracketing each shard's slice of the phase with a
// span on its own track.
func enginePhaseSpans(ctx context.Context, shards int) engine.PhaseObserver {
	if obs.TracerFrom(ctx) == nil {
		return nil
	}
	if shards > 1 {
		return &shardSpanObserver{
			phaseSpanObserver: phaseSpanObserver{ctx: ctx},
			spans:             make([]*obs.Span, shards),
		}
	}
	return &phaseSpanObserver{ctx: ctx}
}

// phaseSpanObserver is used inside one engine.RunObserved call, which
// replays phases serially, so the single current-span field needs no lock.
type phaseSpanObserver struct {
	ctx  context.Context
	span *obs.Span
}

func (o *phaseSpanObserver) PhaseStart(index, kernels int) {
	_, o.span = obs.StartSpan(o.ctx, obs.CatEnginePhase,
		"phase-"+strconv.Itoa(index), "kernels", strconv.Itoa(kernels))
}

func (o *phaseSpanObserver) PhaseEnd(int) {
	o.span.End()
	o.span = nil
}

// shardSpanObserver adds per-shard spans to the phase spans. Each shard
// goroutine writes only its own slice slot (StartSpanTrack is safe for
// concurrent use), so no lock is needed.
type shardSpanObserver struct {
	phaseSpanObserver
	spans []*obs.Span
}

func (o *shardSpanObserver) ShardStart(phase, shard int) {
	_, o.spans[shard] = obs.StartSpanTrack(o.ctx, obs.CatEnginePhase,
		"phase-"+strconv.Itoa(phase)+"/shard-"+strconv.Itoa(shard))
}

func (o *shardSpanObserver) ShardEnd(phase, shard int) {
	o.spans[shard].End()
	o.spans[shard] = nil
}

// cellObserverKey carries an optional per-cell callback in a Context; see
// WithCellObserver.
type cellObserverKey struct{}

// CellEvent is one cell lifecycle notification: a Start event when the cell
// is issued to a worker, and a completion event (Start false) carrying the
// measured wall time and the cell's error, if any. The pair gives observers
// real durations instead of just completion ticks.
type CellEvent struct {
	Index int           // position in the issued work sequence
	Desc  string        // cell description (app/paradigm/gpus/fabric) when known
	Start bool          // true at issue, false at completion
	Dur   time.Duration // wall time; zero on Start events
	Err   error         // the cell's failure; nil on Start events and successes
}

// CellObserver receives CellEvents; it must be safe for concurrent use.
type CellObserver func(CellEvent)

// WithCellObserver returns a context whose matrix runs call fn at the start
// and completion of every cell. The gpsd job scheduler uses it for live
// progress and per-cell slog records; fn must be safe for concurrent use.
func WithCellObserver(ctx context.Context, fn CellObserver) context.Context {
	return context.WithValue(ctx, cellObserverKey{}, fn)
}

// cellObserver extracts the observer installed by WithCellObserver, or nil.
func cellObserver(ctx context.Context) CellObserver {
	fn, _ := ctx.Value(cellObserverKey{}).(CellObserver)
	return fn
}

// RunCell executes one cell through the caches: the trace and the structural
// result are shared and immutable, only the (cheap) timing pass runs per
// fabric.
func (r *Runner) RunCell(c Cell) (*timing.Report, *engine.Result, error) {
	return r.runCell(context.Background(), c)
}

// runCell is RunCell under the caller's context: the timing pass records a
// render phase span, and a trace build or structural replay triggered by
// this cell records its phase spans too.
func (r *Runner) runCell(ctx context.Context, c Cell) (*timing.Report, *engine.Result, error) {
	opt := c.Opt.withDefaults()
	res, err := r.structural(ctx, c.App, opt.workloadConfig(c.GPUs), c.Kind, c.Cfg)
	if err != nil {
		return nil, nil, err
	}
	tcfg := timing.DefaultConfig(c.Fab)
	if c.Cfg.PageBytes != 0 {
		tcfg.PageBytes = c.Cfg.PageBytes
	}
	tcfg.UsePacketSim = c.Packet
	_, span := obs.StartSpan(ctx, obs.CatPhase, "render")
	rep := timing.Simulate(res, tcfg)
	span.End()
	return rep, res, nil
}

// Baseline returns the single-GPU steady-state runtime of app (no
// interconnect at all), simulating it at most once per (app, workload
// config, paradigm config).
func (r *Runner) Baseline(app string, opt Options, pcfg paradigm.Config) (float64, error) {
	return r.baselineCtx(context.Background(), app, opt, pcfg)
}

func (r *Runner) baselineCtx(ctx context.Context, app string, opt Options, pcfg paradigm.Config) (float64, error) {
	opt = opt.withDefaults()
	key := baselineKey{app: app, wcfg: opt.workloadConfig(1), pcfg: pcfg}
	r.mu.Lock()
	e := r.baselines[key]
	if e == nil {
		e = &baselineEntry{}
		r.baselines[key] = e
	} else {
		r.baselineHits.Add(1)
	}
	r.mu.Unlock()

	e.once.Do(func() {
		rep, _, err := r.runCell(ctx, Cell{
			App: app, Kind: paradigm.KindInfinite, GPUs: 1,
			Fab: interconnect.Infinite(1), Opt: opt, Cfg: pcfg,
		})
		if err != nil {
			e.err = err
			return
		}
		e.val = rep.SteadyTotal()
		r.baselineRuns.Add(1)
	})
	return e.val, e.err
}

// Speedup runs app under kind on fab and returns time(1 GPU)/time(kind),
// reusing the cached baseline.
func (r *Runner) Speedup(app string, kind paradigm.Kind, gpus int, fab *interconnect.Fabric,
	opt Options, pcfg paradigm.Config) (float64, error) {
	base, err := r.Baseline(app, opt, pcfg)
	if err != nil {
		return 0, err
	}
	rep, _, err := r.RunCell(Cell{App: app, Kind: kind, GPUs: gpus, Fab: fab, Opt: opt, Cfg: pcfg})
	if err != nil {
		return 0, err
	}
	return speedupOf(base, rep), nil
}

// parallelFor is the undescribed, context-free form of parallelForDesc:
// fn(i) runs for 0..n-1 with anonymous cell labels. Tests and simple
// fan-outs use it; matrix code paths prefer parallelForDesc so errors,
// spans and observer events name the configuration that produced them.
func (r *Runner) parallelFor(ctx context.Context, n int, fn func(int) error) error {
	return r.parallelForDesc(ctx, n, nil, func(_ context.Context, i int) error {
		return fn(i)
	})
}

// parallelForDesc runs fn(ctx, 0..n-1) on the worker pool, with an optional
// desc(i) used to label CellErrors, observer events and spans. Every index
// runs even if another fails; the error of the lowest failing index is
// returned, so behavior is identical at any worker count. Cancellation is
// checked before each index is issued: once ctx is done no further indices
// start, and the cancellation error is reported from the first index that
// was not issued, preserving the lowest-index error convention.
//
// Each index runs under the panic fence and the cell retry policy: a
// panicking index fails with a typed CellError (other indices keep
// running), and attempts that fail with a retryable error re-run with
// backoff before the index is declared failed. When a tracer or cell
// observer rides on ctx, every index is bracketed by a span on its own
// track and by Start/completion CellEvents; with neither installed the
// instrumentation costs two context lookups per matrix.
func (r *Runner) parallelForDesc(ctx context.Context, n int, desc func(int) string, fn func(context.Context, int) error) error {
	observe := cellObserver(ctx)
	tracing := obs.TracerFrom(ctx) != nil
	step := func(i int) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		if !tracing && observe == nil {
			return r.runCellResilient(ctx, i, desc, fn)
		}
		d := "cell"
		if desc != nil {
			d = desc(i)
		}
		if observe != nil {
			observe(CellEvent{Index: i, Desc: d, Start: true})
		}
		cctx, span := obs.StartSpanTrack(ctx, obs.CatCell, d, "index", strconv.Itoa(i))
		start := time.Now()
		err := r.runCellResilient(cctx, i, desc, fn)
		span.End()
		if observe != nil {
			observe(CellEvent{Index: i, Desc: d, Dur: time.Since(start), Err: err})
		}
		return err
	}
	workers := r.Workers()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		var firstErr error
		for i := 0; i < n; i++ {
			if err := step(i); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		return firstErr
	}
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		mu       sync.Mutex
		errIdx   = n
		firstErr error
	)
	next.Store(-1)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= n {
					return
				}
				if err := step(i); err != nil {
					mu.Lock()
					if i < errIdx {
						errIdx, firstErr = i, err
					}
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}

// RunCellCtx is RunCell with an early-out on an already-canceled context.
// The simulation itself is not interruptible — cancellation is honored at
// cell granularity, which keeps results immutable and cacheable.
func (r *Runner) RunCellCtx(ctx context.Context, c Cell) (*timing.Report, *engine.Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	return r.runCell(ctx, c)
}

// describe renders the cell for error messages and journal entries.
func (c Cell) describe() string {
	fab := "nofabric"
	if c.Fab != nil {
		fab = c.Fab.Name()
	}
	return fmt.Sprintf("%s/%s/%dgpu/%s", c.App, c.Kind, c.GPUs, fab)
}

// RunMatrix executes the cells across the worker pool and returns their
// results in cell order, so assembled tables are byte-identical to a serial
// run. Canceling ctx stops issuing cells promptly; in-flight cells finish.
// A cell that panics or fails poisons only this matrix: the failure comes
// back as a typed *CellError naming the cell, and other cells (and other
// matrices on the same runner) keep running.
func (r *Runner) RunMatrix(ctx context.Context, cells []Cell) ([]CellResult, error) {
	results := make([]CellResult, len(cells))
	desc := func(i int) string { return cells[i].describe() }
	err := r.parallelForDesc(ctx, len(cells), desc, func(ctx context.Context, i int) error {
		rep, res, err := r.runCell(ctx, cells[i])
		if err != nil {
			return err
		}
		results[i] = CellResult{Cell: cells[i], Report: rep, Result: res}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

// RunMatrixWithBaselines executes the cells and, on the same worker pool,
// resolves the single-GPU baselines for apps under (opt, pcfg). Baseline
// jobs are scheduled first so the normalization runs overlap the matrix.
func (r *Runner) RunMatrixWithBaselines(ctx context.Context, apps []string, opt Options,
	pcfg paradigm.Config, cells []Cell) (map[string]float64, []CellResult, error) {
	bases := make([]float64, len(apps))
	results := make([]CellResult, len(cells))
	desc := func(i int) string {
		if i < len(apps) {
			return "baseline/" + apps[i]
		}
		return cells[i-len(apps)].describe()
	}
	err := r.parallelForDesc(ctx, len(apps)+len(cells), desc, func(ctx context.Context, i int) error {
		if i < len(apps) {
			b, err := r.baselineCtx(ctx, apps[i], opt, pcfg)
			if err != nil {
				return err
			}
			bases[i] = b
			return nil
		}
		j := i - len(apps)
		rep, res, err := r.runCell(ctx, cells[j])
		if err != nil {
			return err
		}
		results[j] = CellResult{Cell: cells[j], Report: rep, Result: res}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	m := make(map[string]float64, len(apps))
	for i, app := range apps {
		m[app] = bases[i]
	}
	return m, results, nil
}
