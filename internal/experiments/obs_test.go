package experiments

import (
	"bytes"
	"context"
	"testing"

	"gps/internal/obs"
	"gps/internal/paradigm"
)

// TestMatrixTrace: running a matrix under a tracer emits a structurally
// valid trace with one span per cell on its own track and the
// trace-build / engine-replay / render phases (plus per-phase engine
// spans) nested inside.
func TestMatrixTrace(t *testing.T) {
	if testing.Short() {
		t.Skip("full simulation")
	}
	var buf bytes.Buffer
	tracer := obs.NewTracer(context.Background(), &buf)
	ctx := obs.WithTracer(context.Background(), tracer)

	r := NewRunner(2)
	opt := quick()
	cells := []Cell{
		{App: "jacobi", Kind: paradigm.KindGPS, GPUs: 2, Fab: MainFabric(2), Opt: opt, Cfg: paradigm.DefaultConfig()},
		{App: "jacobi", Kind: paradigm.KindMemcpy, GPUs: 2, Fab: MainFabric(2), Opt: opt, Cfg: paradigm.DefaultConfig()},
	}
	if _, err := r.RunMatrix(ctx, cells); err != nil {
		t.Fatal(err)
	}
	if err := tracer.Close(); err != nil {
		t.Fatal(err)
	}

	sum, err := obs.ValidateTrace(buf.Bytes(), obs.CatCell, obs.CatPhase, obs.CatEnginePhase)
	if err != nil {
		t.Fatalf("ValidateTrace: %v", err)
	}
	if sum.ByCat[obs.CatCell] != len(cells) {
		t.Errorf("trace has %d cell spans, want %d (%v)", sum.ByCat[obs.CatCell], len(cells), sum.ByCat)
	}
	// Both cells share one trace build (same app/config) but replay and
	// render separately: at least one trace-build span and a render per cell.
	if sum.ByCat[obs.CatPhase] < len(cells)+1 {
		t.Errorf("trace has %d phase spans, want >= %d (%v)", sum.ByCat[obs.CatPhase], len(cells)+1, sum.ByCat)
	}
	if sum.ByCat[obs.CatEnginePhase] == 0 {
		t.Error("trace has no engine-phase spans")
	}
}

// TestMatrixNoTracerNoTrace: without a tracer on the context the matrix
// runs exactly as before — the fast path must not allocate spans (smoke
// proxy: nothing panics and results still come back; overhead is pinned by
// the bench gate, not this test).
func TestMatrixNoTracerNoTrace(t *testing.T) {
	if testing.Short() {
		t.Skip("full simulation")
	}
	r := NewRunner(1)
	cells := []Cell{{App: "jacobi", Kind: paradigm.KindGPS, GPUs: 2, Fab: MainFabric(2), Opt: quick(), Cfg: paradigm.DefaultConfig()}}
	if _, err := r.RunMatrix(context.Background(), cells); err != nil {
		t.Fatal(err)
	}
}
