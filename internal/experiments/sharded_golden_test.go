package experiments

import (
	"context"
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

// Sharded replay is a scheduling change, not a modeling change: the figures
// must render byte-identically at every shard count. Each render gets a
// fresh runner so the memoization caches cannot serve the sequential result
// back and make the comparison vacuous.
func TestShardedRenderByteIdentical(t *testing.T) {
	renders := []struct {
		golden string
		render func(context.Context, Options) (string, error)
	}{
		{"figure8_quick.golden", func(ctx context.Context, opt Options) (string, error) {
			tb, err := Figure8(ctx, opt)
			if err != nil {
				return "", err
			}
			return tb.String(), nil
		}},
		{"pagesize_quick.golden", func(ctx context.Context, opt Options) (string, error) {
			tb, err := SensitivityPageSize(ctx, opt)
			if err != nil {
				return "", err
			}
			return tb.String(), nil
		}},
	}

	oldDefault := Default
	defer func() { Default = oldDefault }()
	opt := Options{Iterations: 2, Quick: true}

	for _, tc := range renders {
		want, err := os.ReadFile(filepath.Join("testdata", tc.golden))
		if err != nil {
			t.Fatal(err)
		}
		for _, shardN := range []int{1, 2, 8} {
			t.Run(tc.golden+"/shards="+strconv.Itoa(shardN), func(t *testing.T) {
				Default = NewRunner(1)
				Default.SetShards(shardN)
				got, err := tc.render(context.Background(), opt)
				if err != nil {
					t.Fatal(err)
				}
				if got != string(want) {
					t.Fatalf("render at %d shards deviates from the sequential golden\n--- got ---\n%s\n--- want ---\n%s",
						shardN, got, want)
				}
			})
		}
	}
}
