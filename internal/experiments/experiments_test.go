package experiments

import (
	"context"
	"math"
	"strings"
	"testing"

	"gps/internal/stats"
)

// quick returns reduced-iteration options for tests; the shapes asserted
// here are robust to iteration count.
func quick() Options { return Options{Iterations: 2, Quick: true} }

func TestFigure3Static(t *testing.T) {
	tb := Figure3()
	if tb.Rows() != 5 {
		t.Fatalf("rows = %d, want 5 platforms", tb.Rows())
	}
	out := tb.String()
	for _, want := range []string{"DGX-A100", "PCIe 3.0", "NVLink"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Figure 3 missing %q:\n%s", want, out)
		}
	}
}

func TestTable1ContainsSettings(t *testing.T) {
	out := Table1()
	for _, want := range []string{"128 bytes", "16 GB", "80", "6 MB", "512 entries", "135 bytes", "32 entries", "49 bits", "47 bits"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table 1 missing %q:\n%s", want, out)
		}
	}
}

func TestTable2ListsAllApps(t *testing.T) {
	out := Table2()
	for _, app := range []string{"jacobi", "pagerank", "sssp", "als", "ct", "eqwp", "diffusion", "hit"} {
		if !strings.Contains(out, app) {
			t.Fatalf("Table 2 missing %q", app)
		}
	}
	if !strings.Contains(out, "All-to-all") || !strings.Contains(out, "Peer-to-peer") {
		t.Fatal("Table 2 missing communication patterns")
	}
}

func TestFigure8HeadlineClaims(t *testing.T) {
	if testing.Short() {
		t.Skip("full paradigm sweep")
	}
	tb, err := Figure8(context.Background(), quick())
	if err != nil {
		t.Fatal(err)
	}
	gpsMean, opportunity, vsNext := Claims71(tb)
	// Paper Section 7.1: GPS ~3.0x, 93.7% of the opportunity, 2.3x over the
	// next best paradigm. Accept the surrounding band.
	if gpsMean < 2.6 || gpsMean > 3.6 {
		t.Errorf("GPS mean = %.2f, want ~3.0", gpsMean)
	}
	if opportunity < 0.85 || opportunity > 1.0 {
		t.Errorf("opportunity captured = %.1f%%, want ~93.7%%", opportunity*100)
	}
	if vsNext < 1.7 || vsNext > 2.9 {
		t.Errorf("vs next best = %.2fx, want ~2.3x", vsNext)
	}
	// Qualitative orderings of Section 7.1.
	meanRow := tb.Rows() - 1
	get := func(col string) float64 {
		for c, name := range tb.Cols {
			if name == col {
				return tb.Value(meanRow, c)
			}
		}
		t.Fatalf("missing column %s", col)
		return 0
	}
	if get("UM") >= 1 {
		t.Error("UM mean should be below 1x (ineffective)")
	}
	if get("memcpy") < 0.7 || get("memcpy") > 1.7 {
		t.Errorf("memcpy mean = %.2f, want ~1x (no improvement on average)", get("memcpy"))
	}
	if get("UM+hints") <= get("UM") {
		t.Error("hints should beat baseline UM")
	}
	// EQWP exceeds 4x under GPS (aggregate L2 capacity).
	for r := 0; r < tb.Rows(); r++ {
		if tb.RowLabel(r) == "eqwp" {
			for c, name := range tb.Cols {
				if name == "GPS" && tb.Value(r, c) < 4 {
					t.Errorf("EQWP GPS speedup = %.2f, want > 4", tb.Value(r, c))
				}
			}
		}
	}
	// GPS wins on every application.
	for r := 0; r < tb.Rows()-1; r++ {
		var gpsV, best float64
		for c, name := range tb.Cols {
			v := tb.Value(r, c)
			switch name {
			case "GPS":
				gpsV = v
			case "infiniteBW":
			default:
				if v > best {
					best = v
				}
			}
		}
		if gpsV < best {
			t.Errorf("%s: GPS %.2f below best baseline %.2f", tb.RowLabel(r), gpsV, best)
		}
	}
}

func TestFigure9SubscriberShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("GPS sweep")
	}
	tb, err := Figure9(context.Background(), quick())
	if err != nil {
		t.Fatal(err)
	}
	rows := map[string][]float64{}
	for r := 0; r < tb.Rows(); r++ {
		rows[tb.RowLabel(r)] = []float64{tb.Value(r, 0), tb.Value(r, 1), tb.Value(r, 2)}
	}
	// Jacobi: overwhelmingly 2-subscriber halo pages.
	if rows["jacobi"][0] < 90 {
		t.Errorf("jacobi 2-subscriber share = %.1f%%, want ~100%%", rows["jacobi"][0])
	}
	// ALS and CT: all-to-all.
	for _, app := range []string{"als", "ct"} {
		if rows[app][2] < 90 {
			t.Errorf("%s 4-subscriber share = %.1f%%, want ~100%%", app, rows[app][2])
		}
	}
	// SSSP: many-to-many mix.
	if rows["sssp"][1] == 0 && rows["sssp"][2] == 0 {
		t.Error("sssp should mix 3- and 4-subscriber pages")
	}
}

func TestFigure10TrafficShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("paradigm sweep")
	}
	tb, err := Figure10(context.Background(), quick())
	if err != nil {
		t.Fatal(err)
	}
	col := func(name string) map[string]float64 {
		out := map[string]float64{}
		vals := tb.Column(name)
		for r := 0; r < tb.Rows(); r++ {
			out[tb.RowLabel(r)] = vals[r]
		}
		return out
	}
	um, hints, rdl, gpsCol := col("UM"), col("UM+hints"), col("RDL"), col("GPS")
	// Section 7.2: UM exceeds memcpy except for Jacobi and CT.
	for _, app := range []string{"pagerank", "sssp", "als"} {
		if um[app] <= 1 {
			t.Errorf("%s: UM traffic %.2f should exceed memcpy", app, um[app])
		}
	}
	for _, app := range []string{"jacobi", "ct"} {
		if um[app] >= 1 {
			t.Errorf("%s: UM traffic %.2f should undercut memcpy (exception)", app, um[app])
		}
	}
	// Hints reduce traffic vs UM everywhere except diffusion.
	for app := range um {
		if app == "diffusion" {
			if hints[app] <= um[app] {
				t.Errorf("diffusion: hints %.2f should over-fetch beyond UM %.2f", hints[app], um[app])
			}
			continue
		}
		if hints[app] > um[app]*1.05 {
			t.Errorf("%s: hints %.2f should not exceed UM %.2f", app, hints[app], um[app])
		}
	}
	// RDL moves less than memcpy except ALS (re-fetches).
	for app, v := range rdl {
		if app == "als" {
			if v <= 1 {
				t.Errorf("als: RDL traffic %.2f should exceed memcpy", v)
			}
			continue
		}
		if v >= 1 {
			t.Errorf("%s: RDL traffic %.2f should undercut memcpy", app, v)
		}
	}
	// GPS never exceeds ~memcpy by much and crushes it for peer-to-peer apps.
	for _, app := range []string{"jacobi", "eqwp", "diffusion", "hit"} {
		if gpsCol[app] > 0.3 {
			t.Errorf("%s: GPS traffic %.2f should be far below memcpy", app, gpsCol[app])
		}
	}
}

func TestFigure11SubscriptionMatters(t *testing.T) {
	if testing.Short() {
		t.Skip("GPS sweep")
	}
	tb, err := Figure11(context.Background(), quick())
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < tb.Rows(); r++ {
		app := tb.RowLabel(r)
		noSub, withSub := tb.Value(r, 0), tb.Value(r, 1)
		if withSub < noSub-0.01 {
			t.Errorf("%s: subscription hurt (%.2f -> %.2f)", app, noSub, withSub)
		}
		switch app {
		case "als", "ct":
			// The Figure 11 exceptions: all-to-all sharing, no savings.
			if withSub > noSub*1.1 {
				t.Errorf("%s: subscription should barely help (%.2f -> %.2f)", app, noSub, withSub)
			}
		case "jacobi", "eqwp", "diffusion":
			if withSub < noSub*1.5 {
				t.Errorf("%s: subscription should be the primary factor (%.2f -> %.2f)", app, noSub, withSub)
			}
		}
	}
}

func TestFigure14QueueCurves(t *testing.T) {
	if testing.Short() {
		t.Skip("queue size sweep")
	}
	tb, err := Figure14(context.Background(), quick())
	if err != nil {
		t.Fatal(err)
	}
	last := len(Figure14Sizes) - 1
	for r := 0; r < tb.Rows(); r++ {
		app := tb.RowLabel(r)
		switch app {
		case "jacobi", "pagerank", "sssp", "als":
			for c := range Figure14Sizes {
				if tb.Value(r, c) > 1 {
					t.Errorf("%s: hit rate %.1f%% at size %d, want 0", app, tb.Value(r, c), Figure14Sizes[c])
				}
			}
		default: // ct, eqwp, diffusion, hit
			if tb.Value(r, last) < 20 {
				t.Errorf("%s: hit rate %.1f%% at %d entries, want substantial", app, tb.Value(r, last), Figure14Sizes[last])
			}
			// Monotone nondecreasing in queue size.
			for c := 1; c <= last; c++ {
				if tb.Value(r, c) < tb.Value(r, c-1)-0.5 {
					t.Errorf("%s: hit rate dropped from %.1f to %.1f at size %d",
						app, tb.Value(r, c-1), tb.Value(r, c), Figure14Sizes[c])
				}
			}
			// At 512 entries the curve has saturated (Section 7.4: "with 512
			// buffer entries all applications achieve near peak").
			i512 := indexOf(Figure14Sizes, 512)
			if tb.Value(r, last)-tb.Value(r, i512) > 2 {
				t.Errorf("%s: still climbing past 512 entries", app)
			}
		}
	}
}

func indexOf(xs []int, v int) int {
	for i, x := range xs {
		if x == v {
			return i
		}
	}
	return -1
}

func TestSensitivityGPSTLBSaturatesAt32(t *testing.T) {
	if testing.Short() {
		t.Skip("TLB sweep")
	}
	tb, err := SensitivityGPSTLB(context.Background(), quick())
	if err != nil {
		t.Fatal(err)
	}
	i32 := indexOf(GPSTLBSizes, 32)
	for r := 0; r < tb.Rows(); r++ {
		if tb.Value(r, i32) < 95 {
			t.Errorf("%s: GPS-TLB hit rate %.1f%% at 32 entries, want ~100%%",
				tb.RowLabel(r), tb.Value(r, i32))
		}
	}
}

func TestFigure4TransferPlacement(t *testing.T) {
	if testing.Short() {
		t.Skip("paradigm sweep")
	}
	tb, err := Figure4(context.Background(), quick())
	if err != nil {
		t.Fatal(err)
	}
	vals := map[string][3]float64{}
	for r := 0; r < tb.Rows(); r++ {
		vals[tb.RowLabel(r)] = [3]float64{tb.Value(r, 0), tb.Value(r, 1), tb.Value(r, 2)}
	}
	if v := vals["memcpy"]; v[0] != 0 || v[1] != 0 || v[2] == 0 {
		t.Errorf("memcpy should move data only at barriers: %v", v)
	}
	if v := vals["GPS"]; v[1] == 0 || v[2] != 0 {
		t.Errorf("GPS should move data proactively during kernels: %v", v)
	}
	if v := vals["RDL"]; v[0] == 0 {
		t.Errorf("RDL should move data on demand: %v", v)
	}
}

func TestValidateL2Trend(t *testing.T) {
	if testing.Short() {
		t.Skip("cache simulation sweep")
	}
	tb, err := ValidateL2(context.Background(), quick())
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < tb.Rows(); r++ {
		app := tb.RowLabel(r)
		sim1, sim4 := tb.Value(r, 0), tb.Value(r, 1)
		switch app {
		case "eqwp":
			// The paper's aggregate-L2 effect must emerge structurally.
			if sim4 < sim1+15 {
				t.Errorf("eqwp: structural hit rate %.1f%% -> %.1f%%, want a large rise", sim1, sim4)
			}
		case "jacobi", "ct", "diffusion", "hit":
			if sim4 <= sim1 {
				t.Errorf("%s: structural hit rate should rise with split (%.1f%% -> %.1f%%)", app, sim1, sim4)
			}
		}
	}
}

func TestClaims71Math(t *testing.T) {
	tb := stats.NewTable("", "app", "UM", "GPS", "infiniteBW")
	tb.AddRow("a", 1, 3, 3.2)
	tb.AddRow("mean", 1, 3, 3.2)
	g, f, n := Claims71(tb)
	if g != 3 || f != 3/3.2 || n != 3 {
		t.Fatalf("Claims71 = %v %v %v", g, f, n)
	}
}

func TestControlAppsCoincide(t *testing.T) {
	if testing.Short() {
		t.Skip("paradigm sweep")
	}
	// Section 6: for applications not bound by inter-GPU communication,
	// GPS matches the native version (and the infinite-bandwidth bound).
	tb, err := ControlApps(context.Background(), quick())
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < tb.Rows(); r++ {
		mc, gpsV, inf := tb.Value(r, 0), tb.Value(r, 1), tb.Value(r, 2)
		if gpsV < mc*0.95 || gpsV > inf*1.01 {
			t.Errorf("%s: GPS %.2f should coincide with native %.2f and bound %.2f",
				tb.RowLabel(r), gpsV, mc, inf)
		}
		if gpsV < 3.5 {
			t.Errorf("%s: compute-bound app should scale nearly linearly, got %.2f", tb.RowLabel(r), gpsV)
		}
	}
}

func TestProfilingModeAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("paradigm sweep")
	}
	tb, err := AblationProfilingMode(context.Background(), quick())
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < tb.Rows(); r++ {
		subDef, unsubDef, steadyRatio := tb.Value(r, 0), tb.Value(r, 1), tb.Value(r, 2)
		// Section 3.2/5.2: unsubscribed-by-default "is more expensive"
		// during profiling...
		if unsubDef <= subDef {
			t.Errorf("%s: unsubscribed-by-default (%.3f ms) should cost more than subscribed-by-default (%.3f ms)",
				tb.RowLabel(r), unsubDef, subDef)
		}
		// ...but both converge to the same steady state.
		if steadyRatio < 0.9 || steadyRatio > 1.1 {
			t.Errorf("%s: steady states diverge (ratio %.3f)", tb.RowLabel(r), steadyRatio)
		}
	}
}

func TestPipelinedMemcpyAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("paradigm sweep")
	}
	tb, err := AblationPipelinedMemcpy(context.Background(), quick())
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < tb.Rows(); r++ {
		mc, async, gpsV := tb.Value(r, 0), tb.Value(r, 1), tb.Value(r, 2)
		if async < mc-0.01 {
			t.Errorf("%s: pipelining made memcpy slower (%.2f -> %.2f)", tb.RowLabel(r), mc, async)
		}
		if gpsV < async-0.01 {
			t.Errorf("%s: GPS (%.2f) must still match or beat pipelined memcpy (%.2f)",
				tb.RowLabel(r), gpsV, async)
		}
	}
}

func TestExtendedFabricsOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("fabric sweep")
	}
	tb, err := ExtendedFabrics(context.Background(), quick())
	if err != nil {
		t.Fatal(err)
	}
	gpsCol := tb.Column("GPS")
	inf := tb.Column("infiniteBW")
	// GPS improves with richer fabrics and approaches the bound on the
	// crossbar.
	if !(gpsCol[0] <= gpsCol[1]+0.05 && gpsCol[1] <= gpsCol[2]+0.05) {
		t.Errorf("GPS should improve with fabric richness: %v", gpsCol)
	}
	if gpsCol[2] < inf[2]*0.9 {
		t.Errorf("GPS on NVSwitch = %.2f, want near the bound %.2f", gpsCol[2], inf[2])
	}
}

func TestValidateFabricModelAgreement(t *testing.T) {
	tb, err := ValidateFabricModel(context.Background(), 25)
	if err != nil {
		t.Fatal(err)
	}
	get := func(label string) float64 {
		for r := 0; r < tb.Rows(); r++ {
			if tb.RowLabel(r) == label {
				return tb.Value(r, 0)
			}
		}
		t.Fatalf("missing row %q", label)
		return 0
	}
	if get("trials") < 10 {
		t.Fatal("too few valid trials")
	}
	mean := get("mean ratio")
	if mean < 0.95 || mean > 1.15 {
		t.Fatalf("mean packet/fluid ratio = %.3f, want ~1", mean)
	}
	if get("worst |error| %") > 30 {
		t.Fatalf("worst error %.1f%% too large", get("worst |error| %"))
	}
}

func TestWriteReport(t *testing.T) {
	if testing.Short() {
		t.Skip("full report sweep")
	}
	var b strings.Builder
	if err := WriteReport(context.Background(), &b, quick()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# GPS reproduction report",
		"## Table 1",
		"## Figure 8",
		"Claims: GPS mean",
		"## Figure 14",
		"## L2 model validation",
		"## Fabric model validation",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q", want)
		}
	}
	if strings.Contains(out, "%!") {
		t.Fatal("report contains a formatting error")
	}
}

func TestFigure1MotivationShape(t *testing.T) {
	if testing.Short() {
		t.Skip("paradigm sweep")
	}
	tb, err := Figure1(context.Background(), quick())
	if err != nil {
		t.Fatal(err)
	}
	meanRow := tb.Rows() - 1
	pcie3, pcie6, inf := tb.Value(meanRow, 0), tb.Value(meanRow, 1), tb.Value(meanRow, 2)
	// Paper Figure 1: PCIe 3.0 below 1x on average, PCIe 6.0 ~2x, infinite ~3x.
	if pcie3 >= 1.1 {
		t.Errorf("PCIe 3.0 mean = %.2f, want < ~1 (poor strong scaling)", pcie3)
	}
	if pcie6 < 1.6 || pcie6 > 2.8 {
		t.Errorf("PCIe 6.0 mean = %.2f, want ~2", pcie6)
	}
	if inf < 2.8 || inf > 4 {
		t.Errorf("infinite mean = %.2f, want ~3", inf)
	}
	if !(pcie3 < pcie6 && pcie6 < inf) {
		t.Error("bandwidth ordering violated")
	}
}

func TestFigure12SixteenGPUClaims(t *testing.T) {
	if testing.Short() {
		t.Skip("16-GPU sweep")
	}
	tb, err := Figure12(context.Background(), quick())
	if err != nil {
		t.Fatal(err)
	}
	gpsMean, frac := Claims73(tb)
	// Paper: 7.9x mean, over 80% of the opportunity.
	if gpsMean < 6.5 || gpsMean > 9 {
		t.Errorf("16-GPU GPS mean = %.2f, want ~7.9", gpsMean)
	}
	if frac < 0.8 {
		t.Errorf("opportunity captured = %.1f%%, want > 80%%", frac*100)
	}
}

func TestFigure13BandwidthSensitivity(t *testing.T) {
	if testing.Short() {
		t.Skip("fabric sweep")
	}
	tb, err := Figure13(context.Background(), quick())
	if err != nil {
		t.Fatal(err)
	}
	gpsCol := tb.Column("GPS")
	infCol := tb.Column("infiniteBW")
	mcCol := tb.Column("memcpy")
	// GPS improves monotonically with bandwidth and approaches the bound.
	for i := 1; i < len(gpsCol); i++ {
		if gpsCol[i] < gpsCol[i-1]-0.01 {
			t.Errorf("GPS regressed with more bandwidth: %v", gpsCol)
		}
	}
	if gpsCol[len(gpsCol)-1] < infCol[len(infCol)-1]*0.95 {
		t.Errorf("GPS at PCIe 6.0 = %.2f, want near the %.2f bound",
			gpsCol[len(gpsCol)-1], infCol[len(infCol)-1])
	}
	// memcpy improves too but stays short of GPS everywhere.
	for i := range mcCol {
		if mcCol[i] >= gpsCol[i] {
			t.Errorf("row %d: memcpy %.2f should trail GPS %.2f", i, mcCol[i], gpsCol[i])
		}
	}
	// The infinite bound is fabric-independent.
	for i := 1; i < len(infCol); i++ {
		if math.Abs(infCol[i]-infCol[0]) > 0.01 {
			t.Errorf("infinite bound varies with fabric: %v", infCol)
		}
	}
}

func TestFigure2LoadStorePaths(t *testing.T) {
	if testing.Short() {
		t.Skip("paradigm sweep")
	}
	tb, err := Figure2(context.Background(), quick())
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < tb.Rows(); r++ {
		gpsDemand, gpsPush := tb.Value(r, 0), tb.Value(r, 1)
		rdlDemand := tb.Value(r, 2)
		// Figure 2: GPS loads resolve locally — its fabric traffic is
		// (almost) entirely proactive store pushes.
		if gpsDemand > 5 {
			t.Errorf("%s: GPS demand traffic %.1f%%, want ~0 (loads are local)", tb.RowLabel(r), gpsDemand)
		}
		if gpsPush < 95 {
			t.Errorf("%s: GPS push traffic %.1f%%, want ~100", tb.RowLabel(r), gpsPush)
		}
		// RDL is the converse: loads cross on demand.
		if rdlDemand < 95 {
			t.Errorf("%s: RDL demand traffic %.1f%%, want ~100", tb.RowLabel(r), rdlDemand)
		}
	}
}
