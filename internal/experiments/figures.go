package experiments

import (
	"context"
	"fmt"
	"strings"

	"gps/internal/engine"
	"gps/internal/interconnect"
	"gps/internal/paradigm"
	"gps/internal/stats"
	"gps/internal/workload"
)

// Figure1 reproduces the motivation figure: 4-GPU strong scaling of the
// conventional bulk-synchronous (memcpy) paradigm under PCIe 3.0, projected
// PCIe 6.0 and an infinite-bandwidth interconnect. Insufficient inter-GPU
// bandwidth leaves most applications below 1x on PCIe 3.0 while the same
// code reaches ~3x with free transfers.
func Figure1(ctx context.Context, opt Options) (*stats.Table, error) {
	opt = opt.withDefaults()
	tb := stats.NewTable(
		"Figure 1: 4-GPU strong scaling of the conventional paradigm vs interconnect",
		"app", "PCIe3.0", "PCIe6.0", "InfiniteBW")
	configs := []struct {
		kind paradigm.Kind
		fab  *interconnect.Fabric
	}{
		{paradigm.KindMemcpy, interconnect.PCIeTree(4, interconnect.PCIe3)},
		{paradigm.KindMemcpy, interconnect.PCIeTree(4, interconnect.PCIe6)},
		{paradigm.KindInfinite, interconnect.Infinite(4)},
	}
	apps := workload.Names()
	var cells []Cell
	for _, app := range apps {
		for _, c := range configs {
			cells = append(cells, Cell{App: app, Kind: c.kind, GPUs: 4, Fab: c.fab, Opt: opt, Cfg: paradigm.DefaultConfig()})
		}
	}
	bases, results, err := Default.RunMatrixWithBaselines(ctx, apps, opt, paradigm.DefaultConfig(), cells)
	if err != nil {
		return nil, err
	}
	sums := [3]float64{}
	idx := 0
	for _, app := range apps {
		row := [3]float64{}
		for i := range configs {
			row[i] = speedupOf(bases[app], results[idx].Report)
			sums[i] += row[i]
			idx++
		}
		tb.AddRow(app, row[0], row[1], row[2])
	}
	n := float64(len(apps))
	tb.AddRow("mean", sums[0]/n, sums[1]/n, sums[2]/n)
	return tb, nil
}

// Figure3 reproduces the local vs remote bandwidth comparison across five
// GPU platform generations.
func Figure3() *stats.Table {
	tb := stats.NewTable(
		"Figure 3: local and remote bandwidths across GPU platforms (GB/s)",
		"platform", "local", "remote", "gap")
	for _, p := range interconnect.Platforms() {
		tb.AddRow(fmt.Sprintf("%s/%s/%s", p.Name, p.GPUArch, p.Fabric),
			p.LocalBW/1e9, p.RemoteBW/1e9, p.Gap())
	}
	return tb
}

// Figure4 reproduces the qualitative transfer-pattern comparison: how much
// of each paradigm's interconnect traffic moves during the compute window
// (overlapped) versus the barrier window (serialized), measured on Jacobi.
// Demand paradigms (RDL/UM) transfer on demand during kernels but stall;
// memcpy transfers bulk-synchronously at barriers; GPS pushes fine-grained
// updates proactively during the kernels.
func Figure4(ctx context.Context, opt Options) (*stats.Table, error) {
	opt = opt.withDefaults()
	tb := stats.NewTable(
		"Figure 4: transfer placement per paradigm (jacobi, bytes by window)",
		"paradigm", "demand(MB)", "proactive(MB)", "barrier(MB)")
	kinds := []paradigm.Kind{paradigm.KindUM, paradigm.KindRDL, paradigm.KindMemcpy, paradigm.KindGPS}
	var cells []Cell
	for _, kind := range kinds {
		cells = append(cells, Cell{App: "jacobi", Kind: kind, GPUs: 4, Fab: MainFabric(4), Opt: opt, Cfg: paradigm.DefaultConfig()})
	}
	results, err := Default.RunMatrix(ctx, cells)
	if err != nil {
		return nil, err
	}
	for idx, kind := range kinds {
		res := results[idx].Result
		var demand, push, bulk float64
		for _, ph := range res.Phases {
			if ph.Index < res.Meta.ProfilePhases {
				continue
			}
			for i := range ph.Profiles {
				p := &ph.Profiles[i]
				for _, b := range p.RemoteRead {
					demand += float64(b)
				}
				for _, b := range p.Push {
					push += float64(b)
				}
				for _, b := range p.Bulk {
					bulk += float64(b)
				}
			}
		}
		tb.AddRow(kind.String(), demand/1e6, push/1e6, bulk/1e6)
	}
	return tb, nil
}

// Figure9 reproduces the subscriber distribution of shared pages: among
// GPS pages that retain more than one subscriber after profiling, the
// percentage with 2, 3 and 4 subscribers.
func Figure9(ctx context.Context, opt Options) (*stats.Table, error) {
	opt = opt.withDefaults()
	tb := stats.NewTable(
		"Figure 9: subscriber distribution for shared application pages (%)",
		"app", "2 subs", "3 subs", "4 subs")
	apps := workload.Names()
	var cells []Cell
	for _, app := range apps {
		cells = append(cells, Cell{App: app, Kind: paradigm.KindGPS, GPUs: 4, Fab: MainFabric(4), Opt: opt, Cfg: paradigm.DefaultConfig()})
	}
	results, err := Default.RunMatrix(ctx, cells)
	if err != nil {
		return nil, err
	}
	for idx, app := range apps {
		res := results[idx].Result
		h := stats.Histogram{}
		for k, c := range res.SubscriberHist {
			if k >= 2 {
				h[k] = c
			}
		}
		tb.AddRow(app, h.Fraction(2)*100, h.Fraction(3)*100, h.Fraction(4)*100)
	}
	return tb, nil
}

// Figure10 reproduces the interconnect traffic comparison: total data moved
// over the fabric in the steady state, normalized to the memcpy paradigm
// (which copies all written shared data to every GPU exactly once per
// barrier). Lower is better.
func Figure10(ctx context.Context, opt Options) (*stats.Table, error) {
	opt = opt.withDefaults()
	kinds := []paradigm.Kind{paradigm.KindUM, paradigm.KindUMHints, paradigm.KindRDL, paradigm.KindGPS}
	cols := make([]string, len(kinds))
	for i, k := range kinds {
		cols[i] = k.String()
	}
	tb := stats.NewTable(
		"Figure 10: interconnect data moved, normalized to memcpy (lower is better)",
		"app", cols...)
	apps := workload.Names()
	var cells []Cell
	for _, app := range apps {
		cells = append(cells, Cell{App: app, Kind: paradigm.KindMemcpy, GPUs: 4, Fab: MainFabric(4), Opt: opt, Cfg: paradigm.DefaultConfig()})
		for _, k := range kinds {
			cells = append(cells, Cell{App: app, Kind: k, GPUs: 4, Fab: MainFabric(4), Opt: opt, Cfg: paradigm.DefaultConfig()})
		}
	}
	results, err := Default.RunMatrix(ctx, cells)
	if err != nil {
		return nil, err
	}
	idx := 0
	for _, app := range apps {
		mem := results[idx].Result
		idx++
		memBytes := mem.InterconnectBytes(mem.Meta.ProfilePhases)
		if memBytes == 0 {
			return nil, fmt.Errorf("experiments: %s memcpy moved no data", app)
		}
		row := make([]float64, len(kinds))
		for i := range kinds {
			res := results[idx].Result
			idx++
			row[i] = float64(res.InterconnectBytes(res.Meta.ProfilePhases)) / float64(memBytes)
		}
		tb.AddRow(app, row...)
	}
	return tb, nil
}

// Figure11 reproduces the subscription ablation: GPS speedup with and
// without automatic subscription tracking (all-to-all replication).
func Figure11(ctx context.Context, opt Options) (*stats.Table, error) {
	opt = opt.withDefaults()
	tb := stats.NewTable(
		"Figure 11: performance sensitivity to subscription (4-GPU speedup)",
		"app", "GPS w/o subscription", "GPS with subscription")
	apps := workload.Names()
	var cells []Cell
	for _, app := range apps {
		for _, k := range []paradigm.Kind{paradigm.KindGPSNoSub, paradigm.KindGPS} {
			cells = append(cells, Cell{App: app, Kind: k, GPUs: 4, Fab: MainFabric(4), Opt: opt, Cfg: paradigm.DefaultConfig()})
		}
	}
	bases, results, err := Default.RunMatrixWithBaselines(ctx, apps, opt, paradigm.DefaultConfig(), cells)
	if err != nil {
		return nil, err
	}
	for i, app := range apps {
		tb.AddRow(app,
			speedupOf(bases[app], results[2*i].Report),
			speedupOf(bases[app], results[2*i+1].Report))
	}
	return tb, nil
}

// Render renders a table plus optional derived claim lines.
func Render(tb *stats.Table, extra ...string) string {
	var b strings.Builder
	b.WriteString(tb.String())
	for _, e := range extra {
		b.WriteString(e)
		b.WriteByte('\n')
	}
	return b.String()
}

// steadyBytes is a helper for tests: steady-state interconnect bytes.
func steadyBytes(res *engine.Result) uint64 {
	return res.InterconnectBytes(res.Meta.ProfilePhases)
}

// Figure2 reproduces the load/store path census behind the paper's Figure 2
// schematic: under GPS, loads to GPS pages resolve from local memory while
// stores broadcast to the subscribers' replicas; under the conventional
// demand paradigm (RDL), loads to shared data cross the interconnect. The
// table reports, per application in the steady state, the fraction of
// interconnect traffic that is demand loads versus proactive store pushes.
func Figure2(ctx context.Context, opt Options) (*stats.Table, error) {
	opt = opt.withDefaults()
	tb := stats.NewTable(
		"Figure 2: where traffic crosses the fabric (steady state, % of bytes)",
		"app", "GPS demand%", "GPS push%", "RDL demand%", "RDL push%")
	tb.Fmt = "%6.1f"
	apps := workload.Names()
	kinds := []paradigm.Kind{paradigm.KindGPS, paradigm.KindRDL}
	var cells []Cell
	for _, app := range apps {
		for _, kind := range kinds {
			cells = append(cells, Cell{App: app, Kind: kind, GPUs: 4, Fab: MainFabric(4), Opt: opt, Cfg: paradigm.DefaultConfig()})
		}
	}
	results, err := Default.RunMatrix(ctx, cells)
	if err != nil {
		return nil, err
	}
	idx := 0
	for _, app := range apps {
		row := make([]float64, 0, 4)
		for range kinds {
			res := results[idx].Result
			idx++
			var demand, push float64
			for _, ph := range res.Phases {
				if ph.Index < res.Meta.ProfilePhases {
					continue
				}
				for i := range ph.Profiles {
					p := &ph.Profiles[i]
					for _, b := range p.RemoteRead {
						demand += float64(b)
					}
					for _, b := range p.Push {
						push += float64(b)
					}
					for _, b := range p.Bulk {
						push += float64(b)
					}
				}
			}
			total := demand + push
			if total == 0 {
				total = 1
			}
			row = append(row, demand/total*100, push/total*100)
		}
		tb.AddRow(app, row...)
	}
	return tb, nil
}
