// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 7) from the simulator. Each FigureN/TableN function
// returns a rendered stats.Table whose rows/series mirror what the paper
// plots; EXPERIMENTS.md records the measured values against the paper's.
package experiments

import (
	"context"
	"fmt"

	"gps/internal/engine"
	"gps/internal/interconnect"
	"gps/internal/paradigm"
	"gps/internal/stats"
	"gps/internal/timing"
	"gps/internal/workload"
)

// Options scales the experiment suite. The zero value gives the defaults
// used by EXPERIMENTS.md.
type Options struct {
	Iterations int   // execution iterations per app (default 4)
	Scale      int   // problem size multiplier (default 1)
	Seed       int64 // trace seed (default 1)
	Quick      bool  // shrink iteration counts for smoke tests
}

func (o Options) withDefaults() Options {
	if o.Iterations == 0 {
		o.Iterations = 4
	}
	if o.Quick && o.Iterations > 2 {
		o.Iterations = 2
	}
	if o.Scale == 0 {
		o.Scale = 1
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

func (o Options) workloadConfig(gpus int) workload.Config {
	return workload.Config{NumGPUs: gpus, Iterations: o.Iterations, Scale: o.Scale, Seed: o.Seed}
}

// MainFabric is the interconnect used for the headline figures (8-11). The
// paper's 4-GPU evaluation spans PCIe generations (Figure 13); the headline
// GPS result — ~3.0x of a ~3.2x opportunity — sits at the middle of the
// sweep, so the suite uses PCIe 4.0 for its main tables.
func MainFabric(gpus int) *interconnect.Fabric {
	return interconnect.PCIeTree(gpus, interconnect.PCIe4)
}

// runOne replays app's trace under kind on gpus devices and prices it on
// fab, going through the default runner's trace cache. Returns the timing
// report and the structural result.
func runOne(app string, kind paradigm.Kind, gpus int, fab *interconnect.Fabric,
	opt Options, pcfg paradigm.Config) (*timing.Report, *engine.Result, error) {
	return Default.RunCell(Cell{App: app, Kind: kind, GPUs: gpus, Fab: fab, Opt: opt, Cfg: pcfg})
}

// baseline returns the single-GPU runtime of app (no interconnect at all),
// memoized by the default runner.
func baseline(app string, opt Options, pcfg paradigm.Config) (float64, error) {
	return Default.Baseline(app, opt, pcfg)
}

// speedupOf is the speedup of a run's steady state over a baseline runtime.
func speedupOf(base float64, rep *timing.Report) float64 {
	return stats.Speedup(base, rep.SteadyTotal())
}

// Figure8 reproduces the headline comparison: 4-GPU speedup over one GPU
// for UM, UM+hints, RDL, memcpy, GPS and the infinite-bandwidth bound,
// per application plus the arithmetic mean row.
func Figure8(ctx context.Context, opt Options) (*stats.Table, error) {
	opt = opt.withDefaults()
	kinds := paradigm.Figure8Kinds()
	cols := make([]string, len(kinds))
	for i, k := range kinds {
		cols[i] = k.String()
	}
	tb := stats.NewTable("Figure 8: 4-GPU speedup of different paradigms (relative to 1 GPU)",
		"app", cols...)

	apps := workload.Names()
	var cells []Cell
	for _, app := range apps {
		for _, k := range kinds {
			fab := MainFabric(4)
			if k == paradigm.KindInfinite {
				fab = interconnect.Infinite(4)
			}
			cells = append(cells, Cell{App: app, Kind: k, GPUs: 4, Fab: fab, Opt: opt, Cfg: paradigm.DefaultConfig()})
		}
	}
	bases, results, err := Default.RunMatrixWithBaselines(ctx, apps, opt, paradigm.DefaultConfig(), cells)
	if err != nil {
		return nil, err
	}

	sums := make([]float64, len(kinds))
	idx := 0
	for _, app := range apps {
		row := make([]float64, len(kinds))
		for i := range kinds {
			row[i] = speedupOf(bases[app], results[idx].Report)
			sums[i] += row[i]
			idx++
		}
		tb.AddRow(app, row...)
	}
	mean := make([]float64, len(kinds))
	for i := range sums {
		mean[i] = sums[i] / float64(len(apps))
	}
	tb.AddRow("mean", mean...)
	return tb, nil
}

// Claims71 derives the Section 7.1 headline claims from a Figure 8 table:
// GPS's mean speedup, the fraction of the infinite-bandwidth opportunity it
// captures, and its advantage over the next best paradigm.
func Claims71(tb *stats.Table) (gpsMean, opportunityFrac, vsNextBest float64) {
	meanRow := tb.Rows() - 1
	var gps, inf, best float64
	for c, name := range tb.Cols {
		v := tb.Value(meanRow, c)
		switch name {
		case "GPS":
			gps = v
		case "infiniteBW":
			inf = v
		default:
			if v > best {
				best = v
			}
		}
	}
	return gps, gps / inf, gps / best
}

// Table2 renders the application suite.
func Table2() string {
	tb := fmt.Sprintf("%-10s  %-18s  %s\n", "app", "pattern", "description")
	tb += fmt.Sprintf("%s\n", "------------------------------------------------------------------")
	for _, s := range workload.Catalog() {
		tb += fmt.Sprintf("%-10s  %-18s  %s\n", s.Name, s.Pattern, s.Description)
	}
	return tb
}
