package experiments

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"gps/internal/paradigm"
)

// TestRunnerCacheCounters is the memoization regression test: within one
// Runner, a trace is built exactly once per (app, workload config) and a
// baseline simulated exactly once per (app, options, paradigm config), no
// matter how many cells ask for them.
func TestRunnerCacheCounters(t *testing.T) {
	if testing.Short() {
		t.Skip("full simulation")
	}
	r := NewRunner(4)
	opt := quick()
	kinds := []paradigm.Kind{paradigm.KindGPS, paradigm.KindUM, paradigm.KindMemcpy}
	for _, k := range kinds {
		if _, err := r.Speedup("jacobi", k, 4, MainFabric(4), opt, paradigm.DefaultConfig()); err != nil {
			t.Fatal(err)
		}
	}
	s := r.CacheStats()
	// Two distinct workload configs: the 1-GPU baseline trace and the 4-GPU
	// matrix trace. Everything else must be a hit.
	if s.TraceBuilds != 2 {
		t.Errorf("TraceBuilds = %d, want 2 (one per workload config)", s.TraceBuilds)
	}
	if want := uint64(len(kinds) - 1); s.TraceHits != want {
		t.Errorf("TraceHits = %d, want %d", s.TraceHits, want)
	}
	if s.BaselineRuns != 1 {
		t.Errorf("BaselineRuns = %d, want 1", s.BaselineRuns)
	}
	// One structural replay per kind plus the single baseline replay.
	if want := uint64(len(kinds) + 1); s.EngineRuns != want {
		t.Errorf("EngineRuns = %d, want %d", s.EngineRuns, want)
	}
	if want := uint64(len(kinds) - 1); s.BaselineHits != want {
		t.Errorf("BaselineHits = %d, want %d", s.BaselineHits, want)
	}
	if s.TraceBytes == 0 {
		t.Error("TraceBytes = 0, want resident traces accounted")
	}
}

// TestRunnerBaselineMatrixCounters drives the same assertion through the
// batched entry point the figures use.
func TestRunnerBaselineMatrixCounters(t *testing.T) {
	if testing.Short() {
		t.Skip("full simulation")
	}
	r := NewRunner(4)
	opt := quick()
	apps := []string{"jacobi", "sssp"}
	var cells []Cell
	for _, app := range apps {
		for _, k := range []paradigm.Kind{paradigm.KindGPS, paradigm.KindRDL} {
			cells = append(cells, Cell{App: app, Kind: k, GPUs: 4, Fab: MainFabric(4), Opt: opt, Cfg: paradigm.DefaultConfig()})
		}
	}
	bases, results, err := r.RunMatrixWithBaselines(context.Background(), apps, opt, paradigm.DefaultConfig(), cells)
	if err != nil {
		t.Fatal(err)
	}
	if len(bases) != len(apps) || len(results) != len(cells) {
		t.Fatalf("got %d bases / %d results, want %d / %d", len(bases), len(results), len(apps), len(cells))
	}
	s := r.CacheStats()
	// Per app: one 1-GPU trace and one 4-GPU trace.
	if want := uint64(2 * len(apps)); s.TraceBuilds != want {
		t.Errorf("TraceBuilds = %d, want %d", s.TraceBuilds, want)
	}
	if want := uint64(len(apps)); s.BaselineRuns != want {
		t.Errorf("BaselineRuns = %d, want %d", s.BaselineRuns, want)
	}
}

// TestRunnerTraceEviction forces the budget below one trace's footprint and
// checks the LRU path runs without disturbing results.
func TestRunnerTraceEviction(t *testing.T) {
	if testing.Short() {
		t.Skip("full simulation")
	}
	r := NewRunner(2)
	r.SetTraceBudget(1) // evict everything but the entry in use
	opt := quick()
	for _, app := range []string{"jacobi", "sssp", "jacobi"} {
		if _, err := r.Trace(app, opt.withDefaults().workloadConfig(4)); err != nil {
			t.Fatal(err)
		}
	}
	s := r.CacheStats()
	if s.TraceEvictions == 0 {
		t.Errorf("TraceEvictions = 0, want eviction under a 1-byte budget (stats %+v)", s)
	}
	// The second jacobi request rebuilds after eviction: 3 builds, 0 hits.
	if s.TraceBuilds != 3 {
		t.Errorf("TraceBuilds = %d, want 3 (rebuild after eviction)", s.TraceBuilds)
	}
}

// TestParallelForLowestError checks error determinism: whichever worker
// count, the reported error is the one from the lowest failing index.
func TestParallelForLowestError(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		r := NewRunner(workers)
		err := r.parallelFor(context.Background(), 16, func(i int) error {
			if i == 11 || i == 3 {
				return fmt.Errorf("cell %d failed", i)
			}
			return nil
		})
		if err == nil || err.Error() != "cell 3 failed" {
			t.Errorf("workers=%d: err = %v, want cell 3 failed", workers, err)
		}
	}
	if err := NewRunner(4).parallelFor(context.Background(), 4, func(int) error { return nil }); err != nil {
		t.Errorf("all-ok parallelFor returned %v", err)
	}
	want := errors.New("x")
	if err := NewRunner(4).parallelFor(context.Background(), 1, func(int) error { return want }); err != want {
		t.Errorf("single-job parallelFor returned %v", err)
	}
}

// TestFigure8ParallelDeterminism renders Figure 8 serially and on 2- and
// 8-worker pools with cold caches each time: the tables must be
// byte-identical. Run under -race this also exercises concurrent trace
// builds and cache sharing.
func TestFigure8ParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("full paradigm sweep")
	}
	prev := Default.Workers()
	defer SetParallelism(prev)
	render := func(workers int) string {
		SetParallelism(workers)
		Default.ResetCaches()
		tb, err := Figure8(context.Background(), quick())
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return tb.String()
	}
	serial := render(1)
	for _, workers := range []int{2, 8} {
		if got := render(workers); got != serial {
			t.Errorf("workers=%d output differs from serial:\n--- serial ---\n%s\n--- parallel ---\n%s",
				workers, serial, got)
		}
	}
}

// TestFigure13ParallelDeterminism repeats the determinism check on the
// interconnect-generation sweep, whose matrix spans several fabrics and
// trace configurations.
func TestFigure13ParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("full generation sweep")
	}
	prev := Default.Workers()
	defer SetParallelism(prev)
	render := func(workers int) string {
		SetParallelism(workers)
		Default.ResetCaches()
		tb, err := Figure13(context.Background(), quick())
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return tb.String()
	}
	serial := render(1)
	if got := render(4); got != serial {
		t.Errorf("4-worker output differs from serial:\n--- serial ---\n%s\n--- parallel ---\n%s", serial, got)
	}
}

// TestRunMatrixPreCanceled: a canceled context stops the matrix before any
// cell is issued — no traces built, no replays run.
func TestRunMatrixPreCanceled(t *testing.T) {
	r := NewRunner(4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cells := []Cell{{App: "jacobi", Kind: paradigm.KindGPS, GPUs: 2, Fab: MainFabric(2), Opt: quick(), Cfg: paradigm.DefaultConfig()}}
	if _, err := r.RunMatrix(ctx, cells); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunMatrix on canceled ctx = %v, want context.Canceled", err)
	}
	if s := r.CacheStats(); s.TraceBuilds != 0 || s.EngineRuns != 0 {
		t.Errorf("canceled matrix still simulated: %+v", s)
	}
	if _, _, err := r.RunCellCtx(ctx, cells[0]); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunCellCtx on canceled ctx = %v, want context.Canceled", err)
	}
}

// TestParallelForCancellation: canceling mid-flight stops further indices
// from being issued and surfaces the context error.
func TestParallelForCancellation(t *testing.T) {
	r := NewRunner(1) // serial: deterministic issue order
	ctx, cancel := context.WithCancel(context.Background())
	ran := 0
	err := r.parallelFor(ctx, 100, func(i int) error {
		ran++
		if i == 2 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("parallelFor after cancel = %v, want context.Canceled", err)
	}
	if ran != 3 {
		t.Errorf("ran %d cells after cancel at index 2, want 3", ran)
	}
}

// TestCellObserverCounts: the context observer fires a start event and a
// completion event for every cell, which is how the service reports job
// progress and per-cell timing.
func TestCellObserverCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("full simulation")
	}
	r := NewRunner(2)
	opt := quick()
	cells := []Cell{
		{App: "jacobi", Kind: paradigm.KindGPS, GPUs: 2, Fab: MainFabric(2), Opt: opt, Cfg: paradigm.DefaultConfig()},
		{App: "jacobi", Kind: paradigm.KindMemcpy, GPUs: 2, Fab: MainFabric(2), Opt: opt, Cfg: paradigm.DefaultConfig()},
	}
	var starts, done atomic.Uint64
	var mu sync.Mutex
	open := map[int]bool{} // started, not yet completed
	ctx := WithCellObserver(context.Background(), func(ev CellEvent) {
		if ev.Desc == "" || ev.Desc == "cell" {
			t.Errorf("event %+v has no cell description", ev)
		}
		mu.Lock()
		defer mu.Unlock()
		if ev.Start {
			starts.Add(1)
			open[ev.Index] = true
			return
		}
		if !open[ev.Index] {
			t.Errorf("completion for cell %d without a start event", ev.Index)
		}
		delete(open, ev.Index)
		if ev.Err == nil && ev.Dur <= 0 {
			t.Errorf("completed cell %d reported non-positive duration %v", ev.Index, ev.Dur)
		}
		done.Add(1)
	})
	if _, err := r.RunMatrix(ctx, cells); err != nil {
		t.Fatal(err)
	}
	if starts.Load() != uint64(len(cells)) || done.Load() != uint64(len(cells)) {
		t.Errorf("observer fired %d starts / %d completions, want %d of each",
			starts.Load(), done.Load(), len(cells))
	}
	if len(open) != 0 {
		t.Errorf("%d cells started but never completed", len(open))
	}
}
