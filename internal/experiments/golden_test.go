package experiments

import (
	"context"
	"os"
	"path/filepath"
	"testing"
)

// The golden files were rendered by the map-backed implementation of the
// paradigm models, page tables and sharing scanner before the slab-backed
// hot path landed. The figures must stay byte-identical: the dense storage
// is an optimization, not a modeling change.
func TestRenderedTablesMatchMapBasedGolden(t *testing.T) {
	old := Parallelism()
	SetParallelism(1)
	defer SetParallelism(old)
	opt := Options{Iterations: 2, Quick: true}

	for _, tc := range []struct {
		golden string
		render func(context.Context) (string, error)
	}{
		{"figure8_quick.golden", func(ctx context.Context) (string, error) {
			tb, err := Figure8(ctx, opt)
			if err != nil {
				return "", err
			}
			return tb.String(), nil
		}},
		{"pagesize_quick.golden", func(ctx context.Context) (string, error) {
			tb, err := SensitivityPageSize(ctx, opt)
			if err != nil {
				return "", err
			}
			return tb.String(), nil
		}},
	} {
		t.Run(tc.golden, func(t *testing.T) {
			want, err := os.ReadFile(filepath.Join("testdata", tc.golden))
			if err != nil {
				t.Fatal(err)
			}
			got, err := tc.render(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			if got != string(want) {
				t.Fatalf("rendered table deviates from the map-based golden\n--- got ---\n%s\n--- want ---\n%s", got, want)
			}
		})
	}
}
