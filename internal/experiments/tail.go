package experiments

import (
	"context"
	"sync"
	"time"
)

// TailTracker records the slowest completed cell seen by a matrix run. The
// report surfaces it per section: at any worker count the section's wall
// clock is bounded below by its slowest cell, so this is the number replay
// sharding has to shrink. Safe for concurrent use; the zero value is ready.
type TailTracker struct {
	mu      sync.Mutex
	max     time.Duration
	slowest string
}

// Observe is a CellObserver; install it with ChainCellObserver.
func (t *TailTracker) Observe(ev CellEvent) {
	if ev.Start {
		return
	}
	t.mu.Lock()
	if ev.Dur > t.max {
		t.max = ev.Dur
		t.slowest = ev.Desc
	}
	t.mu.Unlock()
}

// Max returns the slowest completed cell's duration and description.
func (t *TailTracker) Max() (time.Duration, string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.max, t.slowest
}

// ChainCellObserver installs fn without displacing an observer already on
// ctx: both receive every event, the pre-existing observer first. The gpsd
// job runner installs its progress observer on the whole job; Execute chains
// a per-section tail tracker on top.
func ChainCellObserver(ctx context.Context, fn CellObserver) context.Context {
	if prev := cellObserver(ctx); prev != nil {
		inner := fn
		fn = func(ev CellEvent) {
			prev(ev)
			inner(ev)
		}
	}
	return WithCellObserver(ctx, fn)
}
