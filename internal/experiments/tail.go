package experiments

import (
	"context"
	"sort"
	"sync"
	"time"
)

// TailTracker records every completed cell duration seen by a matrix run,
// plus the slowest cell's identity. The report surfaces it per section: at
// any worker count the section's wall clock is bounded below by its slowest
// cell, and the p50/p99 spread shows how heavy that tail is relative to the
// typical cell. Safe for concurrent use; the zero value is ready.
type TailTracker struct {
	mu      sync.Mutex
	max     time.Duration
	slowest string
	durs    []time.Duration
}

// Observe is a CellObserver; install it with ChainCellObserver.
func (t *TailTracker) Observe(ev CellEvent) {
	if ev.Start {
		return
	}
	t.mu.Lock()
	t.durs = append(t.durs, ev.Dur)
	if ev.Dur > t.max {
		t.max = ev.Dur
		t.slowest = ev.Desc
	}
	t.mu.Unlock()
}

// Max returns the slowest completed cell's duration and description.
func (t *TailTracker) Max() (time.Duration, string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.max, t.slowest
}

// Count reports how many cell completions were observed.
func (t *TailTracker) Count() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.durs)
}

// Quantiles returns the exact p50 and p99 cell durations (nearest-rank over
// every observed completion; zero when nothing completed). Cells per section
// number in the dozens, so exact order statistics are cheap — no bucketing.
func (t *TailTracker) Quantiles() (p50, p99 time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.durs) == 0 {
		return 0, 0
	}
	sorted := append([]time.Duration(nil), t.durs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rank := func(p float64) time.Duration {
		idx := int(p*float64(len(sorted))+0.5) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= len(sorted) {
			idx = len(sorted) - 1
		}
		return sorted[idx]
	}
	return rank(0.50), rank(0.99)
}

// ChainCellObserver installs fn without displacing an observer already on
// ctx: both receive every event, the pre-existing observer first. The gpsd
// job runner installs its progress observer on the whole job; Execute chains
// a per-section tail tracker on top.
func ChainCellObserver(ctx context.Context, fn CellObserver) context.Context {
	if prev := cellObserver(ctx); prev != nil {
		inner := fn
		fn = func(ev CellEvent) {
			prev(ev)
			inner(ev)
		}
	}
	return WithCellObserver(ctx, fn)
}
