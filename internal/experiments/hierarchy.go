package experiments

import (
	"context"
	"strconv"

	"gps/internal/interconnect"
	"gps/internal/paradigm"
	"gps/internal/stats"
)

// hierarchyApps is the application subset of the large-system sweep: one
// representative of each communication pattern in Table 2 (peer-to-peer
// stencil, peer-to-peer graph, all-to-all, plus HIT — the heaviest trace
// and the cell that bounds gpsbench tail latency).
var hierarchyApps = []string{"jacobi", "pagerank", "als", "hit"}

// hierarchyGPUCounts is the system-size axis: the paper's largest 16-GPU
// configuration plus the 32- and 64-GPU pods the simulator can now reach.
var hierarchyGPUCounts = []int{16, 32, 64}

// FigureHierarchy extends the scaling study past the paper's 16 GPUs: the
// geometric-mean speedup of each paradigm at 16/32/64 GPUs on a hierarchical
// NVSwitch fabric (pods of 8 A100-class GPUs at 300 GB/s, joined by a
// 2x-oversubscribed spine — the multi-level topology of DGX pods). Cross-pod
// traffic contends on the pod trunks, so paradigms that send less (GPS after
// unsubscription) separate further from broadcast-everything as the pod
// count grows.
func FigureHierarchy(ctx context.Context, opt Options) (*stats.Table, error) {
	opt = opt.withDefaults()
	kinds := paradigm.Figure8Kinds()
	cols := make([]string, len(kinds))
	for i, k := range kinds {
		cols[i] = k.String()
	}
	tb := stats.NewTable(
		"Hierarchical scaling: 16/32/64 GPUs on multi-level NVSwitch (geomean speedup over 1 GPU)",
		"gpus", cols...)

	apps := hierarchyApps
	var cells []Cell
	for _, gpus := range hierarchyGPUCounts {
		for _, k := range kinds {
			for _, app := range apps {
				fab := interconnect.HierarchicalNVSwitch(gpus, 8, interconnect.NVLink3Bandwidth, 2)
				if k == paradigm.KindInfinite {
					fab = interconnect.Infinite(gpus)
				}
				cells = append(cells, Cell{App: app, Kind: k, GPUs: gpus, Fab: fab, Opt: opt, Cfg: paradigm.DefaultConfig()})
			}
		}
	}
	bases, results, err := Default.RunMatrixWithBaselines(ctx, apps, opt, paradigm.DefaultConfig(), cells)
	if err != nil {
		return nil, err
	}
	idx := 0
	for _, gpus := range hierarchyGPUCounts {
		row := make([]float64, len(kinds))
		for i := range kinds {
			var speedups []float64
			for _, app := range apps {
				speedups = append(speedups, speedupOf(bases[app], results[idx].Report))
				idx++
			}
			row[i] = stats.GeoMean(speedups)
		}
		tb.AddRow(strconv.Itoa(gpus), row...)
	}
	return tb, nil
}
