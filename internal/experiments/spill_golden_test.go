package experiments

import (
	"context"
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

// Spilling trace blocks to disk is a storage change, not a modeling change:
// with a budget tiny enough that every trace is pushed out to the spill file,
// the figures must still render byte-identically at every shard count, and
// the run must actually have exercised the spill tier (spills recorded,
// blocks read back from disk).
func TestSpilledRenderByteIdentical(t *testing.T) {
	renders := []struct {
		golden string
		render func(context.Context, Options) (string, error)
	}{
		{"figure8_quick.golden", func(ctx context.Context, opt Options) (string, error) {
			tb, err := Figure8(ctx, opt)
			if err != nil {
				return "", err
			}
			return tb.String(), nil
		}},
		{"pagesize_quick.golden", func(ctx context.Context, opt Options) (string, error) {
			tb, err := SensitivityPageSize(ctx, opt)
			if err != nil {
				return "", err
			}
			return tb.String(), nil
		}},
	}

	oldDefault := Default
	defer func() { Default = oldDefault }()
	opt := Options{Iterations: 2, Quick: true}

	for _, tc := range renders {
		want, err := os.ReadFile(filepath.Join("testdata", tc.golden))
		if err != nil {
			t.Fatal(err)
		}
		for _, shardN := range []int{1, 2, 8} {
			t.Run(tc.golden+"/shards="+strconv.Itoa(shardN), func(t *testing.T) {
				Default = NewRunner(1)
				Default.SetShards(shardN)
				// Far below any quick trace's compressed footprint: every
				// cached trace is forced through the spill path before the
				// next cell replays it.
				Default.SetTraceBudget(16 << 10)
				got, err := tc.render(context.Background(), opt)
				if err != nil {
					t.Fatal(err)
				}
				if got != string(want) {
					t.Fatalf("render with spilled traces deviates from the golden\n--- got ---\n%s\n--- want ---\n%s",
						got, want)
				}
				st := Default.CacheStats()
				if st.TraceSpills == 0 || st.TraceSpillBytes == 0 {
					t.Fatalf("budget never forced a spill: %+v", st)
				}
				if st.SpillBlockReads == 0 || st.SpillReadBytes == 0 {
					t.Fatalf("replay never read blocks back from the spill file: %+v", st)
				}
				if st.TraceLogicalBytes == 0 || st.TraceBytes >= st.TraceLogicalBytes {
					t.Fatalf("compressed accounting looks wrong: %+v", st)
				}
			})
		}
	}
}
