package experiments

import (
	"context"
	"fmt"

	"gps/internal/engine"
	"gps/internal/gpu"
	"gps/internal/stats"
	"gps/internal/trace"
	"gps/internal/workload"
)

// ValidateL2 replays each application's per-GPU local access stream through
// the structural L2 cache simulator (internal/gpu) at 1 and 4 GPUs and
// reports the measured hit rates next to the analytic trace.L2Model values
// the timing simulator uses. The paper's Section 7.1 observation — EQWP's
// L2 hit rate rising from 55% to 68% at 4 GPUs because the aggregate cache
// capacity grows — must emerge structurally from nothing but cache geometry
// and the access stream.
func ValidateL2(ctx context.Context, opt Options) (*stats.Table, error) {
	opt = opt.withDefaults()
	tb := stats.NewTable(
		"L2 model validation: structural (cache sim) vs analytic hit rates (%)",
		"app", "sim @1GPU", "sim @4GPU", "model @1GPU", "model @4GPU")
	tb.Fmt = "%6.1f"
	specs := workload.Catalog()
	type l2Row struct {
		sim1, sim4 float64
		l2         trace.L2Model
	}
	rows := make([]l2Row, len(specs))
	// Each (app, GPU count) replay is independent; fan them out on the
	// runner's pool. The traces come from the shared cache, so the 1- and
	// 4-GPU replays reuse what the figures already built.
	desc := func(i int) string {
		gpus := 1 + 3*(i%2)
		return fmt.Sprintf("l2/%s/%dgpu", specs[i/2].Name, gpus)
	}
	err := Default.parallelForDesc(ctx, 2*len(specs), desc, func(ctx context.Context, i int) error {
		spec, four := specs[i/2], i%2 == 1
		if !four {
			sim1, err := simulateL2(spec, opt, 1)
			if err != nil {
				return err
			}
			prog, err := Default.traceCtx(ctx, spec.Name, opt.workloadConfig(1))
			if err != nil {
				return err
			}
			rows[i/2].sim1, rows[i/2].l2 = sim1, prog.Meta().L2
			return nil
		}
		sim4, err := simulateL2(spec, opt, 4)
		if err != nil {
			return err
		}
		rows[i/2].sim4 = sim4
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, spec := range specs {
		r := rows[i]
		tb.AddRow(spec.Name, r.sim1*100, r.sim4*100, r.l2.HitRate(1)*100, r.l2.HitRate(4)*100)
	}
	return tb, nil
}

// simulateL2 replays the recorded shared-region accesses of every GPU
// through a private V100 L2 each and returns the mean hit rate. Only the
// steady-state phases count (caches warm during the profiling iteration).
func simulateL2(spec workload.Spec, opt Options, gpus int) (float64, error) {
	prog, err := Default.Trace(spec.Name, opt.workloadConfig(gpus))
	if err != nil {
		return 0, err
	}
	meta := prog.Meta()
	paths := make([]*gpu.MemoryPath, gpus)
	for g := range paths {
		paths[g] = gpu.NewMemoryPath(g, gpu.V100L2())
	}
	exp := engine.NewExpander(engine.LineBytes)
	var dec trace.BlockDecoder
	var decErr error
	prog.Phases(func(ph *trace.Phase) bool {
		if ph.Index == meta.ProfilePhases {
			// Steady state begins: measure from here.
			for _, p := range paths {
				p.L2.ResetStats()
			}
		}
		for ki := range ph.Kernels {
			k := &ph.Kernels[ki]
			path := paths[k.GPU]
			decErr = k.EachBlock(&dec, func(accs []trace.Access) bool {
				for _, a := range accs {
					if a.Op == trace.OpFence {
						continue
					}
					for _, line := range exp.Expand(a) {
						if a.IsWrite() {
							path.Store(line)
						} else {
							path.Load(line)
						}
					}
				}
				return true
			})
			if decErr != nil {
				return false
			}
		}
		return true
	})
	if decErr != nil {
		return 0, fmt.Errorf("experiments: %s: %w", spec.Name, decErr)
	}
	var sum float64
	for _, p := range paths {
		s := p.L2.Stats()
		if s.Hits+s.Misses == 0 {
			return 0, fmt.Errorf("experiments: %s GPU %d had no accesses", spec.Name, p.GPU)
		}
		sum += s.HitRate()
	}
	return sum / float64(gpus), nil
}
