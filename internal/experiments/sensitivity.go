package experiments

import (
	"context"
	"fmt"

	"gps/internal/gpuconf"
	"gps/internal/interconnect"
	"gps/internal/paradigm"
	"gps/internal/stats"
	"gps/internal/workload"
)

// Figure14Sizes are the remote write queue capacities swept in Figure 14.
var Figure14Sizes = []int{16, 32, 64, 128, 256, 384, 512, 768, 1024}

// Figure14 reproduces the write-queue size sensitivity: the queue hit rate
// (percentage of coalescable stores that merged) per application and queue
// capacity. Jacobi, Pagerank, SSSP and ALS sit at 0% (SM-coalesced
// streaming writes or atomics); CT, EQWP, Diffusion and HIT climb as the
// queue covers their revisit distance, saturating near 512 entries.
func Figure14(ctx context.Context, opt Options) (*stats.Table, error) {
	opt = opt.withDefaults()
	cols := make([]string, len(Figure14Sizes))
	for i, s := range Figure14Sizes {
		cols[i] = fmt.Sprintf("%d", s)
	}
	tb := stats.NewTable(
		"Figure 14: GPS remote write queue hit rate (%) vs queue size (entries)",
		"app", cols...)
	tb.Fmt = "%6.1f"
	apps := workload.Names()
	var cells []Cell
	for _, app := range apps {
		for _, size := range Figure14Sizes {
			cfg := paradigm.DefaultConfig()
			cfg.WriteQueueEntries = size
			cells = append(cells, Cell{App: app, Kind: paradigm.KindGPS, GPUs: 4, Fab: MainFabric(4), Opt: opt, Cfg: cfg})
		}
	}
	results, err := Default.RunMatrix(ctx, cells)
	if err != nil {
		return nil, err
	}
	idx := 0
	for _, app := range apps {
		row := make([]float64, len(Figure14Sizes))
		for i := range Figure14Sizes {
			row[i] = stats.Mean(results[idx].Result.WriteQueueHitRate) * 100
			idx++
		}
		tb.AddRow(app, row...)
	}
	return tb, nil
}

// GPSTLBSizes are the GPS-TLB capacities swept in the Section 7.4 study.
var GPSTLBSizes = []int{4, 8, 16, 32, 64}

// SensitivityGPSTLB reproduces the GPS-TLB sizing study: hit rate per
// application and TLB size. The paper found the hit rate approaches 100% at
// just 32 entries because the GPS-TLB services only GPS-heap stores.
func SensitivityGPSTLB(ctx context.Context, opt Options) (*stats.Table, error) {
	opt = opt.withDefaults()
	cols := make([]string, len(GPSTLBSizes))
	for i, s := range GPSTLBSizes {
		cols[i] = fmt.Sprintf("%d", s)
	}
	tb := stats.NewTable(
		"Section 7.4: GPS-TLB hit rate (%) vs TLB entries",
		"app", cols...)
	tb.Fmt = "%6.1f"
	apps := workload.Names()
	var cells []Cell
	for _, app := range apps {
		for _, size := range GPSTLBSizes {
			cfg := paradigm.DefaultConfig()
			cfg.GPSTLBEntries = size
			if size < cfg.Machine.GPS.TLBWays {
				cfg.GPSTLBWays = size
			}
			cells = append(cells, Cell{App: app, Kind: paradigm.KindGPS, GPUs: 4, Fab: MainFabric(4), Opt: opt, Cfg: cfg})
		}
	}
	results, err := Default.RunMatrix(ctx, cells)
	if err != nil {
		return nil, err
	}
	idx := 0
	for _, app := range apps {
		row := make([]float64, len(GPSTLBSizes))
		for i := range GPSTLBSizes {
			row[i] = stats.Mean(results[idx].Result.GPSTLBHitRate) * 100
			idx++
		}
		tb.AddRow(app, row...)
	}
	return tb, nil
}

// PageSizes are the translation granularities of the Section 7.4 page-size
// study.
var PageSizes = []uint64{4 << 10, 64 << 10, 2 << 20}

// SensitivityPageSize reproduces the page-size study: geometric mean GPS
// 4-GPU *runtime* at 4 KB, 64 KB and 2 MB pages, relative to 64 KB. Small
// pages multiply TLB pressure (the paper: the 4 KB variant is 42% slower
// than 64 KB); large pages suffer false sharing that multiplies replicated
// store traffic (2 MB is 15% slower). 64 KB is the sweet spot.
func SensitivityPageSize(ctx context.Context, opt Options) (*stats.Table, error) {
	opt = opt.withDefaults()
	tb := stats.NewTable(
		"Section 7.4: page size sensitivity (geomean GPS 4-GPU runtime vs 64KB)",
		"page size", "runtime ratio", "slowdown %")
	// Run at a larger problem scale so a single 2 MB page is not an
	// outsized fraction of a slab (the paper's footprints are GB-scale).
	opt.Scale *= 2
	apps := workload.Names()
	var cells []Cell
	for _, pageBytes := range PageSizes {
		for _, app := range apps {
			cfg := paradigm.DefaultConfig()
			cfg.PageBytes = pageBytes
			cells = append(cells, Cell{App: app, Kind: paradigm.KindGPS, GPUs: 4, Fab: MainFabric(4), Opt: opt, Cfg: cfg})
		}
	}
	results, err := Default.RunMatrix(ctx, cells)
	if err != nil {
		return nil, err
	}
	runtimes := make([][]float64, len(PageSizes))
	idx := 0
	for i := range PageSizes {
		for range apps {
			runtimes[i] = append(runtimes[i], results[idx].Report.SteadyTotal())
			idx++
		}
	}
	labels := []string{"4KB", "64KB", "2MB"}
	for i := range PageSizes {
		var ratios []float64
		for a := range runtimes[i] {
			ratios = append(ratios, runtimes[i][a]/runtimes[1][a])
		}
		r := stats.GeoMean(ratios)
		tb.AddRow(labels[i], r, (r-1)*100)
	}
	return tb, nil
}

// AblationWatermark compares the paper's drain-at-capacity-minus-one
// watermark against an eager half-full drain policy (geomean speedup and
// queue hit rate).
func AblationWatermark(ctx context.Context, opt Options) (*stats.Table, error) {
	opt = opt.withDefaults()
	tb := stats.NewTable(
		"Ablation: write queue drain watermark (4-GPU GPS)",
		"policy", "geomean speedup", "mean hit rate %")
	policies := []struct {
		name string
		mark int
	}{
		{"capacity-1 (paper)", 511},
		{"capacity/2", 256},
		{"capacity/8", 64},
	}
	apps := workload.Names()
	var cells []Cell
	for _, pol := range policies {
		for _, app := range apps {
			cfg := paradigm.DefaultConfig()
			cfg.WriteQueueWatermark = pol.mark
			cells = append(cells, Cell{App: app, Kind: paradigm.KindGPS, GPUs: 4, Fab: MainFabric(4), Opt: opt, Cfg: cfg})
		}
	}
	bases, results, err := Default.RunMatrixWithBaselines(ctx, apps, opt, paradigm.DefaultConfig(), cells)
	if err != nil {
		return nil, err
	}
	idx := 0
	for _, pol := range policies {
		var speedups, hits []float64
		for _, app := range apps {
			speedups = append(speedups, speedupOf(bases[app], results[idx].Report))
			hits = append(hits, stats.Mean(results[idx].Result.WriteQueueHitRate)*100)
			idx++
		}
		tb.AddRow(pol.name, stats.GeoMean(speedups), stats.Mean(hits))
	}
	return tb, nil
}

// AblationProfilingMode compares the two automatic subscription strategies
// of Section 3.2: subscribed-by-default (indiscriminate replication, then
// unsubscription — the paper's choice) versus unsubscribed-by-default
// (subscribe on first read, paying population stalls). Steady-state
// performance converges; the profiling iteration's cost differs, which is
// why the paper chose subscribed-by-default.
func AblationProfilingMode(ctx context.Context, opt Options) (*stats.Table, error) {
	opt = opt.withDefaults()
	tb := stats.NewTable(
		"Ablation: profiling mode (4-GPU GPS, total runtime in ms)",
		"app", "subscribed-by-default", "unsubscribed-by-default", "steady ratio")
	tb.Fmt = "%8.3f"
	apps := workload.Names()
	var cells []Cell
	for _, app := range apps {
		for _, k := range []paradigm.Kind{paradigm.KindGPS, paradigm.KindGPSUnsubDefault} {
			cells = append(cells, Cell{App: app, Kind: k, GPUs: 4, Fab: MainFabric(4), Opt: opt, Cfg: paradigm.DefaultConfig()})
		}
	}
	results, err := Default.RunMatrix(ctx, cells)
	if err != nil {
		return nil, err
	}
	for i, app := range apps {
		subDef, unsubDef := results[2*i].Report, results[2*i+1].Report
		tb.AddRow(app, subDef.Total*1e3, unsubDef.Total*1e3,
			unsubDef.SteadyTotal()/subDef.SteadyTotal())
	}
	return tb, nil
}

// ControlApps reproduces the paper's control observation (Section 6): "For
// the Tartan applications not bound by inter-GPU communication, we found
// that GPS obtains the same performance as the native version." Two
// compute-bound control workloads run under the native (memcpy) paradigm,
// GPS, and the infinite-bandwidth bound; all three must coincide.
func ControlApps(ctx context.Context, opt Options) (*stats.Table, error) {
	opt = opt.withDefaults()
	tb := stats.NewTable(
		"Control: compute-bound applications (4-GPU speedup; paradigms must coincide)",
		"app", "memcpy", "GPS", "infiniteBW")
	kinds := []paradigm.Kind{paradigm.KindMemcpy, paradigm.KindGPS, paradigm.KindInfinite}
	var apps []string
	for _, spec := range workload.ControlCatalog() {
		apps = append(apps, spec.Name)
	}
	var cells []Cell
	for _, app := range apps {
		for _, k := range kinds {
			fab := MainFabric(4)
			if k == paradigm.KindInfinite {
				fab = interconnect.Infinite(4)
			}
			cells = append(cells, Cell{App: app, Kind: k, GPUs: 4, Fab: fab, Opt: opt, Cfg: paradigm.DefaultConfig()})
		}
	}
	bases, results, err := Default.RunMatrixWithBaselines(ctx, apps, opt, paradigm.DefaultConfig(), cells)
	if err != nil {
		return nil, err
	}
	idx := 0
	for _, app := range apps {
		row := make([]float64, 0, 3)
		for range kinds {
			row = append(row, speedupOf(bases[app], results[idx].Report))
			idx++
		}
		tb.AddRow(app, row...)
	}
	return tb, nil
}

// Table1 renders the Table 1 simulation settings.
func Table1() string {
	c := gpuconf.Default()
	g := c.GPU
	s := c.GPS
	out := "Table 1: simulation settings (NVIDIA V100-class)\n"
	rows := []struct {
		k string
		v string
	}{
		{"Cache block size", fmt.Sprintf("%d bytes", g.CacheBlockBytes)},
		{"Global memory", fmt.Sprintf("%d GB", g.GlobalMemory>>30)},
		{"Streaming multiprocessors (SM)", fmt.Sprintf("%d", g.SMs)},
		{"CUDA cores/SM", fmt.Sprintf("%d", g.CoresPerSM)},
		{"L2 cache size", fmt.Sprintf("%d MB", g.L2Bytes>>20)},
		{"Warp size", fmt.Sprintf("%d", g.WarpSize)},
		{"Maximum threads per SM", fmt.Sprintf("%d", g.MaxThreadsPerSM)},
		{"Maximum threads per CTA", fmt.Sprintf("%d", g.MaxThreadsPerCTA)},
		{"Remote write queue", fmt.Sprintf("%d entries", s.WriteQueueEntries)},
		{"Remote write queue entry size", fmt.Sprintf("%d bytes", s.WriteQueueEntrySize)},
		{"GPS-TLB", fmt.Sprintf("%d-way set associative", s.TLBWays)},
		{"GPS-TLB size", fmt.Sprintf("%d entries", s.TLBEntries)},
		{"Virtual address", fmt.Sprintf("%d bits", g.VirtualAddrBits)},
		{"Physical address", fmt.Sprintf("%d bits", g.PhysicalAddrBits)},
	}
	for _, r := range rows {
		out += fmt.Sprintf("  %-32s %s\n", r.k, r.v)
	}
	return out
}
