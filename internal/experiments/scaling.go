package experiments

import (
	"gps/internal/interconnect"
	"gps/internal/paradigm"
	"gps/internal/stats"
	"gps/internal/workload"
)

// Figure12 reproduces the 16-GPU study: per-application speedup over one
// GPU for every paradigm on a projected PCIe 6.0 interconnect (128 GB/s).
func Figure12(opt Options) (*stats.Table, error) {
	opt = opt.withDefaults()
	kinds := paradigm.Figure8Kinds()
	cols := make([]string, len(kinds))
	for i, k := range kinds {
		cols[i] = k.String()
	}
	tb := stats.NewTable(
		"Figure 12: 16-GPU performance on projected PCIe 6.0 (speedup over 1 GPU)",
		"app", cols...)
	sums := make([]float64, len(kinds))
	for _, app := range workload.Names() {
		base, err := baseline(app, opt, paradigm.DefaultConfig())
		if err != nil {
			return nil, err
		}
		row := make([]float64, len(kinds))
		for i, k := range kinds {
			fab := interconnect.PCIeTree(16, interconnect.PCIe6)
			if k == paradigm.KindInfinite {
				fab = interconnect.Infinite(16)
			}
			rep, _, err := runOne(app, k, 16, fab, opt, paradigm.DefaultConfig())
			if err != nil {
				return nil, err
			}
			row[i] = stats.Speedup(base, rep.SteadyTotal())
			sums[i] += row[i]
		}
		tb.AddRow(app, row...)
	}
	mean := make([]float64, len(kinds))
	for i := range sums {
		mean[i] = sums[i] / float64(len(workload.Names()))
	}
	tb.AddRow("mean", mean...)
	return tb, nil
}

// Claims73 derives the Section 7.3 claims from a Figure 12 table: GPS's
// mean 16-GPU speedup and the fraction of the infinite-bandwidth
// opportunity it captures (the paper reports 7.9x and over 80%).
func Claims73(tb *stats.Table) (gpsMean, opportunityFrac float64) {
	meanRow := tb.Rows() - 1
	var gps, inf float64
	for c, name := range tb.Cols {
		switch name {
		case "GPS":
			gps = tb.Value(meanRow, c)
		case "infiniteBW":
			inf = tb.Value(meanRow, c)
		}
	}
	return gps, gps / inf
}

// Figure13 reproduces the interconnect-bandwidth sensitivity: geometric
// mean 4-GPU speedup of each paradigm across PCIe generations 3.0-6.0.
func Figure13(opt Options) (*stats.Table, error) {
	opt = opt.withDefaults()
	kinds := paradigm.Figure8Kinds()
	cols := make([]string, len(kinds))
	for i, k := range kinds {
		cols[i] = k.String()
	}
	tb := stats.NewTable(
		"Figure 13: sensitivity to interconnect bandwidth (geomean 4-GPU speedup)",
		"interconnect", cols...)

	gens := []interconnect.PCIeGen{interconnect.PCIe3, interconnect.PCIe4, interconnect.PCIe5, interconnect.PCIe6}
	bases := map[string]float64{}
	for _, app := range workload.Names() {
		b, err := baseline(app, opt, paradigm.DefaultConfig())
		if err != nil {
			return nil, err
		}
		bases[app] = b
	}
	for _, gen := range gens {
		row := make([]float64, len(kinds))
		for i, k := range kinds {
			var speedups []float64
			for _, app := range workload.Names() {
				fab := interconnect.PCIeTree(4, gen)
				if k == paradigm.KindInfinite {
					fab = interconnect.Infinite(4)
				}
				rep, _, err := runOne(app, k, 4, fab, opt, paradigm.DefaultConfig())
				if err != nil {
					return nil, err
				}
				speedups = append(speedups, stats.Speedup(bases[app], rep.SteadyTotal()))
			}
			row[i] = stats.GeoMean(speedups)
		}
		label := gen.String()
		if gen == interconnect.PCIe6 {
			label += " (projected)"
		}
		tb.AddRow(label, row...)
	}
	return tb, nil
}
