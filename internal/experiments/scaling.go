package experiments

import (
	"context"

	"gps/internal/interconnect"
	"gps/internal/paradigm"
	"gps/internal/stats"
	"gps/internal/workload"
)

// Figure12 reproduces the 16-GPU study: per-application speedup over one
// GPU for every paradigm on a projected PCIe 6.0 interconnect (128 GB/s).
func Figure12(ctx context.Context, opt Options) (*stats.Table, error) {
	opt = opt.withDefaults()
	kinds := paradigm.Figure8Kinds()
	cols := make([]string, len(kinds))
	for i, k := range kinds {
		cols[i] = k.String()
	}
	tb := stats.NewTable(
		"Figure 12: 16-GPU performance on projected PCIe 6.0 (speedup over 1 GPU)",
		"app", cols...)
	apps := workload.Names()
	var cells []Cell
	for _, app := range apps {
		for _, k := range kinds {
			fab := interconnect.PCIeTree(16, interconnect.PCIe6)
			if k == paradigm.KindInfinite {
				fab = interconnect.Infinite(16)
			}
			cells = append(cells, Cell{App: app, Kind: k, GPUs: 16, Fab: fab, Opt: opt, Cfg: paradigm.DefaultConfig()})
		}
	}
	bases, results, err := Default.RunMatrixWithBaselines(ctx, apps, opt, paradigm.DefaultConfig(), cells)
	if err != nil {
		return nil, err
	}
	sums := make([]float64, len(kinds))
	idx := 0
	for _, app := range apps {
		row := make([]float64, len(kinds))
		for i := range kinds {
			row[i] = speedupOf(bases[app], results[idx].Report)
			sums[i] += row[i]
			idx++
		}
		tb.AddRow(app, row...)
	}
	mean := make([]float64, len(kinds))
	for i := range sums {
		mean[i] = sums[i] / float64(len(apps))
	}
	tb.AddRow("mean", mean...)
	return tb, nil
}

// Claims73 derives the Section 7.3 claims from a Figure 12 table: GPS's
// mean 16-GPU speedup and the fraction of the infinite-bandwidth
// opportunity it captures (the paper reports 7.9x and over 80%).
func Claims73(tb *stats.Table) (gpsMean, opportunityFrac float64) {
	meanRow := tb.Rows() - 1
	var gps, inf float64
	for c, name := range tb.Cols {
		switch name {
		case "GPS":
			gps = tb.Value(meanRow, c)
		case "infiniteBW":
			inf = tb.Value(meanRow, c)
		}
	}
	return gps, gps / inf
}

// Figure13 reproduces the interconnect-bandwidth sensitivity: geometric
// mean 4-GPU speedup of each paradigm across PCIe generations 3.0-6.0.
func Figure13(ctx context.Context, opt Options) (*stats.Table, error) {
	opt = opt.withDefaults()
	kinds := paradigm.Figure8Kinds()
	cols := make([]string, len(kinds))
	for i, k := range kinds {
		cols[i] = k.String()
	}
	tb := stats.NewTable(
		"Figure 13: sensitivity to interconnect bandwidth (geomean 4-GPU speedup)",
		"interconnect", cols...)

	gens := []interconnect.PCIeGen{interconnect.PCIe3, interconnect.PCIe4, interconnect.PCIe5, interconnect.PCIe6}
	apps := workload.Names()
	var cells []Cell
	for _, gen := range gens {
		for _, k := range kinds {
			for _, app := range apps {
				fab := interconnect.PCIeTree(4, gen)
				if k == paradigm.KindInfinite {
					fab = interconnect.Infinite(4)
				}
				cells = append(cells, Cell{App: app, Kind: k, GPUs: 4, Fab: fab, Opt: opt, Cfg: paradigm.DefaultConfig()})
			}
		}
	}
	bases, results, err := Default.RunMatrixWithBaselines(ctx, apps, opt, paradigm.DefaultConfig(), cells)
	if err != nil {
		return nil, err
	}
	idx := 0
	for _, gen := range gens {
		row := make([]float64, len(kinds))
		for i := range kinds {
			var speedups []float64
			for _, app := range apps {
				speedups = append(speedups, speedupOf(bases[app], results[idx].Report))
				idx++
			}
			row[i] = stats.GeoMean(speedups)
		}
		label := gen.String()
		if gen == interconnect.PCIe6 {
			label += " (projected)"
		}
		tb.AddRow(label, row...)
	}
	return tb, nil
}
