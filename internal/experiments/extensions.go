package experiments

import (
	"context"

	"gps/internal/interconnect"
	"gps/internal/paradigm"
	"gps/internal/stats"
	"gps/internal/workload"
)

// AblationPipelinedMemcpy quantifies how much of GPS's advantage survives
// against an expert who pipelines cudaMemcpy transfers behind compute
// (Section 2.1 notes this "requires significant programmer effort and
// detailed knowledge of the applications' behavior"). Pipelining closes
// part of the gap, but the broadcasts remain page-granular and
// consumer-oblivious, so GPS still wins.
func AblationPipelinedMemcpy(ctx context.Context, opt Options) (*stats.Table, error) {
	opt = opt.withDefaults()
	tb := stats.NewTable(
		"Ablation: pipelined cudaMemcpy (4-GPU speedup over 1 GPU)",
		"app", "memcpy", "memcpy-async", "GPS")
	kinds := []paradigm.Kind{paradigm.KindMemcpy, paradigm.KindMemcpyAsync, paradigm.KindGPS}
	apps := workload.Names()
	var cells []Cell
	for _, app := range apps {
		for _, k := range kinds {
			cells = append(cells, Cell{App: app, Kind: k, GPUs: 4, Fab: MainFabric(4), Opt: opt, Cfg: paradigm.DefaultConfig()})
		}
	}
	bases, results, err := Default.RunMatrixWithBaselines(ctx, apps, opt, paradigm.DefaultConfig(), cells)
	if err != nil {
		return nil, err
	}
	idx := 0
	for _, app := range apps {
		row := make([]float64, 0, 3)
		for range kinds {
			row = append(row, speedupOf(bases[app], results[idx].Report))
			idx++
		}
		tb.AddRow(app, row...)
	}
	return tb, nil
}

// ExtendedFabrics runs the headline paradigms on an 8-GPU system across
// qualitatively different fabrics: a PCIe 4.0 tree, a DGX-1-style NVLink
// hybrid cube mesh (direct links inside quads, two hops across), and a
// DGX-2-style NVSwitch crossbar — extending the paper's PCIe-only
// sensitivity sweep to the NVLink topologies of Figure 3.
func ExtendedFabrics(ctx context.Context, opt Options) (*stats.Table, error) {
	opt = opt.withDefaults()
	kinds := []paradigm.Kind{paradigm.KindUM, paradigm.KindRDL, paradigm.KindMemcpy, paradigm.KindGPS, paradigm.KindInfinite}
	cols := make([]string, len(kinds))
	for i, k := range kinds {
		cols[i] = k.String()
	}
	tb := stats.NewTable(
		"Extension: 8-GPU geomean speedup across fabric topologies",
		"fabric", cols...)

	fabrics := []struct {
		name string
		fab  *interconnect.Fabric
	}{
		{"PCIe 4.0 tree", interconnect.PCIeTree(8, interconnect.PCIe4)},
		{"NVLink cube mesh", interconnect.HybridCubeMesh(25e9)},
		{"NVSwitch crossbar", interconnect.NVSwitch(8, interconnect.NVLink2Bandwidth)},
	}
	apps := workload.Names()
	var cells []Cell
	for _, f := range fabrics {
		for _, k := range kinds {
			fab := f.fab
			if k == paradigm.KindInfinite {
				fab = interconnect.Infinite(8)
			}
			for _, app := range apps {
				cells = append(cells, Cell{App: app, Kind: k, GPUs: 8, Fab: fab, Opt: opt, Cfg: paradigm.DefaultConfig()})
			}
		}
	}
	bases, results, err := Default.RunMatrixWithBaselines(ctx, apps, opt, paradigm.DefaultConfig(), cells)
	if err != nil {
		return nil, err
	}
	idx := 0
	for _, f := range fabrics {
		row := make([]float64, 0, len(kinds))
		for range kinds {
			var speedups []float64
			for range apps {
				speedups = append(speedups, speedupOf(bases[results[idx].Cell.App], results[idx].Report))
				idx++
			}
			row = append(row, stats.GeoMean(speedups))
		}
		tb.AddRow(f.name, row...)
	}
	return tb, nil
}
