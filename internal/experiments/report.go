package experiments

import (
	"context"
	"fmt"
	"io"
	"math"
	"math/rand"

	"gps/internal/interconnect"
	"gps/internal/stats"
	"gps/internal/timing"
)

// ValidateFabricModel cross-validates the fluid max-min interconnect model
// (used by the timing simulator for speed) against the packet-level
// store-and-forward simulator on random bandwidth-bound transfer sets,
// reporting the makespan ratio distribution. The trustworthiness of a fast
// model rests on agreement with a more literal one — the methodology of
// the simulator work the paper builds on (NVAS, HPCA'21).
func ValidateFabricModel(ctx context.Context, trials int) (*stats.Table, error) {
	if trials <= 0 {
		trials = 50
	}
	tb := stats.NewTable(
		"Fabric model validation: packet-level vs fluid makespan ratio",
		"metric", "value")
	tb.Fmt = "%8.3f"

	rng := rand.New(rand.NewSource(17))
	var ratios []float64
	for trial := 0; trial < trials; trial++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		n := 2 + rng.Intn(6)
		fab := interconnect.PCIeTree(n, interconnect.PCIe4)
		var transfers []*timing.Transfer
		pairs := 1 + rng.Intn(2*n)
		for i := 0; i < pairs; i++ {
			src, dst := rng.Intn(n), rng.Intn(n)
			if src == dst {
				continue
			}
			transfers = append(transfers, &timing.Transfer{
				Src: src, Dst: dst, Bytes: float64(16+rng.Intn(128)) * 1e6,
			})
		}
		if len(transfers) == 0 {
			continue
		}
		fluid := timing.FluidMakespan(transfers, fab)
		packet := float64(timing.NewPacketSim(fab, 64<<10).Run(transfers))
		if fluid > 0 {
			ratios = append(ratios, packet/fluid)
		}
	}
	if len(ratios) == 0 {
		return nil, fmt.Errorf("experiments: no valid trials")
	}
	tb.AddRow("trials", float64(len(ratios)))
	tb.AddRow("mean ratio", stats.Mean(ratios))
	tb.AddRow("min ratio", stats.Min(ratios))
	tb.AddRow("max ratio", stats.Max(ratios))
	var worst float64
	for _, r := range ratios {
		worst = math.Max(worst, math.Abs(r-1))
	}
	tb.AddRow("worst |error| %", worst*100)
	return tb, nil
}

// WriteReport runs the core experiment suite and writes a self-contained
// markdown report — the automated counterpart of EXPERIMENTS.md.
func WriteReport(ctx context.Context, w io.Writer, opt Options) error {
	opt = opt.withDefaults()
	fmt.Fprintln(w, "# GPS reproduction report")
	fmt.Fprintln(w)
	fmt.Fprintf(w, "Configuration: %d execution iterations, scale %d, %s headline fabric.\n\n",
		opt.Iterations, opt.Scale, MainFabric(4).Name())

	section := func(title string, tb *stats.Table, err error, extra ...string) error {
		if err != nil {
			return fmt.Errorf("experiments: %s: %w", title, err)
		}
		fmt.Fprintf(w, "## %s\n\n```\n%s```\n", title, tb.String())
		for _, e := range extra {
			fmt.Fprintf(w, "\n%s\n", e)
		}
		fmt.Fprintln(w)
		return nil
	}

	fmt.Fprintf(w, "## Table 1\n\n```\n%s```\n\n", Table1())
	fmt.Fprintf(w, "## Table 2\n\n```\n%s```\n\n", Table2())

	fig8, err := Figure8(ctx, opt)
	if err != nil {
		return err
	}
	gpsMean, frac, vsNext := Claims71(fig8)
	if err := section("Figure 8 — 4-GPU paradigm comparison", fig8, nil, fmt.Sprintf(
		"Claims: GPS mean %.2fx (paper 3.0x), %.1f%% of opportunity (paper 93.7%%), %.2fx over next best (paper 2.3x).",
		gpsMean, frac*100, vsNext)); err != nil {
		return err
	}

	for _, item := range []struct {
		title string
		run   func(context.Context, Options) (*stats.Table, error)
	}{
		{"Figure 9 — subscriber distribution", Figure9},
		{"Figure 10 — traffic normalized to memcpy", Figure10},
		{"Figure 11 — subscription sensitivity", Figure11},
		{"Figure 14 — write queue size sensitivity", Figure14},
		{"L2 model validation", ValidateL2},
		{"Control applications", ControlApps},
	} {
		tb, err := item.run(ctx, opt)
		if err := section(item.title, tb, err); err != nil {
			return err
		}
	}

	fm, err := ValidateFabricModel(ctx, 30)
	return section("Fabric model validation", fm, err)
}
