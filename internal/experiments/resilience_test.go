package experiments

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"gps/internal/faultinject"
	"gps/internal/paradigm"
	"gps/internal/retry"
)

// fastRetry keeps resilience tests clock-light.
var fastRetry = retry.Policy{MaxAttempts: 3, BaseDelay: time.Millisecond, Multiplier: 2}

// TestPanickingCellBecomesTypedError: a panic inside one cell fails the
// matrix with a *CellError carrying the index and a stack, not a process
// crash, and the runner stays usable afterwards.
func TestPanickingCellBecomesTypedError(t *testing.T) {
	r := NewRunner(2)
	r.SetCellRetry(retry.Policy{MaxAttempts: 1}) // isolate the fence
	boom := func(i int) error {
		if i == 1 {
			panic("poisoned cell")
		}
		return nil
	}
	err := r.parallelFor(context.Background(), 3, boom)
	var ce *CellError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v (%T), want *CellError", err, err)
	}
	if ce.Index != 1 || ce.Stack == "" || !strings.Contains(ce.Err.Error(), "poisoned cell") {
		t.Fatalf("CellError = index %d, stack %d bytes, err %v", ce.Index, len(ce.Stack), ce.Err)
	}
	if got := r.ResilienceStats().CellPanics; got != 1 {
		t.Errorf("CellPanics = %d, want 1", got)
	}
	// A real (non-injected) panic is deterministic: no retry happened.
	if got := r.ResilienceStats().CellRetries; got != 0 {
		t.Errorf("CellRetries = %d, want 0", got)
	}
	// The runner is not poisoned: a clean pass still works.
	if err := r.parallelFor(context.Background(), 3, func(int) error { return nil }); err != nil {
		t.Fatalf("runner unusable after panic: %v", err)
	}
}

// TestInjectedFaultRetriesToSuccess: a transient injected error on the
// first cell attempt is absorbed by the retry loop and the matrix result is
// identical to a fault-free run.
func TestInjectedFaultRetriesToSuccess(t *testing.T) {
	cells := []Cell{{
		App: "jacobi", Kind: paradigm.KindGPS, GPUs: 2, Fab: MainFabric(2),
		Opt: Options{Iterations: 1}, Cfg: paradigm.DefaultConfig(),
	}}

	clean := NewRunner(1)
	want, err := clean.RunMatrix(context.Background(), cells)
	if err != nil {
		t.Fatal(err)
	}

	faulty := NewRunner(1)
	faulty.SetCellRetry(fastRetry)
	faulty.SetFaultHook(faultinject.New(1, faultinject.Rule{
		Site: "runner.cell", Kind: faultinject.KindError, Ordinal: 1,
	}))
	got, err := faulty.RunMatrix(context.Background(), cells)
	if err != nil {
		t.Fatalf("matrix with injected transient fault failed: %v", err)
	}
	if got[0].Report.Total != want[0].Report.Total || got[0].Report.SteadyTotal() != want[0].Report.SteadyTotal() {
		t.Errorf("faulted run differs from clean run: %v vs %v", got[0].Report.Total, want[0].Report.Total)
	}
	st := faulty.ResilienceStats()
	if st.CellRetries == 0 {
		t.Errorf("CellRetries = 0, want >= 1 after an injected fault")
	}
}

// TestInjectedPanicRetriesThroughFence: an injected panic classifies as
// retryable (it is a scripted transient), so the fence converts it and the
// retry loop still completes the cell.
func TestInjectedPanicRetriesThroughFence(t *testing.T) {
	r := NewRunner(1)
	r.SetCellRetry(fastRetry)
	r.SetFaultHook(faultinject.New(1, faultinject.Rule{
		Site: "runner.cell", Kind: faultinject.KindPanic, Ordinal: 1,
	}))
	calls := 0
	err := r.parallelFor(context.Background(), 1, func(int) error {
		calls++
		return nil
	})
	if err != nil {
		t.Fatalf("injected panic not absorbed: %v", err)
	}
	if calls != 1 {
		t.Fatalf("work ran %d times, want 1 (first attempt died in the hook)", calls)
	}
	st := r.ResilienceStats()
	if st.CellPanics != 1 || st.CellRetries == 0 {
		t.Errorf("stats = %+v, want one panic and at least one retry", st)
	}
}

// TestDeterministicCellErrorDoesNotRetry: ordinary simulation errors are
// not transient; the retry loop must not mask them with re-runs.
func TestDeterministicCellErrorDoesNotRetry(t *testing.T) {
	r := NewRunner(1)
	r.SetCellRetry(fastRetry)
	calls := 0
	err := r.parallelFor(context.Background(), 1, func(int) error {
		calls++
		return errors.New("deterministic failure")
	})
	if err == nil || calls != 1 {
		t.Fatalf("err=%v calls=%d, want error after exactly 1 attempt", err, calls)
	}
}

// TestCellErrorNamesTheCell: RunMatrix failures identify which
// configuration died.
func TestCellErrorNamesTheCell(t *testing.T) {
	r := NewRunner(1)
	r.SetCellRetry(retry.Policy{MaxAttempts: 1})
	r.SetFaultHook(faultinject.New(1, faultinject.Rule{
		Site: "runner.cell", Kind: faultinject.KindPanic, Ordinal: 1,
	}))
	cells := []Cell{{
		App: "jacobi", Kind: paradigm.KindGPS, GPUs: 2, Fab: MainFabric(2),
		Opt: Options{Iterations: 1}, Cfg: paradigm.DefaultConfig(),
	}}
	_, err := r.RunMatrix(context.Background(), cells)
	var ce *CellError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *CellError", err)
	}
	if !strings.Contains(ce.Desc, "jacobi/GPS/2gpu") {
		t.Errorf("CellError.Desc = %q, want the cell config", ce.Desc)
	}
}
