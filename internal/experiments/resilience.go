package experiments

import (
	"context"
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"gps/internal/faultinject"
	"gps/internal/retry"
)

// This file is the runner's resilience layer: every matrix cell executes
// under a recover() fence so one poisoned cell fails its own matrix with a
// diagnosable CellError instead of taking the process down, transient
// failures (fault injection, explicitly transient errors) re-run under a
// bounded backoff policy, and an optional faultinject.Hook lets chaos tests
// script faults into the cell path deterministically.

// CellError is the typed failure of one matrix cell. It carries the cell's
// position and description plus, for panics, a truncated stack, so a job
// that dies on one configuration reports which one and why.
type CellError struct {
	Index int    // position in the issued work sequence
	Desc  string // cell description (app/paradigm/gpus/fabric) when known
	Stack string // truncated stack capture when the cell panicked
	Err   error
}

func (e *CellError) Error() string {
	what := e.Desc
	if what == "" {
		what = fmt.Sprintf("cell %d", e.Index)
	} else {
		what = fmt.Sprintf("cell %d (%s)", e.Index, e.Desc)
	}
	if e.Stack != "" {
		return fmt.Sprintf("experiments: %s panicked: %v\n%s", what, e.Err, e.Stack)
	}
	return fmt.Sprintf("experiments: %s: %v", what, e.Err)
}

func (e *CellError) Unwrap() error { return e.Err }

// maxStackBytes truncates captured panic stacks so a CellError stays
// loggable and a journal entry stays one sane-sized line.
const maxStackBytes = 2048

// truncatedStack captures the current stack, capped at maxStackBytes.
func truncatedStack() string {
	s := debug.Stack()
	if len(s) > maxStackBytes {
		s = append(s[:maxStackBytes], []byte("... (truncated)")...)
	}
	return string(s)
}

// panicError normalizes a recovered panic value into an error, preserving
// error values (and with them the Retryable classification of injected
// panics).
func panicError(p any) error {
	if err, ok := p.(error); ok {
		return err
	}
	return fmt.Errorf("panic: %v", p)
}

// ResilienceStats counts what the fence and the retry loop absorbed.
type ResilienceStats struct {
	CellPanics  uint64 `json:"cell_panics"`  // panics converted to CellError
	CellRetries uint64 `json:"cell_retries"` // extra attempts after transient failures
}

// ResilienceStats snapshots the fence/retry counters.
func (r *Runner) ResilienceStats() ResilienceStats {
	return ResilienceStats{
		CellPanics:  r.cellPanics.Load(),
		CellRetries: r.cellRetries.Load(),
	}
}

// DefaultCellRetry is the cell-level retry policy of a new Runner: three
// attempts with a short capped backoff. Only errors classified retryable
// (injected or explicitly transient) re-run; deterministic simulation
// failures surface immediately.
var DefaultCellRetry = retry.Policy{
	MaxAttempts: 3,
	BaseDelay:   25 * time.Millisecond,
	MaxDelay:    1 * time.Second,
	Multiplier:  2,
	Jitter:      0.2,
}

// SetCellRetry replaces the cell retry policy (tests shrink or disable it).
func (r *Runner) SetCellRetry(p retry.Policy) {
	r.resMu.Lock()
	r.cellRetry = p
	r.resMu.Unlock()
}

// CellRetry returns the active cell retry policy.
func (r *Runner) CellRetry() retry.Policy {
	r.resMu.Lock()
	defer r.resMu.Unlock()
	return r.cellRetry
}

// SetFaultHook installs (or, with nil, removes) the fault-injection hook
// consulted once per cell attempt at site "runner.cell". Production never
// sets one and pays a single mutex-guarded nil-check per cell.
func (r *Runner) SetFaultHook(h faultinject.Hook) {
	r.resMu.Lock()
	r.hook = h
	r.resMu.Unlock()
}

func (r *Runner) faultHook() faultinject.Hook {
	r.resMu.Lock()
	defer r.resMu.Unlock()
	return r.hook
}

// runCellResilient executes one parallelFor index under the fence and the
// retry policy: attempts that fail with a retryable error (injected faults,
// explicitly transient errors) re-run with backoff; panics and
// deterministic errors surface immediately as the index's failure.
func (r *Runner) runCellResilient(ctx context.Context, i int, desc func(int) string, fn func(context.Context, int) error) error {
	_, err := retry.Do(ctx, r.CellRetry(), retry.Sleep, nil, func(attempt int) error {
		if attempt > 1 {
			r.cellRetries.Add(1)
		}
		return r.fencedAttempt(ctx, i, desc, fn)
	})
	return err
}

// fencedAttempt runs fn(ctx, i) once: the fault hook fires first (its
// panics exercise the same fence as real ones), then the work, with any
// panic converted to a typed CellError carrying a truncated stack.
func (r *Runner) fencedAttempt(ctx context.Context, i int, desc func(int) string, fn func(context.Context, int) error) (err error) {
	describe := func() string {
		if desc == nil {
			return ""
		}
		return desc(i)
	}
	defer func() {
		if p := recover(); p != nil {
			r.cellPanics.Add(1)
			err = &CellError{Index: i, Desc: describe(), Stack: truncatedStack(), Err: panicError(p)}
		}
	}()
	if h := r.faultHook(); h != nil {
		if herr := h.Hit("runner.cell"); herr != nil {
			return &CellError{Index: i, Desc: describe(), Err: herr}
		}
	}
	return fn(ctx, i)
}

// resilienceState is embedded in Runner; split out so runner.go stays
// focused on the cache machinery.
type resilienceState struct {
	resMu     sync.Mutex
	cellRetry retry.Policy
	hook      faultinject.Hook

	cellPanics  atomic.Uint64
	cellRetries atomic.Uint64
}
