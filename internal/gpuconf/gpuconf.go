// Package gpuconf holds the machine descriptions used throughout the
// simulator. The default configuration mirrors Table 1 of the GPS paper
// (MICRO 2021): an NVIDIA GV100 (Volta V100-class) GPU plus the GPS
// structure sizes chosen in the paper's final proposal.
package gpuconf

import "fmt"

// Common size units in bytes.
const (
	KB = 1 << 10
	MB = 1 << 20
	GB = 1 << 30
)

// GPU describes one GPU's microarchitectural parameters, following Table 1.
type GPU struct {
	Name string

	// Geometry.
	CacheBlockBytes  int    // cache block (line) size; 128 B on GV100
	GlobalMemory     uint64 // HBM capacity in bytes
	SMs              int    // streaming multiprocessors
	CoresPerSM       int    // CUDA cores per SM
	L2Bytes          uint64 // L2 cache capacity
	WarpSize         int
	MaxThreadsPerSM  int
	MaxThreadsPerCTA int

	// Timing.
	ClockHz       float64 // SM clock
	DRAMBandwidth float64 // local HBM bandwidth, bytes/s
	DRAMLatency   float64 // local load-to-use latency, seconds

	// Virtual memory.
	PageBytes        uint64 // default translation granularity (64 KB for GPS)
	VirtualAddrBits  int
	PhysicalAddrBits int
	TLBEntries       int // last-level conventional TLB entries
	TLBWays          int
	PageWalkLatency  float64 // seconds per full page walk

	// Unified-Memory costs.
	PageFaultLatency float64 // GPU-visible cost of one fault+migrate round trip
	TLBShootdown     float64 // cost of collapsing a replicated page

	// Latency hiding: maximum outstanding remote memory requests the GPU can
	// sustain before remote loads stall execution (aggregate across SMs).
	RemoteMLP int
}

// GPS describes the GPS hardware structures from Table 1.
type GPS struct {
	WriteQueueEntries   int // remote write queue capacity (cache blocks)
	WriteQueueEntrySize int // bytes of SRAM per entry (135 B in the paper)
	// HighWatermark is the occupancy at which the queue begins draining the
	// least-recently-added entry. The paper sets it to capacity-1.
	HighWatermark int
	TLBEntries    int // GPS-TLB entries (32 in the paper)
	TLBWays       int // 8-way set associative
}

// Config bundles a GPU model with its GPS structures.
type Config struct {
	GPU GPU
	GPS GPS
}

// GV100 returns the Table 1 configuration: an NVIDIA V100-class GPU.
func GV100() GPU {
	return GPU{
		Name:             "GV100",
		CacheBlockBytes:  128,
		GlobalMemory:     16 * GB,
		SMs:              80,
		CoresPerSM:       64,
		L2Bytes:          6 * MB,
		WarpSize:         32,
		MaxThreadsPerSM:  2048,
		MaxThreadsPerCTA: 1024,

		ClockHz:       1.38e9,
		DRAMBandwidth: 900e9, // ~900 GB/s HBM2
		DRAMLatency:   400e-9,

		PageBytes:        64 * KB,
		VirtualAddrBits:  49,
		PhysicalAddrBits: 47,
		TLBEntries:       4096,
		TLBWays:          16,
		PageWalkLatency:  600e-9,

		PageFaultLatency: 15e-6, // amortized fault+migrate cost (driver batches nearby faults)
		TLBShootdown:     3e-6,

		RemoteMLP: 64,
	}
}

// DefaultGPS returns the paper's final GPS structure sizes.
func DefaultGPS() GPS {
	return GPS{
		WriteQueueEntries:   512,
		WriteQueueEntrySize: 135,
		HighWatermark:       511, // capacity - 1, maximizing coalescing window
		TLBEntries:          32,
		TLBWays:             8,
	}
}

// Default returns the full Table 1 configuration.
func Default() Config {
	return Config{GPU: GV100(), GPS: DefaultGPS()}
}

// PeakFLOPs returns the GPU's peak single-precision operation throughput in
// operations per second (one FMA counted as two ops, matching vendor specs).
func (g GPU) PeakFLOPs() float64 {
	return float64(g.SMs) * float64(g.CoresPerSM) * g.ClockHz * 2
}

// WriteQueueSRAMBytes returns the SRAM footprint of the remote write queue.
func (s GPS) WriteQueueSRAMBytes() int {
	return s.WriteQueueEntries * s.WriteQueueEntrySize
}

// Validate reports a descriptive error for physically meaningless settings.
func (c Config) Validate() error {
	g := c.GPU
	switch {
	case g.CacheBlockBytes <= 0 || g.CacheBlockBytes&(g.CacheBlockBytes-1) != 0:
		return fmt.Errorf("gpuconf: cache block size %d must be a positive power of two", g.CacheBlockBytes)
	case g.PageBytes == 0 || g.PageBytes&(g.PageBytes-1) != 0:
		return fmt.Errorf("gpuconf: page size %d must be a positive power of two", g.PageBytes)
	case uint64(g.CacheBlockBytes) > g.PageBytes:
		return fmt.Errorf("gpuconf: cache block %d larger than page %d", g.CacheBlockBytes, g.PageBytes)
	case g.DRAMBandwidth <= 0:
		return fmt.Errorf("gpuconf: DRAM bandwidth must be positive")
	case g.ClockHz <= 0:
		return fmt.Errorf("gpuconf: clock must be positive")
	case g.SMs <= 0 || g.CoresPerSM <= 0:
		return fmt.Errorf("gpuconf: SM geometry must be positive")
	}
	s := c.GPS
	switch {
	case s.WriteQueueEntries <= 0:
		return fmt.Errorf("gpuconf: write queue must have at least one entry")
	case s.HighWatermark <= 0 || s.HighWatermark > s.WriteQueueEntries:
		return fmt.Errorf("gpuconf: watermark %d out of range (1..%d)", s.HighWatermark, s.WriteQueueEntries)
	case s.TLBEntries <= 0 || s.TLBWays <= 0 || s.TLBEntries%s.TLBWays != 0:
		return fmt.Errorf("gpuconf: GPS-TLB %d entries / %d ways invalid", s.TLBEntries, s.TLBWays)
	}
	return nil
}
