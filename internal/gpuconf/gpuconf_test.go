package gpuconf

import "testing"

func TestDefaultMatchesTable1(t *testing.T) {
	c := Default()
	g := c.GPU
	if g.CacheBlockBytes != 128 {
		t.Errorf("cache block = %d, want 128", g.CacheBlockBytes)
	}
	if g.GlobalMemory != 16*GB {
		t.Errorf("global memory = %d, want 16 GB", g.GlobalMemory)
	}
	if g.SMs != 80 || g.CoresPerSM != 64 {
		t.Errorf("SM geometry = %dx%d, want 80x64", g.SMs, g.CoresPerSM)
	}
	if g.L2Bytes != 6*MB {
		t.Errorf("L2 = %d, want 6 MB", g.L2Bytes)
	}
	if g.WarpSize != 32 || g.MaxThreadsPerSM != 2048 || g.MaxThreadsPerCTA != 1024 {
		t.Errorf("thread geometry mismatch with Table 1")
	}
	if g.VirtualAddrBits != 49 || g.PhysicalAddrBits != 47 {
		t.Errorf("address bits = %d/%d, want 49/47", g.VirtualAddrBits, g.PhysicalAddrBits)
	}
	s := c.GPS
	if s.WriteQueueEntries != 512 {
		t.Errorf("write queue = %d entries, want 512", s.WriteQueueEntries)
	}
	if s.WriteQueueEntrySize != 135 {
		t.Errorf("write queue entry = %d B, want 135", s.WriteQueueEntrySize)
	}
	if s.TLBEntries != 32 || s.TLBWays != 8 {
		t.Errorf("GPS-TLB = %d entries %d ways, want 32/8", s.TLBEntries, s.TLBWays)
	}
}

func TestWriteQueueSRAMBudget(t *testing.T) {
	// The paper: "with 512 entries, the GPS-write buffer requires 68 KB of
	// SRAM storage".
	got := DefaultGPS().WriteQueueSRAMBytes()
	if got != 512*135 {
		t.Fatalf("SRAM = %d, want %d", got, 512*135)
	}
	if got < 67*KB || got > 69*KB {
		t.Fatalf("SRAM = %d bytes, want ~68 KB", got)
	}
}

func TestValidateAcceptsDefault(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	mut := []struct {
		name string
		f    func(*Config)
	}{
		{"zero cache block", func(c *Config) { c.GPU.CacheBlockBytes = 0 }},
		{"non pow2 cache block", func(c *Config) { c.GPU.CacheBlockBytes = 100 }},
		{"zero page", func(c *Config) { c.GPU.PageBytes = 0 }},
		{"non pow2 page", func(c *Config) { c.GPU.PageBytes = 3000 }},
		{"block > page", func(c *Config) { c.GPU.PageBytes = 64; c.GPU.CacheBlockBytes = 128 }},
		{"zero bandwidth", func(c *Config) { c.GPU.DRAMBandwidth = 0 }},
		{"zero clock", func(c *Config) { c.GPU.ClockHz = 0 }},
		{"zero SMs", func(c *Config) { c.GPU.SMs = 0 }},
		{"zero queue", func(c *Config) { c.GPS.WriteQueueEntries = 0 }},
		{"watermark over capacity", func(c *Config) { c.GPS.HighWatermark = 1000 }},
		{"tlb ways mismatch", func(c *Config) { c.GPS.TLBEntries = 33 }},
	}
	for _, m := range mut {
		c := Default()
		m.f(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid config", m.name)
		}
	}
}

func TestPeakFLOPs(t *testing.T) {
	g := GV100()
	got := g.PeakFLOPs()
	// 80 SMs * 64 cores * 1.38 GHz * 2 = ~14.1 TFLOPs, V100-class.
	if got < 13e12 || got > 16e12 {
		t.Fatalf("peak FLOPs = %g, want ~14e12", got)
	}
}
