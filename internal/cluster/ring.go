// Package cluster turns N gpsd nodes into one sharded service. A
// consistent-hash ring over the canonical spec hash assigns every job an
// owner node; non-owners forward submits to the owner and proxy reads back,
// the owner's existing single-flight table deduplicates identical
// submissions arriving anywhere in the cluster, a peer result-fetch path
// backed by the content-addressed caches lets any node serve any completed
// spec, and an idle node can steal queued jobs from an overloaded peer.
//
// Membership is static peer configuration (gpsd -node-id/-peers); liveness
// is probed over /v1/healthz. A dead owner does not stall the ring: routing
// walks clockwise to the first live node, so submissions re-route
// deterministically until the owner returns (and its journal replay
// finishes whatever it was mid-flight on).
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
)

// DefaultVnodes is the virtual-node count per physical node. 128 points
// per node keeps the key distribution within a few percent of fair for
// single-digit cluster sizes while the ring stays a ~1k-entry sorted array.
const DefaultVnodes = 128

// ringPoint is one virtual node: a position on the 64-bit ring owned by a
// physical node.
type ringPoint struct {
	pos  uint64
	node string
}

// Ring is a consistent-hash ring with virtual nodes. Keys and node
// positions both come from SHA-256, so placement is stable across
// processes, platforms, and restarts. Ring is immutable after the last
// Add/Remove; concurrent Owner lookups need no locking (the Cluster builds
// its ring once from static peer config).
type Ring struct {
	vnodes int
	points []ringPoint
	nodes  map[string]struct{}
}

// NewRing builds an empty ring; vnodes <= 0 takes DefaultVnodes.
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	return &Ring{vnodes: vnodes, nodes: map[string]struct{}{}}
}

// ringHash maps a string onto the ring: the first 8 bytes of its SHA-256.
// Spec hashes are already hex SHA-256 digests, so this is SHA-256 over the
// canonical spec hash, as stable as the content address itself.
func ringHash(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// Add inserts a node's virtual points. Adding a present node is a no-op.
func (r *Ring) Add(node string) {
	if _, ok := r.nodes[node]; ok {
		return
	}
	r.nodes[node] = struct{}{}
	for i := 0; i < r.vnodes; i++ {
		r.points = append(r.points, ringPoint{
			pos:  ringHash(fmt.Sprintf("%s#%d", node, i)),
			node: node,
		})
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].pos < r.points[j].pos })
}

// Remove deletes a node's virtual points. Removing an absent node is a
// no-op.
func (r *Ring) Remove(node string) {
	if _, ok := r.nodes[node]; !ok {
		return
	}
	delete(r.nodes, node)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.node != node {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Nodes returns the member node IDs, sorted.
func (r *Ring) Nodes() []string {
	out := make([]string, 0, len(r.nodes))
	for n := range r.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Len reports the number of physical nodes on the ring.
func (r *Ring) Len() int { return len(r.nodes) }

// Owner returns the node owning key: the first virtual point clockwise from
// the key's ring position. An empty ring answers "".
func (r *Ring) Owner(key string) string {
	return r.OwnerAmong(key, nil)
}

// OwnerAmong returns the first node clockwise from key for which ok answers
// true (nil accepts every node). Dead-node fallback is deterministic: every
// node that agrees on the liveness set routes the key identically. If no
// node qualifies it answers "".
func (r *Ring) OwnerAmong(key string, ok func(node string) bool) string {
	if len(r.points) == 0 {
		return ""
	}
	pos := ringHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].pos >= pos })
	// Walk clockwise over virtual points until an acceptable physical node
	// appears; cap the walk at one full revolution.
	for k := 0; k < len(r.points); k++ {
		p := r.points[(i+k)%len(r.points)]
		if ok == nil || ok(p.node) {
			return p.node
		}
	}
	return ""
}

// Successor returns node's ring successor: the first physical node other
// than node itself, clockwise from node's primary position, for which ok
// answers true (nil accepts every node). It anchors journal replication and
// takeover — every member that agrees on the liveness set computes the same
// single successor for a given node, so exactly one survivor promotes a
// dead node's replicated jobs. Answers "" when no other node qualifies.
func (r *Ring) Successor(node string, ok func(node string) bool) string {
	return r.OwnerAmong(node, func(n string) bool {
		return n != node && (ok == nil || ok(n))
	})
}
