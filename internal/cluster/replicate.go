package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"gps/internal/obs"
	"gps/internal/report"
	"gps/internal/service"
)

// Journal replication and successor takeover — the self-healing half of the
// cluster layer.
//
// Every record the local journal commits is also streamed to this node's
// ring successor (the first live node clockwise from our primary ring
// position). The successor keeps a per-origin replica store: submit records
// add entries, terminal records prune them, so at any moment the store holds
// exactly the jobs the origin had accepted but not finished. When the probe
// loop declares the origin permanently dead, the successor promotes those
// entries via service.Adopt — the jobs re-run under their original IDs, and
// the ID-prefix proxy fallback routes the dead node's clients here.
//
// The stream is synchronous when the successor is healthy: a journal commit
// does not return until the successor acknowledged the record (bounded by
// replFlushTimeout). On failure the stream degrades to a buffered outbox
// drained by the probe-interval flusher, and because a failed flush leaves
// the successor's view uncertain, the next successful flush is always a
// full-state snapshot (Reset batch built from service.PendingJobs). Snapshot
// batches replace the origin's replica state wholesale, which also scrubs
// any stale entries a lost terminal record left behind.
//
// Resurrection is handled by the same machinery in reverse: a node coming
// back up replays its journal, and for every pending job asks its successor
// (via service.Config.Reconcile) whether that job was adopted. If so, the
// job is registered locally as delegated — the stolen-job state machine,
// with the successor as thief — and a watcher goroutine lands the
// successor's outcome (or reclaims the job if the successor dies too).
// Exactly one execution wins; clients polling either node see it.

const (
	// replOutboxCap bounds the buffered outbox while the successor is
	// unreachable; overflowing collapses the backlog into a snapshot resync,
	// which is smaller (live jobs only) and idempotent.
	replOutboxCap = 4096
	// replFlushTimeout bounds one replication POST. Submits on this node
	// stall at most this long when the successor is slow; once suspicion
	// marks it dead the stream stops blocking entirely.
	replFlushTimeout = 3 * time.Second
	// delegationPollInterval spaces status polls for a job a resurrected
	// node delegated to its takeover successor.
	delegationPollInterval = 500 * time.Millisecond
	// delegationMaxMisses is how many consecutive failed polls the watcher
	// tolerates before reclaiming the delegated job to run locally.
	delegationMaxMisses = 6
)

// ReplRecord is one replicated journal record.
type ReplRecord struct {
	Op    string         `json:"op"`
	ID    string         `json:"id"`
	Spec  *service.Spec  `json:"spec,omitempty"`  // on submit
	Trace *obs.TraceInfo `json:"trace,omitempty"` // on submit: distributed trace identity
}

// ReplBatch is the wire payload of POST /v1/peer/journal: one origin's
// records, optionally replacing everything previously replicated from it.
type ReplBatch struct {
	Origin  string       `json:"origin"`
	Reset   bool         `json:"reset,omitempty"` // full snapshot: drop prior state for Origin first
	Records []ReplRecord `json:"records"`
}

// replicaJob is one not-yet-terminal job replicated from a peer.
type replicaJob struct {
	ID      string
	Spec    service.Spec
	Trace   obs.TraceInfo // original trace identity, carried into adoption
	Started bool
}

// replicaStore holds, per origin node, the jobs that origin had accepted
// but not finished as of its last replicated record.
type replicaStore struct {
	mu      sync.Mutex
	origins map[string]map[string]*replicaJob
	order   map[string][]string // per-origin submit order
}

func newReplicaStore() *replicaStore {
	return &replicaStore{
		origins: map[string]map[string]*replicaJob{},
		order:   map[string][]string{},
	}
}

// apply folds one batch into the store and reports how many records changed
// state (duplicates and records for unknown IDs don't count).
func (st *replicaStore) apply(b ReplBatch) int {
	st.mu.Lock()
	defer st.mu.Unlock()
	if b.Reset {
		st.origins[b.Origin] = map[string]*replicaJob{}
		st.order[b.Origin] = nil
	}
	jobs := st.origins[b.Origin]
	if jobs == nil {
		jobs = map[string]*replicaJob{}
		st.origins[b.Origin] = jobs
	}
	applied := 0
	for _, r := range b.Records {
		switch r.Op {
		case service.OpSubmit:
			if r.ID == "" || r.Spec == nil {
				continue
			}
			if _, ok := jobs[r.ID]; ok {
				continue
			}
			rj := &replicaJob{ID: r.ID, Spec: *r.Spec}
			if r.Trace != nil {
				rj.Trace = *r.Trace
			}
			jobs[r.ID] = rj
			st.order[b.Origin] = append(st.order[b.Origin], r.ID)
			applied++
		case service.OpStart:
			if j, ok := jobs[r.ID]; ok && !j.Started {
				j.Started = true
				applied++
			}
		case service.OpDone, service.OpFail, service.OpCancel:
			if _, ok := jobs[r.ID]; ok {
				delete(jobs, r.ID)
				applied++
			}
		}
	}
	return applied
}

// snapshot returns origin's live replica jobs in submit order.
func (st *replicaStore) snapshot(origin string) []replicaJob {
	st.mu.Lock()
	defer st.mu.Unlock()
	var out []replicaJob
	for _, id := range st.order[origin] {
		if j, ok := st.origins[origin][id]; ok {
			out = append(out, *j)
		}
	}
	return out
}

// remove drops one replica entry (after a successful adoption).
func (st *replicaStore) remove(origin, id string) {
	st.mu.Lock()
	defer st.mu.Unlock()
	delete(st.origins[origin], id)
}

// jobs counts live replica entries across all origins.
func (st *replicaStore) jobs() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	n := 0
	for _, m := range st.origins {
		n += len(m)
	}
	return n
}

// JournalRecord implements service.JournalSink: it is the replication
// stream's entry point, called by the journal after every local fsync. The
// record is appended to the outbox and flushed inline to the current live
// successor; the calling job submit (or terminal transition) therefore
// waits for the successor's acknowledgement while the successor is healthy,
// and proceeds immediately — record buffered — once it is not.
// The caller of JournalRecord holds the service mutex (journal commits
// happen under it), so this path must never call back into the service —
// in particular it must not build a PendingJobs snapshot. When a snapshot
// is owed, records are deliberately dropped here: the job's state is
// already registered in the service before its record commits, so the
// snapshot the background flusher captures later covers it.
func (c *Cluster) JournalRecord(op, id string, spec *service.Spec, trace *obs.TraceInfo, errStr string) {
	_ = errStr // the replica store only needs op+id+spec+trace; errors stay local
	if !c.replEnabled.Load() || c.ring.Len() <= 1 {
		return // stream off, or single-node cluster: nowhere to replicate
	}
	c.replMu.Lock()
	defer c.replMu.Unlock()
	c.replGen++
	if len(c.outbox) >= replOutboxCap {
		// A backlog this deep means the successor has been gone a while;
		// collapse to a snapshot resync, which carries only live jobs.
		c.outbox = nil
		c.needSnapshot = true
	}
	if c.needSnapshot {
		return // the pending snapshot supersedes this record
	}
	c.outbox = append(c.outbox, ReplRecord{Op: op, ID: id, Spec: spec, Trace: trace})
	c.flushReplicationLocked(context.Background(), nil)
}

// EnableReplication turns the outbound journal stream on. gpsd calls it
// when a journal is configured: without one there are no records to stream,
// and a one-shot snapshot would only go stale at the successor (terminal
// transitions would never prune it), so the stream stays off entirely —
// this node still ingests peers' streams and runs takeovers for them.
func (c *Cluster) EnableReplication() {
	c.replEnabled.Store(true)
}

// FlushReplication drains the outbox (or pushes a pending snapshot) to the
// current successor. The probe-interval flusher calls it so records buffered
// during a successor outage — and records dropped while a snapshot was owed
// — go out as soon as a successor is live again. The snapshot is captured
// from the service OUTSIDE replMu (the sink path holds the service mutex
// while waiting on replMu, so the reverse order would deadlock); the
// generation counter detects records that committed during the capture, in
// which case the possibly-stale snapshot is discarded and retried.
func (c *Cluster) FlushReplication(ctx context.Context) {
	if !c.replEnabled.Load() {
		return
	}
	for attempt := 0; attempt < 3; attempt++ {
		c.replMu.Lock()
		needSnap, gen := c.needSnapshot, c.replGen
		c.replMu.Unlock()
		var snap []service.PendingJob
		if needSnap {
			if c.local == nil {
				return // nothing to snapshot until Bind
			}
			snap = c.local.PendingJobs()
			if snap == nil {
				// An idle node owes an EMPTY snapshot: non-nil so the flush
				// recognizes it as in-hand and sends the clearing Reset.
				snap = []service.PendingJob{}
			}
		}
		c.replMu.Lock()
		if c.replGen != gen {
			// A record committed while the snapshot was being captured; it
			// might postdate the capture. Retry with a fresh one.
			c.replMu.Unlock()
			continue
		}
		c.flushReplicationLocked(ctx, snap)
		c.replMu.Unlock()
		return
	}
	// Heavy churn: give up this round, the next tick retries.
}

// flushReplicationLocked does one replication round under replMu. Holding
// the lock across the POST serializes the stream: records arrive at the
// successor in journal-commit order. snap is the pre-captured PendingJobs
// snapshot (nil when the caller cannot provide one — the inline sink path);
// a snapshot-owing flush without one simply waits for the background
// flusher.
func (c *Cluster) flushReplicationLocked(ctx context.Context, snap []service.PendingJob) {
	target := c.ring.Successor(c.self, c.live)
	if target == "" {
		return // no live successor; the backlog waits for one
	}
	if target != c.lastReplTarget {
		// New successor (first flush, or liveness moved it): it holds none
		// of our state, so start from a full snapshot.
		c.needSnapshot = true
	}
	batch := ReplBatch{Origin: c.self}
	if c.needSnapshot {
		if snap == nil {
			return // snapshot owed but not in hand: background flusher's turn
		}
		batch.Reset = true
		for _, p := range snap {
			spec := p.Spec
			rec := ReplRecord{Op: service.OpSubmit, ID: p.ID, Spec: &spec}
			if p.Trace.TraceID != "" {
				tr := p.Trace
				rec.Trace = &tr
			}
			batch.Records = append(batch.Records, rec)
			if p.Started {
				batch.Records = append(batch.Records, ReplRecord{Op: service.OpStart, ID: p.ID})
			}
		}
	} else {
		if len(c.outbox) == 0 {
			return
		}
		batch.Records = c.outbox
	}
	p, ok := c.Peer(target)
	if !ok {
		return
	}
	body, err := json.Marshal(batch)
	if err != nil {
		c.log.Warn("replication: batch marshal failed", "err", err)
		return
	}
	pctx, cancel := context.WithTimeout(ctx, replFlushTimeout)
	code, resp, err := p.client.Do(pctx, http.MethodPost, "/v1/peer/journal", body, nil)
	cancel()
	if err != nil || code != http.StatusOK {
		c.replErrs.Add(1)
		// The successor's view is now uncertain (the batch may or may not
		// have landed); resync with a snapshot once a successor is live.
		c.needSnapshot = true
		c.outbox = nil
		if err != nil {
			c.suspect(p, err)
			c.log.Warn("replication: successor unreachable", "successor", target, "err", err)
		} else {
			c.log.Warn("replication: successor refused batch", "successor", target, "code", code, "body", string(resp))
		}
		return
	}
	c.replSent.Add(uint64(len(batch.Records)))
	c.lastReplTarget = target
	c.needSnapshot = false
	c.outbox = nil
}

// replicationLag reports how many committed records have not been
// acknowledged by a successor (a pending snapshot counts as the number of
// live jobs it would carry, via the outbox having been collapsed).
func (c *Cluster) replicationLag() uint64 {
	c.replMu.Lock()
	defer c.replMu.Unlock()
	n := uint64(len(c.outbox))
	if c.needSnapshot && c.lastReplTarget != "" {
		n++ // at least the snapshot itself is owed
	}
	return n
}

// ApplyReplicaBatch ingests one origin's replicated records — the handler
// side of POST /v1/peer/journal.
func (c *Cluster) ApplyReplicaBatch(b ReplBatch) error {
	if b.Origin == "" {
		return fmt.Errorf("cluster: replica batch without origin")
	}
	if b.Origin == c.self {
		return nil // echo of our own stream (stale successor view); drop
	}
	if _, ok := c.Peer(b.Origin); !ok {
		return fmt.Errorf("cluster: replica batch from unknown origin %q", b.Origin)
	}
	n := c.replicas.apply(b)
	c.replIngested.Add(uint64(n))
	return nil
}

// checkTakeovers promotes replicated jobs of every dead peer whose ring
// successor — computed over the current liveness set, so every survivor
// agrees — is this node. Adoption is idempotent (service.Adopt refuses IDs
// it already knows), so re-running the sweep every probe interval is safe;
// entries only leave the replica store once Adopt accepted them.
func (c *Cluster) checkTakeovers() {
	if c.local == nil {
		return
	}
	for _, p := range c.Peers() {
		if p.Alive() {
			continue
		}
		jobs := c.replicas.snapshot(p.ID)
		if len(jobs) == 0 {
			continue
		}
		if c.ring.Successor(p.ID, c.live) != c.self {
			continue
		}
		adopted := 0
		for _, rj := range jobs {
			start := time.Now()
			out, err := c.local.Adopt(p.ID, rj.ID, rj.Spec, rj.Trace)
			if err != nil {
				c.log.Warn("takeover: adopt failed", "origin", p.ID, "job_id", rj.ID, "err", err)
				continue // entry stays; retried next sweep
			}
			c.hopAdopt.Observe(time.Since(start).Seconds())
			c.replicas.remove(p.ID, rj.ID)
			if out != service.AdoptExists {
				adopted++
				c.takeoverJobs.Add(1)
			}
		}
		if adopted > 0 {
			c.takeovers.Add(1)
			c.log.Warn("takeover: promoted dead peer's replicated jobs",
				"origin", p.ID, "jobs", adopted, "outcomes", "queued/cached/coalesced")
		}
	}
}

// delegation is one journal-replayed job a resurrected node left with its
// takeover successor instead of re-running.
type delegation struct {
	id   string
	peer string
}

// Reconcile implements service.Config.Reconcile — the resurrection
// handshake. Called during journal replay for every pending job: if this
// node's ring successor already knows the job (it ran a takeover while we
// were dead), the job is delegated to it instead of re-executed here, and a
// watcher goroutine mirrors the successor's outcome onto the local job.
// Returns the successor's node ID to delegate, or "" to replay normally.
func (c *Cluster) Reconcile(p service.PendingJob) string {
	succ := c.ring.Successor(c.self, c.live)
	if succ == "" {
		return ""
	}
	peer, ok := c.Peer(succ)
	if !ok {
		return ""
	}
	ctx, cancel := context.WithTimeout(context.Background(), replFlushTimeout)
	code, body, err := peer.client.Do(ctx, http.MethodGet, "/v1/jobs/"+p.ID, nil, nil)
	cancel()
	if err != nil || code != http.StatusOK {
		return "" // successor never heard of it: normal local replay
	}
	var st service.Status
	if jerr := json.Unmarshal(body, &st); jerr != nil {
		return ""
	}
	c.addDelegation(delegation{id: p.ID, peer: succ})
	c.log.Info("replayed job delegated to takeover successor",
		"job_id", p.ID, "successor", succ, "successor_state", string(st.State))
	return succ
}

// addDelegation starts a watcher for one delegated job, or parks it until
// Start provides the cluster's run context.
func (c *Cluster) addDelegation(d delegation) {
	c.replMu.Lock()
	ctx := c.runCtx
	if ctx == nil {
		c.delegated = append(c.delegated, d)
		c.replMu.Unlock()
		return
	}
	c.replMu.Unlock()
	go c.watchDelegation(ctx, d)
}

// watchDelegation polls the successor executing a delegated job and lands
// its terminal outcome on the local job (which is registered in the
// stolen-job state: the successor is the thief). If the successor becomes
// unreachable, the job is reclaimed and re-queued locally — the steal
// machinery drops whichever completion loses the race.
func (c *Cluster) watchDelegation(ctx context.Context, d delegation) {
	p, ok := c.Peer(d.peer)
	if !ok {
		c.local.DeclineStolen(d.id) //nolint:errcheck // reclaim is best-effort
		return
	}
	t := time.NewTicker(delegationPollInterval)
	defer t.Stop()
	misses := 0
	reclaim := func(why string) {
		c.log.Warn("delegation: reclaiming job to run locally", "job_id", d.id, "successor", d.peer, "reason", why)
		c.local.DeclineStolen(d.id) //nolint:errcheck // job may have finished meanwhile
	}
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		pctx, cancel := context.WithTimeout(ctx, replFlushTimeout)
		code, body, err := p.client.Do(pctx, http.MethodGet, "/v1/jobs/"+d.id, nil, nil)
		cancel()
		if err != nil || code != http.StatusOK {
			misses++
			if misses >= delegationMaxMisses {
				reclaim("successor unreachable")
				return
			}
			continue
		}
		misses = 0
		var st service.Status
		if jerr := json.Unmarshal(body, &st); jerr != nil {
			continue
		}
		switch st.State {
		case service.StateDone:
			rep := c.fetchResultFrom(ctx, p, st.Hash)
			if rep == nil {
				misses++
				if misses >= delegationMaxMisses {
					reclaim("result fetch failed")
					return
				}
				continue
			}
			c.local.CompleteStolen(d.id, rep, "") //nolint:errcheck // dropped if reclaimed/canceled meanwhile
			c.log.Info("delegated job completed by successor", "job_id", d.id, "successor", d.peer)
			return
		case service.StateFailed:
			c.local.CompleteStolen(d.id, nil, st.Error) //nolint:errcheck // dropped if reclaimed/canceled meanwhile
			return
		case service.StateCanceled:
			c.local.Cancel(d.id) //nolint:errcheck // mirrors the successor's cancel
			return
		}
	}
}

// fetchResultFrom pulls one completed spec's report from a specific peer's
// content-addressed cache (unlike FetchPeerResult, which asks everyone).
func (c *Cluster) fetchResultFrom(ctx context.Context, p *Peer, hash string) *report.Report {
	pctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	code, body, err := p.client.Do(pctx, http.MethodGet, "/v1/peer/results/"+hash, nil, nil)
	if err != nil || code != http.StatusOK {
		return nil
	}
	var rep report.Report
	if jerr := json.Unmarshal(body, &rep); jerr != nil {
		c.log.Warn("peer result undecodable", "peer", p.ID, "hash", hash, "err", jerr)
		return nil
	}
	return &rep
}
