package cluster

import (
	"context"
	"encoding/json"
	"net/http"
	"time"

	"gps/internal/report"
	"gps/internal/service"
)

// Work stealing, thief side. The placement decision follows the
// FineServe capacity-bin shape: each node is a bin with a capacity (its
// worker pool), a used share (busy workers + queued jobs), and an overload
// threshold; CanPlace answers whether this bin can absorb one more job, and
// Place reserves the slot before the work actually arrives so concurrent
// steal rounds cannot over-commit the bin.

// Bin is one node's capacity accounting for steal/placement decisions.
type Bin struct {
	Node     string
	Capacity int // worker pool size
	Busy     int // workers mid-job
	Queued   int // jobs waiting for a worker
}

// binFromMetrics snapshots a node's bin from its service metrics.
func binFromMetrics(node string, m service.Metrics) Bin {
	return Bin{Node: node, Capacity: m.Workers, Busy: m.BusyWorkers, Queued: m.QueueDepth}
}

// Load is the bin's occupancy relative to capacity; queued work counts, so
// a saturated queue reads as load > 1.
func (b Bin) Load() float64 {
	if b.Capacity <= 0 {
		return 1
	}
	return float64(b.Busy+b.Queued) / float64(b.Capacity)
}

// CanPlace reports whether this bin can absorb one more job without
// queueing it: a strictly idle worker must exist. A thief only pulls work
// it can start immediately — stealing into a queue would just move the
// wait to a different node.
func (b Bin) CanPlace() bool {
	return b.Busy+b.Queued < b.Capacity
}

// Place reserves one slot, committing the decision before the stolen job
// lands so repeated CanPlace calls in one sweep stay truthful.
func (b *Bin) Place() { b.Busy++ }

// Overloaded reports whether the bin is worth stealing from: every worker
// busy and at least one job waiting. Stealing from a merely-busy node with
// an empty queue would yield nothing.
func (b Bin) Overloaded() bool {
	return b.Capacity > 0 && b.Busy >= b.Capacity && b.Queued > 0
}

// StealOnce runs one steal round: if the local bin has idle capacity, pick
// the most overloaded live peer (by bin load from the last probe sweep)
// and try to pull one queued job from it. The stolen spec executes through
// the local service (admission, coalescing, caching all apply) and the
// result is pushed back to the victim, which still owns the job's clients.
// It reports whether a job was stolen.
func (c *Cluster) StealOnce(ctx context.Context) bool {
	if c.local == nil {
		return false
	}
	self := binFromMetrics(c.self, c.local.Metrics())
	if !self.CanPlace() {
		return false
	}

	// Victim selection: the live peer with the heaviest bin, overloaded.
	var victim *Peer
	var victimBin Bin
	for _, p := range c.Peers() {
		if !p.Alive() {
			continue
		}
		h := p.lastHealth()
		b := Bin{Node: p.ID, Capacity: h.Workers, Busy: h.BusyWorkers, Queued: h.QueueDepth}
		if !b.Overloaded() {
			continue
		}
		if victim == nil || b.Load() > victimBin.Load() {
			victim, victimBin = p, b
		}
	}
	if victim == nil {
		return false
	}
	self.Place()

	sctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	start := time.Now()
	code, body, err := victim.client.Do(sctx, http.MethodPost, "/v1/peer/steal?thief="+c.self, nil, nil)
	cancel()
	if err != nil {
		c.stealErrs.Add(1)
		victim.alive.Store(false)
		return false
	}
	if code != http.StatusOK {
		return false // 204: victim had nothing to give by the time we asked
	}
	var stolen service.StolenJob
	if err := json.Unmarshal(body, &stolen); err != nil {
		c.stealErrs.Add(1)
		c.log.Warn("steal response undecodable", "victim", victim.ID, "err", err)
		return false
	}
	c.hopSteal.Observe(time.Since(start).Seconds())
	c.stealsThief.Add(1)
	c.log.Info("stole job", "victim", victim.ID, "job_id", stolen.ID, "hash", stolen.Hash)

	go c.runStolen(ctx, victim, stolen)
	return true
}

// runStolen executes a stolen spec locally and lands the outcome back on
// the victim. The local submit continues the victim job's trace (the thief
// job becomes a child span of it), so the two nodes' trace files merge into
// one timeline. Every failure mode still attempts a completion push so the
// victim can close the job out; if the push itself fails, the victim's
// steal watchdog reclaims the job.
func (c *Cluster) runStolen(ctx context.Context, victim *Peer, stolen service.StolenJob) {
	pay := func() CompletePayload {
		st, _, err := c.local.SubmitTraced(stolen.Spec, stolen.Trace)
		if err != nil {
			// Local admission refused the spec (queue full, drain): give the
			// job back rather than fail it — the victim re-queues instantly.
			return CompletePayload{Declined: true}
		}
		fst, rep, err := c.local.WaitResult(ctx, st.ID)
		switch {
		case err != nil: // thief shutting down mid-execution
			return CompletePayload{Declined: true}
		case fst.State == service.StateCanceled:
			return CompletePayload{Declined: true}
		case fst.State != service.StateDone || rep == nil:
			msg := fst.Error
			if msg == "" {
				msg = "thief execution ended " + string(fst.State)
			}
			return CompletePayload{Error: msg}
		}
		return CompletePayload{Result: rep}
	}()

	payload, err := json.Marshal(pay)
	if err != nil {
		c.stealErrs.Add(1)
		return
	}
	pctx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	code, _, perr := victim.client.Do(pctx, http.MethodPost,
		"/v1/peer/jobs/"+stolen.ID+"/complete", payload, traceHeader(stolen.Trace.Traceparent()))
	if perr != nil || code != http.StatusOK {
		c.stealErrs.Add(1)
		c.log.Warn("steal completion push failed", "victim", victim.ID,
			"job_id", stolen.ID, "code", code, "err", perr)
	}
}

// CompletePayload is the body of POST /v1/peer/jobs/{id}/complete: the
// report on success, the error string on a deterministic failure, or
// Declined when the thief hands the job back untouched (the victim
// re-queues it immediately).
type CompletePayload struct {
	Result   *report.Report `json:"result,omitempty"`
	Error    string         `json:"error,omitempty"`
	Declined bool           `json:"declined,omitempty"`
}
