package cluster

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gps/internal/obs"
	"gps/internal/report"
	"gps/internal/service"
)

// adoptRecorder is a minimal Local that records Adopt calls; everything else
// is inert. It lets takeover tests run without a full service.Server.
type adoptRecorder struct {
	mu      sync.Mutex
	adopted []string // "origin/id"
}

func (a *adoptRecorder) Adopt(origin, id string, spec service.Spec, trace obs.TraceInfo) (service.AdoptOutcome, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.adopted = append(a.adopted, origin+"/"+id)
	return service.AdoptQueued, nil
}

func (a *adoptRecorder) calls() []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]string(nil), a.adopted...)
}

func (a *adoptRecorder) SubmitTraced(service.Spec, obs.TraceContext) (service.Status, service.Outcome, error) {
	return service.Status{}, 0, fmt.Errorf("not implemented")
}
func (a *adoptRecorder) WaitResult(context.Context, string) (service.Status, *report.Report, error) {
	return service.Status{}, nil, fmt.Errorf("not implemented")
}
func (a *adoptRecorder) Metrics() service.Metrics                   { return service.Metrics{} }
func (a *adoptRecorder) ResultByHash(string) (*report.Report, bool) { return nil, false }
func (a *adoptRecorder) Steal(string) (service.StolenJob, bool)     { return service.StolenJob{}, false }
func (a *adoptRecorder) CompleteStolen(string, *report.Report, string) error {
	return fmt.Errorf("not implemented")
}
func (a *adoptRecorder) DeclineStolen(string) error { return fmt.Errorf("not implemented") }
func (a *adoptRecorder) Cancel(string) (service.Status, error) {
	return service.Status{}, fmt.Errorf("not implemented")
}
func (a *adoptRecorder) PendingJobs() []service.PendingJob { return nil }

func submitRecord(id string, seed int64) ReplRecord {
	return ReplRecord{Op: service.OpSubmit, ID: id,
		Spec: &service.Spec{Type: "figure", Figure: 3, Seed: seed}}
}

func TestReplicaStoreApply(t *testing.T) {
	st := newReplicaStore()

	n := st.apply(ReplBatch{Origin: "b", Records: []ReplRecord{
		submitRecord("b-j-000001", 1),
		submitRecord("b-j-000002", 2),
		{Op: service.OpStart, ID: "b-j-000001"},
	}})
	if n != 3 || st.jobs() != 2 {
		t.Fatalf("apply = %d changed, %d live; want 3, 2", n, st.jobs())
	}

	// Duplicates and records for unknown IDs change nothing.
	n = st.apply(ReplBatch{Origin: "b", Records: []ReplRecord{
		submitRecord("b-j-000001", 1),
		{Op: service.OpStart, ID: "b-j-000001"},
		{Op: service.OpStart, ID: "b-j-000099"},
		{Op: service.OpDone, ID: "b-j-000099"},
		{Op: service.OpSubmit, ID: "b-j-000003"}, // submit without a spec: invalid
	}})
	if n != 0 || st.jobs() != 2 {
		t.Fatalf("idempotent re-apply = %d changed, %d live; want 0, 2", n, st.jobs())
	}

	// Terminal records prune; submit order is preserved for the survivors.
	st.apply(ReplBatch{Origin: "b", Records: []ReplRecord{
		submitRecord("b-j-000003", 3),
		{Op: service.OpDone, ID: "b-j-000001"},
		{Op: service.OpCancel, ID: "b-j-000002"},
	}})
	snap := st.snapshot("b")
	if len(snap) != 1 || snap[0].ID != "b-j-000003" || snap[0].Started {
		t.Fatalf("after prune: %+v", snap)
	}

	// Origins are independent.
	st.apply(ReplBatch{Origin: "c", Records: []ReplRecord{submitRecord("c-j-000001", 9)}})
	if len(st.snapshot("b")) != 1 || len(st.snapshot("c")) != 1 {
		t.Fatalf("origins bled together: b=%d c=%d", len(st.snapshot("b")), len(st.snapshot("c")))
	}

	// A Reset batch replaces the origin's state wholesale — stale entries
	// from lost terminal records are scrubbed.
	st.apply(ReplBatch{Origin: "b", Reset: true, Records: []ReplRecord{
		submitRecord("b-j-000007", 7),
	}})
	snap = st.snapshot("b")
	if len(snap) != 1 || snap[0].ID != "b-j-000007" {
		t.Fatalf("after reset: %+v", snap)
	}
	if len(st.snapshot("c")) != 1 {
		t.Fatal("reset for b touched c's replicas")
	}

	st.remove("b", "b-j-000007")
	if st.jobs() != 1 { // only c's entry left
		t.Fatalf("after remove: %d live, want 1", st.jobs())
	}
}

func TestRingSuccessorDeterministic(t *testing.T) {
	r := NewRing(0)
	ids := []string{"n0", "n1", "n2", "n3", "n4"}
	for _, id := range ids {
		r.Add(id)
	}
	for _, id := range ids {
		succ := r.Successor(id, nil)
		if succ == "" || succ == id {
			t.Fatalf("Successor(%s) = %q; must be another member", id, succ)
		}
		for i := 0; i < 10; i++ {
			if got := r.Successor(id, nil); got != succ {
				t.Fatalf("Successor(%s) flapped: %s then %s", id, succ, got)
			}
		}
		// Under a restricted liveness set the successor is still never the
		// node itself and still deterministic.
		alive := func(n string) bool { return n != "n1" && n != id }
		s2 := r.Successor(id, alive)
		if s2 == id || s2 == "n1" {
			t.Fatalf("Successor(%s, alive) = %q violates the predicate", id, s2)
		}
	}
	// An every-node-dead predicate answers "".
	if got := r.Successor("n0", func(string) bool { return false }); got != "" {
		t.Fatalf("Successor with no live nodes = %q, want \"\"", got)
	}
}

// TestOwnerAmongConcurrentLivenessFlips hammers OwnerAmong and Successor
// while other goroutines flip the liveness predicate, as happens when probe
// loops mark peers up and down during routing. Run under -race this proves
// the read path needs no locking beyond the predicate's own atomics; the
// result must always be a live-claimed-at-some-point member or "".
func TestOwnerAmongConcurrentLivenessFlips(t *testing.T) {
	r := NewRing(0)
	ids := []string{"n0", "n1", "n2", "n3", "n4"}
	member := map[string]bool{}
	var alive [5]atomic.Bool
	for i, id := range ids {
		r.Add(id)
		member[id] = true
		alive[i].Store(true)
	}
	idx := func(n string) int { return int(n[1] - '0') }
	ok := func(n string) bool { return alive[idx(n)].Load() }

	stop := make(chan struct{})
	var flippers, readers sync.WaitGroup
	for f := 0; f < 2; f++ {
		flippers.Add(1)
		go func(f int) {
			defer flippers.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				slot := (i + f) % 4 // n4 stays alive so an owner always exists
				alive[slot].Store(i%2 == 0)
			}
		}(f)
	}
	for g := 0; g < 4; g++ {
		readers.Add(1)
		go func(g int) {
			defer readers.Done()
			for i := 0; i < 2000; i++ {
				key := fmt.Sprintf("key-%d-%d", g, i)
				if got := r.OwnerAmong(key, ok); !member[got] {
					t.Errorf("OwnerAmong(%s) = %q, not a member", key, got)
					return
				}
				if got := r.Successor(ids[i%5], ok); got != "" && !member[got] {
					t.Errorf("Successor flip = %q, not a member", got)
					return
				}
			}
		}(g)
	}
	readers.Wait()
	close(stop)
	flippers.Wait()

	// With flips quiesced, routing is deterministic again and every node
	// agrees: repeated calls with a frozen liveness view match.
	frozen := func(n string) bool { return n != "n2" }
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("settle-%d", i)
		a, b := r.OwnerAmong(key, frozen), r.OwnerAmong(key, frozen)
		if a != b || a == "n2" {
			t.Fatalf("post-flip OwnerAmong(%s): %s vs %s", key, a, b)
		}
	}
}

func TestProbeScheduleJitter(t *testing.T) {
	const interval = 2 * time.Second
	offsets := map[time.Duration]bool{}
	for _, peer := range []string{"b", "c", "d", "e"} {
		off, period := probeSchedule("a", peer, interval)
		if off < 0 || off >= interval {
			t.Fatalf("offset(a->%s) = %v outside [0, %v)", peer, off, interval)
		}
		lo, hi := interval-interval/10, interval+interval/10
		if period < lo || period > hi {
			t.Fatalf("period(a->%s) = %v outside [%v, %v]", peer, period, lo, hi)
		}
		off2, period2 := probeSchedule("a", peer, interval)
		if off2 != off || period2 != period {
			t.Fatalf("schedule(a->%s) not deterministic", peer)
		}
		offsets[off] = true
	}
	if len(offsets) < 2 {
		t.Fatal("all peers share one probe offset; jitter is not per-peer")
	}
	// The pair is directional — a probing b lands elsewhere than b probing a.
	offAB, _ := probeSchedule("a", "b", interval)
	offBA, _ := probeSchedule("b", "a", interval)
	if offAB == offBA {
		t.Fatal("a->b and b->a share an offset; hash must cover direction")
	}
	// Sub-100ms intervals (tests) skip jitter entirely.
	off, period := probeSchedule("a", "b", 10*time.Millisecond)
	if off != 0 || period != 10*time.Millisecond {
		t.Fatalf("tight interval jittered: off=%v period=%v", off, period)
	}
}

// TestSuspicionThresholdFlakyProbe is the flap-resistance acceptance test:
// a single dropped probe must neither reroute the flaky peer's keys nor
// trigger a takeover of its replicated jobs; only SuspicionThreshold
// consecutive failures may.
func TestSuspicionThresholdFlakyProbe(t *testing.T) {
	var failNext atomic.Int32
	hz := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if failNext.Load() > 0 {
			failNext.Add(-1)
			http.Error(w, "injected fault", http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"status":"ok","node_id":"p"}`)
	}))
	defer hz.Close()

	local := &adoptRecorder{}
	c := New(Config{Self: "a"}) // default SuspicionThreshold 3
	c.Bind(local)
	c.AddPeer("p", hz.URL)
	c.ProbeOnce(context.Background())
	p, _ := c.Peer("p")
	if !p.Alive() {
		t.Fatal("peer not alive after clean probe")
	}

	// Replicate one of p's jobs here, so a takeover would be observable.
	if err := c.ApplyReplicaBatch(ReplBatch{Origin: "p", Records: []ReplRecord{
		submitRecord("p-j-000001", 42),
	}}); err != nil {
		t.Fatal(err)
	}

	// A key owned by p while it is healthy.
	var key string
	for i := 0; ; i++ {
		key = fmt.Sprintf("key-%d", i)
		if c.Owner(key) == "p" {
			break
		}
	}

	// One dropped probe: suspicion, not death. Routing and replicas hold.
	failNext.Store(1)
	c.ProbeOnce(context.Background())
	if !p.Alive() || p.Fails() != 1 {
		t.Fatalf("after one dropped probe: alive=%v fails=%d, want alive with 1", p.Alive(), p.Fails())
	}
	if got := c.Owner(key); got != "p" {
		t.Fatalf("single dropped probe rerouted %s to %s", key, got)
	}
	if calls := local.calls(); len(calls) != 0 {
		t.Fatalf("single dropped probe triggered takeover: %v", calls)
	}

	// One success wipes the streak.
	c.ProbeOnce(context.Background())
	if !p.Alive() || p.Fails() != 0 {
		t.Fatalf("clean probe did not reset: alive=%v fails=%d", p.Alive(), p.Fails())
	}

	// Threshold consecutive failures: death, reroute, takeover.
	failNext.Store(3)
	for i := 0; i < 3; i++ {
		c.ProbeOnce(context.Background())
	}
	if p.Alive() {
		t.Fatal("peer alive after threshold consecutive failures")
	}
	if got := c.Owner(key); got != "a" {
		t.Fatalf("dead peer's key routes to %s, want a", got)
	}
	if calls := local.calls(); len(calls) != 1 || calls[0] != "p/p-j-000001" {
		t.Fatalf("takeover adoptions = %v, want [p/p-j-000001]", calls)
	}
	if st := c.Stats(); st.Takeovers != 1 || st.TakeoverJobs != 1 {
		t.Fatalf("stats after takeover: %+v", st)
	}

	// Resurrection: the next clean probe revives the peer and routing
	// snaps back.
	c.ProbeOnce(context.Background())
	if !p.Alive() || c.Owner(key) != "p" {
		t.Fatalf("revive failed: alive=%v owner=%s", p.Alive(), c.Owner(key))
	}
}
