package cluster

import (
	"fmt"
	"sync"
	"testing"
)

// ringKeys returns n synthetic spec-hash-shaped keys.
func ringKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("spec-hash-%06d", i)
	}
	return keys
}

func ringOf(nodes ...string) *Ring {
	r := NewRing(0)
	for _, n := range nodes {
		r.Add(n)
	}
	return r
}

func nodeNames(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("node-%d", i)
	}
	return out
}

// TestRingDistribution checks that 128 vnodes/node keep the key share of
// every node within 30% of fair for the cluster sizes we actually run.
func TestRingDistribution(t *testing.T) {
	keys := ringKeys(20000)
	for _, n := range []int{3, 5, 8} {
		nodes := nodeNames(n)
		r := ringOf(nodes...)
		counts := map[string]int{}
		for _, k := range keys {
			counts[r.Owner(k)]++
		}
		fair := float64(len(keys)) / float64(n)
		for _, node := range nodes {
			got := float64(counts[node])
			if got < 0.70*fair || got > 1.30*fair {
				t.Errorf("%d nodes: %s owns %.0f keys, fair share %.0f (outside ±30%%)",
					n, node, got, fair)
			}
		}
	}
}

// TestRingRemapBounded checks the consistent-hashing contract: adding a
// node moves only keys that land on the new node (roughly 1/(n+1) of them),
// and removing a node moves only the removed node's keys.
func TestRingRemapBounded(t *testing.T) {
	keys := ringKeys(20000)
	nodes := nodeNames(5)
	before := ringOf(nodes...)
	owners := make(map[string]string, len(keys))
	for _, k := range keys {
		owners[k] = before.Owner(k)
	}

	// Join: every moved key must move TO the joiner, and the moved fraction
	// stays near 1/6 (generous factor-of-two bound).
	joined := ringOf(append(nodeNames(5), "joiner")...)
	moved := 0
	for _, k := range keys {
		now := joined.Owner(k)
		if now == owners[k] {
			continue
		}
		moved++
		if now != "joiner" {
			t.Fatalf("join moved %s from %s to %s, not to the joiner", k, owners[k], now)
		}
	}
	fair := float64(len(keys)) / 6
	if f := float64(moved); f < fair/2 || f > fair*2 {
		t.Errorf("join remapped %d keys, want around %.0f", moved, fair)
	}

	// Leave: keys not owned by the leaver keep their owner.
	left := ringOf(nodes...)
	left.Remove("node-2")
	for _, k := range keys {
		now := left.Owner(k)
		if owners[k] != "node-2" && now != owners[k] {
			t.Fatalf("leave moved %s from %s to %s despite its owner surviving",
				k, owners[k], now)
		}
		if owners[k] == "node-2" && now == "node-2" {
			t.Fatalf("leave left %s on the removed node", k)
		}
	}
}

// TestRingDeterministicOwnership checks that independently built rings with
// the same membership agree on every key, and that concurrent lookups are
// safe (run under -race) and stable.
func TestRingDeterministicOwnership(t *testing.T) {
	keys := ringKeys(2000)
	a := ringOf("n1", "n2", "n3")
	b := ringOf("n3", "n1", "n2") // different insertion order
	for _, k := range keys {
		if a.Owner(k) != b.Owner(k) {
			t.Fatalf("insertion order changed ownership of %s: %s vs %s",
				k, a.Owner(k), b.Owner(k))
		}
	}

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, k := range keys {
				if got, want := a.Owner(k), b.Owner(k); got != want {
					t.Errorf("concurrent Owner(%s) = %s, want %s", k, got, want)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestOwnerAmongFallback checks dead-owner fallback: keys owned by a dead
// node re-route to a live one deterministically, keys with live owners stay
// put, and an all-dead ring answers "".
func TestOwnerAmongFallback(t *testing.T) {
	r := ringOf("n1", "n2", "n3")
	keys := ringKeys(2000)
	live := func(dead string) func(string) bool {
		return func(n string) bool { return n != dead }
	}
	sawFallback := false
	for _, k := range keys {
		owner := r.Owner(k)
		if got := r.OwnerAmong(k, live(owner)); got == owner || got == "" {
			t.Fatalf("key %s still routed to dead owner %s (got %q)", k, owner, got)
		} else {
			sawFallback = true
		}
		// A key whose owner is alive must not move when some other node dies.
		for _, dead := range []string{"n1", "n2", "n3"} {
			if dead == owner {
				continue
			}
			if got := r.OwnerAmong(k, live(dead)); got != owner {
				t.Fatalf("key %s moved from %s to %s when unrelated %s died",
					k, owner, got, dead)
			}
		}
	}
	if !sawFallback {
		t.Fatal("no fallback exercised")
	}
	if got := r.OwnerAmong("anything", func(string) bool { return false }); got != "" {
		t.Fatalf("all-dead ring answered %q, want empty", got)
	}
}

// TestRingAddRemoveIdempotent checks double add/remove are no-ops.
func TestRingAddRemoveIdempotent(t *testing.T) {
	r := ringOf("n1", "n2")
	r.Add("n1")
	if got := len(r.points); got != 2*r.vnodes {
		t.Fatalf("double add grew the ring to %d points, want %d", got, 2*r.vnodes)
	}
	r.Remove("nope")
	if r.Len() != 2 {
		t.Fatalf("removing an absent node changed membership: %v", r.Nodes())
	}
	r.Remove("n2")
	r.Remove("n2")
	if r.Len() != 1 || len(r.points) != r.vnodes {
		t.Fatalf("remove left %d nodes / %d points", r.Len(), len(r.points))
	}
	if got := NewRing(0); got.Owner("key") != "" {
		t.Fatal("empty ring must answer empty owner")
	}
}
