package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"gps/internal/client"
	"gps/internal/obs"
	"gps/internal/report"
	"gps/internal/service"
)

// ForwardHeader marks a request that already crossed one node boundary.
// Handlers seeing it always act locally — never forward or proxy again —
// so a stale ring view or a routing bug degrades to local handling instead
// of a forwarding loop.
const ForwardHeader = "X-GPS-Forwarded-From"

// Peer is one remote gpsd node: its static identity and address, the
// client used to reach it, and the liveness state maintained by the probe
// loop. Peers start dead and are marked alive by their first successful
// healthz probe.
type Peer struct {
	ID  string
	URL string

	client *client.Client
	alive  atomic.Bool
	fails  atomic.Int32 // consecutive failed probes / transport errors

	mu     sync.Mutex
	health client.Health // last successful healthz body, for steal decisions
}

// Alive reports the current liveness verdict. A peer flips to dead only
// after SuspicionThreshold consecutive failures, and back to alive on a
// single successful probe.
func (p *Peer) Alive() bool { return p.alive.Load() }

// Fails reports the consecutive-failure count feeding the suspicion
// threshold; zero for a healthy peer.
func (p *Peer) Fails() int { return int(p.fails.Load()) }

// Client returns the typed client for this peer.
func (p *Peer) Client() *client.Client { return p.client }

func (p *Peer) lastHealth() client.Health {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.health
}

// Local is the slice of the local service the cluster layer drives: submit
// and ride stolen work, answer peer result fetches, hand out queued jobs to
// thieves, and — for self-healing — adopt a dead peer's replicated jobs,
// snapshot pending work for replication resync, and land or reclaim
// delegated outcomes. *service.Server implements it.
type Local interface {
	SubmitTraced(spec service.Spec, parent obs.TraceContext) (service.Status, service.Outcome, error)
	WaitResult(ctx context.Context, id string) (service.Status, *report.Report, error)
	Metrics() service.Metrics
	ResultByHash(hash string) (*report.Report, bool)
	Steal(thief string) (service.StolenJob, bool)
	CompleteStolen(id string, res *report.Report, errMsg string) error
	DeclineStolen(id string) error
	Cancel(id string) (service.Status, error)
	Adopt(origin, id string, spec service.Spec, trace obs.TraceInfo) (service.AdoptOutcome, error)
	PendingJobs() []service.PendingJob
}

// Config sizes a Cluster.
type Config struct {
	// Self is this node's ID; it is always a ring member and always "live".
	Self string
	// Vnodes per node on the hash ring (default DefaultVnodes).
	Vnodes int
	// ProbeInterval spaces healthz liveness probes (default 2s).
	ProbeInterval time.Duration
	// StealInterval spaces work-steal attempts when this node has idle
	// capacity (default 1s; 0 keeps the default, negative disables the
	// steal loop).
	StealInterval time.Duration
	// SuspicionThreshold is how many consecutive probe (or transport)
	// failures a peer accumulates before it is declared dead (default 3).
	// One dropped probe therefore never flaps routing or triggers takeover.
	SuspicionThreshold int
	// Logger receives cluster lifecycle records; nil discards them.
	Logger Logger
	// Registry, when non-nil, exposes the cluster counters as Prometheus
	// series (forwards, proxied reads, peer fetches, steals, peer liveness).
	Registry *obs.Registry
}

// Logger is the subset of slog the cluster layer needs (avoids forcing a
// logger dependency on tests).
type Logger interface {
	Info(msg string, args ...any)
	Warn(msg string, args ...any)
}

type nopLogger struct{}

func (nopLogger) Info(string, ...any) {}
func (nopLogger) Warn(string, ...any) {}

// Cluster is one node's view of the sharded service: the ring, the peer
// table, and the counters. The ring and peer set are fixed at startup
// (static peer config); only liveness changes at runtime.
type Cluster struct {
	cfg   Config
	self  string
	ring  *Ring
	local Local
	log   Logger

	mu    sync.RWMutex
	peers map[string]*Peer
	order []string // peer IDs in AddPeer order, for stable iteration

	forwards, forwardErrs  atomic.Uint64
	proxiedReads           atomic.Uint64
	peerFetches            atomic.Uint64
	stealsThief, stealErrs atomic.Uint64

	// Per-hop latency histograms: how long one cross-node leg of a job's
	// journey takes (forward POST, steal round trip, takeover adoption).
	hopForward, hopSteal, hopAdopt *obs.Histogram

	// Replication stream state (this node as origin), guarded by replMu.
	// replMu is held across the flush POST so records reach the successor
	// in journal-commit order.
	replMu         sync.Mutex
	outbox         []ReplRecord
	needSnapshot   bool
	replGen        uint64 // bumped per sink record; detects stale snapshots
	lastReplTarget string
	runCtx         context.Context // set by Start; delegation watchers run under it
	delegated      []delegation    // parked until Start provides runCtx

	// Replica state (this node as successor) and self-healing counters.
	replEnabled             atomic.Bool
	replicas                *replicaStore
	replSent, replErrs      atomic.Uint64
	replIngested            atomic.Uint64
	takeovers, takeoverJobs atomic.Uint64
}

// New builds a single-member cluster around Self; AddPeer grows it. Bind
// attaches the local service before Start.
func New(cfg Config) *Cluster {
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = 2 * time.Second
	}
	if cfg.StealInterval == 0 {
		cfg.StealInterval = time.Second
	}
	if cfg.SuspicionThreshold <= 0 {
		cfg.SuspicionThreshold = 3
	}
	if cfg.Logger == nil {
		cfg.Logger = nopLogger{}
	}
	c := &Cluster{
		cfg:   cfg,
		self:  cfg.Self,
		ring:  NewRing(cfg.Vnodes),
		log:   cfg.Logger,
		peers: map[string]*Peer{},
		// The first successful flush is always a snapshot: it clears any
		// stale replica state a previous incarnation of this node left at
		// the successor, and covers journal records replayed before the
		// sink was attached.
		needSnapshot: true,
		replicas:     newReplicaStore(),
	}
	c.ring.Add(cfg.Self)
	// Registry.Histogram tolerates a nil registry (returns a working,
	// unregistered histogram), so the hop timers are always usable.
	const hopHelp = "Latency of one cross-node hop in a job's lifecycle."
	c.hopForward = cfg.Registry.Histogram("gpsd_cluster_hop_seconds", hopHelp, nil, "hop", "forward")
	c.hopSteal = cfg.Registry.Histogram("gpsd_cluster_hop_seconds", hopHelp, nil, "hop", "steal")
	c.hopAdopt = cfg.Registry.Histogram("gpsd_cluster_hop_seconds", hopHelp, nil, "hop", "adopt")
	c.registerMetrics(cfg.Registry)
	return c
}

// Self returns this node's ID.
func (c *Cluster) Self() string { return c.self }

// AddPeer registers a remote node and adds it to the ring. The peer's
// client carries the forwarding-loop guard header on every request it
// sends. Adding self or a duplicate ID is a no-op.
func (c *Cluster) AddPeer(id, url string) {
	if id == c.self {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.peers[id]; ok {
		return
	}
	p := &Peer{
		ID:  id,
		URL: url,
		client: client.New(url,
			client.WithHeader(ForwardHeader, c.self),
			client.WithHTTPClient(&http.Client{Timeout: 2 * time.Minute})),
	}
	c.peers[id] = p
	c.order = append(c.order, id)
	c.ring.Add(id)
}

// Bind attaches the local service the steal loop and peer endpoints drive.
func (c *Cluster) Bind(local Local) { c.local = local }

// Peer looks up a peer by node ID.
func (c *Cluster) Peer(id string) (*Peer, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	p, ok := c.peers[id]
	return p, ok
}

// Peers returns the remote nodes in registration order.
func (c *Cluster) Peers() []*Peer {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]*Peer, 0, len(c.order))
	for _, id := range c.order {
		out = append(out, c.peers[id])
	}
	return out
}

// PeersHealth summarizes peer liveness for /v1/healthz.
func (c *Cluster) PeersHealth() (list []client.PeerHealth, alive int) {
	for _, p := range c.Peers() {
		ph := client.PeerHealth{ID: p.ID, URL: p.URL, Alive: p.Alive(), Fails: p.Fails()}
		ph.Suspect = ph.Alive && ph.Fails > 0
		if ph.Alive {
			alive++
		}
		list = append(list, ph)
	}
	return list, alive
}

// RingSample routes n synthetic keys through Owner, showing how ownership
// is spread across live nodes right now (gpsctl cluster renders it).
func (c *Cluster) RingSample(n int) []client.RingOwner {
	out := make([]client.RingOwner, 0, n)
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("ring-sample-%02d", i)
		out = append(out, client.RingOwner{Key: key, Owner: c.Owner(key)})
	}
	return out
}

// live reports whether a node is usable as an owner right now: self always
// is; peers must have a passing probe.
func (c *Cluster) live(node string) bool {
	if node == c.self {
		return true
	}
	p, ok := c.Peer(node)
	return ok && p.Alive()
}

// Owner routes a canonical spec hash. The raw (liveness-blind) ring owner
// is used when live; a dead owner's keys all route to its single ring
// successor — the same node that holds its replicated journal and runs the
// takeover — so re-routed re-submits and adopted jobs meet on one node and
// the local single-flight table deduplicates them. Every node that agrees
// on the liveness set routes identically.
func (c *Cluster) Owner(hash string) string {
	owner := c.ring.Owner(hash)
	if owner == "" {
		return c.self
	}
	if c.live(owner) {
		return owner
	}
	if succ := c.ring.Successor(owner, c.live); succ != "" {
		return succ
	}
	return c.self // every peer down: serve locally rather than refuse
}

// SuccessorSelf reports this node's current replication target: its ring
// successor among live nodes ("" when no peer is live).
func (c *Cluster) SuccessorSelf() string {
	return c.ring.Successor(c.self, c.live)
}

// TakeoverTarget reports which live node promotes origin's jobs if origin
// is dead — the node the ID-prefix proxy path falls back to.
func (c *Cluster) TakeoverTarget(origin string) string {
	return c.ring.Successor(origin, c.live)
}

// Stats snapshots the cluster counters for /v1/healthz.
func (c *Cluster) Stats() client.ClusterStats {
	return client.ClusterStats{
		Forwards:      c.forwards.Load(),
		ForwardErrors: c.forwardErrs.Load(),
		ProxiedReads:  c.proxiedReads.Load(),
		PeerFetches:   c.peerFetches.Load(),
		StealsThief:   c.stealsThief.Load(),
		StealsVictim:  c.victimSteals(),
		StealErrors:   c.stealErrs.Load(),

		ReplicationTarget:  c.SuccessorSelf(),
		ReplicatedRecords:  c.replSent.Load(),
		ReplicationErrors:  c.replErrs.Load(),
		ReplicationLag:     c.replicationLag(),
		ReplicaJobsHeld:    uint64(c.replicas.jobs()),
		ReplicatedIngested: c.replIngested.Load(),
		Takeovers:          c.takeovers.Load(),
		TakeoverJobs:       c.takeoverJobs.Load(),
	}
}

func (c *Cluster) victimSteals() uint64 {
	if c.local == nil {
		return 0
	}
	return c.local.Metrics().JobsStolen
}

// registerMetrics binds the cluster counters into the Prometheus registry.
func (c *Cluster) registerMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	u64 := func(f func() uint64) func() float64 {
		return func() float64 { return float64(f()) }
	}
	reg.CounterFunc("gpsd_cluster_forwards_total", "Submits forwarded to their owner node.", u64(c.forwards.Load))
	reg.CounterFunc("gpsd_cluster_forward_errors_total", "Forwarded submits that failed in transit.", u64(c.forwardErrs.Load))
	reg.CounterFunc("gpsd_cluster_proxied_reads_total", "Status/result/cancel requests proxied to the owning node.", u64(c.proxiedReads.Load))
	reg.CounterFunc("gpsd_cluster_peer_fetches_total", "Results fetched from a peer's content-addressed cache.", u64(c.peerFetches.Load))
	reg.CounterFunc("gpsd_cluster_steals_total", "Work-steal outcomes by role.", u64(c.stealsThief.Load), "role", "thief")
	reg.CounterFunc("gpsd_cluster_steals_total", "Work-steal outcomes by role.", u64(c.victimSteals), "role", "victim")
	reg.CounterFunc("gpsd_cluster_steal_errors_total", "Steal attempts that failed in transit or on the thief.", u64(c.stealErrs.Load))
	reg.GaugeFunc("gpsd_cluster_peers_alive", "Peers whose last healthz probe passed.",
		func() float64 { _, alive := c.PeersHealth(); return float64(alive) })
	reg.GaugeFunc("gpsd_cluster_peers_total", "Configured remote peers.",
		func() float64 { return float64(len(c.Peers())) })
	reg.CounterFunc("gpsd_cluster_journal_replicated_total", "Journal records acknowledged by a ring successor.", u64(c.replSent.Load))
	reg.CounterFunc("gpsd_cluster_replication_errors_total", "Replication flushes that failed in transit or were refused.", u64(c.replErrs.Load))
	reg.CounterFunc("gpsd_cluster_journal_ingested_total", "Replicated journal records accepted from peers.", u64(c.replIngested.Load))
	reg.GaugeFunc("gpsd_cluster_replication_lag_records", "Committed journal records not yet acknowledged by a successor.",
		func() float64 { return float64(c.replicationLag()) })
	reg.GaugeFunc("gpsd_cluster_replica_jobs", "Peers' live jobs currently replicated onto this node.",
		func() float64 { return float64(c.replicas.jobs()) })
	reg.CounterFunc("gpsd_cluster_takeovers_total", "Takeover sweeps that promoted a dead peer's jobs.", u64(c.takeovers.Load))
	reg.CounterFunc("gpsd_cluster_takeover_jobs_total", "Jobs promoted from dead peers' replicated journals.", u64(c.takeoverJobs.Load))
}

// probeOne sends one healthz probe to one peer and folds the outcome into
// the suspicion state. A draining peer counts as dead for routing (it
// refuses new submissions) even though its healthz body still parses. A
// single success resets the failure streak; declaring death takes
// SuspicionThreshold consecutive failures.
func (c *Cluster) probeOne(ctx context.Context, p *Peer) {
	pctx, cancel := context.WithTimeout(ctx, 2*time.Second)
	h, err := p.client.Healthz(pctx)
	cancel()
	if err == nil && h.Status == "ok" {
		p.fails.Store(0)
		if !p.alive.Swap(true) {
			c.log.Info("peer up", "peer", p.ID, "url", p.URL)
		}
		p.mu.Lock()
		p.health = h
		p.mu.Unlock()
		return
	}
	if err == nil {
		err = fmt.Errorf("peer draining (status %q)", h.Status)
	}
	c.markFailure(p, err, false)
}

// suspect records a transport-level failure (forward, proxy, or replication
// flush) against a peer. One error never flaps routing; consecutive errors
// reach the same threshold as failed probes, so a genuinely dead owner
// stops attracting traffic before the next probe sweep confirms it.
func (c *Cluster) suspect(p *Peer, err error) {
	// The takeover sweep runs async here because suspect can fire while
	// replMu is held (a failed replication flush); checkTakeovers adopts
	// jobs, which journals, which re-enters the replication stream.
	c.markFailure(p, err, true)
}

// markFailure bumps a peer's failure streak and declares it dead at the
// suspicion threshold, triggering the takeover sweep for its replicas.
func (c *Cluster) markFailure(p *Peer, err error, asyncTakeover bool) {
	n := p.fails.Add(1)
	if int(n) < c.cfg.SuspicionThreshold {
		if p.Alive() {
			c.log.Warn("peer suspect", "peer", p.ID, "fails", n,
				"threshold", c.cfg.SuspicionThreshold, "err", err)
		}
		return
	}
	if p.alive.Swap(false) {
		c.log.Warn("peer down", "peer", p.ID, "url", p.URL, "fails", n, "err", err)
		if asyncTakeover {
			go c.checkTakeovers()
		} else {
			c.checkTakeovers()
		}
	}
}

// ProbeOnce runs one synchronous liveness sweep over every peer, then a
// takeover sweep. Tests and startup use it; steady-state probing runs on
// the per-peer jittered loops Start launches.
func (c *Cluster) ProbeOnce(ctx context.Context) {
	for _, p := range c.Peers() {
		c.probeOne(ctx, p)
	}
	c.checkTakeovers()
}

// probeSchedule derives a deterministic per-peer probe schedule: the first
// probe is offset into the interval and the period is skewed ±10%, both
// from the (self, peer) pair's ring hash, so N nodes probing each other
// never sweep in lockstep and a transient network hiccup doesn't fail every
// pair's probe in the same instant.
func probeSchedule(self, peer string, interval time.Duration) (offset, period time.Duration) {
	h := ringHash(self + "->" + peer)
	period = interval
	if interval >= 100*time.Millisecond {
		span := uint64(interval / 5) // ±10% of the interval
		period = interval - interval/10 + time.Duration(h%span)
		offset = time.Duration((h >> 32) % uint64(interval))
	}
	return offset, period
}

// Start runs the liveness, replication, and steal loops until ctx is
// canceled. The first probe sweep runs synchronously so routing has a
// liveness view before the daemon accepts traffic; after that each peer is
// probed on its own jittered schedule.
func (c *Cluster) Start(ctx context.Context) {
	c.ProbeOnce(ctx)

	// Adopt the run context and release any delegation watchers that were
	// registered during journal replay, before the loops existed.
	c.replMu.Lock()
	c.runCtx = ctx
	parked := c.delegated
	c.delegated = nil
	c.replMu.Unlock()
	for _, d := range parked {
		go c.watchDelegation(ctx, d)
	}

	for _, p := range c.Peers() {
		p := p
		go func() {
			offset, period := probeSchedule(c.self, p.ID, c.cfg.ProbeInterval)
			t := time.NewTimer(offset)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
				}
				c.probeOne(ctx, p)
				c.checkTakeovers()
				t.Reset(period)
			}
		}()
	}

	// Replication flusher: drains records buffered while no successor was
	// reachable, and pushes the initial snapshot once a successor is live.
	go func() {
		t := time.NewTicker(c.cfg.ProbeInterval)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				c.FlushReplication(ctx)
			}
		}
	}()

	if c.cfg.StealInterval > 0 && c.local != nil {
		go func() {
			t := time.NewTicker(c.cfg.StealInterval)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
					c.StealOnce(ctx)
				}
			}
		}()
	}
}

// traceHeader builds the header set carrying a traceparent value between
// nodes; nil when there is no trace to propagate.
func traceHeader(traceparent string) http.Header {
	if traceparent == "" {
		return nil
	}
	return http.Header{obs.TraceparentHeader: {traceparent}}
}

// ForwardSubmit relays a raw submit body to the owner node and returns its
// response verbatim (status code and body bytes), so the client sees
// exactly what the owner answered. traceparent (when non-empty) rides along
// so the owner mints the job under the submitting client's trace. The
// transport error (owner unreachable) is returned for the caller to fall
// back on.
func (c *Cluster) ForwardSubmit(ctx context.Context, owner string, body []byte, traceparent string) (int, []byte, error) {
	p, ok := c.Peer(owner)
	if !ok {
		return 0, nil, &client.APIError{StatusCode: http.StatusBadGateway, Message: "unknown owner node " + owner}
	}
	start := time.Now()
	code, resp, err := p.client.Do(ctx, http.MethodPost, "/v1/jobs", body, traceHeader(traceparent))
	if err != nil {
		c.forwardErrs.Add(1)
		c.suspect(p, err) // one error raises suspicion, not a routing flap
		return 0, nil, err
	}
	c.hopForward.Observe(time.Since(start).Seconds())
	c.forwards.Add(1)
	return code, resp, nil
}

// ProxyJob relays a status/result/cancel request to the node owning the
// job ID and returns its response verbatim. An incoming traceparent is
// propagated so the serving node can associate the read with the trace.
func (c *Cluster) ProxyJob(ctx context.Context, node, method, path, traceparent string) (int, []byte, error) {
	p, ok := c.Peer(node)
	if !ok {
		return 0, nil, &client.APIError{StatusCode: http.StatusBadGateway, Message: "unknown node " + node}
	}
	code, resp, err := p.client.Do(ctx, method, path, nil, traceHeader(traceparent))
	if err != nil {
		c.suspect(p, err)
		return 0, nil, err
	}
	c.proxiedReads.Add(1)
	return code, resp, nil
}

// FetchPeerResult asks every live peer's content-addressed cache for a
// canonical spec hash, returning the first hit. It backs
// service.Config.RemoteResult, so it runs at most once per job execution.
func (c *Cluster) FetchPeerResult(ctx context.Context, hash string) *report.Report {
	for _, p := range c.Peers() {
		if !p.Alive() {
			continue
		}
		pctx, cancel := context.WithTimeout(ctx, 10*time.Second)
		code, body, err := p.client.Do(pctx, http.MethodGet, "/v1/peer/results/"+hash, nil, nil)
		cancel()
		if err != nil || code != http.StatusOK {
			continue
		}
		var rep report.Report
		if jerr := json.Unmarshal(body, &rep); jerr != nil {
			c.log.Warn("peer result undecodable", "peer", p.ID, "hash", hash, "err", jerr)
			continue
		}
		c.peerFetches.Add(1)
		c.log.Info("peer result fetched", "peer", p.ID, "hash", hash)
		return &rep
	}
	return nil
}
