package cluster

import (
	"context"
	"encoding/json"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"gps/internal/client"
	"gps/internal/obs"
	"gps/internal/report"
	"gps/internal/service"
)

// ForwardHeader marks a request that already crossed one node boundary.
// Handlers seeing it always act locally — never forward or proxy again —
// so a stale ring view or a routing bug degrades to local handling instead
// of a forwarding loop.
const ForwardHeader = "X-GPS-Forwarded-From"

// Peer is one remote gpsd node: its static identity and address, the
// client used to reach it, and the liveness state maintained by the probe
// loop. Peers start dead and are marked alive by their first successful
// healthz probe.
type Peer struct {
	ID  string
	URL string

	client *client.Client
	alive  atomic.Bool

	mu     sync.Mutex
	health client.Health // last successful healthz body, for steal decisions
}

// Alive reports the last probe's verdict.
func (p *Peer) Alive() bool { return p.alive.Load() }

// Client returns the typed client for this peer.
func (p *Peer) Client() *client.Client { return p.client }

func (p *Peer) lastHealth() client.Health {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.health
}

// Local is the slice of the local service the cluster layer drives: submit
// and ride stolen work, answer peer result fetches, and hand out queued
// jobs to thieves. *service.Server implements it.
type Local interface {
	Submit(spec service.Spec) (service.Status, service.Outcome, error)
	WaitResult(ctx context.Context, id string) (service.Status, *report.Report, error)
	Metrics() service.Metrics
	ResultByHash(hash string) (*report.Report, bool)
	Steal(thief string) (service.StolenJob, bool)
	CompleteStolen(id string, res *report.Report, errMsg string) error
}

// Config sizes a Cluster.
type Config struct {
	// Self is this node's ID; it is always a ring member and always "live".
	Self string
	// Vnodes per node on the hash ring (default DefaultVnodes).
	Vnodes int
	// ProbeInterval spaces healthz liveness probes (default 2s).
	ProbeInterval time.Duration
	// StealInterval spaces work-steal attempts when this node has idle
	// capacity (default 1s; 0 keeps the default, negative disables the
	// steal loop).
	StealInterval time.Duration
	// Logger receives cluster lifecycle records; nil discards them.
	Logger Logger
	// Registry, when non-nil, exposes the cluster counters as Prometheus
	// series (forwards, proxied reads, peer fetches, steals, peer liveness).
	Registry *obs.Registry
}

// Logger is the subset of slog the cluster layer needs (avoids forcing a
// logger dependency on tests).
type Logger interface {
	Info(msg string, args ...any)
	Warn(msg string, args ...any)
}

type nopLogger struct{}

func (nopLogger) Info(string, ...any) {}
func (nopLogger) Warn(string, ...any) {}

// Cluster is one node's view of the sharded service: the ring, the peer
// table, and the counters. The ring and peer set are fixed at startup
// (static peer config); only liveness changes at runtime.
type Cluster struct {
	cfg   Config
	self  string
	ring  *Ring
	local Local
	log   Logger

	mu    sync.RWMutex
	peers map[string]*Peer
	order []string // peer IDs in AddPeer order, for stable iteration

	forwards, forwardErrs  atomic.Uint64
	proxiedReads           atomic.Uint64
	peerFetches            atomic.Uint64
	stealsThief, stealErrs atomic.Uint64
}

// New builds a single-member cluster around Self; AddPeer grows it. Bind
// attaches the local service before Start.
func New(cfg Config) *Cluster {
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = 2 * time.Second
	}
	if cfg.StealInterval == 0 {
		cfg.StealInterval = time.Second
	}
	if cfg.Logger == nil {
		cfg.Logger = nopLogger{}
	}
	c := &Cluster{
		cfg:   cfg,
		self:  cfg.Self,
		ring:  NewRing(cfg.Vnodes),
		log:   cfg.Logger,
		peers: map[string]*Peer{},
	}
	c.ring.Add(cfg.Self)
	c.registerMetrics(cfg.Registry)
	return c
}

// Self returns this node's ID.
func (c *Cluster) Self() string { return c.self }

// AddPeer registers a remote node and adds it to the ring. The peer's
// client carries the forwarding-loop guard header on every request it
// sends. Adding self or a duplicate ID is a no-op.
func (c *Cluster) AddPeer(id, url string) {
	if id == c.self {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.peers[id]; ok {
		return
	}
	p := &Peer{
		ID:  id,
		URL: url,
		client: client.New(url,
			client.WithHeader(ForwardHeader, c.self),
			client.WithHTTPClient(&http.Client{Timeout: 2 * time.Minute})),
	}
	c.peers[id] = p
	c.order = append(c.order, id)
	c.ring.Add(id)
}

// Bind attaches the local service the steal loop and peer endpoints drive.
func (c *Cluster) Bind(local Local) { c.local = local }

// Peer looks up a peer by node ID.
func (c *Cluster) Peer(id string) (*Peer, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	p, ok := c.peers[id]
	return p, ok
}

// Peers returns the remote nodes in registration order.
func (c *Cluster) Peers() []*Peer {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]*Peer, 0, len(c.order))
	for _, id := range c.order {
		out = append(out, c.peers[id])
	}
	return out
}

// PeersHealth summarizes peer liveness for /v1/healthz.
func (c *Cluster) PeersHealth() (list []client.PeerHealth, alive int) {
	for _, p := range c.Peers() {
		ph := client.PeerHealth{ID: p.ID, URL: p.URL, Alive: p.Alive()}
		if ph.Alive {
			alive++
		}
		list = append(list, ph)
	}
	return list, alive
}

// live reports whether a node is usable as an owner right now: self always
// is; peers must have a passing probe.
func (c *Cluster) live(node string) bool {
	if node == c.self {
		return true
	}
	p, ok := c.Peer(node)
	return ok && p.Alive()
}

// Owner routes a canonical spec hash: the ring owner among live nodes.
// Every node that agrees on the liveness set routes the hash identically,
// so a dead owner's keys land deterministically on its ring successor
// until it returns.
func (c *Cluster) Owner(hash string) string {
	owner := c.ring.OwnerAmong(hash, c.live)
	if owner == "" {
		owner = c.self // every peer down: serve locally rather than refuse
	}
	return owner
}

// Stats snapshots the cluster counters for /v1/healthz.
func (c *Cluster) Stats() client.ClusterStats {
	return client.ClusterStats{
		Forwards:      c.forwards.Load(),
		ForwardErrors: c.forwardErrs.Load(),
		ProxiedReads:  c.proxiedReads.Load(),
		PeerFetches:   c.peerFetches.Load(),
		StealsThief:   c.stealsThief.Load(),
		StealsVictim:  c.victimSteals(),
		StealErrors:   c.stealErrs.Load(),
	}
}

func (c *Cluster) victimSteals() uint64 {
	if c.local == nil {
		return 0
	}
	return c.local.Metrics().JobsStolen
}

// registerMetrics binds the cluster counters into the Prometheus registry.
func (c *Cluster) registerMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	u64 := func(f func() uint64) func() float64 {
		return func() float64 { return float64(f()) }
	}
	reg.CounterFunc("gpsd_cluster_forwards_total", "Submits forwarded to their owner node.", u64(c.forwards.Load))
	reg.CounterFunc("gpsd_cluster_forward_errors_total", "Forwarded submits that failed in transit.", u64(c.forwardErrs.Load))
	reg.CounterFunc("gpsd_cluster_proxied_reads_total", "Status/result/cancel requests proxied to the owning node.", u64(c.proxiedReads.Load))
	reg.CounterFunc("gpsd_cluster_peer_fetches_total", "Results fetched from a peer's content-addressed cache.", u64(c.peerFetches.Load))
	reg.CounterFunc("gpsd_cluster_steals_total", "Work-steal outcomes by role.", u64(c.stealsThief.Load), "role", "thief")
	reg.CounterFunc("gpsd_cluster_steals_total", "Work-steal outcomes by role.", u64(c.victimSteals), "role", "victim")
	reg.CounterFunc("gpsd_cluster_steal_errors_total", "Steal attempts that failed in transit or on the thief.", u64(c.stealErrs.Load))
	reg.GaugeFunc("gpsd_cluster_peers_alive", "Peers whose last healthz probe passed.",
		func() float64 { _, alive := c.PeersHealth(); return float64(alive) })
	reg.GaugeFunc("gpsd_cluster_peers_total", "Configured remote peers.",
		func() float64 { return float64(len(c.Peers())) })
}

// ProbeOnce runs one liveness sweep: every peer gets a healthz probe with a
// short per-probe timeout. A draining peer counts as dead for routing (it
// refuses new submissions) even though its healthz body still parses.
func (c *Cluster) ProbeOnce(ctx context.Context) {
	for _, p := range c.Peers() {
		pctx, cancel := context.WithTimeout(ctx, 2*time.Second)
		h, err := p.client.Healthz(pctx)
		cancel()
		up := err == nil && h.Status == "ok"
		was := p.alive.Swap(up)
		if was != up {
			if up {
				c.log.Info("peer up", "peer", p.ID, "url", p.URL)
			} else {
				c.log.Warn("peer down", "peer", p.ID, "url", p.URL, "err", err)
			}
		}
		if err == nil {
			p.mu.Lock()
			p.health = h
			p.mu.Unlock()
		}
	}
}

// Start runs the probe loop (and the steal loop, unless disabled) until
// ctx is canceled. The first probe sweep runs synchronously so routing has
// a liveness view before the daemon accepts traffic.
func (c *Cluster) Start(ctx context.Context) {
	c.ProbeOnce(ctx)
	go func() {
		t := time.NewTicker(c.cfg.ProbeInterval)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				c.ProbeOnce(ctx)
			}
		}
	}()
	if c.cfg.StealInterval > 0 && c.local != nil {
		go func() {
			t := time.NewTicker(c.cfg.StealInterval)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
					c.StealOnce(ctx)
				}
			}
		}()
	}
}

// ForwardSubmit relays a raw submit body to the owner node and returns its
// response verbatim (status code and body bytes), so the client sees
// exactly what the owner answered. The transport error (owner unreachable)
// is returned for the caller to fall back on.
func (c *Cluster) ForwardSubmit(ctx context.Context, owner string, body []byte) (int, []byte, error) {
	p, ok := c.Peer(owner)
	if !ok {
		return 0, nil, &client.APIError{StatusCode: http.StatusBadGateway, Message: "unknown owner node " + owner}
	}
	code, resp, err := p.client.Do(ctx, http.MethodPost, "/v1/jobs", body, nil)
	if err != nil {
		c.forwardErrs.Add(1)
		p.alive.Store(false) // fail fast until the next probe
		return 0, nil, err
	}
	c.forwards.Add(1)
	return code, resp, nil
}

// ProxyJob relays a status/result/cancel request to the node owning the
// job ID and returns its response verbatim.
func (c *Cluster) ProxyJob(ctx context.Context, node, method, path string) (int, []byte, error) {
	p, ok := c.Peer(node)
	if !ok {
		return 0, nil, &client.APIError{StatusCode: http.StatusBadGateway, Message: "unknown node " + node}
	}
	code, resp, err := p.client.Do(ctx, method, path, nil, nil)
	if err != nil {
		p.alive.Store(false)
		return 0, nil, err
	}
	c.proxiedReads.Add(1)
	return code, resp, nil
}

// FetchPeerResult asks every live peer's content-addressed cache for a
// canonical spec hash, returning the first hit. It backs
// service.Config.RemoteResult, so it runs at most once per job execution.
func (c *Cluster) FetchPeerResult(ctx context.Context, hash string) *report.Report {
	for _, p := range c.Peers() {
		if !p.Alive() {
			continue
		}
		pctx, cancel := context.WithTimeout(ctx, 10*time.Second)
		code, body, err := p.client.Do(pctx, http.MethodGet, "/v1/peer/results/"+hash, nil, nil)
		cancel()
		if err != nil || code != http.StatusOK {
			continue
		}
		var rep report.Report
		if jerr := json.Unmarshal(body, &rep); jerr != nil {
			c.log.Warn("peer result undecodable", "peer", p.ID, "hash", hash, "err", jerr)
			continue
		}
		c.peerFetches.Add(1)
		c.log.Info("peer result fetched", "peer", p.ID, "hash", hash)
		return &rep
	}
	return nil
}
