package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"gps/internal/client"
	"gps/internal/service"
)

// federateTimeout bounds one peer's metrics fetch during a federation
// fan-out; a slow peer delays the view by at most this long (fetches run
// concurrently).
const federateTimeout = 5 * time.Second

// FederatedMetrics assembles the cluster-wide metrics view behind
// GET /v1/cluster/metrics: this node's own snapshot first, then every
// configured peer's /v1/metrics fetched concurrently. Dead peers appear
// with Alive=false and no metrics rather than being omitted, so operators
// see the full ring.
func (c *Cluster) FederatedMetrics(ctx context.Context) client.ClusterMetricsResp {
	var nodes []client.NodeMetrics
	if c.local != nil {
		m := c.local.Metrics()
		nodes = append(nodes, client.NodeMetrics{Node: c.self, Alive: true, Metrics: &m})
	}
	peers := c.Peers()
	peerNodes := make([]client.NodeMetrics, len(peers))
	var wg sync.WaitGroup
	for i, p := range peers {
		nm := client.NodeMetrics{Node: p.ID, URL: p.URL, Alive: p.Alive()}
		if !p.Alive() {
			peerNodes[i] = nm
			continue
		}
		wg.Add(1)
		go func(i int, p *Peer, nm client.NodeMetrics) {
			defer wg.Done()
			pctx, cancel := context.WithTimeout(ctx, federateTimeout)
			defer cancel()
			code, body, err := p.client.Do(pctx, http.MethodGet, "/v1/metrics", nil, nil)
			switch {
			case err != nil:
				nm.Error = err.Error()
			case code != http.StatusOK:
				nm.Error = fmt.Sprintf("peer answered %d", code)
			default:
				var m service.Metrics
				if jerr := json.Unmarshal(body, &m); jerr != nil {
					nm.Error = "undecodable metrics: " + jerr.Error()
				} else {
					nm.Metrics = &m
				}
			}
			peerNodes[i] = nm
		}(i, p, nm)
	}
	wg.Wait()
	return client.ClusterMetricsResp{Nodes: append(nodes, peerNodes...)}
}
