package interconnect

// Platform summarizes a shipping multi-GPU system's local (HBM) versus
// remote (inter-GPU) bandwidth, reproducing the data behind Figure 3 of the
// paper: despite a 38x improvement in interconnect bandwidth from PCIe 3.0
// to NVLink3+NVSwitch, a ~3x local:remote gap persists.
type Platform struct {
	Name     string
	GPUArch  string
	Fabric   string
	LocalBW  float64 // bytes/s to local DRAM
	RemoteBW float64 // bytes/s to a peer GPU's memory
}

// Platforms returns the five systems plotted in Figure 3, oldest first.
func Platforms() []Platform {
	return []Platform{
		{
			Name: "Discrete", GPUArch: "Kepler", Fabric: "PCIe 3.0",
			LocalBW: 288e9, RemoteBW: PCIe3Bandwidth,
		},
		{
			Name: "DGX-1", GPUArch: "Pascal", Fabric: "NVLink 1",
			LocalBW: 720e9, RemoteBW: NVLink1Bandwidth,
		},
		{
			Name: "DGX-1V", GPUArch: "Volta", Fabric: "NVLink 2",
			LocalBW: 900e9, RemoteBW: NVLink2Bandwidth,
		},
		{
			Name: "DGX-2", GPUArch: "Volta", Fabric: "NVLink 2 + NVSwitch",
			LocalBW: 900e9, RemoteBW: 300e9,
		},
		{
			Name: "DGX-A100", GPUArch: "Ampere", Fabric: "NVLink 3 + NVSwitch",
			LocalBW: 1555e9, RemoteBW: 600e9,
		},
	}
}

// Gap returns the local:remote bandwidth ratio for the platform.
func (p Platform) Gap() float64 { return p.LocalBW / p.RemoteBW }
