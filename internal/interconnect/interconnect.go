// Package interconnect models the inter-GPU fabrics evaluated in the GPS
// paper: PCIe generations 3.0 through 6.0 (tree topologies through a host
// switch), NVLink point-to-point meshes (DGX-1 style hybrid cube mesh),
// NVSwitch crossbars (DGX-2 / DGX-A100 style), and an ideal infinite
// bandwidth fabric used to establish the strong-scaling upper bound.
//
// A Fabric is a static description: a set of unidirectional links plus a
// path table mapping each (src, dst) GPU pair to the ordered links a
// transfer traverses. Contention is resolved by the timing simulator
// (internal/timing), which runs max-min fair sharing over these links; this
// package only describes capacity, latency and routing.
package interconnect

import (
	"fmt"
	"strings"
)

// LinkID identifies one unidirectional link within a Fabric.
type LinkID int

// Link is a unidirectional channel with a fixed capacity.
type Link struct {
	ID        LinkID
	Name      string
	Bandwidth float64 // bytes per second
	Latency   float64 // seconds, one-way propagation + serialization setup
}

// Fabric is an immutable interconnect description for n GPUs.
type Fabric struct {
	name    string
	n       int
	links   []Link
	paths   [][][]LinkID // paths[src][dst], nil for src==dst
	latency [][]float64  // end-to-end latency per pair
	ideal   bool         // true for the infinite-bandwidth fabric
}

// Name returns a human-readable fabric name, e.g. "PCIe 3.0 x16 (4 GPUs)".
func (f *Fabric) Name() string { return f.name }

// NumGPUs returns the number of GPU endpoints.
func (f *Fabric) NumGPUs() int { return f.n }

// NumLinks returns the number of unidirectional links.
func (f *Fabric) NumLinks() int { return len(f.links) }

// Ideal reports whether this is the infinite-bandwidth fabric (transfers are
// free and instantaneous).
func (f *Fabric) Ideal() bool { return f.ideal }

// Link returns the link with the given ID.
func (f *Fabric) Link(id LinkID) Link {
	return f.links[id]
}

// Path returns the ordered links traversed by a transfer from src to dst.
// The returned slice must not be modified. Path(g, g) is nil: local traffic
// never touches the fabric. For the ideal fabric all paths are nil.
func (f *Fabric) Path(src, dst int) []LinkID {
	f.check(src)
	f.check(dst)
	if src == dst {
		return nil
	}
	return f.paths[src][dst]
}

// Latency returns the end-to-end one-way latency from src to dst in seconds.
func (f *Fabric) Latency(src, dst int) float64 {
	f.check(src)
	f.check(dst)
	if src == dst || f.ideal {
		return 0
	}
	return f.latency[src][dst]
}

// PerGPUEgress returns the minimum bandwidth on the first hop out of a GPU,
// i.e. the best case injection bandwidth available to that GPU.
func (f *Fabric) PerGPUEgress(gpu int) float64 {
	f.check(gpu)
	if f.ideal {
		return infiniteBW
	}
	best := 0.0
	for dst := 0; dst < f.n; dst++ {
		if dst == gpu {
			continue
		}
		p := f.paths[gpu][dst]
		if len(p) == 0 {
			continue
		}
		if bw := f.links[p[0]].Bandwidth; bw > best {
			best = bw
		}
	}
	return best
}

// PairBandwidth returns the bottleneck bandwidth on the path src->dst in
// isolation (no contention).
func (f *Fabric) PairBandwidth(src, dst int) float64 {
	if src == dst || f.ideal {
		return infiniteBW
	}
	min := infiniteBW
	for _, id := range f.Path(src, dst) {
		if bw := f.links[id].Bandwidth; bw < min {
			min = bw
		}
	}
	return min
}

func (f *Fabric) check(gpu int) {
	if gpu < 0 || gpu >= f.n {
		panic(fmt.Sprintf("interconnect: GPU %d out of range [0,%d)", gpu, f.n))
	}
}

// infiniteBW stands in for unlimited capacity in queries against the ideal
// fabric; it is large enough that no simulated transfer is ever bound by it.
const infiniteBW = 1e30

// Per-direction, per-GPU bandwidth of an x16 PCIe endpoint in bytes/s.
// PCIe 6.0 follows the paper's projection: "a projected PCIe 6.0
// interconnect (operating at 128GB/s)".
const (
	PCIe3Bandwidth = 16e9
	PCIe4Bandwidth = 32e9
	PCIe5Bandwidth = 64e9
	PCIe6Bandwidth = 128e9

	pcieLatency = 1.3e-6
)

// NVLink per-GPU aggregate bandwidths per direction in bytes/s.
const (
	NVLink1Bandwidth = 80e9  // P100: 4 links x 20 GB/s
	NVLink2Bandwidth = 150e9 // V100: 6 links x 25 GB/s
	NVLink3Bandwidth = 300e9 // A100: 12 links x 25 GB/s

	nvlinkLatency = 700e-9
)

// PCIeGen identifies a PCIe generation for the tree builder.
type PCIeGen int

// PCIe generations supported by the sensitivity sweep in Figure 13.
const (
	PCIe3 PCIeGen = 3
	PCIe4 PCIeGen = 4
	PCIe5 PCIeGen = 5
	PCIe6 PCIeGen = 6
)

// Bandwidth returns the per-direction x16 bandwidth of the generation.
func (g PCIeGen) Bandwidth() float64 {
	switch g {
	case PCIe3:
		return PCIe3Bandwidth
	case PCIe4:
		return PCIe4Bandwidth
	case PCIe5:
		return PCIe5Bandwidth
	case PCIe6:
		return PCIe6Bandwidth
	}
	panic(fmt.Sprintf("interconnect: unknown PCIe generation %d", g))
}

func (g PCIeGen) String() string { return fmt.Sprintf("PCIe %d.0", g) }

// ByName builds the named fabric for a GPU count. The names are the ones the
// CLIs and the gpsd job specs accept: pcie3..pcie6, nvswitch, cubemesh,
// infinite (case-insensitive).
func ByName(name string, gpus int) (*Fabric, error) {
	switch strings.ToLower(name) {
	case "pcie3":
		return PCIeTree(gpus, PCIe3), nil
	case "pcie4":
		return PCIeTree(gpus, PCIe4), nil
	case "pcie5":
		return PCIeTree(gpus, PCIe5), nil
	case "pcie6":
		return PCIeTree(gpus, PCIe6), nil
	case "nvswitch":
		return NVSwitch(gpus, NVLink2Bandwidth), nil
	case "hnvswitch":
		return HierarchicalNVSwitch(gpus, 8, NVLink3Bandwidth, 2), nil
	case "cubemesh":
		if gpus != 8 {
			return nil, fmt.Errorf("interconnect: cubemesh is an 8-GPU topology, got %d GPUs", gpus)
		}
		return HybridCubeMesh(25e9), nil
	case "infinite":
		return Infinite(gpus), nil
	}
	return nil, fmt.Errorf("interconnect: unknown fabric %q (pcie3..pcie6, nvswitch, hnvswitch, cubemesh, infinite)", name)
}

// PCIeTree builds an n-GPU PCIe fabric: every GPU owns one upstream (egress)
// and one downstream (ingress) x16 link into a non-blocking switch complex,
// so a peer transfer traverses the source's egress link and the
// destination's ingress link. This matches how peer DMA flows through PCIe
// switches in multi-GPU servers: the per-GPU x16 links, not the switch, are
// the bottleneck.
func PCIeTree(n int, gen PCIeGen) *Fabric {
	return starFabric(fmt.Sprintf("%s x16 (%d GPUs)", gen, n), n, gen.Bandwidth(), pcieLatency)
}

// NVSwitch builds an n-GPU crossbar where each GPU has perGPU bytes/s of
// injection and ejection bandwidth through a non-blocking switch, as in
// DGX-2 and DGX-A100 systems.
func NVSwitch(n int, perGPU float64) *Fabric {
	return starFabric(fmt.Sprintf("NVSwitch %.0fGB/s (%d GPUs)", perGPU/1e9, n), n, perGPU, nvlinkLatency)
}

// HierarchicalNVSwitch builds the multi-level switch topology of 32/64-GPU
// systems (DGX pods joined by a second switch tier): GPUs are grouped into
// pods of podSize, each GPU has perGPU bytes/s into its pod switch, and each
// pod connects to a non-blocking spine through an uplink/downlink pair
// carrying podSize*perGPU/oversub bytes/s. Intra-pod transfers see the flat
// NVSwitch path; cross-pod transfers additionally cross both pod trunks and
// pay a second switch traversal's latency. oversub is the pod-to-spine
// oversubscription factor (1 = full bisection, 2 = half). With n <= podSize
// the topology degenerates to the flat crossbar.
func HierarchicalNVSwitch(n, podSize int, perGPU, oversub float64) *Fabric {
	if n < 1 {
		panic("interconnect: fabric needs at least one GPU")
	}
	if podSize < 1 {
		panic("interconnect: pod needs at least one GPU")
	}
	if perGPU <= 0 {
		panic("interconnect: bandwidth must be positive")
	}
	if oversub < 1 {
		panic("interconnect: oversubscription factor below 1")
	}
	if n <= podSize {
		return NVSwitch(n, perGPU)
	}
	pods := (n + podSize - 1) / podSize
	f := &Fabric{
		name: fmt.Sprintf("NVSwitch %.0fGB/s x%d pods of %d (%d GPUs)",
			perGPU/1e9, pods, podSize, n),
		n: n,
	}
	egress := make([]LinkID, n)
	ingress := make([]LinkID, n)
	for g := 0; g < n; g++ {
		egress[g] = f.addLink(fmt.Sprintf("gpu%d.tx", g), perGPU, nvlinkLatency/2)
		ingress[g] = f.addLink(fmt.Sprintf("gpu%d.rx", g), perGPU, nvlinkLatency/2)
	}
	trunkBW := float64(podSize) * perGPU / oversub
	up := make([]LinkID, pods)
	down := make([]LinkID, pods)
	for p := 0; p < pods; p++ {
		up[p] = f.addLink(fmt.Sprintf("pod%d.up", p), trunkBW, nvlinkLatency/2)
		down[p] = f.addLink(fmt.Sprintf("pod%d.down", p), trunkBW, nvlinkLatency/2)
	}
	f.buildPaths(func(src, dst int) []LinkID {
		sp, dp := src/podSize, dst/podSize
		if sp == dp {
			return []LinkID{egress[src], ingress[dst]}
		}
		return []LinkID{egress[src], up[sp], down[dp], ingress[dst]}
	})
	return f
}

// starFabric wires each GPU to a non-blocking core with one egress and one
// ingress link of the given capacity.
func starFabric(name string, n int, bw, lat float64) *Fabric {
	if n < 1 {
		panic("interconnect: fabric needs at least one GPU")
	}
	if bw <= 0 {
		panic("interconnect: bandwidth must be positive")
	}
	f := &Fabric{name: name, n: n}
	egress := make([]LinkID, n)
	ingress := make([]LinkID, n)
	for g := 0; g < n; g++ {
		egress[g] = f.addLink(fmt.Sprintf("gpu%d.tx", g), bw, lat/2)
		ingress[g] = f.addLink(fmt.Sprintf("gpu%d.rx", g), bw, lat/2)
	}
	f.buildPaths(func(src, dst int) []LinkID {
		return []LinkID{egress[src], ingress[dst]}
	})
	return f
}

// FullMesh builds a fabric with a dedicated unidirectional link of perLink
// bytes/s between every ordered GPU pair (an idealized NVLink all-to-all).
func FullMesh(n int, perLink, lat float64) *Fabric {
	if n < 1 {
		panic("interconnect: fabric needs at least one GPU")
	}
	f := &Fabric{name: fmt.Sprintf("full mesh %.0fGB/s (%d GPUs)", perLink/1e9, n), n: n}
	direct := make([][]LinkID, n)
	for s := 0; s < n; s++ {
		direct[s] = make([]LinkID, n)
		for d := 0; d < n; d++ {
			if s == d {
				continue
			}
			direct[s][d] = f.addLink(fmt.Sprintf("gpu%d->gpu%d", s, d), perLink, lat)
		}
	}
	f.buildPaths(func(src, dst int) []LinkID {
		return []LinkID{direct[src][dst]}
	})
	return f
}

// HybridCubeMesh builds the 8-GPU DGX-1 NVLink topology: two quads of
// fully-connected GPUs with inter-quad links between corresponding corners.
// GPU pairs without a direct link route through one intermediate hop inside
// the source quad. perLink is the bandwidth of a single NVLink connection
// per direction.
func HybridCubeMesh(perLink float64) *Fabric {
	const n = 8
	f := &Fabric{name: fmt.Sprintf("hybrid cube mesh %.0fGB/s/link", perLink/1e9), n: n}
	link := make(map[[2]int]LinkID)
	addBidi := func(a, b int) {
		link[[2]int{a, b}] = f.addLink(fmt.Sprintf("gpu%d->gpu%d", a, b), perLink, nvlinkLatency)
		link[[2]int{b, a}] = f.addLink(fmt.Sprintf("gpu%d->gpu%d", b, a), perLink, nvlinkLatency)
	}
	// Intra-quad full connectivity.
	for _, quad := range [][4]int{{0, 1, 2, 3}, {4, 5, 6, 7}} {
		for i := 0; i < 4; i++ {
			for j := i + 1; j < 4; j++ {
				addBidi(quad[i], quad[j])
			}
		}
	}
	// Inter-quad corner links.
	for g := 0; g < 4; g++ {
		addBidi(g, g+4)
	}
	f.buildPaths(func(src, dst int) []LinkID {
		if id, ok := link[[2]int{src, dst}]; ok {
			return []LinkID{id}
		}
		// Cross-quad without a direct link: hop through the source-quad GPU
		// that owns the corner link toward the destination's position.
		via := dst - 4
		if dst < 4 {
			via = dst + 4
		}
		// via is in src's quad and has a direct corner link to dst.
		return []LinkID{link[[2]int{src, via}], link[[2]int{via, dst}]}
	})
	return f
}

// Infinite builds the ideal fabric: all transfers complete instantly and
// consume no bandwidth. It models the paper's "infinite bandwidth
// interconnect" upper bound, obtained by eliding transfer time.
func Infinite(n int) *Fabric {
	if n < 1 {
		panic("interconnect: fabric needs at least one GPU")
	}
	f := &Fabric{name: fmt.Sprintf("infinite BW (%d GPUs)", n), n: n, ideal: true}
	f.buildPaths(func(src, dst int) []LinkID { return nil })
	return f
}

func (f *Fabric) addLink(name string, bw, lat float64) LinkID {
	id := LinkID(len(f.links))
	f.links = append(f.links, Link{ID: id, Name: name, Bandwidth: bw, Latency: lat})
	return id
}

func (f *Fabric) buildPaths(route func(src, dst int) []LinkID) {
	f.paths = make([][][]LinkID, f.n)
	f.latency = make([][]float64, f.n)
	for s := 0; s < f.n; s++ {
		f.paths[s] = make([][]LinkID, f.n)
		f.latency[s] = make([]float64, f.n)
		for d := 0; d < f.n; d++ {
			if s == d {
				continue
			}
			p := route(s, d)
			f.paths[s][d] = p
			lat := 0.0
			for _, id := range p {
				lat += f.links[id].Latency
			}
			f.latency[s][d] = lat
		}
	}
}
