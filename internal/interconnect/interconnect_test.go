package interconnect

import (
	"math/rand"
	"testing"
)

func TestPCIeGenBandwidths(t *testing.T) {
	want := map[PCIeGen]float64{
		PCIe3: 16e9, PCIe4: 32e9, PCIe5: 64e9, PCIe6: 128e9,
	}
	for gen, bw := range want {
		if got := gen.Bandwidth(); got != bw {
			t.Errorf("%v bandwidth = %g, want %g", gen, got, bw)
		}
	}
	// Each generation doubles.
	if PCIe4.Bandwidth() != 2*PCIe3.Bandwidth() ||
		PCIe5.Bandwidth() != 2*PCIe4.Bandwidth() ||
		PCIe6.Bandwidth() != 2*PCIe5.Bandwidth() {
		t.Error("PCIe generations should double bandwidth")
	}
}

func TestPCIeTreePaths(t *testing.T) {
	f := PCIeTree(4, PCIe3)
	if f.NumGPUs() != 4 {
		t.Fatalf("NumGPUs = %d, want 4", f.NumGPUs())
	}
	if f.NumLinks() != 8 {
		t.Fatalf("NumLinks = %d, want 8 (tx+rx per GPU)", f.NumLinks())
	}
	for s := 0; s < 4; s++ {
		for d := 0; d < 4; d++ {
			p := f.Path(s, d)
			if s == d {
				if p != nil {
					t.Fatalf("Path(%d,%d) = %v, want nil for local", s, d, p)
				}
				continue
			}
			if len(p) != 2 {
				t.Fatalf("Path(%d,%d) has %d hops, want 2", s, d, len(p))
			}
			if f.Link(p[0]).Bandwidth != PCIe3Bandwidth || f.Link(p[1]).Bandwidth != PCIe3Bandwidth {
				t.Fatalf("Path(%d,%d) links have wrong bandwidth", s, d)
			}
		}
	}
	// The egress link is shared across all destinations from one source.
	if f.Path(0, 1)[0] != f.Path(0, 2)[0] || f.Path(0, 1)[0] != f.Path(0, 3)[0] {
		t.Error("egress link should be shared for all destinations")
	}
	// The ingress link is shared across all sources to one destination.
	if f.Path(1, 0)[1] != f.Path(2, 0)[1] {
		t.Error("ingress link should be shared for all sources")
	}
	// Egress of src and ingress of dst are distinct links.
	if f.Path(0, 1)[0] == f.Path(1, 0)[0] {
		t.Error("distinct GPUs should own distinct egress links")
	}
}

func TestFabricLatency(t *testing.T) {
	f := PCIeTree(2, PCIe3)
	if f.Latency(0, 0) != 0 {
		t.Error("local latency should be 0")
	}
	if got := f.Latency(0, 1); got != pcieLatency {
		t.Errorf("latency = %g, want %g", got, pcieLatency)
	}
	nv := NVSwitch(4, NVLink2Bandwidth)
	if got := nv.Latency(0, 3); got != nvlinkLatency {
		t.Errorf("NVSwitch latency = %g, want %g", got, nvlinkLatency)
	}
}

func TestInfiniteFabric(t *testing.T) {
	f := Infinite(16)
	if !f.Ideal() {
		t.Fatal("Infinite fabric should be ideal")
	}
	if f.NumLinks() != 0 {
		t.Fatalf("ideal fabric has %d links, want 0", f.NumLinks())
	}
	for s := 0; s < 16; s++ {
		for d := 0; d < 16; d++ {
			if f.Path(s, d) != nil {
				t.Fatal("ideal fabric paths should be nil")
			}
			if f.Latency(s, d) != 0 {
				t.Fatal("ideal fabric latency should be 0")
			}
		}
	}
	if f.PairBandwidth(0, 1) < 1e20 {
		t.Fatal("ideal fabric should report unbounded pair bandwidth")
	}
}

func TestFullMesh(t *testing.T) {
	f := FullMesh(4, 25e9, 700e-9)
	if f.NumLinks() != 12 {
		t.Fatalf("NumLinks = %d, want 12", f.NumLinks())
	}
	seen := map[LinkID]bool{}
	for s := 0; s < 4; s++ {
		for d := 0; d < 4; d++ {
			if s == d {
				continue
			}
			p := f.Path(s, d)
			if len(p) != 1 {
				t.Fatalf("mesh path %d->%d should be direct", s, d)
			}
			if seen[p[0]] {
				t.Fatalf("link %d reused for multiple pairs", p[0])
			}
			seen[p[0]] = true
		}
	}
}

func TestHybridCubeMesh(t *testing.T) {
	f := HybridCubeMesh(20e9)
	if f.NumGPUs() != 8 {
		t.Fatalf("HCM should have 8 GPUs")
	}
	// 2 quads x 6 intra-quad pairs + 4 corner pairs = 16 pairs, 32 unidirectional links.
	if f.NumLinks() != 32 {
		t.Fatalf("NumLinks = %d, want 32", f.NumLinks())
	}
	// Intra-quad: direct.
	if len(f.Path(0, 3)) != 1 {
		t.Errorf("path 0->3 should be direct, got %d hops", len(f.Path(0, 3)))
	}
	// Corner pair: direct.
	if len(f.Path(2, 6)) != 1 {
		t.Errorf("path 2->6 should be direct, got %d hops", len(f.Path(2, 6)))
	}
	// Non-corner cross-quad: two hops.
	if len(f.Path(0, 5)) != 2 {
		t.Errorf("path 0->5 should be 2 hops, got %d", len(f.Path(0, 5)))
	}
	// Every path's links must exist and route src->...->dst consistently.
	for s := 0; s < 8; s++ {
		for d := 0; d < 8; d++ {
			if s == d {
				continue
			}
			p := f.Path(s, d)
			if len(p) == 0 || len(p) > 2 {
				t.Fatalf("path %d->%d has %d hops", s, d, len(p))
			}
		}
	}
}

func TestPairBandwidthBottleneck(t *testing.T) {
	f := PCIeTree(4, PCIe6)
	if got := f.PairBandwidth(0, 1); got != PCIe6Bandwidth {
		t.Fatalf("pair bandwidth = %g, want %g", got, PCIe6Bandwidth)
	}
	if got := f.PerGPUEgress(2); got != PCIe6Bandwidth {
		t.Fatalf("egress = %g, want %g", got, PCIe6Bandwidth)
	}
}

func TestPlatformsFigure3Shape(t *testing.T) {
	ps := Platforms()
	if len(ps) != 5 {
		t.Fatalf("got %d platforms, want 5", len(ps))
	}
	// Remote bandwidth improves monotonically across generations.
	for i := 1; i < len(ps); i++ {
		if ps[i].RemoteBW <= ps[i-1].RemoteBW {
			t.Errorf("remote BW should improve: %s (%g) vs %s (%g)",
				ps[i].Name, ps[i].RemoteBW, ps[i-1].Name, ps[i-1].RemoteBW)
		}
	}
	// Paper: 38x interconnect improvement from PCIe 3.0 to NVLink3+NVSwitch.
	improvement := ps[4].RemoteBW / ps[0].RemoteBW
	if improvement < 30 || improvement > 45 {
		t.Errorf("interconnect improvement = %.1fx, want ~38x", improvement)
	}
	// Paper: a ~3x local:remote gap persists on the newest platform.
	if gap := ps[4].Gap(); gap < 2 || gap > 4 {
		t.Errorf("modern local:remote gap = %.2fx, want ~3x", gap)
	}
	// The gap exists on every platform.
	for _, p := range ps {
		if p.Gap() <= 1 {
			t.Errorf("%s: local should exceed remote bandwidth", p.Name)
		}
	}
}

func TestFabricPanicsOnBadGPU(t *testing.T) {
	f := PCIeTree(2, PCIe3)
	for _, fn := range []func(){
		func() { f.Path(-1, 0) },
		func() { f.Path(0, 2) },
		func() { f.Latency(5, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic for out-of-range GPU")
				}
			}()
			fn()
		}()
	}
}

// Property: in every star fabric, any two distinct flows that share neither
// endpoint share no links, so a non-blocking core is truly non-blocking.
func TestStarFabricDisjointPathsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(15)
		f := NVSwitch(n, 300e9)
		s1, d1 := rng.Intn(n), rng.Intn(n)
		s2, d2 := rng.Intn(n), rng.Intn(n)
		if s1 == d1 || s2 == d2 {
			continue
		}
		if s1 == s2 || d1 == d2 {
			continue // shared endpoint may share a link by design
		}
		links := map[LinkID]bool{}
		for _, id := range f.Path(s1, d1) {
			links[id] = true
		}
		for _, id := range f.Path(s2, d2) {
			if links[id] {
				t.Fatalf("n=%d: flows (%d->%d) and (%d->%d) share link %d",
					n, s1, d1, s2, d2, id)
			}
		}
	}
}

func TestHierarchicalNVSwitch(t *testing.T) {
	const perGPU = NVLink3Bandwidth
	f := HierarchicalNVSwitch(32, 8, perGPU, 2)
	if f.NumGPUs() != 32 {
		t.Fatalf("NumGPUs = %d, want 32", f.NumGPUs())
	}
	// 32 GPU tx/rx pairs plus 4 pod up/down pairs.
	if f.NumLinks() != 2*32+2*4 {
		t.Fatalf("NumLinks = %d, want %d", f.NumLinks(), 2*32+2*4)
	}
	// Intra-pod: flat two-hop path, one switch traversal of latency.
	if p := f.Path(0, 7); len(p) != 2 {
		t.Errorf("intra-pod path length = %d, want 2", len(p))
	}
	if got := f.Latency(0, 7); got != nvlinkLatency {
		t.Errorf("intra-pod latency = %g, want %g", got, nvlinkLatency)
	}
	if got := f.PairBandwidth(0, 7); got != perGPU {
		t.Errorf("intra-pod bandwidth = %g, want %g", got, perGPU)
	}
	// Cross-pod: four hops through both trunks, double latency, and the
	// 2x-oversubscribed trunk (8*300/2 GB/s) is above one GPU's injection
	// rate, so an isolated pair still sees the per-GPU bandwidth.
	if p := f.Path(0, 31); len(p) != 4 {
		t.Errorf("cross-pod path length = %d, want 4", len(p))
	}
	if got := f.Latency(0, 31); got != 2*nvlinkLatency {
		t.Errorf("cross-pod latency = %g, want %g", got, 2*nvlinkLatency)
	}
	if got := f.PairBandwidth(0, 31); got != perGPU {
		t.Errorf("cross-pod pair bandwidth = %g, want %g", got, perGPU)
	}
	// The shared trunk is the contention point: its capacity is podSize*perGPU
	// divided by the oversubscription factor.
	trunk := f.Link(f.Path(0, 31)[1])
	if want := 8 * perGPU / 2; trunk.Bandwidth != want {
		t.Errorf("trunk bandwidth = %g, want %g", trunk.Bandwidth, want)
	}

	// At or below one pod the topology degenerates to the flat crossbar.
	if flat := HierarchicalNVSwitch(8, 8, perGPU, 2); flat.NumLinks() != 16 {
		t.Errorf("degenerate fabric has %d links, want 16", flat.NumLinks())
	}

	// ByName exposes the 2x-oversubscribed pods-of-8 configuration.
	byName, err := ByName("hnvswitch", 64)
	if err != nil {
		t.Fatal(err)
	}
	if byName.NumGPUs() != 64 || byName.NumLinks() != 2*64+2*8 {
		t.Errorf("hnvswitch(64) = %d GPUs / %d links", byName.NumGPUs(), byName.NumLinks())
	}
}
