package workload

import (
	"encoding/json"
	"fmt"
	"io"

	"gps/internal/trace"
)

// CustomSpec is a JSON-loadable workload description, letting users define
// new applications without writing Go: either a slab-decomposed stencil
// (the Jacobi/EQWP/Diffusion/HIT family) or a partitioned graph workload
// (the Pagerank/SSSP family). Example:
//
//	{
//	  "name": "mywave", "kind": "stencil",
//	  "planeKB": 64, "planes": 128, "fields": 2, "haloPlanes": 2,
//	  "passes": 2, "blockSet": [128, 256],
//	  "flopsPerByte": 70, "streamFactor": 8,
//	  "l2": {"baseHit": 0.4, "slopePerDoubling": 0.03, "maxHit": 0.6}
//	}
type CustomSpec struct {
	Name string `json:"name"`
	Kind string `json:"kind"` // "stencil" or "graph"

	// Stencil parameters.
	PlaneKB      int     `json:"planeKB,omitempty"`
	Planes       int     `json:"planes,omitempty"`
	Fields       int     `json:"fields,omitempty"`
	HaloPlanes   int     `json:"haloPlanes,omitempty"`
	Passes       int     `json:"passes,omitempty"`
	BlockSet     []int   `json:"blockSet,omitempty"`
	ScatterFrac  float64 `json:"scatterFrac,omitempty"`
	FlopsPerByte float64 `json:"flopsPerByte,omitempty"`
	StreamFactor float64 `json:"streamFactor,omitempty"`

	// Graph parameters.
	VertexMB      int     `json:"vertexMB,omitempty"`
	EdgeMB        int     `json:"edgeMB,omitempty"`
	Span          int     `json:"span,omitempty"`
	GatherInstrs  int     `json:"gatherInstrs,omitempty"`
	ScatterInstrs int     `json:"scatterInstrs,omitempty"`
	FlopsPerEdge  float64 `json:"flopsPerEdge,omitempty"`
	ApplyFlops    float64 `json:"applyFlops,omitempty"`
	AtomicLanes   int     `json:"atomicLanes,omitempty"`

	L2 struct {
		BaseHit          float64 `json:"baseHit"`
		SlopePerDoubling float64 `json:"slopePerDoubling"`
		MaxHit           float64 `json:"maxHit"`
	} `json:"l2"`
}

// ParseCustomSpec decodes and validates a CustomSpec from JSON.
func ParseCustomSpec(r io.Reader) (CustomSpec, error) {
	var s CustomSpec
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return s, fmt.Errorf("workload: parsing custom spec: %w", err)
	}
	return s, s.Validate()
}

// Validate reports structurally invalid specs.
func (s CustomSpec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("workload: custom spec needs a name")
	}
	switch s.Kind {
	case "stencil":
		switch {
		case s.PlaneKB <= 0 || s.Planes <= 0:
			return fmt.Errorf("workload: stencil %q needs planeKB and planes", s.Name)
		case s.Fields <= 0:
			return fmt.Errorf("workload: stencil %q needs fields >= 1", s.Name)
		case s.HaloPlanes < 0 || s.HaloPlanes >= s.Planes:
			return fmt.Errorf("workload: stencil %q halo out of range", s.Name)
		case s.Passes <= 0:
			return fmt.Errorf("workload: stencil %q needs passes >= 1", s.Name)
		case s.FlopsPerByte <= 0:
			return fmt.Errorf("workload: stencil %q needs flopsPerByte", s.Name)
		case s.ScatterFrac < 0 || s.ScatterFrac > 1:
			return fmt.Errorf("workload: stencil %q scatterFrac out of [0,1]", s.Name)
		}
		for _, b := range s.BlockSet {
			if b <= 0 {
				return fmt.Errorf("workload: stencil %q has non-positive block size", s.Name)
			}
		}
	case "graph":
		switch {
		case s.VertexMB <= 0 || s.EdgeMB <= 0:
			return fmt.Errorf("workload: graph %q needs vertexMB and edgeMB", s.Name)
		case s.Span < 0:
			return fmt.Errorf("workload: graph %q span negative", s.Name)
		case s.GatherInstrs <= 0 || s.ScatterInstrs <= 0:
			return fmt.Errorf("workload: graph %q needs gather/scatter instruction counts", s.Name)
		case s.FlopsPerEdge <= 0 || s.ApplyFlops <= 0:
			return fmt.Errorf("workload: graph %q needs flop intensities", s.Name)
		case s.AtomicLanes < 0 || s.AtomicLanes > 32:
			return fmt.Errorf("workload: graph %q atomicLanes out of 0..32", s.Name)
		}
	default:
		return fmt.Errorf("workload: unknown kind %q (stencil or graph)", s.Kind)
	}
	return nil
}

// Build instantiates the custom workload as a trace program.
func (s CustomSpec) Build(cfg Config) (trace.Program, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	l2 := trace.L2Model{BaseHit: s.L2.BaseHit, SlopePerDoubling: s.L2.SlopePerDoubling, MaxHit: s.L2.MaxHit}
	switch s.Kind {
	case "stencil":
		blockSet := s.BlockSet
		if len(blockSet) == 0 {
			blockSet = []int{256}
		}
		return newStencil(cfg, stencilParams{
			name:         s.Name,
			planeBytes:   uint64(s.PlaneKB) << 10,
			planes:       s.Planes,
			fields:       s.Fields,
			haloPlanes:   s.HaloPlanes,
			passes:       s.Passes,
			blockSet:     blockSet,
			scatterFrac:  s.ScatterFrac,
			flopsPerByte: s.FlopsPerByte,
			streamFactor: s.StreamFactor,
			l2:           l2,
		}), nil
	case "graph":
		lanes := uint8(s.AtomicLanes)
		if lanes == 0 {
			lanes = 32
		}
		return newGraph(cfg, graphParams{
			name:          s.Name,
			vertexBytes:   uint64(s.VertexMB) << 20,
			edgeBytes:     uint64(s.EdgeMB) << 20,
			span:          s.Span,
			gatherInstrs:  s.GatherInstrs,
			scatterInstrs: s.ScatterInstrs,
			flopsPerEdge:  s.FlopsPerEdge,
			applyFlops:    s.ApplyFlops,
			atomicLanes:   lanes,
			l2:            l2,
		}), nil
	}
	panic("unreachable")
}
