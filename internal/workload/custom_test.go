package workload

import (
	"strings"
	"testing"

	"gps/internal/trace"
)

const stencilJSON = `{
  "name": "mywave", "kind": "stencil",
  "planeKB": 64, "planes": 64, "fields": 2, "haloPlanes": 2,
  "passes": 2, "blockSet": [128, 256],
  "flopsPerByte": 70, "streamFactor": 8,
  "l2": {"baseHit": 0.4, "slopePerDoubling": 0.03, "maxHit": 0.6}
}`

const graphJSON = `{
  "name": "mygraph", "kind": "graph",
  "vertexMB": 4, "edgeMB": 8, "span": 1,
  "gatherInstrs": 800, "scatterInstrs": 400,
  "flopsPerEdge": 500, "applyFlops": 40, "atomicLanes": 16,
  "l2": {"baseHit": 0.25, "slopePerDoubling": 0.02, "maxHit": 0.4}
}`

func TestParseCustomStencil(t *testing.T) {
	spec, err := ParseCustomSpec(strings.NewReader(stencilJSON))
	if err != nil {
		t.Fatal(err)
	}
	prog, err := spec.Build(smallCfg(4))
	if err != nil {
		t.Fatal(err)
	}
	meta := prog.Meta()
	if meta.Name != "mywave" || meta.NumGPUs != 4 {
		t.Fatalf("meta = %+v", meta)
	}
	if meta.L2.HitRate(4) <= meta.L2.HitRate(1) {
		t.Fatal("L2 model not wired")
	}
	phases := 0
	prog.Phases(func(ph *trace.Phase) bool {
		phases++
		for _, k := range ph.Kernels {
			for _, a := range k.FlatAccesses() {
				if err := a.Validate(); err != nil {
					t.Fatal(err)
				}
			}
		}
		return true
	})
	if phases == 0 {
		t.Fatal("no phases")
	}
}

func TestParseCustomGraph(t *testing.T) {
	spec, err := ParseCustomSpec(strings.NewReader(graphJSON))
	if err != nil {
		t.Fatal(err)
	}
	prog, err := spec.Build(smallCfg(2))
	if err != nil {
		t.Fatal(err)
	}
	s := trace.Summarize(prog)
	if s.Atomics == 0 {
		t.Fatal("graph workload should issue atomics")
	}
}

func TestCustomSpecValidation(t *testing.T) {
	bad := []string{
		`{"kind": "stencil"}`, // no name
		`{"name": "x", "kind": "nope"}`,
		`{"name": "x", "kind": "stencil", "planeKB": 0, "planes": 4}`,
		`{"name": "x", "kind": "stencil", "planeKB": 64, "planes": 4, "fields": 1, "haloPlanes": 9, "passes": 1, "flopsPerByte": 1}`,
		`{"name": "x", "kind": "graph", "vertexMB": 0}`,
		`{"name": "x", "kind": "graph", "vertexMB": 4, "edgeMB": 4, "gatherInstrs": 0}`,
		`{"name": "x", "kind": "graph", "vertexMB": 4, "edgeMB": 4, "gatherInstrs": 1, "scatterInstrs": 1, "flopsPerEdge": 1, "applyFlops": 1, "atomicLanes": 99}`,
		`{"name": "x", "kind": "stencil", "unknown": 1}`,
		`not json`,
	}
	for i, j := range bad {
		if _, err := ParseCustomSpec(strings.NewReader(j)); err == nil {
			t.Errorf("case %d accepted: %s", i, j)
		}
	}
}

func TestCustomStencilRunsEndToEnd(t *testing.T) {
	spec, err := ParseCustomSpec(strings.NewReader(stencilJSON))
	if err != nil {
		t.Fatal(err)
	}
	p1, err := spec.Build(Config{NumGPUs: 1, Iterations: 1, Scale: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	p4, err := spec.Build(Config{NumGPUs: 4, Iterations: 1, Scale: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Strong scaling: written bytes conserved.
	wb := func(p trace.Program) uint64 {
		var w uint64
		p.Phases(func(ph *trace.Phase) bool {
			for _, k := range ph.Kernels {
				for _, a := range k.FlatAccesses() {
					if a.IsWrite() {
						w += a.Bytes()
					}
				}
			}
			return true
		})
		return w
	}
	if w1, w4 := wb(p1), wb(p4); w4 < w1*85/100 || w4 > w1*115/100 {
		t.Fatalf("written bytes not conserved: %d vs %d", w1, w4)
	}
}
