package workload

import (
	"fmt"

	"gps/internal/trace"
)

// ControlCatalog returns compute-bound control applications that are *not*
// bound by inter-GPU communication. The paper excluded such Tartan
// benchmarks from its figures after verifying that "GPS obtains the same
// performance as the native version" on them; these generators exist to
// reproduce exactly that control result (experiments.ControlApps).
func ControlCatalog() []Spec {
	return []Spec{
		{
			Name:        "matmul",
			Description: "Dense blocked matrix multiplication (compute-bound)",
			Pattern:     "Broadcast-once",
			Build:       NewMatmul,
		},
		{
			Name:        "nbody",
			Description: "Direct N-body force computation (tiny data, quadratic compute)",
			Pattern:     "All-to-all (tiny)",
			Build:       NewNBody,
		},
	}
}

// NewMatmul builds a blocked GEMM trace: C = A x B with A row-partitioned
// (private), B shared (read by everyone, written once at initialization)
// and C row-partitioned. Arithmetic is O(n^3) over O(n^2) data, so no
// paradigm's transfer policy matters.
func NewMatmul(cfg Config) trace.Program {
	cfg = cfg.withDefaults()
	n := cfg.NumGPUs
	matBytes := uint64(4<<20) * uint64(cfg.Scale) // per matrix

	bBase := regionBase(0)
	cBase := regionBase(1)
	aBase := func(g int) uint64 { return regionBase(2 + g) }

	regions := []trace.Region{
		{Name: "matmul.B", Kind: trace.RegionShared, Base: bBase, Size: matBytes,
			Writers: gpuList(n), Readers: gpuList(n)},
		{Name: "matmul.C", Kind: trace.RegionShared, Base: cBase, Size: matBytes,
			Writers: gpuList(n), Readers: gpuList(n)},
	}
	aBytes := matBytes / uint64(n)
	aBytes -= aBytes % LineBytes
	for g := 0; g < n; g++ {
		regions = append(regions, trace.Region{
			Name: fmt.Sprintf("matmul.A%d", g), Kind: trace.RegionPrivate,
			Base: aBase(g), Size: aBytes,
			Writers: []int{g}, Readers: []int{g},
		})
	}

	// O(n^1.5) flops per byte at these sizes: decisively compute-bound.
	const flopsPerByte = 12000

	meta := trace.Meta{
		Name:             "matmul",
		NumGPUs:          n,
		Regions:          regions,
		ProfilePhases:    1,
		WorkingSetPerGPU: matBytes + matBytes/uint64(n)*2,
		L2:               trace.L2Model{BaseHit: 0.5, SlopePerDoubling: 0.02, MaxHit: 0.6},
	}

	emit := func(iter, _ int, ph *trace.Phase) {
		for g := 0; g < n; g++ {
			slabOff, slabSize := slab(matBytes, n, g)
			ops := uint64(float64(slabSize) * flopsPerByte)
			kb := newKernel(g, "matmul.block", ops)
			kb.loads(aBase(g), aBytes)
			kb.loads(bBase, matBytes) // everyone streams B once
			kb.stores(cBase+slabOff, slabSize)
			ph.Kernels = append(ph.Kernels, kb.build())
		}
	}

	return &app{meta: meta, iterations: 1 + cfg.Iterations, phasesPerIter: 1, emit: emit}
}

// NewNBody builds a direct-summation N-body trace: a tiny shared position
// array read by everyone, quadratic force computation, each GPU updating
// its own body slab.
func NewNBody(cfg Config) trace.Program {
	cfg = cfg.withDefaults()
	n := cfg.NumGPUs
	posBytes := uint64(512<<10) * uint64(cfg.Scale) // all body positions

	posBase := regionBase(0)
	regions := []trace.Region{
		{Name: "nbody.pos", Kind: trace.RegionShared, Base: posBase, Size: posBytes,
			Writers: gpuList(n), Readers: gpuList(n)},
	}

	const flopsPerByte = 60000 // O(N) interactions per body

	meta := trace.Meta{
		Name:             "nbody",
		NumGPUs:          n,
		Regions:          regions,
		ProfilePhases:    1,
		WorkingSetPerGPU: posBytes,
		L2:               trace.L2Model{BaseHit: 0.8, SlopePerDoubling: 0.01, MaxHit: 0.9},
	}

	emit := func(iter, _ int, ph *trace.Phase) {
		for g := 0; g < n; g++ {
			slabOff, slabSize := slab(posBytes, n, g)
			ops := uint64(float64(slabSize) * flopsPerByte)
			kb := newKernel(g, "nbody.forces", ops)
			kb.loads(posBase, posBytes) // all positions
			kb.stores(posBase+slabOff, slabSize)
			ph.Kernels = append(ph.Kernels, kb.build())
		}
	}

	return &app{meta: meta, iterations: 1 + cfg.Iterations, phasesPerIter: 1, emit: emit}
}
