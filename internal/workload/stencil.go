package workload

import (
	"fmt"

	"gps/internal/trace"
)

// stencilParams describes one of the slab-decomposed stencil applications
// (Jacobi, EQWP, Diffusion, HIT). The domain is a stack of `planes` planes
// of planeBytes each, partitioned across GPUs in contiguous slabs along the
// plane axis. Each field ping-pongs between two regions; every half-step
// each GPU reads its slab plus haloPlanes of each neighbor's boundary from
// the source array and writes its slab of the destination array.
//
// The write pattern is `passes` sweeps over blocks of blockLines cache
// lines: the revisit distance blockLines is what the GPS write queue must
// cover to coalesce the extra passes (Figure 14). Jacobi uses a single pass
// (its spatial locality is fully captured inside the SM coalescer, so its
// write-queue hit rate is 0%).
type stencilParams struct {
	name         string
	planeBytes   uint64  // bytes per plane (line-aligned)
	planes       int     // planes along the decomposed axis (scaled)
	fields       int     // ping-pong field pairs
	haloPlanes   int     // halo depth read from each neighbor
	passes       int     // write passes per block
	blockSet     []int   // revisit distances in cache lines, cycled per tile
	scatterFrac  float64 // fraction of writes that are single-pass scattered
	flopsPerByte float64 // compute intensity per written byte per pass
	// streamFactor is GPU-local streaming traffic (temporaries, coefficient
	// tables, tile re-reads) per written shared byte, carried analytically
	// as Kernel.LocalStreamBytes. It sets how DRAM-bound the kernel is.
	streamFactor float64
	l2           trace.L2Model
}

func newStencil(cfg Config, p stencilParams) trace.Program {
	cfg = cfg.withDefaults()
	p.planes *= cfg.Scale
	n := cfg.NumGPUs
	gridBytes := p.planeBytes * uint64(p.planes)

	var regions []trace.Region
	// Two regions per field: ping (parity 0) and pong (parity 1).
	base := func(field, parity int) uint64 { return regionBase(field*2 + parity) }
	for f := 0; f < p.fields; f++ {
		for par := 0; par < 2; par++ {
			regions = append(regions, trace.Region{
				Name: fmt.Sprintf("%s.f%d.%d", p.name, f, par),
				Kind: trace.RegionShared,
				Base: base(f, par),
				Size: gridBytes,
				// Every GPU writes its slab and reads across slab
				// boundaries; at region granularity all GPUs are both.
				Writers: gpuList(n),
				Readers: gpuList(n),
			})
		}
	}

	meta := trace.Meta{
		Name:             p.name,
		NumGPUs:          n,
		Regions:          regions,
		ProfilePhases:    2, // a full ping-pong iteration, as in Listing 1
		WorkingSetPerGPU: 2 * uint64(p.fields) * gridBytes / uint64(n),
		L2:               p.l2,
	}

	emit := func(iter, sub int, ph *trace.Phase) {
		src := (iter*2 + sub) % 2
		dst := 1 - src
		for g := 0; g < n; g++ {
			slabOff, slabSize := slab(gridBytes, n, g)
			ops := uint64(float64(slabSize) * float64(p.passes) * p.flopsPerByte * float64(p.fields))
			kb := newKernel(g, fmt.Sprintf("%s.sweep", p.name), ops)
			kb.k.LocalStreamBytes = uint64(p.streamFactor * float64(slabSize) * float64(p.fields))
			halo := uint64(p.haloPlanes) * p.planeBytes
			for f := 0; f < p.fields; f++ {
				// Read own slab plus halos from the source array.
				lo := base(f, src) + slabOff
				readLo, readBytes := lo, slabSize
				if g > 0 {
					readLo -= halo
					readBytes += halo
				}
				if g < n-1 {
					readBytes += halo
				}
				kb.loads(readLo, readBytes)
				// Write own slab of the destination array.
				wbase := base(f, dst) + slabOff
				scatterBytes := uint64(float64(slabSize) * p.scatterFrac)
				scatterBytes -= scatterBytes % LineBytes
				mpBytes := slabSize - scatterBytes
				kb.storesMultiPassSet(wbase, mpBytes, p.passes, p.blockSet)
				if scatterBytes > 0 {
					// Irregular single-visit writes (e.g. boundary condition
					// fix-ups): these dilute the achievable queue hit rate.
					kb.stores(wbase+mpBytes, scatterBytes)
				}
			}
			ph.Kernels = append(ph.Kernels, kb.build())
		}
	}

	return &app{
		meta:          meta,
		iterations:    1 + cfg.Iterations,
		phasesPerIter: 2,
		emit:          emit,
	}
}

// NewJacobi builds the 2D Jacobi iterative solver trace: peer-to-peer halo
// exchange, single-visit streaming writes (0% write-queue hit rate), low
// halo volume.
func NewJacobi(cfg Config) trace.Program {
	return newStencil(cfg, stencilParams{
		name:         "jacobi",
		planeBytes:   16 << 10, // a row block of the 2D grid
		planes:       1024,     // 16 MB per array at scale 1
		fields:       1,
		haloPlanes:   16, // wide ghost band: one row block spans many rows
		passes:       1,
		blockSet:     []int{256},
		flopsPerByte: 120,
		streamFactor: 4,
		l2:           trace.L2Model{BaseHit: 0.35, SlopePerDoubling: 0.02, MaxHit: 0.55},
	})
}

// NewEQWP builds the B2rEqwp earthquake wave propagation trace: 4th-order
// 3D finite differences, two coupled fields, 2-plane halos, two write
// passes. Its working set strains the L2, so aggregate cache capacity makes
// it scale super-linearly (Section 7.1: L2 hit rate 55% -> 68% at 4 GPUs).
func NewEQWP(cfg Config) trace.Program {
	return newStencil(cfg, stencilParams{
		name:         "eqwp",
		planeBytes:   128 << 10,
		planes:       48, // 6 MB per field array: strains one L2, fits in four
		fields:       2,
		haloPlanes:   2, // 4th-order scheme: two 128 KB ghost planes
		passes:       2,
		blockSet:     []int{160, 288, 416},
		flopsPerByte: 30, // DRAM-bound: the L2 effect governs scaling
		streamFactor: 50,
		l2:           trace.L2Model{BaseHit: 0.55, SlopePerDoubling: 0.065, MaxHit: 0.75},
	})
}

// NewDiffusion builds the 3D heat + inviscid Burgers trace: two fields,
// 1-plane halos, two write passes at a shorter revisit distance.
func NewDiffusion(cfg Config) trace.Program {
	return newStencil(cfg, stencilParams{
		name:         "diffusion",
		planeBytes:   64 << 10,
		planes:       128, // 8 MB per field array
		fields:       2,
		haloPlanes:   1, // thin halo: page-granular prefetch over-fetches most
		passes:       2,
		blockSet:     []int{96, 144, 224},
		flopsPerByte: 70,
		streamFactor: 8,
		l2:           trace.L2Model{BaseHit: 0.40, SlopePerDoubling: 0.03, MaxHit: 0.6},
	})
}

// NewHIT builds the homogeneous isotropic turbulence trace: three velocity
// component fields advanced by a multi-stage integrator (three write passes
// at a short revisit distance), deep halos.
func NewHIT(cfg Config) trace.Program {
	return newStencil(cfg, stencilParams{
		name:         "hit",
		planeBytes:   64 << 10,
		planes:       54, // ~3.4 MB per field array
		fields:       3,
		haloPlanes:   3,
		passes:       3,
		blockSet:     []int{48, 96, 160},
		scatterFrac:  0.10,
		flopsPerByte: 60,
		streamFactor: 10,
		l2:           trace.L2Model{BaseHit: 0.45, SlopePerDoubling: 0.03, MaxHit: 0.65},
	})
}
