package workload

import (
	"gps/internal/trace"
)

// NewCT builds the model-based iterative CT reconstruction trace. Forward
// projection reads the full image volume on every GPU (all-to-all sharing);
// backprojection writes each GPU's voxel slab with accumulation passes whose
// revisit distance the GPS write queue can cover (Figure 14 shows CT's hit
// rate growing with queue size). The dense regular writes also make the
// bulk-synchronous memcpy paradigm perform comparatively well for CT
// (Section 7.1).
func NewCT(cfg Config) trace.Program {
	cfg = cfg.withDefaults()
	n := cfg.NumGPUs

	imageBytes := uint64(8<<20) * uint64(cfg.Scale)
	sinoTotal := uint64(12<<20) * uint64(cfg.Scale)
	sinoBytes := sinoTotal / uint64(n)
	sinoBytes -= sinoBytes % LineBytes

	imageBase := regionBase(0)
	sinoBase := func(g int) uint64 { return regionBase(1 + g) }

	regions := []trace.Region{
		{Name: "ct.image", Kind: trace.RegionShared, Base: imageBase, Size: imageBytes,
			Writers: gpuList(n), Readers: gpuList(n)},
	}
	for g := 0; g < n; g++ {
		regions = append(regions, trace.Region{
			Name: "ct.sino", Kind: trace.RegionPrivate,
			Base: sinoBase(g), Size: sinoBytes,
			Writers: []int{g}, Readers: []int{g},
		})
	}

	const (
		passes       = 2
		scatterFrac  = 0.20 // ray-driven single-visit updates
		flopsPerByte = 360  // MBIR is compute heavy
		sampleTotal  = 900  // ray-sample warp loads over the full image, total
	)
	blockSet := []int{128, 224, 320} // accumulation tile revisit distances
	sampleInstrs := sampleTotal / n

	meta := trace.Meta{
		Name:             "ct",
		NumGPUs:          n,
		Regions:          regions,
		ProfilePhases:    2,
		WorkingSetPerGPU: imageBytes + sinoBytes, // full image resident everywhere
		L2:               trace.L2Model{BaseHit: 0.45, SlopePerDoubling: 0.015, MaxHit: 0.55},
	}

	emit := func(iter, sub int, ph *trace.Phase) {
		for g := 0; g < n; g++ {
			slabOff, slabSize := slab(imageBytes, n, g)
			switch sub {
			case 0:
				// Forward projection: rays from this GPU's angles sample
				// voxels across the whole image (all-to-all reads), plus a
				// dense pass over the owned slab.
				ops := uint64(float64(imageBytes) / float64(n) * flopsPerByte)
				kb := newKernel(g, "ct.forward", ops)
				kb.loads(imageBase+slabOff, slabSize)
				seed := uint32(cfg.Seed) + uint32(iter*65599) + uint32(g*257)
				kb.scattered(trace.OpLoad, imageBase, imageBytes, sampleInstrs, seed)
				kb.stores(sinoBase(g), sinoBytes)
				ph.Kernels = append(ph.Kernels, kb.build())
			case 1: // backprojection: accumulate into the owned voxel slab
				ops := uint64(float64(slabSize) * flopsPerByte)
				kb := newKernel(g, "ct.backproject", ops)
				kb.loads(sinoBase(g), sinoBytes)
				scatterBytes := uint64(float64(slabSize) * scatterFrac)
				scatterBytes -= scatterBytes % LineBytes
				mpBytes := slabSize - scatterBytes
				kb.storesMultiPassSet(imageBase+slabOff, mpBytes, passes, blockSet)
				if scatterBytes > 0 {
					kb.stores(imageBase+slabOff+mpBytes, scatterBytes)
				}
				ph.Kernels = append(ph.Kernels, kb.build())
			}
		}
	}

	return &app{
		meta:          meta,
		iterations:    1 + cfg.Iterations,
		phasesPerIter: 2,
		emit:          emit,
	}
}
