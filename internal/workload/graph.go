package workload

import (
	"fmt"

	"gps/internal/trace"
)

// graphParams describes the two graph-analytics applications. Vertices are
// partitioned across GPUs; each iteration has a scatter phase (stream the
// local edge partition, gather source ranks, atomically accumulate into
// destination vertices) and an apply phase (rewrite the owned vertex slab).
//
// span controls the sharing pattern: a GPU's gathers and scatters reach
// vertices within +-span partitions of its own. Pagerank uses span 1
// (peer-to-peer, per Table 2); SSSP uses a wide span (many-to-many).
// Atomics dominate the shared-write mix, so the GPS write queue coalesces
// nothing for these applications (Figure 14: 0% hit rate).
type graphParams struct {
	name          string
	vertexBytes   uint64  // size of each shared vertex array
	edgeBytes     uint64  // total edge bytes, partitioned across GPUs
	span          int     // partition reach of gathers/scatters
	gatherInstrs  int     // scattered load warp instructions, total per phase
	scatterInstrs int     // scattered atomic warp instructions, total per phase
	flopsPerEdge  float64 // scatter-kernel flops per edge lane
	applyFlops    float64 // apply-kernel flops per owned vertex byte
	atomicLanes   uint8   // active lanes per atomic warp (frontier sparsity)
	l2            trace.L2Model
}

func newGraph(cfg Config, p graphParams) trace.Program {
	cfg = cfg.withDefaults()
	n := cfg.NumGPUs
	p.vertexBytes *= uint64(cfg.Scale)
	p.edgeBytes *= uint64(cfg.Scale)
	// Strong scaling: the edge list and its processing are partitioned.
	edgesPerGPU := p.edgeBytes / uint64(n)
	edgesPerGPU -= edgesPerGPU % LineBytes
	gatherPerGPU := p.gatherInstrs / n
	scatterPerGPU := p.scatterInstrs / n

	ranksBase := regionBase(0)
	contribBase := regionBase(1)
	edgesBase := func(g int) uint64 { return regionBase(2 + g) }

	regions := []trace.Region{
		{Name: p.name + ".ranks", Kind: trace.RegionShared, Base: ranksBase, Size: p.vertexBytes,
			Writers: gpuList(n), Readers: gpuList(n)},
		{Name: p.name + ".contrib", Kind: trace.RegionShared, Base: contribBase, Size: p.vertexBytes,
			Writers: gpuList(n), Readers: gpuList(n)},
	}
	for g := 0; g < n; g++ {
		regions = append(regions, trace.Region{
			Name: fmt.Sprintf("%s.edges%d", p.name, g), Kind: trace.RegionPrivate,
			Base: edgesBase(g), Size: edgesPerGPU,
			Writers: []int{g}, Readers: []int{g},
		})
	}

	meta := trace.Meta{
		Name:             p.name,
		NumGPUs:          n,
		Regions:          regions,
		ProfilePhases:    2,
		WorkingSetPerGPU: (2*p.vertexBytes)/uint64(n) + edgesPerGPU,
		L2:               p.l2,
	}

	// window returns the vertex-array byte window GPU g's irregular accesses
	// fall in: its own partition extended span partitions each way, clamped.
	window := func(g int) (lo, size uint64) {
		loPart := g - p.span
		if loPart < 0 {
			loPart = 0
		}
		hiPart := g + p.span
		if hiPart > n-1 {
			hiPart = n - 1
		}
		loOff, _ := slab(p.vertexBytes, n, loPart)
		hiOff, hiSize := slab(p.vertexBytes, n, hiPart)
		return loOff, hiOff + hiSize - loOff
	}

	emit := func(iter, sub int, ph *trace.Phase) {
		for g := 0; g < n; g++ {
			winLo, winSize := window(g)
			slabOff, slabSize := slab(p.vertexBytes, n, g)
			seed := uint32(cfg.Seed) + uint32(iter*131071) + uint32(g*8191)
			switch sub {
			case 0: // scatter: stream edges, gather ranks, accumulate contrib
				edges := float64(edgesPerGPU / LineBytes * 32) // lanes ~ edges
				kb := newKernel(g, p.name+".scatter", uint64(edges*p.flopsPerEdge))
				kb.loads(edgesBase(g), edgesPerGPU)
				kb.scattered(trace.OpLoad, ranksBase+winLo, winSize, gatherPerGPU, seed)
				kb.scatteredLanes(trace.OpAtomic, contribBase+winLo, winSize, scatterPerGPU, seed+7, p.atomicLanes)
				ph.Kernels = append(ph.Kernels, kb.build())
			case 1: // apply: fold contrib into ranks for the owned slab
				ops := uint64(float64(slabSize) * p.applyFlops)
				kb := newKernel(g, p.name+".apply", ops)
				// Read-and-clear the owned contributions, publish new ranks.
				kb.loads(contribBase+slabOff, slabSize)
				kb.stores(ranksBase+slabOff, slabSize)
				ph.Kernels = append(ph.Kernels, kb.build())
			}
		}
	}

	return &app{
		meta:          meta,
		iterations:    1 + cfg.Iterations,
		phasesPerIter: 2,
		emit:          emit,
	}
}

// NewPagerank builds the Pagerank trace: vertex ranks propagated along a
// partitioned edge list, with gathers and atomic scatters reaching only
// neighboring partitions (peer-to-peer).
func NewPagerank(cfg Config) trace.Program {
	return newGraph(cfg, graphParams{
		name:          "pagerank",
		vertexBytes:   4 << 20,
		edgeBytes:     16 << 20,
		span:          1,
		gatherInstrs:  5600,
		scatterInstrs: 1200,
		flopsPerEdge:  700,
		applyFlops:    40,
		atomicLanes:   32,
		l2:            trace.L2Model{BaseHit: 0.25, SlopePerDoubling: 0.02, MaxHit: 0.4},
	})
}

// NewSSSP builds the single-source shortest-paths trace: frontier
// relaxations whose atomic distance updates reach vertices across many
// partitions (many-to-many).
func NewSSSP(cfg Config) trace.Program {
	return newGraph(cfg, graphParams{
		name:          "sssp",
		vertexBytes:   4 << 20,
		edgeBytes:     24 << 20,
		span:          2,
		gatherInstrs:  4800,
		scatterInstrs: 1000,
		flopsPerEdge:  400,
		applyFlops:    40,
		atomicLanes:   16, // sparse frontier: half-empty warps
		l2:            trace.L2Model{BaseHit: 0.25, SlopePerDoubling: 0.02, MaxHit: 0.4},
	})
}
