package workload

import (
	"gps/internal/trace"
)

// NewALS builds the alternating least squares matrix factorization trace.
// Two factor matrices U and V alternate roles: updating U requires reading
// all of V (and vice versa), so every GPU reads every page of both factors —
// the canonical all-to-all pattern of Table 2 and the Figure 11 exception
// where subscription tracking cannot save bandwidth. Factor updates are
// atomic accumulations scattered over the full factor array with little
// temporal locality, which is why ALS shows a 0% write-queue hit rate
// (Section 7.4) and why RDL re-fetches the same cache lines repeatedly
// (Section 7.2).
func NewALS(cfg Config) trace.Program {
	cfg = cfg.withDefaults()
	n := cfg.NumGPUs

	factorBytes := uint64(6<<20) * uint64(cfg.Scale)
	ratingsTotal := uint64(16<<20) * uint64(cfg.Scale)
	ratingsBytes := ratingsTotal / uint64(n)
	ratingsBytes -= ratingsBytes % LineBytes

	uBase, vBase := regionBase(0), regionBase(1)
	ratingsBase := func(g int) uint64 { return regionBase(2 + g) }

	regions := []trace.Region{
		{Name: "als.U", Kind: trace.RegionShared, Base: uBase, Size: factorBytes,
			Writers: gpuList(n), Readers: gpuList(n)},
		{Name: "als.V", Kind: trace.RegionShared, Base: vBase, Size: factorBytes,
			Writers: gpuList(n), Readers: gpuList(n)},
	}
	for g := 0; g < n; g++ {
		regions = append(regions, trace.Region{
			Name: "als.ratings", Kind: trace.RegionPrivate,
			Base: ratingsBase(g), Size: ratingsBytes,
			Writers: []int{g}, Readers: []int{g},
		})
	}

	const (
		gatherTotal  = 6400 // scattered re-reads of the fixed factor, total
		updateTotal  = 1600 // scattered atomic updates, total
		flopsPerByte = 400
	)
	gatherInstrs := gatherTotal / n
	updateInstrs := updateTotal / n

	meta := trace.Meta{
		Name:             "als",
		NumGPUs:          n,
		Regions:          regions,
		ProfilePhases:    2,
		WorkingSetPerGPU: 2*factorBytes + ratingsBytes, // both factors resident everywhere
		L2:               trace.L2Model{BaseHit: 0.3, SlopePerDoubling: 0.01, MaxHit: 0.4},
	}

	emit := func(iter, sub int, ph *trace.Phase) {
		// sub 0: solve U against fixed V; sub 1: solve V against fixed U.
		fixed, solved := vBase, uBase
		if sub == 1 {
			fixed, solved = uBase, vBase
		}
		for g := 0; g < n; g++ {
			seed := uint32(cfg.Seed) + uint32(iter*524287) + uint32(g*127) + uint32(sub*31)
			ops := uint64(float64(factorBytes) / float64(n) * flopsPerByte)
			kb := newKernel(g, "als.solve", ops)
			// Stream the whole fixed factor (all-to-all reads)...
			kb.loads(fixed, factorBytes)
			// ...plus irregular re-reads with no temporal locality.
			kb.scattered(trace.OpLoad, fixed, factorBytes, gatherInstrs, seed)
			// Private ratings.
			kb.loads(ratingsBase(g), ratingsBytes)
			// Atomic updates scattered across the full solved factor.
			kb.scattered(trace.OpAtomic, solved, factorBytes, updateInstrs, seed+13)
			ph.Kernels = append(ph.Kernels, kb.build())
		}
	}

	return &app{
		meta:          meta,
		iterations:    1 + cfg.Iterations,
		phasesPerIter: 2,
		emit:          emit,
	}
}
