// Package workload synthesizes application traces for the eight benchmarks
// of Table 2 in the GPS paper: Jacobi, Pagerank, SSSP, ALS, CT, B2rEqwp
// (EQWP), Diffusion and HIT. The paper drove its simulator with NVBit SASS
// traces captured on real GPUs; this reproduction has no GPU, so each
// generator reproduces the documented first-order structure of its
// application instead: the compute partitioning, the inter-GPU sharing
// pattern (peer-to-peer halos, many-to-many, all-to-all), the store mix
// (regular stores vs atomics), and the temporal store locality that the GPS
// write queue harvests (Figure 14).
//
// Traces are deterministic: the same Config always yields the same stream.
//
// Calibration note: per-application compute intensity (ComputeOps per
// phase) is a free parameter of a synthetic trace. The constants below are
// calibrated so that the single-GPU compute/communication balance produces
// the paper's reported paradigm ordering; they stand in for the real
// kernels' arithmetic that NVBit traces would have carried.
package workload

import (
	"fmt"
	"sort"

	"gps/internal/trace"
)

// LineBytes is the cache block size all generators emit against (Table 1).
const LineBytes = 128

// Config selects the system size and trace length for a generator.
type Config struct {
	NumGPUs    int
	Iterations int // execution iterations after the profiling iteration
	Scale      int // linear problem-size multiplier (1 = default)
	Seed       int64
}

// withDefaults normalizes a Config.
func (c Config) withDefaults() Config {
	if c.NumGPUs == 0 {
		c.NumGPUs = 4
	}
	if c.Iterations == 0 {
		c.Iterations = 4
	}
	if c.Scale == 0 {
		c.Scale = 1
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Spec describes one benchmark (one row of Table 2).
type Spec struct {
	Name        string
	Description string
	Pattern     string // predominant communication pattern, per Table 2
	Build       func(Config) trace.Program
}

// Catalog returns the eight applications in the paper's Table 2 order.
func Catalog() []Spec {
	return []Spec{
		{
			Name:        "jacobi",
			Description: "Iterative solver for a diagonally dominant linear system (2D stencil)",
			Pattern:     "Peer-to-peer",
			Build:       NewJacobi,
		},
		{
			Name:        "pagerank",
			Description: "Web page ranking by iterated rank propagation over a graph",
			Pattern:     "Peer-to-peer",
			Build:       NewPagerank,
		},
		{
			Name:        "sssp",
			Description: "Single-source shortest paths by iterative edge relaxation",
			Pattern:     "Many-to-many",
			Build:       NewSSSP,
		},
		{
			Name:        "als",
			Description: "Alternating least squares matrix factorization",
			Pattern:     "All-to-all",
			Build:       NewALS,
		},
		{
			Name:        "ct",
			Description: "Model-based iterative CT reconstruction",
			Pattern:     "All-to-all",
			Build:       NewCT,
		},
		{
			Name:        "eqwp",
			Description: "3D earthquake wave propagation, 4th-order finite differences",
			Pattern:     "Peer-to-peer",
			Build:       NewEQWP,
		},
		{
			Name:        "diffusion",
			Description: "3D heat equation and inviscid Burgers' equation",
			Pattern:     "Peer-to-peer",
			Build:       NewDiffusion,
		},
		{
			Name:        "hit",
			Description: "Homogeneous isotropic turbulence (3D Navier-Stokes)",
			Pattern:     "Peer-to-peer",
			Build:       NewHIT,
		},
	}
}

// ByName returns the spec with the given name, searching the Table 2 suite
// first and then the compute-bound control applications.
func ByName(name string) (Spec, error) {
	for _, s := range append(Catalog(), ControlCatalog()...) {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("workload: unknown application %q", name)
}

// Names returns the catalog's application names in order.
func Names() []string {
	var out []string
	for _, s := range Catalog() {
		out = append(out, s.Name)
	}
	return out
}

// regionBase places region i at a distinct 8 GB-aligned base so regions can
// never overlap regardless of size.
func regionBase(i int) uint64 { return uint64(i+1) << 33 }

// app is the generic streaming Program implementation all generators share:
// a fixed number of iterations, each expanded into one or more phases by the
// emit callback.
type app struct {
	meta          trace.Meta
	iterations    int // total, including the profiling iteration
	phasesPerIter int
	emit          func(iter, sub int, ph *trace.Phase)
}

func (a *app) Meta() trace.Meta { return a.meta }

func (a *app) Phases(yield func(*trace.Phase) bool) {
	idx := 0
	for it := 0; it < a.iterations; it++ {
		for sub := 0; sub < a.phasesPerIter; sub++ {
			ph := trace.Phase{Index: idx, Label: fmt.Sprintf("iter%d.%d", it, sub)}
			a.emit(it, sub, &ph)
			if !yield(&ph) {
				return
			}
			idx++
		}
	}
}

// kernelBuilder accumulates the access stream of one kernel, compressing it
// into columnar blocks as it goes: the builder holds at most one block of
// pending records, so even multi-million-instruction kernels are built in
// constant memory and never exist in flat form.
type kernelBuilder struct {
	k   trace.Kernel
	enc trace.ColumnEncoder
}

func newKernel(gpu int, name string, computeOps uint64) *kernelBuilder {
	return &kernelBuilder{k: trace.Kernel{GPU: gpu, Name: name, ComputeOps: computeOps}}
}

func (b *kernelBuilder) add(a trace.Access) { b.enc.Append(a) }

func (b *kernelBuilder) build() trace.Kernel {
	b.k.Col = b.enc.Finish()
	return b.k
}

// loads emits contiguous warp loads covering [base, base+bytes): one
// 32-lane x 4-byte instruction per cache line.
func (b *kernelBuilder) loads(base, bytes uint64) { b.rangeOps(trace.OpLoad, base, bytes) }

// stores emits contiguous warp stores covering [base, base+bytes).
func (b *kernelBuilder) stores(base, bytes uint64) { b.rangeOps(trace.OpStore, base, bytes) }

func (b *kernelBuilder) rangeOps(op trace.Op, base, bytes uint64) {
	for off := uint64(0); off < bytes; off += LineBytes {
		b.add(trace.Access{
			Op: op, Scope: trace.ScopeWeak, Pattern: trace.PatContiguous,
			Threads: 32, ElemBytes: 4, Addr: base + off,
		})
	}
}

// storesMultiPass writes [base, base+bytes) in blocks of blockLines cache
// lines, writing every line of a block `passes` times before moving to the
// next block. The revisit distance is therefore blockLines, which is what
// makes the write-queue hit rate sensitive to queue capacity (Figure 14): a
// queue of at least blockLines entries coalesces the extra passes.
func (b *kernelBuilder) storesMultiPass(base, bytes uint64, passes, blockLines int) {
	b.storesMultiPassSet(base, bytes, passes, []int{blockLines})
}

// storesMultiPassSet is storesMultiPass with a cycle of block sizes, so the
// revisit-distance distribution has several knees and the queue hit rate
// grows gradually with capacity rather than jumping at a single threshold.
func (b *kernelBuilder) storesMultiPassSet(base, bytes uint64, passes int, blockSet []int) {
	if passes < 1 {
		panic("workload: passes must be >= 1")
	}
	if len(blockSet) == 0 {
		panic("workload: empty block set")
	}
	lines := bytes / LineBytes
	blockIdx := 0
	for blockStart := uint64(0); blockStart < lines; {
		blockLines := uint64(blockSet[blockIdx%len(blockSet)])
		blockIdx++
		blockEnd := blockStart + blockLines
		if blockEnd > lines {
			blockEnd = lines
		}
		for p := 0; p < passes; p++ {
			for l := blockStart; l < blockEnd; l++ {
				b.add(trace.Access{
					Op: trace.OpStore, Scope: trace.ScopeWeak, Pattern: trace.PatContiguous,
					Threads: 32, ElemBytes: 4, Addr: base + l*LineBytes,
				})
			}
		}
		blockStart = blockEnd
	}
}

// scattered emits `count` warp instructions of the given op whose 32 lanes
// hit pseudo-random cache lines inside [base, base+windowBytes).
func (b *kernelBuilder) scattered(op trace.Op, base, windowBytes uint64, count int, seed uint32) {
	b.scatteredLanes(op, base, windowBytes, count, seed, 32)
}

// scatterSegmentBytes is the locality granule of irregular accesses: real
// graph kernels process edges sorted by destination, so consecutive warps
// hit a narrow address segment that drifts across the window over the
// kernel. This is what keeps the 32-entry GPS-TLB near a 100% hit rate
// (Section 7.4) despite multi-megabyte scatter windows.
const scatterSegmentBytes = 512 << 10

// scatteredLanes is scattered with an explicit active-lane count, modeling
// divergent warps (sparse graph frontiers). The window is processed in
// segments of scatterSegmentBytes; lanes scatter pseudo-randomly within the
// current segment.
func (b *kernelBuilder) scatteredLanes(op trace.Op, base, windowBytes uint64, count int, seed uint32, lanes uint8) {
	if count <= 0 {
		return
	}
	numSeg := int(windowBytes / scatterSegmentBytes)
	if numSeg < 1 {
		numSeg = 1
	}
	perSeg := count / numSeg
	if perSeg < 1 {
		perSeg = 1
	}
	for i := 0; i < count; i++ {
		seg := uint64(i/perSeg) % uint64(numSeg)
		segBase := base + seg*scatterSegmentBytes
		segEnd := segBase + scatterSegmentBytes
		if seg == uint64(numSeg-1) || segEnd > base+windowBytes {
			segEnd = base + windowBytes
		}
		segLines := (segEnd - segBase) / LineBytes
		if segLines == 0 {
			segLines = 1
		}
		if segLines > (1<<32)-1 {
			panic("workload: scatter window too large")
		}
		b.add(trace.Access{
			Op: op, Scope: trace.ScopeWeak, Pattern: trace.PatScattered,
			Threads: lanes, ElemBytes: 4,
			Stride: uint32(segLines),
			Seed:   seed + uint32(i)*2654435761,
			Addr:   segBase,
		})
	}
}

// slab partitions `total` bytes across n GPUs in contiguous line-aligned
// slabs and returns GPU g's [offset, size).
func slab(total uint64, n, g int) (offset, size uint64) {
	lines := total / LineBytes
	per := lines / uint64(n)
	rem := lines % uint64(n)
	var startLine uint64
	for i := 0; i < g; i++ {
		startLine += per
		if uint64(i) < rem {
			startLine++
		}
	}
	myLines := per
	if uint64(g) < rem {
		myLines++
	}
	return startLine * LineBytes, myLines * LineBytes
}

// gpuList returns [0, 1, ..., n).
func gpuList(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// dedupSorted sorts and deduplicates a GPU list in place.
func dedupSorted(gpus []int) []int {
	sort.Ints(gpus)
	out := gpus[:0]
	for i, g := range gpus {
		if i == 0 || g != gpus[i-1] {
			out = append(out, g)
		}
	}
	return out
}
