package workload

import (
	"reflect"
	"testing"

	"gps/internal/trace"
)

func smallCfg(gpus int) Config {
	return Config{NumGPUs: gpus, Iterations: 2, Scale: 1, Seed: 1}
}

func TestCatalogMatchesTable2(t *testing.T) {
	specs := Catalog()
	if len(specs) != 8 {
		t.Fatalf("catalog has %d apps, want 8", len(specs))
	}
	wantPattern := map[string]string{
		"jacobi":    "Peer-to-peer",
		"pagerank":  "Peer-to-peer",
		"sssp":      "Many-to-many",
		"als":       "All-to-all",
		"ct":        "All-to-all",
		"eqwp":      "Peer-to-peer",
		"diffusion": "Peer-to-peer",
		"hit":       "Peer-to-peer",
	}
	for _, s := range specs {
		if s.Pattern != wantPattern[s.Name] {
			t.Errorf("%s pattern = %q, want %q", s.Name, s.Pattern, wantPattern[s.Name])
		}
		if s.Description == "" || s.Build == nil {
			t.Errorf("%s incomplete spec", s.Name)
		}
	}
}

func TestByName(t *testing.T) {
	s, err := ByName("jacobi")
	if err != nil || s.Name != "jacobi" {
		t.Fatalf("ByName(jacobi) = %v, %v", s, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown name accepted")
	}
	if len(Names()) != 8 {
		t.Fatal("Names() wrong length")
	}
}

func TestEveryAppProducesValidTraces(t *testing.T) {
	for _, spec := range Catalog() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			p := spec.Build(smallCfg(4))
			meta := p.Meta()
			if err := meta.Validate(); err != nil {
				t.Fatalf("meta invalid: %v", err)
			}
			if meta.NumGPUs != 4 {
				t.Fatalf("NumGPUs = %d", meta.NumGPUs)
			}
			if meta.ProfilePhases <= 0 {
				t.Fatal("profiling phases must be positive")
			}
			if meta.WorkingSetPerGPU == 0 {
				t.Fatal("working set unset")
			}
			phases := 0
			kernels := 0
			p.Phases(func(ph *trace.Phase) bool {
				if ph.Index != phases {
					t.Fatalf("phase index %d out of order (want %d)", ph.Index, phases)
				}
				phases++
				kernels += len(ph.Kernels)
				gpusSeen := map[int]bool{}
				for _, k := range ph.Kernels {
					if k.GPU < 0 || k.GPU >= 4 {
						t.Fatalf("kernel on GPU %d", k.GPU)
					}
					if gpusSeen[k.GPU] && spec.Name != "" {
						// Multiple kernels per GPU per phase are allowed, but
						// each generator here emits one.
						t.Fatalf("duplicate kernel for GPU %d in phase %d", k.GPU, ph.Index)
					}
					gpusSeen[k.GPU] = true
					if k.ComputeOps == 0 {
						t.Fatalf("kernel %s has no compute", k.Name)
					}
					if k.NumAccesses() == 0 {
						t.Fatalf("kernel %s has no accesses", k.Name)
					}
					for _, a := range k.FlatAccesses() {
						if err := a.Validate(); err != nil {
							t.Fatalf("invalid access: %v", err)
						}
						if a.Op != trace.OpFence && meta.RegionOf(a.Addr) == nil {
							t.Fatalf("%s: access at %#x outside all regions", k.Name, a.Addr)
						}
					}
				}
				return true
			})
			if phases < meta.ProfilePhases+2 {
				t.Fatalf("only %d phases generated", phases)
			}
			if kernels == 0 {
				t.Fatal("no kernels generated")
			}
		})
	}
}

func TestTracesAreDeterministic(t *testing.T) {
	for _, spec := range Catalog() {
		a := trace.Collect(spec.Build(smallCfg(2)))
		b := trace.Collect(spec.Build(smallCfg(2)))
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%s: two builds with the same config differ", spec.Name)
		}
	}
}

func TestStrongScalingPreservesTotalWork(t *testing.T) {
	// Strong scaling fixes the problem size: total written bytes must be
	// (approximately) independent of GPU count. Read bytes may grow for the
	// all-to-all applications (every GPU reads the full shared structure),
	// but never beyond N-fold.
	writeBytes := func(p trace.Program) (w, r uint64) {
		p.Phases(func(ph *trace.Phase) bool {
			for _, k := range ph.Kernels {
				for _, a := range k.FlatAccesses() {
					if a.IsWrite() {
						w += a.Bytes()
					} else if a.Op == trace.OpLoad {
						r += a.Bytes()
					}
				}
			}
			return true
		})
		return w, r
	}
	for _, spec := range Catalog() {
		w1, r1 := writeBytes(spec.Build(Config{NumGPUs: 1, Iterations: 2, Scale: 1, Seed: 1}))
		w4, r4 := writeBytes(spec.Build(smallCfg(4)))
		if lo, hi := float64(w1)*0.85, float64(w1)*1.2; float64(w4) < lo || float64(w4) > hi {
			t.Errorf("%s: written bytes at 4 GPUs = %d vs 1 GPU = %d (work not conserved)",
				spec.Name, w4, w1)
		}
		if float64(r4) > float64(r1)*4.2 {
			t.Errorf("%s: read bytes at 4 GPUs = %d vs 1 GPU = %d (beyond N-fold)",
				spec.Name, r4, r1)
		}
	}
}

func TestAtomicsDominateGraphAndALSSharedWrites(t *testing.T) {
	// Section 7.4: Pagerank, SSSP and ALS predominantly issue atomics, so
	// their write-queue hit rate is 0%.
	for _, name := range []string{"pagerank", "sssp", "als"} {
		spec, _ := ByName(name)
		s := trace.Summarize(spec.Build(smallCfg(4)))
		if s.Atomics == 0 {
			t.Errorf("%s: no atomics in trace", name)
		}
	}
	// Stencils use plain stores only.
	for _, name := range []string{"jacobi", "eqwp", "diffusion", "hit", "ct"} {
		spec, _ := ByName(name)
		s := trace.Summarize(spec.Build(smallCfg(4)))
		if s.Atomics != 0 {
			t.Errorf("%s: unexpected atomics", name)
		}
	}
}

func TestJacobiSingleVisitStores(t *testing.T) {
	// Jacobi writes every destination line exactly once per phase: the basis
	// for its 0% write-queue hit rate.
	p := NewJacobi(smallCfg(2))
	p.Phases(func(ph *trace.Phase) bool {
		for _, k := range ph.Kernels {
			seen := map[uint64]bool{}
			for _, a := range k.FlatAccesses() {
				if a.Op != trace.OpStore {
					continue
				}
				line := a.Addr / LineBytes
				if seen[line] {
					t.Fatalf("phase %d: line %#x written twice", ph.Index, line)
				}
				seen[line] = true
			}
		}
		return ph.Index < 2
	})
}

func TestMultiPassStoresRevisitWithinBlock(t *testing.T) {
	// EQWP writes each line `passes` times with revisit distance blockLines.
	p := NewEQWP(smallCfg(2))
	var firstKernel *trace.Kernel
	p.Phases(func(ph *trace.Phase) bool {
		firstKernel = &ph.Kernels[0]
		return false
	})
	counts := map[uint64]int{}
	var gaps []int
	lastPos := map[uint64]int{}
	pos := 0
	for _, a := range firstKernel.FlatAccesses() {
		if a.Op != trace.OpStore {
			continue
		}
		line := a.Addr / LineBytes
		counts[line]++
		if p, ok := lastPos[line]; ok {
			gaps = append(gaps, pos-p)
		}
		lastPos[line] = pos
		pos++
	}
	twice := 0
	for _, c := range counts {
		if c == 2 {
			twice++
		}
	}
	if twice == 0 {
		t.Fatal("no line written twice")
	}
	if len(gaps) == 0 {
		t.Fatal("no revisits")
	}
	for _, g := range gaps {
		if g > 416 {
			t.Fatalf("revisit gap %d exceeds the largest block size", g)
		}
	}
}

func TestSlabPartitioning(t *testing.T) {
	total := uint64(1000 * LineBytes)
	var sum uint64
	prevEnd := uint64(0)
	for g := 0; g < 7; g++ {
		off, size := slab(total, 7, g)
		if off != prevEnd {
			t.Fatalf("slab %d not contiguous: off %d, want %d", g, off, prevEnd)
		}
		if size%LineBytes != 0 {
			t.Fatalf("slab %d not line aligned", g)
		}
		prevEnd = off + size
		sum += size
	}
	if sum != total {
		t.Fatalf("slabs sum to %d, want %d", sum, total)
	}
}

func TestSingleGPUTraceHasOnlyLocalSharing(t *testing.T) {
	// At 1 GPU there is exactly one kernel per phase and no halo reads
	// outside the region.
	p := NewJacobi(Config{NumGPUs: 1, Iterations: 1, Scale: 1, Seed: 1})
	p.Phases(func(ph *trace.Phase) bool {
		if len(ph.Kernels) != 1 {
			t.Fatalf("phase %d has %d kernels", ph.Index, len(ph.Kernels))
		}
		return true
	})
}

func TestScaleGrowsTrace(t *testing.T) {
	small := trace.Summarize(NewJacobi(Config{NumGPUs: 2, Iterations: 1, Scale: 1, Seed: 1}))
	big := trace.Summarize(NewJacobi(Config{NumGPUs: 2, Iterations: 1, Scale: 2, Seed: 1}))
	if big.Bytes <= small.Bytes {
		t.Fatal("Scale=2 did not grow the trace")
	}
}

func TestDedupSorted(t *testing.T) {
	got := dedupSorted([]int{3, 1, 3, 2, 1})
	if !reflect.DeepEqual(got, []int{1, 2, 3}) {
		t.Fatalf("dedupSorted = %v", got)
	}
}

func TestControlCatalogValidTraces(t *testing.T) {
	for _, spec := range ControlCatalog() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			p := spec.Build(smallCfg(4))
			meta := p.Meta()
			if err := meta.Validate(); err != nil {
				t.Fatalf("meta invalid: %v", err)
			}
			phases := 0
			p.Phases(func(ph *trace.Phase) bool {
				phases++
				for _, k := range ph.Kernels {
					if k.ComputeOps == 0 || k.NumAccesses() == 0 {
						t.Fatalf("kernel %s incomplete", k.Name)
					}
					for _, a := range k.FlatAccesses() {
						if err := a.Validate(); err != nil {
							t.Fatal(err)
						}
						if meta.RegionOf(a.Addr) == nil {
							t.Fatalf("access outside regions at %#x", a.Addr)
						}
					}
				}
				return true
			})
			if phases < 3 {
				t.Fatalf("only %d phases", phases)
			}
		})
	}
}

func TestControlAppsAreComputeBound(t *testing.T) {
	// The control apps must be decisively compute-bound: flops per traced
	// byte far above the machine's flops:bandwidth ratio (~15).
	for _, spec := range ControlCatalog() {
		p := spec.Build(smallCfg(4))
		var ops, bytes uint64
		p.Phases(func(ph *trace.Phase) bool {
			for _, k := range ph.Kernels {
				ops += k.ComputeOps
				for _, a := range k.FlatAccesses() {
					bytes += a.Bytes()
				}
			}
			return true
		})
		if intensity := float64(ops) / float64(bytes); intensity < 1000 {
			t.Errorf("%s: intensity %.0f flops/byte, want compute-bound", spec.Name, intensity)
		}
	}
}

func TestByNameFindsControlApps(t *testing.T) {
	if _, err := ByName("matmul"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByName("nbody"); err != nil {
		t.Fatal(err)
	}
}

func TestScatteredAccessesHaveSegmentLocality(t *testing.T) {
	// Consecutive scattered warp instructions must share a narrow segment
	// (destination-sorted edges): this is what keeps the 32-entry GPS-TLB
	// near 100% (Section 7.4).
	kb := newKernel(0, "k", 1)
	window := uint64(6 << 20)
	kb.scattered(trace.OpAtomic, 0, window, 120, 1)
	k := kb.build()
	accs := k.FlatAccesses()
	if len(accs) != 120 {
		t.Fatalf("emitted %d instructions", len(accs))
	}
	segs := map[uint64]bool{}
	changes := 0
	prev := uint64(1 << 62)
	for _, a := range accs {
		seg := a.Addr / scatterSegmentBytes
		segs[seg] = true
		if seg != prev {
			changes++
		}
		prev = seg
		if uint64(a.Stride)*LineBytes > scatterSegmentBytes+LineBytes {
			t.Fatalf("scatter window %d lines exceeds a segment", a.Stride)
		}
	}
	// All 12 segments covered, but only ~12 transitions (not 120).
	if len(segs) != 12 {
		t.Fatalf("covered %d segments, want 12", len(segs))
	}
	if changes > 14 {
		t.Fatalf("%d segment changes for 120 instrs: locality lost", changes)
	}
}
