package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEngineRunsEventsInTimeOrder(t *testing.T) {
	e := NewEngine()
	var got []Time
	for _, at := range []Time{5, 1, 3, 2, 4} {
		at := at
		e.Schedule(at, func() { got = append(got, at) })
	}
	end := e.Run()
	if end != 5 {
		t.Fatalf("final time = %v, want 5", end)
	}
	want := []Time{1, 2, 3, 4, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fired order %v, want %v", got, want)
		}
	}
}

func TestEngineSameTimeFIFO(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(7, func() { got = append(got, i) })
	}
	e.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-time events fired out of order: %v", got)
		}
	}
}

func TestEngineAfterUsesCurrentTime(t *testing.T) {
	e := NewEngine()
	var at Time
	e.Schedule(10, func() {
		e.After(5, func() { at = e.Now() })
	})
	e.Run()
	if at != 15 {
		t.Fatalf("After(5) inside t=10 event fired at %v, want 15", at)
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.Schedule(1, func() { fired = true })
	if !e.Cancel(ev) {
		t.Fatal("Cancel returned false for a pending event")
	}
	if e.Cancel(ev) {
		t.Fatal("second Cancel should report false")
	}
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestEngineCancelMiddleOfQueue(t *testing.T) {
	e := NewEngine()
	var got []Time
	var evs []*Event
	for _, at := range []Time{1, 2, 3, 4, 5} {
		at := at
		evs = append(evs, e.Schedule(at, func() { got = append(got, at) }))
	}
	e.Cancel(evs[2]) // remove t=3
	e.Run()
	want := []Time{1, 2, 4, 5}
	if len(got) != len(want) {
		t.Fatalf("fired %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fired %v, want %v", got, want)
		}
	}
}

func TestEngineSchedulePastPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(5, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	e.Schedule(1, func() {})
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	var fired []Time
	for _, at := range []Time{1, 2, 3, 10} {
		at := at
		e.Schedule(at, func() { fired = append(fired, at) })
	}
	e.RunUntil(5)
	if len(fired) != 3 {
		t.Fatalf("RunUntil(5) fired %v, want first three", fired)
	}
	if e.Now() != 5 {
		t.Fatalf("clock = %v, want 5", e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", e.Pending())
	}
	e.Run()
	if e.Now() != 10 {
		t.Fatalf("final clock = %v, want 10", e.Now())
	}
}

func TestEngineNextAt(t *testing.T) {
	e := NewEngine()
	if e.NextAt() != Infinity {
		t.Fatal("empty engine NextAt should be Infinity")
	}
	e.Schedule(3, func() {})
	if e.NextAt() != 3 {
		t.Fatalf("NextAt = %v, want 3", e.NextAt())
	}
}

func TestEngineReset(t *testing.T) {
	e := NewEngine()
	fired := false
	e.Schedule(1, func() { fired = true })
	e.Reset()
	if e.Pending() != 0 || e.Now() != 0 {
		t.Fatal("Reset did not clear state")
	}
	e.Run()
	if fired {
		t.Fatal("event fired after Reset")
	}
	// Engine is reusable after Reset.
	e.Schedule(2, func() { fired = true })
	e.Run()
	if !fired || e.Now() != 2 {
		t.Fatal("engine not reusable after Reset")
	}
}

func TestEngineFiredCount(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 17; i++ {
		e.Schedule(Time(i), func() {})
	}
	e.Run()
	if e.Fired() != 17 {
		t.Fatalf("Fired = %d, want 17", e.Fired())
	}
}

// Property: for any set of schedule times, events fire in nondecreasing time
// order and every non-cancelled event fires exactly once.
func TestEngineOrderingProperty(t *testing.T) {
	f := func(times []uint16) bool {
		e := NewEngine()
		var fired []Time
		for _, raw := range times {
			at := Time(raw) / 16
			e.Schedule(at, func() { fired = append(fired, at) })
		}
		e.Run()
		if len(fired) != len(times) {
			return false
		}
		return sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: random interleaving of schedules and cancels never fires a
// cancelled event and always fires the rest.
func TestEngineCancelProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		e := NewEngine()
		firedSet := map[int]bool{}
		cancelled := map[int]bool{}
		var evs []*Event
		n := 1 + rng.Intn(100)
		for i := 0; i < n; i++ {
			i := i
			evs = append(evs, e.Schedule(Time(rng.Intn(50)), func() { firedSet[i] = true }))
		}
		for i := range evs {
			if rng.Intn(3) == 0 {
				e.Cancel(evs[i])
				cancelled[i] = true
			}
		}
		e.Run()
		for i := 0; i < n; i++ {
			if cancelled[i] && firedSet[i] {
				t.Fatalf("trial %d: cancelled event %d fired", trial, i)
			}
			if !cancelled[i] && !firedSet[i] {
				t.Fatalf("trial %d: live event %d never fired", trial, i)
			}
		}
	}
}

func BenchmarkEngineScheduleRun(b *testing.B) {
	e := NewEngine()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Schedule(e.Now()+Time(i%97)/100, func() {})
		if e.Pending() > 1024 {
			e.Step()
		}
	}
	e.Run()
}
