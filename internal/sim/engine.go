// Package sim provides the discrete-event simulation kernel that underpins
// the GPS timing model. It supplies a deterministic event queue with a
// monotonically advancing clock, cancellable events, and stable FIFO ordering
// for events scheduled at the same timestamp.
//
// Time is measured in seconds of simulated time as a float64. All components
// above this package (interconnect flows, kernel phases, fault handlers)
// schedule closures on a shared Engine and never observe wall-clock time, so
// simulations are reproducible bit-for-bit.
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Time is a point in simulated time, in seconds since simulation start.
type Time float64

// Duration is a span of simulated time in seconds.
type Duration = Time

// Infinity is a time later than any event the simulator will ever reach.
const Infinity Time = math.MaxFloat64

// Event is a scheduled callback. It is returned by Schedule so callers can
// cancel it before it fires. An Event must not be reused after it fires or is
// cancelled.
type Event struct {
	at       Time
	seq      uint64
	index    int // position in the heap, -1 when not queued
	fn       func()
	canceled bool
}

// At reports the simulated time at which the event will fire (or fired).
func (e *Event) At() Time { return e.at }

// eventQueue implements heap.Interface ordered by (time, seq).
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*q = old[:n-1]
	return ev
}

// Engine is a single-threaded discrete-event simulator. The zero value is
// not usable; construct with NewEngine.
type Engine struct {
	now    Time
	seq    uint64
	queue  eventQueue
	fired  uint64
	paused bool
}

// NewEngine returns an Engine with the clock at time zero and an empty queue.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Pending reports the number of events currently scheduled.
func (e *Engine) Pending() int { return len(e.queue) }

// Fired reports the total number of events that have executed.
func (e *Engine) Fired() uint64 { return e.fired }

// Schedule enqueues fn to run at absolute time at. Scheduling in the past
// (before Now) panics, as it would break causality. Events scheduled for the
// same instant fire in the order they were scheduled.
func (e *Engine) Schedule(at Time, fn func()) *Event {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, e.now))
	}
	if fn == nil {
		panic("sim: schedule with nil callback")
	}
	ev := &Event{at: at, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

// After enqueues fn to run d seconds after the current time.
func (e *Engine) After(d Duration, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return e.Schedule(e.now+d, fn)
}

// Cancel removes a pending event so it never fires. Cancelling an event that
// already fired or was already cancelled is a no-op and reports false.
func (e *Engine) Cancel(ev *Event) bool {
	if ev == nil || ev.canceled || ev.index < 0 {
		return false
	}
	ev.canceled = true
	heap.Remove(&e.queue, ev.index)
	ev.index = -1
	return true
}

// Step fires the single earliest pending event. It reports false when the
// queue is empty.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(*Event)
	e.now = ev.at
	e.fired++
	ev.fn()
	return true
}

// Run fires events until the queue drains and returns the final time.
func (e *Engine) Run() Time {
	for e.Step() {
	}
	return e.now
}

// RunUntil fires events with timestamps <= deadline, then advances the clock
// to deadline (if the clock has not already passed it) and returns.
func (e *Engine) RunUntil(deadline Time) Time {
	for len(e.queue) > 0 && e.queue[0].at <= deadline {
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
	return e.now
}

// NextAt returns the timestamp of the earliest pending event, or Infinity if
// none is pending.
func (e *Engine) NextAt() Time {
	if len(e.queue) == 0 {
		return Infinity
	}
	return e.queue[0].at
}

// Reset drops all pending events and rewinds the clock to zero so the engine
// can be reused for an independent simulation.
func (e *Engine) Reset() {
	for _, ev := range e.queue {
		ev.index = -1
		ev.canceled = true
	}
	e.queue = e.queue[:0]
	e.now = 0
	e.seq = 0
	e.fired = 0
}
