// Package stats provides the small numerical and presentation helpers the
// experiment harness uses: geometric/arithmetic means, speedup ratios, and
// fixed-width text rendering of tables and bar-series that mirror the
// paper's figures.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// GeoMean returns the geometric mean of xs. All values must be positive;
// non-positive values panic since a silent NaN would corrupt every figure.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	logSum := 0.0
	for _, x := range xs {
		if x <= 0 {
			panic(fmt.Sprintf("stats: GeoMean of non-positive value %v", x))
		}
		logSum += math.Log(x)
	}
	return math.Exp(logSum / float64(len(xs)))
}

// Min returns the minimum of xs; it panics on empty input.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Min of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs; it panics on empty input.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Max of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Speedup returns base/measured: how many times faster measured is than
// base (both are durations).
func Speedup(baseSeconds, measuredSeconds float64) float64 {
	if measuredSeconds <= 0 {
		panic(fmt.Sprintf("stats: speedup over non-positive time %v", measuredSeconds))
	}
	return baseSeconds / measuredSeconds
}

// Histogram is a discrete distribution over small integer keys (used for the
// Figure 9 subscriber-count distribution).
type Histogram map[int]int

// Total returns the sum of all counts.
func (h Histogram) Total() int {
	t := 0
	for _, c := range h {
		t += c
	}
	return t
}

// Fraction returns the share of mass at key, in [0,1].
func (h Histogram) Fraction(key int) float64 {
	t := h.Total()
	if t == 0 {
		return 0
	}
	return float64(h[key]) / float64(t)
}

// Keys returns the keys in ascending order.
func (h Histogram) Keys() []int {
	ks := make([]int, 0, len(h))
	for k := range h {
		ks = append(ks, k)
	}
	sort.Ints(ks)
	return ks
}

// Table renders labeled rows of float columns as fixed-width text.
type Table struct {
	Title   string
	ColName string   // header of the label column
	Cols    []string // value column headers
	rows    []tableRow
	Fmt     string // value format, default "%8.2f"
}

type tableRow struct {
	label string
	vals  []float64
}

// NewTable builds a table with the given label-column header and value
// column headers.
func NewTable(title, colName string, cols ...string) *Table {
	return &Table{Title: title, ColName: colName, Cols: cols, Fmt: "%8.2f"}
}

// AddRow appends a labeled row; the number of values must match the column
// count.
func (t *Table) AddRow(label string, vals ...float64) {
	if len(vals) != len(t.Cols) {
		panic(fmt.Sprintf("stats: row %q has %d values for %d columns", label, len(vals), len(t.Cols)))
	}
	t.rows = append(t.rows, tableRow{label: label, vals: vals})
}

// Rows returns the number of data rows.
func (t *Table) Rows() int { return len(t.rows) }

// Value returns the cell at (row, col).
func (t *Table) Value(row, col int) float64 { return t.rows[row].vals[col] }

// RowLabel returns the label of the given row.
func (t *Table) RowLabel(row int) string { return t.rows[row].label }

// Column returns all values in the named column.
func (t *Table) Column(name string) []float64 {
	idx := -1
	for i, c := range t.Cols {
		if c == name {
			idx = i
			break
		}
	}
	if idx < 0 {
		panic(fmt.Sprintf("stats: no column %q", name))
	}
	out := make([]float64, 0, len(t.rows))
	for _, r := range t.rows {
		out = append(out, r.vals[idx])
	}
	return out
}

// String renders the table.
func (t *Table) String() string {
	labelW := len(t.ColName)
	for _, r := range t.rows {
		if len(r.label) > labelW {
			labelW = len(r.label)
		}
	}
	valW := 0
	for _, c := range t.Cols {
		if len(c) > valW {
			valW = len(c)
		}
	}
	if w := len(fmt.Sprintf(t.Fmt, 0.0)); w > valW {
		valW = w
	}

	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	fmt.Fprintf(&b, "%-*s", labelW, t.ColName)
	for _, c := range t.Cols {
		fmt.Fprintf(&b, "  %*s", valW, c)
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "%s\n", strings.Repeat("-", labelW+(valW+2)*len(t.Cols)))
	for _, r := range t.rows {
		fmt.Fprintf(&b, "%-*s", labelW, r.label)
		for _, v := range r.vals {
			cell := fmt.Sprintf(t.Fmt, v)
			fmt.Fprintf(&b, "  %*s", valW, strings.TrimSpace(cell))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Bars renders a simple horizontal bar chart of labeled values, the text
// analogue of the paper's bar figures.
func Bars(title string, labels []string, values []float64, unit string) string {
	if len(labels) != len(values) {
		panic("stats: labels/values length mismatch")
	}
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	labelW := 0
	for _, l := range labels {
		if len(l) > labelW {
			labelW = len(l)
		}
	}
	maxV := 0.0
	for _, v := range values {
		if v > maxV {
			maxV = v
		}
	}
	const width = 48
	for i, l := range labels {
		n := 0
		if maxV > 0 {
			n = int(values[i] / maxV * width)
		}
		fmt.Fprintf(&b, "%-*s  %-*s %8.2f%s\n", labelW, l, width, strings.Repeat("#", n), values[i], unit)
	}
	return b.String()
}
