package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// CSV renders the table as comma-separated values with a header row, for
// piping figure data into external plotting tools.
func (t *Table) CSV() string {
	var b strings.Builder
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	b.WriteString(esc(t.ColName))
	for _, c := range t.Cols {
		b.WriteByte(',')
		b.WriteString(esc(c))
	}
	b.WriteByte('\n')
	for _, r := range t.rows {
		b.WriteString(esc(r.label))
		for _, v := range r.vals {
			fmt.Fprintf(&b, ",%g", v)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// LineChart renders one series per table row as an ASCII line chart with
// the table's columns as x-axis points — the text analogue of the paper's
// line figures (13 and 14). Rows are labeled with single letters keyed in
// the legend.
func (t *Table) LineChart(height int) string {
	if height < 4 {
		height = 4
	}
	if t.Rows() == 0 || len(t.Cols) == 0 {
		return ""
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, r := range t.rows {
		for _, v := range r.vals {
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
	}
	if hi == lo {
		hi = lo + 1
	}
	const colWidth = 7
	width := len(t.Cols) * colWidth
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	rowFor := func(v float64) int {
		frac := (v - lo) / (hi - lo)
		r := int(math.Round(float64(height-1) * (1 - frac)))
		if r < 0 {
			r = 0
		}
		if r >= height {
			r = height - 1
		}
		return r
	}
	marks := make([]byte, t.Rows())
	for i := range marks {
		marks[i] = byte('A' + i%26)
	}
	for ri, r := range t.rows {
		for ci, v := range r.vals {
			x := ci*colWidth + colWidth/2
			y := rowFor(v)
			if grid[y][x] == ' ' {
				grid[y][x] = marks[ri]
			} else if grid[y][x] != marks[ri] {
				grid[y][x] = '*' // collision
			}
		}
	}

	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	for i, line := range grid {
		val := hi - (hi-lo)*float64(i)/float64(height-1)
		fmt.Fprintf(&b, "%8.1f |%s\n", val, string(line))
	}
	fmt.Fprintf(&b, "%8s +%s\n", "", strings.Repeat("-", width))
	fmt.Fprintf(&b, "%8s  ", "")
	for _, c := range t.Cols {
		fmt.Fprintf(&b, "%*s", colWidth, truncate(c, colWidth-1))
	}
	b.WriteByte('\n')
	// Legend, in row order.
	for ri, r := range t.rows {
		fmt.Fprintf(&b, "%8s  %c = %s\n", "", marks[ri], r.label)
	}
	return b.String()
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n]
}

// SortedKeys returns a histogram's keys in ascending order (re-exported
// convenience for renderers).
func SortedKeys(h Histogram) []int {
	ks := h.Keys()
	sort.Ints(ks)
	return ks
}
