package stats

import (
	"strings"
	"testing"
)

func sampleTable() *Table {
	tb := NewTable("title", "size", "16", "64", "256")
	tb.AddRow("ct", 0, 10, 44)
	tb.AddRow("hit", 1, 30, 62)
	return tb
}

func TestCSV(t *testing.T) {
	out := sampleTable().CSV()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if lines[0] != "size,16,64,256" {
		t.Fatalf("header = %q", lines[0])
	}
	if lines[1] != "ct,0,10,44" {
		t.Fatalf("row = %q", lines[1])
	}
}

func TestCSVEscaping(t *testing.T) {
	tb := NewTable("", "a,b", `x"y`)
	tb.AddRow("lab,el", 1)
	out := tb.CSV()
	if !strings.Contains(out, `"a,b"`) || !strings.Contains(out, `"x""y"`) || !strings.Contains(out, `"lab,el"`) {
		t.Fatalf("escaping failed:\n%s", out)
	}
}

func TestLineChart(t *testing.T) {
	out := sampleTable().LineChart(8)
	if !strings.Contains(out, "title") {
		t.Fatal("missing title")
	}
	if !strings.Contains(out, "A = ct") || !strings.Contains(out, "B = hit") {
		t.Fatalf("missing legend:\n%s", out)
	}
	// Axis labels include the extremes.
	if !strings.Contains(out, "62.0") || !strings.Contains(out, "0.0") {
		t.Fatalf("missing axis range:\n%s", out)
	}
	// Marks present.
	if !strings.Contains(out, "A") || !strings.Contains(out, "B") {
		t.Fatal("missing series marks")
	}
	// Column header row shows x labels.
	if !strings.Contains(out, "256") {
		t.Fatal("missing x labels")
	}
}

func TestLineChartDegenerate(t *testing.T) {
	tb := NewTable("", "x", "a")
	if tb.LineChart(6) != "" {
		t.Fatal("empty table should render empty")
	}
	tb.AddRow("flat", 5)
	out := tb.LineChart(6)
	if out == "" {
		t.Fatal("flat series should still render")
	}
}

func TestSortedKeys(t *testing.T) {
	h := Histogram{3: 1, 1: 1, 2: 1}
	ks := SortedKeys(h)
	if len(ks) != 3 || ks[0] != 1 || ks[2] != 3 {
		t.Fatalf("keys = %v", ks)
	}
}
