package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMean(t *testing.T) {
	if !almost(Mean([]float64{1, 2, 3}), 2) {
		t.Fatal("mean wrong")
	}
	if Mean(nil) != 0 {
		t.Fatal("empty mean should be 0")
	}
}

func TestGeoMean(t *testing.T) {
	if !almost(GeoMean([]float64{1, 4}), 2) {
		t.Fatalf("GeoMean = %v", GeoMean([]float64{1, 4}))
	}
	if !almost(GeoMean([]float64{2, 2, 2}), 2) {
		t.Fatal("constant geomean wrong")
	}
	if GeoMean(nil) != 0 {
		t.Fatal("empty geomean should be 0")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("GeoMean of 0 should panic")
		}
	}()
	GeoMean([]float64{1, 0})
}

// Property: geomean lies between min and max, and is scale-equivariant.
func TestGeoMeanProperties(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)/100 + 0.01
		}
		g := GeoMean(xs)
		if g < Min(xs)-1e-9 || g > Max(xs)+1e-9 {
			return false
		}
		scaled := make([]float64, len(xs))
		for i := range xs {
			scaled[i] = xs[i] * 3
		}
		return almost(GeoMean(scaled), 3*g)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSpeedup(t *testing.T) {
	if !almost(Speedup(10, 2), 5) {
		t.Fatal("speedup wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("zero time should panic")
		}
	}()
	Speedup(1, 0)
}

func TestHistogram(t *testing.T) {
	h := Histogram{2: 30, 4: 60, 3: 10}
	if h.Total() != 100 {
		t.Fatal("total wrong")
	}
	if !almost(h.Fraction(4), 0.6) {
		t.Fatal("fraction wrong")
	}
	if h.Fraction(9) != 0 {
		t.Fatal("absent key fraction should be 0")
	}
	ks := h.Keys()
	if len(ks) != 3 || ks[0] != 2 || ks[2] != 4 {
		t.Fatalf("keys = %v", ks)
	}
	if (Histogram{}).Fraction(1) != 0 {
		t.Fatal("empty histogram fraction should be 0")
	}
}

func TestTable(t *testing.T) {
	tb := NewTable("Fig X", "App", "UM", "GPS")
	tb.AddRow("jacobi", 0.8, 3.2)
	tb.AddRow("ct", 1.1, 2.9)
	if tb.Rows() != 2 {
		t.Fatal("rows wrong")
	}
	if !almost(tb.Value(0, 1), 3.2) {
		t.Fatal("value wrong")
	}
	if tb.RowLabel(1) != "ct" {
		t.Fatal("label wrong")
	}
	col := tb.Column("GPS")
	if len(col) != 2 || !almost(col[0], 3.2) {
		t.Fatalf("column = %v", col)
	}
	out := tb.String()
	for _, want := range []string{"Fig X", "App", "UM", "GPS", "jacobi", "3.20"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, out)
		}
	}
}

func TestTableBadRowPanics(t *testing.T) {
	tb := NewTable("", "x", "a", "b")
	defer func() {
		if recover() == nil {
			t.Fatal("short row accepted")
		}
	}()
	tb.AddRow("r", 1)
}

func TestTableMissingColumnPanics(t *testing.T) {
	tb := NewTable("", "x", "a")
	tb.AddRow("r", 1)
	defer func() {
		if recover() == nil {
			t.Fatal("missing column accepted")
		}
	}()
	tb.Column("nope")
}

func TestBars(t *testing.T) {
	out := Bars("title", []string{"a", "bb"}, []float64{1, 2}, "x")
	if !strings.Contains(out, "title") || !strings.Contains(out, "bb") {
		t.Fatalf("bars output:\n%s", out)
	}
	// The larger value gets the longer bar.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if strings.Count(lines[2], "#") <= strings.Count(lines[1], "#") {
		t.Fatalf("bar lengths not proportional:\n%s", out)
	}
	if Bars("", nil, nil, "") != "" {
		t.Fatal("empty bars should render empty")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, 1, 2}
	if Min(xs) != 1 || Max(xs) != 3 {
		t.Fatal("min/max wrong")
	}
}
