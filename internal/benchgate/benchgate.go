// Package benchgate compares a fresh gpsbench -json report against a
// committed baseline (BENCH_<n>.json) and classifies every metric drift, so
// `make check` fails when a change regresses the experiment suite's
// performance or its memoization behavior.
//
// Two kinds of metrics get two kinds of gates:
//
//   - Deterministic metrics — the Section 7.1 headline numbers and the
//     runner's work counters (trace builds, engine replays, baseline
//     simulations) — are identical run-to-run for a fixed configuration, so
//     they are gated tightly: headline numbers must match within a relative
//     epsilon (any drift is a simulation-behavior change that needs a
//     deliberate re-bless), and work counters must not grow (more executed
//     work means a memoization regression; doing less work is an
//     improvement and passes).
//
//   - Wall-clock metrics — total wall time, per-section wall time, and
//     per-section p99 cell time — vary with the machine and its load, so
//     they are gated loosely: a regression requires both exceeding the
//     baseline by a ratio (default 1.5×) and an absolute floor (default
//     0.5s), so noise on sub-second sections never fails the gate.
package benchgate

import (
	"fmt"
	"math"

	"gps/internal/report"
)

// Thresholds tune the gate.
type Thresholds struct {
	// WallRatio is the maximum allowed current/baseline wall-clock ratio.
	WallRatio float64
	// WallFloorSeconds exempts any wall-clock reading below this absolute
	// value: sub-floor times are noise regardless of ratio.
	WallFloorSeconds float64
	// HeadlineEps is the relative tolerance on the deterministic headline
	// metrics (gps_mean_x, opportunity_pct, vs_next_best_x).
	HeadlineEps float64
}

// Defaults returns the thresholds `make check` runs with.
func Defaults() Thresholds {
	return Thresholds{WallRatio: 1.5, WallFloorSeconds: 0.5, HeadlineEps: 1e-6}
}

func (t Thresholds) withDefaults() Thresholds {
	d := Defaults()
	if t.WallRatio <= 0 {
		t.WallRatio = d.WallRatio
	}
	if t.WallFloorSeconds <= 0 {
		t.WallFloorSeconds = d.WallFloorSeconds
	}
	if t.HeadlineEps <= 0 {
		t.HeadlineEps = d.HeadlineEps
	}
	return t
}

// Finding is one compared metric.
type Finding struct {
	Metric    string // e.g. "total_seconds", "section[figure8].seconds"
	Baseline  float64
	Current   float64
	Regressed bool
	Detail    string // why it regressed (empty when it passed)
}

// Result is the full comparison.
type Result struct {
	Findings []Finding
}

// Regressions returns the findings that failed the gate.
func (r *Result) Regressions() []Finding {
	var out []Finding
	for _, f := range r.Findings {
		if f.Regressed {
			out = append(out, f)
		}
	}
	return out
}

// Compare gates current against baseline. It never errors: missing data is
// reported as a finding so the gate stays honest about what it could not
// compare.
func Compare(baseline, current *report.Report, th Thresholds) *Result {
	th = th.withDefaults()
	res := &Result{}

	headline := func(name string, b, c float64) {
		f := Finding{Metric: name, Baseline: b, Current: c}
		// Relative drift against the baseline magnitude; exact-zero
		// baselines compare absolutely.
		scale := math.Abs(b)
		if scale == 0 {
			scale = 1
		}
		if math.Abs(c-b)/scale > th.HeadlineEps {
			f.Regressed = true
			f.Detail = fmt.Sprintf("deterministic headline drifted beyond eps %g (re-bless if intended)", th.HeadlineEps)
		}
		res.Findings = append(res.Findings, f)
	}
	headline("gps_mean_x", baseline.GPSMeanX, current.GPSMeanX)
	headline("opportunity_pct", baseline.OpportunityPct, current.OpportunityPct)
	headline("vs_next_best_x", baseline.VsNextBestX, current.VsNextBestX)

	counter := func(name string, b, c uint64) {
		f := Finding{Metric: name, Baseline: float64(b), Current: float64(c)}
		if c > b {
			f.Regressed = true
			f.Detail = "work counter grew: memoization executed more than the baseline"
		}
		res.Findings = append(res.Findings, f)
	}
	counter("cache.trace_builds", baseline.Cache.TraceBuilds, current.Cache.TraceBuilds)
	counter("cache.engine_runs", baseline.Cache.EngineRuns, current.Cache.EngineRuns)
	counter("cache.baseline_runs", baseline.Cache.BaselineRuns, current.Cache.BaselineRuns)

	wall := func(name string, b, c float64) {
		f := Finding{Metric: name, Baseline: b, Current: c}
		if c > th.WallFloorSeconds && b > 0 && c/b > th.WallRatio {
			f.Regressed = true
			f.Detail = fmt.Sprintf("%.3fs vs %.3fs baseline exceeds %.2fx ratio (floor %.2fs)",
				c, b, th.WallRatio, th.WallFloorSeconds)
		}
		res.Findings = append(res.Findings, f)
	}
	wall("total_seconds", baseline.TotalSeconds, current.TotalSeconds)

	base := map[string]report.Section{}
	for _, s := range baseline.Sections {
		base[s.Name] = s
	}
	seen := map[string]bool{}
	for _, s := range current.Sections {
		seen[s.Name] = true
		bs, ok := base[s.Name]
		if !ok {
			continue // new section: nothing to gate against yet
		}
		wall(fmt.Sprintf("section[%s].seconds", s.Name), bs.Seconds, s.Seconds)
		if bs.P99CellSeconds > 0 && s.P99CellSeconds > 0 {
			wall(fmt.Sprintf("section[%s].p99_cell_seconds", s.Name), bs.P99CellSeconds, s.P99CellSeconds)
		}
	}
	for _, s := range baseline.Sections {
		if !seen[s.Name] {
			res.Findings = append(res.Findings, Finding{
				Metric: fmt.Sprintf("section[%s]", s.Name), Baseline: s.Seconds,
				Regressed: true, Detail: "section present in baseline but missing from current run",
			})
		}
	}
	return res
}
