package benchgate

import (
	"strings"
	"testing"

	"gps/internal/experiments"
	"gps/internal/report"
)

func baseReport() *report.Report {
	return &report.Report{
		GPSMeanX:       3.13,
		OpportunityPct: 91.49,
		VsNextBestX:    1.92,
		TotalSeconds:   60,
		Sections: []report.Section{
			{Name: "figure8", Seconds: 1.2, P99CellSeconds: 0.14},
			{Name: "figure12", Seconds: 6.3, P99CellSeconds: 0.5},
			{Name: "figure9", Seconds: 0.0008},
		},
		Cache: experiments.CacheStats{TraceBuilds: 40, EngineRuns: 200, BaselineRuns: 30},
	}
}

func regressionsOf(t *testing.T, b, c *report.Report) []Finding {
	t.Helper()
	return Compare(b, c, Thresholds{}).Regressions()
}

func TestIdenticalReportsPass(t *testing.T) {
	if regs := regressionsOf(t, baseReport(), baseReport()); len(regs) != 0 {
		t.Fatalf("identical reports regressed: %+v", regs)
	}
}

func TestWallClockNoiseToleratedWithinRatioAndFloor(t *testing.T) {
	c := baseReport()
	c.TotalSeconds = 80         // 1.33x: within 1.5x ratio
	c.Sections[0].Seconds = 1.7 // 1.42x: within ratio
	c.Sections[2].Seconds = 0.4 // 500x but under the 0.5s floor
	if regs := regressionsOf(t, baseReport(), c); len(regs) != 0 {
		t.Fatalf("noise within thresholds regressed: %+v", regs)
	}
}

func TestWallClockRegressionCaught(t *testing.T) {
	c := baseReport()
	c.TotalSeconds = 100 // 1.67x over the 1.5x ratio and over the floor
	regs := regressionsOf(t, baseReport(), c)
	if len(regs) != 1 || regs[0].Metric != "total_seconds" {
		t.Fatalf("want total_seconds regression, got %+v", regs)
	}
}

func TestSectionP99Gated(t *testing.T) {
	c := baseReport()
	c.Sections[1].P99CellSeconds = 1.0 // 2x baseline 0.5, above floor
	regs := regressionsOf(t, baseReport(), c)
	if len(regs) != 1 || !strings.Contains(regs[0].Metric, "figure12") {
		t.Fatalf("want figure12 p99 regression, got %+v", regs)
	}
}

func TestHeadlineDriftCaughtBothDirections(t *testing.T) {
	for _, delta := range []float64{+0.01, -0.01} {
		c := baseReport()
		c.GPSMeanX += delta
		regs := regressionsOf(t, baseReport(), c)
		if len(regs) != 1 || regs[0].Metric != "gps_mean_x" {
			t.Fatalf("delta %+.2f: want gps_mean_x drift, got %+v", delta, regs)
		}
	}
}

func TestCounterGrowthCaughtShrinkagePasses(t *testing.T) {
	c := baseReport()
	c.Cache.EngineRuns = 201
	regs := regressionsOf(t, baseReport(), c)
	if len(regs) != 1 || regs[0].Metric != "cache.engine_runs" {
		t.Fatalf("want engine_runs regression, got %+v", regs)
	}
	c = baseReport()
	c.Cache.EngineRuns = 150 // fewer replays: an improvement
	if regs := regressionsOf(t, baseReport(), c); len(regs) != 0 {
		t.Fatalf("counter shrinkage regressed: %+v", regs)
	}
}

func TestMissingSectionCaughtNewSectionIgnored(t *testing.T) {
	c := baseReport()
	c.Sections = append(c.Sections[:1], report.Section{Name: "figure99", Seconds: 9})
	regs := regressionsOf(t, baseReport(), c)
	if len(regs) != 2 { // figure12 and figure9 both missing
		t.Fatalf("want 2 missing-section regressions, got %+v", regs)
	}
	for _, f := range regs {
		if !strings.Contains(f.Detail, "missing") {
			t.Fatalf("want missing-section detail, got %+v", f)
		}
	}
}
