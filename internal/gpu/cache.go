// Package gpu models the GPU-local memory hierarchy at line granularity: a
// set-associative, write-back, write-allocate L2 cache in front of DRAM
// counters. The timing simulator uses an analytic L2 model for speed
// (trace.L2Model); this package provides the structural counterpart used to
// validate that model's parameters — in particular the paper's observation
// that EQWP's L2 hit rate climbs from 55% to 68% when 4 GPUs split the
// working set (Section 7.1), which emerges here from nothing but cache
// geometry and the access stream.
package gpu

import (
	"fmt"
	"math/bits"
)

// CacheConfig fixes one cache's geometry.
type CacheConfig struct {
	SizeBytes int
	LineBytes int
	Ways      int
}

// V100L2 returns the Table 1 L2 geometry: 6 MB, 128 B lines, 16-way.
func V100L2() CacheConfig {
	return CacheConfig{SizeBytes: 6 << 20, LineBytes: 128, Ways: 16}
}

// Validate reports invalid geometries.
func (c CacheConfig) Validate() error {
	switch {
	case c.LineBytes <= 0 || c.LineBytes&(c.LineBytes-1) != 0:
		return fmt.Errorf("gpu: line size %d not a power of two", c.LineBytes)
	case c.Ways <= 0:
		return fmt.Errorf("gpu: %d ways", c.Ways)
	case c.SizeBytes <= 0 || c.SizeBytes%(c.LineBytes*c.Ways) != 0:
		return fmt.Errorf("gpu: size %d not divisible into %d-way sets of %d B lines",
			c.SizeBytes, c.Ways, c.LineBytes)
	}
	return nil
}

// CacheStats counts cache activity.
type CacheStats struct {
	Hits       uint64
	Misses     uint64
	Evictions  uint64
	Writebacks uint64 // dirty evictions
}

// HitRate returns hits / (hits + misses), or 0 with no accesses.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

type cacheLine struct {
	valid   bool
	dirty   bool
	tag     uint64
	lastUse uint64
}

// Cache is a set-associative, write-back, write-allocate cache with
// true-LRU replacement within each set.
type Cache struct {
	cfg       CacheConfig
	lineShift int
	numSets   uint64
	sets      [][]cacheLine
	clock     uint64
	stats     CacheStats
}

// NewCache builds a cache; it panics on invalid geometry (construction
// arguments are programmer-controlled constants).
func NewCache(cfg CacheConfig) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	numSets := cfg.SizeBytes / (cfg.LineBytes * cfg.Ways)
	sets := make([][]cacheLine, numSets)
	for i := range sets {
		sets[i] = make([]cacheLine, cfg.Ways)
	}
	return &Cache{
		cfg:       cfg,
		lineShift: bits.TrailingZeros(uint(cfg.LineBytes)),
		numSets:   uint64(numSets),
		sets:      sets,
	}
}

// Config returns the cache geometry.
func (c *Cache) Config() CacheConfig { return c.cfg }

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() CacheStats { return c.stats }

// ResetStats zeroes the counters without flushing contents.
func (c *Cache) ResetStats() { c.stats = CacheStats{} }

// Access performs one load (write=false) or store (write=true) to addr and
// reports whether it hit, plus whether the fill evicted a dirty line
// (writeback traffic to DRAM).
func (c *Cache) Access(addr uint64, write bool) (hit, writeback bool) {
	c.clock++
	// GPU L2s hash addresses across slices; with a non-power-of-two set
	// count (6 MB / 16 ways / 128 B = 3072 sets on V100) modulo indexing
	// plays that role.
	lineAddr := addr >> c.lineShift
	set := c.sets[lineAddr%c.numSets]
	tag := lineAddr / c.numSets

	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i].lastUse = c.clock
			if write {
				set[i].dirty = true
			}
			c.stats.Hits++
			return true, false
		}
	}
	c.stats.Misses++

	// Write-allocate: fill the line, evicting LRU.
	victim := -1
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
		if victim < 0 || set[i].lastUse < set[victim].lastUse {
			victim = i
		}
	}
	if set[victim].valid {
		c.stats.Evictions++
		if set[victim].dirty {
			c.stats.Writebacks++
			writeback = true
		}
	}
	set[victim] = cacheLine{valid: true, dirty: write, tag: tag, lastUse: c.clock}
	return false, writeback
}

// Flush invalidates every line and returns the number of dirty lines that
// would write back.
func (c *Cache) Flush() int {
	dirty := 0
	for _, set := range c.sets {
		for i := range set {
			if set[i].valid && set[i].dirty {
				dirty++
			}
			set[i] = cacheLine{}
		}
	}
	return dirty
}

// Occupancy returns the number of valid lines resident.
func (c *Cache) Occupancy() int {
	n := 0
	for _, set := range c.sets {
		for i := range set {
			if set[i].valid {
				n++
			}
		}
	}
	return n
}

// MemoryPath is one GPU's L2 + DRAM traffic accounting: every access goes
// through the L2; misses and writebacks become DRAM line transactions.
type MemoryPath struct {
	GPU        int
	L2         *Cache
	DRAMReads  uint64 // line fills from DRAM
	DRAMWrites uint64 // writebacks to DRAM
}

// NewMemoryPath builds a memory path with the given L2 geometry.
func NewMemoryPath(gpu int, cfg CacheConfig) *MemoryPath {
	return &MemoryPath{GPU: gpu, L2: NewCache(cfg)}
}

// Load performs a read of the line containing addr.
func (m *MemoryPath) Load(addr uint64) (hit bool) {
	hit, wb := m.L2.Access(addr, false)
	if !hit {
		m.DRAMReads++
	}
	if wb {
		m.DRAMWrites++
	}
	return hit
}

// Store performs a write to the line containing addr.
func (m *MemoryPath) Store(addr uint64) (hit bool) {
	hit, wb := m.L2.Access(addr, true)
	if !hit {
		m.DRAMReads++ // write-allocate fill
	}
	if wb {
		m.DRAMWrites++
	}
	return hit
}

// DRAMBytes returns total DRAM traffic in bytes.
func (m *MemoryPath) DRAMBytes() uint64 {
	return (m.DRAMReads + m.DRAMWrites) * uint64(m.L2.cfg.LineBytes)
}
