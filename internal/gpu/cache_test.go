package gpu

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func tiny() CacheConfig { return CacheConfig{SizeBytes: 8 * 128, LineBytes: 128, Ways: 2} }

func TestCacheHitAfterFill(t *testing.T) {
	c := NewCache(tiny())
	if hit, _ := c.Access(0, false); hit {
		t.Fatal("cold access hit")
	}
	if hit, _ := c.Access(64, false); !hit {
		t.Fatal("same-line access missed")
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 {
		t.Fatalf("stats %+v", s)
	}
	if s.HitRate() != 0.5 {
		t.Fatalf("hit rate %v", s.HitRate())
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// 4 sets x 2 ways; addresses with the same set index conflict.
	c := NewCache(tiny())
	setStride := uint64(4 * 128) // same set every 4 lines
	c.Access(0*setStride, false)
	c.Access(1*setStride, false)
	c.Access(0*setStride, false) // refresh first; LRU is the second
	c.Access(2*setStride, false) // evicts line 1
	if hit, _ := c.Access(0, false); !hit {
		t.Fatal("MRU line evicted")
	}
	if hit, _ := c.Access(1*setStride, false); hit {
		t.Fatal("LRU line survived")
	}
}

func TestCacheWritebackOnDirtyEviction(t *testing.T) {
	c := NewCache(tiny())
	setStride := uint64(4 * 128)
	c.Access(0, true)                     // dirty
	c.Access(setStride, false)            // clean
	_, wb := c.Access(2*setStride, false) // evicts dirty line 0
	if !wb {
		t.Fatal("dirty eviction did not write back")
	}
	if c.Stats().Writebacks != 1 {
		t.Fatalf("writebacks = %d", c.Stats().Writebacks)
	}
}

func TestCacheFlush(t *testing.T) {
	c := NewCache(tiny())
	c.Access(0, true)
	c.Access(128, false)
	if c.Occupancy() != 2 {
		t.Fatalf("occupancy = %d", c.Occupancy())
	}
	if dirty := c.Flush(); dirty != 1 {
		t.Fatalf("flush dirty = %d, want 1", dirty)
	}
	if c.Occupancy() != 0 {
		t.Fatal("flush left lines")
	}
	if hit, _ := c.Access(0, false); hit {
		t.Fatal("hit after flush")
	}
}

func TestCacheConfigValidation(t *testing.T) {
	bad := []CacheConfig{
		{SizeBytes: 1024, LineBytes: 100, Ways: 2},
		{SizeBytes: 1024, LineBytes: 128, Ways: 0},
		{SizeBytes: 1000, LineBytes: 128, Ways: 2},
	}
	for _, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
	if err := V100L2().Validate(); err != nil {
		t.Fatal(err)
	}
}

// Property: a cache never reports more hits than accesses, occupancy never
// exceeds capacity, and a working set that fits is fully resident after one
// pass (second pass hits 100%).
func TestCacheProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := NewCache(CacheConfig{SizeBytes: 64 * 128, LineBytes: 128, Ways: 4})
		for i := 0; i < 2000; i++ {
			c.Access(uint64(rng.Intn(1024))*128, rng.Intn(2) == 0)
			if c.Occupancy() > 64 {
				return false
			}
		}
		s := c.Stats()
		return s.Hits+s.Misses == 2000
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestCacheSecondPassHitsWhenFits(t *testing.T) {
	c := NewCache(CacheConfig{SizeBytes: 64 * 128, LineBytes: 128, Ways: 4})
	for pass := 0; pass < 2; pass++ {
		c.ResetStats()
		for line := uint64(0); line < 64; line++ {
			c.Access(line*128, false)
		}
		if pass == 1 && c.Stats().HitRate() != 1 {
			t.Fatalf("second pass hit rate = %v, want 1", c.Stats().HitRate())
		}
	}
	// A working set 2x the capacity thrashes under LRU streaming: 0% hits.
	c2 := NewCache(CacheConfig{SizeBytes: 64 * 128, LineBytes: 128, Ways: 4})
	for pass := 0; pass < 3; pass++ {
		for line := uint64(0); line < 128; line++ {
			c2.Access(line*128, false)
		}
	}
	if c2.Stats().Hits != 0 {
		t.Fatalf("streaming over 2x capacity should never hit, got %d", c2.Stats().Hits)
	}
}

func TestMemoryPathDRAMAccounting(t *testing.T) {
	m := NewMemoryPath(0, tiny())
	m.Load(0)  // miss: 1 DRAM read
	m.Load(0)  // hit
	m.Store(0) // hit (dirty)
	if m.DRAMReads != 1 || m.DRAMWrites != 0 {
		t.Fatalf("reads/writes = %d/%d", m.DRAMReads, m.DRAMWrites)
	}
	// Evict the dirty line via conflicting fills.
	setStride := uint64(4 * 128)
	m.Load(setStride)
	m.Load(2 * setStride)
	if m.DRAMWrites != 1 {
		t.Fatalf("writebacks to DRAM = %d, want 1", m.DRAMWrites)
	}
	if m.DRAMBytes() != (m.DRAMReads+m.DRAMWrites)*128 {
		t.Fatal("DRAMBytes inconsistent")
	}
}

// The headline structural result: splitting a working set that overflows
// the L2 across more GPUs raises each GPU's hit rate — the EQWP effect.
func TestAggregateCacheEffect(t *testing.T) {
	hitRateAt := func(gpus int) float64 {
		const totalLines = 96 * 1024 // 12 MB working set vs 6 MB L2
		m := NewMemoryPath(0, V100L2())
		per := totalLines / gpus
		for pass := 0; pass < 4; pass++ {
			for l := 0; l < per; l++ {
				m.Load(uint64(l) * 128)
			}
		}
		return m.L2.Stats().HitRate()
	}
	one := hitRateAt(1)
	four := hitRateAt(4)
	if four <= one {
		t.Fatalf("hit rate should rise with split: 1 GPU %.2f vs 4 GPUs %.2f", one, four)
	}
	if four < 0.7 {
		t.Fatalf("fitting working set should mostly hit, got %.2f", four)
	}
}

func BenchmarkCacheAccess(b *testing.B) {
	c := NewCache(V100L2())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Access(uint64(i%100000)*128, i%4 == 0)
	}
}
