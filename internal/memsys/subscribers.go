package memsys

import (
	"fmt"
	"math/bits"
	"strings"
)

// SubscriberSet is a bitmask of GPU IDs subscribed to a page. The simulator
// supports up to 64 GPUs, far beyond the 16-GPU systems evaluated.
type SubscriberSet uint64

// MaxGPUs is the largest GPU ID representable in a SubscriberSet.
const MaxGPUs = 64

// SetOf builds a set from explicit GPU IDs.
func SetOf(gpus ...int) SubscriberSet {
	var s SubscriberSet
	for _, g := range gpus {
		s = s.Add(g)
	}
	return s
}

// AllGPUs returns the set {0, ..., n-1}.
func AllGPUs(n int) SubscriberSet {
	if n < 0 || n > MaxGPUs {
		panic(fmt.Sprintf("memsys: GPU count %d out of range", n))
	}
	if n == MaxGPUs {
		return ^SubscriberSet(0)
	}
	return SubscriberSet(1)<<n - 1
}

// Add returns the set with gpu included.
func (s SubscriberSet) Add(gpu int) SubscriberSet {
	checkGPU(gpu)
	return s | 1<<gpu
}

// Remove returns the set with gpu excluded.
func (s SubscriberSet) Remove(gpu int) SubscriberSet {
	checkGPU(gpu)
	return s &^ (1 << gpu)
}

// Has reports whether gpu is in the set.
func (s SubscriberSet) Has(gpu int) bool {
	checkGPU(gpu)
	return s&(1<<gpu) != 0
}

// Count returns the number of subscribers.
func (s SubscriberSet) Count() int { return bits.OnesCount64(uint64(s)) }

// Empty reports whether the set has no subscribers.
func (s SubscriberSet) Empty() bool { return s == 0 }

// First returns the lowest-numbered subscriber, or -1 if empty. GPS uses
// this as the deterministic target for remote loads by non-subscribers.
func (s SubscriberSet) First() int {
	if s == 0 {
		return -1
	}
	return bits.TrailingZeros64(uint64(s))
}

// ForEach calls fn for every subscriber in ascending GPU order.
func (s SubscriberSet) ForEach(fn func(gpu int)) {
	for rem := uint64(s); rem != 0; {
		g := bits.TrailingZeros64(rem)
		fn(g)
		rem &^= 1 << g
	}
}

// GPUs returns the members in ascending order.
func (s SubscriberSet) GPUs() []int {
	out := make([]int, 0, s.Count())
	s.ForEach(func(g int) { out = append(out, g) })
	return out
}

// Intersect returns the common subscribers of s and o.
func (s SubscriberSet) Intersect(o SubscriberSet) SubscriberSet { return s & o }

// Union returns the combined subscribers of s and o.
func (s SubscriberSet) Union(o SubscriberSet) SubscriberSet { return s | o }

func (s SubscriberSet) String() string {
	if s == 0 {
		return "{}"
	}
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(g int) {
		if !first {
			b.WriteByte(',')
		}
		first = false
		fmt.Fprintf(&b, "%d", g)
	})
	b.WriteByte('}')
	return b.String()
}

func checkGPU(gpu int) {
	if gpu < 0 || gpu >= MaxGPUs {
		panic(fmt.Sprintf("memsys: GPU %d out of range [0,%d)", gpu, MaxGPUs))
	}
}
