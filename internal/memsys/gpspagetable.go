package memsys

import "fmt"

// GPSPTE is one wide leaf entry of the secondary GPS page table: the
// physical page number of every subscriber's replica of one virtual page
// (Section 5.2). Slots for non-subscribers hold NoPPN. A nil Replicas slice
// marks an absent entry (the page is not a GPS page).
type GPSPTE struct {
	Subscribers SubscriberSet
	Replicas    []PPN // indexed by GPU ID, length = system GPU count
}

// ReplicaOn returns the PPN of gpu's replica, or NoPPN if gpu is not a
// subscriber.
func (e *GPSPTE) ReplicaOn(gpu int) PPN {
	if gpu < 0 || gpu >= len(e.Replicas) || !e.Subscribers.Has(gpu) {
		return NoPPN
	}
	return e.Replicas[gpu]
}

// GPSPageTable is the system-wide secondary page table tracking the multiple
// physical mappings that coexist for each GPS virtual page. It lies off the
// critical path: only remote writes drained from the write queue consult it.
// Like the conventional PageTable, its modeled shape is hierarchical but its
// storage is a dense PageMap slab, so Lookup is two array indexings.
type GPSPageTable struct {
	geom    Geometry
	numGPUs int
	levels  int
	entries *PageMap[GPSPTE]
	count   int
}

// NewGPSPageTable builds an empty GPS page table for a system of numGPUs.
func NewGPSPageTable(geom Geometry, numGPUs int) *GPSPageTable {
	if numGPUs < 1 || numGPUs > MaxGPUs {
		panic(fmt.Sprintf("memsys: GPU count %d out of range", numGPUs))
	}
	levels := (geom.VPNBits() + radixBits - 1) / radixBits
	return &GPSPageTable{
		geom:    geom,
		numGPUs: numGPUs,
		levels:  levels,
		entries: NewPageMap[GPSPTE](geom.PageBytes),
	}
}

// Levels reports the walk depth (the GPS page table is "a variant of a
// traditional 5-level hierarchical page table with very wide leaf PTEs").
func (t *GPSPageTable) Levels() int { return t.levels }

// Entries returns the number of GPS pages tracked.
func (t *GPSPageTable) Entries() int { return t.count }

// EntryBits returns the storage size of one wide leaf PTE in bits.
func (t *GPSPageTable) EntryBits() int { return t.geom.GPSPTEBits(t.numGPUs) }

// Lookup returns the wide PTE for vpn, or nil if vpn is not a GPS page.
// The translation unit caches the returned pointer in its GPS-TLB, so
// callers allocating new GPS ranges must Reserve them first to keep slabs
// from growing underneath cached pointers.
func (t *GPSPageTable) Lookup(vpn VPN) *GPSPTE {
	if e := t.entries.Peek(uint64(vpn)); e != nil && e.Replicas != nil {
		return e
	}
	return nil
}

// Walk is Lookup plus the node-visit count charged by the timing model on a
// GPS-TLB miss.
func (t *GPSPageTable) Walk(vpn VPN) (*GPSPTE, int) {
	return t.Lookup(vpn), t.levels
}

// Reserve pre-sizes the leaf storage for every page of [base, base+size), so
// Subscribe never grows a slab under a pointer the GPS-TLB has cached.
func (t *GPSPageTable) Reserve(base VAddr, size uint64) {
	if size == 0 {
		return
	}
	first := t.geom.VPNOf(base)
	last := t.geom.VPNOf(base + VAddr(size-1))
	t.entries.Reserve(uint64(first), uint64(last-first)+1)
}

// Subscribe records gpu as a subscriber of vpn with the given replica frame.
// The entry is created on first subscription.
func (t *GPSPageTable) Subscribe(vpn VPN, gpu int, replica PPN) {
	if gpu < 0 || gpu >= t.numGPUs {
		panic(fmt.Sprintf("memsys: GPU %d out of range [0,%d)", gpu, t.numGPUs))
	}
	e := t.entries.At(uint64(vpn))
	if e.Replicas == nil {
		e.Replicas = make([]PPN, t.numGPUs)
		for i := range e.Replicas {
			e.Replicas[i] = NoPPN
		}
		t.count++
	}
	e.Subscribers = e.Subscribers.Add(gpu)
	e.Replicas[gpu] = replica
}

// ErrLastSubscriber is returned when unsubscribing would leave a GPS page
// with no physical copy; the paper requires at least one subscriber remain.
var ErrLastSubscriber = fmt.Errorf("memsys: cannot unsubscribe the last subscriber")

// Unsubscribe removes gpu from vpn's subscribers and returns the frame that
// can now be freed. Removing the final subscriber fails with
// ErrLastSubscriber.
func (t *GPSPageTable) Unsubscribe(vpn VPN, gpu int) (PPN, error) {
	e := t.Lookup(vpn)
	if e == nil || !e.Subscribers.Has(gpu) {
		return NoPPN, fmt.Errorf("memsys: GPU %d is not subscribed to VPN %#x", gpu, uint64(vpn))
	}
	if e.Subscribers.Count() == 1 {
		return NoPPN, ErrLastSubscriber
	}
	ppn := e.Replicas[gpu]
	e.Subscribers = e.Subscribers.Remove(gpu)
	e.Replicas[gpu] = NoPPN
	return ppn, nil
}

// Drop removes the entire entry for vpn (used when a page is collapsed to a
// conventional page after a sys-scoped write, Section 5.3).
func (t *GPSPageTable) Drop(vpn VPN) {
	if e := t.entries.Peek(uint64(vpn)); e != nil && e.Replicas != nil {
		*e = GPSPTE{}
		t.count--
	}
}

// ForEach visits every (vpn, entry) pair in ascending VPN order.
func (t *GPSPageTable) ForEach(fn func(vpn VPN, e *GPSPTE)) {
	t.entries.ForEach(func(vpn uint64, e *GPSPTE) {
		if e.Replicas != nil {
			fn(VPN(vpn), e)
		}
	})
}
