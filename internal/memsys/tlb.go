package memsys

import "fmt"

// TLB is a set-associative translation lookaside buffer with true-LRU
// replacement within each set. The payload type is generic so the same
// structure backs both the conventional last-level TLB (payload PTE) and the
// GPS-TLB (payload *GPSPTE, the wide entry with all subscribers' frames).
type TLB[T any] struct {
	sets    [][]tlbEntry[T]
	setMask uint64 // len(sets)-1 when a power of two (the common case)
	pow2    bool
	ways    int
	clock   uint64
	hits    uint64
	misses  uint64
}

type tlbEntry[T any] struct {
	valid   bool
	vpn     VPN
	payload T
	lastUse uint64
}

// NewTLB builds a TLB with the given total entry count and associativity.
func NewTLB[T any](entries, ways int) *TLB[T] {
	if entries <= 0 || ways <= 0 || entries%ways != 0 {
		panic(fmt.Sprintf("memsys: invalid TLB geometry %d entries / %d ways", entries, ways))
	}
	numSets := entries / ways
	sets := make([][]tlbEntry[T], numSets)
	for i := range sets {
		sets[i] = make([]tlbEntry[T], ways)
	}
	return &TLB[T]{
		sets:    sets,
		setMask: uint64(numSets - 1),
		pow2:    numSets&(numSets-1) == 0,
		ways:    ways,
	}
}

func (t *TLB[T]) setOf(vpn VPN) []tlbEntry[T] {
	// Same set mapping either way; the mask just avoids a hardware divide
	// on the per-line lookup path.
	if t.pow2 {
		return t.sets[uint64(vpn)&t.setMask]
	}
	return t.sets[uint64(vpn)%uint64(len(t.sets))]
}

// Lookup probes the TLB. On a hit it refreshes the entry's recency and
// returns the payload.
func (t *TLB[T]) Lookup(vpn VPN) (T, bool) {
	t.clock++
	set := t.setOf(vpn)
	for i := range set {
		if set[i].valid && set[i].vpn == vpn {
			set[i].lastUse = t.clock
			t.hits++
			return set[i].payload, true
		}
	}
	t.misses++
	var zero T
	return zero, false
}

// Fill installs a translation, evicting the LRU way of the set if needed.
func (t *TLB[T]) Fill(vpn VPN, payload T) {
	t.clock++
	set := t.setOf(vpn)
	victim := -1
	for i := range set {
		if set[i].valid && set[i].vpn == vpn {
			set[i].payload = payload
			set[i].lastUse = t.clock
			return
		}
	}
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
		if victim < 0 || set[i].lastUse < set[victim].lastUse {
			victim = i
		}
	}
	set[victim] = tlbEntry[T]{valid: true, vpn: vpn, payload: payload, lastUse: t.clock}
}

// Invalidate removes the translation for vpn (a single-page shootdown); it
// reports whether an entry was present.
func (t *TLB[T]) Invalidate(vpn VPN) bool {
	set := t.setOf(vpn)
	for i := range set {
		if set[i].valid && set[i].vpn == vpn {
			set[i].valid = false
			return true
		}
	}
	return false
}

// Flush invalidates every entry (a full shootdown).
func (t *TLB[T]) Flush() {
	for _, set := range t.sets {
		for i := range set {
			set[i].valid = false
		}
	}
}

// Hits returns the number of lookups that hit.
func (t *TLB[T]) Hits() uint64 { return t.hits }

// Misses returns the number of lookups that missed.
func (t *TLB[T]) Misses() uint64 { return t.misses }

// HitRate returns hits / lookups, or 0 if no lookups occurred.
func (t *TLB[T]) HitRate() float64 {
	total := t.hits + t.misses
	if total == 0 {
		return 0
	}
	return float64(t.hits) / float64(total)
}

// ResetStats clears the hit/miss counters without touching the contents.
func (t *TLB[T]) ResetStats() { t.hits, t.misses = 0, 0 }
