package memsys

import (
	"math/rand"
	"testing"
)

// TestPageMapMatchesMapReference drives a PageMap and a plain map[vpn]T
// through the same random operation stream and requires identical behavior:
// the slab backing is an implementation detail, not a semantic change.
func TestPageMapMatchesMapReference(t *testing.T) {
	const pageBytes = 64 << 10
	rng := rand.New(rand.NewSource(42))
	pm := NewPageMap[uint32](pageBytes)
	ref := map[uint64]uint32{}

	// VPNs drawn from a few 8 GB slots, with region-like clustering near the
	// slot base plus occasional far offsets to force slab growth.
	randVPN := func() uint64 {
		slot := uint64(1 + rng.Intn(4))
		off := uint64(rng.Intn(2048))
		if rng.Intn(10) == 0 {
			off = uint64(rng.Intn(1 << 17))
		}
		return slot<<(RegionSlotShift-16) + off // 64 KB pages: 2^17 pages/slot
	}

	for op := 0; op < 200000; op++ {
		vpn := randVPN()
		switch rng.Intn(4) {
		case 0: // write
			v := rng.Uint32() | 1 // nonzero: zero means absent
			*pm.At(vpn) = v
			ref[vpn] = v
		case 1: // read through At (allocates, must see zero or last write)
			if got, want := *pm.At(vpn), ref[vpn]; got != want {
				t.Fatalf("At(%#x) = %d, want %d", vpn, got, want)
			}
		case 2: // read through Peek (never allocates)
			p := pm.Peek(vpn)
			if p == nil {
				if v, ok := ref[vpn]; ok && v != 0 {
					t.Fatalf("Peek(%#x) = nil, want %d", vpn, v)
				}
			} else if *p != ref[vpn] {
				t.Fatalf("Peek(%#x) = %d, want %d", vpn, *p, ref[vpn])
			}
		case 3: // delete = zero the entry
			if p := pm.Peek(vpn); p != nil {
				*p = 0
			}
			delete(ref, vpn)
		}
	}

	// ForEach must visit every live entry exactly once, ascending.
	seen := map[uint64]uint32{}
	lastVPN := uint64(0)
	first := true
	pm.ForEach(func(vpn uint64, v *uint32) {
		if !first && vpn <= lastVPN {
			t.Fatalf("ForEach order regressed: %#x after %#x", vpn, lastVPN)
		}
		first, lastVPN = false, vpn
		if *v != 0 {
			seen[vpn] = *v
		}
	})
	for vpn, v := range ref {
		if v != 0 && seen[vpn] != v {
			t.Fatalf("ForEach missed %#x=%d (got %d)", vpn, v, seen[vpn])
		}
	}
	for vpn, v := range seen {
		if ref[vpn] != v {
			t.Fatalf("ForEach produced ghost entry %#x=%d", vpn, v)
		}
	}
}

func TestPageMapReserveKeepsPointersStable(t *testing.T) {
	pm := NewPageMap[uint64](64 << 10)
	first := uint64(3) << (RegionSlotShift - 16)
	pm.Reserve(first, 10000)
	p := pm.At(first)
	*p = 7
	for off := uint64(0); off < 10000; off++ {
		*pm.At(first + off) = off
	}
	if p != pm.At(first) {
		t.Fatal("At after Reserve moved a reserved entry")
	}
}

func TestPageMapRejectsBadPageSize(t *testing.T) {
	for _, bad := range []uint64{0, 3, 48 << 10, 16 << 30} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewPageMap(%d) did not panic", bad)
				}
			}()
			NewPageMap[int](bad)
		}()
	}
}

// TestPageTableWalkDepthMatchesRadixReference checks that the slab-backed
// PageTable still charges the exact node-visit counts of the map-backed
// radix implementation it replaced: a hit costs the full depth; a miss stops
// at the first radix node no Map call ever created.
func TestPageTableWalkDepthMatchesRadixReference(t *testing.T) {
	geom := MustGeometry(64<<10, 128, 49, 47)
	pt := NewPageTable(geom)

	// Reference radix: nodes keyed by per-level prefix, as the old
	// implementation built them (and like it, never pruned).
	levels := pt.Levels()
	refNodes := make([]map[uint64]bool, levels-1)
	for i := range refNodes {
		refNodes[i] = map[uint64]bool{}
	}
	refLeaf := map[VPN]PTE{}
	refMap := func(vpn VPN, pte PTE) {
		for l := 0; l < levels-1; l++ {
			refNodes[l][uint64(vpn)>>(radixBits*(levels-1-l))] = true
		}
		refLeaf[vpn] = pte
	}
	refWalk := func(vpn VPN) (bool, int) {
		if _, ok := refLeaf[vpn]; ok {
			return true, levels
		}
		for l := 0; l < levels-1; l++ {
			if !refNodes[l][uint64(vpn)>>(radixBits*(levels-1-l))] {
				return false, l + 1
			}
		}
		return false, levels
	}

	rng := rand.New(rand.NewSource(7))
	randVPN := func() VPN {
		// Mix near and far pages so walks miss at every possible depth.
		return VPN(uint64(1+rng.Intn(3))<<17 + uint64(rng.Intn(1<<uint(rng.Intn(18)))))
	}
	for op := 0; op < 100000; op++ {
		vpn := randVPN()
		switch rng.Intn(3) {
		case 0:
			pte := PTE{Valid: true, PPN: PPN(rng.Uint32()), Owner: rng.Intn(4)}
			pt.Map(vpn, pte)
			refMap(vpn, pte)
		case 1:
			got, gotVisits := pt.Walk(vpn)
			wantHit, wantVisits := refWalk(vpn)
			if (got != nil) != wantHit || gotVisits != wantVisits {
				t.Fatalf("Walk(%#x) = (%v, %d), want (hit=%v, %d)",
					uint64(vpn), got, gotVisits, wantHit, wantVisits)
			}
		case 2:
			pt.Unmap(vpn)
			delete(refLeaf, vpn) // old Unmap deleted the leaf only
		}
	}
}
