package memsys

import (
	"testing"
	"testing/quick"
)

func gv100Geom() Geometry {
	return MustGeometry(64<<10, 128, 49, 47)
}

func TestGeometryDerivedWidths(t *testing.T) {
	g := gv100Geom()
	if g.PageShift() != 16 {
		t.Errorf("page shift = %d, want 16", g.PageShift())
	}
	if g.LineShift() != 7 {
		t.Errorf("line shift = %d, want 7", g.LineShift())
	}
	// Paper Section 5.2: VPN 33 bits, PPN 31 bits at 64 KB pages.
	if g.VPNBits() != 33 {
		t.Errorf("VPN bits = %d, want 33", g.VPNBits())
	}
	if g.PPNBits() != 31 {
		t.Errorf("PPN bits = %d, want 31", g.PPNBits())
	}
	if g.LinesPerPage() != 512 {
		t.Errorf("lines per page = %d, want 512", g.LinesPerPage())
	}
}

func TestGPSPTEBitsMatchesPaper(t *testing.T) {
	// "for a 4 GPU system, the minimum GPS-PTE entry size is 126 bits":
	// 33-bit VPN + 3 remote subscribers x 31-bit PPN.
	g := gv100Geom()
	if got := g.GPSPTEBits(4); got != 126 {
		t.Fatalf("GPS-PTE bits = %d, want 126", got)
	}
}

func TestGeometryAddressMath(t *testing.T) {
	g := gv100Geom()
	va := VAddr(3*64<<10 + 1000)
	if g.VPNOf(va) != 3 {
		t.Errorf("VPNOf = %d, want 3", g.VPNOf(va))
	}
	if g.PageBase(va) != VAddr(3*64<<10) {
		t.Errorf("PageBase = %#x", uint64(g.PageBase(va)))
	}
	if g.PageOffset(va) != 1000 {
		t.Errorf("PageOffset = %d, want 1000", g.PageOffset(va))
	}
	if g.LineBase(va) != VAddr(3*64<<10+896) {
		t.Errorf("LineBase = %#x", uint64(g.LineBase(va)))
	}
}

func TestPagesIn(t *testing.T) {
	g := gv100Geom()
	ps := g.PagesIn(VAddr(64<<10-1), 2)
	if len(ps) != 2 || ps[0] != 0 || ps[1] != 1 {
		t.Fatalf("PagesIn straddle = %v, want [0 1]", ps)
	}
	if got := g.PagesIn(0, 0); got != nil {
		t.Fatalf("PagesIn empty = %v, want nil", got)
	}
	if got := g.PagesIn(0, 64<<10); len(got) != 1 {
		t.Fatalf("PagesIn exactly one page = %v", got)
	}
	if got := g.PagesIn(0, 3*64<<10); len(got) != 3 {
		t.Fatalf("PagesIn three pages = %v", got)
	}
}

func TestNewGeometryRejectsInvalid(t *testing.T) {
	cases := []struct {
		page, line uint64
		va, pa     int
	}{
		{0, 128, 49, 47},
		{3000, 128, 49, 47},
		{64 << 10, 0, 49, 47},
		{64 << 10, 100, 49, 47},
		{128, 64 << 10, 49, 47}, // line > page
		{64 << 10, 128, 10, 47}, // VA narrower than page
		{64 << 10, 128, 49, 10},
		{64 << 10, 128, 70, 47},
	}
	for _, c := range cases {
		if _, err := NewGeometry(c.page, c.line, c.va, c.pa); err == nil {
			t.Errorf("NewGeometry(%d,%d,%d,%d) accepted invalid geometry", c.page, c.line, c.va, c.pa)
		}
	}
}

// Property: PageBase/PageOffset decompose and recompose any address, and the
// line of an address always lies within its page.
func TestGeometryDecompositionProperty(t *testing.T) {
	g := gv100Geom()
	f := func(raw uint64) bool {
		va := VAddr(raw % (1 << 49))
		if VAddr(uint64(g.PageBase(va))+g.PageOffset(va)) != va {
			return false
		}
		if g.VPNOf(g.LineBase(va)) != g.VPNOf(va) {
			return false
		}
		return g.PageOffset(g.PageBase(va)) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
