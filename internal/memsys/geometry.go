// Package memsys implements the GPU virtual-memory substrate GPS builds on:
// address geometry, per-GPU physical memory allocators, the conventional
// hierarchical page table extended with the GPS bit, the secondary GPS page
// table with wide leaf PTEs (one physical page number per subscriber), and
// set-associative TLBs.
package memsys

import (
	"fmt"
	"math/bits"
)

// VAddr is a virtual address in the shared multi-GPU address space.
type VAddr uint64

// PAddr is a physical address within one GPU's memory.
type PAddr uint64

// VPN is a virtual page number.
type VPN uint64

// PPN is a physical page number within one GPU's memory.
type PPN uint64

// NoPPN marks an absent physical mapping (e.g. a non-subscriber's slot in a
// GPS-PTE, or the dummy physical address used when a writer holds no local
// replica).
const NoPPN PPN = ^PPN(0)

// Geometry fixes the translation granularities of the simulated machine.
type Geometry struct {
	PageBytes uint64 // virtual memory page size
	LineBytes uint64 // cache block size
	VABits    int    // virtual address width
	PABits    int    // physical address width
}

// NewGeometry validates and returns a Geometry.
func NewGeometry(pageBytes, lineBytes uint64, vaBits, paBits int) (Geometry, error) {
	g := Geometry{PageBytes: pageBytes, LineBytes: lineBytes, VABits: vaBits, PABits: paBits}
	if pageBytes == 0 || pageBytes&(pageBytes-1) != 0 {
		return g, fmt.Errorf("memsys: page size %d is not a power of two", pageBytes)
	}
	if lineBytes == 0 || lineBytes&(lineBytes-1) != 0 {
		return g, fmt.Errorf("memsys: line size %d is not a power of two", lineBytes)
	}
	if lineBytes > pageBytes {
		return g, fmt.Errorf("memsys: line %d exceeds page %d", lineBytes, pageBytes)
	}
	if vaBits <= g.PageShift() || vaBits > 64 {
		return g, fmt.Errorf("memsys: VA width %d invalid for page shift %d", vaBits, g.PageShift())
	}
	if paBits <= g.PageShift() || paBits > 64 {
		return g, fmt.Errorf("memsys: PA width %d invalid for page shift %d", paBits, g.PageShift())
	}
	return g, nil
}

// MustGeometry is NewGeometry for known-good literals; it panics on error.
func MustGeometry(pageBytes, lineBytes uint64, vaBits, paBits int) Geometry {
	g, err := NewGeometry(pageBytes, lineBytes, vaBits, paBits)
	if err != nil {
		panic(err)
	}
	return g
}

// PageShift returns log2(PageBytes).
func (g Geometry) PageShift() int { return bits.TrailingZeros64(g.PageBytes) }

// LineShift returns log2(LineBytes).
func (g Geometry) LineShift() int { return bits.TrailingZeros64(g.LineBytes) }

// VPNBits returns the number of bits in a virtual page number.
func (g Geometry) VPNBits() int { return g.VABits - g.PageShift() }

// PPNBits returns the number of bits in a physical page number.
func (g Geometry) PPNBits() int { return g.PABits - g.PageShift() }

// VPNOf returns the virtual page number containing va.
func (g Geometry) VPNOf(va VAddr) VPN { return VPN(uint64(va) >> g.PageShift()) }

// LineOf returns the cache-line index (global, not per-page) containing va.
func (g Geometry) LineOf(va VAddr) uint64 { return uint64(va) >> g.LineShift() }

// PageBase returns the first address of the page containing va.
func (g Geometry) PageBase(va VAddr) VAddr {
	return VAddr(uint64(va) &^ (g.PageBytes - 1))
}

// LineBase returns the first address of the cache line containing va.
func (g Geometry) LineBase(va VAddr) VAddr {
	return VAddr(uint64(va) &^ (g.LineBytes - 1))
}

// PageOffset returns va's offset within its page.
func (g Geometry) PageOffset(va VAddr) uint64 { return uint64(va) & (g.PageBytes - 1) }

// LinesPerPage returns the number of cache lines in one page.
func (g Geometry) LinesPerPage() uint64 { return g.PageBytes / g.LineBytes }

// PagesIn returns the VPNs of all pages overlapping [base, base+size).
func (g Geometry) PagesIn(base VAddr, size uint64) []VPN {
	if size == 0 {
		return nil
	}
	first := g.VPNOf(base)
	last := g.VPNOf(base + VAddr(size-1))
	out := make([]VPN, 0, last-first+1)
	for v := first; v <= last; v++ {
		out = append(out, v)
	}
	return out
}

// GPSPTEBits returns the minimum size in bits of one GPS page-table entry
// for a system with numGPUs GPUs: the VPN tag plus one PPN slot per possible
// remote subscriber. With 64 KB pages (VPN 33 bits, PPN 31 bits) and 4 GPUs
// this is 126 bits, matching Section 5.2.
func (g Geometry) GPSPTEBits(numGPUs int) int {
	return g.VPNBits() + (numGPUs-1)*g.PPNBits()
}
