package memsys

import (
	"errors"
	"math/rand"
	"testing"
)

func TestPageTableMapWalk(t *testing.T) {
	pt := NewPageTable(gv100Geom())
	if pt.Levels() != 4 { // ceil(33/9)
		t.Fatalf("levels = %d, want 4", pt.Levels())
	}
	pt.Map(42, PTE{Valid: true, PPN: 7, Owner: 1})
	pte, visits := pt.Walk(42)
	if pte == nil || pte.PPN != 7 || pte.Owner != 1 {
		t.Fatalf("Walk returned %+v", pte)
	}
	if visits != pt.Levels() {
		t.Fatalf("full walk visits = %d, want %d", visits, pt.Levels())
	}
	if pt.Entries() != 1 {
		t.Fatalf("Entries = %d, want 1", pt.Entries())
	}
}

func TestPageTableMissAndShortWalk(t *testing.T) {
	pt := NewPageTable(gv100Geom())
	pte, visits := pt.Walk(99)
	if pte != nil {
		t.Fatal("unmapped walk returned a PTE")
	}
	if visits < 1 || visits > pt.Levels() {
		t.Fatalf("miss visits = %d out of range", visits)
	}
	// An empty table should fail at the first level.
	if visits != 1 {
		t.Fatalf("empty-table miss should abort at level 1, got %d", visits)
	}
}

func TestPageTableRemapAndUnmap(t *testing.T) {
	pt := NewPageTable(gv100Geom())
	pt.Map(5, PTE{Valid: true, PPN: 1})
	pt.Map(5, PTE{Valid: true, PPN: 2, GPS: true})
	if pt.Entries() != 1 {
		t.Fatalf("remap changed entry count: %d", pt.Entries())
	}
	pte := pt.Lookup(5)
	if pte.PPN != 2 || !pte.GPS {
		t.Fatalf("remap not applied: %+v", pte)
	}
	if !pt.Unmap(5) {
		t.Fatal("Unmap existing returned false")
	}
	if pt.Unmap(5) {
		t.Fatal("double Unmap returned true")
	}
	if pt.Lookup(5) != nil || pt.Entries() != 0 {
		t.Fatal("Unmap left residue")
	}
}

func TestPageTableGPSBit(t *testing.T) {
	pt := NewPageTable(gv100Geom())
	if err := pt.SetGPSBit(1, true); err == nil {
		t.Fatal("SetGPSBit on unmapped page should error")
	}
	pt.Map(1, PTE{Valid: true, PPN: 3})
	if err := pt.SetGPSBit(1, true); err != nil {
		t.Fatal(err)
	}
	if !pt.Lookup(1).GPS {
		t.Fatal("GPS bit not set")
	}
	if err := pt.SetGPSBit(1, false); err != nil {
		t.Fatal(err)
	}
	if pt.Lookup(1).GPS {
		t.Fatal("GPS bit not cleared")
	}
}

func TestPageTableMapInvalidPanics(t *testing.T) {
	pt := NewPageTable(gv100Geom())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic mapping invalid PTE")
		}
	}()
	pt.Map(1, PTE{Valid: false})
}

// Property: the page table behaves like a map[VPN]PTE under random
// map/unmap/lookup sequences, including distant VPNs sharing radix prefixes.
func TestPageTableMatchesModel(t *testing.T) {
	pt := NewPageTable(gv100Geom())
	model := map[VPN]PTE{}
	rng := rand.New(rand.NewSource(1))
	vpnPool := make([]VPN, 64)
	for i := range vpnPool {
		vpnPool[i] = VPN(rng.Uint64() % (1 << 33))
	}
	for step := 0; step < 5000; step++ {
		vpn := vpnPool[rng.Intn(len(vpnPool))]
		switch rng.Intn(3) {
		case 0:
			pte := PTE{Valid: true, PPN: PPN(rng.Uint32()), GPS: rng.Intn(2) == 0, Owner: rng.Intn(4)}
			pt.Map(vpn, pte)
			model[vpn] = pte
		case 1:
			_, inModel := model[vpn]
			if pt.Unmap(vpn) != inModel {
				t.Fatalf("step %d: Unmap(%d) disagrees with model", step, vpn)
			}
			delete(model, vpn)
		case 2:
			got := pt.Lookup(vpn)
			want, inModel := model[vpn]
			if (got != nil) != inModel {
				t.Fatalf("step %d: Lookup(%d) presence mismatch", step, vpn)
			}
			if got != nil && *got != want {
				t.Fatalf("step %d: Lookup(%d) = %+v, want %+v", step, vpn, *got, want)
			}
		}
		if pt.Entries() != len(model) {
			t.Fatalf("step %d: entries %d != model %d", step, pt.Entries(), len(model))
		}
	}
}

func TestPhysMemAllocFree(t *testing.T) {
	m, err := NewPhysMem(0, 4*64<<10, 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	var frames []PPN
	for i := 0; i < 4; i++ {
		p, err := m.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		frames = append(frames, p)
	}
	if _, err := m.Alloc(); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("expected ErrOutOfMemory, got %v", err)
	}
	if m.UsedBytes() != 4*64<<10 {
		t.Fatalf("UsedBytes = %d", m.UsedBytes())
	}
	m.Free(frames[2])
	if m.FreeFrames() != 1 {
		t.Fatalf("FreeFrames = %d, want 1", m.FreeFrames())
	}
	p, err := m.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	if p != frames[2] {
		t.Fatalf("expected recycled frame %d, got %d", frames[2], p)
	}
}

func TestPhysMemUniqueFrames(t *testing.T) {
	m, _ := NewPhysMem(1, 1<<20, 4<<10)
	seen := map[PPN]bool{}
	for {
		p, err := m.Alloc()
		if err != nil {
			break
		}
		if seen[p] {
			t.Fatalf("frame %d allocated twice", p)
		}
		seen[p] = true
	}
	if len(seen) != 256 {
		t.Fatalf("allocated %d frames, want 256", len(seen))
	}
}

func TestPhysMemDoubleFreePanics(t *testing.T) {
	m, _ := NewPhysMem(0, 1<<20, 4<<10)
	p, _ := m.Alloc()
	m.Free(p)
	defer func() {
		if recover() == nil {
			t.Fatal("double free should panic")
		}
	}()
	m.Free(p)
	m.Free(p)
}

func TestNewPhysMemRejectsInvalid(t *testing.T) {
	if _, err := NewPhysMem(0, 1<<20, 3000); err == nil {
		t.Error("non-pow2 page accepted")
	}
	if _, err := NewPhysMem(0, 100, 4096); err == nil {
		t.Error("capacity below a page accepted")
	}
}
