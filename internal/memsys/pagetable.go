package memsys

import "fmt"

// PTE is one entry of the conventional per-GPU page table, extended with the
// single re-purposed GPS bit (Section 5.2). Owner names the GPU holding the
// physical frame; for GPS pages with a local replica Owner equals the
// translating GPU, while for remote mappings it names the peer.
type PTE struct {
	Valid bool
	GPS   bool // the GPS bit: stores to this page fork to the GPS unit
	PPN   PPN
	Owner int
}

const radixBits = 9 // 512-ary radix nodes, as in GPU MMU formats

// PageTable is a hierarchical radix page table for one GPU. The number of
// levels follows from the VPN width at the configured page size (with 64 KB
// pages and a 49-bit VA this is ceil(33/9) = 4 radix levels below the root
// pointer, a 5-level walk counting the root).
type PageTable struct {
	geom   Geometry
	levels int
	root   *ptNode
	count  int
}

type ptNode struct {
	children map[uint64]*ptNode
	entries  map[uint64]*PTE // only at leaves
}

// NewPageTable builds an empty page table for the geometry.
func NewPageTable(geom Geometry) *PageTable {
	levels := (geom.VPNBits() + radixBits - 1) / radixBits
	if levels < 1 {
		levels = 1
	}
	return &PageTable{geom: geom, levels: levels, root: newNode()}
}

func newNode() *ptNode {
	return &ptNode{children: map[uint64]*ptNode{}, entries: map[uint64]*PTE{}}
}

// Levels returns the number of radix levels a full walk traverses.
func (pt *PageTable) Levels() int { return pt.levels }

// Entries returns the number of mapped pages.
func (pt *PageTable) Entries() int { return pt.count }

// indices splits a VPN into per-level radix indices, most significant first.
func (pt *PageTable) indices(vpn VPN) []uint64 {
	idx := make([]uint64, pt.levels)
	v := uint64(vpn)
	for l := pt.levels - 1; l >= 0; l-- {
		idx[l] = v & (1<<radixBits - 1)
		v >>= radixBits
	}
	return idx
}

// Walk performs a full page-table walk and returns the PTE (nil if the page
// is unmapped) along with the number of node visits the walk required, which
// the timing model charges for.
func (pt *PageTable) Walk(vpn VPN) (*PTE, int) {
	idx := pt.indices(vpn)
	n := pt.root
	visits := 0
	for l := 0; l < pt.levels-1; l++ {
		visits++
		next, ok := n.children[idx[l]]
		if !ok {
			return nil, visits
		}
		n = next
	}
	visits++
	return n.entries[idx[pt.levels-1]], visits
}

// Lookup returns the PTE for vpn, or nil.
func (pt *PageTable) Lookup(vpn VPN) *PTE {
	pte, _ := pt.Walk(vpn)
	return pte
}

// Map installs or replaces the translation for vpn.
func (pt *PageTable) Map(vpn VPN, pte PTE) {
	if !pte.Valid {
		panic("memsys: mapping an invalid PTE; use Unmap")
	}
	idx := pt.indices(vpn)
	n := pt.root
	for l := 0; l < pt.levels-1; l++ {
		next, ok := n.children[idx[l]]
		if !ok {
			next = newNode()
			n.children[idx[l]] = next
		}
		n = next
	}
	leaf := idx[pt.levels-1]
	if n.entries[leaf] == nil {
		pt.count++
	}
	cp := pte
	n.entries[leaf] = &cp
}

// Unmap removes the translation for vpn; it reports whether one existed.
func (pt *PageTable) Unmap(vpn VPN) bool {
	idx := pt.indices(vpn)
	n := pt.root
	for l := 0; l < pt.levels-1; l++ {
		next, ok := n.children[idx[l]]
		if !ok {
			return false
		}
		n = next
	}
	leaf := idx[pt.levels-1]
	if n.entries[leaf] == nil {
		return false
	}
	delete(n.entries, leaf)
	pt.count--
	return true
}

// SetGPSBit flips the GPS bit of an existing mapping.
func (pt *PageTable) SetGPSBit(vpn VPN, gps bool) error {
	pte := pt.Lookup(vpn)
	if pte == nil {
		return fmt.Errorf("memsys: SetGPSBit on unmapped VPN %#x", uint64(vpn))
	}
	pte.GPS = gps
	return nil
}
