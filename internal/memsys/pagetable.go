package memsys

import "fmt"

// PTE is one entry of the conventional per-GPU page table, extended with the
// single re-purposed GPS bit (Section 5.2). Owner names the GPU holding the
// physical frame; for GPS pages with a local replica Owner equals the
// translating GPU, while for remote mappings it names the peer.
type PTE struct {
	Valid bool
	GPS   bool // the GPS bit: stores to this page fork to the GPS unit
	PPN   PPN
	Owner int
}

const radixBits = 9 // 512-ary radix nodes, as in GPU MMU formats

// PageTable is the conventional page table for one GPU. Architecturally it
// is a hierarchical radix table (with 64 KB pages and a 49-bit VA this is
// ceil(33/9) = 4 radix levels below the root pointer, a 5-level walk
// counting the root), and Walk still accounts node visits at that modeled
// depth. The *storage*, however, is a dense PageMap slab — Lookup on the
// translation hot path is two array indexings, no hashing, no pointer
// chasing. The radix shape survives only as per-level presence sets that
// let Walk report how deep a miss travels before hitting a missing node.
type PageTable struct {
	geom    Geometry
	levels  int
	entries *PageMap[PTE]
	count   int
	// present[l] holds the radix prefixes (the VPN's leading (l+1)*radixBits
	// bits) for which the modeled level-l node exists. Nodes are created by
	// Map and, as in the map-backed radix table this replaced, never pruned
	// by Unmap.
	present []map[uint64]struct{}
}

// NewPageTable builds an empty page table for the geometry.
func NewPageTable(geom Geometry) *PageTable {
	levels := (geom.VPNBits() + radixBits - 1) / radixBits
	if levels < 1 {
		levels = 1
	}
	present := make([]map[uint64]struct{}, levels-1)
	for i := range present {
		present[i] = map[uint64]struct{}{}
	}
	return &PageTable{
		geom:    geom,
		levels:  levels,
		entries: NewPageMap[PTE](geom.PageBytes),
		present: present,
	}
}

// Levels returns the number of radix levels a full walk traverses.
func (pt *PageTable) Levels() int { return pt.levels }

// Entries returns the number of mapped pages.
func (pt *PageTable) Entries() int { return pt.count }

// prefix returns the radix-node key after consuming l+1 of the walk's
// per-level indices, most significant first.
func (pt *PageTable) prefix(vpn VPN, l int) uint64 {
	return uint64(vpn) >> (radixBits * (pt.levels - 1 - l))
}

// Walk performs a full page-table walk and returns the PTE (nil if the page
// is unmapped) along with the number of node visits the walk required, which
// the timing model charges for. A hit always costs the full modeled depth;
// a miss stops at the first absent radix node.
func (pt *PageTable) Walk(vpn VPN) (*PTE, int) {
	if e := pt.entries.Peek(uint64(vpn)); e != nil && e.Valid {
		return e, pt.levels
	}
	for l := 0; l < pt.levels-1; l++ {
		if _, ok := pt.present[l][pt.prefix(vpn, l)]; !ok {
			return nil, l + 1
		}
	}
	return nil, pt.levels
}

// Lookup returns the PTE for vpn, or nil. This is the hot-path entry: it
// skips the visit accounting entirely.
func (pt *PageTable) Lookup(vpn VPN) *PTE {
	if e := pt.entries.Peek(uint64(vpn)); e != nil && e.Valid {
		return e
	}
	return nil
}

// Reserve pre-sizes the leaf storage for every page of [base, base+size),
// keeping later Map calls from growing slabs (and invalidating outstanding
// PTE pointers).
func (pt *PageTable) Reserve(base VAddr, size uint64) {
	if size == 0 {
		return
	}
	first := pt.geom.VPNOf(base)
	last := pt.geom.VPNOf(base + VAddr(size-1))
	pt.entries.Reserve(uint64(first), uint64(last-first)+1)
}

// Map installs or replaces the translation for vpn.
func (pt *PageTable) Map(vpn VPN, pte PTE) {
	if !pte.Valid {
		panic("memsys: mapping an invalid PTE; use Unmap")
	}
	for l := 0; l < pt.levels-1; l++ {
		pt.present[l][pt.prefix(vpn, l)] = struct{}{}
	}
	e := pt.entries.At(uint64(vpn))
	if !e.Valid {
		pt.count++
	}
	*e = pte
}

// Unmap removes the translation for vpn; it reports whether one existed.
func (pt *PageTable) Unmap(vpn VPN) bool {
	e := pt.entries.Peek(uint64(vpn))
	if e == nil || !e.Valid {
		return false
	}
	*e = PTE{}
	pt.count--
	return true
}

// SetGPSBit flips the GPS bit of an existing mapping.
func (pt *PageTable) SetGPSBit(vpn VPN, gps bool) error {
	pte := pt.Lookup(vpn)
	if pte == nil {
		return fmt.Errorf("memsys: SetGPSBit on unmapped VPN %#x", uint64(vpn))
	}
	pte.GPS = gps
	return nil
}
