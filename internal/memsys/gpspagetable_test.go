package memsys

import (
	"errors"
	"math/rand"
	"testing"
)

func newRand() *rand.Rand { return rand.New(rand.NewSource(21)) }

func TestGPSPageTableSubscribeUnsubscribe(t *testing.T) {
	pt := NewGPSPageTable(gv100Geom(), 4)
	pt.Subscribe(10, 0, 100)
	pt.Subscribe(10, 2, 200)
	e := pt.Lookup(10)
	if e == nil {
		t.Fatal("entry missing")
	}
	if e.Subscribers != SetOf(0, 2) {
		t.Fatalf("subscribers = %v", e.Subscribers)
	}
	if e.ReplicaOn(0) != 100 || e.ReplicaOn(2) != 200 {
		t.Fatal("replica frames wrong")
	}
	if e.ReplicaOn(1) != NoPPN || e.ReplicaOn(3) != NoPPN {
		t.Fatal("non-subscriber slots should be NoPPN")
	}

	ppn, err := pt.Unsubscribe(10, 0)
	if err != nil || ppn != 100 {
		t.Fatalf("Unsubscribe = (%d, %v)", ppn, err)
	}
	if e.Subscribers != SetOf(2) {
		t.Fatalf("after unsubscribe: %v", e.Subscribers)
	}
}

func TestGPSPageTableLastSubscriberProtected(t *testing.T) {
	// Paper Section 4: "GPS ensures that there is at least one subscriber to
	// a GPS region and will return an error on attempts to unsubscribe the
	// last subscriber."
	pt := NewGPSPageTable(gv100Geom(), 4)
	pt.Subscribe(1, 3, 55)
	if _, err := pt.Unsubscribe(1, 3); !errors.Is(err, ErrLastSubscriber) {
		t.Fatalf("expected ErrLastSubscriber, got %v", err)
	}
	if pt.Lookup(1).Subscribers != SetOf(3) {
		t.Fatal("failed unsubscribe should leave state intact")
	}
}

func TestGPSPageTableUnsubscribeNonMember(t *testing.T) {
	pt := NewGPSPageTable(gv100Geom(), 4)
	pt.Subscribe(1, 0, 5)
	if _, err := pt.Unsubscribe(1, 2); err == nil {
		t.Fatal("unsubscribing a non-member should error")
	}
	if _, err := pt.Unsubscribe(9, 0); err == nil {
		t.Fatal("unsubscribing an unknown page should error")
	}
}

func TestGPSPageTableDrop(t *testing.T) {
	pt := NewGPSPageTable(gv100Geom(), 4)
	pt.Subscribe(7, 0, 1)
	pt.Drop(7)
	if pt.Lookup(7) != nil || pt.Entries() != 0 {
		t.Fatal("Drop left residue")
	}
}

func TestGPSPageTableWalkCost(t *testing.T) {
	pt := NewGPSPageTable(gv100Geom(), 4)
	pt.Subscribe(3, 1, 9)
	e, visits := pt.Walk(3)
	if e == nil || visits != pt.Levels() {
		t.Fatalf("Walk = (%v, %d), want levels %d", e, visits, pt.Levels())
	}
	if pt.Levels() != 4 {
		t.Fatalf("levels = %d, want 4", pt.Levels())
	}
}

func TestGPSPageTableEntryBits(t *testing.T) {
	pt := NewGPSPageTable(gv100Geom(), 4)
	if pt.EntryBits() != 126 {
		t.Fatalf("EntryBits = %d, want 126 (Section 5.2)", pt.EntryBits())
	}
	pt16 := NewGPSPageTable(gv100Geom(), 16)
	if pt16.EntryBits() != 33+15*31 {
		t.Fatalf("16-GPU EntryBits = %d", pt16.EntryBits())
	}
}

func TestGPSPageTableForEach(t *testing.T) {
	pt := NewGPSPageTable(gv100Geom(), 2)
	pt.Subscribe(1, 0, 1)
	pt.Subscribe(2, 1, 2)
	seen := map[VPN]bool{}
	pt.ForEach(func(vpn VPN, e *GPSPTE) { seen[vpn] = true })
	if len(seen) != 2 || !seen[1] || !seen[2] {
		t.Fatalf("ForEach visited %v", seen)
	}
}

// Property: under random subscribe/unsubscribe sequences, the GPS page
// table agrees with a reference map model and frame bookkeeping never leaks.
func TestGPSPageTableMatchesModel(t *testing.T) {
	pt := NewGPSPageTable(gv100Geom(), 4)
	type key struct {
		vpn VPN
		gpu int
	}
	model := map[key]PPN{}
	rng := newRand()
	nextPPN := PPN(1)
	for step := 0; step < 5000; step++ {
		vpn := VPN(rng.Intn(32))
		gpu := rng.Intn(4)
		k := key{vpn, gpu}
		if rng.Intn(2) == 0 {
			ppn := nextPPN
			nextPPN++
			pt.Subscribe(vpn, gpu, ppn)
			model[k] = ppn
		} else {
			_, inModel := model[k]
			// Count current subscribers in the model.
			subs := 0
			for g := 0; g < 4; g++ {
				if _, ok := model[key{vpn, g}]; ok {
					subs++
				}
			}
			got, err := pt.Unsubscribe(vpn, gpu)
			switch {
			case !inModel:
				if err == nil {
					t.Fatalf("step %d: unsubscribe of non-member succeeded", step)
				}
			case subs == 1:
				if err == nil {
					t.Fatalf("step %d: last subscriber removed", step)
				}
			default:
				if err != nil {
					t.Fatalf("step %d: unsubscribe failed: %v", step, err)
				}
				if got != model[k] {
					t.Fatalf("step %d: freed frame %d, want %d", step, got, model[k])
				}
				delete(model, k)
			}
		}
		// Cross-check every entry against the model.
		for g := 0; g < 4; g++ {
			want, ok := model[key{vpn, g}]
			e := pt.Lookup(vpn)
			if !ok {
				if e != nil && e.Subscribers.Has(g) {
					t.Fatalf("step %d: phantom subscriber %d", step, g)
				}
				continue
			}
			if e == nil || e.ReplicaOn(g) != want {
				t.Fatalf("step %d: replica mismatch for GPU %d", step, g)
			}
		}
	}
}
