package memsys

import (
	"testing"
	"testing/quick"
)

func TestSubscriberSetBasics(t *testing.T) {
	s := SetOf(0, 2, 5)
	if s.Count() != 3 {
		t.Fatalf("Count = %d, want 3", s.Count())
	}
	if !s.Has(0) || !s.Has(2) || !s.Has(5) || s.Has(1) {
		t.Fatal("membership wrong")
	}
	s = s.Remove(2)
	if s.Has(2) || s.Count() != 2 {
		t.Fatal("Remove failed")
	}
	if s.First() != 0 {
		t.Fatalf("First = %d, want 0", s.First())
	}
	if SubscriberSet(0).First() != -1 {
		t.Fatal("empty First should be -1")
	}
	if s.String() != "{0,5}" {
		t.Fatalf("String = %q", s.String())
	}
	if SubscriberSet(0).String() != "{}" {
		t.Fatal("empty String wrong")
	}
}

func TestAllGPUs(t *testing.T) {
	for _, n := range []int{1, 4, 16, 63, 64} {
		s := AllGPUs(n)
		if s.Count() != n {
			t.Errorf("AllGPUs(%d).Count = %d", n, s.Count())
		}
		for g := 0; g < n; g++ {
			if !s.Has(g) {
				t.Errorf("AllGPUs(%d) missing %d", n, g)
			}
		}
	}
}

func TestSubscriberSetGPUsOrdered(t *testing.T) {
	got := SetOf(7, 1, 4).GPUs()
	want := []int{1, 4, 7}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("GPUs = %v, want %v", got, want)
		}
	}
}

func TestSubscriberSetOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for GPU 64")
		}
	}()
	SetOf(64)
}

// Property: Add then Remove restores the original set when the GPU was
// absent; Union/Intersect behave like set algebra on the bit level.
func TestSubscriberSetAlgebraProperty(t *testing.T) {
	f := func(a, b uint64, gpu uint8) bool {
		g := int(gpu % 64)
		sa, sb := SubscriberSet(a), SubscriberSet(b)
		if !sa.Has(g) && sa.Add(g).Remove(g) != sa {
			return false
		}
		if sa.Union(sb).Count() > sa.Count()+sb.Count() {
			return false
		}
		inter := sa.Intersect(sb)
		ok := true
		inter.ForEach(func(x int) {
			if !sa.Has(x) || !sb.Has(x) {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
