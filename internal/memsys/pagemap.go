package memsys

import (
	"fmt"
	"math/bits"
)

// RegionSlotShift is log2 of the 8 GB granularity the workload generators
// align every region to (each region starts at a distinct multiple of 8 GB
// and never spans an 8 GB boundary). The same invariant the engine's
// RegionTable exploits for O(1) address-to-region resolution makes dense
// per-page state cheap: a virtual page number splits into a small slot index
// and a bounded offset within the slot.
const RegionSlotShift = 33

// PageMap is dense per-page storage indexed by virtual page number: a slab
// of T per 8 GB region slot, allocated lazily and sized to the highest page
// actually touched (regions fill their slot from the base, so a slab never
// outgrows its region's page count). It replaces map[VPN]T on the
// simulator's per-access hot path with two array indexings.
//
// The zero value of T must mean "absent": ForEach visits every backed entry,
// including ones only ever read through At, and callers distinguish real
// entries by their own presence encoding (a Valid bit, a non-zero owner+1,
// a non-nil inner slice).
//
// Pointers returned by At and Peek stay valid until a later At touches a
// higher page of the same slot and grows the slab. Callers that cache
// entry pointers across accesses must either re-fetch when the page number
// changes (the caching pattern the paradigm models use) or Reserve the full
// range up front so slabs never grow.
type PageMap[T any] struct {
	slotShift uint   // log2 of pages per slot
	offMask   uint64 // pages per slot - 1
	slabs     [][]T
}

// NewPageMap builds an empty map for pages of pageBytes (a power of two no
// larger than the 8 GB slot granularity).
func NewPageMap[T any](pageBytes uint64) *PageMap[T] {
	if pageBytes == 0 || pageBytes&(pageBytes-1) != 0 {
		panic(fmt.Sprintf("memsys: page size %d is not a power of two", pageBytes))
	}
	pageShift := uint(bits.TrailingZeros64(pageBytes))
	if pageShift > RegionSlotShift {
		panic(fmt.Sprintf("memsys: page size %d exceeds the 8 GB region slot", pageBytes))
	}
	slotShift := RegionSlotShift - pageShift
	return &PageMap[T]{slotShift: slotShift, offMask: 1<<slotShift - 1}
}

// At returns the entry for vpn, allocating or growing the backing slab as
// needed. The pointer is writable and stays valid until the slab grows (see
// the type comment).
func (m *PageMap[T]) At(vpn uint64) *T {
	slot := vpn >> m.slotShift
	off := vpn & m.offMask
	if slot < uint64(len(m.slabs)) {
		if s := m.slabs[slot]; off < uint64(len(s)) {
			return &s[off]
		}
	}
	return &m.grow(slot, off)[off]
}

// Peek returns the entry for vpn if its slab already covers it, or nil. It
// never allocates.
func (m *PageMap[T]) Peek(vpn uint64) *T {
	slot := vpn >> m.slotShift
	if slot >= uint64(len(m.slabs)) {
		return nil
	}
	s := m.slabs[slot]
	off := vpn & m.offMask
	if off >= uint64(len(s)) {
		return nil
	}
	return &s[off]
}

// Reserve pre-sizes the backing slabs to cover every page of [first,
// first+count), so later At calls in that range never grow a slab (and
// entry pointers into it stay stable).
func (m *PageMap[T]) Reserve(first, count uint64) {
	if count == 0 {
		return
	}
	last := first + count - 1
	for slot := first >> m.slotShift; slot <= last>>m.slotShift; slot++ {
		hi := m.offMask
		if slot == last>>m.slotShift {
			hi = last & m.offMask
		}
		m.grow(slot, hi)
	}
}

// grow extends the slabs so that slabs[slot][off] exists and returns the
// slot's slab. Slab sizes double (from a small floor) up to the slot's page
// capacity, so repeated At calls over a region cost amortized O(1).
func (m *PageMap[T]) grow(slot, off uint64) []T {
	if slot >= uint64(len(m.slabs)) {
		slabs := make([][]T, slot+1)
		copy(slabs, m.slabs)
		m.slabs = slabs
	}
	old := m.slabs[slot]
	if off < uint64(len(old)) {
		return old
	}
	n := uint64(256)
	for n <= off {
		n *= 2
	}
	if max := m.offMask + 1; n > max {
		n = max
	}
	s := make([]T, n)
	copy(s, old)
	m.slabs[slot] = s
	return s
}

// ForEach visits every backed entry in ascending page order, including
// zero-valued ones; fn can mutate entries through the pointer. Callers
// filter absent entries via their own presence encoding.
func (m *PageMap[T]) ForEach(fn func(vpn uint64, v *T)) {
	for slot, s := range m.slabs {
		base := uint64(slot) << m.slotShift
		for off := range s {
			fn(base+uint64(off), &s[off])
		}
	}
}
