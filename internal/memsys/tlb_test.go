package memsys

import (
	"math/rand"
	"testing"
)

func TestTLBHitMiss(t *testing.T) {
	tlb := NewTLB[PTE](32, 8)
	if _, ok := tlb.Lookup(1); ok {
		t.Fatal("empty TLB hit")
	}
	tlb.Fill(1, PTE{Valid: true, PPN: 42})
	got, ok := tlb.Lookup(1)
	if !ok || got.PPN != 42 {
		t.Fatalf("Lookup = (%+v, %v)", got, ok)
	}
	if tlb.Hits() != 1 || tlb.Misses() != 1 {
		t.Fatalf("hits/misses = %d/%d, want 1/1", tlb.Hits(), tlb.Misses())
	}
	if tlb.HitRate() != 0.5 {
		t.Fatalf("HitRate = %v, want 0.5", tlb.HitRate())
	}
}

func TestTLBLRUWithinSet(t *testing.T) {
	// 4 entries, 4 ways: one set, pure LRU.
	tlb := NewTLB[int](4, 4)
	for v := VPN(0); v < 4; v++ {
		tlb.Fill(v, int(v))
	}
	tlb.Lookup(0) // refresh 0; LRU is now 1
	tlb.Fill(9, 9)
	if _, ok := tlb.Lookup(1); ok {
		t.Fatal("LRU entry 1 should have been evicted")
	}
	for _, v := range []VPN{0, 2, 3, 9} {
		if _, ok := tlb.Lookup(v); !ok {
			t.Fatalf("entry %d should survive", v)
		}
	}
}

func TestTLBSetIndexing(t *testing.T) {
	// 8 entries, 2 ways = 4 sets. VPNs 0,4,8 map to set 0.
	tlb := NewTLB[int](8, 2)
	tlb.Fill(0, 0)
	tlb.Fill(4, 4)
	tlb.Fill(8, 8) // evicts LRU of set 0 = vpn 0
	if _, ok := tlb.Lookup(0); ok {
		t.Fatal("set-conflict victim should be evicted")
	}
	// Other sets are unaffected.
	tlb.Fill(1, 1)
	if _, ok := tlb.Lookup(1); !ok {
		t.Fatal("set 1 entry missing")
	}
}

func TestTLBFillExistingUpdates(t *testing.T) {
	tlb := NewTLB[int](4, 4)
	tlb.Fill(3, 30)
	tlb.Fill(3, 31)
	got, ok := tlb.Lookup(3)
	if !ok || got != 31 {
		t.Fatalf("Lookup = (%d, %v), want 31", got, ok)
	}
}

func TestTLBInvalidateAndFlush(t *testing.T) {
	tlb := NewTLB[int](8, 2)
	tlb.Fill(1, 1)
	tlb.Fill(2, 2)
	if !tlb.Invalidate(1) {
		t.Fatal("Invalidate present entry returned false")
	}
	if tlb.Invalidate(1) {
		t.Fatal("Invalidate absent entry returned true")
	}
	tlb.Flush()
	if _, ok := tlb.Lookup(2); ok {
		t.Fatal("Flush left an entry")
	}
}

func TestTLBResetStats(t *testing.T) {
	tlb := NewTLB[int](4, 2)
	tlb.Fill(0, 0)
	tlb.Lookup(0)
	tlb.Lookup(5)
	tlb.ResetStats()
	if tlb.Hits() != 0 || tlb.Misses() != 0 {
		t.Fatal("ResetStats did not clear counters")
	}
	if _, ok := tlb.Lookup(0); !ok {
		t.Fatal("ResetStats should not drop contents")
	}
}

func TestTLBBadGeometryPanics(t *testing.T) {
	for _, geom := range [][2]int{{0, 1}, {8, 0}, {10, 4}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("geometry %v should panic", geom)
				}
			}()
			NewTLB[int](geom[0], geom[1])
		}()
	}
}

// Property: a fully-associative TLB of size n under any access sequence has
// the same hit/miss behavior as a reference LRU model.
func TestTLBMatchesLRUModel(t *testing.T) {
	const n = 8
	tlb := NewTLB[int](n, n)
	var model []VPN // front = MRU
	refLookup := func(v VPN) bool {
		for i, x := range model {
			if x == v {
				model = append(model[:i], model[i+1:]...)
				model = append([]VPN{v}, model...)
				return true
			}
		}
		return false
	}
	refFill := func(v VPN) {
		if refLookup(v) {
			return
		}
		if len(model) == n {
			model = model[:n-1]
		}
		model = append([]VPN{v}, model...)
	}
	rng := rand.New(rand.NewSource(3))
	for step := 0; step < 20000; step++ {
		v := VPN(rng.Intn(24))
		_, hit := tlb.Lookup(v)
		refHit := refLookup(v)
		if hit != refHit {
			t.Fatalf("step %d: vpn %d hit=%v model=%v", step, v, hit, refHit)
		}
		if !hit {
			tlb.Fill(v, int(v))
			refFill(v)
		}
	}
}

func BenchmarkTLBLookup(b *testing.B) {
	tlb := NewTLB[PTE](4096, 16)
	for v := VPN(0); v < 4096; v++ {
		tlb.Fill(v, PTE{Valid: true, PPN: PPN(v)})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tlb.Lookup(VPN(i & 8191))
	}
}
