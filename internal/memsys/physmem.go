package memsys

import (
	"errors"
	"fmt"
)

// ErrOutOfMemory is returned when a GPU's physical memory is exhausted.
var ErrOutOfMemory = errors.New("memsys: out of physical memory")

// PhysMem is one GPU's physical page frame allocator. It hands out page
// frames in deterministic order and recycles freed frames LIFO.
type PhysMem struct {
	gpu       int
	pageBytes uint64
	frames    uint64 // total frames
	next      PPN    // next never-allocated frame
	free      []PPN  // freed frames available for reuse
	used      uint64 // currently allocated frames
}

// NewPhysMem builds an allocator for a GPU with the given capacity.
func NewPhysMem(gpu int, capacityBytes, pageBytes uint64) (*PhysMem, error) {
	if pageBytes == 0 || pageBytes&(pageBytes-1) != 0 {
		return nil, fmt.Errorf("memsys: page size %d is not a power of two", pageBytes)
	}
	if capacityBytes < pageBytes {
		return nil, fmt.Errorf("memsys: capacity %d below one page", capacityBytes)
	}
	return &PhysMem{gpu: gpu, pageBytes: pageBytes, frames: capacityBytes / pageBytes}, nil
}

// GPU returns the owning GPU's ID.
func (m *PhysMem) GPU() int { return m.gpu }

// Alloc reserves one page frame.
func (m *PhysMem) Alloc() (PPN, error) {
	if n := len(m.free); n > 0 {
		ppn := m.free[n-1]
		m.free = m.free[:n-1]
		m.used++
		return ppn, nil
	}
	if uint64(m.next) >= m.frames {
		return NoPPN, fmt.Errorf("%w: GPU %d (%d frames)", ErrOutOfMemory, m.gpu, m.frames)
	}
	ppn := m.next
	m.next++
	m.used++
	return ppn, nil
}

// Free returns a frame to the allocator. Freeing an unallocated or
// out-of-range frame panics: it indicates a simulator bug, not a runtime
// condition.
func (m *PhysMem) Free(ppn PPN) {
	if uint64(ppn) >= uint64(m.next) || ppn == NoPPN {
		panic(fmt.Sprintf("memsys: GPU %d freeing invalid frame %d", m.gpu, ppn))
	}
	if m.used == 0 {
		panic(fmt.Sprintf("memsys: GPU %d double free of frame %d", m.gpu, ppn))
	}
	m.used--
	m.free = append(m.free, ppn)
}

// UsedBytes returns the bytes currently allocated.
func (m *PhysMem) UsedBytes() uint64 { return m.used * m.pageBytes }

// CapacityBytes returns the total capacity.
func (m *PhysMem) CapacityBytes() uint64 { return m.frames * m.pageBytes }

// FreeFrames returns the number of allocatable frames remaining.
func (m *PhysMem) FreeFrames() uint64 {
	return m.frames - uint64(m.next) + uint64(len(m.free))
}
