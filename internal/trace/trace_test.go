package trace

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func sampleProgram() *Recorded {
	return &Recorded{
		M: Meta{
			Name:    "sample",
			NumGPUs: 2,
			Regions: []Region{
				{Name: "a", Kind: RegionShared, Base: 0, Size: 1 << 20, Writers: []int{0}, Readers: []int{0, 1}},
				{Name: "b", Kind: RegionPrivate, Base: 1 << 20, Size: 1 << 16},
			},
			ProfilePhases:    1,
			WorkingSetPerGPU: 1 << 20,
		},
		Ph: []Phase{
			{
				Index: 0,
				Label: "iter0",
				Kernels: []Kernel{
					{
						GPU: 0, Name: "k0", ComputeOps: 1000,
						Accesses: []Access{
							{Op: OpLoad, Scope: ScopeWeak, Pattern: PatContiguous, Threads: 32, ElemBytes: 4, Addr: 0},
							{Op: OpStore, Scope: ScopeWeak, Pattern: PatContiguous, Threads: 32, ElemBytes: 4, Addr: 128},
							{Op: OpAtomic, Scope: ScopeGPU, Pattern: PatScattered, Threads: 16, ElemBytes: 4, Stride: 64, Seed: 7, Addr: 4096},
							{Op: OpFence, Scope: ScopeSys},
						},
					},
					{GPU: 1, Name: "k1", ComputeOps: 500, Accesses: []Access{
						{Op: OpLoad, Scope: ScopeWeak, Pattern: PatStrided, Threads: 8, ElemBytes: 8, Stride: 256, Addr: 1 << 20},
					}},
				},
			},
			{Index: 1, Label: "iter1", Kernels: []Kernel{
				{GPU: 0, Name: "k0", ComputeOps: 1000, Accesses: []Access{
					{Op: OpStore, Scope: ScopeWeak, Pattern: PatContiguous, Threads: 32, ElemBytes: 4, Addr: 256},
				}},
			}},
		},
	}
}

func TestAccessBytes(t *testing.T) {
	a := Access{Op: OpLoad, Threads: 32, ElemBytes: 4}
	if a.Bytes() != 128 {
		t.Fatalf("Bytes = %d, want 128", a.Bytes())
	}
	f := Access{Op: OpFence}
	if f.Bytes() != 0 {
		t.Fatal("fence should move no bytes")
	}
}

func TestAccessValidate(t *testing.T) {
	good := Access{Op: OpLoad, Threads: 32, ElemBytes: 4}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Access{
		{Op: OpLoad, Threads: 0, ElemBytes: 4},
		{Op: OpLoad, Threads: 33, ElemBytes: 4},
		{Op: OpLoad, Threads: 1, ElemBytes: 3},
		{Op: OpLoad, Threads: 1, ElemBytes: 4, Pattern: PatScattered, Stride: 0},
		{Op: Op(9), Threads: 1, ElemBytes: 4},
		{Op: OpLoad, Scope: Scope(9), Threads: 1, ElemBytes: 4},
		{Op: OpLoad, Threads: 1, ElemBytes: 4, Pattern: Pattern(9)},
	}
	for i, a := range bad {
		if err := a.Validate(); err == nil {
			t.Errorf("case %d: invalid access %+v accepted", i, a)
		}
	}
	// Fences are exempt from lane checks.
	if err := (Access{Op: OpFence, Scope: ScopeSys}).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRegionContains(t *testing.T) {
	r := Region{Base: 100, Size: 50}
	for _, tc := range []struct {
		va   uint64
		want bool
	}{{99, false}, {100, true}, {149, true}, {150, false}} {
		if got := r.Contains(tc.va); got != tc.want {
			t.Errorf("Contains(%d) = %v, want %v", tc.va, got, tc.want)
		}
	}
}

func TestMetaRegionOf(t *testing.T) {
	m := sampleProgram().M
	if r := m.RegionOf(0); r == nil || r.Name != "a" {
		t.Fatalf("RegionOf(0) = %v", r)
	}
	if r := m.RegionOf(1 << 20); r == nil || r.Name != "b" {
		t.Fatalf("RegionOf(1MB) = %v", r)
	}
	if r := m.RegionOf(1<<20 + 1<<16); r != nil {
		t.Fatalf("RegionOf(gap) = %v, want nil", r)
	}
}

func TestMetaValidate(t *testing.T) {
	m := sampleProgram().M
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	overlap := Meta{NumGPUs: 1, Regions: []Region{
		{Name: "x", Base: 0, Size: 100},
		{Name: "y", Base: 50, Size: 100},
	}}
	if err := overlap.Validate(); err == nil {
		t.Fatal("overlapping regions accepted")
	}
	empty := Meta{NumGPUs: 1, Regions: []Region{{Name: "x", Base: 0, Size: 0}}}
	if err := empty.Validate(); err == nil {
		t.Fatal("empty region accepted")
	}
	zero := Meta{NumGPUs: 0}
	if err := zero.Validate(); err == nil {
		t.Fatal("zero GPUs accepted")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize(sampleProgram())
	if s.Phases != 2 || s.Kernels != 3 {
		t.Fatalf("phases/kernels = %d/%d", s.Phases, s.Kernels)
	}
	if s.Loads != 2 || s.Stores != 2 || s.Atomics != 1 || s.Fences != 1 {
		t.Fatalf("op counts = %+v", s)
	}
	if s.SysScoped != 1 {
		t.Fatalf("sys scoped = %d, want 1", s.SysScoped)
	}
	wantBytes := uint64(32*4 + 32*4 + 16*4 + 8*8 + 32*4)
	if s.Bytes != wantBytes {
		t.Fatalf("bytes = %d, want %d", s.Bytes, wantBytes)
	}
}

func TestCollectDeepCopies(t *testing.T) {
	orig := sampleProgram()
	cp := Collect(orig)
	cp.Ph[0].Kernels[0].Accesses[0].Addr = 0xdead
	if orig.Ph[0].Kernels[0].Accesses[0].Addr == 0xdead {
		t.Fatal("Collect aliased the access slice")
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	orig := sampleProgram()
	var buf bytes.Buffer
	if err := Encode(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(orig, got) {
		t.Fatalf("round trip mismatch:\norig %+v\ngot  %+v", orig, got)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	orig := sampleProgram()
	var buf bytes.Buffer
	if err := EncodeJSON(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(orig, got) {
		t.Fatal("JSON round trip mismatch")
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode(bytes.NewReader([]byte("NOTATRACE..."))); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := Decode(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input accepted")
	}
	// Truncated valid prefix.
	var buf bytes.Buffer
	if err := Encode(&buf, sampleProgram()); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()/2]
	if _, err := Decode(bytes.NewReader(trunc)); err == nil {
		t.Fatal("truncated trace accepted")
	}
}

// Property: any structurally valid random trace round-trips bit-exactly
// through the binary codec.
func TestBinaryRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	randomAccess := func() Access {
		a := Access{
			Op:        Op(rng.Intn(4)),
			Scope:     Scope(rng.Intn(4)),
			Pattern:   Pattern(rng.Intn(3)),
			Threads:   uint8(1 + rng.Intn(32)),
			ElemBytes: []uint8{4, 8}[rng.Intn(2)],
			Stride:    uint32(1 + rng.Intn(1024)),
			Seed:      rng.Uint32(),
			Addr:      rng.Uint64() % (1 << 48),
		}
		return a
	}
	f := func(nPhases, nKernels, nAcc uint8) bool {
		p := &Recorded{M: Meta{Name: "prop", NumGPUs: 4}}
		for i := 0; i < int(nPhases%4)+1; i++ {
			ph := Phase{Index: i}
			for k := 0; k < int(nKernels%3)+1; k++ {
				kn := Kernel{GPU: k % 4, Name: "k", ComputeOps: rng.Uint64() % 1e9}
				for a := 0; a < int(nAcc%50); a++ {
					kn.Accesses = append(kn.Accesses, randomAccess())
				}
				ph.Kernels = append(ph.Kernels, kn)
			}
			p.Ph = append(p.Ph, ph)
		}
		var buf bytes.Buffer
		if err := Encode(&buf, p); err != nil {
			return false
		}
		got, err := Decode(&buf)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(p, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestBinarySmallerThanJSON(t *testing.T) {
	p := sampleProgram()
	var bin, js bytes.Buffer
	if err := Encode(&bin, p); err != nil {
		t.Fatal(err)
	}
	if err := EncodeJSON(&js, p); err != nil {
		t.Fatal(err)
	}
	if bin.Len() >= js.Len() {
		t.Fatalf("binary (%d B) not smaller than JSON (%d B)", bin.Len(), js.Len())
	}
}
