package trace

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
)

// Streaming trace format: the batch format of codec.go writes the phase
// count up front, which requires the whole trace in memory. The streaming
// variant writes phases as they are produced and terminates with a
// sentinel, so multi-gigabyte traces can be captured and replayed with
// constant memory — the property real binary-instrumentation tracers need.
//
//	magic "GPSTRST" 'M' (8 bytes), version uvarint,
//	meta length uvarint + JSON,
//	repeated: marker byte 'P' + phase (format of codec.go),
//	terminator byte 'E'.

const streamMagic = "GPSTRSTM"

// StreamEncoder writes a trace phase by phase.
type StreamEncoder struct {
	w      *bufio.Writer
	closed bool
	err    error
}

// NewStreamEncoder writes the stream header and returns an encoder.
func NewStreamEncoder(w io.Writer, meta Meta) (*StreamEncoder, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(streamMagic); err != nil {
		return nil, err
	}
	putUvarint(bw, version)
	metaJSON, err := json.Marshal(meta)
	if err != nil {
		return nil, fmt.Errorf("trace: encoding meta: %w", err)
	}
	putUvarint(bw, uint64(len(metaJSON)))
	if _, err := bw.Write(metaJSON); err != nil {
		return nil, err
	}
	return &StreamEncoder{w: bw}, nil
}

// WritePhase appends one phase to the stream.
func (e *StreamEncoder) WritePhase(ph *Phase) error {
	if e.closed {
		return fmt.Errorf("trace: stream encoder already closed")
	}
	if e.err != nil {
		return e.err
	}
	e.w.WriteByte('P')
	if err := encodePhase(e.w, ph); err != nil {
		e.err = err
		return err
	}
	e.err = e.w.Flush()
	return e.err
}

// Close writes the terminator and flushes.
func (e *StreamEncoder) Close() error {
	if e.closed {
		return nil
	}
	e.closed = true
	e.w.WriteByte('E')
	return e.w.Flush()
}

// encodePhase writes one phase in the batch format's phase layout. The wire
// format is storage-agnostic: columnar kernels are decoded block by block
// and written as the same flat record stream, so both kernel forms produce
// identical bytes.
func encodePhase(bw *bufio.Writer, ph *Phase) error {
	putUvarint(bw, uint64(ph.Index))
	putString(bw, ph.Label)
	putUvarint(bw, uint64(len(ph.Kernels)))
	var dec BlockDecoder
	for i := range ph.Kernels {
		k := &ph.Kernels[i]
		putUvarint(bw, uint64(k.GPU))
		putString(bw, k.Name)
		putUvarint(bw, k.ComputeOps)
		putUvarint(bw, k.LocalStreamBytes)
		putUvarint(bw, uint64(k.NumAccesses()))
		prevAddr := uint64(0)
		err := k.EachBlock(&dec, func(accs []Access) bool {
			for _, a := range accs {
				bw.WriteByte(byte(a.Op))
				bw.WriteByte(byte(a.Scope))
				bw.WriteByte(byte(a.Pattern))
				bw.WriteByte(a.Threads)
				bw.WriteByte(a.ElemBytes)
				putUvarint(bw, uint64(a.Stride))
				putUvarint(bw, uint64(a.Seed))
				putVarint(bw, int64(a.Addr)-int64(prevAddr))
				prevAddr = a.Addr
			}
			return true
		})
		if err != nil {
			return fmt.Errorf("trace: encoding kernel %q: %w", k.Name, err)
		}
	}
	return nil
}

// StreamDecoder reads a streamed trace phase by phase. It implements
// Program, so a stream can feed the engine directly — but as a one-shot
// source: Phases may be iterated only once.
type StreamDecoder struct {
	r        *bufio.Reader
	meta     Meta
	consumed bool
	err      error
}

// NewStreamDecoder reads and validates the stream header.
func NewStreamDecoder(r io.Reader) (*StreamDecoder, error) {
	br := bufio.NewReader(r)
	head := make([]byte, len(streamMagic))
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("trace: reading stream magic: %w", err)
	}
	if string(head) != streamMagic {
		return nil, fmt.Errorf("trace: bad stream magic %q", head)
	}
	v, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if v != version {
		return nil, fmt.Errorf("trace: unsupported stream version %d", v)
	}
	metaLen, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	metaJSON := make([]byte, metaLen)
	if _, err := io.ReadFull(br, metaJSON); err != nil {
		return nil, err
	}
	d := &StreamDecoder{r: br}
	if err := json.Unmarshal(metaJSON, &d.meta); err != nil {
		return nil, fmt.Errorf("trace: decoding stream meta: %w", err)
	}
	return d, nil
}

// Meta implements Program.
func (d *StreamDecoder) Meta() Meta { return d.meta }

// Err returns the first decoding error encountered during iteration.
func (d *StreamDecoder) Err() error { return d.err }

// Phases implements Program, decoding each phase on demand. The stream can
// be consumed only once; a second call reports an error via Err.
func (d *StreamDecoder) Phases(yield func(*Phase) bool) {
	if d.consumed {
		d.err = fmt.Errorf("trace: stream already consumed")
		return
	}
	d.consumed = true
	for {
		marker, err := d.r.ReadByte()
		if err != nil {
			d.err = fmt.Errorf("trace: reading phase marker: %w", err)
			return
		}
		switch marker {
		case 'E':
			return
		case 'P':
			ph, err := decodePhase(d.r)
			if err != nil {
				d.err = err
				return
			}
			if !yield(ph) {
				return
			}
		default:
			d.err = fmt.Errorf("trace: bad phase marker %#x", marker)
			return
		}
	}
}

// decodePhase reads one phase in the batch format's phase layout.
func decodePhase(br *bufio.Reader) (*Phase, error) {
	var ph Phase
	idx, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	ph.Index = int(idx)
	if ph.Label, err = getString(br); err != nil {
		return nil, err
	}
	numKernels, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if numKernels > 1<<20 {
		return nil, fmt.Errorf("trace: implausible kernel count %d", numKernels)
	}
	for ki := uint64(0); ki < numKernels; ki++ {
		var k Kernel
		gpu, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		k.GPU = int(gpu)
		if k.Name, err = getString(br); err != nil {
			return nil, err
		}
		if k.ComputeOps, err = binary.ReadUvarint(br); err != nil {
			return nil, err
		}
		if k.LocalStreamBytes, err = binary.ReadUvarint(br); err != nil {
			return nil, err
		}
		numAcc, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		if numAcc > 1<<28 {
			return nil, fmt.Errorf("trace: implausible access count %d", numAcc)
		}
		if numAcc > 0 {
			k.Accesses = make([]Access, 0, numAcc)
		}
		prevAddr := uint64(0)
		for ai := uint64(0); ai < numAcc; ai++ {
			var a Access
			hdr := make([]byte, 5)
			if _, err := io.ReadFull(br, hdr); err != nil {
				return nil, err
			}
			a.Op, a.Scope, a.Pattern = Op(hdr[0]), Scope(hdr[1]), Pattern(hdr[2])
			a.Threads, a.ElemBytes = hdr[3], hdr[4]
			stride, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, err
			}
			a.Stride = uint32(stride)
			seed, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, err
			}
			a.Seed = uint32(seed)
			delta, err := binary.ReadVarint(br)
			if err != nil {
				return nil, err
			}
			a.Addr = uint64(int64(prevAddr) + delta)
			prevAddr = a.Addr
			if err := a.Validate(); err != nil {
				return nil, fmt.Errorf("trace: stream kernel %d access %d: %w", ki, ai, err)
			}
			k.Accesses = append(k.Accesses, a)
		}
		ph.Kernels = append(ph.Kernels, k)
	}
	return &ph, nil
}

// EncodeStream writes an entire Program in the streaming format.
func EncodeStream(w io.Writer, p Program) error {
	enc, err := NewStreamEncoder(w, p.Meta())
	if err != nil {
		return err
	}
	var werr error
	p.Phases(func(ph *Phase) bool {
		werr = enc.WritePhase(ph)
		return werr == nil
	})
	if werr != nil {
		return werr
	}
	return enc.Close()
}
