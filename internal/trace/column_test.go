package trace

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"reflect"
	"testing"
)

// randomAccesses builds a valid but structurally noisy stream: every field
// varies, so every column exercises its multi-run path.
func randomAccesses(n int, seed int64) []Access {
	rng := rand.New(rand.NewSource(seed))
	elems := []uint8{1, 2, 4, 8, 16}
	out := make([]Access, 0, n)
	for i := 0; i < n; i++ {
		if rng.Intn(16) == 0 {
			out = append(out, Access{Op: OpFence, Scope: ScopeSys})
			continue
		}
		a := Access{
			Op:        Op(rng.Intn(3)),
			Scope:     Scope(rng.Intn(4)),
			Pattern:   Pattern(rng.Intn(3)),
			Threads:   uint8(1 + rng.Intn(32)),
			ElemBytes: elems[rng.Intn(len(elems))],
			Stride:    uint32(rng.Intn(1 << 20)),
			Seed:      rng.Uint32(),
			Addr:      rng.Uint64() >> 15,
		}
		if a.Pattern == PatScattered && a.Stride == 0 {
			a.Stride = 1
		}
		out = append(out, a)
	}
	return out
}

// stencilAccesses is the workload-shaped common case: constant fields,
// unit-stride addresses.
func stencilAccesses(n int) []Access {
	out := make([]Access, n)
	for i := range out {
		out[i] = Access{
			Op: OpLoad, Scope: ScopeWeak, Pattern: PatContiguous,
			Threads: 32, ElemBytes: 4, Addr: uint64(i) * 128,
		}
	}
	return out
}

func decodeAll(t *testing.T, c *ColumnAccesses) []Access {
	t.Helper()
	var dec BlockDecoder
	var out []Access
	for i := 0; i < c.NumBlocks(); i++ {
		accs, err := dec.Decode(c, i)
		if err != nil {
			t.Fatalf("block %d: %v", i, err)
		}
		out = append(out, accs...)
	}
	return out
}

func TestColumnRoundTrip(t *testing.T) {
	for _, n := range []int{1, 63, BlockAccesses - 1, BlockAccesses, BlockAccesses + 1, 3*BlockAccesses + 17} {
		for _, mk := range []func() []Access{
			func() []Access { return randomAccesses(n, int64(n)) },
			func() []Access { return stencilAccesses(n) },
		} {
			orig := mk()
			c := EncodeColumns(orig)
			if c.Len() != n {
				t.Fatalf("n=%d: Len = %d", n, c.Len())
			}
			if got := decodeAll(t, c); !reflect.DeepEqual(got, orig) {
				t.Fatalf("n=%d: round trip diverged", n)
			}
		}
	}
	if EncodeColumns(nil) != nil {
		t.Fatal("empty stream should encode to nil")
	}
}

func TestColumnCompression(t *testing.T) {
	// The workload-shaped streams must compress far beyond the 4x the
	// acceptance bar asks for; random streams must still round-trip, however
	// badly they compress.
	n := 200_000
	c := EncodeColumns(stencilAccesses(n))
	logical := uint64(n) * 24
	if ratio := float64(logical) / float64(c.CompressedBytes()); ratio < 100 {
		t.Fatalf("stencil stream compressed only %.1fx (logical %d, compressed %d)",
			ratio, logical, c.CompressedBytes())
	}
	if c.ResidentBytes() < c.CompressedBytes() {
		t.Fatal("resident bytes below compressed bytes")
	}
}

func TestColumnSpillRoundTrip(t *testing.T) {
	orig := randomAccesses(2*BlockAccesses+100, 42)
	c := EncodeColumns(orig)
	before := c.ResidentBytes()

	sf, err := NewSpillFile(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	freed, err := c.SpillTo(sf)
	if err != nil {
		t.Fatal(err)
	}
	if freed == 0 {
		t.Fatal("spill freed nothing")
	}
	if !c.Spilled() {
		t.Fatal("not marked spilled")
	}
	if after := c.ResidentBytes(); after >= before {
		t.Fatalf("resident bytes %d not reduced from %d", after, before)
	}
	if uint64(sf.Size()) != c.CompressedBytes() {
		t.Fatalf("spill file holds %d bytes, compressed is %d", sf.Size(), c.CompressedBytes())
	}
	// Re-spilling is a no-op.
	if f2, err := c.SpillTo(sf); err != nil || f2 != 0 {
		t.Fatalf("second spill: freed %d, err %v", f2, err)
	}
	if got := decodeAll(t, c); !reflect.DeepEqual(got, orig) {
		t.Fatal("spilled round trip diverged")
	}
	if sf.Reads() == 0 || sf.ReadBytes() == 0 {
		t.Fatal("spill reads not counted")
	}
}

func TestColumnSpillConcurrentReaders(t *testing.T) {
	orig := stencilAccesses(4 * BlockAccesses)
	c := EncodeColumns(orig)
	sf, err := NewSpillFile(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 8)
	for g := 0; g < 4; g++ {
		go func() {
			var dec BlockDecoder
			for r := 0; r < 20; r++ {
				for i := 0; i < c.NumBlocks(); i++ {
					if _, err := dec.Decode(c, i); err != nil {
						done <- err
						return
					}
				}
			}
			done <- nil
		}()
	}
	// Flip to spilled mid-read: readers must stay correct either way.
	if _, err := c.SpillTo(sf); err != nil {
		t.Fatal(err)
	}
	for g := 0; g < 4; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if got := decodeAll(t, c); !reflect.DeepEqual(got, orig) {
		t.Fatal("post-spill decode diverged")
	}
}

func TestColumnJSONRoundTrip(t *testing.T) {
	orig := randomAccesses(BlockAccesses+5, 7)
	c := EncodeColumns(orig)
	data, err := json.Marshal(c)
	if err != nil {
		t.Fatal(err)
	}
	var back ColumnAccesses
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if got := decodeAll(t, &back); !reflect.DeepEqual(got, orig) {
		t.Fatal("JSON round trip diverged")
	}
	// Spilled stores marshal identically (blocks read back from the file).
	sf, err := NewSpillFile(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.SpillTo(sf); err != nil {
		t.Fatal(err)
	}
	data2, err := json.Marshal(c)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, data2) {
		t.Fatal("spilled JSON differs from resident JSON")
	}
}

func TestDecodeBlockRejectsCorrupt(t *testing.T) {
	blk := appendBlock(nil, randomAccesses(500, 3))
	buf := make([]Access, BlockAccesses)
	if _, err := decodeBlock(blk, buf); err != nil {
		t.Fatalf("valid block rejected: %v", err)
	}
	// Truncations at every length and single-byte flips at every position
	// must error or decode to something re-encodable — never panic.
	for cut := 0; cut < len(blk); cut++ {
		if _, err := decodeBlock(blk[:cut], buf); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	for i := 0; i < len(blk); i++ {
		c := append([]byte{}, blk...)
		c[i] ^= 0xff
		out, err := decodeBlock(c, buf)
		if err != nil {
			continue
		}
		re := appendBlock(nil, out)
		if _, err := decodeBlock(re, buf); err != nil {
			t.Fatalf("flip at %d: accepted block does not re-encode: %v", i, err)
		}
	}
	// Structural hazards.
	for name, data := range map[string][]byte{
		"empty":       {},
		"zero count":  {0},
		"huge count":  {0xff, 0xff, 0x7f},
		"no columns":  {5},
		"overrun run": {2, 0, 200},
	} {
		if _, err := decodeBlock(data, buf); err == nil {
			t.Fatalf("%s accepted", name)
		}
	}
}

func TestKernelEachBlockBothForms(t *testing.T) {
	accs := randomAccesses(2*BlockAccesses+9, 11)
	flat := Kernel{GPU: 0, Name: "k", Accesses: accs}
	col := Kernel{GPU: 0, Name: "k", Col: EncodeColumns(accs)}
	if flat.NumAccesses() != col.NumAccesses() {
		t.Fatal("NumAccesses disagrees")
	}
	var dec BlockDecoder
	var got []Access
	if err := col.EachBlock(&dec, func(a []Access) bool {
		got = append(got, a...)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, accs) {
		t.Fatal("EachBlock diverged from flat stream")
	}
	if !reflect.DeepEqual(col.FlatAccesses(), accs) {
		t.Fatal("FlatAccesses diverged")
	}
	// Early stop.
	calls := 0
	if err := col.EachBlock(&dec, func([]Access) bool { calls++; return false }); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("early stop made %d calls", calls)
	}
}

func TestColumnizeFlattenInverse(t *testing.T) {
	orig := sampleProgram()
	col := Columnize(orig)
	for pi := range col.Ph {
		for ki := range col.Ph[pi].Kernels {
			k := &col.Ph[pi].Kernels[ki]
			if k.Col == nil || k.Accesses != nil {
				t.Fatalf("kernel %s not columnized", k.Name)
			}
		}
	}
	if !reflect.DeepEqual(Flatten(col), orig) {
		t.Fatal("Flatten(Columnize(p)) != p")
	}
	if !reflect.DeepEqual(Summarize(col), Summarize(orig)) {
		t.Fatal("Summarize disagrees between forms")
	}
}

func TestBinaryCodecAgnosticToStorage(t *testing.T) {
	// The wire format must not depend on the in-memory storage form.
	var flat, col bytes.Buffer
	if err := Encode(&flat, sampleProgram()); err != nil {
		t.Fatal(err)
	}
	if err := Encode(&col, Columnize(sampleProgram())); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(flat.Bytes(), col.Bytes()) {
		t.Fatal("binary encoding differs between flat and columnar kernels")
	}
	var s1, s2 bytes.Buffer
	if err := EncodeStream(&s1, sampleProgram()); err != nil {
		t.Fatal(err)
	}
	if err := EncodeStream(&s2, Columnize(sampleProgram())); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(s1.Bytes(), s2.Bytes()) {
		t.Fatal("stream encoding differs between flat and columnar kernels")
	}
}

func TestRecordedSpill(t *testing.T) {
	rec := Columnize(sampleProgram())
	sf, err := NewSpillFile(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	freed, err := rec.Spill(sf)
	if err != nil {
		t.Fatal(err)
	}
	if freed == 0 {
		t.Fatal("nothing freed")
	}
	if !reflect.DeepEqual(Flatten(rec), sampleProgram()) {
		t.Fatal("spilled trace no longer replays identically")
	}
	// Spilling a flat trace is a no-op.
	if f2, err := sampleProgram().Spill(sf); err != nil || f2 != 0 {
		t.Fatalf("flat spill: freed %d, err %v", f2, err)
	}
}
