package trace

import (
	"bytes"
	"reflect"
	"testing"
)

func TestStreamRoundTrip(t *testing.T) {
	orig := sampleProgram()
	var buf bytes.Buffer
	if err := EncodeStream(&buf, orig); err != nil {
		t.Fatal(err)
	}
	dec, err := NewStreamDecoder(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dec.Meta(), orig.M) {
		t.Fatal("meta mismatch")
	}
	got := Collect(dec)
	if dec.Err() != nil {
		t.Fatal(dec.Err())
	}
	if !reflect.DeepEqual(orig.Ph, got.Ph) {
		t.Fatalf("phases mismatch:\norig %+v\ngot  %+v", orig.Ph, got.Ph)
	}
}

func TestStreamIncrementalWrite(t *testing.T) {
	orig := sampleProgram()
	var buf bytes.Buffer
	enc, err := NewStreamEncoder(&buf, orig.M)
	if err != nil {
		t.Fatal(err)
	}
	for i := range orig.Ph {
		if err := enc.WritePhase(&orig.Ph[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := enc.Close(); err != nil {
		t.Fatal(err)
	}
	if err := enc.Close(); err != nil {
		t.Fatal("double close should be a no-op")
	}
	if err := enc.WritePhase(&orig.Ph[0]); err == nil {
		t.Fatal("write after close accepted")
	}

	dec, err := NewStreamDecoder(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	dec.Phases(func(ph *Phase) bool {
		count++
		return true
	})
	if dec.Err() != nil {
		t.Fatal(dec.Err())
	}
	if count != len(orig.Ph) {
		t.Fatalf("decoded %d phases, want %d", count, len(orig.Ph))
	}
}

func TestStreamEarlyStop(t *testing.T) {
	orig := sampleProgram()
	var buf bytes.Buffer
	if err := EncodeStream(&buf, orig); err != nil {
		t.Fatal(err)
	}
	dec, _ := NewStreamDecoder(&buf)
	seen := 0
	dec.Phases(func(*Phase) bool {
		seen++
		return false // stop after the first phase
	})
	if seen != 1 {
		t.Fatalf("yield should stop iteration, saw %d", seen)
	}
	if dec.Err() != nil {
		t.Fatal(dec.Err())
	}
}

func TestStreamSingleUse(t *testing.T) {
	var buf bytes.Buffer
	if err := EncodeStream(&buf, sampleProgram()); err != nil {
		t.Fatal(err)
	}
	dec, _ := NewStreamDecoder(&buf)
	dec.Phases(func(*Phase) bool { return true })
	if dec.Err() != nil {
		t.Fatal(dec.Err())
	}
	dec.Phases(func(*Phase) bool { return true })
	if dec.Err() == nil {
		t.Fatal("second iteration should error")
	}
}

func TestStreamRejectsCorruption(t *testing.T) {
	var buf bytes.Buffer
	if err := EncodeStream(&buf, sampleProgram()); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()

	// Bad magic.
	if _, err := NewStreamDecoder(bytes.NewReader([]byte("WRONGMAG..."))); err == nil {
		t.Fatal("bad magic accepted")
	}
	// Truncated mid-phase: iteration surfaces an error, never panics.
	dec, err := NewStreamDecoder(bytes.NewReader(valid[:len(valid)-10]))
	if err != nil {
		t.Fatal(err)
	}
	dec.Phases(func(*Phase) bool { return true })
	if dec.Err() == nil {
		t.Fatal("truncation not detected")
	}
	// Missing terminator.
	head := append([]byte{}, valid[:len(valid)-1]...)
	dec2, err := NewStreamDecoder(bytes.NewReader(head))
	if err != nil {
		t.Fatal(err)
	}
	dec2.Phases(func(*Phase) bool { return true })
	if dec2.Err() == nil {
		t.Fatal("missing terminator not detected")
	}
}

func TestStreamDecoderFeedsEngineShapedConsumers(t *testing.T) {
	// The decoder is a trace.Program: Summarize must work directly on it.
	orig := sampleProgram()
	var buf bytes.Buffer
	if err := EncodeStream(&buf, orig); err != nil {
		t.Fatal(err)
	}
	dec, err := NewStreamDecoder(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := Summarize(orig)
	got := Summarize(dec)
	if got != want {
		t.Fatalf("stats via stream %+v != direct %+v", got, want)
	}
}
