package trace

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"sync"
)

// Columnar block format: kernels produced by internal/workload are millions
// of near-identical Access records — op/scope/pattern/threads/elem are
// constant for long stretches, addresses advance by a fixed delta, and
// scattered seeds advance by a fixed odd constant. Storing them as an
// array-of-structs costs 24 B/record; storing each field as its own
// run-length/delta column compresses typical traces by two to three orders
// of magnitude and lets the replay engine decode one block at a time into a
// reusable buffer instead of keeping the whole []Access resident.
//
// A trace's access stream is cut into self-contained blocks of up to
// BlockAccesses records. Each block is:
//
//	count uvarint (1..BlockAccesses)
//	8 columns, in order, each a run-length sequence whose runs sum to count:
//	  op, scope, pattern, threads, elem:  (value uvarint, runLen uvarint)*
//	  stride:                             (value uvarint, runLen uvarint)*
//	  seed:  RLE over successive int32 differences (zigzag varint, runLen)
//	  addr:  RLE over successive int64 differences (zigzag varint, runLen)
//
// Seed and addr runs are runs of *equal deltas*, so an arithmetic sequence
// (the common case: unit-stride addresses, +2654435761 seeds) collapses to
// one run per block. Delta state resets at each block boundary, keeping
// blocks independently decodable — required for the spill tier, which reads
// blocks back from disk in arbitrary order.
const BlockAccesses = 4096

// ColumnAccesses is a kernel's access stream in compressed columnar blocks.
// All blocks hold exactly BlockAccesses records except the last, which holds
// the remainder — so block i covers records [i*BlockAccesses, ...). The
// struct contains a mutex and must be used by pointer.
//
// Blocks live in memory until SpillTo moves them to a SpillFile, after which
// block reads hit the file. The flip is guarded by mu; decoded []Access
// buffers handed out before a spill remain valid (they are private copies).
type ColumnAccesses struct {
	n          int    // total records
	compressed uint64 // sum of encoded block sizes

	mu     sync.Mutex
	blocks [][]byte   // resident encoded blocks; nil once spilled
	spill  *SpillFile // non-nil once spilled
	offs   []int64    // per-block offset in spill
	sizes  []int32    // per-block encoded size (valid in both modes)
}

// Len returns the total number of access records.
func (c *ColumnAccesses) Len() int {
	if c == nil {
		return 0
	}
	return c.n
}

// NumBlocks returns the number of encoded blocks.
func (c *ColumnAccesses) NumBlocks() int {
	if c == nil {
		return 0
	}
	return len(c.sizes)
}

// BlockLen returns the number of records in block i.
func (c *ColumnAccesses) BlockLen(i int) int {
	if i < len(c.sizes)-1 {
		return BlockAccesses
	}
	return c.n - i*BlockAccesses
}

// CompressedBytes returns the total encoded size of all blocks, whether
// resident or spilled.
func (c *ColumnAccesses) CompressedBytes() uint64 {
	if c == nil {
		return 0
	}
	return c.compressed
}

// Spilled reports whether the blocks live in a spill file rather than memory.
func (c *ColumnAccesses) Spilled() bool {
	if c == nil {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.spill != nil
}

// ResidentBytes returns the heap footprint of the column store: the encoded
// blocks while resident, or just the per-block index after a spill.
func (c *ColumnAccesses) ResidentBytes() uint64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	// Index overhead: sizes (4 B) always, offs (8 B) once spilled, plus the
	// struct and slice headers.
	overhead := uint64(len(c.sizes))*4 + 96
	if c.spill != nil {
		return overhead + uint64(len(c.offs))*8
	}
	return c.compressed + overhead + uint64(len(c.blocks))*24
}

// SpillTo writes every resident block to s and drops the in-memory copies,
// returning the number of heap bytes freed. It is a no-op (returning 0) if
// the blocks are already spilled. Concurrent readers are safe: a reader
// holding a block slice keeps it alive, and readers arriving after the flip
// go to the file.
func (c *ColumnAccesses) SpillTo(s *SpillFile) (freed uint64, err error) {
	if c == nil || s == nil {
		return 0, nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.spill != nil || c.blocks == nil {
		return 0, nil
	}
	var buf []byte
	for _, b := range c.blocks {
		buf = append(buf, b...)
	}
	base, err := s.append(buf)
	if err != nil {
		return 0, err
	}
	offs := make([]int64, len(c.blocks))
	off := base
	for i, b := range c.blocks {
		offs[i] = off
		off += int64(len(b))
		freed += uint64(cap(b))
	}
	c.offs = offs
	c.spill = s
	c.blocks = nil
	return freed, nil
}

// block returns the encoded bytes of block i, reading from the spill file
// into scratch if the blocks are no longer resident. The returned slice must
// not be retained past the next call with the same scratch.
func (c *ColumnAccesses) block(i int, scratch []byte) (data, newScratch []byte, err error) {
	if i < 0 || i >= len(c.sizes) {
		return nil, scratch, fmt.Errorf("trace: block %d out of range [0,%d)", i, len(c.sizes))
	}
	c.mu.Lock()
	if c.blocks != nil {
		b := c.blocks[i]
		c.mu.Unlock()
		return b, scratch, nil
	}
	spill, off := c.spill, c.offs[i]
	c.mu.Unlock()
	size := int(c.sizes[i])
	if cap(scratch) < size {
		scratch = make([]byte, size, max(size, 16<<10))
	}
	scratch = scratch[:size]
	if err := spill.readAt(scratch, off); err != nil {
		return nil, scratch, fmt.Errorf("trace: reading spilled block %d: %w", i, err)
	}
	return scratch, scratch, nil
}

// ColumnEncoder incrementally builds a ColumnAccesses from a stream of
// records using constant memory (one block's worth of pending records).
// The zero value is ready to use; an encoder is single-use.
type ColumnEncoder struct {
	n          int
	compressed uint64
	blocks     [][]byte
	sizes      []int32
	buf        []Access
}

// Append adds one record to the stream.
func (e *ColumnEncoder) Append(a Access) {
	if cap(e.buf) == 0 {
		e.buf = make([]Access, 0, BlockAccesses)
	}
	e.buf = append(e.buf, a)
	if len(e.buf) == BlockAccesses {
		e.flush()
	}
}

// Len returns the number of records appended so far.
func (e *ColumnEncoder) Len() int { return e.n + len(e.buf) }

func (e *ColumnEncoder) flush() {
	blk := appendBlock(nil, e.buf)
	e.blocks = append(e.blocks, blk)
	e.sizes = append(e.sizes, int32(len(blk)))
	e.compressed += uint64(len(blk))
	e.n += len(e.buf)
	e.buf = e.buf[:0]
}

// Finish seals the stream and returns the column store, or nil if nothing
// was appended. The encoder must not be reused.
func (e *ColumnEncoder) Finish() *ColumnAccesses {
	if len(e.buf) > 0 {
		e.flush()
	}
	if e.n == 0 {
		return nil
	}
	c := &ColumnAccesses{
		n:          e.n,
		compressed: e.compressed,
		blocks:     e.blocks,
		sizes:      e.sizes,
	}
	*e = ColumnEncoder{}
	return c
}

// EncodeColumns compresses a flat access slice into columnar blocks.
// Returns nil for an empty slice.
func EncodeColumns(accs []Access) *ColumnAccesses {
	var e ColumnEncoder
	for _, a := range accs {
		e.Append(a)
	}
	return e.Finish()
}

// appendBlock encodes accs (1..BlockAccesses records) onto dst. Each column
// gets its own run-scan loop (rather than a per-access field dispatch): this
// is the trace-build hot path, fed one block at a time by ColumnEncoder.
func appendBlock(dst []byte, accs []Access) []byte {
	n := len(accs)
	dst = binary.AppendUvarint(dst, uint64(n))
	// Byte-wide columns: RLE of (value, runLen).
	for i := 0; i < n; {
		v := accs[i].Op
		j := i + 1
		for j < n && accs[j].Op == v {
			j++
		}
		dst = binary.AppendUvarint(dst, uint64(v))
		dst = binary.AppendUvarint(dst, uint64(j-i))
		i = j
	}
	for i := 0; i < n; {
		v := accs[i].Scope
		j := i + 1
		for j < n && accs[j].Scope == v {
			j++
		}
		dst = binary.AppendUvarint(dst, uint64(v))
		dst = binary.AppendUvarint(dst, uint64(j-i))
		i = j
	}
	for i := 0; i < n; {
		v := accs[i].Pattern
		j := i + 1
		for j < n && accs[j].Pattern == v {
			j++
		}
		dst = binary.AppendUvarint(dst, uint64(v))
		dst = binary.AppendUvarint(dst, uint64(j-i))
		i = j
	}
	for i := 0; i < n; {
		v := accs[i].Threads
		j := i + 1
		for j < n && accs[j].Threads == v {
			j++
		}
		dst = binary.AppendUvarint(dst, uint64(v))
		dst = binary.AppendUvarint(dst, uint64(j-i))
		i = j
	}
	for i := 0; i < n; {
		v := accs[i].ElemBytes
		j := i + 1
		for j < n && accs[j].ElemBytes == v {
			j++
		}
		dst = binary.AppendUvarint(dst, uint64(v))
		dst = binary.AppendUvarint(dst, uint64(j-i))
		i = j
	}
	for i := 0; i < n; {
		v := accs[i].Stride
		j := i + 1
		for j < n && accs[j].Stride == v {
			j++
		}
		dst = binary.AppendUvarint(dst, uint64(v))
		dst = binary.AppendUvarint(dst, uint64(j-i))
		i = j
	}
	// Seed: RLE over successive 32-bit differences.
	var prevSeed uint32
	for i := 0; i < n; {
		d := int32(accs[i].Seed - prevSeed)
		j := i + 1
		last := accs[i].Seed
		for j < n && int32(accs[j].Seed-last) == d {
			last = accs[j].Seed
			j++
		}
		dst = binary.AppendVarint(dst, int64(d))
		dst = binary.AppendUvarint(dst, uint64(j-i))
		prevSeed = last
		i = j
	}
	// Addr: RLE over successive 64-bit differences.
	var prevAddr uint64
	for i := 0; i < n; {
		d := accs[i].Addr - prevAddr
		j := i + 1
		last := accs[i].Addr
		for j < n && accs[j].Addr-last == d {
			last = accs[j].Addr
			j++
		}
		dst = binary.AppendVarint(dst, int64(d))
		dst = binary.AppendUvarint(dst, uint64(j-i))
		prevAddr = last
		i = j
	}
	return dst
}

// decodeBlock decodes one encoded block into dst (whose capacity must be at
// least BlockAccesses) and returns the filled prefix. Every structural
// hazard — truncation, run overflow, out-of-range field values — returns an
// error; decodeBlock never panics on corrupt input.
func decodeBlock(data []byte, dst []Access) ([]Access, error) {
	cnt, off, err := readUvarint(data, 0)
	if err != nil {
		return nil, fmt.Errorf("trace: block count: %w", err)
	}
	if cnt == 0 || cnt > BlockAccesses {
		return nil, fmt.Errorf("trace: block count %d out of range 1..%d", cnt, BlockAccesses)
	}
	n := int(cnt)
	dst = dst[:n]
	// Every Access field is written by exactly one column below, so no
	// zeroing pass is needed. The switch is hoisted outside the run-fill
	// loop: on workload-shaped blocks each column is a single run, so the
	// fill is a tight per-field loop rather than a per-access dispatch.
	for col := 0; col < 6; col++ {
		i := 0
		for i < n {
			var v, run uint64
			if v, off, err = readUvarint(data, off); err != nil {
				return nil, fmt.Errorf("trace: column %d value: %w", col, err)
			}
			if run, off, err = readUvarint(data, off); err != nil {
				return nil, fmt.Errorf("trace: column %d run: %w", col, err)
			}
			if run == 0 || run > uint64(n-i) {
				return nil, fmt.Errorf("trace: column %d run %d overflows %d remaining", col, run, n-i)
			}
			if col < 5 && v > 255 {
				return nil, fmt.Errorf("trace: column %d value %d exceeds a byte", col, v)
			}
			if col == 5 && v > 1<<32-1 {
				return nil, fmt.Errorf("trace: stride %d exceeds 32 bits", v)
			}
			end := i + int(run)
			switch col {
			case 0:
				for ; i < end; i++ {
					dst[i].Op = Op(v)
				}
			case 1:
				for ; i < end; i++ {
					dst[i].Scope = Scope(v)
				}
			case 2:
				for ; i < end; i++ {
					dst[i].Pattern = Pattern(v)
				}
			case 3:
				for ; i < end; i++ {
					dst[i].Threads = uint8(v)
				}
			case 4:
				for ; i < end; i++ {
					dst[i].ElemBytes = uint8(v)
				}
			default:
				for ; i < end; i++ {
					dst[i].Stride = uint32(v)
				}
			}
		}
	}
	// Seed deltas: a run of length r applies the same delta r times in
	// succession.
	var seed uint32
	for i := 0; i < n; {
		d, noff, derr := readVarint(data, off)
		if derr != nil {
			return nil, fmt.Errorf("trace: seed column: delta: %w", derr)
		}
		run, noff, rerr := readUvarint(data, noff)
		if rerr != nil {
			return nil, fmt.Errorf("trace: seed column: run: %w", rerr)
		}
		if run == 0 || run > uint64(n-i) {
			return nil, fmt.Errorf("trace: seed column: run %d overflows %d remaining", run, n-i)
		}
		off = noff
		sd := uint32(int32(d))
		for end := i + int(run); i < end; i++ {
			seed += sd
			dst[i].Seed = seed
		}
	}
	// Addr deltas, same shape.
	var addr uint64
	for i := 0; i < n; {
		d, noff, derr := readVarint(data, off)
		if derr != nil {
			return nil, fmt.Errorf("trace: addr column: delta: %w", derr)
		}
		run, noff, rerr := readUvarint(data, noff)
		if rerr != nil {
			return nil, fmt.Errorf("trace: addr column: run: %w", rerr)
		}
		if run == 0 || run > uint64(n-i) {
			return nil, fmt.Errorf("trace: addr column: run %d overflows %d remaining", run, n-i)
		}
		off = noff
		ad := uint64(d)
		for end := i + int(run); i < end; i++ {
			addr += ad
			dst[i].Addr = addr
		}
	}
	if off != len(data) {
		return nil, fmt.Errorf("trace: %d trailing bytes after block", len(data)-off)
	}
	for i := range dst {
		if err := dst[i].Validate(); err != nil {
			return nil, fmt.Errorf("trace: block record %d: %w", i, err)
		}
	}
	return dst, nil
}

func readUvarint(data []byte, off int) (uint64, int, error) {
	if off >= len(data) {
		return 0, off, fmt.Errorf("truncated at %d", off)
	}
	v, n := binary.Uvarint(data[off:])
	if n <= 0 {
		return 0, off, fmt.Errorf("bad uvarint at %d", off)
	}
	return v, off + n, nil
}

func readVarint(data []byte, off int) (int64, int, error) {
	if off >= len(data) {
		return 0, off, fmt.Errorf("truncated at %d", off)
	}
	v, n := binary.Varint(data[off:])
	if n <= 0 {
		return 0, off, fmt.Errorf("bad varint at %d", off)
	}
	return v, off + n, nil
}

// BlockDecoder decodes blocks into an internal reusable buffer, so steady-
// state replay performs zero allocations. Each concurrent reader (engine
// shard, scan) needs its own decoder; the decoded slice is valid until the
// next Decode call on the same decoder.
type BlockDecoder struct {
	buf     []Access
	scratch []byte
}

// Decode returns the decoded records of block i of c. The returned slice
// aliases the decoder's buffer.
func (d *BlockDecoder) Decode(c *ColumnAccesses, i int) ([]Access, error) {
	if d.buf == nil {
		d.buf = make([]Access, BlockAccesses)
	}
	data, scratch, err := c.block(i, d.scratch)
	d.scratch = scratch
	if err != nil {
		return nil, err
	}
	out, err := decodeBlock(data, d.buf)
	if err != nil {
		return nil, fmt.Errorf("trace: block %d: %w", i, err)
	}
	if len(out) != c.BlockLen(i) {
		return nil, fmt.Errorf("trace: block %d decoded %d records, index says %d", i, len(out), c.BlockLen(i))
	}
	return out, nil
}

// columnJSON is the JSON shape of a ColumnAccesses: record count plus the
// encoded blocks (base64 via encoding/json's []byte rule).
type columnJSON struct {
	N      int
	Blocks [][]byte
}

// MarshalJSON writes the block store; spilled blocks are read back from the
// file so the JSON rendering is always self-contained.
func (c *ColumnAccesses) MarshalJSON() ([]byte, error) {
	cj := columnJSON{N: c.n}
	var scratch []byte
	for i := 0; i < c.NumBlocks(); i++ {
		data, ns, err := c.block(i, scratch)
		scratch = ns
		if err != nil {
			return nil, err
		}
		cj.Blocks = append(cj.Blocks, append([]byte(nil), data...))
	}
	return json.Marshal(cj)
}

// UnmarshalJSON rebuilds the store and fully validates every block, so any
// ColumnAccesses reachable from a decoded trace is structurally sound and
// replay can treat decode errors as internal bugs.
func (c *ColumnAccesses) UnmarshalJSON(data []byte) error {
	if bytes.Equal(bytes.TrimSpace(data), []byte("null")) {
		return nil
	}
	var cj columnJSON
	if err := json.Unmarshal(data, &cj); err != nil {
		return err
	}
	total := 0
	var sizes []int32
	var compressed uint64
	buf := make([]Access, BlockAccesses)
	for i, b := range cj.Blocks {
		out, err := decodeBlock(b, buf)
		if err != nil {
			return fmt.Errorf("trace: column block %d: %w", i, err)
		}
		total += len(out)
		sizes = append(sizes, int32(len(b)))
		compressed += uint64(len(b))
		if i < len(cj.Blocks)-1 && len(out) != BlockAccesses {
			return fmt.Errorf("trace: column block %d short (%d records) before the last", i, len(out))
		}
	}
	if total != cj.N {
		return fmt.Errorf("trace: column blocks hold %d records, header says %d", total, cj.N)
	}
	c.n = cj.N
	c.blocks = cj.Blocks
	c.sizes = sizes
	c.compressed = compressed
	c.spill = nil
	c.offs = nil
	return nil
}
