package trace

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzDecodeTrace replaces the old hand-rolled byte-flip loop with native
// fuzzing: the decoder must never panic on arbitrary input, and anything it
// does accept must re-encode and re-decode to the same value. Without -fuzz
// the seed corpus below runs as a plain regression test; `make chaos` runs
// the mutation engine for real.
func FuzzDecodeTrace(f *testing.F) {
	var buf bytes.Buffer
	if err := Encode(&buf, sampleProgram()); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()

	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("NOTATRACE..."))
	f.Add(valid[:len(valid)/2])
	// A one-byte flip in the header and one in the payload, the classic
	// corruptions the old loop exercised.
	for _, i := range []int{0, len(valid) / 2, len(valid) - 1} {
		c := append([]byte{}, valid...)
		c[i] ^= 0xff
		f.Add(c)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Decode(bytes.NewReader(data)) // must not panic
		if err != nil {
			return
		}
		// Accepted input: the decoded trace must survive a round trip.
		var out bytes.Buffer
		if err := Encode(&out, p); err != nil {
			t.Fatalf("decoded trace does not re-encode: %v", err)
		}
		p2, err := Decode(&out)
		if err != nil {
			t.Fatalf("re-encoded trace does not decode: %v", err)
		}
		if !reflect.DeepEqual(p, p2) {
			t.Fatal("accepted trace does not round-trip bit-exactly")
		}
	})
}
