package trace

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzDecodeTrace replaces the old hand-rolled byte-flip loop with native
// fuzzing: the decoder must never panic on arbitrary input, and anything it
// does accept must re-encode and re-decode to the same value. Without -fuzz
// the seed corpus below runs as a plain regression test; `make chaos` runs
// the mutation engine for real.
func FuzzDecodeTrace(f *testing.F) {
	var buf bytes.Buffer
	if err := Encode(&buf, sampleProgram()); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()

	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("NOTATRACE..."))
	f.Add(valid[:len(valid)/2])
	// A one-byte flip in the header and one in the payload, the classic
	// corruptions the old loop exercised.
	for _, i := range []int{0, len(valid) / 2, len(valid) - 1} {
		c := append([]byte{}, valid...)
		c[i] ^= 0xff
		f.Add(c)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Decode(bytes.NewReader(data)) // must not panic
		if err != nil {
			return
		}
		// Accepted input: the decoded trace must survive a round trip.
		var out bytes.Buffer
		if err := Encode(&out, p); err != nil {
			t.Fatalf("decoded trace does not re-encode: %v", err)
		}
		encoded := append([]byte{}, out.Bytes()...)
		p2, err := Decode(&out)
		if err != nil {
			t.Fatalf("re-encoded trace does not decode: %v", err)
		}
		if !reflect.DeepEqual(p, p2) {
			t.Fatal("accepted trace does not round-trip bit-exactly")
		}
		// The columnar storage form must encode to the same bytes and carry
		// the same stream.
		var colOut bytes.Buffer
		if err := Encode(&colOut, Columnize(p)); err != nil {
			t.Fatalf("columnized trace does not encode: %v", err)
		}
		if !bytes.Equal(encoded, colOut.Bytes()) {
			t.Fatal("columnar kernels encode differently from flat kernels")
		}
	})
}

// FuzzColumnBlock drives the columnar block decoder with arbitrary bytes: it
// must never panic, and any block it accepts must re-encode into a block that
// decodes to the same accesses.
func FuzzColumnBlock(f *testing.F) {
	f.Add(appendBlock(nil, randomAccesses(500, 1)))
	f.Add(appendBlock(nil, stencilAccesses(BlockAccesses)))
	f.Add(appendBlock(nil, []Access{{Op: OpFence, Scope: ScopeSys}}))
	f.Add([]byte{})
	f.Add([]byte{1})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, data []byte) {
		buf := make([]Access, BlockAccesses)
		accs, err := decodeBlock(data, buf) // must not panic
		if err != nil {
			return
		}
		re := appendBlock(nil, accs)
		got, err := decodeBlock(re, make([]Access, BlockAccesses))
		if err != nil {
			t.Fatalf("accepted block does not re-encode: %v", err)
		}
		if !reflect.DeepEqual(accs, got) {
			t.Fatal("accepted block does not round-trip")
		}
	})
}
