package trace

import "testing"

// BenchmarkColumnDecode measures the block-decode hot path the engine drives
// during replay: one full pass over a multi-block stream through a reused
// BlockDecoder. The stencil stream is the workload-shaped common case
// (long runs, tiny varints); the random stream is the RLE worst case.
func BenchmarkColumnDecode(b *testing.B) {
	const n = 16 * BlockAccesses
	for _, v := range []struct {
		name string
		accs []Access
	}{
		{"stencil", stencilAccesses(n)},
		{"random", randomAccesses(n, 1)},
	} {
		c := EncodeColumns(v.accs)
		b.Run(v.name, func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(len(v.accs)) * 24)
			var dec BlockDecoder
			for i := 0; i < b.N; i++ {
				for blk := 0; blk < c.NumBlocks(); blk++ {
					if _, err := dec.Decode(c, blk); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
		b.Run(v.name+"/ratio", func(b *testing.B) {
			logical := uint64(len(v.accs)) * 24
			b.ReportMetric(float64(logical)/float64(c.CompressedBytes()), "x-compression")
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = c.CompressedBytes()
			}
		})
	}
}

// BenchmarkColumnEncode measures the append path the workload generators
// drive while building traces.
func BenchmarkColumnEncode(b *testing.B) {
	const n = 16 * BlockAccesses
	for _, v := range []struct {
		name string
		accs []Access
	}{
		{"stencil", stencilAccesses(n)},
		{"random", randomAccesses(n, 1)},
	} {
		b.Run(v.name, func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(len(v.accs)) * 24)
			for i := 0; i < b.N; i++ {
				var enc ColumnEncoder
				for j := range v.accs {
					enc.Append(v.accs[j])
				}
				if c := enc.Finish(); c.Len() != len(v.accs) {
					b.Fatal("short encode")
				}
			}
		})
	}
}

// BenchmarkSpillRead measures a full decode pass over a spilled store,
// including the ReadAt per block.
func BenchmarkSpillRead(b *testing.B) {
	const n = 16 * BlockAccesses
	c := EncodeColumns(randomAccesses(n, 1))
	sf, err := NewSpillFile(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	if _, err := c.SpillTo(sf); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.SetBytes(int64(n) * 24)
	var dec BlockDecoder
	for i := 0; i < b.N; i++ {
		for blk := 0; blk < c.NumBlocks(); blk++ {
			if _, err := dec.Decode(c, blk); err != nil {
				b.Fatal(err)
			}
		}
	}
	if sf.Reads() == 0 {
		b.Fatal("no spill reads recorded")
	}
}
