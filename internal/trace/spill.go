package trace

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"
)

// SpillFile is an append-only temp file holding spilled columnar blocks.
// The file is unlinked immediately after creation, so the OS reclaims the
// space when the process exits (or the fd is closed) even on a crash —
// there is nothing to clean up and nothing another process can observe.
//
// Appends are serialized; reads use ReadAt and are safe from any number of
// goroutines concurrently with appends (spilled regions are immutable).
type SpillFile struct {
	mu   sync.Mutex
	f    *os.File
	size int64

	reads     atomic.Uint64
	readBytes atomic.Uint64
}

// NewSpillFile creates an anonymous spill file in dir (or the default temp
// directory if dir is empty).
func NewSpillFile(dir string) (*SpillFile, error) {
	f, err := os.CreateTemp(dir, "gps-trace-spill-*")
	if err != nil {
		return nil, fmt.Errorf("trace: creating spill file: %w", err)
	}
	// Unlink while keeping the fd: the usual anonymous-temp-file idiom.
	os.Remove(f.Name())
	return &SpillFile{f: f}, nil
}

// append writes b at the end of the file and returns its offset.
func (s *SpillFile) append(b []byte) (int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return 0, fmt.Errorf("trace: spill file closed")
	}
	off := s.size
	if _, err := s.f.WriteAt(b, off); err != nil {
		return 0, fmt.Errorf("trace: spill write at %d: %w", off, err)
	}
	s.size += int64(len(b))
	return off, nil
}

// readAt fills p from offset off, counting the read.
func (s *SpillFile) readAt(p []byte, off int64) error {
	if _, err := s.f.ReadAt(p, off); err != nil {
		return err
	}
	s.reads.Add(1)
	s.readBytes.Add(uint64(len(p)))
	return nil
}

// Size returns the bytes written so far.
func (s *SpillFile) Size() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.size
}

// Reads returns the number of block reads served from the file.
func (s *SpillFile) Reads() uint64 { return s.reads.Load() }

// ReadBytes returns the bytes read back from the file.
func (s *SpillFile) ReadBytes() uint64 { return s.readBytes.Load() }

// Close releases the fd. Any ColumnAccesses still pointing at the file will
// fail reads afterwards, so callers only close once all traces referencing
// the file are unreachable.
func (s *SpillFile) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	err := s.f.Close()
	s.f = nil
	return err
}
